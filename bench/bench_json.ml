(* Minimal JSON for the bench-regression trajectory: a writer with
   round-trip-exact floats and a recursive-descent parser, so the
   deterministic section of BENCH_PR<n>.json can be re-generated and
   compared in CI without adding a dependency.  Only what the bench
   driver needs — no streaming, no unicode escapes beyond \uXXXX
   pass-through. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* --- writer --------------------------------------------------------------- *)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

(* Shortest decimal that parses back to the same float, so that
   re-running a deterministic experiment and re-serialising yields a
   byte-identical section. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec write b indent v =
  let pad n = Buffer.add_string b (String.make n ' ') in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool x -> Buffer.add_string b (if x then "true" else "false")
  | Num f -> Buffer.add_string b (if Float.is_nan f then "null" else float_repr f)
  | Str s ->
      Buffer.add_char b '"';
      escape b s;
      Buffer.add_char b '"'
  | Arr [] -> Buffer.add_string b "[]"
  | Arr xs ->
      Buffer.add_string b "[\n";
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (indent + 2);
          write b (indent + 2) x)
        xs;
      Buffer.add_char b '\n';
      pad indent;
      Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj kvs ->
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (indent + 2);
          Buffer.add_char b '"';
          escape b k;
          Buffer.add_string b "\": ";
          write b (indent + 2) x)
        kvs;
      Buffer.add_char b '\n';
      pad indent;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 4096 in
  write b 0 v;
  Buffer.add_char b '\n';
  Buffer.contents b

let to_file path v =
  let oc = open_out path in
  output_string oc (to_string v);
  close_out oc

(* --- parser --------------------------------------------------------------- *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then s.[!pos] else '\x00' in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\t' | '\n' | '\r' ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              if !pos + 4 >= n then fail "bad \\u escape";
              let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
              pos := !pos + 4;
              (* ASCII range only; enough for our own output. *)
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else fail "non-ASCII \\u escape unsupported"
          | _ -> fail "bad escape");
          advance ();
          go ()
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | 'n' -> literal "null" Null
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | '"' -> Str (parse_string ())
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                items (v :: acc)
            | ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (items [])
        end
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                members ((k, v) :: acc)
            | '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
    | _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let of_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  of_string s

(* --- structural diff ------------------------------------------------------ *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let rec diff path got want acc =
  let leaf g w = (path, g, w) :: acc in
  let show = function
    | Null -> "null"
    | Bool b -> string_of_bool b
    | Num f -> float_repr f
    | Str s -> Printf.sprintf "%S" s
    | Arr xs -> Printf.sprintf "<array of %d>" (List.length xs)
    | Obj kvs -> Printf.sprintf "<object of %d>" (List.length kvs)
  in
  match (got, want) with
  | Num a, Num b when a = b -> acc
  | (Null, Null | Bool _, Bool _ | Str _, Str _) when got = want -> acc
  | Arr xs, Arr ys when List.length xs = List.length ys ->
      let r = ref acc in
      List.iteri
        (fun i (x, y) -> r := diff (Printf.sprintf "%s[%d]" path i) x y !r)
        (List.combine xs ys);
      !r
  | Obj xs, Obj ys
    when List.map fst xs = List.map fst ys ->
      List.fold_left2
        (fun acc (k, x) (_, y) -> diff (path ^ "." ^ k) x y acc)
        acc xs ys
  | _ -> leaf (show got) (show want)

(* Compare two values; returns mismatches as (path, got, want). *)
let compare_values ~got ~want = List.rev (diff "$" got want [])
