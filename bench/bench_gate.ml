(* Wall-clock regression gate: the subjects whose *real machine time*
   CI refuses to let regress, with per-subject tolerance bounds
   calibrated from repeated measurement.

   The simulated section of BENCH_PR<n>.json is byte-exact and CI diffs
   it structurally.  Wall-clock numbers can never be byte-exact, so the
   gate works in ratios: emitting a trajectory point measures every
   gated subject [repeats] times, records the median and a tolerance of
   max(floor, 3 x observed relative spread) clamped to a per-subject
   cap, and checking re-measures
   under the same knobs and fails only if the fresh median drifts past
   the recorded tolerance in the *bad* direction (throughput down,
   latency up).  A faster run never fails the gate.

   Everything here is self-contained — each measurement round builds its
   own table, channel server and clients — so the gate can run from the
   bench driver and from the test suite without sharing warm state. *)

open Bechamel
open Toolkit

type direction = Higher_better | Lower_better

type spec = {
  name : string;
  unit_label : string;
  direction : direction;
  floor : float;
      (* minimum relative tolerance, e.g. 0.30 = fail beyond a 30%
         regression even if the calibration run was perfectly quiet *)
  cap : float;
      (* maximum relative tolerance: on a host so noisy that 3 x spread
         exceeds this, the bound stops widening — a higher_better
         subject with tolerance >= 1.0 could never fail at all, and a
         gate that can't fail is no gate *)
}

(* The gated subjects.  Throughput subjects get a tighter floor than
   ns-scale subjects: an OLS estimate over a fixed quota is noisier than
   a multi-thousand-call wall-clock average.  All floors are far below
   the 2.3x containment tax this PR wins back, which is the regression
   class the gate exists to catch. *)
let specs =
  [
    {
      name = "channel-1shard";
      unit_label = "calls/s";
      direction = Higher_better;
      floor = 0.30;
      cap = 0.75;
    };
    {
      name = "channel-2shards";
      unit_label = "calls/s";
      direction = Higher_better;
      floor = 0.30;
      cap = 0.75;
    };
    {
      name = "local-ns";
      unit_label = "ns";
      direction = Lower_better;
      floor = 0.50;
      cap = 4.0;
    };
    {
      name = "channel-inline-ns";
      unit_label = "ns";
      direction = Lower_better;
      floor = 0.50;
      cap = 4.0;
    };
    {
      name = "channel-deadline-ns";
      unit_label = "ns";
      direction = Lower_better;
      floor = 0.50;
      cap = 4.0;
    };
    (* The PR7 bulk-data sweep, gated at its three regimes: payload in
       the registers (4 KB), through the async copy engine (256 KB),
       and as a zero-copy grant handoff (4 MB).  Each is ns per whole
       payload, so a regression anywhere on the bulk path moves one of
       them. *)
    {
      name = "copy-register-4k-ns";
      unit_label = "ns";
      direction = Lower_better;
      floor = 0.50;
      cap = 4.0;
    };
    (* The engine and grant subjects cross a domain boundary per
       measurement (doorbell kick, mover wakeup, completion reap), so
       their run-to-run variance is dominated by the scheduler, not the
       copy: a calibration round that happens to land on a quiet window
       records a spread far below what the next run will see.  A wider
       floor keeps the gate meaningful (a lost batch or a broken handoff
       is a multiple-x regression) without flaking on busy hosts. *)
    {
      name = "copy-engine-256k-ns";
      unit_label = "ns";
      direction = Lower_better;
      floor = 1.50;
      cap = 4.0;
    };
    {
      name = "copy-grant-4m-ns";
      unit_label = "ns";
      direction = Lower_better;
      floor = 1.50;
      cap = 4.0;
    };
  ]

let spec_of_name name = List.find_opt (fun s -> s.name = name) specs

(* --- measurement ---------------------------------------------------------- *)

let adder _ctx args =
  args.(0) <- args.(0) + args.(1);
  args.(7) <- 0

(* Bechamel OLS ns/run for named closures (same analysis the trajectory
   wallclock section uses, so the two agree on what "ns/run" means). *)
let measure_ns ~quota tests =
  let grouped = Test.make_grouped ~name:"g" ~fmt:"%s %s" tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name o acc ->
      let ns =
        match Analyze.OLS.estimates o with Some [ e ] -> e | _ -> Float.nan
      in
      let name =
        match String.index_opt name ' ' with
        | Some i -> String.sub name (i + 1) (String.length name - i - 1)
        | None -> name
      in
      (name, ns) :: acc)
    results []

(* N producer domains hammering one closure each, wall-clock calls/s. *)
let time_throughput ~producers ~per ~mk =
  let t0 = Unix.gettimeofday () in
  let doms =
    List.init producers (fun p ->
        Domain.spawn (fun () ->
            let f = mk p in
            for i = 1 to per do
              f i
            done))
  in
  List.iter Domain.join doms;
  let dt = Unix.gettimeofday () -. t0 in
  float_of_int (producers * per) /. dt

let channel_throughput fast ep ~shards ~per =
  let srv = Runtime.Fastcall.spawn_channel_server ~shards fast in
  let thr =
    time_throughput ~producers:3 ~per ~mk:(fun _p ->
        let cl = Runtime.Fastcall.connect srv in
        let a = Array.make 8 0 in
        fun i ->
          a.(0) <- i;
          a.(1) <- 1;
          ignore (Runtime.Fastcall.channel_call cl ~ep a))
  in
  Runtime.Fastcall.shutdown_channel_server srv;
  thr

(* One full round: every gated subject measured once, fresh state.
   [calls] is the per-producer call count for the throughput subjects;
   [quota] the bechamel time budget (seconds) for the ns subjects. *)
let measure_once ~calls ~quota =
  let fast = Runtime.Fastcall.create () in
  let ep = Runtime.Fastcall.register fast adder in
  let thr_1 = channel_throughput fast ep ~shards:1 ~per:calls in
  let thr_2 = channel_throughput fast ep ~shards:2 ~per:calls in
  let srv = Runtime.Fastcall.spawn_channel_server fast in
  let cl_inline = Runtime.Fastcall.connect srv in
  let cl_queued = Runtime.Fastcall.connect ~inline_uncontended:false srv in
  let args = Array.make 8 0 in
  (* Bulk-data plane, fresh per round like everything else here.  The
     register subject moves 4 KB as 6-word local PPCs; the engine
     subject moves 256 KB as 16 KB descriptors through a live mover
     domain; the grant subject hands a 4 MB region over (to itself, so
     every iteration's ownership check passes) without copying. *)
  let eng, store = Transfer.Copy_engine.create_with_buffers () in
  let reg id = match id with Ok id -> id | Error rc -> failwith (Ipc_intf.Errc.to_string rc) in
  let src_id = reg (Transfer.Copy_engine.Buffers.add store ~owner:0 (Bytes.create (256 * 1024))) in
  let dst_id = reg (Transfer.Copy_engine.Buffers.add store ~owner:0 (Bytes.create (256 * 1024))) in
  let ecl = Transfer.Copy_engine.connect eng in
  let grant_id =
    reg
      (Transfer.Copy_engine.Buffers.add store
         ~owner:(Transfer.Copy_engine.client_id ecl)
         (Bytes.create (4 * 1024 * 1024)))
  in
  let mover = Transfer.Mover.spawn eng in
  let engine_move ~bytes ~chunk =
    let off = ref 0 in
    while !off < bytes do
      let len = if bytes - !off < chunk then bytes - !off else chunk in
      (match
         Transfer.Copy_engine.submit ecl ~op:Ipc_intf.Wellknown.bulk_copy
           ~src:src_id ~src_off:!off ~dst:dst_id ~dst_off:!off ~len ~tag:0
       with
      | 0 -> off := !off + len
      | _ ->
          ignore (Transfer.Copy_engine.flush ecl);
          ignore (Transfer.Copy_engine.reap ecl));
      ()
    done;
    ignore (Transfer.Copy_engine.flush ecl);
    while Transfer.Copy_engine.outstanding ecl > 0 do
      if Transfer.Copy_engine.reap ecl = 0 then Domain.cpu_relax ()
    done
  in
  let self = Transfer.Copy_engine.client_id ecl in
  let grant_move ~bytes =
    (match
       Transfer.Copy_engine.submit ecl ~op:Ipc_intf.Wellknown.bulk_grant
         ~src:grant_id ~src_off:0 ~dst:self ~dst_off:0 ~len:bytes ~tag:0
     with
    | 0 -> ()
    | rc -> failwith (Ipc_intf.Errc.to_string rc));
    ignore (Transfer.Copy_engine.flush ecl);
    while Transfer.Copy_engine.outstanding ecl > 0 do
      if Transfer.Copy_engine.reap ecl = 0 then Domain.cpu_relax ()
    done
  in
  let subject name f = Test.make ~name (Staged.stage f) in
  let ns =
    measure_ns ~quota
      [
        subject "local-ns" (fun () ->
            args.(0) <- 1;
            args.(1) <- 2;
            ignore (Runtime.Fastcall.call fast ~ep args));
        subject "channel-inline-ns" (fun () ->
            args.(0) <- 1;
            args.(1) <- 2;
            ignore (Runtime.Fastcall.channel_call cl_inline ~ep args));
        subject "channel-deadline-ns" (fun () ->
            args.(0) <- 1;
            args.(1) <- 2;
            ignore
              (Runtime.Fastcall.channel_call_deadline cl_queued ~ep
                 ~deadline:max_int args));
        subject "copy-register-4k-ns" (fun () ->
            (* 4096 bytes, 6 data words (48 bytes) per call *)
            for i = 1 to 86 do
              args.(0) <- i;
              args.(1) <- 1;
              ignore (Runtime.Fastcall.call fast ~ep args)
            done);
        subject "copy-engine-256k-ns" (fun () ->
            engine_move ~bytes:(256 * 1024) ~chunk:(16 * 1024));
        subject "copy-grant-4m-ns" (fun () ->
            grant_move ~bytes:(4 * 1024 * 1024));
      ]
  in
  Runtime.Fastcall.shutdown_channel_server srv;
  Transfer.Mover.shutdown mover;
  let ns name = try List.assoc name ns with Not_found -> Float.nan in
  [
    ("channel-1shard", thr_1);
    ("channel-2shards", thr_2);
    ("local-ns", ns "local-ns");
    ("channel-inline-ns", ns "channel-inline-ns");
    ("channel-deadline-ns", ns "channel-deadline-ns");
    ("copy-register-4k-ns", ns "copy-register-4k-ns");
    ("copy-engine-256k-ns", ns "copy-engine-256k-ns");
    ("copy-grant-4m-ns", ns "copy-grant-4m-ns");
  ]

(* [repeats] interleaved rounds, so the spread sees between-round drift
   (scheduler, thermal) and not just within-round noise. *)
let measure ~repeats ~calls ~quota =
  let rounds = List.init repeats (fun _ -> measure_once ~calls ~quota) in
  List.map
    (fun s -> (s.name, List.map (fun round -> List.assoc s.name round) rounds))
    specs

(* --- calibration ---------------------------------------------------------- *)

let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then Float.nan
  else if n mod 2 = 1 then a.(n / 2)
  else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

(* Relative spread of the calibration samples around their median. *)
let rel_spread xs =
  let m = median xs in
  if m = 0.0 || Float.is_nan m then 0.0
  else
    let lo = List.fold_left Float.min Float.infinity xs
    and hi = List.fold_left Float.max Float.neg_infinity xs in
    (hi -. lo) /. Float.abs m

type calibrated = {
  spec : spec;
  value : float;  (* median of the calibration samples *)
  spread : float;  (* relative spread observed while calibrating *)
  tolerance : float;  (* max(floor, 3 x spread) — the recorded bound *)
}

let calibrate samples =
  List.map
    (fun s ->
      let xs = List.assoc s.name samples in
      let spread = rel_spread xs in
      {
        spec = s;
        value = median xs;
        spread;
        tolerance = Float.min s.cap (Float.max s.floor (3.0 *. spread));
      })
    specs

(* --- JSON ------------------------------------------------------------------ *)

let direction_str = function
  | Higher_better -> "higher_better"
  | Lower_better -> "lower_better"

let to_json ~repeats ~calls ~quota calibrated =
  let num f = Bench_json.Num f in
  Bench_json.Obj
    [
      ("repeats", num (float_of_int repeats));
      ("calls_per_producer", num (float_of_int calls));
      ("quota_s", num quota);
      ( "subjects",
        Bench_json.Arr
          (List.map
             (fun c ->
               Bench_json.Obj
                 [
                   ("name", Bench_json.Str c.spec.name);
                   ("unit", Bench_json.Str c.spec.unit_label);
                   ("direction", Bench_json.Str (direction_str c.spec.direction));
                   ("value", num c.value);
                   ("spread", num c.spread);
                   ("tolerance", num c.tolerance);
                 ])
             calibrated) );
    ]

(* Measure, calibrate, emit: the whole "gate" section of a trajectory
   point. *)
let emit ~repeats ~calls ~quota =
  to_json ~repeats ~calls ~quota (calibrate (measure ~repeats ~calls ~quota))

(* --- checking -------------------------------------------------------------- *)

type recorded = {
  r_name : string;
  r_direction : direction;
  r_unit : string;
  r_value : float;
  r_tolerance : float;
}

exception Bad_gate of string

let get_num obj k =
  match Bench_json.member k obj with
  | Some (Bench_json.Num f) -> f
  | _ -> raise (Bad_gate (Printf.sprintf "gate subject missing number %S" k))

let get_str obj k =
  match Bench_json.member k obj with
  | Some (Bench_json.Str s) -> s
  | _ -> raise (Bad_gate (Printf.sprintf "gate subject missing string %S" k))

(* Parse the committed "gate" object back into records + its knobs. *)
let of_json gate =
  let knob k default =
    match Bench_json.member k gate with
    | Some (Bench_json.Num f) -> int_of_float f
    | _ -> default
  in
  let repeats = knob "repeats" 3 in
  let calls = knob "calls_per_producer" 30_000 in
  let quota =
    match Bench_json.member "quota_s" gate with
    | Some (Bench_json.Num f) -> f
    | _ -> 0.5
  in
  let subjects =
    match Bench_json.member "subjects" gate with
    | Some (Bench_json.Arr xs) ->
        List.map
          (fun obj ->
            let dir =
              match get_str obj "direction" with
              | "higher_better" -> Higher_better
              | "lower_better" -> Lower_better
              | d -> raise (Bad_gate (Printf.sprintf "bad direction %S" d))
            in
            {
              r_name = get_str obj "name";
              r_direction = dir;
              r_unit = get_str obj "unit";
              r_value = get_num obj "value";
              r_tolerance = get_num obj "tolerance";
            })
          xs
    | _ -> raise (Bad_gate "gate section has no \"subjects\" array")
  in
  (repeats, calls, quota, subjects)

type verdict = {
  v_name : string;
  v_unit : string;
  v_recorded : float;
  v_fresh : float;
  v_tolerance : float;
  v_drift : float;
      (* signed relative drift in the *bad* direction: positive means
         worse (throughput down / latency up), so ok = drift <= tol *)
  v_ok : bool;
}

(* Compare one fresh median against its recorded bound.  Drift is
   one-directional: getting faster never fails. *)
let judge recorded fresh =
  let drift =
    match recorded.r_direction with
    | Higher_better -> (recorded.r_value -. fresh) /. recorded.r_value
    | Lower_better -> (fresh -. recorded.r_value) /. recorded.r_value
  in
  {
    v_name = recorded.r_name;
    v_unit = recorded.r_unit;
    v_recorded = recorded.r_value;
    v_fresh = fresh;
    v_tolerance = recorded.r_tolerance;
    v_drift = drift;
    v_ok = Float.is_nan fresh = false && drift <= recorded.r_tolerance;
  }

(* Check recorded bounds against an already-taken fresh measurement
   (medians by subject name).  Subjects recorded but not measured fresh
   are a hard error — a silently skipped subject is an ungated one. *)
let check_values recorded fresh =
  List.map
    (fun r ->
      match List.assoc_opt r.r_name fresh with
      | Some v -> judge r v
      | None ->
          raise (Bad_gate (Printf.sprintf "no fresh measurement for %S" r.r_name)))
    recorded

(* The full check: re-measure under the committed knobs (overridable)
   and judge every recorded subject. *)
let check ?repeats ?calls ?quota gate =
  let r_repeats, r_calls, r_quota, recorded = of_json gate in
  let repeats = Option.value repeats ~default:r_repeats in
  let calls = Option.value calls ~default:r_calls in
  let quota = Option.value quota ~default:r_quota in
  let samples = measure ~repeats ~calls ~quota in
  let fresh = List.map (fun (name, xs) -> (name, median xs)) samples in
  check_values recorded fresh

let pp_verdict ppf v =
  let pct f = 100.0 *. f in
  if v.v_ok then
    Fmt.pf ppf "  ok    %-20s fresh %12.1f %s vs recorded %12.1f (drift %+.1f%%, tolerance %.0f%%)"
      v.v_name v.v_fresh v.v_unit v.v_recorded (pct v.v_drift)
      (pct v.v_tolerance)
  else
    Fmt.pf ppf "  FAIL  %-20s fresh %12.1f %s vs recorded %12.1f — regressed %.1f%% in the bad direction, tolerance %.0f%%"
      v.v_name v.v_fresh v.v_unit v.v_recorded (pct v.v_drift)
      (pct v.v_tolerance)

let all_ok verdicts = List.for_all (fun v -> v.v_ok) verdicts
