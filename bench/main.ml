(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation, plus the ablations documented in DESIGN.md.

     dune exec bench/main.exe              # everything
     dune exec bench/main.exe -- fig2      # one experiment
     dune exec bench/main.exe -- --quick   # smaller horizons/sweeps

   Experiments (see DESIGN.md section 3):
     fig2   Figure 2   round-trip PPC cost breakdown (8 conditions)
     fig3   Figure 3   GetLength throughput scaling, 1..16 CPUs (+ plot)
     t3     T-text-3   worst-case caches (dirty D + cold I)
     f3b               Zipf file popularity between the Figure-3 extremes
     f3c               request origin: programs vs parallel program
     l1                GetLength latency under open-loop load
     intro  T-intro    uniprocessor null-RPC context table
     a1..a9            design-choice ablations (hold-CD, LRPC, async,
                       message passing, stack policies, RW locks,
                       compat transports, clustering)
     e1, e2            cross-processor PPC; migration vs technology
     bechamel          machine-time microbenchmarks (one subject per
                       experiment + the real multicore A5 measurements)

   The simulated results are deterministic; the Bechamel section measures
   real wall time on this host. *)

let section title = Fmt.pr "@.=== %s ===@.@." title

(* --- Figure 2 ----------------------------------------------------------- *)

let run_fig2 () =
  section "Figure 2: round-trip PPC time breakdown (simulated us)";
  let results = Experiments.Fig2.run_all () in
  (* Paper-style stacked columns: categories as rows, conditions as
     columns. *)
  let cols = results in
  Fmt.pr "%-22s" "";
  List.iter
    (fun r ->
      let c = r.Experiments.Fig2.condition in
      Fmt.pr "%10s"
        (Printf.sprintf "%s/%s"
           (match c.Experiments.Fig2.target with
           | Experiments.Fig2.To_user -> "u2u"
           | Experiments.Fig2.To_kernel -> "u2k")
           (if c.Experiments.Fig2.hold_cd then "hold" else "noCD")))
    cols;
  Fmt.pr "@.%-22s" "";
  List.iter
    (fun r ->
      Fmt.pr "%10s"
        (if r.Experiments.Fig2.condition.Experiments.Fig2.flushed then "flushed"
         else "primed"))
    cols;
  Fmt.pr "@.";
  List.iter
    (fun cat ->
      Fmt.pr "%-22s" (Machine.Account.name cat);
      List.iter
        (fun r ->
          let us =
            try List.assoc cat r.Experiments.Fig2.breakdown with Not_found -> 0.0
          in
          Fmt.pr "%10.2f" us)
        cols;
      Fmt.pr "@.")
    Machine.Account.all;
  Fmt.pr "%-22s" "TOTAL (measured)";
  List.iter (fun r -> Fmt.pr "%10.2f" r.Experiments.Fig2.total_us) cols;
  Fmt.pr "@.%-22s" "TOTAL (paper)";
  List.iter
    (fun r ->
      match r.Experiments.Fig2.paper_us with
      | Some p -> Fmt.pr "%10.1f" p
      | None -> Fmt.pr "%10s" "-")
    cols;
  Fmt.pr "@.%-22s" "error vs paper";
  List.iter
    (fun r ->
      match r.Experiments.Fig2.paper_us with
      | Some p ->
          Fmt.pr "%9.1f%%" (100.0 *. (r.Experiments.Fig2.total_us -. p) /. p)
      | None -> Fmt.pr "%10s" "-")
    cols;
  Fmt.pr "@."

(* --- Figure 3 ----------------------------------------------------------- *)

let run_fig3 ~quick () =
  section "Figure 3: GetLength throughput vs processors (simulated)";
  let max_cpus = 16 in
  let horizon = if quick then Sim.Time.ms 50 else Sim.Time.ms 200 in
  let diff =
    Experiments.Fig3.run ~max_cpus ~horizon
      ~mode:Experiments.Fig3.Different_files ()
  in
  let single =
    Experiments.Fig3.run ~max_cpus ~horizon ~mode:Experiments.Fig3.Single_file ()
  in
  Fmt.pr
    "  base GetLength latency: %.1f us (paper: 66 us; half IPC, half server)@.@."
    diff.Experiments.Fig3.base_call_us;
  Fmt.pr " CPUs   perfect     different-files   single-file@.";
  List.iter2
    (fun pd ps ->
      Fmt.pr "  %2d   %9.0f   %9.0f (%.2fx)  %9.0f (%.2fx)@."
        pd.Experiments.Fig3.cpus
        (diff.Experiments.Fig3.perfect pd.Experiments.Fig3.cpus)
        pd.Experiments.Fig3.throughput
        (pd.Experiments.Fig3.throughput
        /. diff.Experiments.Fig3.perfect pd.Experiments.Fig3.cpus)
        ps.Experiments.Fig3.throughput
        (ps.Experiments.Fig3.throughput
        /. single.Experiments.Fig3.perfect ps.Experiments.Fig3.cpus))
    diff.Experiments.Fig3.points single.Experiments.Fig3.points;
  Fmt.pr
    "@.  different-files linearity: %.3f (paper: linear);  single-file \
     saturates at %d CPUs (paper: 4)@."
    (Experiments.Fig3.linearity diff)
    (Experiments.Fig3.saturation_cpus single);
  (* The figure itself, in the paper's shape: throughput vs processors. *)
  let max_y = diff.Experiments.Fig3.perfect max_cpus in
  let rows = 14 in
  Fmt.pr "@.  %8.0f +%s@." max_y (String.make (max_cpus * 4) '-');
  for row = rows - 1 downto 0 do
    let y_lo = max_y *. float_of_int row /. float_of_int rows in
    let y_hi = max_y *. float_of_int (row + 1) /. float_of_int rows in
    let cell cpus =
      let within v = v >= y_lo && v < y_hi in
      let d =
        (List.nth diff.Experiments.Fig3.points (cpus - 1))
          .Experiments.Fig3.throughput
      and s =
        (List.nth single.Experiments.Fig3.points (cpus - 1))
          .Experiments.Fig3.throughput
      and p = diff.Experiments.Fig3.perfect cpus in
      if within d && within s then "*"
      else if within d then "D"
      else if within s then "S"
      else if within p then "."
      else " "
    in
    Fmt.pr "  %8s |" "";
    for cpus = 1 to max_cpus do
      Fmt.pr " %s  " (cell cpus)
    done;
    Fmt.pr "@."
  done;
  Fmt.pr "  %8d +%s@." 0 (String.make (max_cpus * 4) '-');
  Fmt.pr "  %8s  " "";
  for cpus = 1 to max_cpus do
    Fmt.pr "%2d  " cpus
  done;
  Fmt.pr "@.  %8s   calls/s vs processors:  . perfect   D different files   S single file@." ""

(* --- remaining experiments ---------------------------------------------- *)

let run_t3 () =
  section "T-text-3: worst-case caches (dirty D + cold I)";
  Fmt.pr "%a@." Experiments.Fig2_icache.pp_result (Experiments.Fig2_icache.run ())

let run_f3b ~quick () =
  section "F3b: Zipf file popularity between the Figure-3 extremes";
  let horizon = if quick then Sim.Time.ms 20 else Sim.Time.ms 50 in
  Fmt.pr "%a@." Experiments.Fig3_zipf.pp_result
    (Experiments.Fig3_zipf.run ~horizon ())

let run_f3c ~quick () =
  section "F3c: request origin (programs vs parallel program)";
  let horizon = if quick then Sim.Time.ms 20 else Sim.Time.ms 50 in
  Fmt.pr "%a@." Experiments.Program_mix.pp_result
    (Experiments.Program_mix.run ~horizon ())

let run_l1 ~quick () =
  section "L1: latency under load";
  let horizon = if quick then Sim.Time.ms 25 else Sim.Time.ms 60 in
  Fmt.pr "%a@." Experiments.Latency_load.pp_result
    ( Experiments.Latency_load.Different_files,
      Experiments.Latency_load.run ~horizon
        ~mode:Experiments.Latency_load.Different_files () );
  Fmt.pr "%a@." Experiments.Latency_load.pp_result
    ( Experiments.Latency_load.Single_file,
      Experiments.Latency_load.run ~horizon
        ~mode:Experiments.Latency_load.Single_file () )

let run_intro () =
  section "T-intro: uniprocessor null-RPC context";
  Fmt.pr "%a@." Experiments.Uniproc_context.pp_result
    (Experiments.Uniproc_context.run ())

let run_a1 ~quick () =
  section "A1: hold-CD vs recycled stacks under multi-server mixes";
  let calls = if quick then 100 else 300 in
  Fmt.pr "%a@." Experiments.Ablate_holdcd.pp_result
    (Experiments.Ablate_holdcd.run ~calls ())

let run_a2 ~quick () =
  section "A2: PPC per-CPU pools vs LRPC-style shared locked pools";
  let horizon = if quick then Sim.Time.ms 25 else Sim.Time.ms 100 in
  Fmt.pr "%a@." Experiments.Ablate_lrpc.pp_result
    (Experiments.Ablate_lrpc.run ~max_cpus:16 ~horizon ())

let run_a3 () =
  section "A3: asynchronous prefetch PPCs";
  Fmt.pr "%a@." Experiments.Ablate_async.pp_result (Experiments.Ablate_async.run ())

let run_a4 () =
  section "A4: PPC vs the pre-existing message-passing IPC";
  Fmt.pr "%a@." Experiments.Ablate_msg.pp_result (Experiments.Ablate_msg.run ())

let run_a6 () =
  section "A6: stack-size policies (Section 4.5.4)";
  Fmt.pr "%a@." Experiments.Ablate_stack.pp_result (Experiments.Ablate_stack.run ())

let run_a7 ~quick () =
  section "A7: server-side locking granularity (mutex vs RW)";
  let horizon = if quick then Sim.Time.ms 20 else Sim.Time.ms 50 in
  Fmt.pr "%a@." Experiments.Ablate_rwlock.pp_result
    (Experiments.Ablate_rwlock.run ~horizon ())

let run_a8 () =
  section "A8: legacy message service — three transports";
  Fmt.pr "%a@." Experiments.Ablate_compat.pp_result (Experiments.Ablate_compat.run ())

let run_a9 ~quick () =
  section "A9: clustered name service (hierarchical clustering)";
  let horizon = if quick then Sim.Time.ms 15 else Sim.Time.ms 40 in
  Fmt.pr "%a@." Experiments.Ablate_cluster.pp_result
    (Experiments.Ablate_cluster.run ~horizon ())

let run_e2 () =
  section "E2: idle-processor migration under two technology regimes";
  Fmt.pr "%a@." Experiments.Ablate_migration.pp_result
    (Experiments.Ablate_migration.run ())

let run_e1 () =
  section "E1: cross-processor PPC variant (Section 4.3 future work)";
  Fmt.pr "%a@." Experiments.Ablate_remote.pp_result
    (Experiments.Ablate_remote.run ())

let run_copy () =
  section "Copy: bulk-payload sweep (register vs engine-copy vs grant-handoff)";
  Fmt.pr "%a@." Experiments.Copy_sweep.pp_result (Experiments.Copy_sweep.run ())

(* --- Bechamel: machine-time microbenchmarks ------------------------------ *)

open Bechamel
open Toolkit

(* One Test.make per table/figure: each subject regenerates (a reduced
   version of) that experiment, so the suite both exercises every harness
   and measures the simulator's own speed.  The a5_* subjects are the
   real-multicore measurements (ablation A5). *)

let bechamel_tests ~with_cross_domain =
  let fig2_subject =
    Test.make ~name:"fig2:u2u-call-path"
      (Staged.stage (fun () ->
           ignore
             (Experiments.Fig2.run ~warmup:4
                {
                  Experiments.Fig2.target = Experiments.Fig2.To_user;
                  hold_cd = false;
                  flushed = false;
                })))
  in
  let fig3_subject =
    Test.make ~name:"fig3:getlength-2cpu"
      (Staged.stage (fun () ->
           ignore
             (Experiments.Fig3.run_point ~horizon:(Sim.Time.ms 2)
                ~mode:Experiments.Fig3.Different_files ~cpus:2 ())))
  in
  let a1_subject =
    Test.make ~name:"a1:holdcd-mix"
      (Staged.stage (fun () ->
           ignore
             (Experiments.Ablate_holdcd.run ~calls:20 ~server_counts:[ 2 ] ())))
  in
  let a2_subject =
    Test.make ~name:"a2:lrpc-2cpu"
      (Staged.stage (fun () ->
           ignore
             (Experiments.Ablate_lrpc.run ~max_cpus:2 ~horizon:(Sim.Time.ms 2) ())))
  in
  let a3_subject =
    Test.make ~name:"a3:prefetch"
      (Staged.stage (fun () -> ignore (Experiments.Ablate_async.run ~blocks:4 ())))
  in
  let a4_subject =
    Test.make ~name:"a4:msg-vs-ppc"
      (Staged.stage (fun () -> ignore (Experiments.Ablate_msg.run ())))
  in
  let t3_subject =
    Test.make ~name:"t3:worst-case-caches"
      (Staged.stage (fun () -> ignore (Experiments.Fig2_icache.run ())))
  in
  let f3b_subject =
    Test.make ~name:"f3b:zipf-sweep"
      (Staged.stage (fun () ->
           ignore
             (Experiments.Fig3_zipf.run ~cpus:2 ~files:2
                ~horizon:(Sim.Time.ms 2) ~thetas:[ 1.0 ] ())))
  in
  let f3c_subject =
    Test.make ~name:"f3c:program-mix"
      (Staged.stage (fun () ->
           ignore
             (Experiments.Program_mix.run ~cpus:2 ~horizon:(Sim.Time.ms 2) ())))
  in
  let l1_subject =
    Test.make ~name:"l1:latency-load"
      (Staged.stage (fun () ->
           ignore
             (Experiments.Latency_load.run ~cpus:2 ~horizon:(Sim.Time.ms 2)
                ~thinks:[ 100.0 ] ~mode:Experiments.Latency_load.Single_file ())))
  in
  let a7_subject =
    Test.make ~name:"a7:rwlock"
      (Staged.stage (fun () ->
           ignore
             (Experiments.Ablate_rwlock.run ~max_cpus:2 ~horizon:(Sim.Time.ms 2) ())))
  in
  let a8_subject =
    Test.make ~name:"a8:compat-transports"
      (Staged.stage (fun () -> ignore (Experiments.Ablate_compat.run ())))
  in
  let a9_subject =
    Test.make ~name:"a9:clustered-naming"
      (Staged.stage (fun () ->
           ignore (Experiments.Ablate_cluster.run ~horizon:(Sim.Time.ms 2) ())))
  in
  let e2_subject =
    Test.make ~name:"e2:migration-regimes"
      (Staged.stage (fun () -> ignore (Experiments.Ablate_migration.run ())))
  in
  let a6_subject =
    Test.make ~name:"a6:stack-policies"
      (Staged.stage (fun () ->
           ignore (Experiments.Ablate_stack.run ~deep_pages:2 ())))
  in
  let e1_subject =
    Test.make ~name:"e1:remote-ppc"
      (Staged.stage (fun () -> ignore (Experiments.Ablate_remote.run ~cpus:4 ())))
  in
  (* A5: the real-multicore runtime, measured for real. *)
  let fast = Runtime.Fastcall.create () in
  let fast_ep =
    Runtime.Fastcall.register fast (fun _ctx args ->
        args.(0) <- args.(0) + args.(1);
        args.(7) <- 0)
  in
  let fast_args = Array.make 8 0 in
  let a5_local =
    Test.make ~name:"a5:fastcall-local"
      (Staged.stage (fun () ->
           fast_args.(0) <- 1;
           fast_args.(1) <- 2;
           ignore (Runtime.Fastcall.call fast ~ep:fast_ep fast_args)))
  in
  (* Same warm call, but through the versioned handle: the full
     lifecycle protocol (state load, stripe increment, recheck, stripe
     decrement) that replaced PR 2's direct handler-array fetch. *)
  let fast_h =
    Runtime.Fastcall.register_ep fast (fun _ctx args ->
        args.(0) <- args.(0) + args.(1);
        args.(7) <- 0)
  in
  let a5_lifecycle =
    Test.make ~name:"a5:lifecycle"
      (Staged.stage (fun () ->
           fast_args.(0) <- 1;
           fast_args.(1) <- 2;
           ignore (Runtime.Fastcall.call_h fast fast_h fast_args)))
  in
  (* The containment layer's cost when the handler actually raises:
     trap, fault bookkeeping, RC rewrite.  The breaker threshold is
     pushed out of reach so every iteration takes the fault path
     instead of tripping the entry point after the first few.  Target:
     within noise of a5:lifecycle plus the raise itself. *)
  let faulty = Runtime.Fastcall.create ~breaker_threshold:max_int () in
  let faulty_h = Runtime.Fastcall.register_ep faulty (fun _ctx _args -> raise Exit) in
  let a5_handler_fault =
    Test.make ~name:"a5:handler-fault"
      (Staged.stage (fun () ->
           ignore (Runtime.Fastcall.call_h faulty faulty_h fast_args)))
  in
  let locked = Runtime.Locked_registry.create () in
  let locked_ep =
    Runtime.Locked_registry.register locked (fun _frame args ->
        args.(0) <- args.(0) + args.(1);
        args.(7) <- 0)
  in
  let a5_locked =
    Test.make ~name:"a5:locked-registry"
      (Staged.stage (fun () ->
           fast_args.(0) <- 1;
           fast_args.(1) <- 2;
           ignore (Runtime.Locked_registry.call locked ~ep:locked_ep fast_args)))
  in
  let striped = Runtime.Striped_counter.create () in
  let a5_striped =
    Test.make ~name:"a5:striped-counter-incr"
      (Staged.stage (fun () -> Runtime.Striped_counter.incr striped))
  in
  let plain = Atomic.make 0 in
  let a5_atomic =
    Test.make ~name:"a5:single-atomic-incr"
      (Staged.stage (fun () -> Atomic.incr plain))
  in
  let cross_tests =
    if not with_cross_domain then []
    else begin
      let sd = Runtime.Fastcall.spawn_server fast in
      let srv = Runtime.Fastcall.spawn_channel_server fast in
      let cl_inline = Runtime.Fastcall.connect srv in
      let cl_queued = Runtime.Fastcall.connect ~inline_uncontended:false srv in
      [
        ( Test.make ~name:"a5:fastcall-cross-domain"
            (Staged.stage (fun () ->
                 fast_args.(0) <- 1;
                 fast_args.(1) <- 2;
                 ignore (Runtime.Fastcall.cross_call sd ~ep:fast_ep fast_args))),
          fun () -> Runtime.Fastcall.shutdown_server sd );
        ( Test.make ~name:"a5:channel-inline"
            (Staged.stage (fun () ->
                 fast_args.(0) <- 1;
                 fast_args.(1) <- 2;
                 ignore
                   (Runtime.Fastcall.channel_call cl_inline ~ep:fast_ep
                      fast_args))),
          fun () -> () );
        ( Test.make ~name:"a5:channel-queued"
            (Staged.stage (fun () ->
                 fast_args.(0) <- 1;
                 fast_args.(1) <- 2;
                 ignore
                   (Runtime.Fastcall.channel_call cl_queued ~ep:fast_ep
                      fast_args))),
          fun () -> () );
        (* Deadline bookkeeping on the queued path, deadline never
           expiring: when client and shard run in parallel the delta
           against a5:channel-queued is the whole cost of the
           abandonment machinery on a healthy call.  On a single-core
           host the comparison instead measures spin-versus-park
           scheduling — a deadline call may never park (stdlib
           condition waits have no timeout), so it burns its timeslice
           while the shard waits to run. *)
        ( Test.make ~name:"a5:deadline"
            (Staged.stage (fun () ->
                 fast_args.(0) <- 1;
                 fast_args.(1) <- 2;
                 ignore
                   (Runtime.Fastcall.channel_call_deadline cl_queued
                      ~ep:fast_ep ~deadline:max_int fast_args))),
          fun () -> Runtime.Fastcall.shutdown_channel_server srv );
      ]
    end
  in
  ( [
      fig2_subject;
      fig3_subject;
      a1_subject;
      a2_subject;
      a3_subject;
      a4_subject;
      a6_subject;
      a7_subject;
      a8_subject;
      a9_subject;
      t3_subject;
      f3b_subject;
      f3c_subject;
      l1_subject;
      e1_subject;
      e2_subject;
      a5_local;
      a5_lifecycle;
      a5_handler_fault;
      a5_locked;
      a5_striped;
      a5_atomic;
    ]
    @ List.map fst cross_tests,
    List.map snd cross_tests )

let run_bechamel ~quick () =
  section "Bechamel microbenchmarks (real machine time on this host)";
  let tests, cleanups = bechamel_tests ~with_cross_domain:(not quick) in
  let grouped = Test.make_grouped ~name:"ppc" ~fmt:"%s %s" tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let quota = if quick then 0.25 else 1.0 in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name o acc -> (name, o) :: acc) results [] in
  List.iter
    (fun (name, o) ->
      let ns =
        match Analyze.OLS.estimates o with Some [ e ] -> e | _ -> Float.nan
      in
      if ns >= 1e6 then Fmt.pr "  %-32s %12.3f ms/run@." name (ns /. 1e6)
      else if ns >= 1e3 then Fmt.pr "  %-32s %12.3f us/run@." name (ns /. 1e3)
      else Fmt.pr "  %-32s %12.1f ns/run@." name ns)
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows);
  List.iter (fun cleanup -> cleanup ()) cleanups

(* --- bench-regression trajectory (--json / --check) ----------------------- *)

(* Three sections.  "simulated" is deterministic — same code, same bytes
   — and CI diffs it structurally against the committed BENCH_PR<n>.json.
   "wallclock" is real machine time on whatever host ran --json; it is
   committed for the trajectory record and never gated directly.  "gate"
   (schema 2) is the wall-clock regression gate: a handful of subjects
   measured with repeats, recorded as median + noise-calibrated
   tolerance, and re-checked in ratios by --check (see bench_gate.ml).
   Getting faster never fails the gate; drifting past a subject's
   recorded tolerance in the bad direction does. *)

let simulated_json () =
  let fig2 = Experiments.Fig2.run_all () in
  let cond_name r =
    let c = r.Experiments.Fig2.condition in
    Printf.sprintf "%s/%s/%s"
      (match c.Experiments.Fig2.target with
      | Experiments.Fig2.To_user -> "u2u"
      | Experiments.Fig2.To_kernel -> "u2k")
      (if c.Experiments.Fig2.hold_cd then "hold" else "noCD")
      (if c.Experiments.Fig2.flushed then "flushed" else "primed")
  in
  let fig2_json =
    Bench_json.Arr
      (List.map
         (fun r ->
           Bench_json.Obj
             [
               ("condition", Bench_json.Str (cond_name r));
               ("total_us", Bench_json.Num r.Experiments.Fig2.total_us);
             ])
         fig2)
  in
  (* Fixed parameters regardless of --quick: the gate must produce the
     same bytes everywhere. *)
  let horizon = Sim.Time.ms 20 in
  let run mode = Experiments.Fig3.run ~max_cpus:8 ~horizon ~mode () in
  let diff = run Experiments.Fig3.Different_files in
  let single = run Experiments.Fig3.Single_file in
  let points d =
    Bench_json.Arr
      (List.map
         (fun p ->
           Bench_json.Obj
             [
               ("cpus", Bench_json.Num (float_of_int p.Experiments.Fig3.cpus));
               ("throughput", Bench_json.Num p.Experiments.Fig3.throughput);
             ])
         d.Experiments.Fig3.points)
  in
  (* PR7: deterministic bulk-payload sweep — simulated us per strategy
     per size, plus the two located crossover points. *)
  let sweep = Experiments.Copy_sweep.run () in
  let copy_points =
    Bench_json.Arr
      (List.map
         (fun p ->
           Bench_json.Obj
             [
               ( "bytes",
                 Bench_json.Num (float_of_int p.Experiments.Copy_sweep.size) );
               ( "register_us",
                 Bench_json.Num p.Experiments.Copy_sweep.register_us );
               ("engine_us", Bench_json.Num p.Experiments.Copy_sweep.engine_us);
               ("grant_us", Bench_json.Num p.Experiments.Copy_sweep.grant_us);
             ])
         sweep.Experiments.Copy_sweep.points)
  in
  let crossover = function
    | Some s -> Bench_json.Num (float_of_int s)
    | None -> Bench_json.Num (-1.0)
  in
  (* PR8: deterministic slice of the open-loop traffic study.  The full
     report is Workload.Report's own JSON; re-encode it through
     Bench_json so the whole simulated section shares one writer (the
     two writers use identical float formatting, so bytes match). *)
  let rec of_report (j : Workload.Report.Json.t) : Bench_json.t =
    match j with
    | Workload.Report.Json.Null -> Bench_json.Null
    | Workload.Report.Json.Bool b -> Bench_json.Bool b
    | Workload.Report.Json.Num f -> Bench_json.Num f
    | Workload.Report.Json.Str s -> Bench_json.Str s
    | Workload.Report.Json.Arr xs -> Bench_json.Arr (List.map of_report xs)
    | Workload.Report.Json.Obj kvs ->
        Bench_json.Obj (List.map (fun (k, v) -> (k, of_report v)) kvs)
  in
  let traffic =
    of_report
      (Workload.Report.to_json
         (Experiments.Traffic_study.report
            (Experiments.Traffic_study.run ~cfg:Experiments.Traffic_study.slice
               ())))
  in
  Bench_json.Obj
    [
      ("fig2", fig2_json);
      ( "fig3",
        Bench_json.Obj
          [
            ("base_call_us", Bench_json.Num diff.Experiments.Fig3.base_call_us);
            ("different_files", points diff);
            ("single_file", points single);
            ( "linearity",
              Bench_json.Num (Experiments.Fig3.linearity diff) );
            ( "saturation_cpus",
              Bench_json.Num
                (float_of_int (Experiments.Fig3.saturation_cpus single)) );
          ] );
      ( "copy",
        Bench_json.Obj
          [
            ("points", copy_points);
            ( "reg_engine_crossover_bytes",
              crossover sweep.Experiments.Copy_sweep.reg_engine_crossover );
            ( "engine_grant_crossover_bytes",
              crossover sweep.Experiments.Copy_sweep.engine_grant_crossover );
          ] );
      ("traffic", traffic);
    ]

(* Bechamel OLS ns/run for a list of named closures. *)
let measure_ns ~quota tests =
  let grouped = Test.make_grouped ~name:"x" ~fmt:"%s %s" tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name o acc ->
      let ns =
        match Analyze.OLS.estimates o with Some [ e ] -> e | _ -> Float.nan
      in
      (* "x name" -> "name" *)
      let name =
        match String.index_opt name ' ' with
        | Some i -> String.sub name (i + 1) (String.length name - i - 1)
        | None -> name
      in
      (name, ns) :: acc)
    results []

(* N producer domains, wall-clock calls/s.  [mk p] runs on producer
   domain [p] and returns the per-call closure. *)
let time_throughput ~producers ~per ~mk =
  let t0 = Unix.gettimeofday () in
  let doms =
    List.init producers (fun p ->
        Domain.spawn (fun () ->
            let f = mk p in
            for i = 1 to per do
              f i
            done))
  in
  List.iter Domain.join doms;
  let dt = Unix.gettimeofday () -. t0 in
  float_of_int (producers * per) /. dt

(* --- PR9: the same wire protocol, two protection-domain placements.
   "cross_process" runs the server in a forked child over an mmap'd
   segment file; "in_heap_domain" runs it on a domain over a heap
   segment.  Both use a bare Shm_channel dispatch (no Fastcall table in
   the way) so the delta isolates the substrate: mmap + real scheduler
   round trip vs shared heap.  Ping-pong is one call at a time;
   pipelined keeps the whole cell pool in flight.

   This MUST run before the bench process spawns any domain: forking a
   multi-domain OCaml runtime leaves the child's GC rendezvous waiting
   on domains that do not exist on its side of the fork. *)
let shm_wallclock_json ~quick () =
  let module Ch = Runtime.Shm_channel in
  let calls = if quick then 5_000 else 20_000 in
  let window = 64 in
  let num f = Bench_json.Num f in
  let dispatch ~ep_word:_ args =
    args.(0) <- args.(0) + args.(1);
    0
  in
  let measure ch =
    let a = Array.make (Ch.arg_words ch) 0 in
    let bad = ref 0 in
    let ping n =
      for i = 1 to n do
        a.(0) <- i;
        a.(1) <- 1;
        if Ch.call ch ~ep:0 a <> Ipc_intf.Errc.ok || a.(0) <> i + 1 then
          incr bad
      done
    in
    ping (min 1_000 calls) (* warm *);
    let t0 = Runtime.Doorbell.now_ns () in
    ping calls;
    let ping_ns =
      float_of_int (Runtime.Doorbell.now_ns () - t0) /. float_of_int calls
    in
    let cells = Array.make window 0 in
    let done_ = ref 0 in
    let t0 = Runtime.Doorbell.now_ns () in
    while !done_ < calls do
      let depth = min window (calls - !done_) in
      for k = 0 to depth - 1 do
        a.(0) <- !done_ + k;
        a.(1) <- 1;
        let c = Ch.submit_raw ch ~ep:0 a in
        if c < 0 then incr bad;
        cells.(k) <- c
      done;
      for k = 0 to depth - 1 do
        if cells.(k) >= 0 && Ch.await ch cells.(k) a <> Ipc_intf.Errc.ok then
          incr bad
      done;
      done_ := !done_ + depth
    done;
    let dt = Runtime.Doorbell.now_ns () - t0 in
    let pipelined_per_s = float_of_int calls /. (float_of_int dt /. 1e9) in
    (!bad, ping_ns, pipelined_per_s)
  in
  let cross =
    let path = Filename.temp_file "ppc_bench" ".seg" in
    ignore (Ch.create_file ~path ~capacity:window () : Runtime.Segment.t);
    match Unix.fork () with
    | 0 ->
        let code =
          match
            let srv = Ch.attach_file ~role:Ch.Server path in
            ignore (Ch.serve srv ~dispatch : int)
          with
          | () -> 0
          | exception _ -> 1
        in
        (* skip at_exit: the parent owns the buffered stdout *)
        Unix._exit code
    | pid ->
        let ch = Ch.attach_file ~role:Ch.Client path in
        if not (Ch.wait_peer_ready ch) then
          Fmt.failwith "bench shm: server process never became ready";
        let bad, ping_ns, pipe_s = measure ch in
        Ch.announce_shutdown ch;
        ignore (Unix.waitpid [] pid);
        (try Sys.remove path with Sys_error _ -> ());
        if bad > 0 then
          Fmt.failwith "bench shm: %d bad cross-process replies" bad;
        (ping_ns, pipe_s)
  in
  let heap =
    let seg = Ch.create_heap ~capacity:window () in
    let srv = Ch.attach ~role:Ch.Server seg in
    let cl = Ch.attach ~role:Ch.Client seg in
    let d = Domain.spawn (fun () -> ignore (Ch.serve srv ~dispatch : int)) in
    ignore (Ch.wait_peer_ready cl : bool);
    let bad, ping_ns, pipe_s = measure cl in
    Ch.announce_shutdown cl;
    Domain.join d;
    if bad > 0 then Fmt.failwith "bench shm: %d bad in-heap replies" bad;
    (ping_ns, pipe_s)
  in
  let pair (ping_ns, pipe_s) =
    Bench_json.Obj
      [
        ("pingpong_ns", num ping_ns); ("pipelined_calls_per_s", num pipe_s);
      ]
  in
  Bench_json.Obj
    [
      ("calls", num (float_of_int calls));
      ("window", num (float_of_int window));
      ("cross_process", pair cross);
      ("in_heap_domain", pair heap);
    ]

let wallclock_json ~quick ~shm () =
  let quota = if quick then 0.25 else 0.5 in
  let adder _ctx args =
    args.(0) <- args.(0) + args.(1);
    args.(7) <- 0
  in
  let fast = Runtime.Fastcall.create () in
  let fast_ep = Runtime.Fastcall.register fast adder in
  let faulty = Runtime.Fastcall.create ~breaker_threshold:max_int () in
  let faulty_h =
    Runtime.Fastcall.register_ep faulty (fun _ctx _args -> raise Exit)
  in
  let locked = Runtime.Locked_registry.create () in
  let locked_ep =
    Runtime.Locked_registry.register locked (fun _frame args ->
        args.(0) <- args.(0) + args.(1);
        args.(7) <- 0)
  in
  let sd = Runtime.Fastcall.spawn_server fast in
  let srv = Runtime.Fastcall.spawn_channel_server fast in
  let cl_inline = Runtime.Fastcall.connect srv in
  let cl_queued = Runtime.Fastcall.connect ~inline_uncontended:false srv in
  let args = Array.make 8 0 in
  let subject name f = Test.make ~name (Staged.stage f) in
  let pingpong =
    measure_ns ~quota
      [
        subject "local" (fun () ->
            args.(0) <- 1;
            args.(1) <- 2;
            ignore (Runtime.Fastcall.call fast ~ep:fast_ep args));
        subject "locked-registry" (fun () ->
            args.(0) <- 1;
            args.(1) <- 2;
            ignore (Runtime.Locked_registry.call locked ~ep:locked_ep args));
        subject "legacy-cross" (fun () ->
            args.(0) <- 1;
            args.(1) <- 2;
            ignore (Runtime.Fastcall.cross_call sd ~ep:fast_ep args));
        subject "channel-inline" (fun () ->
            args.(0) <- 1;
            args.(1) <- 2;
            ignore (Runtime.Fastcall.channel_call cl_inline ~ep:fast_ep args));
        subject "channel-queued" (fun () ->
            args.(0) <- 1;
            args.(1) <- 2;
            ignore (Runtime.Fastcall.channel_call cl_queued ~ep:fast_ep args));
        subject "channel-deadline" (fun () ->
            args.(0) <- 1;
            args.(1) <- 2;
            ignore
              (Runtime.Fastcall.channel_call_deadline cl_queued ~ep:fast_ep
                 ~deadline:max_int args));
        subject "handler-fault" (fun () ->
            ignore (Runtime.Fastcall.call_h faulty faulty_h args));
      ]
  in
  Runtime.Fastcall.shutdown_channel_server srv;
  (* Large enough that the producers' call work dominates the ~ms of
     Domain.spawn/join bracketing it: at ~30 ns per warm inline call,
     3 x 3000 calls is ~300 us of work inside ~4 ms of scaffolding, and
     the "throughput" is mostly domain startup.  3 x 30000 makes the
     measured region ~10x the scaffolding. *)
  let producers = 3 and per = if quick then 3_000 else 30_000 in
  let legacy_thr =
    time_throughput ~producers ~per ~mk:(fun _p ->
        let a = Array.make 8 0 in
        fun i ->
          a.(0) <- i;
          a.(1) <- 1;
          ignore (Runtime.Fastcall.cross_call sd ~ep:fast_ep a))
  in
  let channel_thr ~shards ~inline =
    let srv = Runtime.Fastcall.spawn_channel_server ~shards fast in
    let thr =
      time_throughput ~producers ~per ~mk:(fun _p ->
          let cl = Runtime.Fastcall.connect ~inline_uncontended:inline srv in
          let a = Array.make 8 0 in
          fun i ->
            a.(0) <- i;
            a.(1) <- 1;
            ignore (Runtime.Fastcall.channel_call cl ~ep:fast_ep a))
    in
    Runtime.Fastcall.shutdown_channel_server srv;
    thr
  in
  let channel_1 = channel_thr ~shards:1 ~inline:true in
  let channel_queued_1 = channel_thr ~shards:1 ~inline:false in
  let channel_2 = channel_thr ~shards:2 ~inline:true in
  Runtime.Fastcall.shutdown_server sd;
  let num f = Bench_json.Num f in
  (* --- PR7 bulk sweep on the real substrate: 4 KB -> 4 MB, three ways.
     "register" moves the payload 6 words per warm local call,
     "engine" pushes chunked descriptors through a live mover domain,
     "grant" hands a whole region over without copying.  ns per whole
     payload; the two crossovers fall out.  Plus the zero-alloc pin:
     minor words allocated by a warm submit->flush->reap cycle. *)
  let copy_json =
    let eng, store = Transfer.Copy_engine.create_with_buffers () in
    let big = 4 * 1024 * 1024 in
    let reg = function
      | Ok id -> id
      | Error rc -> Fmt.failwith "bench: region add rc=%d" rc
    in
    let src_id =
      reg
        (Transfer.Copy_engine.Buffers.add store ~owner:0
           (Bytes.init big (fun i -> Char.chr (i land 0xff))))
    in
    let dst_id =
      reg (Transfer.Copy_engine.Buffers.add store ~owner:0 (Bytes.create big))
    in
    let ecl = Transfer.Copy_engine.connect eng in
    let self = Transfer.Copy_engine.client_id ecl in
    let sizes =
      [ 4096; 16384; 65536; 262144; 1048576; 4194304 ]
    in
    let grant_regions =
      List.map
        (fun s ->
          ( s,
            reg
              (Transfer.Copy_engine.Buffers.add store ~owner:self
                 (Bytes.create s)) ))
        sizes
    in
    let mover = Transfer.Mover.spawn eng in
    let drain () =
      while Transfer.Copy_engine.outstanding ecl > 0 do
        if Transfer.Copy_engine.reap ecl = 0 then Domain.cpu_relax ()
      done
    in
    let engine_move bytes =
      let chunk = 64 * 1024 in
      let off = ref 0 in
      while !off < bytes do
        let len = if bytes - !off < chunk then bytes - !off else chunk in
        (match
           Transfer.Copy_engine.submit ecl ~op:Ipc_intf.Wellknown.bulk_copy
             ~src:src_id ~src_off:!off ~dst:dst_id ~dst_off:!off ~len ~tag:0
         with
        | 0 -> off := !off + len
        | _ ->
            ignore (Transfer.Copy_engine.flush ecl);
            ignore (Transfer.Copy_engine.reap ecl))
      done;
      ignore (Transfer.Copy_engine.flush ecl);
      drain ()
    in
    let grant_move (bytes, region) =
      (match
         Transfer.Copy_engine.submit ecl ~op:Ipc_intf.Wellknown.bulk_grant
           ~src:region ~src_off:0 ~dst:self ~dst_off:0 ~len:bytes ~tag:0
       with
      | 0 -> ()
      | rc -> Fmt.failwith "bench: grant submit rc=%d" rc);
      ignore (Transfer.Copy_engine.flush ecl);
      drain ()
    in
    let reg_args = Array.make 8 0 in
    let register_move bytes =
      (* 6 data words = 48 bytes per warm local call *)
      let calls = (bytes + 47) / 48 in
      for i = 1 to calls do
        reg_args.(0) <- i;
        reg_args.(1) <- 1;
        ignore (Runtime.Fastcall.call fast ~ep:fast_ep reg_args)
      done
    in
    let reps = if quick then 5 else 30 in
    let time_ns f =
      f ();
      (* warm *)
      let t0 = Unix.gettimeofday () in
      for _ = 1 to reps do
        f ()
      done;
      (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int reps
    in
    let points =
      List.map
        (fun s ->
          let register_ns = time_ns (fun () -> register_move s) in
          let engine_ns = time_ns (fun () -> engine_move s) in
          let grant_ns =
            time_ns (fun () -> grant_move (s, List.assoc s grant_regions))
          in
          (s, register_ns, engine_ns, grant_ns))
        sizes
    in
    (* Zero-alloc pin: a warm submit->flush->reap cycle must not touch
       the minor heap (Request_slab discipline, satellite of PR7). *)
    let warm () =
      (match
         Transfer.Copy_engine.submit ecl ~op:Ipc_intf.Wellknown.bulk_copy
           ~src:src_id ~src_off:0 ~dst:dst_id ~dst_off:0 ~len:64 ~tag:1
       with
      | 0 -> ()
      | rc -> Fmt.failwith "bench: warm submit rc=%d" rc);
      ignore (Transfer.Copy_engine.flush ecl);
      drain ()
    in
    for _ = 1 to 200 do
      warm ()
    done;
    let before = Gc.minor_words () in
    for _ = 1 to 200 do
      warm ()
    done;
    let warm_minor_words = Gc.minor_words () -. before in
    Transfer.Mover.shutdown mover;
    let crossover pick =
      match
        List.find_map
          (fun p -> let s, _, _, _ = p in if pick p then Some s else None)
          points
      with
      | Some s -> float_of_int s
      | None -> -1.0
    in
    Bench_json.Obj
      [
        ( "points",
          Bench_json.Arr
            (List.map
               (fun (s, r, e, g) ->
                 Bench_json.Obj
                   [
                     ("bytes", num (float_of_int s));
                     ("register_ns", num r);
                     ("engine_ns", num e);
                     ("grant_ns", num g);
                   ])
               points) );
        ( "reg_engine_crossover_bytes",
          num (crossover (fun (_, r, e, _) -> e < r)) );
        ( "engine_grant_crossover_bytes",
          num (crossover (fun (_, _, e, g) -> g < e)) );
        ("warm_submit_reap_minor_words", num warm_minor_words);
      ]
  in
  Bench_json.Obj
    [
      ("host_domains", num (float_of_int (Domain.recommended_domain_count ())));
      ( "pingpong_ns",
        Bench_json.Obj
          (List.map
             (fun (k, v) -> (k, num v))
             (List.sort (fun (a, _) (b, _) -> String.compare a b) pingpong)) );
      ( "throughput_calls_per_s",
        Bench_json.Obj
          [
            ("producers", num (float_of_int producers));
            ("calls_per_producer", num (float_of_int per));
            ("legacy-cross", num legacy_thr);
            ("channel-1shard", num channel_1);
            ("channel-1shard-queued", num channel_queued_1);
            ("channel-2shards", num channel_2);
          ] );
      ("shm", shm);
      ("copy_sweep", copy_json);
    ]

let run_json ~json_path ~check_path ~quick ~skip_wall_gate ~wall_gate_only
    ~gate_repeats ~gate_calls ~gate_quota () =
  let failed = ref false in
  (* Fork-based, so it must precede every Domain.spawn in this process —
     including the gate re-measurement below. *)
  let shm =
    match json_path with
    | None -> None
    | Some _ ->
        Fmt.pr "measuring shm section (cross-process fork, pre-domains)...@.";
        Some (shm_wallclock_json ~quick ())
  in
  let sim =
    if wall_gate_only then None
    else begin
      Fmt.pr "regenerating deterministic simulated section...@.";
      Some (simulated_json ())
    end
  in
  (match check_path with
  | None -> ()
  | Some path ->
      let committed = Bench_json.of_file path in
      (match sim with
      | None -> ()
      | Some sim -> (
          let want =
            match Bench_json.member "simulated" committed with
            | Some v -> v
            | None -> Fmt.failwith "%s: no \"simulated\" section" path
          in
          match Bench_json.compare_values ~got:sim ~want with
          | [] -> Fmt.pr "check: simulated section matches %s@." path
          | mismatches ->
              failed := true;
              Fmt.pr "check: simulated section DRIFTED from %s:@." path;
              List.iter
                (fun (p, got, want) ->
                  Fmt.pr "  %s: got %s, committed %s@." p got want)
                mismatches));
      if not skip_wall_gate then (
        match Bench_json.member "gate" committed with
        | None ->
            (* schema-1 trajectory points predate the gate; nothing to
               hold them to. *)
            Fmt.pr "check: %s has no \"gate\" section (schema 1) — wall-clock \
                    gate skipped@."
              path
        | Some gate ->
            Fmt.pr
              "check: re-measuring wall-clock gate subjects against %s...@."
              path;
            let verdicts =
              Bench_gate.check ?repeats:gate_repeats ?calls:gate_calls
                ?quota:gate_quota gate
            in
            List.iter (fun v -> Fmt.pr "%a@." Bench_gate.pp_verdict v) verdicts;
            if Bench_gate.all_ok verdicts then
              Fmt.pr "check: wall-clock gate OK (%d subjects within tolerance)@."
                (List.length verdicts)
            else begin
              failed := true;
              Fmt.pr "check: wall-clock gate FAILED against %s@." path
            end));
  (match json_path with
  | None -> ()
  | Some path ->
      let sim = match sim with Some s -> s | None -> simulated_json () in
      Fmt.pr "measuring wall-clock section (bechamel + throughput)...@.";
      let shm = match shm with Some s -> s | None -> assert false in
      let wall = wallclock_json ~quick ~shm () in
      let repeats = Option.value gate_repeats ~default:3 in
      let calls =
        Option.value gate_calls ~default:(if quick then 3_000 else 30_000)
      in
      let quota =
        Option.value gate_quota ~default:(if quick then 0.25 else 0.5)
      in
      Fmt.pr
        "calibrating wall-clock gate (%d repeats, %d calls/producer, %.2fs \
         quota)...@."
        repeats calls quota;
      let gate = Bench_gate.emit ~repeats ~calls ~quota in
      Bench_json.to_file path
        (Bench_json.Obj
           [
             ("schema", Bench_json.Num 2.0);
             ( "paper",
               Bench_json.Str
                 "Optimizing IPC Performance for Shared-Memory Multiprocessors \
                  (Gamsa, Krieger & Stumm, ICPP 1994)" );
             ("simulated", sim);
             ("wallclock", wall);
             ("gate", gate);
           ]);
      Fmt.pr "wrote %s@." path);
  if !failed then exit 1

let run_shm ~quick () =
  section "shm: cross-process vs in-heap PPC over the shared-segment ABI";
  Fmt.pr "%s@." (Bench_json.to_string (shm_wallclock_json ~quick ()))

(* --- driver --------------------------------------------------------------- *)

let known =
  [
    "shm"; "fig2"; "fig3"; "t3"; "f3b"; "f3c"; "l1"; "intro"; "a1"; "a2";
    "a3"; "a4"; "a6"; "a7"; "a8"; "a9"; "e1"; "e2"; "copy"; "bechamel";
  ]

let usage () =
  Fmt.pr
    "usage: bench/main.exe [--quick] [--json PATH] [--check PATH] [%s]...@."
    (String.concat "|" known);
  Fmt.pr
    "  --json PATH    write simulated + wall-clock + gate sections as JSON@.\
    \  --check PATH   re-run the deterministic simulated section AND the@.\
    \                 wall-clock gate; fail if either drifted from the@.\
    \                 committed file (gate drift is judged in ratios@.\
    \                 against each subject's recorded tolerance)@.\
    \  --skip-wall-gate   with --check: simulated section only@.\
    \  --wall-gate-only   with --check: wall-clock gate only@.@.\
     Gate knobs (independent of --quick, which only shrinks the@.\
     informational wallclock section and the experiment sweeps):@.\
    \  --gate-repeats N   measurement rounds per subject@.\
    \                     (--json default 3; --check defaults to the@.\
    \                     value recorded in the committed gate section)@.\
    \  --gate-calls N     per-producer calls for the throughput subjects@.\
    \                     (--json default 30000)@.\
    \  --gate-quota S     bechamel time budget in seconds for the@.\
    \                     ns-scale subjects (--json default 0.5)@.";
  exit 1

(* Pull "--flag VALUE" out of the argument list. *)
let rec extract_flag key = function
  | [] -> (None, [])
  | [ k ] when k = key -> usage ()
  | k :: v :: rest when k = key ->
      let found, rest = extract_flag key rest in
      ((match found with None -> Some v | s -> s), rest)
  | x :: rest ->
      let found, rest = extract_flag key rest in
      (found, x :: rest)

let extract_int_flag key args =
  let v, args = extract_flag key args in
  match v with
  | None -> (None, args)
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n > 0 -> (Some n, args)
      | _ ->
          Fmt.pr "%s: expected a positive integer, got %S@." key s;
          usage ())

let extract_float_flag key args =
  let v, args = extract_flag key args in
  match v with
  | None -> (None, args)
  | Some s -> (
      match float_of_string_opt s with
      | Some f when f > 0.0 -> (Some f, args)
      | _ ->
          Fmt.pr "%s: expected a positive number, got %S@." key s;
          usage ())

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let json_path, args = extract_flag "--json" args in
  let check_path, args = extract_flag "--check" args in
  let gate_repeats, args = extract_int_flag "--gate-repeats" args in
  let gate_calls, args = extract_int_flag "--gate-calls" args in
  let gate_quota, args = extract_float_flag "--gate-quota" args in
  let quick = List.mem "--quick" args in
  let skip_wall_gate = List.mem "--skip-wall-gate" args in
  let wall_gate_only = List.mem "--wall-gate-only" args in
  let which =
    List.filter
      (fun a ->
        a <> "--quick" && a <> "--skip-wall-gate" && a <> "--wall-gate-only")
      args
  in
  List.iter (fun a -> if not (List.mem a known) then usage ()) which;
  if skip_wall_gate && wall_gate_only then usage ();
  if json_path <> None || check_path <> None then begin
    if which <> [] then usage ();
    Fmt.pr
      "PPC IPC reproduction benchmarks — Gamsa, Krieger & Stumm (CSRI-294, \
       1994)@.";
    run_json ~json_path ~check_path ~quick ~skip_wall_gate ~wall_gate_only
      ~gate_repeats ~gate_calls ~gate_quota ();
    exit 0
  end;
  if skip_wall_gate || wall_gate_only || gate_repeats <> None
     || gate_calls <> None || gate_quota <> None
  then usage ();
  let all = which = [] in
  let want name = all || List.mem name which in
  Fmt.pr
    "PPC IPC reproduction benchmarks — Gamsa, Krieger & Stumm (CSRI-294, 1994)@.";
  (* shm forks; it must go first, before any section spawns a domain. *)
  if want "shm" then run_shm ~quick ();
  if want "fig2" then run_fig2 ();
  if want "fig3" then run_fig3 ~quick ();
  if want "t3" then run_t3 ();
  if want "f3b" then run_f3b ~quick ();
  if want "f3c" then run_f3c ~quick ();
  if want "l1" then run_l1 ~quick ();
  if want "intro" then run_intro ();
  if want "a1" then run_a1 ~quick ();
  if want "a2" then run_a2 ~quick ();
  if want "a3" then run_a3 ();
  if want "a4" then run_a4 ();
  if want "a6" then run_a6 ();
  if want "a7" then run_a7 ~quick ();
  if want "a8" then run_a8 ();
  if want "a9" then run_a9 ~quick ();
  if want "e1" then run_e1 ();
  if want "e2" then run_e2 ();
  if want "copy" then run_copy ();
  if want "bechamel" then run_bechamel ~quick ();
  Fmt.pr "@.done.@."
