(** Deterministic SplitMix64 pseudo-random number generator.

    The simulator never touches [Stdlib.Random]; all stochastic choices
    flow through an explicitly-seeded generator so runs are reproducible. *)

type t

val create : seed:int -> t

val next_int64 : t -> int64
(** Raw 64-bit output. *)

val bits : t -> int
(** 62 uniformly random non-negative bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument]
    if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponential sample with the given mean, truncated at [20 * mean]. *)

val split : t -> t
(** An independent generator derived from [t]'s stream. *)
