(** Unbounded typed mailbox for simulated processes. *)

type 'a t

val create : ?name:string -> unit -> 'a t

val length : 'a t -> int
val waiting_receivers : 'a t -> int

val send : 'a t -> 'a -> unit
(** Enqueue a message; wakes one blocked receiver if any. *)

val receive : Engine.t -> 'a t -> 'a
(** Dequeue a message, blocking the calling process while empty. *)

val try_receive : 'a t -> 'a option

val cancel_all : 'a t -> int
(** Resume all blocked receivers with {!Engine.Cancelled}. *)
