(* SplitMix64: a small, fast, deterministic PRNG.

   The simulator must be reproducible run-to-run, so it never touches
   [Random]; every stochastic choice goes through an explicitly seeded
   [Rng.t]. *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)
(* 62 non-negative bits *)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  bits t mod bound

let float t bound =
  let x = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (x /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Bounded exponential sample, for inter-arrival times in open-loop
   workloads.  Mean [mean]; truncated at 20x the mean to keep event
   horizons finite. *)
let exponential t ~mean =
  let u = Float.max 1e-12 (float t 1.0) in
  Float.min (20.0 *. mean) (-.mean *. Float.log u)

let split t = create ~seed:(Int64.to_int (next_int64 t))
