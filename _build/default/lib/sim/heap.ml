(* Array-backed binary min-heap.

   Used as the event queue of the simulation engine, where the ordering
   key is (time, sequence-number): the sequence number makes event order
   total and therefore every run deterministic. *)

type 'a t = {
  mutable data : 'a array;
  mutable size : int;
  cmp : 'a -> 'a -> int;
}

let create ?(capacity = 64) cmp =
  { data = [||]; size = 0; cmp = (ignore capacity; cmp) }

let length h = h.size
let is_empty h = h.size = 0

let grow h x =
  (* The array is allocated lazily so that [create] needs no witness
     element of type ['a]. *)
  if Array.length h.data = 0 then h.data <- Array.make 64 x
  else if h.size = Array.length h.data then begin
    let data = Array.make (2 * h.size) x in
    Array.blit h.data 0 data 0 h.size;
    h.data <- data
  end

let swap h i j =
  let t = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- t

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.cmp h.data.(i) h.data.(parent) < 0 then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && h.cmp h.data.(l) h.data.(!smallest) < 0 then smallest := l;
  if r < h.size && h.cmp h.data.(r) h.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h x =
  grow h x;
  h.data.(h.size) <- x;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h = if h.size = 0 then None else Some h.data.(0)

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    Some top
  end

let clear h = h.size <- 0

let to_list h = Array.to_list (Array.sub h.data 0 h.size)
