(* Streaming summary statistics (Welford) plus an exact-percentile buffer.

   Used by the benchmark harness to summarise per-call latencies and by
   tests to assert distributions. *)

type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
  mutable samples : float array;
  mutable sample_count : int;
  keep_samples : bool;
}

let create ?(keep_samples = true) () =
  {
    n = 0;
    mean = 0.0;
    m2 = 0.0;
    min = Float.infinity;
    max = Float.neg_infinity;
    samples = [||];
    sample_count = 0;
    keep_samples;
  }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x;
  if t.keep_samples then begin
    if t.sample_count = Array.length t.samples then begin
      let cap = Int.max 64 (2 * t.sample_count) in
      let samples = Array.make cap 0.0 in
      Array.blit t.samples 0 samples 0 t.sample_count;
      t.samples <- samples
    end;
    t.samples.(t.sample_count) <- x;
    t.sample_count <- t.sample_count + 1
  end

let count t = t.n
let mean t = if t.n = 0 then Float.nan else t.mean
let minimum t = if t.n = 0 then Float.nan else t.min
let maximum t = if t.n = 0 then Float.nan else t.max

let variance t =
  if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)

let stddev t = sqrt (variance t)

let percentile t p =
  if not t.keep_samples then invalid_arg "Stats.percentile: samples not kept";
  if t.sample_count = 0 then Float.nan
  else begin
    if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
    let sorted = Array.sub t.samples 0 t.sample_count in
    Array.sort Float.compare sorted;
    let rank = p /. 100.0 *. float_of_int (t.sample_count - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then sorted.(lo)
    else begin
      let frac = rank -. float_of_int lo in
      (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
    end
  end

let median t = percentile t 50.0

let pp ppf t =
  if t.n = 0 then Fmt.pf ppf "n=0"
  else
    Fmt.pf ppf "n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f" t.n (mean t)
      (stddev t) (minimum t) (maximum t)
