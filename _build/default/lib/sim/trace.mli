(** Bounded ring-buffer event tracing. *)

type event = {
  at : Time.t;
  seq : int;
  cpu : int;  (** -1 when not CPU-specific *)
  kind : string;
  detail : string;
}

type t

val create : ?capacity:int -> unit -> t

val record : t -> at:Time.t -> ?cpu:int -> kind:string -> string -> unit

val recorded : t -> int
(** Total events ever recorded (including overwritten ones). *)

val dropped : t -> int

val clear : t -> unit

val events : t -> event list
(** Oldest first; at most [capacity] survive. *)

val filter : t -> kind:string -> event list

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit
