(* Unbounded typed mailbox: the rendezvous primitive used by the kernel's
   message-passing IPC comparator and the device-server queues. *)

type 'a t = {
  items : 'a Queue.t;
  readers : Condition.t;
  name : string;
}

let create ?(name = "mailbox") () =
  { items = Queue.create (); readers = Condition.create ~name (); name }

let length t = Queue.length t.items
let waiting_receivers t = Condition.waiting t.readers

let send t x =
  Queue.push x t.items;
  ignore (Condition.signal t.readers)

let rec receive engine t =
  match Queue.take_opt t.items with
  | Some x -> x
  | None ->
      Condition.wait engine t.readers;
      receive engine t

let try_receive t = Queue.take_opt t.items

let cancel_all t = Condition.cancel_all t.readers
