(* Bounded event tracing.

   A ring buffer of timestamped events that higher layers (scheduler,
   IPC engine, locks) append to when tracing is enabled.  Recording is
   opt-in per engine and the detail strings are built through thunks, so
   a disabled tracer costs one branch per hook. *)

type event = {
  at : Time.t;
  seq : int;
  cpu : int;  (** -1 when not CPU-specific *)
  kind : string;
  detail : string;
}

type t = {
  capacity : int;
  buffer : event option array;
  mutable next : int;  (** total events ever recorded *)
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { capacity; buffer = Array.make capacity None; next = 0 }

let record t ~at ?(cpu = -1) ~kind detail =
  let ev = { at; seq = t.next; cpu; kind; detail } in
  t.buffer.(t.next mod t.capacity) <- Some ev;
  t.next <- t.next + 1

let recorded t = t.next
let dropped t = Int.max 0 (t.next - t.capacity)

let clear t =
  Array.fill t.buffer 0 t.capacity None;
  t.next <- 0

(* Oldest first (only the most recent [capacity] survive). *)
let events t =
  let n = Int.min t.next t.capacity in
  let first = t.next - n in
  List.init n (fun i ->
      match t.buffer.((first + i) mod t.capacity) with
      | Some ev -> ev
      | None -> assert false)

let filter t ~kind = List.filter (fun ev -> ev.kind = kind) (events t)

let pp_event ppf ev =
  if ev.cpu >= 0 then
    Fmt.pf ppf "[%a cpu%d] %-12s %s" Time.pp ev.at ev.cpu ev.kind ev.detail
  else Fmt.pf ppf "[%a     ] %-12s %s" Time.pp ev.at ev.kind ev.detail

let pp ppf t =
  List.iter (fun ev -> Fmt.pf ppf "%a@." pp_event ev) (events t)
