(* FIFO wait queue for simulated processes. *)

type waiter = (unit, exn) result -> unit

type t = { waiters : waiter Queue.t; name : string }

let create ?(name = "condition") () = { waiters = Queue.create (); name }

let waiting t = Queue.length t.waiters

let wait engine t =
  Engine.suspend engine (fun resume -> Queue.push resume t.waiters)

let signal t =
  match Queue.take_opt t.waiters with
  | None -> false
  | Some resume ->
      resume (Ok ());
      true

let broadcast t =
  let n = Queue.length t.waiters in
  for _ = 1 to n do
    ignore (signal t)
  done;
  n

let cancel_all t =
  let n = Queue.length t.waiters in
  for _ = 1 to n do
    match Queue.take_opt t.waiters with
    | None -> ()
    | Some resume -> resume (Error (Engine.Cancelled t.name))
  done;
  n
