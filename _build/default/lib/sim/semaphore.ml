(* Counting semaphore with FIFO wakeups. *)

type t = { mutable count : int; cond : Condition.t }

let create ?(name = "semaphore") initial =
  if initial < 0 then invalid_arg "Sim.Semaphore.create: negative count";
  { count = initial; cond = Condition.create ~name () }

let value t = t.count
let waiting t = Condition.waiting t.cond

let acquire engine t =
  (* A waiter woken by [release] must re-check nothing: release transfers
     the unit directly to the oldest waiter instead of incrementing the
     public count, preserving FIFO fairness. *)
  if t.count > 0 then t.count <- t.count - 1
  else Condition.wait engine t.cond

let try_acquire t =
  if t.count > 0 then begin
    t.count <- t.count - 1;
    true
  end
  else false

let release t = if not (Condition.signal t.cond) then t.count <- t.count + 1
