(* Simulated time, in integer nanoseconds.

   All simulation layers (machine cycles, kernel, IPC) convert into
   nanoseconds at their boundary so that a single clock drives the event
   engine.  An [int] holds 63 bits on 64-bit platforms: ~292 simulated
   years, far beyond any experiment here. *)

type t = int

let zero = 0
let ns n = n
let us n = n * 1_000
let ms n = n * 1_000_000
let s n = n * 1_000_000_000

let of_us_float f = int_of_float (Float.round (f *. 1_000.))
let to_us t = float_of_int t /. 1_000.
let to_ms t = float_of_int t /. 1_000_000.
let to_s t = float_of_int t /. 1_000_000_000.

let add = ( + )
let sub = ( - )
let compare = Int.compare
let ( <= ) (a : t) (b : t) = Stdlib.( <= ) a b
let ( < ) (a : t) (b : t) = Stdlib.( < ) a b

let pp ppf t =
  if t >= 1_000_000_000 then Fmt.pf ppf "%.3fs" (to_s t)
  else if t >= 1_000_000 then Fmt.pf ppf "%.3fms" (to_ms t)
  else if t >= 1_000 then Fmt.pf ppf "%.3fus" (to_us t)
  else Fmt.pf ppf "%dns" t
