(** Counting semaphore with FIFO handoff to waiters. *)

type t

val create : ?name:string -> int -> t
(** [create n] has [n] initial units. Raises [Invalid_argument] if
    [n < 0]. *)

val value : t -> int
val waiting : t -> int

val acquire : Engine.t -> t -> unit
(** Take one unit, blocking the calling process if none is available. *)

val try_acquire : t -> bool

val release : t -> unit
(** Return one unit; if a process is blocked, the unit is handed to the
    oldest waiter directly. *)
