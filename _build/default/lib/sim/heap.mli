(** Array-backed binary min-heap with a user-supplied comparison. *)

type 'a t

val create : ?capacity:int -> ('a -> 'a -> int) -> 'a t
(** [create cmp] is an empty heap ordered by [cmp] (minimum first). *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Minimum element, without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the minimum element. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** All elements in unspecified order (for inspection in tests). *)
