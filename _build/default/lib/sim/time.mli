(** Simulated time in integer nanoseconds. *)

type t = int

val zero : t

val ns : int -> t
(** [ns n] is [n] nanoseconds. *)

val us : int -> t
(** [us n] is [n] microseconds. *)

val ms : int -> t
(** [ms n] is [n] milliseconds. *)

val s : int -> t
(** [s n] is [n] seconds. *)

val of_us_float : float -> t
(** [of_us_float f] converts a fractional microsecond count, rounding to
    the nearest nanosecond. *)

val to_us : t -> float
val to_ms : t -> float
val to_s : t -> float

val add : t -> t -> t
val sub : t -> t -> t
val compare : t -> t -> int
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Human-readable rendering with an adaptive unit. *)
