lib/sim/condition.ml: Engine Queue
