lib/sim/semaphore.ml: Condition
