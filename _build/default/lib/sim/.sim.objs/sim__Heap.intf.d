lib/sim/heap.mli:
