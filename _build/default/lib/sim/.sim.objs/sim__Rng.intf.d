lib/sim/rng.mli:
