lib/sim/engine.ml: Effect Heap Int Option Time Trace
