lib/sim/trace.ml: Array Fmt Int List Time
