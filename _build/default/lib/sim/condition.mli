(** FIFO wait queue for simulated processes. *)

type t

val create : ?name:string -> unit -> t

val waiting : t -> int
(** Number of processes currently blocked. *)

val wait : Engine.t -> t -> unit
(** Block the calling process until {!signal}led (FIFO order). *)

val signal : t -> bool
(** Wake the oldest waiter; [false] if none was blocked. *)

val broadcast : t -> int
(** Wake every waiter; returns how many were woken. *)

val cancel_all : t -> int
(** Resume every waiter with {!Engine.Cancelled}; returns the count. *)
