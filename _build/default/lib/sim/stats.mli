(** Streaming summary statistics with optional exact percentiles. *)

type t

val create : ?keep_samples:bool -> unit -> t
(** [keep_samples] (default true) retains every observation so
    percentiles are exact; disable for very long runs. *)

val add : t -> float -> unit
val count : t -> int
val mean : t -> float
val minimum : t -> float
val maximum : t -> float
val variance : t -> float
(** Unbiased sample variance. *)

val stddev : t -> float

val percentile : t -> float -> float
(** Linear-interpolated percentile, [p] in [\[0,100\]].  Raises if the
    buffer was created with [keep_samples:false]. *)

val median : t -> float
val pp : Format.formatter -> t -> unit
