(* A block cache over the disk server.

   The missing layer between Bob and the disk: GET_BLOCK hits answer from
   an in-memory LRU of block buffers; misses read through the device
   server (blocking their worker for the disk's latency) and insert under
   the write lock, evicting the least recently used block at capacity.

   Locking follows the A7 lesson: the index is read-mostly, so lookups
   take the read side of a {!Kernel.Rw_spinlock} and only
   insertions/evictions take the write side — concurrent hits on
   different processors share. *)

let op_get_block = 1

type entry = {
  block : int;
  buf_addr : int;  (** the block's cache buffer (cached memory) *)
  mutable last_used : int;
}

type t = {
  ppc : Ppc.t;
  dev : Device_server.t;
  capacity : int;
  block_words : int;
  mutable ep : int;
  index_lock : Kernel.Rw_spinlock.t;
  entries : (int, entry) Hashtbl.t;
  buffers : int array;  (** buffer slots, recycled on eviction *)
  mutable free_slots : int list;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let ep_id t = t.ep
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
let cached_blocks t = Hashtbl.length t.entries

let touch t e =
  t.clock <- t.clock + 1;
  e.last_used <- t.clock

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun _ e acc ->
        match acc with
        | Some best when best.last_used <= e.last_used -> acc
        | _ -> Some e)
      t.entries None
  in
  match victim with
  | None -> ()
  | Some e ->
      Hashtbl.remove t.entries e.block;
      t.free_slots <- e.buf_addr :: t.free_slots;
      t.evictions <- t.evictions + 1

let handler t : Ppc.Call_ctx.handler =
 fun ctx args ->
  let open Ppc in
  let cpu = ctx.Call_ctx.cpu in
  let engine = ctx.Call_ctx.engine in
  let self = ctx.Call_ctx.self in
  Machine.Cpu.instr ~code:ctx.Call_ctx.server_code cpu 40;
  Null_server.touch_stack ctx ~words:8;
  if Reg_args.op args <> op_get_block then
    Reg_args.set_rc args Reg_args.err_bad_request
  else begin
    let block = Reg_args.get args 0 in
    (* Fast path: shared read lookup. *)
    Kernel.Rw_spinlock.acquire_read engine cpu self t.index_lock;
    Machine.Cpu.instr cpu 16;
    let hit = Hashtbl.find_opt t.entries block in
    (match hit with
    | Some e ->
        (* Stream the block out of the cache buffer. *)
        Machine.Cpu.load_words cpu e.buf_addr t.block_words;
        touch t e
    | None -> ());
    Kernel.Rw_spinlock.release_read engine cpu self t.index_lock;
    match hit with
    | Some e ->
        t.hits <- t.hits + 1;
        Reg_args.set args 0 e.buf_addr;
        Reg_args.set args 1 1;
        Reg_args.set_rc args Reg_args.ok
    | None -> (
        t.misses <- t.misses + 1;
        (* Read through: this worker blocks for the disk. *)
        match Device_server.read_block t.dev ~client:self ~block with
        | Error rc -> Reg_args.set_rc args rc
        | Ok _ ->
            Kernel.Rw_spinlock.acquire_write engine cpu self t.index_lock;
            Machine.Cpu.instr cpu 24;
            (* Someone may have inserted it while we slept on the disk. *)
            let e =
              match Hashtbl.find_opt t.entries block with
              | Some e -> e
              | None ->
                  if Hashtbl.length t.entries >= t.capacity then evict_lru t;
                  let buf_addr =
                    match t.free_slots with
                    | slot :: rest ->
                        t.free_slots <- rest;
                        slot
                    | [] -> t.buffers.(0) (* capacity >= 1 guarantees slots *)
                  in
                  (* Fill the buffer from the transfer. *)
                  Machine.Cpu.store_words cpu buf_addr t.block_words;
                  let e = { block; buf_addr; last_used = 0 } in
                  Hashtbl.replace t.entries block e;
                  e
            in
            touch t e;
            Kernel.Rw_spinlock.release_write engine cpu self t.index_lock;
            Reg_args.set args 0 e.buf_addr;
            Reg_args.set args 1 0;
            Reg_args.set_rc args Reg_args.ok)
  end

let install ?(capacity = 16) ?(block_bytes = 1024) ppc ~dev =
  if capacity <= 0 then invalid_arg "Block_cache.install: capacity";
  let kern = Ppc.kernel ppc in
  let buffers =
    Array.init capacity (fun _ -> Kernel.alloc kern ~bytes:block_bytes ~node:0)
  in
  let t =
    {
      ppc;
      dev;
      capacity;
      block_words = block_bytes / 4 / 8;
      (* stream a representative 1/8 of the block per request *)
      ep = -1;
      index_lock =
        Kernel.Rw_spinlock.create ~addr:(Kernel.alloc kern ~bytes:16 ~node:0) ();
      entries = Hashtbl.create 64;
      buffers;
      free_slots = Array.to_list buffers;
      clock = 0;
      hits = 0;
      misses = 0;
      evictions = 0;
    }
  in
  let server = Ppc.make_kernel_server ppc ~name:"block-cache" () in
  let ep = Ppc.register_direct ppc ~server ~handler:(handler t) in
  t.ep <- Ppc.Entry_point.id ep;
  t

(* Client stub: returns (buffer address, was_hit). *)
let get_block t ~client ~block =
  let open Ppc in
  let args = Reg_args.make () in
  Reg_args.set args 0 block;
  Reg_args.set_op args ~op:op_get_block ~flags:0;
  let rc =
    Ppc.call t.ppc ~client
      ~opflags:(Reg_args.op_flags ~op:op_get_block ~flags:0)
      ~ep_id:t.ep args
  in
  if rc = Reg_args.ok then Ok (Reg_args.get args 0, Reg_args.get args 1 = 1)
  else Error rc
