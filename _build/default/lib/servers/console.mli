(** Console (TTY) server: interrupt-driven character input with a line
    discipline and echo, blocking READ_LINE calls, per-character output
    writes. *)

val op_read_line : int
val op_write : int
val op_rx : int

type t

val install : ?uart_vector:int -> ?owner_cpu:int -> Ppc.t -> t

val ep_id : t -> int
val chars_received : t -> int
val chars_written : t -> int
val echoes : t -> int
val output : t -> string
val waiting_readers : t -> int

val fetch_line : t -> line_id:int -> string option
(** Retrieve a completed line's bytes (stands in for a CopyServer
    transfer through a region grant). *)

val inject_char : t -> char -> unit
(** The hardware side: one character arrives on the UART now.  Safe from
    event context. *)

val script_input : t -> start:Sim.Time.t -> gap:int -> string -> unit
(** Schedule a whole string to arrive, one character every [gap]
    nanoseconds from [start]. *)

val read_line : t -> client:Kernel.Process.t -> (string, int) result
(** Synchronous: blocks (in simulation) until a full line arrives. *)

val write : t -> client:Kernel.Process.t -> tag:int -> len:int -> int
