(** Bob, the file server: the Figure-3 workload server.  GetLength walks
    the cachable file index, then reads mutable metadata under the file's
    spinlock (uncached shared accesses on a coherence-free machine). *)

type work_profile = {
  path_instr : int;
  index_loads : int;
  stack_words : int;
  lock_hold_instr : int;
  meta_accesses : int;
  init_instr : int;
}

val default_profile : work_profile
(** Calibrated so a sequential GetLength costs ~33 us of server time
    (paper: 66 us total, half IPC, half file system). *)

val op_create : int
val op_get_length : int
val op_set_length : int

type lock_mode = Mutex | Rw

type file = {
  file_id : int;
  mutable length : int;
  lock : Kernel.Spinlock.t;
  rw : Kernel.Rw_spinlock.t;
  meta_addr : int;
  home : int;
}

type t

val install :
  ?profile:work_profile ->
  ?name:string ->
  ?lock_mode:lock_mode ->
  Ppc.t ->
  t * Ppc.Entry_point.t
(** Register Bob as a user-level PPC server (worker-init handler
    installed, demonstrating Section 4.5.3). *)

val create_file : t -> file_id:int -> length:int -> node:int -> file
(** Management-path creation with explicit metadata homing. *)

val find_file : t -> file_id:int -> file option
val files : t -> int
val ep_id : t -> int
val get_length_calls : t -> int
val worker_inits : t -> int
val auth : t -> Naming.Auth.t

val get_length : t -> client:Kernel.Process.t -> file_id:int -> (int, int) result
val set_length : t -> client:Kernel.Process.t -> file_id:int -> length:int -> int
val create_via_call : t -> client:Kernel.Process.t -> file_id:int -> length:int -> int
