lib/servers/block_cache.ml: Array Call_ctx Device_server Hashtbl Kernel Machine Null_server Ppc Reg_args
