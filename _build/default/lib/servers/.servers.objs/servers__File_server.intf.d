lib/servers/file_server.mli: Kernel Naming Ppc
