lib/servers/device_server.mli: Disk Kernel Ppc
