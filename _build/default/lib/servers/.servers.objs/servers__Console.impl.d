lib/servers/console.ml: Buffer Call_ctx Kernel List Machine Null_server Ppc Printf Queue Reg_args Sim String
