lib/servers/disk.ml: Kernel Machine Queue Sim
