lib/servers/counter_server.mli: Kernel Ppc
