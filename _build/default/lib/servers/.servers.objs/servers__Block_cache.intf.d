lib/servers/block_cache.mli: Device_server Kernel Ppc
