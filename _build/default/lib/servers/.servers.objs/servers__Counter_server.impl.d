lib/servers/counter_server.ml: Array Call_ctx Kernel Machine Null_server Ppc Reg_args
