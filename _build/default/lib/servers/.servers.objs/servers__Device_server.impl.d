lib/servers/device_server.ml: Call_ctx Disk Hashtbl Kernel List Machine Null_server Ppc Reg_args
