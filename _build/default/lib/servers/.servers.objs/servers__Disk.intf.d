lib/servers/disk.mli: Kernel Machine Sim
