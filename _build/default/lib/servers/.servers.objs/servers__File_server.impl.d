lib/servers/file_server.ml: Call_ctx Hashtbl Kernel Machine Naming Null_server Ppc Reg_args
