lib/servers/exception_server.mli: Kernel Ppc Sim
