lib/servers/console.mli: Kernel Ppc Sim
