lib/servers/exception_server.ml: Call_ctx Kernel List Machine Null_server Ppc Reg_args Sim
