(* A counter server in two builds: per-processor sharded state (the
   PPC-friendly design: requests touch only processor-local counters) and
   a single locked global counter (the anti-pattern).  Used by ablation
   benches to show how server-side locality composes with the IPC
   facility's. *)

type mode = Sharded | Global_lock

let op_increment = 1
let op_read = 2

type t = {
  ppc : Ppc.t;
  mode : mode;
  shards : int array;  (** per-CPU counts (Sharded) *)
  shard_addr : int array;  (** per-CPU counter words, locally homed *)
  mutable global : int;
  global_addr : int;
  global_lock : Kernel.Spinlock.t;
  mutable ep_id : int;
}

let ep_id t = t.ep_id
let mode t = t.mode

(* Reading a sharded counter sums the shards (rare, expensive);
   incrementing touches only the local shard (common, cheap). *)
let value t =
  match t.mode with
  | Sharded -> Array.fold_left ( + ) 0 t.shards
  | Global_lock -> t.global

let handler t : Ppc.Call_ctx.handler =
 fun ctx args ->
  let open Ppc in
  let cpu = ctx.Call_ctx.cpu in
  Machine.Cpu.instr ~code:ctx.Call_ctx.server_code cpu 20;
  Null_server.touch_stack ctx ~words:4;
  let op = Reg_args.op args in
  let node = Machine.Cpu.node cpu in
  match t.mode with
  | Sharded ->
      if op = op_increment then begin
        Machine.Cpu.load cpu t.shard_addr.(node);
        Machine.Cpu.store cpu t.shard_addr.(node);
        t.shards.(node) <- t.shards.(node) + 1;
        Reg_args.set_rc args Reg_args.ok
      end
      else if op = op_read then begin
        (* Gather: one (possibly remote) read per shard. *)
        Array.iter (fun addr -> Machine.Cpu.uncached_load cpu addr) t.shard_addr;
        Reg_args.set args 0 (value t);
        Reg_args.set_rc args Reg_args.ok
      end
      else Reg_args.set_rc args Reg_args.err_bad_request
  | Global_lock ->
      if op = op_increment || op = op_read then begin
        let engine = ctx.Call_ctx.engine in
        let self = ctx.Call_ctx.self in
        Kernel.Spinlock.acquire engine cpu self t.global_lock;
        Machine.Cpu.uncached_load cpu t.global_addr;
        if op = op_increment then begin
          Machine.Cpu.uncached_store cpu t.global_addr;
          t.global <- t.global + 1
        end;
        Kernel.Spinlock.release engine cpu self t.global_lock;
        Reg_args.set args 0 t.global;
        Reg_args.set_rc args Reg_args.ok
      end
      else Reg_args.set_rc args Reg_args.err_bad_request

let install ppc ~mode =
  let kern = Ppc.kernel ppc in
  let n = Kernel.n_cpus kern in
  let t =
    {
      ppc;
      mode;
      shards = Array.make n 0;
      shard_addr =
        Array.init n (fun node -> Kernel.alloc kern ~bytes:16 ~node);
      global = 0;
      global_addr = Kernel.alloc kern ~bytes:16 ~node:0;
      global_lock =
        Kernel.Spinlock.create ~addr:(Kernel.alloc kern ~bytes:16 ~node:0) ();
      ep_id = -1;
    }
  in
  let server = Ppc.make_kernel_server ppc ~name:"counter" () in
  let ep = Ppc.register_direct ppc ~server ~handler:(handler t) in
  t.ep_id <- Ppc.Entry_point.id ep;
  t

let increment t ~client =
  let open Ppc in
  let args = Reg_args.make () in
  Reg_args.set_op args ~op:op_increment ~flags:0;
  Ppc.call t.ppc ~client
    ~opflags:(Reg_args.op_flags ~op:op_increment ~flags:0)
    ~ep_id:t.ep_id args

let read t ~client =
  let open Ppc in
  let args = Reg_args.make () in
  Reg_args.set_op args ~op:op_read ~flags:0;
  let rc =
    Ppc.call t.ppc ~client
      ~opflags:(Reg_args.op_flags ~op:op_read ~flags:0)
      ~ep_id:t.ep_id args
  in
  if rc = Reg_args.ok then Ok (Reg_args.get args 0) else Error rc
