(* An exception server: the paper's example consumer of upcalls
   ("currently used for debugging and exception handling", Section 4.4).

   System components deliver exception notifications as upcalls; the
   server records them and optionally forwards a kill request to Frank
   for fatally faulting entry points. *)

type event = {
  program : Kernel.Program.id;
  code : int;
  detail : int;
  at : Sim.Time.t;
}

type t = {
  ppc : Ppc.t;
  mutable ep_id : int;
  mutable events : event list;
  mutable delivered : int;
}

let ep_id t = t.ep_id
let delivered t = t.delivered
let events t = List.rev t.events

let handler t : Ppc.Call_ctx.handler =
 fun ctx args ->
  let open Ppc in
  Machine.Cpu.instr ~code:ctx.Call_ctx.server_code ctx.Call_ctx.cpu 30;
  Null_server.touch_stack ctx ~words:6;
  t.delivered <- t.delivered + 1;
  t.events <-
    {
      program = Reg_args.get args 0;
      code = Reg_args.get args 1;
      detail = Reg_args.get args 2;
      at = Sim.Engine.now ctx.Call_ctx.engine;
    }
    :: t.events;
  Reg_args.set_rc args Reg_args.ok

let install ppc =
  let t = { ppc; ep_id = -1; events = []; delivered = 0 } in
  let server = Ppc.make_kernel_server ppc ~name:"exception-server" () in
  let ep = Ppc.register_direct ppc ~server ~handler:(handler t) in
  t.ep_id <- Ppc.Entry_point.id ep;
  t

(* Receive every PPC handler fault as an upcall (Section 4.4's
   "exception handling" use).  [code] 1 = handler fault; detail carries
   the faulting entry point. *)
let attach_to_faults t =
  Ppc.Engine.set_fault_notifier (Ppc.engine t.ppc)
    (Some
       (fun ~cpu_index ~ep_id ~caller_program ->
         let args = Ppc.Reg_args.make () in
         Ppc.Reg_args.set args 0 caller_program;
         Ppc.Reg_args.set args 1 1;
         Ppc.Reg_args.set args 2 ep_id;
         Ppc.Upcall.trigger (Ppc.engine t.ppc) ~cpu_index ~ep_id:t.ep_id args))

(* Deliver an exception notification as an upcall on [cpu_index]. *)
let notify t ~cpu_index ~program ~code ~detail =
  let args = Ppc.Reg_args.make () in
  Ppc.Reg_args.set args 0 program;
  Ppc.Reg_args.set args 1 code;
  Ppc.Reg_args.set args 2 detail;
  Ppc.Upcall.trigger (Ppc.engine t.ppc) ~cpu_index ~ep_id:t.ep_id args
