(* A console (TTY) server.

   A second interrupt-driven device beside the disk, with different
   dynamics: input arrives character by character at arbitrary times
   (each delivery raises the UART's vector, dispatched as an async PPC —
   Section 4.4), a line discipline accumulates characters and echoes
   them, and READ_LINE calls block their worker until a full line is
   available.  Output writes are synchronous PPCs charged per character.

   The register-only call protocol returns a line *id*; the bytes
   themselves are retrieved out-of-band (in the real system, via a region
   grant and the CopyServer — see [fetch_line]). *)

let op_read_line = 1
let op_write = 2
let op_rx = 3  (** injected by the UART interrupt *)

type reader = {
  r_proc : Kernel.Process.t;
  r_kcpu : Kernel.Kcpu.t;
  mutable r_line : int option;  (** filled in by the matcher before wake *)
}

type t = {
  ppc : Ppc.t;
  mutable ep_id : int;
  uart_vector : int;
  owner_cpu : int;
  rx_staging : char Queue.t;  (** characters the "UART" has latched *)
  mutable partial : char list;  (** current line, reversed *)
  mutable lines : (int * string) list;  (** completed, newest first *)
  mutable next_line_id : int;
  waiting : reader Queue.t;
  mutable ready_lines : int Queue.t;  (** ids not yet claimed by a reader *)
  mutable chars_rx : int;
  mutable chars_tx : int;
  mutable echoes : int;
  output : Buffer.t;
}

let ep_id t = t.ep_id
let chars_received t = t.chars_rx
let chars_written t = t.chars_tx
let echoes t = t.echoes
let output t = Buffer.contents t.output
let waiting_readers t = Queue.length t.waiting

let fetch_line t ~line_id = List.assoc_opt line_id t.lines

(* Serve queued completed lines to blocked readers, oldest first. *)
let match_readers t =
  while
    (not (Queue.is_empty t.waiting)) && not (Queue.is_empty t.ready_lines)
  do
    let line = Queue.pop t.ready_lines in
    let r = Queue.pop t.waiting in
    r.r_line <- Some line;
    Kernel.Kcpu.ready r.r_kcpu r.r_proc
  done

let handler t : Ppc.Call_ctx.handler =
 fun ctx args ->
  let open Ppc in
  let cpu = ctx.Call_ctx.cpu in
  Machine.Cpu.instr ~code:ctx.Call_ctx.server_code cpu 30;
  Null_server.touch_stack ctx ~words:6;
  let op = Reg_args.op args in
  if op = op_write then begin
    (* Synchronous output: cost per character (device FIFO writes are
       uncached device-register stores). *)
    let len = Reg_args.get args 0 in
    let tag = Reg_args.get args 1 in
    for _ = 1 to len do
      Machine.Cpu.instr cpu 2;
      Machine.Cpu.uncached_store cpu (ctx.Call_ctx.server_data + 0x80)
    done;
    t.chars_tx <- t.chars_tx + len;
    Buffer.add_string t.output (Printf.sprintf "[out:%d x%d]" tag len);
    Reg_args.set_rc args Reg_args.ok
  end
  else if op = op_read_line then begin
    (* Take the oldest completed line, blocking this worker until one
       arrives. *)
    let id =
      if Queue.is_empty t.ready_lines then begin
        let r =
          { r_proc = ctx.Call_ctx.self; r_kcpu = ctx.Call_ctx.kcpu;
            r_line = None }
        in
        Queue.push r t.waiting;
        Kernel.Kcpu.block ctx.Call_ctx.kcpu ctx.Call_ctx.self;
        r.r_line
      end
      else Some (Queue.pop t.ready_lines)
    in
    Machine.Cpu.instr cpu 12;
    match id with
    | Some id -> (
        match fetch_line t ~line_id:id with
        | Some line ->
            Reg_args.set args 0 id;
            Reg_args.set args 1 (String.length line);
            Reg_args.set_rc args Reg_args.ok
        | None -> Reg_args.set_rc args Reg_args.err_bad_request)
    | None -> Reg_args.set_rc args Reg_args.err_bad_request
  end
  else if op = op_rx then begin
    (* Interrupt-dispatched receive: drain the latched characters through
       the line discipline, echoing each. *)
    let rec drain () =
      match Queue.take_opt t.rx_staging with
      | None -> ()
      | Some c ->
          Machine.Cpu.instr cpu 6;
          Machine.Cpu.uncached_load cpu (ctx.Call_ctx.server_data + 0x84);
          t.chars_rx <- t.chars_rx + 1;
          (* Echo. *)
          Machine.Cpu.uncached_store cpu (ctx.Call_ctx.server_data + 0x80);
          t.echoes <- t.echoes + 1;
          (if c = '\n' then begin
             let line =
               String.init (List.length t.partial) (fun i ->
                   List.nth (List.rev t.partial) i)
             in
             let id = t.next_line_id in
             t.next_line_id <- id + 1;
             t.lines <- (id, line) :: t.lines;
             t.partial <- [];
             Queue.push id t.ready_lines
           end
           else t.partial <- c :: t.partial);
          drain ()
    in
    drain ();
    match_readers t;
    Reg_args.set_rc args Reg_args.ok
  end
  else Reg_args.set_rc args Reg_args.err_bad_request

let install ?(uart_vector = 0x20) ?(owner_cpu = 0) ppc =
  let t =
    {
      ppc;
      ep_id = -1;
      uart_vector;
      owner_cpu;
      rx_staging = Queue.create ();
      partial = [];
      lines = [];
      next_line_id = 1;
      waiting = Queue.create ();
      ready_lines = Queue.create ();
      chars_rx = 0;
      chars_tx = 0;
      echoes = 0;
      output = Buffer.create 64;
    }
  in
  let server = Ppc.make_kernel_server ppc ~name:"console" () in
  let ep = Ppc.register_direct ppc ~server ~handler:(handler t) in
  t.ep_id <- Ppc.Entry_point.id ep;
  let kern = Ppc.kernel ppc in
  Ppc.Intr_dispatch.attach (Ppc.engine ppc) ~vector:uart_vector
    ~kcpu:(Kernel.kcpu kern owner_cpu) ~ep_id:t.ep_id
    ~make_args:(fun () ->
      let args = Ppc.Reg_args.make () in
      Ppc.Reg_args.set_op args ~op:op_rx ~flags:0;
      args)
    ();
  t

(* The "hardware" side: a character arrives on the UART at the current
   simulated time.  Safe from event context. *)
let inject_char t c =
  Queue.push c t.rx_staging;
  Kernel.Interrupt.raise_vector
    (Kernel.interrupts (Ppc.kernel t.ppc))
    ~vector:t.uart_vector

(* Script a whole input arriving over time. *)
let script_input t ~start ~gap text =
  let kern = Ppc.kernel t.ppc in
  String.iteri
    (fun i c ->
      Sim.Engine.schedule_at (Kernel.engine kern)
        (Sim.Time.add start (Sim.Time.ns (i * gap)))
        (fun () -> inject_char t c))
    text

(* Client stubs. *)

let read_line t ~client =
  let open Ppc in
  let args = Reg_args.make () in
  Reg_args.set_op args ~op:op_read_line ~flags:0;
  let rc =
    Ppc.call t.ppc ~client
      ~opflags:(Reg_args.op_flags ~op:op_read_line ~flags:0)
      ~ep_id:t.ep_id args
  in
  if rc = Reg_args.ok then
    match fetch_line t ~line_id:(Reg_args.get args 0) with
    | Some line -> Ok line
    | None -> Error Reg_args.err_bad_request
  else Error rc

let write t ~client ~tag ~len =
  let open Ppc in
  let args = Reg_args.make () in
  Reg_args.set args 0 len;
  Reg_args.set args 1 tag;
  Reg_args.set_op args ~op:op_write ~flags:0;
  Ppc.call t.ppc ~client
    ~opflags:(Reg_args.op_flags ~op:op_write ~flags:0)
    ~ep_id:t.ep_id args
