(** Exception server: consumes upcall-delivered exception notifications
    (Section 4.4). *)

type event = {
  program : Kernel.Program.id;
  code : int;
  detail : int;
  at : Sim.Time.t;
}

type t

val install : Ppc.t -> t
val ep_id : t -> int
val delivered : t -> int
val events : t -> event list
(** Oldest first. *)

val attach_to_faults : t -> unit
(** Subscribe to PPC handler faults: each becomes an upcall-delivered
    event with [code] 1 and the faulting entry point as [detail]. *)

val notify :
  t -> cpu_index:int -> program:Kernel.Program.id -> code:int -> detail:int -> unit
(** Deliver a notification as an upcall on [cpu_index]. *)
