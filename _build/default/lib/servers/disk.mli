(** Simulated disk: shared request queue under a spinlock; completions
    raise an interrupt vector on the owning processor (Section 4.3). *)

type t

val create :
  Kernel.t -> owner_cpu:int -> vector:int -> latency:Sim.Time.t -> t

val owner_cpu : t -> int
val vector : t -> int
val submitted : t -> int
val serviced : t -> int
val queue_depth : t -> int

val submit : t -> cpu:Machine.Cpu.t -> proc:Kernel.Process.t -> req_id:int -> unit
(** Append a request from the calling process's CPU (charged shared-queue
    traffic); starts service if the disk was idle. *)

val take_completed : t -> int list
(** Drain the completion list (called by the interrupt-dispatched
    handler). *)
