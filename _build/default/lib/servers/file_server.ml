(* Bob, the file server.

   The workload server of the paper's Figure 3: clients repeatedly
   request the length of an open file.  The handler does the real work a
   file server would — authenticate the caller, walk the (read-only,
   cachable) file index, then take the file's lock and read its mutable
   metadata, which on a coherence-free machine means uncached shared
   accesses.

   Two sharing regimes fall out naturally:

   - *different files*: each client hits its own file; locks are
     uncontended and metadata is homed near its usual caller, so
     throughput scales linearly with processors;
   - *a single file*: every call serialises on that file's spinlock, and
     throughput saturates once enough processors contend (the paper
     measures saturation at four).

   Worker initialization (Section 4.5.3) is exercised for real: a fresh
   worker's first call runs [init_handler], which charges one-time setup
   and swaps in the steady-state routine. *)

(* Handler work knobs, calibrated so the sequential GetLength costs
   ~33 us of server time (the paper: 66 us total, half IPC half server). *)
type work_profile = {
  path_instr : int;  (** instructions outside the critical section *)
  index_loads : int;  (** cached loads walking the file index *)
  stack_words : int;
  lock_hold_instr : int;  (** instructions inside the critical section *)
  meta_accesses : int;  (** uncached shared metadata accesses (locked) *)
  init_instr : int;  (** one-time worker initialization *)
}

let default_profile =
  {
    path_instr = 220;
    index_loads = 24;
    stack_words = 12;
    lock_hold_instr = 80;
    meta_accesses = 10;
    init_instr = 400;
  }

let op_create = 1
let op_get_length = 2
let op_set_length = 3

type lock_mode = Mutex | Rw
(** How per-file metadata is protected: one spinlock (the paper's "a
    single lock on entry would be sufficient"), or a readers-writer lock
    so concurrent GetLengths share. *)

type file = {
  file_id : int;
  mutable length : int;
  lock : Kernel.Spinlock.t;
  rw : Kernel.Rw_spinlock.t;
  meta_addr : int;  (** mutable shared metadata: uncached *)
  home : int;
}

type t = {
  ppc : Ppc.t;
  profile : work_profile;
  lock_mode : lock_mode;
  auth : Naming.Auth.t;
  files : (int, file) Hashtbl.t;
  index_addr : int;  (** read-only index: cachable *)
  mutable ep_id : int;
  mutable get_length_calls : int;
  mutable worker_inits : int;
}

let files t = Hashtbl.length t.files
let ep_id t = t.ep_id
let get_length_calls t = t.get_length_calls
let worker_inits t = t.worker_inits
let auth t = t.auth

let create_file t ~file_id ~length ~node =
  if Hashtbl.mem t.files file_id then
    invalid_arg "File_server.create_file: file exists";
  let kern = Ppc.kernel t.ppc in
  let meta_addr = Kernel.alloc kern ~bytes:64 ~node in
  let file =
    {
      file_id;
      length;
      lock =
        Kernel.Spinlock.create ~transfer_cycles:60
          ~addr:(Kernel.alloc kern ~bytes:16 ~node)
          ();
      rw =
        Kernel.Rw_spinlock.create ~transfer_cycles:60
          ~addr:(Kernel.alloc kern ~bytes:16 ~node)
          ();
      meta_addr;
      home = node;
    }
  in
  Hashtbl.replace t.files file_id file;
  file

let find_file t ~file_id = Hashtbl.find_opt t.files file_id

(* The steady-state request handler. *)
let real_handler t : Ppc.Call_ctx.handler =
 fun ctx args ->
  let open Ppc in
  let cpu = ctx.Call_ctx.cpu in
  let p = t.profile in
  Machine.Cpu.instr ~code:ctx.Call_ctx.server_code cpu p.path_instr;
  Null_server.touch_stack ctx ~words:p.stack_words;
  if Naming.Auth.require t.auth ctx ~perm:Naming.Auth.Read args then begin
    (* Walk the file index (read-only, cachable). *)
    let file_id = Reg_args.get args 0 in
    for i = 0 to p.index_loads - 1 do
      Machine.Cpu.load cpu (t.index_addr + (file_id mod 16 * 64) + (4 * i))
    done;
    let op = Reg_args.op args in
    if op = op_create then begin
      (* Creation through the PPC interface homes metadata on the calling
         processor. *)
      if Hashtbl.mem t.files file_id then
        Reg_args.set_rc args Reg_args.err_bad_request
      else begin
        ignore
          (create_file t ~file_id ~length:(Reg_args.get args 1)
             ~node:(Machine.Cpu.node cpu));
        Reg_args.set_rc args Reg_args.ok
      end
    end
    else
      match Hashtbl.find_opt t.files file_id with
      | None -> Reg_args.set_rc args Reg_args.err_bad_request
      | Some file -> (
        let engine = ctx.Call_ctx.engine in
        let self = ctx.Call_ctx.self in
        if op = op_get_length then begin
          t.get_length_calls <- t.get_length_calls + 1;
          (match t.lock_mode with
          | Mutex -> Kernel.Spinlock.acquire engine cpu self file.lock
          | Rw -> Kernel.Rw_spinlock.acquire_read engine cpu self file.rw);
          Machine.Cpu.instr ~code:ctx.Call_ctx.server_code cpu
            p.lock_hold_instr;
          for i = 0 to p.meta_accesses - 1 do
            Machine.Cpu.uncached_load cpu (file.meta_addr + (4 * (i mod 16)))
          done;
          let len = file.length in
          (match t.lock_mode with
          | Mutex -> Kernel.Spinlock.release engine cpu self file.lock
          | Rw -> Kernel.Rw_spinlock.release_read engine cpu self file.rw);
          Reg_args.set args 0 len;
          Reg_args.set_rc args Reg_args.ok
        end
        else if op = op_set_length then begin
          (match t.lock_mode with
          | Mutex -> Kernel.Spinlock.acquire engine cpu self file.lock
          | Rw -> Kernel.Rw_spinlock.acquire_write engine cpu self file.rw);
          Machine.Cpu.instr ~code:ctx.Call_ctx.server_code cpu
            p.lock_hold_instr;
          for i = 0 to p.meta_accesses - 1 do
            Machine.Cpu.uncached_store cpu (file.meta_addr + (4 * (i mod 16)))
          done;
          file.length <- Reg_args.get args 1;
          (match t.lock_mode with
          | Mutex -> Kernel.Spinlock.release engine cpu self file.lock
          | Rw -> Kernel.Rw_spinlock.release_write engine cpu self file.rw);
          Reg_args.set_rc args Reg_args.ok
        end
        else Reg_args.set_rc args Reg_args.err_bad_request)
  end

(* Worker initialization (Section 4.5.3): the first call into a fresh
   worker runs this, which does one-time setup, swaps the handling
   routine, and then services the request. *)
let init_handler t : Ppc.Call_ctx.handler =
 fun ctx args ->
  t.worker_inits <- t.worker_inits + 1;
  Machine.Cpu.instr ~code:ctx.Ppc.Call_ctx.server_code ctx.Ppc.Call_ctx.cpu
    t.profile.init_instr;
  let real = real_handler t in
  ctx.Ppc.Call_ctx.swap_handler real;
  real ctx args

let install ?(profile = default_profile) ?(name = "bob") ?(lock_mode = Mutex)
    ppc =
  let kern = Ppc.kernel ppc in
  let server = Ppc.make_user_server ppc ~name () in
  let t =
    {
      ppc;
      profile;
      lock_mode;
      auth =
        Naming.Auth.create
          ~data_addr:(Kernel.alloc kern ~bytes:512 ~node:0)
          ();
      files = Hashtbl.create 64;
      index_addr = Kernel.alloc kern ~bytes:1024 ~node:0;
      ep_id = -1;
      get_length_calls = 0;
      worker_inits = 0;
    }
  in
  let ep = Ppc.register_direct ppc ~server ~handler:(init_handler t) in
  t.ep_id <- Ppc.Entry_point.id ep;
  (t, ep)

(* Client-side stubs. *)

let simple_call t ~client ~op ~file_id ~value =
  let open Ppc in
  let args = Reg_args.make () in
  Reg_args.set args 0 file_id;
  Reg_args.set args 1 value;
  Reg_args.set_op args ~op ~flags:0;
  let rc =
    Ppc.call t.ppc ~client ~opflags:(Reg_args.op_flags ~op ~flags:0)
      ~ep_id:t.ep_id args
  in
  (rc, Reg_args.get args 0)

let get_length t ~client ~file_id =
  match simple_call t ~client ~op:op_get_length ~file_id ~value:0 with
  | rc, len when rc = Ppc.Reg_args.ok -> Ok len
  | rc, _ -> Error rc

let set_length t ~client ~file_id ~length =
  fst (simple_call t ~client ~op:op_set_length ~file_id ~value:length)

let create_via_call t ~client ~file_id ~length =
  fst (simple_call t ~client ~op:op_create ~file_id ~value:length)
