(** The disk device server: synchronous block reads that block their
    worker, completions delivered by interrupt-dispatched PPCs, and
    asynchronous prefetch (Sections 4.3/4.4). *)

val op_read_block : int
val op_complete : int

type t

val install : Ppc.t -> disk:Disk.t -> t

val ep_id : t -> int
val reads : t -> int
val completions : t -> int
val outstanding : t -> int

val read_block :
  t -> client:Kernel.Process.t -> block:int -> (int, int) result
(** Synchronous read: returns the request id that completed. *)

val prefetch_block :
  t ->
  client:Kernel.Process.t ->
  block:int ->
  ?on_complete:(Ppc.Reg_args.t -> unit) ->
  unit ->
  unit
(** Fire-and-forget asynchronous read (the paper's prefetch example). *)
