(* The disk device server.

   Two faces of the same entry point:

   - clients call READ_BLOCK synchronously: the worker (on the client's
     processor) submits to the disk's shared queue and *blocks* until the
     completion arrives — demonstrating that PPC workers may block inside
     the server without stalling the facility;
   - the disk's completion interrupt is attached through the PPC
     interrupt-dispatch variant (Section 4.4): the handler receives an
     ordinary-looking PPC whose opcode is COMPLETE, and releases the
     blocked workers.

   Blocked workers are parked in a request table keyed by request id. *)

let op_read_block = 1
let op_complete = 2

type waiter = { w_proc : Kernel.Process.t; w_kcpu : Kernel.Kcpu.t }

type t = {
  ppc : Ppc.t;
  disk : Disk.t;
  mutable ep_id : int;
  waiting : (int, waiter) Hashtbl.t;
  mutable next_req : int;
  mutable reads : int;
  mutable completions : int;
}

let ep_id t = t.ep_id
let reads t = t.reads
let completions t = t.completions
let outstanding t = Hashtbl.length t.waiting

let handler t : Ppc.Call_ctx.handler =
 fun ctx args ->
  let open Ppc in
  let cpu = ctx.Call_ctx.cpu in
  Machine.Cpu.instr ~code:ctx.Call_ctx.server_code cpu 40;
  Null_server.touch_stack ctx ~words:8;
  let op = Reg_args.op args in
  if op = op_read_block then begin
    t.reads <- t.reads + 1;
    let req_id = t.next_req in
    t.next_req <- req_id + 1;
    Hashtbl.replace t.waiting req_id
      { w_proc = ctx.Call_ctx.self; w_kcpu = ctx.Call_ctx.kcpu };
    Disk.submit t.disk ~cpu ~proc:ctx.Call_ctx.self ~req_id;
    (* Block this worker until the completion handler releases it.  The
       processor is dispatched to other work meanwhile. *)
    Kernel.Kcpu.block ctx.Call_ctx.kcpu ctx.Call_ctx.self;
    (* Completion: hand the data description back. *)
    Machine.Cpu.instr ~code:ctx.Call_ctx.server_code cpu 20;
    Reg_args.set args 1 req_id;
    Reg_args.set_rc args Reg_args.ok
  end
  else if op = op_complete then begin
    (* Injected by the interrupt dispatcher: release every completed
       request's worker (a cross-CPU ready, not a hand-off). *)
    let ids = Disk.take_completed t.disk in
    List.iter
      (fun req_id ->
        Machine.Cpu.instr ~code:ctx.Call_ctx.server_code cpu 12;
        match Hashtbl.find_opt t.waiting req_id with
        | None -> ()
        | Some w ->
            Hashtbl.remove t.waiting req_id;
            t.completions <- t.completions + 1;
            Kernel.Kcpu.ready w.w_kcpu w.w_proc)
      ids;
    Reg_args.set_rc args Reg_args.ok
  end
  else Reg_args.set_rc args Reg_args.err_bad_request

let install ppc ~disk =
  let t =
    {
      ppc;
      disk;
      ep_id = -1;
      waiting = Hashtbl.create 32;
      next_req = 1;
      reads = 0;
      completions = 0;
    }
  in
  let server = Ppc.make_kernel_server ppc ~name:"disk-server" () in
  let ep = Ppc.register_direct ppc ~server ~handler:(handler t) in
  t.ep_id <- Ppc.Entry_point.id ep;
  (* Attach the disk's completion vector: interrupts become async PPCs
     carrying OP_COMPLETE. *)
  let kern = Ppc.kernel ppc in
  Ppc.Intr_dispatch.attach (Ppc.engine ppc) ~vector:(Disk.vector disk)
    ~kcpu:(Kernel.kcpu kern (Disk.owner_cpu disk))
    ~ep_id:t.ep_id
    ~make_args:(fun () ->
      let args = Ppc.Reg_args.make () in
      Ppc.Reg_args.set_op args ~op:op_complete ~flags:0;
      args)
    ();
  t

(* Client stub: synchronous block read. *)
let read_block t ~client ~block =
  let open Ppc in
  let args = Reg_args.make () in
  Reg_args.set args 0 block;
  Reg_args.set_op args ~op:op_read_block ~flags:0;
  let rc =
    Ppc.call t.ppc ~client
      ~opflags:(Reg_args.op_flags ~op:op_read_block ~flags:0)
      ~ep_id:t.ep_id args
  in
  if rc = Reg_args.ok then Ok (Reg_args.get args 1) else Error rc

(* Asynchronous prefetch: fire-and-forget read (Section 4.4's example —
   "asynchronous PPC requests are used, for example, to initiate a file
   block prefetch request"). *)
let prefetch_block t ~client ~block ?on_complete () =
  let open Ppc in
  let args = Reg_args.make () in
  Reg_args.set args 0 block;
  Reg_args.set_op args ~op:op_read_block ~flags:1;
  Ppc.async_call t.ppc ~client
    ~opflags:(Reg_args.op_flags ~op:op_read_block ~flags:1)
    ?on_complete ~ep_id:t.ep_id args
