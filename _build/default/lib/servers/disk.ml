(* A simulated disk.

   The paper's Section 4.3 example of a cross-processor interaction that
   does *not* need a cross-processor PPC: "interactions with a disk only
   involve accesses to shared queues: in the case of a busy disk,
   appending the request to the end of the disk queue; in the case of an
   idle disk, additionally [starting service]".

   Submission, from any processor, manipulates the shared request queue
   under a spinlock with uncached accesses.  Completion raises the disk's
   interrupt vector on its owning processor; the device server attaches
   that vector through the PPC interrupt-dispatch variant. *)

type t = {
  kern : Kernel.t;
  owner_cpu : int;
  vector : int;
  latency : Sim.Time.t;
  queue_addr : int;
  lock : Kernel.Spinlock.t;
  pending : int Queue.t;  (** request ids awaiting service *)
  mutable completed : int list;  (** serviced, awaiting pickup *)
  mutable busy : bool;
  mutable submitted : int;
  mutable serviced : int;
}

let create kern ~owner_cpu ~vector ~latency =
  let queue_addr = Kernel.alloc kern ~bytes:128 ~node:owner_cpu in
  {
    kern;
    owner_cpu;
    vector;
    latency;
    queue_addr;
    lock =
      Kernel.Spinlock.create
        ~addr:(Kernel.alloc kern ~bytes:16 ~node:owner_cpu)
        ();
    pending = Queue.create ();
    completed = [];
    busy = false;
    submitted = 0;
    serviced = 0;
  }

let owner_cpu t = t.owner_cpu
let vector t = t.vector
let submitted t = t.submitted
let serviced t = t.serviced
let queue_depth t = Queue.length t.pending

(* Service one request: after the latency, mark it complete, raise the
   interrupt, and start the next request if one is queued. *)
let rec start_service t =
  match Queue.take_opt t.pending with
  | None -> t.busy <- false
  | Some req_id ->
      t.busy <- true;
      Kernel.Klog.Server_log.debug (fun m -> m "disk: servicing req %d" req_id);
      Sim.Engine.schedule (Kernel.engine t.kern) ~after:t.latency (fun () ->
          t.serviced <- t.serviced + 1;
          t.completed <- t.completed @ [ req_id ];
          Kernel.Interrupt.raise_vector (Kernel.interrupts t.kern)
            ~vector:t.vector;
          start_service t)

(* Submit from the calling process's CPU: shared-queue manipulation under
   the disk lock. *)
let submit t ~cpu ~proc ~req_id =
  let engine = Kernel.engine t.kern in
  t.submitted <- t.submitted + 1;
  Kernel.Spinlock.acquire engine cpu proc t.lock;
  Machine.Cpu.instr cpu 10;
  Machine.Cpu.uncached_store cpu t.queue_addr;
  Machine.Cpu.uncached_store cpu (t.queue_addr + 8);
  Queue.push req_id t.pending;
  let was_idle = not t.busy in
  if was_idle then t.busy <- true;
  Kernel.Spinlock.release engine cpu proc t.lock;
  if was_idle then begin
    (* Re-take the request we just queued and begin service. *)
    t.busy <- false;
    start_service t
  end

let take_completed t =
  let ids = t.completed in
  t.completed <- [];
  ids
