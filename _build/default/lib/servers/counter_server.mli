(** Counter server in two builds: per-processor shards (locality-friendly)
    vs a single locked global counter (the anti-pattern), for ablations. *)

type mode = Sharded | Global_lock

val op_increment : int
val op_read : int

type t

val install : Ppc.t -> mode:mode -> t
val ep_id : t -> int
val mode : t -> mode
val value : t -> int

val increment : t -> client:Kernel.Process.t -> int
val read : t -> client:Kernel.Process.t -> (int, int) result
