(** Block cache over the disk server: LRU of block buffers under a
    readers-writer lock; misses read through the device server. *)

val op_get_block : int

type t

val install : ?capacity:int -> ?block_bytes:int -> Ppc.t -> dev:Device_server.t -> t

val ep_id : t -> int
val hits : t -> int
val misses : t -> int
val evictions : t -> int
val cached_blocks : t -> int

val get_block :
  t -> client:Kernel.Process.t -> block:int -> (int * bool, int) result
(** Returns (buffer address, was a cache hit). *)
