(* Cross-processor PPC (the variant Section 4.3 leaves as future work:
   "for completeness we do eventually expect to develop a cross-processor
   PPC variant").

   The local case stays untouched — this path is for the rare situations
   (devices, low-level OS functions) where the target resource is pinned
   to another processor.  Mechanics:

   - the client marshals the request into a per-target-CPU shared slot
     (uncached remote stores: crossing memory on a coherence-free
     machine);
   - it raises a remote interrupt on the target CPU, whose handler drains
     the slot queue and injects each request as an asynchronous PPC with
     a completion hook;
   - the hook copies results back and makes the client runnable on its
     own CPU (a cross-CPU [ready], not a hand-off);
   - the client blocked after posting, and resumes with the results. *)

type request = {
  req_args : Reg_args.t;
  req_client : Kernel.Process.t;
  req_ep : int;
  req_program : Kernel.Program.id;
  mutable req_done : bool;
}

type t = {
  engine : Engine.t;
  slots : request Queue.t array;  (** per target CPU *)
  slot_addr : int array;  (** shared memory for marshalling costs *)
  user_stack : int array;  (** per-CPU client-side register save area *)
  base_vector : int;
  mutable remote_calls : int;
}

let vector_of t ~target_cpu = t.base_vector + target_cpu

let install ?(base_vector = 0x100) engine =
  let kern = Engine.kernel engine in
  let n = Kernel.n_cpus kern in
  let t =
    {
      engine;
      slots = Array.init n (fun _ -> Queue.create ());
      slot_addr =
        Array.init n (fun node -> Kernel.alloc kern ~bytes:256 ~node);
      user_stack =
        Array.init n (fun node ->
            Kernel.alloc kern ~align:`Page ~bytes:4096 ~node);
      base_vector;
      remote_calls = 0;
    }
  in
  for target = 0 to n - 1 do
    Kernel.Interrupt.register (Kernel.interrupts kern)
      ~vector:(vector_of t ~target_cpu:target)
      ~name:(Printf.sprintf "remote-ppc-cpu%d" target)
      ~kcpu:(Kernel.kcpu kern target)
      ~program:(Kernel.kernel_program kern)
      ~space:(Kernel.kernel_space kern)
      (fun self ->
        let cpu = Kernel.Kcpu.cpu (Kernel.kcpu kern target) in
        let rec drain () =
          match Queue.take_opt t.slots.(target) with
          | None -> ()
          | Some req ->
              (* Pull the request words across the fabric. *)
              Machine.Cpu.instr cpu 8;
              for i = 0 to 3 do
                Machine.Cpu.uncached_load cpu (t.slot_addr.(target) + (4 * i))
              done;
              let client_kcpu =
                Kernel.kcpu kern (Kernel.Process.cpu_index req.req_client)
              in
              Engine.inject t.engine ~self ~caller_program:req.req_program
                ~ep_id:req.req_ep
                ~on_complete:(fun args ->
                  (* Push results back and release the client. *)
                  Machine.Cpu.instr cpu 6;
                  for i = 0 to 3 do
                    Machine.Cpu.uncached_store cpu
                      (t.slot_addr.(target) + 32 + (4 * i))
                  done;
                  ignore args;
                  req.req_done <- true;
                  Kernel.Kcpu.ready client_kcpu req.req_client)
                req.req_args;
              drain ()
        in
        drain ())
  done;
  t

(* Synchronous cross-processor call from [client]'s simulated process. *)
let call t ~client ~target_cpu ~ep_id args =
  let kern = Engine.kernel t.engine in
  if target_cpu < 0 || target_cpu >= Kernel.n_cpus kern then
    invalid_arg "Remote_call.call: bad target CPU";
  if target_cpu = Kernel.Process.cpu_index client then
    (* Local after all: take the fast path. *)
    Engine.call t.engine ~client ~ep_id args
  else begin
    t.remote_calls <- t.remote_calls + 1;
    let cpu_index = Kernel.Process.cpu_index client in
    let kc = Kernel.kcpu kern cpu_index in
    let cpu = Kernel.Kcpu.cpu kc in
    (* Client side, user mode: spill caller-saves like any PPC. *)
    Machine.Cpu.instr cpu 10;
    Machine.Cpu.store_words cpu t.user_stack.(cpu_index) 20;
    (* Marshal across the fabric. *)
    Machine.Cpu.trap cpu;
    Machine.Cpu.instr cpu 12;
    for i = 0 to 3 do
      Machine.Cpu.uncached_store cpu (t.slot_addr.(target_cpu) + (4 * i))
    done;
    let req =
      {
        req_args = args;
        req_client = client;
        req_ep = ep_id;
        req_program = Kernel.Program.id (Kernel.Process.program client);
        req_done = false;
      }
    in
    Queue.push req t.slots.(target_cpu);
    Kernel.Interrupt.raise_vector (Kernel.interrupts kern)
      ~vector:(vector_of t ~target_cpu);
    (* Wait for the completion hook's cross-CPU ready. *)
    Kernel.Kcpu.block kc client;
    (* Read the results back. *)
    Machine.Cpu.instr cpu 8;
    for i = 0 to 3 do
      Machine.Cpu.uncached_load cpu (t.slot_addr.(target_cpu) + 32 + (4 * i))
    done;
    Machine.Cpu.rti cpu
      ~to_space:(Kernel.Address_space.space_of (Kernel.Process.space client));
    Machine.Cpu.instr cpu 8;
    Machine.Cpu.load_words cpu t.user_stack.(cpu_index) 20;
    Kernel.Kcpu.sync kc;
    Reg_args.rc args
  end

let remote_calls t = t.remote_calls
