(** Frank, the kernel-level PPC resource manager (Section 4.5.6):
    entry-point allocation/deallocation, exchange, and pool growth, all
    reached by normal PPC calls to a well-known ID. *)

val well_known_id : int
(** Entry point 1. *)

val op_alloc_ep : int
val op_soft_kill : int
val op_hard_kill : int
val op_exchange : int
val op_grow_pool : int
val op_reclaim : int

type t

val install : Engine.t -> t
(** Install Frank at his well-known ID with a preallocated worker per
    processor (he may not block). *)

val stage :
  t -> server:Entry_point.server -> handler:Call_ctx.handler -> int
(** Stage a server definition out-of-band; the returned token is passed
    in the ALLOC_EP call (standing in for the handler's address in the
    caller's space). *)

val alloc_entry_point :
  t ->
  client:Kernel.Process.t ->
  server:Entry_point.server ->
  handler:Call_ctx.handler ->
  (int, int) result
(** Full client-side flow: stage + PPC call; returns the new EP id. *)

val soft_kill : t -> client:Kernel.Process.t -> ep_id:int -> int
val hard_kill : t -> client:Kernel.Process.t -> ep_id:int -> int
val exchange :
  t -> client:Kernel.Process.t -> ep_id:int -> handler:Call_ctx.handler -> int

val grow_pool :
  t -> client:Kernel.Process.t -> ep_id:int -> cpu_index:int -> int
(** Pre-populate a CPU's worker pool. *)

val reclaim :
  t ->
  client:Kernel.Process.t ->
  max_workers:int ->
  max_cds:int ->
  (int * int, int) result
(** Shrink the calling CPU's pools; returns (workers retired, CDs
    freed). *)
