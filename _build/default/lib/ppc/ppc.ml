(* Library interface: the PPC facility assembled.

   [create] builds the engine over a kernel and installs Frank; helpers
   construct server descriptors (address space, text/data regions,
   per-CPU stack mapping window) and register entry points either through
   Frank (the paper's protocol) or directly (bootstrap/management). *)

module Reg_args = Reg_args
module Layout = Layout
module Call_ctx = Call_ctx
module Call_descriptor = Call_descriptor
module Cd_pool = Cd_pool
module Worker = Worker
module Entry_point = Entry_point
module Engine = Engine
module Null_server = Null_server
module Frank = Frank
module Intr_dispatch = Intr_dispatch
module Upcall = Upcall
module Remote_call = Remote_call
module Msg_compat = Msg_compat
module Reclaim_daemon = Reclaim_daemon

type t = { engine : Engine.t; frank : Frank.t }

let create ?costs ?initial_cds_per_cpu kernel =
  let engine =
    match (costs, initial_cds_per_cpu) with
    | None, None -> Engine.create kernel
    | Some c, None -> Engine.create ~costs:c kernel
    | None, Some n -> Engine.create ~initial_cds_per_cpu:n kernel
    | Some c, Some n -> Engine.create ~costs:c ~initial_cds_per_cpu:n kernel
  in
  let frank = Frank.install engine in
  { engine; frank }

let engine t = t.engine
let frank t = t.frank
let kernel t = Engine.kernel t.engine
let stats t = Engine.stats t.engine

(* Build a user-level server: fresh program, fresh address space, text
   and data regions homed on [node], and a stack-mapping window wide
   enough for one page per CPU. *)
let stack_window_pages = Entry_point.stack_window_pages

let make_user_server t ~name ?(hold_cd = false) ?(node = 0)
    ?(stack_policy = Entry_point.Single_page) ?(trust_group = 0) () =
  let kern = kernel t in
  let program = Kernel.new_program kern ~name in
  let space = Kernel.new_user_space kern ~name ~node in
  {
    Entry_point.server_name = name;
    program;
    space;
    code_addr = Kernel.alloc kern ~align:`Page ~bytes:4096 ~node;
    data_addr = Kernel.alloc kern ~align:`Page ~bytes:4096 ~node;
    stack_va_base =
      Kernel.alloc kern ~align:`Page
        ~bytes:(4096 * stack_window_pages * Kernel.n_cpus kern)
        ~node;
    hold_cd;
    stack_policy;
    trust_group;
  }

(* Build a kernel-level server (lives in the supervisor space: calls to
   it need no user-context switch). *)
let make_kernel_server t ~name ?(hold_cd = false) ?(node = 0)
    ?(stack_policy = Entry_point.Single_page) ?(trust_group = 0) () =
  let kern = kernel t in
  {
    Entry_point.server_name = name;
    program = Kernel.kernel_program kern;
    space = Kernel.kernel_space kern;
    code_addr = Kernel.alloc kern ~align:`Page ~bytes:4096 ~node;
    data_addr = Kernel.alloc kern ~align:`Page ~bytes:4096 ~node;
    stack_va_base =
      Kernel.alloc kern ~align:`Page
        ~bytes:(4096 * stack_window_pages * Kernel.n_cpus kern)
        ~node;
    hold_cd;
    stack_policy;
    trust_group;
  }

(* Register through Frank, as a real server would (a PPC call from
   [client]). *)
let register t ~client ~server ~handler =
  Frank.alloc_entry_point t.frank ~client ~server ~handler

(* Management-path registration (bootstrap, tests): no calling process
   required. *)
let register_direct t ~server ~handler =
  Engine.alloc_ep t.engine ~name:server.Entry_point.server_name ~server
    ~handler

(* Pre-populate worker pools so measurements exclude Frank's slow path. *)
let prime t ~ep ~cpus =
  List.iter
    (fun cpu_index ->
      let w = Engine.create_worker t.engine ep ~cpu_index ~charged:false in
      Entry_point.add_worker ep ~cpu_index w)
    cpus

let call t ~client ?opflags ~ep_id args =
  Engine.call t.engine ~client ?opflags ~ep_id args

let async_call t ~client ?opflags ?on_complete ~ep_id args =
  Engine.async_call t.engine ~client ?opflags ?on_complete ~ep_id args

let inject t ~self ?opflags ?on_complete ~caller_program ~ep_id args =
  Engine.inject t.engine ~self ?opflags ?on_complete ~caller_program ~ep_id
    args

let soft_kill t ~ep_id = Engine.soft_kill t.engine ~ep_id
let hard_kill t ~ep_id = Engine.hard_kill t.engine ~ep_id
let find_ep t ep_id = Engine.find_ep t.engine ep_id
