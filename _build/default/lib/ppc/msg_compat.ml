(* Message-passing compatibility on top of PPC (paper Section 5).

   "The vast majority of the code is needed to handle exceptions and to
   integrate the new facility with the pre-existing message passing
   facility."  This module is that integration: servers written against
   the old port API (receive / reply loops in their own process) keep
   working, but every operation rides the PPC facility instead of the
   legacy path — hand-off dispatch, per-CPU workers, no full context
   switches.

   A port is an entry point in the kernel space whose handler implements
   the port semantics:

   - SEND enqueues the message and *blocks its worker* until the reply —
     the calling client stays blocked in its PPC exactly as it blocked in
     the old send;
   - RECEIVE hands the oldest message to an old-style server process
     (blocking its worker while the port is empty);
   - REPLY wakes the blocked SEND worker with the results.

   Payloads are seven words (the eighth register carries the opcode).
   Port state is shared across processors, so its words are charged as
   uncached accesses — the residual sharing the compat layer cannot
   avoid.  Porting a server to *native* PPC removes it (ablation A8). *)

let op_send = 1
let op_receive = 2
let op_reply = 3

let payload_words = 7

type message = {
  msg_id : int;
  m_payload : int array;
  mutable m_results : int array option;
  mutable m_sender : (Kernel.Process.t * Kernel.Kcpu.t) option;
      (** the blocked SEND worker *)
}

type receiver = {
  r_proc : Kernel.Process.t;
  r_kcpu : Kernel.Kcpu.t;
  mutable r_msg : message option;
}

type port = {
  port_name : string;
  mutable port_ep : int;
  state_addr : int;
  pending : message Queue.t;
  unreplied : (int, message) Hashtbl.t;
  receivers : receiver Queue.t;
  reply_staging : (int, int array) Hashtbl.t;
      (** full reply payloads (the reply region grant stand-in); the
          registers carry only the first six words *)
  mutable next_msg_id : int;
  mutable sends : int;
}

let port_name p = p.port_name
let port_ep p = p.port_ep
let sends p = p.sends
let pending p = Queue.length p.pending
let blocked_receivers p = Queue.length p.receivers

let message_payload port ~msg_id =
  match Hashtbl.find_opt port.unreplied msg_id with
  | Some m -> Some (Array.copy m.m_payload)
  | None -> None

let charge_port_state cpu port n =
  Machine.Cpu.instr cpu (2 * n);
  for i = 0 to n - 1 do
    Machine.Cpu.uncached_load cpu (port.state_addr + (8 * i))
  done

let handler port : Call_ctx.t -> Reg_args.t -> unit =
 fun ctx args ->
  let cpu = ctx.Call_ctx.cpu in
  Machine.Cpu.instr ~code:ctx.Call_ctx.server_code cpu 20;
  Null_server.touch_stack ctx ~words:4;
  let op = Reg_args.op args in
  if op = op_send then begin
    port.sends <- port.sends + 1;
    charge_port_state cpu port 3;
    let payload = Array.init payload_words (fun i -> Reg_args.get args i) in
    let msg =
      {
        msg_id = port.next_msg_id;
        m_payload = payload;
        m_results = None;
        m_sender = Some (ctx.Call_ctx.self, ctx.Call_ctx.kcpu);
      }
    in
    port.next_msg_id <- port.next_msg_id + 1;
    Hashtbl.replace port.unreplied msg.msg_id msg;
    (* Hand to a blocked receiver or queue. *)
    (match Queue.take_opt port.receivers with
    | Some r ->
        r.r_msg <- Some msg;
        Kernel.Kcpu.ready r.r_kcpu r.r_proc
    | None -> Queue.push msg port.pending);
    (* Block until the reply arrives (the old send semantics). *)
    Kernel.Kcpu.block ctx.Call_ctx.kcpu ctx.Call_ctx.self;
    (match msg.m_results with
    | Some results ->
        Array.iteri
          (fun i v -> if i < payload_words then Reg_args.set args i v)
          results;
        Reg_args.set_rc args Reg_args.ok
    | None -> Reg_args.set_rc args Reg_args.err_killed)
  end
  else if op = op_receive then begin
    charge_port_state cpu port 2;
    let msg =
      match Queue.take_opt port.pending with
      | Some msg -> Some msg
      | None ->
          let r =
            { r_proc = ctx.Call_ctx.self; r_kcpu = ctx.Call_ctx.kcpu;
              r_msg = None }
          in
          Queue.push r port.receivers;
          Kernel.Kcpu.block ctx.Call_ctx.kcpu ctx.Call_ctx.self;
          r.r_msg
    in
    match msg with
    | Some msg ->
        Reg_args.set args 0 msg.msg_id;
        (* The first payload words ride back in the registers; the rest
           via [message_payload] (region grant in the real system). *)
        for i = 0 to 5 do
          Reg_args.set args (i + 1) msg.m_payload.(i)
        done;
        Reg_args.set_rc args Reg_args.ok
    | None -> Reg_args.set_rc args Reg_args.err_killed
  end
  else if op = op_reply then begin
    charge_port_state cpu port 2;
    let msg_id = Reg_args.get args 0 in
    match Hashtbl.find_opt port.unreplied msg_id with
    | None -> Reg_args.set_rc args Reg_args.err_bad_request
    | Some msg ->
        Hashtbl.remove port.unreplied msg_id;
        let results =
          match Hashtbl.find_opt port.reply_staging msg_id with
          | Some r ->
              Hashtbl.remove port.reply_staging msg_id;
              r
          | None -> Array.init 6 (fun i -> Reg_args.get args (i + 1))
        in
        msg.m_results <- Some results;
        (match msg.m_sender with
        | Some (proc, kcpu) ->
            msg.m_sender <- None;
            Kernel.Kcpu.ready kcpu proc
        | None -> ());
        Reg_args.set_rc args Reg_args.ok
  end
  else Reg_args.set_rc args Reg_args.err_bad_request

(* Create a port: a kernel-space entry point dedicated to it. *)
let make_port engine ~name =
  let kern = Engine.kernel engine in
  let port =
    {
      port_name = name;
      port_ep = -1;
      state_addr = Kernel.alloc kern ~bytes:256 ~node:0;
      pending = Queue.create ();
      unreplied = Hashtbl.create 32;
      receivers = Queue.create ();
      reply_staging = Hashtbl.create 32;
      next_msg_id = 1;
      sends = 0;
    }
  in
  let server =
    {
      Entry_point.server_name = Printf.sprintf "port:%s" name;
      program = Kernel.kernel_program kern;
      space = Kernel.kernel_space kern;
      code_addr = Kernel.alloc kern ~align:`Page ~bytes:1024 ~node:0;
      data_addr = Kernel.alloc kern ~align:`Page ~bytes:1024 ~node:0;
      stack_va_base =
        Kernel.alloc kern ~align:`Page
          ~bytes:(4096 * Entry_point.stack_window_pages * Kernel.n_cpus kern)
          ~node:0;
      hold_cd = false;
      stack_policy = Entry_point.Single_page;
      trust_group = 0;
    }
  in
  let ep = Engine.alloc_ep engine ~name:server.Entry_point.server_name ~server
      ~handler:(handler port)
  in
  port.port_ep <- Entry_point.id ep;
  port

(* Old-style client API. *)

let send engine port ~client payload =
  if Array.length payload > payload_words then
    invalid_arg "Msg_compat.send: at most 7 payload words";
  let args = Reg_args.make () in
  Array.iteri (fun i v -> Reg_args.set args i v) payload;
  Reg_args.set_op args ~op:op_send ~flags:0;
  let rc =
    Engine.call engine ~client
      ~opflags:(Reg_args.op_flags ~op:op_send ~flags:0)
      ~ep_id:port.port_ep args
  in
  if rc = Reg_args.ok then
    Ok (Array.init payload_words (fun i -> Reg_args.get args i))
  else Error rc

(* Old-style server API: receive the next message. *)
let receive engine port ~server =
  let args = Reg_args.make () in
  Reg_args.set_op args ~op:op_receive ~flags:0;
  let rc =
    Engine.call engine ~client:server
      ~opflags:(Reg_args.op_flags ~op:op_receive ~flags:0)
      ~ep_id:port.port_ep args
  in
  if rc = Reg_args.ok then Ok (Reg_args.get args 0) else Error rc

let reply engine port ~server ~msg_id results =
  if Array.length results > payload_words then
    invalid_arg "Msg_compat.reply: at most 7 result words";
  let full = Array.make payload_words 0 in
  Array.blit results 0 full 0 (Array.length results);
  Hashtbl.replace port.reply_staging msg_id full;
  let args = Reg_args.make () in
  Reg_args.set args 0 msg_id;
  Array.iteri (fun i v -> if i < 6 then Reg_args.set args (i + 1) v) results;
  Reg_args.set_op args ~op:op_reply ~flags:0;
  Engine.call engine ~client:server
    ~opflags:(Reg_args.op_flags ~op:op_reply ~flags:0)
    ~ep_id:port.port_ep args

(* Convenience loop mirroring {!Kernel.Msg_ipc.serve}. *)
let serve engine port ~server f =
  let rec loop () =
    match receive engine port ~server with
    | Error _ -> ()
    | Ok msg_id ->
        let payload =
          match message_payload port ~msg_id with
          | Some p -> p
          | None -> Array.make payload_words 0
        in
        ignore (reply engine port ~server ~msg_id (f payload));
        loop ()
  in
  loop ()
