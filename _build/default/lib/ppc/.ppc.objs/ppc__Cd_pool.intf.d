lib/ppc/cd_pool.mli: Call_descriptor Layout Machine
