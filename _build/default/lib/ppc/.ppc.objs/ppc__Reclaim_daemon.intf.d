lib/ppc/reclaim_daemon.mli: Engine Sim
