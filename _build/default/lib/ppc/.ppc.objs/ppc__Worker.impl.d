lib/ppc/worker.ml: Call_ctx Call_descriptor Kernel Reg_args
