lib/ppc/ppc.ml: Call_ctx Call_descriptor Cd_pool Engine Entry_point Frank Intr_dispatch Kernel Layout List Msg_compat Null_server Reclaim_daemon Reg_args Remote_call Upcall Worker
