lib/ppc/remote_call.ml: Array Engine Kernel Machine Printf Queue Reg_args
