lib/ppc/call_descriptor.mli: Kernel Machine
