lib/ppc/call_descriptor.ml: Kernel Machine
