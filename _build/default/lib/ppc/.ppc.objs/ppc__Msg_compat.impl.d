lib/ppc/msg_compat.ml: Array Call_ctx Engine Entry_point Hashtbl Kernel Machine Null_server Printf Queue Reg_args
