lib/ppc/remote_call.mli: Engine Kernel Reg_args
