lib/ppc/reclaim_daemon.ml: Engine Kernel Machine Sim
