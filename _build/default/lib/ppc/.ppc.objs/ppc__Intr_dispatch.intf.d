lib/ppc/intr_dispatch.mli: Engine Kernel Reg_args
