lib/ppc/upcall.mli: Engine Reg_args
