lib/ppc/call_ctx.ml: Kernel Machine Reg_args Sim
