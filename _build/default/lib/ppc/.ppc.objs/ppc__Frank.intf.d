lib/ppc/frank.mli: Call_ctx Engine Entry_point Kernel
