lib/ppc/engine.mli: Call_ctx Cd_pool Entry_point Kernel Layout Reg_args Worker
