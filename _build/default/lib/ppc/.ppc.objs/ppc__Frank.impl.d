lib/ppc/frank.ml: Call_ctx Engine Entry_point Kernel List Machine Null_server Reg_args Stdlib
