lib/ppc/engine.ml: Array Call_ctx Call_descriptor Cd_pool Entry_point Fmt Fun Hashtbl Kernel Layout List Machine Option Printf Reg_args Seq Sim Worker
