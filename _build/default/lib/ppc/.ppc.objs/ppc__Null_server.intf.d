lib/ppc/null_server.mli: Call_ctx
