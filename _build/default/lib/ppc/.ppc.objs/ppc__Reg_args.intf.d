lib/ppc/reg_args.mli: Format
