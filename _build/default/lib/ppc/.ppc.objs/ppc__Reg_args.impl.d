lib/ppc/reg_args.ml: Array Fmt List
