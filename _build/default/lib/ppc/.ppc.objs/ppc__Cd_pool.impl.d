lib/ppc/cd_pool.ml: Call_descriptor Layout List Machine
