lib/ppc/intr_dispatch.ml: Engine Kernel Printf Reg_args
