lib/ppc/null_server.ml: Call_ctx Machine Reg_args
