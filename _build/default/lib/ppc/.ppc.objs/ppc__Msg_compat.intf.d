lib/ppc/msg_compat.mli: Engine Kernel
