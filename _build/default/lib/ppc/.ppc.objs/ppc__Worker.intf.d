lib/ppc/worker.mli: Call_ctx Call_descriptor Kernel Reg_args
