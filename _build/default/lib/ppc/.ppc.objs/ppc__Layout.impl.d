lib/ppc/layout.ml: Array Kernel
