lib/ppc/entry_point.mli: Call_ctx Kernel Layout Machine Worker
