lib/ppc/upcall.ml: Engine Kernel Machine Printf Reg_args
