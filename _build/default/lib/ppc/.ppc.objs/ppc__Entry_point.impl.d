lib/ppc/entry_point.ml: Array Call_ctx Kernel Layout List Machine Worker
