lib/ppc/layout.mli: Kernel
