(** Per-processor memory layout of the PPC subsystem (paper Figure 1). *)

val max_entry_points : int
(** 1024, as in Section 4.5.5. *)

val cd_bytes : int
val max_cds_per_cpu : int

type ktext = {
  entry : int;
  wpool : int;
  cdops : int;
  tlbops : int;
  switch : int;
  upcall : int;
  epilogue : int;
  frank : int;
}

type per_cpu = {
  node : int;
  service_table : int;
  cd_pool_head : int;
  cd_area : int;
  save_area : int;
  cmmu_regs : int;
  ep_hash : int;
  user_stub : int;
  user_stack : int;
}

type t

val create : Kernel.t -> t
val ktext : t -> ktext
val per_cpu : t -> int -> per_cpu

val service_slot_addr : per_cpu -> int -> int
val wpool_head_addr : per_cpu -> int -> int
val cd_addr : per_cpu -> int -> int
