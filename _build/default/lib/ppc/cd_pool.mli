(** Per-processor, lock-free (because strictly local) CD pool with LIFO
    reuse for cache warmth. *)

type t

val create : Layout.per_cpu -> t

val size : t -> int
val created : t -> int
val allocs : t -> int
val empty_hits : t -> int

val add : t -> Call_descriptor.t -> unit
(** Install a newly created CD (Frank's slow path). *)

val alloc : Machine.Cpu.t -> t -> Call_descriptor.t option
(** Pop the most recently used CD; [None] when empty (redirect to
    Frank).  Charges the free-list memory traffic. *)

val release : Machine.Cpu.t -> t -> Call_descriptor.t -> unit
(** Push back; raises [Invalid_argument] if the CD belongs to another
    processor. *)

val trim : t -> keep:int -> Call_descriptor.t list
(** Drop free CDs beyond [keep], returning them (stack reclaim). *)
