(** Dummy server handlers for microbenchmarks and tests. *)

val touch_stack : Call_ctx.t -> words:int -> unit
(** Save/restore [words] registers on the worker's mapped stack. *)

val touch_stack_page : Call_ctx.t -> page:int -> words:int -> unit
(** Work on a specific stack page, growing the stack if the policy
    allows (Section 4.5.4). *)

val deep_handler : ?instr:int -> pages:int -> unit -> Call_ctx.handler
(** A server that walks [pages] stack pages per call. *)

val handler : ?instr:int -> ?stack_words:int -> unit -> Call_ctx.handler
(** The Figure-2 null server: a few instructions plus a small stack
    frame. *)

val echo : Call_ctx.handler
val adder : Call_ctx.handler
