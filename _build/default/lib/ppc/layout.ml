(* Per-processor memory layout of the PPC subsystem (the paper's
   Figure 1): each CPU owns, in memory homed on its own station,

   - a service table (array of entry-point slots, max 1024 — Section
     4.5.5: a simple array with direct indexing, one copy per processor);
   - the head word and element storage of its call-descriptor pool;
   - the per-entry-point worker-pool head words;
   - register-save scratch for minimal process switches.

   The kernel text is a single shared region (instruction fetches are
   per-CPU cached anyway), with fixed offsets per call-path phase so the
   I-cache model sees stable addresses. *)

let max_entry_points = 1024
let cd_bytes = 64
let max_cds_per_cpu = 64

type ktext = {
  entry : int;  (** trap entry, EP lookup, validation *)
  wpool : int;  (** worker pool manipulation *)
  cdops : int;  (** call descriptor pool and stack management *)
  tlbops : int;  (** map/unmap and address-space switch *)
  switch : int;  (** minimal save/restore *)
  upcall : int;  (** worker-side upcall/return sequence *)
  epilogue : int;  (** return-to-caller tail *)
  frank : int;  (** resource-manager slow paths *)
}

type per_cpu = {
  node : int;
  service_table : int;  (** base of the per-CPU entry-point slot array *)
  cd_pool_head : int;  (** local free-list head word *)
  cd_area : int;  (** CD structures, [max_cds_per_cpu] x [cd_bytes] *)
  save_area : int;  (** minimal-switch register scratch *)
  cmmu_regs : int;  (** local CMMU control registers (uncached) *)
  ep_hash : int;  (** overflow entry-point hash table (4.5.5) *)
  user_stub : int;  (** client-side PPC stub code (user text) *)
  user_stack : int;  (** client user stack for register save/restore *)
}

type t = { ktext : ktext; per_cpu : per_cpu array }

let create kernel =
  let alloc ~bytes ~node = Kernel.alloc kernel ~bytes ~node in
  (* Shared kernel text: ~2 KB of call-path code ("only 200 instructions
     and 6 cache lines are required to complete most calls" — the text
     region is small and hot). *)
  let text_base = alloc ~bytes:2048 ~node:0 in
  let ktext =
    {
      entry = text_base;
      wpool = text_base + 256;
      cdops = text_base + 512;
      tlbops = text_base + 768;
      switch = text_base + 1024;
      upcall = text_base + 1280;
      epilogue = text_base + 1536;
      frank = text_base + 1792;
    }
  in
  let per_cpu =
    Array.init (Kernel.n_cpus kernel) (fun node ->
        {
          node;
          service_table = alloc ~bytes:(max_entry_points * 4) ~node;
          cd_pool_head = alloc ~bytes:64 ~node;
          cd_area = alloc ~bytes:(max_cds_per_cpu * cd_bytes) ~node;
          save_area = alloc ~bytes:256 ~node;
          cmmu_regs = alloc ~bytes:64 ~node;
          ep_hash = alloc ~bytes:2048 ~node;
          user_stub = Kernel.alloc kernel ~align:`Page ~bytes:256 ~node;
          user_stack = Kernel.alloc kernel ~align:`Page ~bytes:4096 ~node;
        })
  in
  { ktext; per_cpu }

let ktext t = t.ktext

let per_cpu t i =
  if i < 0 || i >= Array.length t.per_cpu then
    invalid_arg "Layout.per_cpu: index out of range";
  t.per_cpu.(i)

let service_slot_addr pc ep_id = pc.service_table + (ep_id * 4)

(* The worker-pool head is the entry-point slot itself: "as little as a
   single pointer per service entry point per processor is necessary"
   (Section 4.5.5) — the hot per-call state is one word per EP. *)
let wpool_head_addr pc ep_id = service_slot_addr pc ep_id
let cd_addr pc cd_index = pc.cd_area + (cd_index * cd_bytes)
