(** Cross-processor PPC variant (the future-work item of Section 4.3):
    marshal over shared memory, remote interrupt, async PPC on the
    target, cross-CPU ready on completion. *)

type t

val install : ?base_vector:int -> Engine.t -> t
(** Registers one interrupt vector per CPU (default base 0x100). *)

val call :
  t -> client:Kernel.Process.t -> target_cpu:int -> ep_id:int -> Reg_args.t -> int
(** Synchronous cross-processor round trip; falls back to the local fast
    path when [target_cpu] is the client's own. *)

val remote_calls : t -> int
