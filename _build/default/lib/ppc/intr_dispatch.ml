(* Interrupt dispatching through the PPC facility (paper Section 4.4).

   "An asynchronous request from the kernel to the device server is
   manufactured by the interrupt handler and dispatched as for a normal
   call.  From the device server's point of view, it appears as a normal
   PPC request."

   [attach] binds a hardware vector to an entry point: when the vector is
   raised, the interrupt handler process injects an asynchronous PPC on
   its own CPU. *)

let attach engine ~vector ~kcpu ?(on_complete : (Reg_args.t -> unit) option)
    ~ep_id ~make_args () =
  let kern = Engine.kernel engine in
  Kernel.Interrupt.register (Kernel.interrupts kern) ~vector
    ~name:(Printf.sprintf "ep%d" ep_id)
    ~kcpu
    ~program:(Kernel.kernel_program kern)
    ~space:(Kernel.kernel_space kern)
    (fun self ->
      let args = make_args () in
      Engine.inject engine ~self ?on_complete
        ~caller_program:(Kernel.Program.id (Kernel.kernel_program kern))
        ~ep_id args)

let detach engine ~vector =
  Kernel.Interrupt.unregister (Kernel.interrupts (Engine.kernel engine)) ~vector
