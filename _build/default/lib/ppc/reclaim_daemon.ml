(* Periodic pool reclaim.

   Section 2: pools grow under peak call activity and "extra stacks ...
   can easily be reclaimed".  This daemon wakes on each processor every
   [period] and asks Frank's reclaim path to shrink that CPU's worker and
   CD pools back to their steady-state sizes.

   Each sweep runs as a kernel-daemon process in the CPU's front band, so
   reclaim competes for the processor like any other management work
   (and is charged like it). *)

type t = {
  engine : Engine.t;
  period : Sim.Time.t;
  max_workers : int;
  max_cds : int;
  mutable sweeps : int;
  mutable workers_retired : int;
  mutable cds_freed : int;
  mutable stopped : bool;
}

let sweeps t = t.sweeps
let workers_retired t = t.workers_retired
let cds_freed t = t.cds_freed

let stop t = t.stopped <- true

let start ?(period = Sim.Time.ms 10) ?(max_workers = 1) ?(max_cds = 2) engine =
  let t =
    {
      engine;
      period;
      max_workers;
      max_cds;
      sweeps = 0;
      workers_retired = 0;
      cds_freed = 0;
      stopped = false;
    }
  in
  let kern = Engine.kernel engine in
  let sim = Kernel.engine kern in
  let rec schedule_sweep () =
    Sim.Engine.schedule sim ~after:t.period (fun () ->
        if not t.stopped then begin
          for cpu_index = 0 to Kernel.n_cpus kern - 1 do
            ignore
              (Kernel.spawn ~band:`Front kern ~cpu:cpu_index ~name:"reclaimd"
                 ~kind:Kernel.Process.Kernel_daemon
                 ~program:(Kernel.kernel_program kern)
                 ~space:(Kernel.kernel_space kern)
                 (fun _self ->
                   let cpu = Kernel.Kcpu.cpu (Kernel.kcpu kern cpu_index) in
                   Machine.Cpu.instr cpu 60;
                   let retired, freed =
                     Engine.reclaim engine ~cpu_index
                       ~max_workers:t.max_workers ~max_cds:t.max_cds ()
                   in
                   t.workers_retired <- t.workers_retired + retired;
                   t.cds_freed <- t.cds_freed + freed;
                   Kernel.Kcpu.sync (Kernel.kcpu kern cpu_index)))
          done;
          t.sweeps <- t.sweeps + 1;
          schedule_sweep ()
        end)
  in
  schedule_sweep ();
  t
