(** Upcalls: software interrupts delivered as asynchronous PPCs. *)

val trigger :
  Engine.t ->
  cpu_index:int ->
  ?on_complete:(Reg_args.t -> unit) ->
  ep_id:int ->
  Reg_args.t ->
  unit
(** Deliver an upcall to [ep_id] on [cpu_index]; may be called from any
    context. *)
