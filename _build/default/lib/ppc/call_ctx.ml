(* Execution context handed to a server's call-handling routine.

   The handler runs in the worker's simulated process, on the caller's
   processor, in the server's address space — the PPC model.  Everything a
   server implementation needs is here: the CPU for charging its own
   work, the scheduler context, its own process identity (for locks), the
   authenticated caller program ID (Section 4.1), and [swap_handler], the
   worker-initialization hook of Section 4.5.3 (a worker may replace its
   own call-handling routine at any time). *)

type t = {
  engine : Sim.Engine.t;
  kcpu : Kernel.Kcpu.t;
  cpu : Machine.Cpu.t;
  self : Kernel.Process.t;  (** the worker process *)
  caller_program : Kernel.Program.id;
  ep_id : int;
  server_code : int;  (** server text base, for instruction-fetch costs *)
  server_data : int;  (** server data base *)
  stack_va : int;  (** virtual address of this activation's stack *)
  stack_pa : int;  (** physical page backing it (recycled across calls) *)
  mutable swap_handler : handler -> unit;
  mutable grow_stack : int -> int;
      (** [grow_stack page] returns the physical base of stack page
          [page] (0 = the always-mapped first page).  Under [Fault_in]
          policies the first touch of a higher page pays a page fault;
          under [Fixed_pages] all pages are premapped. *)
}

and handler = t -> Reg_args.t -> unit
