(* Null/dummy server handlers.

   The Figure 2 microbenchmark's "server time" is a dummy routine that
   saves and restores a few registers on its (freshly mapped, serially
   shared) stack; [handler] reproduces that, with knobs for heavier
   synthetic services. *)

let touch_stack ctx ~words =
  (* Frame setup on the worker stack: virtual address from the mapping,
     physical address from the recycled CD page (warm across calls). *)
  Machine.Cpu.store_words_mapped ctx.Call_ctx.cpu ~vaddr:ctx.Call_ctx.stack_va
    ~paddr:ctx.Call_ctx.stack_pa words;
  Machine.Cpu.load_words_mapped ctx.Call_ctx.cpu ~vaddr:ctx.Call_ctx.stack_va
    ~paddr:ctx.Call_ctx.stack_pa words

(* Touch a specific stack page (multi-page policies, Section 4.5.4):
   resolves the page's physical frame through [grow_stack] — paying a
   page fault under [Fault_in] the first time — then works on it. *)
let touch_stack_page ctx ~page ~words =
  let pa = ctx.Call_ctx.grow_stack page in
  let vaddr = ctx.Call_ctx.stack_va + (page * 4096) in
  Machine.Cpu.store_words_mapped ctx.Call_ctx.cpu ~vaddr ~paddr:pa words;
  Machine.Cpu.load_words_mapped ctx.Call_ctx.cpu ~vaddr ~paddr:pa words

(* A deep-recursion server: walks [pages] stack pages per call. *)
let deep_handler ?(instr = 20) ~pages () : Call_ctx.handler =
 fun ctx args ->
  Machine.Cpu.instr ~code:ctx.Call_ctx.server_code ctx.Call_ctx.cpu instr;
  for page = 0 to pages - 1 do
    touch_stack_page ctx ~page ~words:8
  done;
  Reg_args.set_rc args Reg_args.ok

let handler ?(instr = 10) ?(stack_words = 4) () : Call_ctx.handler =
 fun ctx args ->
  Machine.Cpu.instr ~code:ctx.Call_ctx.server_code ctx.Call_ctx.cpu instr;
  touch_stack ctx ~words:stack_words;
  Reg_args.set_rc args Reg_args.ok

(* An echo handler: returns its inputs (exercises the 8-in/8-out register
   convention end to end). *)
let echo : Call_ctx.handler =
 fun ctx args ->
  Machine.Cpu.instr ~code:ctx.Call_ctx.server_code ctx.Call_ctx.cpu 8;
  touch_stack ctx ~words:2;
  (* Results are the arguments: nothing to move (registers in place). *)
  Reg_args.set_rc args Reg_args.ok

(* An adder: out[0] = in[0] + in[1]. *)
let adder : Call_ctx.handler =
 fun ctx args ->
  Machine.Cpu.instr ~code:ctx.Call_ctx.server_code ctx.Call_ctx.cpu 6;
  touch_stack ctx ~words:2;
  Reg_args.set args 0 (Reg_args.get args 0 + Reg_args.get args 1);
  Reg_args.set_rc args Reg_args.ok
