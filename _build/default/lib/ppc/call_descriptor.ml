(* Call descriptors (CDs).

   A CD serves two purposes (paper Section 2): it stores return
   information during a call, and it points to the physical memory used
   for the worker's stack.  CDs are pooled per processor and shared by
   all servers on that processor; stacks are thereby serially shared
   across servers, shrinking the system's cache footprint. *)

type t = {
  index : int;  (** slot in the owning CPU's CD area *)
  addr : int;  (** address of the CD structure itself *)
  stack_frame : int;  (** physical page backing the worker stack *)
  home_cpu : int;
  mutable caller : Kernel.Process.t option;  (** return info *)
  mutable caller_opflags : int;
  mutable in_use : bool;
}

let create ~index ~addr ~stack_frame ~home_cpu =
  {
    index;
    addr;
    stack_frame;
    home_cpu;
    caller = None;
    caller_opflags = 0;
    in_use = false;
  }

let index t = t.index
let addr t = t.addr
let stack_frame t = t.stack_frame
let home_cpu t = t.home_cpu
let in_use t = t.in_use

(* Store the return information: who to resume and how.  Charged as
   stores into the CD structure (CD-manipulation category). *)
let set_return_info cpu t ~caller ~opflags =
  Machine.Cpu.instr cpu 4;
  Machine.Cpu.store_words cpu t.addr 4;
  t.caller <- Some caller;
  t.caller_opflags <- opflags;
  t.in_use <- true

let take_return_info cpu t =
  Machine.Cpu.instr cpu 3;
  Machine.Cpu.load_words cpu t.addr 4;
  let caller = t.caller in
  t.caller <- None;
  t.in_use <- false;
  caller

let clear t =
  t.caller <- None;
  t.in_use <- false
