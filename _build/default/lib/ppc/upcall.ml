(* Upcalls: software interrupts through the PPC facility (Section 4.4).

   "They use the same implementation as the interrupt dispatcher, but may
   be triggered by an arbitrary system event."  Used for debugging and
   exception delivery.

   [trigger] may be called from any context (including raw event
   callbacks): it spawns a transient kernel daemon in the target CPU's
   front band which injects the asynchronous PPC. *)

let trigger engine ~cpu_index ?(on_complete : (Reg_args.t -> unit) option)
    ~ep_id args =
  let kern = Engine.kernel engine in
  ignore
    (Kernel.spawn ~band:`Front kern ~cpu:cpu_index
       ~name:(Printf.sprintf "upcall-ep%d" ep_id)
       ~kind:Kernel.Process.Kernel_daemon
       ~program:(Kernel.kernel_program kern)
       ~space:(Kernel.kernel_space kern)
       (fun self ->
         let cpu = Kernel.Kcpu.cpu (Kernel.kcpu kern cpu_index) in
         (* Software-interrupt entry: cheaper than a hardware vector. *)
         Machine.Cpu.instr cpu 8;
         Engine.inject engine ~self ?on_complete
           ~caller_program:(Kernel.Program.id (Kernel.kernel_program kern))
           ~ep_id args))
