(** The PPC (Protected Procedure Call) IPC facility.

    Reproduction of Gamsa, Krieger & Stumm, "Optimizing IPC Performance
    for Shared-Memory Multiprocessors" (CSRI-294, 1994): per-processor
    worker and call-descriptor pools, hand-off transfer, register
    argument passing — no shared data and no locks on the common path. *)

module Reg_args = Reg_args
module Layout = Layout
module Call_ctx = Call_ctx
module Call_descriptor = Call_descriptor
module Cd_pool = Cd_pool
module Worker = Worker
module Entry_point = Entry_point
module Engine = Engine
module Null_server = Null_server
module Frank = Frank
module Intr_dispatch = Intr_dispatch
module Upcall = Upcall
module Remote_call = Remote_call
module Msg_compat = Msg_compat
module Reclaim_daemon = Reclaim_daemon

type t

val create : ?costs:Engine.path_costs -> ?initial_cds_per_cpu:int -> Kernel.t -> t
(** Build the facility over a kernel and install Frank. *)

val engine : t -> Engine.t
val frank : t -> Frank.t
val kernel : t -> Kernel.t
val stats : t -> Engine.stats

val stack_window_pages : int

val make_user_server :
  t ->
  name:string ->
  ?hold_cd:bool ->
  ?node:int ->
  ?stack_policy:Entry_point.stack_policy ->
  ?trust_group:int ->
  unit ->
  Entry_point.server

val make_kernel_server :
  t ->
  name:string ->
  ?hold_cd:bool ->
  ?node:int ->
  ?stack_policy:Entry_point.stack_policy ->
  ?trust_group:int ->
  unit ->
  Entry_point.server

val register :
  t ->
  client:Kernel.Process.t ->
  server:Entry_point.server ->
  handler:Call_ctx.handler ->
  (int, int) result
(** Register through Frank, as a real server would. *)

val register_direct :
  t -> server:Entry_point.server -> handler:Call_ctx.handler -> Entry_point.t
(** Bootstrap/management registration (no calling process). *)

val prime : t -> ep:Entry_point.t -> cpus:int list -> unit
(** Pre-populate worker pools on the given CPUs. *)

val call :
  t -> client:Kernel.Process.t -> ?opflags:int -> ep_id:int -> Reg_args.t -> int

val async_call :
  t ->
  client:Kernel.Process.t ->
  ?opflags:int ->
  ?on_complete:(Reg_args.t -> unit) ->
  ep_id:int ->
  Reg_args.t ->
  unit

val inject :
  t ->
  self:Kernel.Process.t ->
  ?opflags:int ->
  ?on_complete:(Reg_args.t -> unit) ->
  caller_program:Kernel.Program.id ->
  ep_id:int ->
  Reg_args.t ->
  unit

val soft_kill : t -> ep_id:int -> unit
val hard_kill : t -> ep_id:int -> unit
val find_ep : t -> int -> Entry_point.t option
