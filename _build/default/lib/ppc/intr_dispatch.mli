(** Interrupt dispatching as manufactured asynchronous PPCs
    (Section 4.4). *)

val attach :
  Engine.t ->
  vector:int ->
  kcpu:Kernel.Kcpu.t ->
  ?on_complete:(Reg_args.t -> unit) ->
  ep_id:int ->
  make_args:(unit -> Reg_args.t) ->
  unit ->
  unit
(** Bind a vector: raising it injects an async PPC to [ep_id] on the
    handler's CPU; the device server sees a normal PPC request. *)

val detach : Engine.t -> vector:int -> unit
