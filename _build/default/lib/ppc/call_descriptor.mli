(** Call descriptors: per-processor pooled return-info + stack-page
    holders (paper Section 2). *)

type t

val create : index:int -> addr:int -> stack_frame:int -> home_cpu:int -> t

val index : t -> int
val addr : t -> int
val stack_frame : t -> int
val home_cpu : t -> int
val in_use : t -> bool

val set_return_info :
  Machine.Cpu.t -> t -> caller:Kernel.Process.t -> opflags:int -> unit
(** Record who to resume; charges stores into the CD structure. *)

val take_return_info : Machine.Cpu.t -> t -> Kernel.Process.t option
(** Read and clear the return info on the return path. *)

val clear : t -> unit
