(** Message-passing compatibility on PPC (Section 5's integration):
    old-style port send/receive/reply, new transport. *)

val op_send : int
val op_receive : int
val op_reply : int

val payload_words : int
(** 7 — the eighth register carries the opcode. *)

type port

val make_port : Engine.t -> name:string -> port
(** A kernel-space entry point dedicated to this port. *)

val port_name : port -> string
val port_ep : port -> int
val sends : port -> int
val pending : port -> int
val blocked_receivers : port -> int

val message_payload : port -> msg_id:int -> int array option
(** Full payload of an unreplied message (region-grant stand-in). *)

val send :
  Engine.t -> port -> client:Kernel.Process.t -> int array -> (int array, int) result
(** Old-style synchronous send: blocks until the server replies; returns
    the reply payload. *)

val receive : Engine.t -> port -> server:Kernel.Process.t -> (int, int) result
(** Old-style receive: blocks while the port is empty; returns the
    message id. *)

val reply :
  Engine.t -> port -> server:Kernel.Process.t -> msg_id:int -> int array -> int

val serve :
  Engine.t -> port -> server:Kernel.Process.t -> (int array -> int array) -> unit
(** Receive/handle/reply loop for old-style server processes. *)
