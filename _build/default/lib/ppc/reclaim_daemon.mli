(** Periodic per-CPU pool reclaim (Section 2's stack/worker shrinking),
    run as front-band kernel daemons. *)

type t

val start :
  ?period:Sim.Time.t -> ?max_workers:int -> ?max_cds:int -> Engine.t -> t
(** Sweep every [period] (default 10 ms simulated). *)

val stop : t -> unit
(** No further sweeps are scheduled after the current period. *)

val sweeps : t -> int
val workers_retired : t -> int
val cds_freed : t -> int
