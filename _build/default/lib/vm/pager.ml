(* A user-level memory manager: the PPC server behind [Vm]'s [Paged]
   regions.

   Faults arrive as ordinary PPC requests carrying (tag, virtual page,
   write?); the pager finds or creates the backing frame — charging the
   "fetch" cost a real pager would pay (zeroing, or reading the backing
   store through the disk server if one is attached) — and returns the
   frame in the registers. *)

let op_fault = 1

type t = {
  ppc : Ppc.t;
  mutable ep : int;
  node : int;
  store : (int * int, int) Hashtbl.t;  (** (tag, vpage) -> frame *)
  disk : Servers.Device_server.t option;
      (** when present, first-touch pages are "read" from disk *)
  mutable served : int;
  mutable disk_fills : int;
}

let ep_id t = t.ep
let served t = t.served
let disk_fills t = t.disk_fills

let handler t : Ppc.Call_ctx.handler =
 fun ctx args ->
  let open Ppc in
  let cpu = ctx.Call_ctx.cpu in
  Machine.Cpu.instr ~code:ctx.Call_ctx.server_code cpu 50;
  Null_server.touch_stack ctx ~words:8;
  if Reg_args.op args <> op_fault then
    Reg_args.set_rc args Reg_args.err_bad_request
  else begin
    t.served <- t.served + 1;
    let tag = Reg_args.get args 0 and vp = Reg_args.get args 1 in
    let frame =
      match Hashtbl.find_opt t.store (tag, vp) with
      | Some frame -> frame
      | None ->
          let frame = Kernel.alloc_page (Ppc.kernel t.ppc) ~node:t.node in
          (match t.disk with
          | Some dev ->
              (* Fill from backing store: a real (blocking) block read. *)
              t.disk_fills <- t.disk_fills + 1;
              (match
                 Servers.Device_server.read_block dev ~client:ctx.Call_ctx.self
                   ~block:vp
               with
              | Ok _ -> ()
              | Error rc -> Fmt.failwith "pager backing read failed rc=%d" rc)
          | None ->
              (* Anonymous page: zero it. *)
              let p = Machine.Cpu.params cpu in
              Machine.Cpu.charge_current cpu
                (4096 / p.Machine.Cost_params.line_bytes
                * p.Machine.Cost_params.writeback_cycles));
          Hashtbl.replace t.store (tag, vp) frame;
          frame
    in
    Reg_args.set args 0 frame;
    Reg_args.set_rc args Reg_args.ok
  end

let install ?(node = 0) ?disk ppc =
  let t =
    { ppc; ep = -1; node; store = Hashtbl.create 64; disk; served = 0;
      disk_fills = 0 }
  in
  let server = Ppc.make_user_server ppc ~name:"pager" ~node () in
  let ep = Ppc.register_direct ppc ~server ~handler:(handler t) in
  t.ep <- Ppc.Entry_point.id ep;
  t
