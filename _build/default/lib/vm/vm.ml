(* Demand-paged virtual memory over the kernel's address spaces.

   The PPC paper leans on its VM substrate — stacks are mapped and
   unmapped per call, and Section 4.5.4 punts deep stacks to "the normal
   page-fault handling mechanisms".  This module is that mechanism:
   regions with a backing policy, a costed fault path, and an *external
   pager* flavour where the fault is turned into a PPC to a user-level
   memory manager (how microkernel ecosystems page).

   Backings:
   - [Demand_zero]: first touch allocates and zero-fills a local frame;
   - [Cow src]: first touch maps [src] read-only-shared; the first write
     copies the page;
   - [Wired frame]: pre-mapped at region creation, never faults;
   - [Paged ep]: faults become synchronous PPCs to entry point [ep]; the
     pager replies with the frame to map.

   [read]/[write] are the access points simulated programs use: they
   translate, fault if needed, and charge the access. *)

module Pager = Pager

type backing =
  | Demand_zero
  | Cow of int  (** source frame shared until first write *)
  | Wired of int
  | Paged of { pager_ep : int; tag : int }

type protection = Ro | Rw

type region = {
  base : int;
  len : int;
  backing : backing;
  mutable prot : protection;
}

type page_state = { mutable frame : int; mutable writable : bool }

type t = {
  kernel : Kernel.t;
  ppc : Ppc.t option;  (** needed only for [Paged] regions *)
  space : Kernel.Address_space.t;
  node : int;
  mutable regions : region list;
  pages : (int, page_state) Hashtbl.t;  (** vpage -> installed page *)
  mutable faults : int;
  mutable zero_fills : int;
  mutable cow_copies : int;
  mutable pager_calls : int;
}

exception Segfault of int
exception Protection_fault of int

let create ?ppc kernel ~space ~node =
  {
    kernel;
    ppc;
    space;
    node;
    regions = [];
    pages = Hashtbl.create 64;
    faults = 0;
    zero_fills = 0;
    cow_copies = 0;
    pager_calls = 0;
  }

let faults t = t.faults
let zero_fills t = t.zero_fills
let cow_copies t = t.cow_copies
let pager_calls t = t.pager_calls

let page_bytes t = Kernel.Address_space.page_bytes t.space
let vpage t vaddr = vaddr / page_bytes t

let add_region t ~base ~len ~backing ~prot =
  if len <= 0 then invalid_arg "Vm.add_region: empty region";
  if base mod page_bytes t <> 0 then
    invalid_arg "Vm.add_region: base must be page aligned";
  let r = { base; len; backing; prot } in
  t.regions <- r :: t.regions;
  (match backing with
  | Wired frame ->
      (* Pre-mapped: no faults ever. *)
      let pages = (len + page_bytes t - 1) / page_bytes t in
      for p = 0 to pages - 1 do
        Hashtbl.replace t.pages
          (vpage t (base + (p * page_bytes t)))
          { frame = frame + (p * page_bytes t); writable = prot = Rw }
      done
  | Demand_zero | Cow _ | Paged _ -> ());
  r

let find_region t vaddr =
  List.find_opt (fun r -> vaddr >= r.base && vaddr < r.base + r.len) t.regions

(* Zero-filling or copying a page is real memory work: one store (and for
   copies one load) per word, charged to the faulting CPU. *)
let charge_page_fill cpu t ~copy =
  let words = page_bytes t / 4 in
  let p = Machine.Cpu.params cpu in
  (* Line-granular: fills dominate; model as per-line costs. *)
  let lines = page_bytes t / p.Machine.Cost_params.line_bytes in
  let per_line =
    if copy then
      p.Machine.Cost_params.line_load_cycles
      + p.Machine.Cost_params.writeback_cycles
    else p.Machine.Cost_params.writeback_cycles
  in
  Machine.Cpu.instr cpu (words / 8);
  Machine.Cpu.charge_current cpu (lines * per_line)

(* The fault path: trap, handler, resolve the backing, map, return. *)
let fault t ~cpu ~proc ~vaddr ~write =
  t.faults <- t.faults + 1;
  Machine.Cpu.trap cpu;
  Machine.Cpu.instr cpu 60;
  let region =
    match find_region t vaddr with
    | Some r -> r
    | None ->
        Machine.Cpu.rti cpu
          ~to_space:(Kernel.Address_space.space_of t.space);
        raise (Segfault vaddr)
  in
  if write && region.prot = Ro then begin
    Machine.Cpu.rti cpu ~to_space:(Kernel.Address_space.space_of t.space);
    raise (Protection_fault vaddr)
  end;
  let vp = vpage t vaddr in
  let page_base = vp * page_bytes t in
  let state =
    match Hashtbl.find_opt t.pages vp with
    | Some st -> st
    | None ->
        let st =
          match region.backing with
          | Wired frame ->
              { frame = frame + (page_base - region.base);
                writable = region.prot = Rw }
          | Demand_zero ->
              let frame = Kernel.alloc_page t.kernel ~node:t.node in
              t.zero_fills <- t.zero_fills + 1;
              charge_page_fill cpu t ~copy:false;
              { frame; writable = region.prot = Rw }
          | Cow src ->
              (* Map the source frame read-only-shared for now. *)
              { frame = src + (page_base - region.base); writable = false }
          | Paged { pager_ep; tag } -> (
              (* Turn the fault into a PPC to the memory manager. *)
              match t.ppc with
              | None -> invalid_arg "Vm: Paged region without a PPC facility"
              | Some ppc ->
                  t.pager_calls <- t.pager_calls + 1;
                  let args = Ppc.Reg_args.make () in
                  Ppc.Reg_args.set args 0 tag;
                  Ppc.Reg_args.set args 1 vp;
                  Ppc.Reg_args.set args 2 (if write then 1 else 0);
                  Ppc.Reg_args.set_op args ~op:Pager.op_fault ~flags:0;
                  let rc =
                    Ppc.call ppc ~client:proc
                      ~opflags:
                        (Ppc.Reg_args.op_flags ~op:Pager.op_fault ~flags:0)
                      ~ep_id:pager_ep args
                  in
                  if rc <> Ppc.Reg_args.ok then raise (Segfault vaddr);
                  { frame = Ppc.Reg_args.get args 0;
                    writable = region.prot = Rw })
        in
        Hashtbl.replace t.pages vp st;
        st
  in
  (* A write to a COW page that is still shared: copy now. *)
  if write && not state.writable then begin
    let fresh = Kernel.alloc_page t.kernel ~node:t.node in
    t.cow_copies <- t.cow_copies + 1;
    charge_page_fill cpu t ~copy:true;
    Kernel.Address_space.unmap cpu t.space ~vaddr:page_base;
    state.frame <- fresh;
    state.writable <- true
  end;
  Kernel.Address_space.map cpu t.space ~vaddr:page_base ~frame:state.frame;
  Machine.Cpu.rti cpu ~to_space:(Kernel.Address_space.space_of t.space);
  (* Advance the simulated clock by the fault's work. *)
  Kernel.Clock.sync (Kernel.engine t.kernel) cpu;
  state

(* Access points for simulated programs. *)

let resolve t ~cpu ~proc ~vaddr ~write =
  let vp = vpage t vaddr in
  match Hashtbl.find_opt t.pages vp with
  | Some st
    when Kernel.Address_space.is_mapped t.space vaddr
         && ((not write) || st.writable) ->
      st
  | _ -> fault t ~cpu ~proc ~vaddr ~write

let read t ~cpu ~proc ~vaddr =
  let st = resolve t ~cpu ~proc ~vaddr ~write:false in
  Machine.Cpu.load_mapped cpu ~vaddr
    ~paddr:(st.frame + (vaddr mod page_bytes t))

let write t ~cpu ~proc ~vaddr =
  let st = resolve t ~cpu ~proc ~vaddr ~write:true in
  Machine.Cpu.store_mapped cpu ~vaddr
    ~paddr:(st.frame + (vaddr mod page_bytes t))

let frame_of t ~vaddr =
  Option.map (fun st -> st.frame) (Hashtbl.find_opt t.pages (vpage t vaddr))
