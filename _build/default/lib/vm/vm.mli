(** Demand-paged virtual memory with a costed fault path and an external
    pager flavour (faults become PPCs to a memory-manager server). *)

module Pager = Pager

type backing =
  | Demand_zero
  | Cow of int  (** shares the source frame until first write *)
  | Wired of int
  | Paged of { pager_ep : int; tag : int }

type protection = Ro | Rw

type region = {
  base : int;
  len : int;
  backing : backing;
  mutable prot : protection;
}

type page_state = { mutable frame : int; mutable writable : bool }

type t

exception Segfault of int
exception Protection_fault of int

val create :
  ?ppc:Ppc.t -> Kernel.t -> space:Kernel.Address_space.t -> node:int -> t
(** [ppc] is required only for [Paged] regions. *)

val add_region :
  t -> base:int -> len:int -> backing:backing -> prot:protection -> region
(** [base] must be page aligned. *)

val find_region : t -> int -> region option

val fault :
  t ->
  cpu:Machine.Cpu.t ->
  proc:Kernel.Process.t ->
  vaddr:int ->
  write:bool ->
  page_state
(** Explicit fault (normally reached through {!read}/{!write}).  Raises
    {!Segfault} or {!Protection_fault}. *)

val read : t -> cpu:Machine.Cpu.t -> proc:Kernel.Process.t -> vaddr:int -> unit
(** One load, faulting the page in if needed.  Call from the owning
    simulated process. *)

val write : t -> cpu:Machine.Cpu.t -> proc:Kernel.Process.t -> vaddr:int -> unit
(** One store; triggers the copy on a shared COW page. *)

val frame_of : t -> vaddr:int -> int option
(** Installed physical frame for [vaddr]'s page, if any. *)

val faults : t -> int
val zero_fills : t -> int
val cow_copies : t -> int
val pager_calls : t -> int
