lib/vm/vm.ml: Hashtbl Kernel List Machine Option Pager Ppc
