lib/vm/pager.ml: Call_ctx Fmt Hashtbl Kernel Machine Null_server Ppc Reg_args Servers
