lib/vm/pager.mli: Ppc Servers
