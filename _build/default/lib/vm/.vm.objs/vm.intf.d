lib/vm/vm.mli: Kernel Machine Pager Ppc
