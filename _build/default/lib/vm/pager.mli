(** User-level memory manager: serves [Vm] page faults over PPC,
    optionally filling pages from the disk server. *)

val op_fault : int

type t

val install : ?node:int -> ?disk:Servers.Device_server.t -> Ppc.t -> t

val ep_id : t -> int
val served : t -> int
val disk_fills : t -> int
