lib/workload/driver.mli: Kernel Sim
