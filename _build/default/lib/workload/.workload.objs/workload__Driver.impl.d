lib/workload/driver.ml: Array Kernel List Printf Sim
