(** Zipfian popularity sampler over [0, n). *)

type t

val create : n:int -> theta:float -> rng:Sim.Rng.t -> t
(** [theta] = 0 is uniform; larger is more skewed. *)

val n : t -> int
val sample : t -> int
