(** Lock-free multi-producer single-consumer queue (Vyukov). *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Any domain; one atomic exchange, no CAS loop. *)

val pop : 'a t -> 'a option
(** Consumer domain only. *)

val pop_wait : ?spins:int -> 'a t -> 'a
(** Consumer: spin (with [Domain.cpu_relax]), then yield, until an
    element arrives. *)

val is_empty : 'a t -> bool
val pushes : 'a t -> int
val pops : 'a t -> int
