(** Mutex-guarded shared registry and frame pool: the contended baseline
    for {!Fastcall}. *)

type frame = { scratch : Bytes.t; mutable frame_calls : int }
type handler = frame -> int array -> unit

type t

exception No_entry of int

val create : ?frames:int -> unit -> t
val register : t -> handler -> int
val call : t -> ep:int -> int array -> int
val calls : t -> int
