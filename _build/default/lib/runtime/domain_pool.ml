(* A small pool of service domains, each owning an MPSC work queue.

   Work submitted to a specific member runs on that domain only — the
   affinity discipline of the paper (requests are handled where their
   state lives), as close as portable OCaml gets without OS pinning.

   Idle members block on a condvar rather than spinning, so the pool is
   well-behaved even when domains outnumber cores. *)

type member = {
  index : int;
  queue : (unit -> unit) Mpsc_queue.t;
  executed : int Atomic.t;
  m_mutex : Mutex.t;
  m_cond : Condition.t;
}

type t = {
  members : member array;
  stop : bool Atomic.t;
  domains : unit Domain.t array;
  mutable rr : int;
}

let size t = Array.length t.members

let create ~domains:n =
  if n <= 0 then invalid_arg "Domain_pool.create: need at least one domain";
  let members =
    Array.init n (fun index ->
        {
          index;
          queue = Mpsc_queue.create ();
          executed = Atomic.make 0;
          m_mutex = Mutex.create ();
          m_cond = Condition.create ();
        })
  in
  let stop = Atomic.make false in
  let domains =
    Array.map
      (fun m ->
        Domain.spawn (fun () ->
            let rec loop () =
              match Mpsc_queue.pop m.queue with
              | Some work ->
                  work ();
                  Atomic.incr m.executed;
                  loop ()
              | None ->
                  if Atomic.get stop then ()
                  else begin
                    Mutex.lock m.m_mutex;
                    while
                      Mpsc_queue.is_empty m.queue && not (Atomic.get stop)
                    do
                      Condition.wait m.m_cond m.m_mutex
                    done;
                    Mutex.unlock m.m_mutex;
                    loop ()
                  end
            in
            loop ()))
      members
  in
  { members; stop; domains; rr = 0 }

let notify m =
  Mutex.lock m.m_mutex;
  Condition.signal m.m_cond;
  Mutex.unlock m.m_mutex

let submit_to t ~index work =
  if index < 0 || index >= Array.length t.members then
    invalid_arg "Domain_pool.submit_to: bad index";
  let m = t.members.(index) in
  Mpsc_queue.push m.queue work;
  notify m

(* Round-robin placement for work without affinity. *)
let submit t work =
  let i = t.rr in
  t.rr <- (i + 1) mod Array.length t.members;
  submit_to t ~index:i work

let executed t ~index = Atomic.get t.members.(index).executed

let total_executed t =
  Array.fold_left (fun acc m -> acc + Atomic.get m.executed) 0 t.members

let shutdown t =
  Atomic.set t.stop true;
  Array.iter notify t.members;
  Array.iter Domain.join t.domains
