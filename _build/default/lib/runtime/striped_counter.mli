(** Striped (per-domain) counter: contention-free increments, gather on
    read. *)

type t

val create : ?stripes:int -> unit -> t
(** [stripes] must be a power of two (default 16). *)

val incr : t -> unit
val add : t -> int -> unit

val value : t -> int
(** Weak snapshot: sums all stripes. *)
