(* Treiber stack: a lock-free LIFO on a single atomic head.

   The runtime's analogue of the simulator's per-processor CD free lists
   when a structure genuinely must be shared: push and pop are single-CAS
   loops.  (The PPC lesson still applies — prefer the per-domain pools in
   {!Fastcall}; this exists for the cases, like cross-domain frame
   donation, where sharing is the point.) *)

type 'a node = Nil | Cons of { value : 'a; next : 'a node }

type 'a t = { head : 'a node Atomic.t; pushes : int Atomic.t; pops : int Atomic.t }

let create () =
  { head = Atomic.make Nil; pushes = Atomic.make 0; pops = Atomic.make 0 }

let rec push t value =
  let old = Atomic.get t.head in
  if Atomic.compare_and_set t.head old (Cons { value; next = old }) then
    Atomic.incr t.pushes
  else begin
    Domain.cpu_relax ();
    push t value
  end

let rec pop t =
  match Atomic.get t.head with
  | Nil -> None
  | Cons { value; next } as old ->
      if Atomic.compare_and_set t.head old next then begin
        Atomic.incr t.pops;
        Some value
      end
      else begin
        Domain.cpu_relax ();
        pop t
      end

let is_empty t = Atomic.get t.head = Nil
let pushes t = Atomic.get t.pushes
let pops t = Atomic.get t.pops

let length t =
  let rec go acc = function Nil -> acc | Cons { next; _ } -> go (acc + 1) next in
  go 0 (Atomic.get t.head)
