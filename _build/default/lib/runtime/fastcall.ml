(* The PPC design pattern on real OCaml 5 domains.

   What the paper's facility does with per-processor worker/CD pools,
   this module does with per-domain state:

   - the service table is a fixed array of handlers, written only during
     registration and read without any synchronisation on the call path
     (the per-CPU service table);
   - every domain keeps a private LIFO pool of preallocated *frames*
     (argument block + scratch buffer) in domain-local storage: the call
     path allocates nothing and takes no locks (the CD/stack pool, with
     the same serial-reuse-for-warmth property);
   - the 8-word argument convention is kept: handlers mutate an 8-slot
     int array in place.

   Compare with {!Locked_registry}, the mutex-guarded shared-pool
   baseline, in the benchmarks. *)

let max_entry_points = 1024
let arg_words = 8

type frame = {
  scratch : Bytes.t;  (** the "stack page": reused, never reallocated *)
  mutable frame_calls : int;
}

type ctx = { frame : frame; domain_index : int }

type handler = ctx -> int array -> unit

type t = {
  handlers : handler option array;
  mutable next_ep : int;
  pool_key : frame list ref Domain.DLS.key;
  calls_key : int ref Domain.DLS.key;
  registered : int Atomic.t;
}

let scratch_bytes = 4096

let make_frame () = { scratch = Bytes.create scratch_bytes; frame_calls = 0 }

let create () =
  {
    handlers = Array.make max_entry_points None;
    next_ep = 0;
    pool_key =
      Domain.DLS.new_key (fun () -> ref [ make_frame (); make_frame () ]);
    calls_key = Domain.DLS.new_key (fun () -> ref 0);
    registered = Atomic.make 0;
  }

(* Registration is a management operation: perform it before the domains
   start calling (the paper routes it through Frank for the same
   reason). *)
let register t handler =
  if t.next_ep >= max_entry_points then
    invalid_arg "Fastcall.register: out of entry points";
  let ep = t.next_ep in
  t.next_ep <- ep + 1;
  t.handlers.(ep) <- Some handler;
  Atomic.incr t.registered;
  ep

let registered t = Atomic.get t.registered

exception No_entry of int

let domain_index () = (Domain.self () :> int)

(* The fast path: array load, DLS pool pop, handler, pool push.  No
   locks, no shared mutable data, no allocation. *)
let call t ~ep args =
  (match t.handlers.(ep) with
  | None -> raise (No_entry ep)
  | Some handler ->
      let pool = Domain.DLS.get t.pool_key in
      let frame =
        match !pool with
        | f :: rest ->
            pool := rest;
            f
        | [] -> make_frame ()
        (* pool empty: grow, like Frank creating a CD *)
      in
      frame.frame_calls <- frame.frame_calls + 1;
      let ctx = { frame; domain_index = domain_index () } in
      Fun.protect
        ~finally:(fun () -> pool := frame :: !pool)
        (fun () -> handler ctx args);
      let calls = Domain.DLS.get t.calls_key in
      incr calls);
  args.(arg_words - 1)

let local_calls t = !(Domain.DLS.get t.calls_key)

(* --- cross-domain calls ------------------------------------------------ *)

(* A server domain drains an MPSC queue of requests; remote callers block
   on a per-request completion cell.  This is the runtime analogue of the
   cross-processor PPC variant: explicitly slower, for the rare remote
   case.

   The waiting discipline is hybrid: a short spin (wins when the server
   runs on another core), then a mutex/condvar block (necessary when
   cores are scarce — a pure spin-wait livelocks a single-core box). *)

type request = {
  req_ep : int;
  req_args : int array;
  done_ : bool Atomic.t;
  req_mutex : Mutex.t;
  req_cond : Condition.t;
}

type server_domain = {
  queue : request Mpsc_queue.t;
  stop : bool Atomic.t;
  served : int Atomic.t;
  sd_mutex : Mutex.t;
  sd_cond : Condition.t;  (** signalled on every push and on stop *)
  domain : unit Domain.t;
}

let spawn_server t =
  let queue = Mpsc_queue.create () in
  let stop = Atomic.make false in
  let served = Atomic.make 0 in
  let sd_mutex = Mutex.create () in
  let sd_cond = Condition.create () in
  let domain =
    Domain.spawn (fun () ->
        let rec loop () =
          match Mpsc_queue.pop queue with
          | Some req ->
              ignore (call t ~ep:req.req_ep req.req_args);
              Atomic.set req.done_ true;
              Mutex.lock req.req_mutex;
              Condition.signal req.req_cond;
              Mutex.unlock req.req_mutex;
              Atomic.incr served;
              loop ()
          | None ->
              if Atomic.get stop then ()
              else begin
                Mutex.lock sd_mutex;
                while Mpsc_queue.is_empty queue && not (Atomic.get stop) do
                  Condition.wait sd_cond sd_mutex
                done;
                Mutex.unlock sd_mutex;
                loop ()
              end
        in
        loop ())
  in
  { queue; stop; served; sd_mutex; sd_cond; domain }

let cross_call sd ~ep args =
  let req =
    {
      req_ep = ep;
      req_args = args;
      done_ = Atomic.make false;
      req_mutex = Mutex.create ();
      req_cond = Condition.create ();
    }
  in
  Mpsc_queue.push sd.queue req;
  Mutex.lock sd.sd_mutex;
  Condition.signal sd.sd_cond;
  Mutex.unlock sd.sd_mutex;
  (* Brief spin for the multi-core fast case... *)
  let spins = ref 0 in
  while (not (Atomic.get req.done_)) && !spins < 256 do
    incr spins;
    Domain.cpu_relax ()
  done;
  (* ...then block. *)
  if not (Atomic.get req.done_) then begin
    Mutex.lock req.req_mutex;
    while not (Atomic.get req.done_) do
      Condition.wait req.req_cond req.req_mutex
    done;
    Mutex.unlock req.req_mutex
  end;
  args.(arg_words - 1)

let shutdown_server sd =
  Atomic.set sd.stop true;
  Mutex.lock sd.sd_mutex;
  Condition.broadcast sd.sd_cond;
  Mutex.unlock sd.sd_mutex;
  Domain.join sd.domain

let served sd = Atomic.get sd.served
