(** A pool of service domains with per-member MPSC work queues
    (affinity-preserving work placement). *)

type t

val create : domains:int -> t
val size : t -> int

val submit_to : t -> index:int -> (unit -> unit) -> unit
(** Run on a specific member (affinity). *)

val submit : t -> (unit -> unit) -> unit
(** Round-robin placement. *)

val executed : t -> index:int -> int
val total_executed : t -> int

val shutdown : t -> unit
(** Drain queues and join all members. *)
