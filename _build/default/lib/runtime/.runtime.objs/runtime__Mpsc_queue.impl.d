lib/runtime/mpsc_queue.ml: Atomic Domain Thread
