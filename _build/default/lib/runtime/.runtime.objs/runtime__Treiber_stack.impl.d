lib/runtime/treiber_stack.ml: Atomic Domain
