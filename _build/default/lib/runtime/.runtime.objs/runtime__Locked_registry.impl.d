lib/runtime/locked_registry.ml: Array Bytes Fun Hashtbl List Mutex
