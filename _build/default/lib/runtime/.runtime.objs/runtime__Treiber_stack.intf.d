lib/runtime/treiber_stack.mli:
