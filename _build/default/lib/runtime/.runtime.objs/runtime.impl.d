lib/runtime/runtime.ml: Domain_pool Fastcall Locked_registry Mpsc_queue Spsc_ring Striped_counter Treiber_stack
