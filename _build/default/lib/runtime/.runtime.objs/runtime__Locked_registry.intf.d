lib/runtime/locked_registry.mli: Bytes
