lib/runtime/domain_pool.ml: Array Atomic Condition Domain Mpsc_queue Mutex
