lib/runtime/fastcall.mli: Bytes
