lib/runtime/striped_counter.ml: Array Atomic Domain
