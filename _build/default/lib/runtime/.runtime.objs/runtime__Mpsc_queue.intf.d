lib/runtime/mpsc_queue.mli:
