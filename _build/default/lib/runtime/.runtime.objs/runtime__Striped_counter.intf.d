lib/runtime/striped_counter.mli:
