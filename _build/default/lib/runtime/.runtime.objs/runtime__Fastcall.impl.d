lib/runtime/fastcall.ml: Array Atomic Bytes Condition Domain Fun Mpsc_queue Mutex
