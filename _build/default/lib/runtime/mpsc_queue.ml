(* Lock-free multi-producer single-consumer queue (Vyukov's algorithm)
   on OCaml 5 atomics.

   The cross-domain request channel of the runtime embodiment: producers
   exchange the tail pointer (one atomic RMW, no CAS loop, no locks) and
   the single consumer walks the linked list privately — the same
   "only the owner touches it" discipline as the simulator's
   per-processor pools. *)

type 'a node = { mutable value : 'a option; next : 'a node option Atomic.t }

type 'a t = {
  mutable head : 'a node;  (** consumer-private *)
  tail : 'a node Atomic.t;  (** producers swap this *)
  pushes : int Atomic.t;
  pops : int Atomic.t;
}

let create () =
  let stub = { value = None; next = Atomic.make None } in
  {
    head = stub;
    tail = Atomic.make stub;
    pushes = Atomic.make 0;
    pops = Atomic.make 0;
  }

(* Producers: wait-free except for the single [exchange]. *)
let push t v =
  let node = { value = Some v; next = Atomic.make None } in
  let prev = Atomic.exchange t.tail node in
  Atomic.set prev.next (Some node);
  Atomic.incr t.pushes

(* Consumer only. *)
let pop t =
  match Atomic.get t.head.next with
  | None -> None
  | Some node ->
      let v = node.value in
      node.value <- None;
      (* drop the reference for GC *)
      t.head <- node;
      Atomic.incr t.pops;
      v

let rec pop_wait ?(spins = 0) t =
  match pop t with
  | Some v -> v
  | None ->
      if spins < 1024 then begin
        Domain.cpu_relax ();
        pop_wait ~spins:(spins + 1) t
      end
      else begin
        Thread.yield ();
        pop_wait ~spins:0 t
      end

let is_empty t = Atomic.get t.head.next = None
let pushes t = Atomic.get t.pushes
let pops t = Atomic.get t.pops
