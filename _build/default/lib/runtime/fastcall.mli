(** The PPC design pattern on OCaml 5 domains: lock-free service table,
    per-domain frame pools in domain-local storage, 8-word argument
    convention.  Local calls take no locks and allocate nothing. *)

val max_entry_points : int
val arg_words : int

type frame = { scratch : Bytes.t; mutable frame_calls : int }
type ctx = { frame : frame; domain_index : int }
type handler = ctx -> int array -> unit

type t

exception No_entry of int

val create : unit -> t

val register : t -> handler -> int
(** Bind the next entry point.  Management path: register before domains
    start calling. *)

val registered : t -> int

val call : t -> ep:int -> int array -> int
(** Local synchronous call: returns [args.(7)] (the RC slot). *)

val local_calls : t -> int
(** Calls completed by the current domain. *)

type server_domain

val spawn_server : t -> server_domain
(** A domain that serves cross-domain requests from an MPSC queue. *)

val cross_call : server_domain -> ep:int -> int array -> int
(** Enqueue on the server domain and spin/yield until completion. *)

val shutdown_server : server_domain -> unit
val served : server_domain -> int
