(* The anti-pattern baseline: one mutex guards a shared handler table and
   a shared frame pool.

   This is the runtime analogue of the uniprocessor-IPC-translated-
   directly design the paper warns about: every call takes a global lock
   twice and bounces the shared pool between cores.  Benchmarked against
   {!Fastcall} in ablation A5. *)

type frame = { scratch : Bytes.t; mutable frame_calls : int }

type handler = frame -> int array -> unit

type t = {
  lock : Mutex.t;
  handlers : (int, handler) Hashtbl.t;
  mutable pool : frame list;
  mutable next_ep : int;
  mutable calls : int;
}

let scratch_bytes = 4096

let make_frame () = { scratch = Bytes.create scratch_bytes; frame_calls = 0 }

let create ?(frames = 4) () =
  {
    lock = Mutex.create ();
    handlers = Hashtbl.create 64;
    pool = List.init frames (fun _ -> make_frame ());
    next_ep = 0;
    calls = 0;
  }

let register t handler =
  Mutex.lock t.lock;
  let ep = t.next_ep in
  t.next_ep <- ep + 1;
  Hashtbl.replace t.handlers ep handler;
  Mutex.unlock t.lock;
  ep

exception No_entry of int

let call t ~ep args =
  (* Lock to look up the handler and take a frame... *)
  Mutex.lock t.lock;
  let handler =
    match Hashtbl.find_opt t.handlers ep with
    | Some h -> h
    | None ->
        Mutex.unlock t.lock;
        raise (No_entry ep)
  in
  let frame =
    match t.pool with
    | f :: rest ->
        t.pool <- rest;
        f
    | [] -> make_frame ()
  in
  t.calls <- t.calls + 1;
  Mutex.unlock t.lock;
  frame.frame_calls <- frame.frame_calls + 1;
  Fun.protect
    ~finally:(fun () ->
      (* ...and lock again to return it. *)
      Mutex.lock t.lock;
      t.pool <- frame :: t.pool;
      Mutex.unlock t.lock)
    (fun () -> handler frame args);
  args.(Array.length args - 1)

let calls t = t.calls
