(** Lock-free Treiber stack (single-CAS push/pop). *)

type 'a t

val create : unit -> 'a t
val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a option
val is_empty : 'a t -> bool
val pushes : 'a t -> int
val pops : 'a t -> int

val length : 'a t -> int
(** O(n) walk of the current head snapshot (diagnostics). *)
