(* A striped counter: the runtime analogue of the simulator's sharded
   counter server.

   Increments touch one stripe selected by the calling domain, so
   unrelated domains never contend on one cache line; reads gather all
   stripes (rare, more expensive) — exactly the locality split the paper
   prescribes for server state.  Stripes are padded to keep each atomic
   on its own cache line. *)

type t = {
  stripes : int Atomic.t array;
  mask : int;
}

(* Pad by allocating interleaved dummies: on OCaml, boxed atomics are one
   word plus header; spacing them in the array is approximate padding but
   avoids adjacent-allocation false sharing in practice. *)
let padding = 8

let create ?(stripes = 16) () =
  if stripes <= 0 || stripes land (stripes - 1) <> 0 then
    invalid_arg "Striped_counter.create: stripes must be a power of two";
  { stripes = Array.init (stripes * padding) (fun _ -> Atomic.make 0);
    mask = stripes - 1 }

let stripe_for t =
  ((Domain.self () :> int) land t.mask) * padding

let incr t = Atomic.incr t.stripes.(stripe_for t)

let add t n =
  ignore (Atomic.fetch_and_add t.stripes.(stripe_for t) n)

(* Gather: one read per stripe.  Concurrent increments may or may not be
   included — the usual weak-snapshot semantics of striped counters. *)
let value t =
  let total = ref 0 in
  let n = (t.mask + 1) * padding in
  let i = ref 0 in
  while !i < n do
    total := !total + Atomic.get t.stripes.(!i);
    i := !i + padding
  done;
  !total
