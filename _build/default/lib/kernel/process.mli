(** Process control blocks with a race-free sleep/wake protocol. *)

type kind = Client | Worker | Kernel_daemon

val show_kind : kind -> string
val pp_kind : Format.formatter -> kind -> unit
val equal_kind : kind -> kind -> bool

type state = New | Running | Ready | Blocked | Dead

val show_state : state -> string
val pp_state : Format.formatter -> state -> unit
val equal_state : state -> state -> bool

type t

val create :
  name:string ->
  kind:kind ->
  program:Program.t ->
  space:Address_space.t ->
  cpu_index:int ->
  t

val id : t -> int
val name : t -> string
val kind : t -> kind
val program : t -> Program.t
val space : t -> Address_space.t
val cpu_index : t -> int
val state : t -> state
val set_state : t -> state -> unit

val sleep : Sim.Engine.t -> t -> unit
(** Block the calling simulated process until {!wake}.  A wake that
    arrives before the sleep point is absorbed (no lost-wakeup race). *)

val wake : ?error:exn -> t -> unit
(** Resume a sleeping process, optionally with an exception (hard-kill).
    Waking a process that is not asleep sets a pre-wake flag instead. *)

val pp : Format.formatter -> t -> unit
