(* Log sources for the kernel and the facilities above it.

   Management-path events (slow paths, kills, reclaim, device service)
   log here; the hot call path never does — tracing ({!Sim.Trace}) covers
   it without formatting costs.  Enable with [Logs.set_level] and a
   reporter (the CLI's [-v] does both). *)

let kernel_src = Logs.Src.create "hurricane.kernel" ~doc:"Kernel substrate"
let ppc_src = Logs.Src.create "hurricane.ppc" ~doc:"PPC facility"
let server_src = Logs.Src.create "hurricane.servers" ~doc:"System servers"

module Kernel_log = (val Logs.src_log kernel_src : Logs.LOG)
module Ppc_log = (val Logs.src_log ppc_src : Logs.LOG)
module Server_log = (val Logs.src_log server_src : Logs.LOG)
