(* Process control blocks.

   A process is a schedulable thread of control bound to one CPU.  Its
   execution is an effect-based simulated process; the [resume]/[prewoken]
   pair implements a race-free sleep/wake protocol used by the per-CPU
   scheduler (see {!Kcpu}). *)

type kind = Client | Worker | Kernel_daemon
[@@deriving show { with_path = false }, eq]

type state = New | Running | Ready | Blocked | Dead
[@@deriving show { with_path = false }, eq]

type t = {
  id : int;
  name : string;
  kind : kind;
  program : Program.t;
  space : Address_space.t;
  cpu_index : int;
  mutable state : state;
  mutable resume : ((unit, exn) result -> unit) option;
  mutable prewoken : bool;
}

let counter = ref 0

let create ~name ~kind ~program ~space ~cpu_index =
  incr counter;
  {
    id = !counter;
    name;
    kind;
    program;
    space;
    cpu_index;
    state = New;
    resume = None;
    prewoken = false;
  }

let id t = t.id
let name t = t.name
let kind t = t.kind
let program t = t.program
let space t = t.space
let cpu_index t = t.cpu_index
let state t = t.state
let set_state t s = t.state <- s

(* Sleep until woken.  If [wake] already ran (the scheduler dispatched us
   before we reached the sleep point) the pre-wake flag absorbs it. *)
let sleep engine t =
  if t.prewoken then t.prewoken <- false
  else Sim.Engine.suspend engine (fun r -> t.resume <- Some r)

let wake ?(error : exn option) t =
  match t.resume with
  | Some r -> (
      t.resume <- None;
      match error with Some e -> r (Error e) | None -> r (Ok ()))
  | None -> (
      match error with
      | Some _ ->
          (* Killing a process that is mid-execution: it will observe the
             Dead state at its next scheduler interaction. *)
          ()
      | None -> t.prewoken <- true)

let pp ppf t = Fmt.pf ppf "%s#%d(cpu%d)" t.name t.id t.cpu_index
