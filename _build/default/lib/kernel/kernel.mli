(** One simulated Hurricane kernel instance over a simulated machine. *)

module Program = Program
module Address_space = Address_space
module Process = Process
module Clock = Clock
module Kcpu = Kcpu
module Spinlock = Spinlock
module Rw_spinlock = Rw_spinlock
module Interrupt = Interrupt
module Msg_ipc = Msg_ipc
module Cluster = Cluster
module Klog = Klog

type t

val create : ?params:Machine.Cost_params.t -> ?cpus:int -> unit -> t

val engine : t -> Sim.Engine.t
val machine : t -> Machine.t
val n_cpus : t -> int
val kcpu : t -> int -> Kcpu.t
val kcpus : t -> Kcpu.t list
val programs : t -> Program.registry
val kernel_program : t -> Program.t
val kernel_space : t -> Address_space.t
val interrupts : t -> Interrupt.t

val new_program : t -> name:string -> Program.t
val new_user_space : t -> name:string -> node:int -> Address_space.t

val alloc : ?align:[ `Line | `Page ] -> t -> bytes:int -> node:int -> int
(** Allocate simulated physical memory homed on [node]. *)

val alloc_page : t -> node:int -> int

val spawn :
  ?band:[ `Front | `Normal ] ->
  t ->
  cpu:int ->
  name:string ->
  kind:Process.kind ->
  program:Program.t ->
  space:Address_space.t ->
  (Process.t -> unit) ->
  Process.t
(** Create and start a process on the given CPU. *)

val run : ?until:Sim.Time.t -> t -> unit
val now : t -> Sim.Time.t
