lib/kernel/rw_spinlock.pp.ml: Clock Machine Process Queue Sim
