lib/kernel/msg_ipc.pp.mli: Kcpu Process Sim Spinlock
