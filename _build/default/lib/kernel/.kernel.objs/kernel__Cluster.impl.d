lib/kernel/cluster.pp.ml: Int List
