lib/kernel/process.pp.ml: Address_space Fmt Ppx_deriving_runtime Program Sim
