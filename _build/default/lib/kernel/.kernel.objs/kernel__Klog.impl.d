lib/kernel/klog.pp.ml: Logs
