lib/kernel/address_space.pp.ml: Hashtbl Machine
