lib/kernel/interrupt.pp.mli: Address_space Kcpu Process Program Sim
