lib/kernel/address_space.pp.mli: Machine
