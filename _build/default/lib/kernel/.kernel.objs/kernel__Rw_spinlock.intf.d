lib/kernel/rw_spinlock.pp.mli: Machine Process Sim
