lib/kernel/program.pp.ml: Fmt List
