lib/kernel/interrupt.pp.ml: Address_space Hashtbl Kcpu Machine Printf Process Program Sim
