lib/kernel/clock.pp.ml: Machine Sim
