lib/kernel/spinlock.pp.mli: Machine Process Sim
