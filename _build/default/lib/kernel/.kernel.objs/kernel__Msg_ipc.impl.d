lib/kernel/msg_ipc.pp.ml: Address_space Array Kcpu Machine Process Queue Sim Spinlock
