lib/kernel/spinlock.pp.ml: Clock Fun Machine Printf Process Queue Sim
