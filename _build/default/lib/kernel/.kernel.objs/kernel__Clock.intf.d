lib/kernel/clock.pp.mli: Machine Sim
