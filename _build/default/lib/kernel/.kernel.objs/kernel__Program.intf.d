lib/kernel/program.pp.mli: Format
