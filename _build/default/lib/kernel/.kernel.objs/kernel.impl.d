lib/kernel/kernel.pp.ml: Address_space Array Clock Cluster Interrupt Kcpu Klog Machine Msg_ipc Process Program Rw_spinlock Sim Spinlock
