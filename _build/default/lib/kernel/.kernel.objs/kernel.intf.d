lib/kernel/kernel.pp.mli: Address_space Clock Cluster Interrupt Kcpu Klog Machine Msg_ipc Process Program Rw_spinlock Sim Spinlock
