lib/kernel/kcpu.pp.ml: Clock Float Machine Printf Process Queue Sim
