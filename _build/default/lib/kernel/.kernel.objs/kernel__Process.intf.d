lib/kernel/process.pp.mli: Address_space Format Program Sim
