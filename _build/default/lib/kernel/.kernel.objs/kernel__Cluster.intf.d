lib/kernel/cluster.pp.mli:
