lib/kernel/kcpu.pp.mli: Machine Process Sim
