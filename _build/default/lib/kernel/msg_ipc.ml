(* Hurricane's pre-existing message-passing IPC (the facility the PPC
   subsystem replaced; comparator for ablation A4).

   A direct, uniprocessor-style translation to a multiprocessor: a global
   port with a spinlock-guarded message queue in shared memory.  The round
   trip walks the general scheduling path — full register save/restore on
   every block — and marshals arguments through memory rather than
   registers.  Every property the paper's Section 1 warns about is
   present by construction: shared data on the critical path, a lock per
   port, and no hand-off transfer. *)

type message = {
  sender : Process.t;
  args : int array;
  mutable results : int array option;
}

type port = {
  name : string;
  lock : Spinlock.t;
  buf_base : int;  (** shared message buffer region *)
  queue_addr : int;  (** shared queue head/tail words *)
  pending : message Queue.t;
  mutable receivers : Process.t list;  (** blocked servers, FIFO *)
  mutable sends : int;
}

type t = {
  engine : Sim.Engine.t;
  kcpu_of : int -> Kcpu.t;
  pcb_save_base : int;  (** register-save areas for full switches *)
}

let create ~engine ~kcpu_of ~alloc () =
  { engine; kcpu_of; pcb_save_base = alloc ~bytes:4096 ~node:0 }

let make_port ~name ~node ~alloc =
  let buf_base = alloc ~bytes:1024 ~node in
  let queue_addr = alloc ~bytes:64 ~node in
  {
    name;
    lock = Spinlock.create ~addr:(alloc ~bytes:16 ~node) ();
    buf_base;
    queue_addr;
    pending = Queue.create ();
    receivers = [];
    sends = 0;
  }

let port_name p = p.name
let sends p = p.sends
let lock_stats p = p.lock

(* Full context switch: the general scheduler saves and restores the whole
   register file (the M88100's large register set — one of the paper's
   "architectural features" making switches expensive). *)
let full_switch_cost t cpu ~proc =
  let save_area = t.pcb_save_base + (Process.id proc mod 32 * 128) in
  Machine.Cpu.instr cpu 20;
  Machine.Cpu.store_words cpu save_area 32;
  Machine.Cpu.load_words cpu save_area 32

let copy_words cpu ~src_instr ~addr ~n kind =
  Machine.Cpu.instr cpu src_instr;
  match kind with
  | `Store -> Machine.Cpu.store_words cpu addr n
  | `Load -> Machine.Cpu.load_words cpu addr n

(* Client side: synchronous round trip. *)
let send t port ~client args =
  if Array.length args > 8 then invalid_arg "Msg_ipc.send: at most 8 words";
  let kc = t.kcpu_of (Process.cpu_index client) in
  let cpu = Kcpu.cpu kc in
  port.sends <- port.sends + 1;
  (* Trap into the kernel. *)
  Machine.Cpu.trap cpu;
  (* Marshal arguments through a shared kernel buffer. *)
  let slot = port.buf_base + (port.sends mod 16 * 64) in
  copy_words cpu ~src_instr:10 ~addr:slot ~n:8 `Store;
  (* Publish on the port queue under its lock. *)
  Spinlock.acquire t.engine cpu client port.lock;
  Machine.Cpu.instr cpu 8;
  (* Message descriptor from the shared pool, then queue linkage. *)
  Machine.Cpu.uncached_load cpu (port.queue_addr + 16);
  Machine.Cpu.uncached_store cpu (port.queue_addr + 16);
  Machine.Cpu.uncached_store cpu port.queue_addr;
  Machine.Cpu.uncached_store cpu (port.queue_addr + 8);
  let msg = { sender = client; args = Array.copy args; results = None } in
  Queue.push msg port.pending;
  (* Wake a blocked server if any (possibly on another CPU). *)
  (match port.receivers with
  | [] -> ()
  | server :: rest ->
      port.receivers <- rest;
      Machine.Cpu.instr cpu 12;
      Kcpu.ready (t.kcpu_of (Process.cpu_index server)) server);
  Spinlock.release t.engine cpu client port.lock;
  (* Block awaiting the reply: full state save, general dispatch. *)
  full_switch_cost t cpu ~proc:client;
  Kcpu.block kc client;
  (* Reply arrived: unmarshal results and return to user mode. *)
  full_switch_cost t cpu ~proc:client;
  copy_words cpu ~src_instr:10 ~addr:(slot + 32) ~n:8 `Load;
  Machine.Cpu.rti cpu ~to_space:(Address_space.space_of (Process.space client));
  Kcpu.sync kc;
  match msg.results with
  | Some r -> r
  | None -> failwith "Msg_ipc.send: woken without a reply"

(* Server side: take the next message, blocking while the port is empty. *)
let rec receive t port ~server =
  let kc = t.kcpu_of (Process.cpu_index server) in
  let cpu = Kcpu.cpu kc in
  Spinlock.acquire t.engine cpu server port.lock;
  Machine.Cpu.instr cpu 8;
  Machine.Cpu.uncached_load cpu port.queue_addr;
  match Queue.take_opt port.pending with
  | Some msg ->
      Machine.Cpu.uncached_store cpu (port.queue_addr + 8);
      Spinlock.release t.engine cpu server port.lock;
      copy_words cpu ~src_instr:10 ~addr:port.buf_base ~n:8 `Load;
      (* Return to user mode in the server with the message. *)
      Machine.Cpu.rti cpu
        ~to_space:(Address_space.space_of (Process.space server));
      msg
  | None ->
      port.receivers <- port.receivers @ [ server ];
      Spinlock.release t.engine cpu server port.lock;
      full_switch_cost t cpu ~proc:server;
      Kcpu.block kc server;
      full_switch_cost t cpu ~proc:server;
      receive t port ~server

(* Server side: reply and wake the sender. *)
let reply t port ~server msg results =
  if Array.length results > 8 then invalid_arg "Msg_ipc.reply: at most 8 words";
  let kc = t.kcpu_of (Process.cpu_index server) in
  let cpu = Kcpu.cpu kc in
  (* Trap back into the kernel to post the reply. *)
  Machine.Cpu.trap cpu;
  msg.results <- Some (Array.copy results);
  copy_words cpu ~src_instr:10 ~addr:(port.buf_base + 32) ~n:8 `Store;
  Machine.Cpu.instr cpu 12;
  Kcpu.ready (t.kcpu_of (Process.cpu_index msg.sender)) msg.sender;
  Kcpu.sync kc

(* Convenience server loop. *)
let serve t port ~server handler =
  while true do
    let msg = receive t port ~server in
    let results = handler msg.args in
    reply t port ~server msg results
  done
