(* Bridging CPU cycle consumption into simulated time.

   Micro-ops accumulate cycles on a {!Machine.Cpu}; at synchronisation
   points (scheduler operations, lock handovers, measurement boundaries)
   the running process sleeps the simulated clock forward by exactly the
   cycles it has consumed since the last sync. *)

let sync engine cpu =
  let cycles = Machine.Cpu.take_unsynced cpu in
  if cycles > 0 then
    Sim.Engine.delay engine
      (Machine.Cost_params.cycles_to_time (Machine.Cpu.params cpu) cycles)
