(* Interrupt controller.

   Raising a vector on a CPU manufactures a short-lived kernel-daemon
   process in that CPU's front scheduling band.  On an idle CPU it runs
   immediately; on a busy CPU it runs at the next scheduling point (the
   model does not preempt mid-process — documented approximation).

   The PPC facility layers its interrupt-dispatch variant on top of this:
   the handler manufactures an asynchronous PPC to the device server
   (paper Section 4.4). *)

type entry = {
  name : string;
  kcpu : Kcpu.t;
  program : Program.t;
  space : Address_space.t;
  handler : Process.t -> unit;
}

type t = {
  table : (int, entry) Hashtbl.t;
  mutable raised : int;
  mutable delivered : int;
  delivery_latency : Sim.Time.t;
}

let create ?(delivery_latency = Sim.Time.us 2) () =
  { table = Hashtbl.create 16; raised = 0; delivered = 0; delivery_latency }

let register t ~vector ~name ~kcpu ~program ~space handler =
  if Hashtbl.mem t.table vector then
    invalid_arg "Interrupt.register: vector already registered";
  Hashtbl.replace t.table vector { name; kcpu; program; space; handler }

let unregister t ~vector = Hashtbl.remove t.table vector

let raised t = t.raised
let delivered t = t.delivered

(* Deliver: runs from event context (a device completing) or from a
   process.  The handler becomes a fresh kernel-daemon process. *)
let raise_vector t ~vector =
  match Hashtbl.find_opt t.table vector with
  | None -> invalid_arg "Interrupt.raise_vector: unregistered vector"
  | Some e ->
      t.raised <- t.raised + 1;
      let deliver () =
        let p =
        Process.create
          ~name:(Printf.sprintf "irq-%s" e.name)
          ~kind:Process.Kernel_daemon ~program:e.program ~space:e.space
          ~cpu_index:(Kcpu.index e.kcpu)
      in
        Kcpu.start ~band:`Front e.kcpu p (fun () ->
            let cpu = Kcpu.cpu e.kcpu in
            (* Interrupt entry: vector fetch and minimal state save. *)
            Machine.Cpu.trap cpu;
            Machine.Cpu.instr cpu 12;
            t.delivered <- t.delivered + 1;
            e.handler p;
            Machine.Cpu.rti cpu ~to_space:Machine.Tlb.Supervisor;
            Kcpu.sync e.kcpu)
      in
      (* Propagation: the vector crosses the interconnect. *)
      Sim.Engine.schedule (Kcpu.engine e.kcpu) ~after:t.delivery_latency
        deliver
