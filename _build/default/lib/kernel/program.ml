(* Programs: the unit of identity.

   The paper separates naming from authentication (Section 4.1): callers
   are identified to servers by their *program ID*, and each server keeps
   whatever client-specific state it needs to decide whether a call is
   permitted.  A program here is just a registered identity that processes
   carry. *)

type id = int

type t = { id : id; name : string }

type registry = { mutable next : id; mutable programs : t list }

let make_registry () = { next = 1; programs = [] }

let register reg ~name =
  let p = { id = reg.next; name } in
  reg.next <- reg.next + 1;
  reg.programs <- p :: reg.programs;
  p

let find reg id = List.find_opt (fun p -> p.id = id) reg.programs

let id t = t.id
let name t = t.name

let pp ppf t = Fmt.pf ppf "%s#%d" t.name t.id
