(** Program identities, used for authentication (paper Section 4.1). *)

type id = int
type t

type registry

val make_registry : unit -> registry
val register : registry -> name:string -> t
val find : registry -> id -> t option

val id : t -> id
val name : t -> string
val pp : Format.formatter -> t -> unit
