(* Hierarchical clustering (Unrau, Stumm & Krieger [16]).

   Hurricane structures a large machine as clusters of processors: kernel
   data is replicated or partitioned per cluster, so common operations
   touch only cluster-local memory and cross-cluster traffic is the
   exception.  This module is the topology arithmetic; services build
   their per-cluster replication on top of it (see
   [Naming.Clustered_name_server] and ablation A9). *)

type t = { cpus : int; cluster_size : int }

let create ~cpus ~cluster_size =
  if cluster_size <= 0 then
    invalid_arg "Cluster.create: cluster size must be positive";
  if cpus <= 0 then invalid_arg "Cluster.create: need at least one CPU";
  { cpus; cluster_size }

let cpus t = t.cpus
let cluster_size t = t.cluster_size

let n_clusters t = (t.cpus + t.cluster_size - 1) / t.cluster_size

let cluster_of t ~cpu =
  if cpu < 0 || cpu >= t.cpus then invalid_arg "Cluster.cluster_of: bad CPU";
  cpu / t.cluster_size

let members t ~cluster =
  if cluster < 0 || cluster >= n_clusters t then
    invalid_arg "Cluster.members: bad cluster";
  let first = cluster * t.cluster_size in
  let last = Int.min (first + t.cluster_size) t.cpus - 1 in
  List.init (last - first + 1) (fun i -> first + i)

let same_cluster t ~a ~b = cluster_of t ~cpu:a = cluster_of t ~cpu:b

(* A representative CPU to home a cluster's replica on (its first
   member). *)
let home_cpu t ~cluster = List.hd (members t ~cluster)
