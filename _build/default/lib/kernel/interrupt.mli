(** Interrupt controller: vectors dispatch short-lived kernel-daemon
    processes in the target CPU's front scheduling band. *)

type t

val create : ?delivery_latency:Sim.Time.t -> unit -> t

val register :
  t ->
  vector:int ->
  name:string ->
  kcpu:Kcpu.t ->
  program:Program.t ->
  space:Address_space.t ->
  (Process.t -> unit) ->
  unit

val unregister : t -> vector:int -> unit

val raise_vector : t -> vector:int -> unit
(** Deliver the vector: the handler runs as a fresh process at the target
    CPU's next scheduling point (immediately if idle). *)

val raised : t -> int
val delivered : t -> int
