(* Kernel facade: one simulated Hurricane instance.

   Ties together the machine, the per-CPU scheduler contexts, the program
   registry, the kernel address space and the interrupt controller; and
   re-exports the component modules as the library interface. *)

module Program = Program
module Address_space = Address_space
module Process = Process
module Clock = Clock
module Kcpu = Kcpu
module Spinlock = Spinlock
module Rw_spinlock = Rw_spinlock
module Interrupt = Interrupt
module Msg_ipc = Msg_ipc
module Cluster = Cluster
module Klog = Klog

type t = {
  engine : Sim.Engine.t;
  machine : Machine.t;
  kcpus : Kcpu.t array;
  programs : Program.registry;
  kernel_program : Program.t;
  kernel_space : Address_space.t;
  interrupts : Interrupt.t;
}

let create ?params ?(cpus = 1) () =
  let engine = Sim.Engine.create () in
  let machine =
    match params with
    | None -> Machine.create ~cpus ()
    | Some params -> Machine.create ~params ~cpus ()
  in
  let kcpus =
    Array.init cpus (fun i -> Kcpu.create engine (Machine.cpu machine i) ~index:i)
  in
  let programs = Program.make_registry () in
  let kernel_program = Program.register programs ~name:"kernel" in
  let kernel_space =
    Address_space.create ~kind:Address_space.Kernel ~name:"kernel"
      ~pte_base:(Machine.alloc_page machine ~node:0)
      ~page_bytes:(Machine.params machine).Machine.Cost_params.page_bytes
  in
  {
    engine;
    machine;
    kcpus;
    programs;
    kernel_program;
    kernel_space;
    interrupts = Interrupt.create ();
  }

let engine t = t.engine
let machine t = t.machine
let n_cpus t = Array.length t.kcpus

let kcpu t i =
  if i < 0 || i >= Array.length t.kcpus then
    invalid_arg "Kernel.kcpu: index out of range";
  t.kcpus.(i)

let kcpus t = Array.to_list t.kcpus
let programs t = t.programs
let kernel_program t = t.kernel_program
let kernel_space t = t.kernel_space
let interrupts t = t.interrupts

let new_program t ~name = Program.register t.programs ~name

let new_user_space t ~name ~node =
  Address_space.create ~kind:Address_space.User ~name
    ~pte_base:(Machine.alloc_page t.machine ~node)
    ~page_bytes:(Machine.params t.machine).Machine.Cost_params.page_bytes

let alloc ?align t ~bytes ~node = Machine.alloc ?align t.machine ~bytes ~node
let alloc_page t ~node = Machine.alloc_page t.machine ~node

let spawn ?band t ~cpu ~name ~kind ~program ~space body =
  let p = Process.create ~name ~kind ~program ~space ~cpu_index:cpu in
  let kc = kcpu t cpu in
  (match band with
  | None -> Kcpu.start kc p (fun () -> body p)
  | Some band -> Kcpu.start ~band kc p (fun () -> body p));
  p

let run ?until t = Sim.Engine.run ?until t.engine
let now t = Sim.Engine.now t.engine
