(** Hierarchical clustering topology (Hurricane's structure, ref [16]). *)

type t

val create : cpus:int -> cluster_size:int -> t
val cpus : t -> int
val cluster_size : t -> int
val n_clusters : t -> int
val cluster_of : t -> cpu:int -> int
val members : t -> cluster:int -> int list
val same_cluster : t -> a:int -> b:int -> bool
val home_cpu : t -> cluster:int -> int
