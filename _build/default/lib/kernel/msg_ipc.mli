(** Hurricane's original message-passing IPC: shared port queue under a
    spinlock, full context switches, memory-marshalled arguments.  The
    comparator the paper's PPC facility replaces. *)

type message = {
  sender : Process.t;
  args : int array;
  mutable results : int array option;
}

type port
type t

val create :
  engine:Sim.Engine.t ->
  kcpu_of:(int -> Kcpu.t) ->
  alloc:(bytes:int -> node:int -> int) ->
  unit ->
  t

val make_port :
  name:string -> node:int -> alloc:(bytes:int -> node:int -> int) -> port

val port_name : port -> string
val sends : port -> int
val lock_stats : port -> Spinlock.t

val send : t -> port -> client:Process.t -> int array -> int array
(** Synchronous round trip (at most 8 argument words); blocks the calling
    simulated process until the server replies. *)

val receive : t -> port -> server:Process.t -> message
(** Next message, blocking while the port is empty. *)

val reply : t -> port -> server:Process.t -> message -> int array -> unit

val serve : t -> port -> server:Process.t -> (int array -> int array) -> unit
(** Loop forever: receive, apply the handler, reply. *)
