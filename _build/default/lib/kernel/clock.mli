(** Advance simulated time by the cycles a CPU has consumed. *)

val sync : Sim.Engine.t -> Machine.Cpu.t -> unit
(** Must be called from within the simulated process currently executing
    on that CPU. *)
