(** Address-space access grants for bulk transfer (Section 4.2). *)

type access = Read_only | Write_only | Read_write

type grant = {
  grant_id : int;
  owner : Kernel.Program.id;
  grantee : Kernel.Program.id;
  base : int;
  len : int;
  access : access;
}

type t

val create : unit -> t

val grant :
  t ->
  owner:Kernel.Program.id ->
  grantee:Kernel.Program.id ->
  base:int ->
  len:int ->
  access:access ->
  int
(** Returns the grant ID. *)

val revoke : t -> grant_id:int -> bool

val check :
  t ->
  owner:Kernel.Program.id ->
  grantee:Kernel.Program.id ->
  base:int ->
  len:int ->
  dir:[ `Read | `Write ] ->
  bool

val find : t -> grant_id:int -> grant option
val active_grants : t -> int
val revocations : t -> int
