(** The CopyServer: bulk data transfer as normal PPC requests, validated
    against region grants (Section 4.2). *)

val op_copy_to : int
val op_copy_from : int
val max_bytes_per_call : int

type t

val install : Ppc.t -> t
(** Register the CopyServer as a kernel-level PPC server. *)

val regions : t -> Region.t
(** The grant table callers populate before transferring. *)

val ep_id : t -> int
val bytes_copied : t -> int
val denied : t -> int

val copy_to :
  t ->
  Ppc.t ->
  client:Kernel.Process.t ->
  peer:Kernel.Program.id ->
  src:int ->
  dst:int ->
  len:int ->
  int
(** Push [len] bytes from the caller's [src] into the peer's granted
    [dst]; returns the RC. *)

val copy_from :
  t ->
  Ppc.t ->
  client:Kernel.Process.t ->
  peer:Kernel.Program.id ->
  src:int ->
  dst:int ->
  len:int ->
  int
