lib/transfer/region.ml: Kernel List
