lib/transfer/copy_server.mli: Kernel Ppc Region
