lib/transfer/region.mli: Kernel
