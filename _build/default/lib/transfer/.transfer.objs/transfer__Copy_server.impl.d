lib/transfer/copy_server.ml: Call_ctx Machine Null_server Ppc Reg_args Region
