(* Address-space regions and access grants (paper Section 4.2).

   Bulk data does not ride on the PPC itself: "a caller may give
   permission to the server to read and write selected portions of its
   address space", V-system style.  A grant names the owner program, the
   grantee program, a byte range in the owner's space, and the allowed
   direction(s).  The CopyServer validates every transfer against the
   grant table. *)

type access = Read_only | Write_only | Read_write

type grant = {
  grant_id : int;
  owner : Kernel.Program.id;
  grantee : Kernel.Program.id;
  base : int;
  len : int;
  access : access;
}

type t = {
  mutable grants : grant list;
  mutable next_id : int;
  mutable revocations : int;
}

let create () = { grants = []; next_id = 1; revocations = 0 }

let grant t ~owner ~grantee ~base ~len ~access =
  if len <= 0 then invalid_arg "Region.grant: empty range";
  let g = { grant_id = t.next_id; owner; grantee; base; len; access } in
  t.next_id <- t.next_id + 1;
  t.grants <- g :: t.grants;
  g.grant_id

let revoke t ~grant_id =
  let before = List.length t.grants in
  t.grants <- List.filter (fun g -> g.grant_id <> grant_id) t.grants;
  if List.length t.grants < before then begin
    t.revocations <- t.revocations + 1;
    true
  end
  else false

let allows access dir =
  match (access, dir) with
  | (Read_only | Read_write), `Read -> true
  | (Write_only | Read_write), `Write -> true
  | Read_only, `Write | Write_only, `Read -> false

(* May [grantee] perform [dir] on [base,base+len) of [owner]'s space? *)
let check t ~owner ~grantee ~base ~len ~dir =
  List.exists
    (fun g ->
      g.owner = owner && g.grantee = grantee
      && allows g.access dir
      && base >= g.base
      && base + len <= g.base + g.len)
    t.grants

let find t ~grant_id = List.find_opt (fun g -> g.grant_id = grant_id) t.grants
let active_grants t = List.length t.grants
let revocations t = t.revocations
