(* The CopyServer (paper Section 4.2): bulk transfer as ordinary PPCs.

   "The actual transfer of data is done by a separate CopyTo or CopyFrom
   request.  CopyTo and CopyFrom are normal PPC requests made to the
   CopyServer."

   A transfer validates the caller's grant and then moves [len] bytes
   word by word between the two address ranges, charging real cached
   memory traffic on the worker's CPU.  Register slots:

     0: grant owner's program id (the peer for CopyFrom, self for CopyTo)
     1: source address    2: destination address    3: length in bytes *)

let op_copy_to = 1  (** caller pushes its data into the peer's range *)

let op_copy_from = 2  (** caller pulls data from the peer's range *)

type t = {
  regions : Region.t;
  mutable ep_id : int;
  mutable bytes_copied : int;
  mutable denied : int;
}

let regions t = t.regions
let ep_id t = t.ep_id
let bytes_copied t = t.bytes_copied
let denied t = t.denied

(* The copy loop: realistic cached word-at-a-time traffic, bounded per
   call so a single transfer cannot monopolise a processor for ever. *)
let max_bytes_per_call = 64 * 1024

let do_copy cpu ~src ~dst ~len =
  let words = (len + 3) / 4 in
  for i = 0 to words - 1 do
    Machine.Cpu.load cpu (src + (4 * i));
    Machine.Cpu.store cpu (dst + (4 * i))
  done

let handler t : Ppc.Call_ctx.handler =
 fun ctx args ->
  let open Ppc in
  Machine.Cpu.instr ~code:ctx.Call_ctx.server_code ctx.Call_ctx.cpu 40;
  Null_server.touch_stack ctx ~words:6;
  let peer = Reg_args.get args 0 in
  let src = Reg_args.get args 1 in
  let dst = Reg_args.get args 2 in
  let len = Reg_args.get args 3 in
  let op = Reg_args.op args in
  if len <= 0 || len > max_bytes_per_call then
    Reg_args.set_rc args Reg_args.err_bad_request
  else begin
    let caller = ctx.Call_ctx.caller_program in
    (* CopyTo writes into the peer's granted range; CopyFrom reads from
       it.  The caller's own range needs no grant. *)
    let permitted =
      if op = op_copy_to then
        Region.check t.regions ~owner:peer ~grantee:caller ~base:dst ~len
          ~dir:`Write
      else if op = op_copy_from then
        Region.check t.regions ~owner:peer ~grantee:caller ~base:src ~len
          ~dir:`Read
      else false
    in
    if not permitted then begin
      t.denied <- t.denied + 1;
      Reg_args.set_rc args Reg_args.err_denied
    end
    else begin
      do_copy ctx.Call_ctx.cpu ~src ~dst ~len;
      t.bytes_copied <- t.bytes_copied + len;
      Reg_args.set args 0 len;
      Reg_args.set_rc args Reg_args.ok
    end
  end

let install ppc =
  let t = { regions = Region.create (); ep_id = -1; bytes_copied = 0; denied = 0 } in
  let server = Ppc.make_kernel_server ppc ~name:"copy-server" () in
  let ep = Ppc.register_direct ppc ~server ~handler:(handler t) in
  t.ep_id <- Ppc.Entry_point.id ep;
  t

(* Client-side stubs. *)

let copy_call t ppc ~client ~op ~peer ~src ~dst ~len =
  let open Ppc in
  let args = Reg_args.make () in
  Reg_args.set args 0 peer;
  Reg_args.set args 1 src;
  Reg_args.set args 2 dst;
  Reg_args.set args 3 len;
  Reg_args.set_op args ~op ~flags:0;
  Ppc.call ppc ~client ~opflags:(Reg_args.op_flags ~op ~flags:0) ~ep_id:t.ep_id
    args

let copy_to t ppc ~client ~peer ~src ~dst ~len =
  copy_call t ppc ~client ~op:op_copy_to ~peer ~src ~dst ~len

let copy_from t ppc ~client ~peer ~src ~dst ~len =
  copy_call t ppc ~client ~op:op_copy_from ~peer ~src ~dst ~len
