(* The program manager: process creation as a PPC service.

   In a microkernel ecosystem even spawning a program is a server call:
   the manager authenticates the requester (Admin permission, Section 4.1
   style), builds the program identity, its address space and VM regions
   (demand-paged text through the pager, demand-zero stack), and starts
   the process on the requested CPU.

   Executables are registered out of band (the staging pattern Frank also
   uses); the spawn call itself carries only the hashed name and target
   CPU in registers. *)

let op_spawn = 1

type executable = {
  exe_name : string;
  text_pages : int;
  stack_pages : int;
  body : Kernel.Process.t -> Vm.t -> unit;
}

type t = {
  ppc : Ppc.t;
  pager : Vm.Pager.t;
  auth : Naming.Auth.t;
  mutable ep : int;
  exes : (int * int, executable) Hashtbl.t;  (** hashed name -> image *)
  mutable next_tag : int;
  mutable spawned : int;
}

let ep_id t = t.ep
let auth t = t.auth
let spawned t = t.spawned

let text_base = 0x10_0000
let stack_base = 0x7F_0000

let register_exe t exe =
  Hashtbl.replace t.exes (Naming.Name_server.hash_name exe.exe_name) exe

(* Build everything a fresh program needs and start it. *)
let launch t ~exe ~cpu_index =
  let kern = Ppc.kernel t.ppc in
  let program = Kernel.new_program kern ~name:exe.exe_name in
  let space = Kernel.new_user_space kern ~name:exe.exe_name ~node:cpu_index in
  let vm = Vm.create ~ppc:t.ppc kern ~space ~node:cpu_index in
  let tag = t.next_tag in
  t.next_tag <- tag + 1;
  ignore
    (Vm.add_region vm ~base:text_base ~len:(exe.text_pages * 4096)
       ~backing:(Vm.Paged { pager_ep = Vm.Pager.ep_id t.pager; tag })
       ~prot:Vm.Ro);
  ignore
    (Vm.add_region vm ~base:stack_base ~len:(exe.stack_pages * 4096)
       ~backing:Vm.Demand_zero ~prot:Vm.Rw);
  t.spawned <- t.spawned + 1;
  let proc =
    Kernel.spawn kern ~cpu:cpu_index ~name:exe.exe_name
      ~kind:Kernel.Process.Client ~program ~space (fun self ->
        exe.body self vm)
  in
  (proc, vm)

let handler t : Ppc.Call_ctx.handler =
 fun ctx args ->
  let open Ppc in
  let cpu = ctx.Call_ctx.cpu in
  Machine.Cpu.instr ~code:ctx.Call_ctx.server_code cpu 80;
  Null_server.touch_stack ctx ~words:10;
  if Reg_args.op args <> op_spawn then
    Reg_args.set_rc args Reg_args.err_bad_request
  else if not (Naming.Auth.require t.auth ctx ~perm:Naming.Auth.Admin args)
  then ()
  else begin
    let key = (Reg_args.get args 0, Reg_args.get args 1) in
    let cpu_index = Reg_args.get args 2 in
    let kern = Ppc.kernel t.ppc in
    if cpu_index < 0 || cpu_index >= Kernel.n_cpus kern then
      Reg_args.set_rc args Reg_args.err_bad_request
    else
      match Hashtbl.find_opt t.exes key with
      | None -> Reg_args.set_rc args Reg_args.err_no_entry
      | Some exe ->
          (* Address-space construction is real kernel work. *)
          Machine.Cpu.instr cpu 400;
          Machine.Cpu.store_words cpu ctx.Call_ctx.server_data 16;
          let proc, _vm = launch t ~exe ~cpu_index in
          Reg_args.set args 0 (Kernel.Process.id proc);
          Reg_args.set_rc args Reg_args.ok
  end

let install ?(node = 0) ?pager ppc =
  let pager = match pager with Some p -> p | None -> Vm.Pager.install ppc in
  let kern = Ppc.kernel ppc in
  let t =
    {
      ppc;
      pager;
      auth =
        Naming.Auth.create ~data_addr:(Kernel.alloc kern ~bytes:512 ~node) ();
      ep = -1;
      exes = Hashtbl.create 16;
      next_tag = 1;
      spawned = 0;
    }
  in
  let server = Ppc.make_kernel_server ppc ~name:"program-manager" ~node () in
  let ep = Ppc.register_direct ppc ~server ~handler:(handler t) in
  t.ep <- Ppc.Entry_point.id ep;
  t

(* Client stub. *)
let spawn t ~client ~name ~cpu_index =
  let open Ppc in
  let h1, h2 = Naming.Name_server.hash_name name in
  let args = Reg_args.make () in
  Reg_args.set args 0 h1;
  Reg_args.set args 1 h2;
  Reg_args.set args 2 cpu_index;
  Reg_args.set_op args ~op:op_spawn ~flags:0;
  let rc =
    Ppc.call t.ppc ~client
      ~opflags:(Reg_args.op_flags ~op:op_spawn ~flags:0)
      ~ep_id:t.ep args
  in
  if rc = Reg_args.ok then Ok (Reg_args.get args 0) else Error rc
