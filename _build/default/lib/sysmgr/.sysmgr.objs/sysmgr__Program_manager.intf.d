lib/sysmgr/program_manager.mli: Kernel Naming Ppc Vm
