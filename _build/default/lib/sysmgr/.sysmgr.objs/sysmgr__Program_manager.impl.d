lib/sysmgr/program_manager.ml: Call_ctx Hashtbl Kernel Machine Naming Null_server Ppc Reg_args Vm
