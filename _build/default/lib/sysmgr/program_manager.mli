(** Process creation as a PPC service: authenticated spawn requests
    build a program, its address space and demand-paged VM regions, and
    start the process on the requested CPU. *)

val op_spawn : int

type executable = {
  exe_name : string;
  text_pages : int;
  stack_pages : int;
  body : Kernel.Process.t -> Vm.t -> unit;
}

type t

val install : ?node:int -> ?pager:Vm.Pager.t -> Ppc.t -> t
(** Installs its own pager unless one is supplied. *)

val ep_id : t -> int
val auth : t -> Naming.Auth.t
(** Grant [Admin] to programs allowed to spawn. *)

val spawned : t -> int

val register_exe : t -> executable -> unit
(** Stage an executable image (management path). *)

val launch : t -> exe:executable -> cpu_index:int -> Kernel.Process.t * Vm.t
(** Direct management-path launch (what the SPAWN op invokes). *)

val spawn :
  t -> client:Kernel.Process.t -> name:string -> cpu_index:int -> (int, int) result
(** Client stub: returns the new process id. *)
