(** NUMA topology: a ring of stations with per-region memory homes. *)

type t

val create : ?default_node:int -> Cost_params.t -> stations:int -> t

val stations : t -> int

val register : t -> base:int -> bytes:int -> node:int -> unit
(** Declare that the physical region [\[base, base+bytes)] lives on
    [node]. Later registrations shadow earlier ones. *)

val home_of : t -> int -> int
(** Home node of an address ([default_node] when unregistered). *)

val distance : t -> int -> int -> int
(** Minimal ring hops between two stations. *)

val extra_cycles : t -> from:int -> addr:int -> int
(** NUMA surcharge for a node-[from] access to [addr]; 0 when local. *)
