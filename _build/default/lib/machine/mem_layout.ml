(* Simulated physical address allocator.

   Hands out non-overlapping address ranges so the cache and TLB models
   see realistic footprints.  By default regions are packed at cache-line
   granularity — mirroring how the real kernel lays out its hot
   per-processor structures to minimise cache conflicts and TLB entries
   ("code and data is organized to minimize the number of cache misses
   and TLB faults").  Page alignment is available for regions that are
   architecturally pages (stack frames, user-space pages). *)

type t = {
  numa : Numa.t;
  mutable next : int;
  page_bytes : int;
  line_bytes : int;
}

let create ?(base = 0x1000_0000) params numa =
  {
    numa;
    next = base;
    page_bytes = params.Cost_params.page_bytes;
    line_bytes = params.Cost_params.line_bytes;
  }

let align_up v a = (v + a - 1) / a * a

let alloc ?(align = `Line) t ~bytes ~node =
  if bytes <= 0 then invalid_arg "Mem_layout.alloc: empty allocation";
  let alignment =
    match align with `Line -> t.line_bytes | `Page -> t.page_bytes
  in
  t.next <- align_up t.next alignment;
  let base = t.next in
  t.next <- t.next + align_up bytes t.line_bytes;
  Numa.register t.numa ~base ~bytes ~node;
  base

let alloc_page t ~node = alloc ~align:`Page t ~bytes:t.page_bytes ~node

let page_bytes t = t.page_bytes
