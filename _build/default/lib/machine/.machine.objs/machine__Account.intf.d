lib/machine/account.pp.mli: Cost_params Format
