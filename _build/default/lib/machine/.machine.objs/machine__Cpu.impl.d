lib/machine/cpu.pp.ml: Account Cache Cost_params Fun Numa Tlb
