lib/machine/cost_params.pp.mli: Sim
