lib/machine/cache.pp.mli: Cost_params
