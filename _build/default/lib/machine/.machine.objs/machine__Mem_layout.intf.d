lib/machine/mem_layout.pp.mli: Cost_params Numa
