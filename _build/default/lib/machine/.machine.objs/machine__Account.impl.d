lib/machine/account.pp.ml: Array Cost_params Fmt List Ppx_deriving_runtime
