lib/machine/cpu.pp.mli: Account Cache Cost_params Numa Tlb
