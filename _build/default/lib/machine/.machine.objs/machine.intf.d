lib/machine/machine.pp.mli: Account Cache Cost_params Cpu Mem_layout Numa Sim Tlb
