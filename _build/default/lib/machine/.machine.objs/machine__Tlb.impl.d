lib/machine/tlb.pp.ml: Cost_params Hashtbl Queue
