lib/machine/machine.pp.ml: Account Array Cache Cost_params Cpu Mem_layout Numa Tlb
