lib/machine/numa.pp.ml: Cost_params Int
