lib/machine/cost_params.pp.ml: Sim
