lib/machine/cache.pp.ml: Array Cost_params Option
