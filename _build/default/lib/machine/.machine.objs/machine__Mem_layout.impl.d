lib/machine/mem_layout.pp.ml: Cost_params Numa
