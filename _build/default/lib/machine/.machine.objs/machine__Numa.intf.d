lib/machine/numa.pp.mli: Cost_params
