lib/machine/tlb.pp.mli: Cost_params
