(** Simulated physical address allocator with NUMA homing.

    Regions are packed at cache-line granularity by default (how the real
    kernel lays out hot structures); request [`Page] alignment for
    regions that are architecturally pages. *)

type t

val create : ?base:int -> Cost_params.t -> Numa.t -> t

val alloc : ?align:[ `Line | `Page ] -> t -> bytes:int -> node:int -> int
(** Allocate a region homed on [node]; returns its base address. *)

val alloc_page : t -> node:int -> int
(** One page-aligned page. *)

val page_bytes : t -> int
