(** Machine cost parameters (defaults model the Hector prototype). *)

type t = {
  mhz : float;
  cache_bytes : int;
  line_bytes : int;
  cache_hit_cycles : int;
  line_load_cycles : int;
  icache_fill_cycles : int;
  writeback_cycles : int;
  store_clean_cycles : int;
  uncached_cycles : int;
  page_bytes : int;
  tlb_entries : int;
  tlb_miss_cycles : int;
  trap_cycles : int;
  rti_cycles : int;
  pipeline_refill_cycles : int;
  branch_stall_per_16_instr : int;
  timer_read_cycles : int;
  switch_flushes_cache : bool;
  space_switch_extra_cycles : int;
  numa_base_cycles : int;
  numa_per_hop_cycles : int;
}

val hector : t
(** The 16.67 MHz Motorola 88100/88200 configuration from the paper. *)

val cycle_ns : t -> float
(** Nanoseconds per cycle. *)

val cycles_to_time : t -> int -> Sim.Time.t
val cycles_to_us : t -> int -> float

val lines_of_bytes : t -> int -> int
(** Number of cache lines spanned by a byte count. *)
