(* NUMA topology model.

   Hector is a hierarchy of stations connected by rings; for the purposes
   of this reproduction a single ring of [stations] nodes suffices: the
   distance between two nodes is the minimal number of ring hops, and a
   remote access pays [numa_base_cycles + hops * numa_per_hop_cycles] on
   top of the memory access itself.

   Physical memory is carved into homes by explicit region registration:
   the kernel registers each allocated region with its home node, and the
   CPU model consults [home_of] on every uncached access (cached accesses
   pay the NUMA penalty only on the line fill). *)

type region = { base : int; bytes : int; node : int }

type t = {
  params : Cost_params.t;
  stations : int;
  mutable regions : region list;
  default_node : int;
}

let create ?(default_node = 0) params ~stations =
  if stations <= 0 then invalid_arg "Numa.create: stations must be positive";
  { params; stations; regions = []; default_node }

let stations t = t.stations

let register t ~base ~bytes ~node =
  if node < 0 || node >= t.stations then invalid_arg "Numa.register: bad node";
  if bytes <= 0 then invalid_arg "Numa.register: empty region";
  t.regions <- { base; bytes; node } :: t.regions

let home_of t addr =
  let rec find = function
    | [] -> t.default_node
    | r :: rest ->
        if addr >= r.base && addr < r.base + r.bytes then r.node else find rest
  in
  find t.regions

let distance t a b =
  let d = abs (a - b) in
  Int.min d (t.stations - d)

let extra_cycles t ~from ~addr =
  let home = home_of t addr in
  if home = from then 0
  else
    t.params.Cost_params.numa_base_cycles
    + (distance t from home * t.params.Cost_params.numa_per_hop_cycles)
