(* Dual-context TLB model (M88200 PATC).

   The M88200 tags each entry with a single user/supervisor bit, so the
   supervisor context survives a user address-space switch while the user
   context must be flushed.  This asymmetry is exactly why the paper's
   user-to-kernel PPC is ~10 us cheaper than user-to-user: calls into the
   supervisor space need no flush and take almost no TLB misses.

   Each context is a fixed-capacity FIFO of page numbers (hash set plus
   insertion queue, so lookups are O(1) — the simulator's hottest path).
   A lookup miss costs [tlb_miss_cycles] (the hardware table walk) and
   inserts the entry, evicting the oldest if full. *)

type space = User | Supervisor

type context = {
  capacity : int;
  present : (int, unit) Hashtbl.t;
  fifo : int Queue.t;
  mutable generation : int;  (** bumped on flush to invalidate the queue *)
}

type t = {
  params : Cost_params.t;
  user : context;
  supervisor : context;
  mutable misses : int;
  mutable lookups : int;
  mutable user_flushes : int;
}

let make_context capacity =
  {
    capacity;
    present = Hashtbl.create 64;
    fifo = Queue.create ();
    generation = 0;
  }

let create params =
  let cap = params.Cost_params.tlb_entries in
  {
    params;
    user = make_context cap;
    supervisor = make_context cap;
    misses = 0;
    lookups = 0;
    user_flushes = 0;
  }

let context t = function User -> t.user | Supervisor -> t.supervisor

let page_of t addr = addr / t.params.Cost_params.page_bytes

let rec evict_one ctx =
  match Queue.take_opt ctx.fifo with
  | None -> ()
  | Some page ->
      (* Entries invalidated out of band may linger in the FIFO; skip
         them. *)
      if Hashtbl.mem ctx.present page then Hashtbl.remove ctx.present page
      else evict_one ctx

let insert_page ctx page =
  if not (Hashtbl.mem ctx.present page) then begin
    if Hashtbl.length ctx.present >= ctx.capacity then evict_one ctx;
    Hashtbl.replace ctx.present page ();
    Queue.push page ctx.fifo
  end

let lookup t space addr =
  let ctx = context t space in
  let page = page_of t addr in
  t.lookups <- t.lookups + 1;
  if Hashtbl.mem ctx.present page then 0
  else begin
    t.misses <- t.misses + 1;
    insert_page ctx page;
    t.params.Cost_params.tlb_miss_cycles
  end

let preload t space addr = insert_page (context t space) (page_of t addr)

let contains t space addr =
  Hashtbl.mem (context t space).present (page_of t addr)

let invalidate t space addr =
  let ctx = context t space in
  Hashtbl.remove ctx.present (page_of t addr)

let flush_user t =
  Hashtbl.reset t.user.present;
  Queue.clear t.user.fifo;
  t.user.generation <- t.user.generation + 1;
  t.user_flushes <- t.user_flushes + 1

let misses t = t.misses
let lookups t = t.lookups
let user_flushes t = t.user_flushes

let reset_counters t =
  t.misses <- 0;
  t.lookups <- 0;
  t.user_flushes <- 0
