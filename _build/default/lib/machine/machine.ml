(* A whole simulated multiprocessor: one NUMA fabric, one physical address
   allocator, and one {!Cpu} (with private caches and TLB — Hector has no
   hardware coherence) per station.

   This module is the library interface: it re-exports the component
   models so users write [Machine.Cpu], [Machine.Cache], ... *)

module Cost_params = Cost_params
module Account = Account
module Cache = Cache
module Tlb = Tlb
module Numa = Numa
module Cpu = Cpu
module Mem_layout = Mem_layout

type t = {
  params : Cost_params.t;
  numa : Numa.t;
  layout : Mem_layout.t;
  cpus : Cpu.t array;
}

let create ?(params = Cost_params.hector) ~cpus () =
  if cpus <= 0 then invalid_arg "Machine.create: need at least one CPU";
  let numa = Numa.create params ~stations:cpus in
  let layout = Mem_layout.create params numa in
  let cpu_array = Array.init cpus (fun node -> Cpu.create ~node params numa) in
  { params; numa; layout; cpus = cpu_array }

let params t = t.params
let numa t = t.numa
let layout t = t.layout
let n_cpus t = Array.length t.cpus

let cpu t i =
  if i < 0 || i >= Array.length t.cpus then
    invalid_arg "Machine.cpu: index out of range";
  t.cpus.(i)

let cpus t = Array.to_list t.cpus

let alloc ?align t ~bytes ~node = Mem_layout.alloc ?align t.layout ~bytes ~node
let alloc_page t ~node = Mem_layout.alloc_page t.layout ~node

let cycles_to_time t cycles = Cost_params.cycles_to_time t.params cycles
let cycles_to_us t cycles = Cost_params.cycles_to_us t.params cycles
