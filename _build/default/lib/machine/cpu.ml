(* Simulated processor.

   The PPC call path (and everything else that wants credible costs) is
   expressed as a stream of micro-operations — instruction issue, cached
   loads/stores, uncached accesses, traps, TLB maintenance — executed
   against this model.  Each micro-op charges cycles to the CPU's current
   accounting category, with three exceptions that match the paper's
   Figure 2 methodology:

   - TLB table walks are always charged to [Tlb_miss];
   - trap entry/exit is always charged to [Trap_overhead];
   - pipeline-refill and branch stalls are charged to [Unaccounted].

   Cache misses, by contrast, are charged to the *current* category: that
   is how "cache flushed" inflates "user save/restore" and
   "CD manipulation" in the paper's breakdown. *)

type t = {
  params : Cost_params.t;
  node : int;
  numa : Numa.t;
  dcache : Cache.t;
  icache : Cache.t;
  tlb : Tlb.t;
  account : Account.t;
  mutable category : Account.category;
  mutable space : Tlb.space;
  mutable cycles : int;
  mutable synced_cycles : int;
}

let create ?(node = 0) params numa =
  {
    params;
    node;
    numa;
    dcache = Cache.create params;
    icache = Cache.create params;
    tlb = Tlb.create params;
    account = Account.create ();
    category = Account.Ppc_kernel;
    space = Tlb.User;
    cycles = 0;
    synced_cycles = 0;
  }

let params t = t.params
let node t = t.node
let dcache t = t.dcache
let icache t = t.icache
let tlb t = t.tlb
let account t = t.account
let cycles t = t.cycles
let space t = t.space

let set_space t space = t.space <- space

let category t = t.category
let set_category t cat = t.category <- cat

let with_category t cat f =
  let saved = t.category in
  t.category <- cat;
  Fun.protect ~finally:(fun () -> t.category <- saved) f

let charge t cat n =
  Account.charge t.account cat n;
  t.cycles <- t.cycles + n

let charge_current t n = charge t t.category n

(* Instruction issue.  [code] locates the instructions so the I-cache and
   instruction TLB behave realistically; instructions are 4 bytes. *)
let instr ?code t n =
  if n < 0 then invalid_arg "Cpu.instr: negative count";
  charge_current t n;
  (match code with
  | None -> ()
  | Some base ->
      let line = t.params.Cost_params.line_bytes in
      let bytes = n * 4 in
      let first = base / line and last = (base + bytes - 1) / line in
      for l = first to last do
        let addr = l * line in
        let tlb_cost = Tlb.lookup t.tlb t.space addr in
        if tlb_cost > 0 then charge t Account.Tlb_miss tlb_cost;
        let resident = Cache.contains t.icache addr in
        ignore (Cache.access t.icache Cache.Load addr);
        (* Instruction lines are never dirty, and sequential prefetch
           hides most of the fill latency: a miss costs
           [icache_fill_cycles], not a full line load. *)
        if not resident then begin
          charge_current t t.params.Cost_params.icache_fill_cycles;
          charge_current t (Numa.extra_cycles t.numa ~from:t.node ~addr)
        end
      done);
  charge t Account.Unaccounted
    (n * t.params.Cost_params.branch_stall_per_16_instr / 16)

let data_access t kind addr =
  let tlb_cost = Tlb.lookup t.tlb t.space addr in
  if tlb_cost > 0 then charge t Account.Tlb_miss tlb_cost;
  let resident = Cache.contains t.dcache addr in
  let c = Cache.access t.dcache kind addr in
  charge_current t c;
  if not resident then
    charge_current t (Numa.extra_cycles t.numa ~from:t.node ~addr)

let load t addr = data_access t Cache.Load addr
let store t addr = data_access t Cache.Store addr

(* Access through an explicit mapping: the TLB translates the virtual
   address while the (physically indexed) cache and NUMA fabric see the
   physical one.  Used for recycled worker stacks, where distinct virtual
   mappings share warm physical pages. *)
let mapped_access t kind ~vaddr ~paddr =
  let tlb_cost = Tlb.lookup t.tlb t.space vaddr in
  if tlb_cost > 0 then charge t Account.Tlb_miss tlb_cost;
  let resident = Cache.contains t.dcache paddr in
  let c = Cache.access t.dcache kind paddr in
  charge_current t c;
  if not resident then
    charge_current t (Numa.extra_cycles t.numa ~from:t.node ~addr:paddr)

let load_mapped t ~vaddr ~paddr = mapped_access t Cache.Load ~vaddr ~paddr
let store_mapped t ~vaddr ~paddr = mapped_access t Cache.Store ~vaddr ~paddr

let store_words_mapped t ~vaddr ~paddr n =
  for i = 0 to n - 1 do
    store_mapped t ~vaddr:(vaddr + (4 * i)) ~paddr:(paddr + (4 * i))
  done

let load_words_mapped t ~vaddr ~paddr n =
  for i = 0 to n - 1 do
    load_mapped t ~vaddr:(vaddr + (4 * i)) ~paddr:(paddr + (4 * i))
  done

let load_words t addr n =
  for i = 0 to n - 1 do
    load t (addr + (4 * i))
  done

let store_words t addr n =
  for i = 0 to n - 1 do
    store t (addr + (4 * i))
  done

(* Uncached accesses: how shared mutable data must be reached on the
   coherence-free Hector.  Pays the flat uncached cost plus the NUMA
   surcharge every time. *)
let uncached_access t addr =
  charge_current t
    (t.params.Cost_params.uncached_cycles
    + Numa.extra_cycles t.numa ~from:t.node ~addr)

let uncached_load = uncached_access
let uncached_store = uncached_access

let trap t =
  charge t Account.Trap_overhead t.params.Cost_params.trap_cycles;
  charge t Account.Unaccounted t.params.Cost_params.pipeline_refill_cycles;
  t.space <- Tlb.Supervisor

let rti t ~to_space =
  charge t Account.Trap_overhead t.params.Cost_params.rti_cycles;
  charge t Account.Unaccounted t.params.Cost_params.pipeline_refill_cycles;
  t.space <- to_space

let flush_user_tlb t =
  (* The flush instruction itself: a couple of CMMU register writes. *)
  charge_current t 4;
  Tlb.flush_user t.tlb

let read_timer t =
  charge_current t t.params.Cost_params.timer_read_cycles;
  Cost_params.cycles_to_us t.params t.cycles

(* Simulation-time integration: cycles accumulated since the last sync,
   so a kernel context can sleep the simulated clock forward. *)
let unsynced_cycles t = t.cycles - t.synced_cycles

let take_unsynced t =
  let d = unsynced_cycles t in
  t.synced_cycles <- t.cycles;
  d

let elapsed_us t = Cost_params.cycles_to_us t.params t.cycles
