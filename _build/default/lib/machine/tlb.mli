(** Dual-context (user/supervisor) TLB model.

    Switching user address spaces flushes only the user context; the
    supervisor context persists — the source of the paper's user-to-kernel
    vs user-to-user cost gap. *)

type space = User | Supervisor

type t

val create : Cost_params.t -> t

val lookup : t -> space -> int -> int
(** [lookup t space addr] returns the cycle cost of translating [addr]:
    0 on a hit, [tlb_miss_cycles] on a miss (the entry is inserted,
    FIFO-evicting the oldest if the context is full). *)

val preload : t -> space -> int -> unit
(** Insert a translation without charging a miss. *)

val contains : t -> space -> int -> bool
val invalidate : t -> space -> int -> unit
(** Drop the translation for one page (e.g. after an unmap). *)

val flush_user : t -> unit
(** Invalidate the whole user context (user address-space switch). *)

val misses : t -> int
val lookups : t -> int
val user_flushes : t -> int
val reset_counters : t -> unit
