(** Simulated processor: executes micro-operations against cache, TLB and
    NUMA state, charging cycles to Figure-2 accounting categories. *)

type t

val create : ?node:int -> Cost_params.t -> Numa.t -> t

val params : t -> Cost_params.t
val node : t -> int
val dcache : t -> Cache.t
val icache : t -> Cache.t
val tlb : t -> Tlb.t
val account : t -> Account.t
val cycles : t -> int
(** Total cycles executed since creation. *)

val space : t -> Tlb.space
val set_space : t -> Tlb.space -> unit

val category : t -> Account.category
val set_category : t -> Account.category -> unit

val with_category : t -> Account.category -> (unit -> 'a) -> 'a
(** Run [f] with the accounting category temporarily switched. *)

val charge : t -> Account.category -> int -> unit
(** Charge raw cycles to an explicit category. *)

val charge_current : t -> int -> unit

val instr : ?code:int -> t -> int -> unit
(** [instr ~code t n] issues [n] instructions located at [code] (4 bytes
    each): 1 cycle per instruction plus I-cache/I-TLB behaviour and
    amortised branch stalls (the latter charged to [Unaccounted]). *)

val load : t -> int -> unit
val store : t -> int -> unit
(** One cached data reference: D-TLB lookup (misses to [Tlb_miss]) and
    D-cache access (hit/miss/writeback to the current category, plus the
    NUMA surcharge on fills). *)

val load_words : t -> int -> int -> unit
(** [load_words t addr n]: [n] consecutive 4-byte loads. *)

val store_words : t -> int -> int -> unit

val load_mapped : t -> vaddr:int -> paddr:int -> unit
val store_mapped : t -> vaddr:int -> paddr:int -> unit
(** Access through an explicit mapping: TLB sees [vaddr], the physically
    indexed cache sees [paddr] (recycled worker stacks). *)

val load_words_mapped : t -> vaddr:int -> paddr:int -> int -> unit
val store_words_mapped : t -> vaddr:int -> paddr:int -> int -> unit

val uncached_load : t -> int -> unit
val uncached_store : t -> int -> unit
(** Uncached access: flat cost + NUMA surcharge — how shared mutable data
    is reached on a machine without hardware cache coherence. *)

val trap : t -> unit
(** Enter supervisor mode; cost to [Trap_overhead], pipeline refill to
    [Unaccounted]. *)

val rti : t -> to_space:Tlb.space -> unit
(** Return from trap into [to_space]. *)

val flush_user_tlb : t -> unit
(** User-context TLB flush (user address-space switch). *)

val read_timer : t -> float
(** Read the microsecond timer (charges its 10-cycle overhead); returns
    elapsed microseconds on this CPU. *)

val unsynced_cycles : t -> int
val take_unsynced : t -> int
(** Cycles accumulated since the last call, for advancing the simulated
    clock. *)

val elapsed_us : t -> float
