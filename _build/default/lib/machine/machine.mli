(** A simulated shared-memory multiprocessor: N CPUs with private caches
    and TLBs over one NUMA fabric (the Hector shape). *)

module Cost_params = Cost_params
module Account = Account
module Cache = Cache
module Tlb = Tlb
module Numa = Numa
module Cpu = Cpu
module Mem_layout = Mem_layout

type t

val create : ?params:Cost_params.t -> cpus:int -> unit -> t

val params : t -> Cost_params.t
val numa : t -> Numa.t
val layout : t -> Mem_layout.t
val n_cpus : t -> int
val cpu : t -> int -> Cpu.t
val cpus : t -> Cpu.t list

val alloc : ?align:[ `Line | `Page ] -> t -> bytes:int -> node:int -> int
(** Allocate simulated physical memory homed on [node]. *)

val alloc_page : t -> node:int -> int

val cycles_to_time : t -> int -> Sim.Time.t
val cycles_to_us : t -> int -> float
