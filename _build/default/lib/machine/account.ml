(* Per-category cycle accounting.

   The categories are exactly those of the paper's Figure 2 so that the
   benchmark harness can print the same breakdown.  Every micro-operation
   executed by a {!Cpu} is charged to the CPU's current category, except
   TLB-miss table walks (always [Tlb_miss]), trap entry/exit (always
   [Trap_overhead]) and pipeline-refill stalls (always [Unaccounted]). *)

type category =
  | Tlb_setup  (** modifying virtual-to-physical mappings *)
  | Server_time  (** time in the worker executing server code *)
  | Kernel_save_restore  (** minimum processor state for a process switch *)
  | User_save_restore  (** user-level registers around the call *)
  | Cd_manipulation  (** call-descriptor free list and stack management *)
  | Ppc_kernel  (** remaining PPC call-model operations *)
  | Tlb_miss  (** hardware TLB refills *)
  | Trap_overhead  (** traps and returns-from-interrupt *)
  | Unaccounted  (** pipeline stalls, cache interference *)
[@@deriving show { with_path = false }, eq]

let all =
  [
    Tlb_setup;
    Server_time;
    Kernel_save_restore;
    User_save_restore;
    Cd_manipulation;
    Ppc_kernel;
    Tlb_miss;
    Trap_overhead;
    Unaccounted;
  ]

let index = function
  | Tlb_setup -> 0
  | Server_time -> 1
  | Kernel_save_restore -> 2
  | User_save_restore -> 3
  | Cd_manipulation -> 4
  | Ppc_kernel -> 5
  | Tlb_miss -> 6
  | Trap_overhead -> 7
  | Unaccounted -> 8

let name = function
  | Tlb_setup -> "TLB setup"
  | Server_time -> "server time"
  | Kernel_save_restore -> "kernel save/restore"
  | User_save_restore -> "user save/restore"
  | Cd_manipulation -> "CD manipulation"
  | Ppc_kernel -> "PPC kernel"
  | Tlb_miss -> "TLB miss"
  | Trap_overhead -> "trap overhead"
  | Unaccounted -> "unaccounted"

type t = { cycles : int array }

let create () = { cycles = Array.make (List.length all) 0 }

let charge t cat n =
  if n < 0 then invalid_arg "Account.charge: negative cycles";
  t.cycles.(index cat) <- t.cycles.(index cat) + n

let get t cat = t.cycles.(index cat)
let total t = Array.fold_left ( + ) 0 t.cycles
let reset t = Array.fill t.cycles 0 (Array.length t.cycles) 0

let snapshot t = Array.copy t.cycles

let diff ~before ~after =
  let d = create () in
  Array.iteri (fun i b -> d.cycles.(i) <- after.(i) - b) before;
  d

let to_list t = List.map (fun cat -> (cat, get t cat)) all

let pp params ppf t =
  List.iter
    (fun (cat, cyc) ->
      if cyc > 0 then
        Fmt.pf ppf "%-20s %6d cyc  %6.2f us@." (name cat) cyc
          (Cost_params.cycles_to_us params cyc))
    (to_list t);
  Fmt.pf ppf "%-20s %6d cyc  %6.2f us" "TOTAL" (total t)
    (Cost_params.cycles_to_us params (total t))
