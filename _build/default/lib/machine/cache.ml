(* Set-associative write-back cache with LRU replacement (the M88200
   CMMU: 16 KB, 16-byte lines, 4-way — 256 sets).

   The model tracks tag/valid/dirty per way and reports the cycle cost of
   each access:

   - hit: [cache_hit_cycles];
   - load miss: line fill, plus a writeback if the victim was dirty;
   - first store to a clean (or freshly filled) line: an extra
     [store_clean_cycles], modelling the copy-back protocol's ownership
     write;
   - stores mark the line dirty.

   Flushing is free at flush time by default (the paper's flushed-cache
   experiments flush *before* the timed region, so the cost shows up as
   subsequent misses, not as flush time). *)

type line = {
  mutable tag : int;
  mutable valid : bool;
  mutable dirty : bool;
  mutable lru : int;  (** higher = more recently used *)
}

type t = {
  params : Cost_params.t;
  sets : line array array;  (** [set][way] *)
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable writebacks : int;
}

let ways = 4

let create params =
  let lines = params.Cost_params.cache_bytes / params.Cost_params.line_bytes in
  let n_sets = lines / ways in
  {
    params;
    sets =
      Array.init n_sets (fun _ ->
          Array.init ways (fun _ ->
              { tag = 0; valid = false; dirty = false; lru = 0 }));
    clock = 0;
    hits = 0;
    misses = 0;
    writebacks = 0;
  }

let n_lines t = Array.length t.sets * ways
let n_sets t = Array.length t.sets

let set_index t addr =
  addr / t.params.Cost_params.line_bytes mod Array.length t.sets

let tag_of t addr =
  addr / (t.params.Cost_params.line_bytes * Array.length t.sets)

type kind = Load | Store

let find_way set tag =
  let rec go i =
    if i >= ways then None
    else if set.(i).valid && set.(i).tag = tag then Some set.(i)
    else go (i + 1)
  in
  go 0

let victim_way set =
  let v = ref set.(0) in
  for i = 1 to ways - 1 do
    let candidate = set.(i) in
    if not candidate.valid then (if !v.valid then v := candidate)
    else if !v.valid && candidate.lru < !v.lru then v := candidate
  done;
  !v

let access t kind addr =
  let p = t.params in
  let set = t.sets.(set_index t addr) in
  let tag = tag_of t addr in
  t.clock <- t.clock + 1;
  match find_way set tag with
  | Some line -> (
      t.hits <- t.hits + 1;
      line.lru <- t.clock;
      match kind with
      | Load -> p.Cost_params.cache_hit_cycles
      | Store ->
          if line.dirty then p.Cost_params.cache_hit_cycles
          else begin
            line.dirty <- true;
            p.Cost_params.cache_hit_cycles + p.Cost_params.store_clean_cycles
          end)
  | None -> (
      t.misses <- t.misses + 1;
      let line = victim_way set in
      let writeback =
        if line.valid && line.dirty then begin
          t.writebacks <- t.writebacks + 1;
          p.Cost_params.writeback_cycles
        end
        else 0
      in
      line.valid <- true;
      line.tag <- tag;
      line.lru <- t.clock;
      let fill = p.Cost_params.line_load_cycles in
      match kind with
      | Load ->
          line.dirty <- false;
          writeback + fill
      | Store ->
          line.dirty <- true;
          writeback + fill + p.Cost_params.store_clean_cycles)

let contains t addr =
  Option.is_some (find_way t.sets.(set_index t addr) (tag_of t addr))

let flush t =
  Array.iter
    (fun set ->
      Array.iter
        (fun line ->
          line.valid <- false;
          line.dirty <- false)
        set)
    t.sets

let prime t ~addr ~bytes =
  (* Load every line of a region without charging anyone. *)
  let lb = t.params.Cost_params.line_bytes in
  let first = addr / lb and last = (addr + bytes - 1) / lb in
  for l = first to last do
    ignore (access t Load (l * lb))
  done;
  t.hits <- 0;
  t.misses <- 0;
  t.writebacks <- 0

let hits t = t.hits
let misses t = t.misses
let writebacks t = t.writebacks

let reset_counters t =
  t.hits <- 0;
  t.misses <- 0;
  t.writebacks <- 0
