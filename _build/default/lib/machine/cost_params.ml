(* Machine cost parameters.

   Defaults reproduce the Hector prototype as described in the paper
   (Section 3): Motorola 88100/88200 at 16.67 MHz, 16 KB data and
   instruction caches with 16-byte lines, no hardware cache coherence,
   27-cycle TLB miss, ~1.7 us trap-and-return, 10-cycle uncached local
   access, 20-cycle cache line load/writeback plus 10 extra cycles for the
   first store to a clean line. *)

type t = {
  mhz : float;  (** processor clock, MHz *)
  cache_bytes : int;  (** data/instruction cache size *)
  line_bytes : int;  (** cache line size *)
  cache_hit_cycles : int;  (** cost of a cache hit (pipelined) *)
  line_load_cycles : int;  (** cost of filling a line from local memory *)
  icache_fill_cycles : int;
      (** instruction-line fill as seen by the pipeline: sequential
          prefetch overlaps most of the memory latency *)
  writeback_cycles : int;  (** cost of writing back a dirty line *)
  store_clean_cycles : int;  (** extra cycles, first store to a clean line *)
  uncached_cycles : int;  (** uncached local memory access *)
  page_bytes : int;  (** VM page size *)
  tlb_entries : int;  (** entries per TLB context *)
  tlb_miss_cycles : int;  (** hardware table-walk cost *)
  trap_cycles : int;  (** user->supervisor trap entry *)
  rti_cycles : int;  (** return from trap *)
  pipeline_refill_cycles : int;  (** stall after a trap/switch (unaccounted) *)
  branch_stall_per_16_instr : int;  (** average stall cycles per 16 instrs *)
  timer_read_cycles : int;  (** microsecond timer access overhead *)
  switch_flushes_cache : bool;
      (** virtually-addressed caches (VAX-era) must be flushed on an
          address-space switch; the physically-tagged M88200 need not *)
  space_switch_extra_cycles : int;
      (** fixed extra cost of loading a VM context (e.g. the CVAX's
          microcoded LDPCTX); 0 on the M88200's root-pointer update *)
  numa_base_cycles : int;  (** extra cycles for any remote access *)
  numa_per_hop_cycles : int;  (** additional cycles per ring hop *)
}

let hector =
  {
    mhz = 16.67;
    cache_bytes = 16 * 1024;
    line_bytes = 16;
    cache_hit_cycles = 1;
    line_load_cycles = 20;
    icache_fill_cycles = 5;
    writeback_cycles = 20;
    store_clean_cycles = 10;
    uncached_cycles = 10;
    page_bytes = 4096;
    tlb_entries = 56;
    (* The M88200 PATC holds 56 entries. *)
    tlb_miss_cycles = 27;
    trap_cycles = 14;
    rti_cycles = 14;
    (* trap + rti = 28 cycles ~ 1.7 us at 60 ns/cycle, as measured in the
       paper. *)
    pipeline_refill_cycles = 4;
    branch_stall_per_16_instr = 1;
    timer_read_cycles = 10;
    switch_flushes_cache = false;
    space_switch_extra_cycles = 0;
    numa_base_cycles = 4;
    numa_per_hop_cycles = 3;
  }

let cycle_ns t = 1000.0 /. t.mhz

let cycles_to_time t cycles =
  Sim.Time.of_us_float (float_of_int cycles *. cycle_ns t /. 1000.0)

let cycles_to_us t cycles = float_of_int cycles *. cycle_ns t /. 1000.0

let lines_of_bytes t bytes = (bytes + t.line_bytes - 1) / t.line_bytes
