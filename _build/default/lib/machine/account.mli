(** Per-category cycle accounting matching the paper's Figure 2. *)

type category =
  | Tlb_setup
  | Server_time
  | Kernel_save_restore
  | User_save_restore
  | Cd_manipulation
  | Ppc_kernel
  | Tlb_miss
  | Trap_overhead
  | Unaccounted

val all : category list
(** In the paper's legend order. *)

val show_category : category -> string
val pp_category : Format.formatter -> category -> unit
val equal_category : category -> category -> bool

val name : category -> string

type t

val create : unit -> t
val charge : t -> category -> int -> unit
val get : t -> category -> int
val total : t -> int
val reset : t -> unit

val snapshot : t -> int array
(** Raw cycle counts, for differencing around a measured region. *)

val diff : before:int array -> after:int array -> t
(** Fresh account holding [after - before] per category. *)

val to_list : t -> (category * int) list
val pp : Cost_params.t -> Format.formatter -> t -> unit
