(** Set-associative (4-way, LRU) write-back cache model (M88200 CMMU
    shape: 16 KB, 16-byte lines, 256 sets). *)

type t

type kind = Load | Store

val create : Cost_params.t -> t

val ways : int
val n_lines : t -> int
val n_sets : t -> int

val access : t -> kind -> int -> int
(** [access t kind addr] simulates one reference and returns its cycle
    cost (hit cost, line fill, victim writeback, copy-back ownership
    write as applicable). *)

val contains : t -> int -> bool
(** Whether the line holding [addr] is currently resident. *)

val flush : t -> unit
(** Invalidate every line.  Free at flush time: the paper's flushed-cache
    experiments pay the cost as later misses inside the timed region. *)

val prime : t -> addr:int -> bytes:int -> unit
(** Fault a region in without charging cycles; resets the counters. *)

val hits : t -> int
val misses : t -> int
val writebacks : t -> int
val reset_counters : t -> unit
