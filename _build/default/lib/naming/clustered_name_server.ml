(* A clustered name service: Hurricane's hierarchical clustering ([16])
   applied to naming.

   One name-server replica per cluster, its registry homed on the
   cluster's first CPU.  Lookups (the hot path) go to the caller's own
   cluster replica — local memory, local workers.  Registrations (rare)
   are broadcast to every replica by the management stub, the classic
   replicate-reads / pay-on-writes trade.

   Ablation A9 measures the lookup-side win against the single
   machine-wide server whose registry every distant CPU reads across the
   ring. *)

type t = {
  cluster : Kernel.Cluster.t;
  replicas : Name_server.t array;  (** indexed by cluster *)
}

let cluster t = t.cluster
let n_replicas t = Array.length t.replicas
let replica t ~cluster = t.replicas.(cluster)

let install ppc ~cluster_size =
  let kern = Ppc.kernel ppc in
  let cluster =
    Kernel.Cluster.create ~cpus:(Kernel.n_cpus kern) ~cluster_size
  in
  let replicas =
    Array.init (Kernel.Cluster.n_clusters cluster) (fun c ->
        Name_server.install_at ppc
          ~node:(Kernel.Cluster.home_cpu cluster ~cluster:c)
          ~well_known:false
          ~prime_cpus:(Kernel.Cluster.members cluster ~cluster:c))
  in
  { cluster; replicas }

let local_replica t ~client =
  t.replicas.(Kernel.Cluster.cluster_of t.cluster
                ~cpu:(Kernel.Process.cpu_index client))

(* Hot path: the caller's own cluster replica answers. *)
let lookup t ~client ~name =
  Name_server.lookup (local_replica t ~client) ~client ~name

(* Management path: broadcast the binding to every replica.  All-or-
   nothing is not attempted (real Hurricane updates cluster-local state
   lazily); the first failure is reported and later replicas still
   receive the binding. *)
let register t ~client ~name ~ep_id =
  Array.fold_left
    (fun acc replica ->
      let rc = Name_server.register replica ~client ~name ~ep_id in
      if acc = Ppc.Reg_args.ok then rc else acc)
    Ppc.Reg_args.ok t.replicas

let unregister t ~client ~name =
  Array.fold_left
    (fun acc replica ->
      let rc = Name_server.unregister replica ~client ~name in
      if acc = Ppc.Reg_args.ok then rc else acc)
    Ppc.Reg_args.ok t.replicas

let bindings t =
  Array.fold_left (fun acc r -> Int.max acc (Name_server.bindings r)) 0 t.replicas
