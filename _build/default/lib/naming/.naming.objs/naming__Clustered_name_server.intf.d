lib/naming/clustered_name_server.mli: Kernel Name_server Ppc
