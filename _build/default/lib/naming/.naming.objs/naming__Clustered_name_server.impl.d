lib/naming/clustered_name_server.ml: Array Int Kernel Name_server Ppc
