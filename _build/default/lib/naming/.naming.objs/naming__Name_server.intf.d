lib/naming/name_server.mli: Kernel Ppc
