lib/naming/name_server.ml: Call_ctx Char Fun Hashtbl Kernel List Machine Null_server Ppc Reg_args String
