lib/naming/auth.ml: Hashtbl Kernel List Machine Ppc
