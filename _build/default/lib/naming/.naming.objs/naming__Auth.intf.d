lib/naming/auth.mli: Kernel Ppc
