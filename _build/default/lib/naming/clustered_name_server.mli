(** Per-cluster name-server replicas (hierarchical clustering, ref [16]):
    local lookups, broadcast registrations. *)

type t

val install : Ppc.t -> cluster_size:int -> t

val cluster : t -> Kernel.Cluster.t
val n_replicas : t -> int
val replica : t -> cluster:int -> Name_server.t

val lookup : t -> client:Kernel.Process.t -> name:string -> (int, int) result
(** Served by the caller's own cluster replica. *)

val register : t -> client:Kernel.Process.t -> name:string -> ep_id:int -> int
(** Broadcast to every replica; returns the first failure's RC if any. *)

val unregister : t -> client:Kernel.Process.t -> name:string -> int

val bindings : t -> int
(** Bindings visible in the fullest replica. *)
