(** The Name Server (Section 4.5.5): binds names to entry-point IDs at a
    well-known entry point.  Naming is separate from authentication. *)

val well_known_id : int
(** Entry point 0. *)

val op_register : int
val op_lookup : int
val op_unregister : int

type t

val install : Ppc.t -> t
(** Install at EP 0 with one preallocated worker per CPU. *)

val install_at :
  Ppc.t -> node:int -> well_known:bool -> prime_cpus:int list -> t
(** Build an instance with its registry homed on [node]; a fresh entry
    point unless [well_known] (cluster replicas use this). *)

val ep_id : t -> int

val hash_name : string -> int * int
(** The client stub's two-word name hash. *)

val register : t -> client:Kernel.Process.t -> name:string -> ep_id:int -> int
(** Bind [name]; fails with [err_bad_request] if already bound. *)

val lookup : t -> client:Kernel.Process.t -> name:string -> (int, int) result

val unregister : t -> client:Kernel.Process.t -> name:string -> int
(** Only the registering program may unbind. *)

val bindings : t -> int
