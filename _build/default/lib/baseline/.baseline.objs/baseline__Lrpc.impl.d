lib/baseline/lrpc.ml: Array Kernel List Machine Ppc Sim
