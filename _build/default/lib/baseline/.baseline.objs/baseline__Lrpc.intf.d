lib/baseline/lrpc.mli: Kernel Ppc
