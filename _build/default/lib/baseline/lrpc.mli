(** LRPC-style baseline: the caller's thread crosses into the server on
    an A-stack taken from a single global, lock-guarded pool; binding
    state is shared mutable data.  The design the paper's PPC improves
    on. *)

type t

val install :
  Kernel.t -> handler:Ppc.Call_ctx.handler -> frame_count:int -> t
(** One service; [frame_count] A-stack frames allocated round-robin
    across stations. *)

val call : t -> client:Kernel.Process.t -> Ppc.Reg_args.t -> int
(** Synchronous round trip on the caller's thread. *)

val calls : t -> int
val pool_lock : t -> Kernel.Spinlock.t
val frames_free : t -> int
val frame_waits : t -> int
val server_program : t -> Kernel.Program.t
