(* An LRPC-style facility: the comparison point of the paper's Section 2.

   "The key difference is that not all resources required by an LRPC
   operation are exclusively accessed by a single processor.  The IPC
   facility accesses shared data which must be locked and may cause
   additional bus traffic.  From a server perspective, the stacks used to
   handle the calls are not reserved on a per-processor basis, and hence
   the server may implicitly access remote data."

   Faithful to that description: the caller's own thread crosses into the
   server (no worker processes), argument stacks (A-stacks) live in one
   *global* pool guarded by one lock, the binding/entry table is shared
   mutable data (uncached on a coherence-free machine), and frames come
   back to the pool wherever they were last used — so a call routinely
   runs on a stack homed on another processor's memory. *)

type per_cpu = { user_stub : int; user_stack : int; cmmu_regs : int }

type t = {
  kernel : Kernel.t;
  handler : Ppc.Call_ctx.handler;
  server_space : Kernel.Address_space.t;
  server_program : Kernel.Program.t;
  server_code : int;
  server_data : int;
  stack_va_base : int;
  binding_table : int;  (** shared mutable: uncached *)
  pool_lock : Kernel.Spinlock.t;
  mutable frames : int list;  (** global A-stack frame pool (LIFO) *)
  pool_head_addr : int;
  per_cpu : per_cpu array;
  current_user_asid : int array;
  mutable calls : int;
  mutable frame_waits : int;
}

let calls t = t.calls
let pool_lock t = t.pool_lock
let frames_free t = List.length t.frames
let frame_waits t = t.frame_waits
let server_program t = t.server_program

let install kernel ~handler ~frame_count =
  let n = Kernel.n_cpus kernel in
  let server_program = Kernel.new_program kernel ~name:"lrpc-server" in
  let server_space = Kernel.new_user_space kernel ~name:"lrpc-server" ~node:0 in
  (* A-stack frames are allocated round-robin across the stations: a
     caller on CPU i frequently receives a frame homed elsewhere. *)
  let frames =
    List.init frame_count (fun i -> Kernel.alloc_page kernel ~node:(i mod n))
  in
  {
    kernel;
    handler;
    server_space;
    server_program;
    server_code = Kernel.alloc kernel ~align:`Page ~bytes:4096 ~node:0;
    server_data = Kernel.alloc kernel ~align:`Page ~bytes:4096 ~node:0;
    stack_va_base = Kernel.alloc kernel ~align:`Page ~bytes:(4096 * n) ~node:0;
    binding_table = Kernel.alloc kernel ~bytes:256 ~node:0;
    pool_lock =
      Kernel.Spinlock.create ~addr:(Kernel.alloc kernel ~bytes:16 ~node:0) ();
    frames;
    pool_head_addr = Kernel.alloc kernel ~bytes:16 ~node:0;
    per_cpu =
      Array.init n (fun node ->
          {
            user_stub = Kernel.alloc kernel ~align:`Page ~bytes:256 ~node;
            user_stack = Kernel.alloc kernel ~align:`Page ~bytes:4096 ~node;
            cmmu_regs = Kernel.alloc kernel ~bytes:64 ~node;
          });
    current_user_asid = Array.make n (-1);
    calls = 0;
    frame_waits = 0;
  }

let switch_user_context t cpu ~cpu_index ~asid =
  let pc = t.per_cpu.(cpu_index) in
  Machine.Cpu.instr cpu 6;
  Machine.Cpu.uncached_store cpu pc.cmmu_regs;
  Machine.Cpu.uncached_store cpu (pc.cmmu_regs + 4);
  Machine.Cpu.uncached_store cpu (pc.cmmu_regs + 8);
  Machine.Cpu.uncached_store cpu (pc.cmmu_regs + 12);
  Machine.Cpu.flush_user_tlb cpu;
  Machine.Cpu.charge_current cpu
    (Machine.Cpu.params cpu).Machine.Cost_params.space_switch_extra_cycles;
  if (Machine.Cpu.params cpu).Machine.Cost_params.switch_flushes_cache then begin
    Machine.Cache.flush (Machine.Cpu.dcache cpu);
    Machine.Cache.flush (Machine.Cpu.icache cpu)
  end;
  t.current_user_asid.(cpu_index) <- asid

(* Pop a frame from the global pool under the global lock; spin-wait (by
   retrying) if the pool is dry. *)
let rec take_frame t engine cpu client =
  Kernel.Spinlock.acquire engine cpu client t.pool_lock;
  Machine.Cpu.instr cpu 8;
  Machine.Cpu.uncached_load cpu t.pool_head_addr;
  match t.frames with
  | frame :: rest ->
      Machine.Cpu.uncached_store cpu t.pool_head_addr;
      t.frames <- rest;
      Kernel.Spinlock.release engine cpu client t.pool_lock;
      frame
  | [] ->
      t.frame_waits <- t.frame_waits + 1;
      Kernel.Spinlock.release engine cpu client t.pool_lock;
      Sim.Engine.delay engine (Sim.Time.us 5);
      take_frame t engine cpu client

let put_frame t engine cpu client frame =
  Kernel.Spinlock.acquire engine cpu client t.pool_lock;
  Machine.Cpu.instr cpu 6;
  Machine.Cpu.uncached_store cpu t.pool_head_addr;
  t.frames <- frame :: t.frames;
  Kernel.Spinlock.release engine cpu client t.pool_lock

(* Synchronous LRPC: the client's own thread crosses into the server. *)
let call t ~client args =
  let cpu_index = Kernel.Process.cpu_index client in
  let kc = Kernel.kcpu t.kernel cpu_index in
  let cpu = Kernel.Kcpu.cpu kc in
  let engine = Kernel.engine t.kernel in
  let pc = t.per_cpu.(cpu_index) in
  t.calls <- t.calls + 1;
  (* Client side, user mode. *)
  Machine.Cpu.instr ~code:pc.user_stub cpu 10;
  Machine.Cpu.store_words cpu pc.user_stack 20;
  Machine.Cpu.instr ~code:pc.user_stub cpu 8;
  Machine.Cpu.trap cpu;
  (* Binding lookup in the shared table. *)
  Machine.Cpu.instr cpu 18;
  Machine.Cpu.uncached_load cpu t.binding_table;
  Machine.Cpu.uncached_load cpu (t.binding_table + 8);
  (* A-stack from the global pool (lock, shared free list). *)
  let frame = take_frame t engine cpu client in
  (* Linkage record on the (possibly remote) frame. *)
  Machine.Cpu.instr cpu 6;
  Machine.Cpu.store_words cpu frame 4;
  (* Map it and enter the server's space. *)
  let va = t.stack_va_base + (cpu_index * 4096) in
  Machine.Cpu.instr cpu 4;
  Kernel.Address_space.map cpu t.server_space ~vaddr:va ~frame;
  if
    t.current_user_asid.(cpu_index)
    <> Kernel.Address_space.asid t.server_space
  then
    switch_user_context t cpu ~cpu_index
      ~asid:(Kernel.Address_space.asid t.server_space);
  Machine.Cpu.rti cpu ~to_space:Machine.Tlb.User;
  (* The handler runs on the caller's thread, on the pooled frame. *)
  let ctx =
    {
      Ppc.Call_ctx.engine;
      kcpu = kc;
      cpu;
      self = client;
      caller_program = Kernel.Program.id (Kernel.Process.program client);
      ep_id = 0;
      server_code = t.server_code;
      server_data = t.server_data;
      stack_va = va;
      stack_pa = frame;
      swap_handler = (fun _ -> ());
      grow_stack =
        (fun page ->
          if page = 0 then frame
          else invalid_arg "Lrpc: A-stacks are a single page");
    }
  in
  t.handler ctx args;
  Machine.Cpu.trap cpu;
  (* Return path: unmap, switch back, frame to the global pool. *)
  Machine.Cpu.instr cpu 4;
  Kernel.Address_space.unmap cpu t.server_space ~vaddr:va;
  let caller_space = Kernel.Process.space client in
  if
    Kernel.Address_space.kind caller_space = Kernel.Address_space.User
    && t.current_user_asid.(cpu_index)
       <> Kernel.Address_space.asid caller_space
  then
    switch_user_context t cpu ~cpu_index
      ~asid:(Kernel.Address_space.asid caller_space);
  put_frame t engine cpu client frame;
  Machine.Cpu.rti cpu
    ~to_space:(Kernel.Address_space.space_of caller_space);
  Machine.Cpu.instr ~code:pc.user_stub cpu 8;
  Machine.Cpu.load_words cpu pc.user_stack 20;
  Kernel.Kcpu.sync kc;
  Ppc.Reg_args.rc args
