(* Ablation A7: server-side locking granularity.

   The paper's single-file curve saturates because the file server's
   critical section serialises every GetLength: "this experiment
   illustrates the dramatic impact any locks in the IPC path might have".
   The IPC facility removed *its* locks; the server's own are the
   remaining ceiling.  Here Bob is built twice — per-file mutex vs
   readers-writer lock — and hammered with read-only GetLengths on a
   single file: with a RW lock the readers share and the ceiling lifts. *)

type point = { cpus : int; mutex_tput : float; rw_tput : float }

let run_mode ~cpus ~horizon ~lock_mode =
  let kern = Kernel.create ~cpus () in
  let ppc = Ppc.create kern in
  let bob, ep = Servers.File_server.install ~lock_mode ppc in
  Ppc.prime ppc ~ep ~cpus:(List.init cpus Fun.id);
  ignore (Servers.File_server.create_file bob ~file_id:0 ~length:10 ~node:0);
  let counters =
    Workload.Driver.run kern
      ~specs:(Workload.Driver.one_per_cpu ~n:cpus ~name_prefix:"c" ())
      ~horizon ~seed:3
      ~prepare:(fun ~program ~index:_ ->
        Naming.Auth.grant (Servers.File_server.auth bob)
          ~program:(Kernel.Program.id program)
          ~perms:[ Naming.Auth.Read ])
      ~body:(fun ~client ~iteration:_ ->
        match Servers.File_server.get_length bob ~client ~file_id:0 with
        | Ok _ -> ()
        | Error rc -> Fmt.failwith "GetLength failed rc=%d" rc)
  in
  Kernel.run kern;
  Workload.Driver.throughput_per_sec counters

let run ?(max_cpus = 16) ?(horizon = Sim.Time.ms 50) () =
  List.filter_map
    (fun cpus ->
      if cpus <= max_cpus then
        Some
          {
            cpus;
            mutex_tput =
              run_mode ~cpus ~horizon ~lock_mode:Servers.File_server.Mutex;
            rw_tput = run_mode ~cpus ~horizon ~lock_mode:Servers.File_server.Rw;
          }
      else None)
    [ 1; 2; 4; 8; 12; 16 ]

let pp_result ppf points =
  Fmt.pf ppf
    "A7 — single-file GetLength: per-file mutex vs readers-writer lock@.";
  List.iter
    (fun p ->
      Fmt.pf ppf "  %2d CPU%s  mutex %9.0f /s   rw %9.0f /s   (%.2fx)@." p.cpus
        (if p.cpus = 1 then " " else "s")
        p.mutex_tput p.rw_tput
        (if p.mutex_tput > 0.0 then p.rw_tput /. p.mutex_tput else Float.nan))
    points
