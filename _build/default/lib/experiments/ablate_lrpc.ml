(* Ablation A2: per-processor pools (PPC) vs shared locked pools (LRPC).

   Both facilities serve the identical null handler; one closed-loop
   client per processor.  The PPC curve should stay linear (nothing is
   shared); the LRPC-style curve saturates on its global A-stack pool
   lock and pays remote-frame traffic. *)

type point = { cpus : int; ppc_tput : float; lrpc_tput : float }

let handler = Ppc.Null_server.handler ~instr:20 ~stack_words:8 ()

let run_ppc ~cpus ~horizon =
  let kern = Kernel.create ~cpus () in
  let ppc = Ppc.create kern in
  let server = Ppc.make_user_server ppc ~name:"null" () in
  let ep = Ppc.register_direct ppc ~server ~handler in
  Ppc.prime ppc ~ep ~cpus:(List.init cpus Fun.id);
  let specs = Workload.Driver.one_per_cpu ~n:cpus ~name_prefix:"c" () in
  let counters =
    Workload.Driver.run kern ~specs ~horizon ~seed:7
      ~body:(fun ~client ~iteration:_ ->
        ignore
          (Ppc.call ppc ~client ~ep_id:(Ppc.Entry_point.id ep)
             (Ppc.Reg_args.make ())))
  in
  Kernel.run kern;
  Workload.Driver.throughput_per_sec counters

let run_lrpc ~cpus ~horizon =
  let kern = Kernel.create ~cpus () in
  (* Frame pool sized like the paper's LRPC: a handful of A-stacks per
     binding, shared machine-wide. *)
  let lrpc = Baseline.Lrpc.install kern ~handler ~frame_count:(2 * cpus) in
  let specs = Workload.Driver.one_per_cpu ~n:cpus ~name_prefix:"c" () in
  let counters =
    Workload.Driver.run kern ~specs ~horizon ~seed:7
      ~body:(fun ~client ~iteration:_ ->
        ignore (Baseline.Lrpc.call lrpc ~client (Ppc.Reg_args.make ())))
  in
  Kernel.run kern;
  Workload.Driver.throughput_per_sec counters

let run ?(max_cpus = 16) ?(horizon = Sim.Time.ms 100) () =
  List.init max_cpus (fun i ->
      let cpus = i + 1 in
      {
        cpus;
        ppc_tput = run_ppc ~cpus ~horizon;
        lrpc_tput = run_lrpc ~cpus ~horizon;
      })

let pp_result ppf points =
  Fmt.pf ppf "A2 — PPC vs LRPC-style shared pools (null call throughput)@.";
  List.iter
    (fun p ->
      Fmt.pf ppf "  %2d CPU%s  PPC %9.0f /s   LRPC %9.0f /s   ratio %.2fx@."
        p.cpus
        (if p.cpus = 1 then " " else "s")
        p.ppc_tput p.lrpc_tput
        (if p.lrpc_tput > 0.0 then p.ppc_tput /. p.lrpc_tput else Float.nan))
    points
