(* Ablation A3: asynchronous PPC for prefetch (Section 4.4).

   "Asynchronous PPC requests are used, for example, to initiate a file
   block prefetch request."  A client consumes B disk blocks, spending C
   microseconds of computation per block:

   - synchronously, every block costs (IPC + disk latency + compute) in
     series;
   - with asynchronous prefetch PPCs, all the disk requests are issued up
     front and the disk streams them while the client computes — elapsed
     time approaches max(total compute, total disk time). *)

type result = {
  blocks : int;
  disk_latency_us : float;
  compute_us : float;
  sync_elapsed_us : float;
  async_elapsed_us : float;
}

let setup ~latency =
  let kern = Kernel.create ~cpus:2 () in
  let ppc = Ppc.create kern in
  let disk = Servers.Disk.create kern ~owner_cpu:1 ~vector:9 ~latency in
  let dev = Servers.Device_server.install ppc ~disk in
  (kern, dev)

let run_sync ~blocks ~latency ~compute =
  let kern, dev = setup ~latency in
  let prog = Kernel.new_program kern ~name:"reader" in
  let space = Kernel.new_user_space kern ~name:"reader" ~node:0 in
  let finished = ref Sim.Time.zero in
  ignore
    (Kernel.spawn kern ~cpu:0 ~name:"reader" ~kind:Kernel.Process.Client
       ~program:prog ~space (fun self ->
         for b = 1 to blocks do
           (match Servers.Device_server.read_block dev ~client:self ~block:b with
           | Ok _ -> ()
           | Error rc -> Fmt.failwith "read_block failed: rc=%d" rc);
           (* Consume the block. *)
           Sim.Engine.delay (Kernel.engine kern) compute
         done;
         finished := Kernel.now kern));
  Kernel.run kern;
  Sim.Time.to_us !finished

let run_async ~blocks ~latency ~compute =
  let kern, dev = setup ~latency in
  let prog = Kernel.new_program kern ~name:"reader" in
  let space = Kernel.new_user_space kern ~name:"reader" ~node:0 in
  let last_completion = ref Sim.Time.zero in
  let compute_done = ref Sim.Time.zero in
  ignore
    (Kernel.spawn kern ~cpu:0 ~name:"reader" ~kind:Kernel.Process.Client
       ~program:prog ~space (fun self ->
         (* Issue every prefetch up front... *)
         for b = 1 to blocks do
           Servers.Device_server.prefetch_block dev ~client:self ~block:b
             ~on_complete:(fun _ -> last_completion := Kernel.now kern)
             ()
         done;
         (* ...and compute while the disk streams. *)
         for _ = 1 to blocks do
           Sim.Engine.delay (Kernel.engine kern) compute
         done;
         compute_done := Kernel.now kern));
  Kernel.run kern;
  Sim.Time.to_us
    (if Sim.Time.(!last_completion < !compute_done) then !compute_done
     else !last_completion)

let run ?(blocks = 16) ?(latency = Sim.Time.us 500) ?(compute = Sim.Time.us 400)
    () =
  {
    blocks;
    disk_latency_us = Sim.Time.to_us latency;
    compute_us = Sim.Time.to_us compute;
    sync_elapsed_us = run_sync ~blocks ~latency ~compute;
    async_elapsed_us = run_async ~blocks ~latency ~compute;
  }

let pp_result ppf r =
  Fmt.pf ppf
    "A3 — async prefetch PPC (%d blocks, %.0f us disk, %.0f us compute)@."
    r.blocks r.disk_latency_us r.compute_us;
  Fmt.pf ppf "  synchronous reads: %8.0f us@." r.sync_elapsed_us;
  Fmt.pf ppf "  async prefetch:    %8.0f us   (%.1fx faster)@."
    r.async_elapsed_us
    (r.sync_elapsed_us /. r.async_elapsed_us)
