(* Figure 3: GetLength throughput for 1..N processors.

   "Throughput for independent clients repeatedly requesting the length
   of a file from the file server": one closed-loop client per processor,
   every request to the *same* server.

   - Different-files mode: client i hits file i (metadata homed on its
     own station).  Throughput should rise linearly — the PPC facility
     adds no shared data or locks of its own.
   - Single-file mode: every client hits file 0, serialising on its
     spinlock; throughput saturates (the paper measures saturation at
     four processors).

   The perfect-speedup reference line is N times the measured 1-CPU
   rate. *)

type mode = Different_files | Single_file

let mode_name = function
  | Different_files -> "different files"
  | Single_file -> "single file"

type point = { cpus : int; calls : int; throughput : float }

type result = {
  mode : mode;
  points : point list;
  base_call_us : float;  (** sequential per-call latency at 1 CPU *)
  perfect : (int -> float);  (** perfect-speedup reference *)
}

let run_point ?(horizon = Sim.Time.ms 200) ~mode ~cpus () =
  let kern = Kernel.create ~cpus () in
  let ppc = Ppc.create kern in
  let bob, ep = Servers.File_server.install ppc in
  (* Pre-populate worker pools so Frank's slow path is out of the way. *)
  Ppc.prime ppc ~ep ~cpus:(List.init cpus Fun.id);
  (* Files: one per client (homed locally) or one shared. *)
  (match mode with
  | Different_files ->
      for i = 0 to cpus - 1 do
        ignore (Servers.File_server.create_file bob ~file_id:i ~length:(1000 + i) ~node:i)
      done
  | Single_file ->
      ignore (Servers.File_server.create_file bob ~file_id:0 ~length:4096 ~node:0));
  let specs = Workload.Driver.one_per_cpu ~n:cpus ~name_prefix:"client" () in
  let counters =
    Workload.Driver.run kern ~specs ~horizon ~seed:42
      ~prepare:(fun ~program ~index:_ ->
        Naming.Auth.grant (Servers.File_server.auth bob)
          ~program:(Kernel.Program.id program)
          ~perms:[ Naming.Auth.Read ])
      ~body:(fun ~client ~iteration:_ ->
        let file_id =
          match mode with
          | Different_files -> Kernel.Process.cpu_index client
          | Single_file -> 0
        in
        match Servers.File_server.get_length bob ~client ~file_id with
        | Ok _ -> ()
        | Error rc -> Fmt.failwith "GetLength failed: rc=%d" rc)
  in
  Kernel.run kern;
  {
    cpus;
    calls = Workload.Driver.total counters;
    throughput = Workload.Driver.throughput_per_sec counters;
  }

let run ?(max_cpus = 16) ?horizon ~mode () =
  let points =
    List.init max_cpus (fun i ->
        match horizon with
        | None -> run_point ~mode ~cpus:(i + 1) ()
        | Some h -> run_point ~horizon:h ~mode ~cpus:(i + 1) ())
  in
  let base =
    match points with
    | p1 :: _ -> p1.throughput
    | [] -> invalid_arg "Fig3.run: max_cpus must be positive"
  in
  {
    mode;
    points;
    base_call_us = (if base > 0.0 then 1.0e6 /. base else Float.nan);
    perfect = (fun n -> base *. float_of_int n);
  }

(* The paper's qualitative checks. *)

let saturation_cpus r =
  (* First CPU count after which adding a processor gains < 10%. *)
  let rec scan = function
    | a :: (b :: _ as rest) ->
        if b.throughput < a.throughput *. 1.10 then a.cpus else scan rest
    | [ last ] -> last.cpus
    | [] -> 0
  in
  scan r.points

let linearity r =
  (* Mean ratio of measured to perfect throughput across all points. *)
  let ratios =
    List.map (fun p -> p.throughput /. r.perfect p.cpus) r.points
  in
  List.fold_left ( +. ) 0.0 ratios /. float_of_int (List.length ratios)

let pp_result ppf r =
  Fmt.pf ppf "Figure 3 — %s@." (mode_name r.mode);
  Fmt.pf ppf "  base call latency: %.1f us (paper: 66 us)@." r.base_call_us;
  List.iter
    (fun p ->
      Fmt.pf ppf "  %2d CPU%s  %8.0f calls/s   (perfect: %8.0f)@." p.cpus
        (if p.cpus = 1 then " " else "s")
        p.throughput (r.perfect p.cpus))
    r.points
