(* Ablation A9: hierarchical clustering of a system service ([16]).

   Name lookups from every CPU, two deployments on a 16-CPU ring:

   - one machine-wide name server: its (mutable, shared) registry is
     homed on CPU 0, so consistent uncached reads cost more with ring
     distance — and far CPUs pay most;
   - one replica per 4-CPU cluster: lookups stay cluster-local.

   The write side is also reported: a registration touches one replica
   in the central build but all four in the clustered one. *)

type result = {
  central_tput : float;
  clustered_tput : float;
  central_register_us : float;
  clustered_register_us : float;
}

let cpus = 16
let cluster_size = 4

type service =
  | Central of Naming.Name_server.t
  | Clustered of Naming.Clustered_name_server.t

let lookup service ~client ~name =
  match service with
  | Central ns -> Naming.Name_server.lookup ns ~client ~name
  | Clustered cns -> Naming.Clustered_name_server.lookup cns ~client ~name

let run_variant ~horizon ~make =
  let kern = Kernel.create ~cpus () in
  let ppc = Ppc.create kern in
  let service = make ppc in
  (* Seed bindings and measure one registration from CPU 0. *)
  let reg_us = ref Float.nan in
  let prog = Kernel.new_program kern ~name:"registrar" in
  let space = Kernel.new_user_space kern ~name:"registrar" ~node:0 in
  ignore
    (Kernel.spawn kern ~cpu:0 ~name:"registrar" ~kind:Kernel.Process.Client
       ~program:prog ~space (fun self ->
         let register name ep_id =
           match service with
           | Central ns ->
               ignore (Naming.Name_server.register ns ~client:self ~name ~ep_id)
           | Clustered cns ->
               ignore
                 (Naming.Clustered_name_server.register cns ~client:self ~name
                    ~ep_id)
         in
         for i = 1 to 8 do
           register (Printf.sprintf "svc-%d" i) (100 + i)
         done;
         let t0 = Kernel.now kern in
         register "svc-measured" 99;
         reg_us := Sim.Time.to_us (Sim.Time.sub (Kernel.now kern) t0)));
  Kernel.run kern;
  (* Lookup storm: every CPU looks names up in a closed loop. *)
  let counters =
    Workload.Driver.run kern
      ~specs:(Workload.Driver.one_per_cpu ~n:cpus ~name_prefix:"c" ())
      ~horizon:(Sim.Time.add (Kernel.now kern) horizon)
      ~seed:31
      ~body:(fun ~client ~iteration ->
        let name = Printf.sprintf "svc-%d" (1 + (iteration mod 8)) in
        match lookup service ~client ~name with
        | Ok _ -> ()
        | Error rc -> Fmt.failwith "lookup failed rc=%d" rc)
  in
  Kernel.run kern;
  (* The horizon included the registration prologue; throughput uses the
     lookup window only. *)
  let tput =
    float_of_int (Workload.Driver.total counters) /. Sim.Time.to_s horizon
  in
  (tput, !reg_us)

let run ?(horizon = Sim.Time.ms 40) () =
  let central_tput, central_register_us =
    run_variant ~horizon ~make:(fun ppc ->
        Central (Naming.Name_server.install ppc))
  in
  let clustered_tput, clustered_register_us =
    run_variant ~horizon ~make:(fun ppc ->
        Clustered (Naming.Clustered_name_server.install ppc ~cluster_size))
  in
  { central_tput; clustered_tput; central_register_us; clustered_register_us }

let pp_result ppf r =
  Fmt.pf ppf
    "A9 — clustered name service (16 CPUs, clusters of %d, ref [16])@."
    cluster_size;
  Fmt.pf ppf "  lookups/s:  central %9.0f   clustered %9.0f  (%.2fx)@."
    r.central_tput r.clustered_tput
    (r.clustered_tput /. r.central_tput);
  Fmt.pf ppf
    "  register:   central %6.1f us   clustered %6.1f us  (writes pay %.1fx)@."
    r.central_register_us r.clustered_register_us
    (r.clustered_register_us /. r.central_register_us)
