(* Ablation E2: Bershad's idle-processor migration, then and now.

   Section 2: "Bershad found that he could improve performance by idling
   server processes on idle processors ... and having the calling process
   migrate to that processor to execute the remote procedure.  This
   approach would be prohibitive in today's systems with the high cost of
   cache misses and invalidations."

   We evaluate exactly that decision under two cost regimes:

   - a Firefly-like machine (small CPU:memory speed ratio; caches no
     faster than main memory; flat bus) — Bershad's 1989 hardware;
   - the Hector parameters the paper targets.

   The migrated call is one logical thread hopping processors: context
   out through shared memory, the server's processor runs the handler
   (with *its* state warm — the scheme's whole point), the client's
   working set is touched remotely, context back, and the home cache
   refills the working set the trip evicted.  The local PPC is the
   paper's fast path on the same machine. *)

type regime = { regime_name : string; params : Machine.Cost_params.t }

let hector = { regime_name = "Hector (1994)"; params = Machine.Cost_params.hector }

let firefly =
  {
    regime_name = "Firefly-like (1989)";
    params =
      {
        Machine.Cost_params.hector with
        (* "has a smaller ratio of processor to memory speed, has caches
           that are no faster than main memory" *)
        cache_hit_cycles = 3;
        line_load_cycles = 3;
        icache_fill_cycles = 3;
        writeback_cycles = 3;
        store_clean_cycles = 0;
        uncached_cycles = 3;
        tlb_miss_cycles = 10;
        numa_base_cycles = 0;
        numa_per_hop_cycles = 0;
        (* VAX-era virtually-addressed caches: an address-space switch
           empties them — and the microcoded VM context load costs on the
           order of 15 us.  These are the costs migration avoids. *)
        switch_flushes_cache = true;
        space_switch_extra_cycles = 250;
      };
  }

let working_set_lines = 24
(* client cache lines that the migration drags along and re-faults *)

type point = {
  point_regime : string;
  local_us : float;
  migrated_us : float;
}

(* The local comparison: a warm user->user PPC on this machine. *)
let measure_local ~params =
  let kern = Kernel.create ~params ~cpus:2 () in
  let ppc = Ppc.create kern in
  let server = Ppc.make_user_server ppc ~name:"srv" () in
  let ep =
    Ppc.register_direct ppc ~server
      ~handler:(Ppc.Null_server.handler ~instr:12 ~stack_words:4 ())
  in
  Ppc.prime ppc ~ep ~cpus:[ 0 ];
  let cpu = Machine.cpu (Kernel.machine kern) 0 in
  let out = ref Float.nan in
  let prog = Kernel.new_program kern ~name:"client" in
  let space = Kernel.new_user_space kern ~name:"client" ~node:0 in
  ignore
    (Kernel.spawn kern ~cpu:0 ~name:"client" ~kind:Kernel.Process.Client
       ~program:prog ~space (fun self ->
         for _ = 1 to 10 do
           ignore
             (Ppc.call ppc ~client:self ~ep_id:(Ppc.Entry_point.id ep)
                (Ppc.Reg_args.make ()))
         done;
         let t0 = Machine.Cpu.elapsed_us cpu in
         for _ = 1 to 32 do
           ignore
             (Ppc.call ppc ~client:self ~ep_id:(Ppc.Entry_point.id ep)
                (Ppc.Reg_args.make ()))
         done;
         out := (Machine.Cpu.elapsed_us cpu -. t0) /. 32.0));
  Kernel.run kern;
  !out

(* The migrated call, as serial execution hopping between CPU A (home)
   and CPU B (where the server idles). *)
let measure_migrated ~params =
  let kern = Kernel.create ~params ~cpus:2 () in
  let cpu_a = Machine.cpu (Kernel.machine kern) 0 in
  let cpu_b = Machine.cpu (Kernel.machine kern) 1 in
  (* Shared context-transfer area and per-side working areas. *)
  let xfer = Kernel.alloc kern ~bytes:256 ~node:0 in
  let b_stack = Kernel.alloc kern ~bytes:4096 ~node:1 in
  let b_code = Kernel.alloc kern ~align:`Page ~bytes:1024 ~node:1 in
  let home_ws = Kernel.alloc kern ~bytes:(working_set_lines * 16) ~node:0 in
  let a_stub = Kernel.alloc kern ~align:`Page ~bytes:256 ~node:0 in
  let a_stack = Kernel.alloc kern ~align:`Page ~bytes:4096 ~node:0 in
  let migrated_call () =
    (* Home side: spill and trap, as any call. *)
    Machine.Cpu.instr ~code:a_stub cpu_a 10;
    Machine.Cpu.store_words cpu_a a_stack 20;
    Machine.Cpu.trap cpu_a;
    (* Migrate out: the whole context crosses through shared memory. *)
    Machine.Cpu.instr cpu_a 20;
    for i = 0 to 31 do
      Machine.Cpu.uncached_store cpu_a (xfer + (4 * i))
    done;
    (* Server processor picks the thread up: restore context. *)
    Machine.Cpu.instr cpu_b 12;
    for i = 0 to 31 do
      Machine.Cpu.uncached_load cpu_b (xfer + (4 * i))
    done;
    (* The handler runs where the server's state is warm — the scheme's
       benefit: B's stack and code stay resident across calls. *)
    Machine.Cpu.instr ~code:b_code cpu_b 12;
    Machine.Cpu.store_words cpu_b b_stack 4;
    Machine.Cpu.load_words cpu_b b_stack 4;
    (* But the client's working set is remote from here. *)
    for l = 0 to working_set_lines - 1 do
      Machine.Cpu.uncached_load cpu_b (home_ws + (16 * l))
    done;
    (* Migrate home. *)
    Machine.Cpu.instr cpu_b 20;
    for i = 0 to 31 do
      Machine.Cpu.uncached_store cpu_b (xfer + 128 + (4 * i))
    done;
    Machine.Cpu.instr cpu_a 12;
    for i = 0 to 31 do
      Machine.Cpu.uncached_load cpu_a (xfer + 128 + (4 * i))
    done;
    Machine.Cpu.rti cpu_a ~to_space:Machine.Tlb.User;
    Machine.Cpu.instr ~code:a_stub cpu_a 8;
    Machine.Cpu.load_words cpu_a a_stack 20;
    (* The trip evicted the working set at home: refill it. *)
    Machine.Cpu.charge_current cpu_a
      (working_set_lines * params.Machine.Cost_params.line_load_cycles)
  in
  for _ = 1 to 5 do
    migrated_call ()
  done;
  let c0 = Machine.Cpu.cycles cpu_a + Machine.Cpu.cycles cpu_b in
  for _ = 1 to 32 do
    migrated_call ()
  done;
  let cycles =
    (Machine.Cpu.cycles cpu_a + Machine.Cpu.cycles cpu_b - c0) / 32
  in
  Machine.Cost_params.cycles_to_us params cycles

let run () =
  List.map
    (fun r ->
      {
        point_regime = r.regime_name;
        local_us = measure_local ~params:r.params;
        migrated_us = measure_migrated ~params:r.params;
      })
    [ firefly; hector ]

let pp_result ppf points =
  Fmt.pf ppf
    "E2 — idle-processor migration (Bershad) under two technology regimes@.";
  List.iter
    (fun p ->
      Fmt.pf ppf "  %-20s local PPC %6.1f us   migrated %6.1f us   -> %s@."
        p.point_regime p.local_us p.migrated_us
        (if p.migrated_us <= p.local_us then "migration wins"
         else "migration prohibitive"))
    points;
  Fmt.pf ppf
    "  (the paper: profitable on the Firefly, \"prohibitive in today's \
     systems\")@."
