(* Ablation A4: PPC vs the pre-existing message-passing facility.

   Hurricane already had message-passing IPC; the PPC facility replaced
   it for control transfer.  Same dummy service behind both: the
   message path pays a locked shared port queue, memory-marshalled
   arguments, and two full context switches through the general
   scheduler. *)

type result = {
  ppc_us : float;
  msg_us : float;
}

let calls_for_measure = 64

let run_ppc () =
  let kern = Kernel.create ~cpus:1 () in
  let ppc = Ppc.create kern in
  let server = Ppc.make_user_server ppc ~name:"null" () in
  let ep =
    Ppc.register_direct ppc ~server
      ~handler:(Ppc.Null_server.handler ~instr:12 ~stack_words:4 ())
  in
  Ppc.prime ppc ~ep ~cpus:[ 0 ];
  let prog = Kernel.new_program kern ~name:"client" in
  let space = Kernel.new_user_space kern ~name:"client" ~node:0 in
  let cpu = Machine.cpu (Kernel.machine kern) 0 in
  let per_call = ref Float.nan in
  ignore
    (Kernel.spawn kern ~cpu:0 ~name:"client" ~kind:Kernel.Process.Client
       ~program:prog ~space (fun self ->
         for _ = 1 to 8 do
           ignore
             (Ppc.call ppc ~client:self ~ep_id:(Ppc.Entry_point.id ep)
                (Ppc.Reg_args.make ()))
         done;
         let t0 = Machine.Cpu.elapsed_us cpu in
         for _ = 1 to calls_for_measure do
           ignore
             (Ppc.call ppc ~client:self ~ep_id:(Ppc.Entry_point.id ep)
                (Ppc.Reg_args.make ()))
         done;
         per_call :=
           (Machine.Cpu.elapsed_us cpu -. t0) /. float_of_int calls_for_measure));
  Kernel.run kern;
  !per_call

let run_msg () =
  let kern = Kernel.create ~cpus:1 () in
  let msg =
    Kernel.Msg_ipc.create ~engine:(Kernel.engine kern)
      ~kcpu_of:(Kernel.kcpu kern)
      ~alloc:(fun ~bytes ~node -> Kernel.alloc kern ~bytes ~node)
      ()
  in
  let port =
    Kernel.Msg_ipc.make_port ~name:"null-port" ~node:0 ~alloc:(fun ~bytes ~node ->
        Kernel.alloc kern ~bytes ~node)
  in
  let sprog = Kernel.new_program kern ~name:"server" in
  let sspace = Kernel.new_user_space kern ~name:"server" ~node:0 in
  ignore
    (Kernel.spawn kern ~cpu:0 ~name:"server" ~kind:Kernel.Process.Client
       ~program:sprog ~space:sspace (fun self ->
         Kernel.Msg_ipc.serve msg port ~server:self (fun args ->
             (* The same dummy work as the PPC null handler. *)
             let cpu = Machine.cpu (Kernel.machine kern) 0 in
             Machine.Cpu.instr cpu 12;
             args)));
  let prog = Kernel.new_program kern ~name:"client" in
  let space = Kernel.new_user_space kern ~name:"client" ~node:0 in
  let cpu = Machine.cpu (Kernel.machine kern) 0 in
  let per_call = ref Float.nan in
  ignore
    (Kernel.spawn kern ~cpu:0 ~name:"client" ~kind:Kernel.Process.Client
       ~program:prog ~space (fun self ->
         let payload = Array.make 8 7 in
         for _ = 1 to 8 do
           ignore (Kernel.Msg_ipc.send msg port ~client:self payload)
         done;
         let t0 = Machine.Cpu.elapsed_us cpu in
         for _ = 1 to calls_for_measure do
           ignore (Kernel.Msg_ipc.send msg port ~client:self payload)
         done;
         per_call :=
           (Machine.Cpu.elapsed_us cpu -. t0) /. float_of_int calls_for_measure));
  Kernel.run kern;
  !per_call

let run () = { ppc_us = run_ppc (); msg_us = run_msg () }

let pp_result ppf r =
  Fmt.pf ppf "A4 — PPC vs message-passing IPC (null round trip)@.";
  Fmt.pf ppf "  PPC:             %6.1f us@." r.ppc_us;
  Fmt.pf ppf "  message passing: %6.1f us   (%.1fx slower)@." r.msg_us
    (r.msg_us /. r.ppc_us)
