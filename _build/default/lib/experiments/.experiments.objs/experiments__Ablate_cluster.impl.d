lib/experiments/ablate_cluster.ml: Float Fmt Kernel Naming Ppc Printf Sim Workload
