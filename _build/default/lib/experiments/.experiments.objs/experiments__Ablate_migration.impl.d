lib/experiments/ablate_migration.ml: Float Fmt Kernel List Machine Ppc
