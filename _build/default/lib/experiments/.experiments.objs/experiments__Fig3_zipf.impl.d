lib/experiments/fig3_zipf.ml: Array Fmt Fun Kernel List Naming Ppc Servers Sim Workload
