lib/experiments/ablate_compat.ml: Float Fmt Kernel Machine Ppc
