lib/experiments/program_mix.ml: Float Fmt Fun Kernel Lazy List Naming Ppc Printf Servers Sim Workload
