lib/experiments/ablate_holdcd.ml: Array Fmt Kernel List Machine Ppc Printf
