lib/experiments/latency_load.ml: Fmt Fun Kernel List Naming Ppc Printf Servers Sim Workload
