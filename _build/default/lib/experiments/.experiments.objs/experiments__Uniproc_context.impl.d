lib/experiments/uniproc_context.ml: Fig2 Fmt List
