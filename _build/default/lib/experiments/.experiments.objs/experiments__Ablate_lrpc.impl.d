lib/experiments/ablate_lrpc.ml: Baseline Float Fmt Fun Kernel List Ppc Sim Workload
