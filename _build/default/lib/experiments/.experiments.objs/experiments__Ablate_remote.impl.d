lib/experiments/ablate_remote.ml: Fmt Fun Kernel List Machine Ppc Sim
