lib/experiments/ablate_rwlock.ml: Float Fmt Fun Kernel List Naming Ppc Servers Sim Workload
