lib/experiments/ablate_async.ml: Fmt Kernel Ppc Servers Sim
