lib/experiments/fig3.ml: Float Fmt Fun Kernel List Naming Ppc Servers Sim Workload
