lib/experiments/ablate_msg.ml: Array Float Fmt Kernel Machine Ppc
