lib/experiments/fig2_icache.ml: Fig2 Float Fmt Kernel Machine Ppc
