lib/experiments/fig2.ml: Fmt Kernel List Machine Ppc Printf
