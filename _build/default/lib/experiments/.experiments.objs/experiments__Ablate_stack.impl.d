lib/experiments/ablate_stack.ml: Float Fmt Kernel List Machine Ppc Printf
