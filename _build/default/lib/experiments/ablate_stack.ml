(* Ablation A6: stack-size policies (Section 4.5.4).

   Three ways to give a server a deeper stack, measured for shallow calls
   (touch only page 0) and deep calls (touch [deep_pages] pages):

   - Single_page: the fast default (deep calls fault and abort);
   - Fixed_pages n: premap n pages per call — every call pays the extra
     mappings, "treated as an exceptional case";
   - Fault_in n: map one page and fault the rest in on first touch —
     shallow calls keep the common-case cost, deep calls amortise the
     faults over their longer execution. *)

type cost = { policy : string; shallow_us : float; deep_us : float }

let measure ~policy ~deep_pages =
  let run ~pages =
    let kern = Kernel.create ~cpus:1 () in
    let ppc = Ppc.create kern in
    let server = Ppc.make_user_server ppc ~name:"s" ~stack_policy:policy () in
    let handler =
      if pages = 1 then Ppc.Null_server.handler ~instr:20 ~stack_words:8 ()
      else Ppc.Null_server.deep_handler ~instr:20 ~pages ()
    in
    let ep = Ppc.register_direct ppc ~server ~handler in
    Ppc.prime ppc ~ep ~cpus:[ 0 ];
    let prog = Kernel.new_program kern ~name:"client" in
    let space = Kernel.new_user_space kern ~name:"client" ~node:0 in
    let cpu = Machine.cpu (Kernel.machine kern) 0 in
    let out = ref Float.nan in
    ignore
      (Kernel.spawn kern ~cpu:0 ~name:"client" ~kind:Kernel.Process.Client
         ~program:prog ~space (fun self ->
           let ok = ref true in
           for _ = 1 to 8 do
             if
               Ppc.call ppc ~client:self ~ep_id:(Ppc.Entry_point.id ep)
                 (Ppc.Reg_args.make ())
               <> Ppc.Reg_args.ok
             then ok := false
           done;
           if !ok then begin
             let t0 = Machine.Cpu.elapsed_us cpu in
             for _ = 1 to 16 do
               ignore
                 (Ppc.call ppc ~client:self ~ep_id:(Ppc.Entry_point.id ep)
                    (Ppc.Reg_args.make ()))
             done;
             out := (Machine.Cpu.elapsed_us cpu -. t0) /. 16.0
           end));
    Kernel.run kern;
    !out
  in
  (run ~pages:1, run ~pages:deep_pages)

let run ?(deep_pages = 4) () =
  [
    (let shallow, deep =
       measure ~policy:Ppc.Entry_point.Single_page ~deep_pages
     in
     { policy = "Single_page"; shallow_us = shallow; deep_us = deep });
    (let shallow, deep =
       measure ~policy:(Ppc.Entry_point.Fixed_pages deep_pages) ~deep_pages
     in
     { policy = Printf.sprintf "Fixed_pages %d" deep_pages;
       shallow_us = shallow;
       deep_us = deep;
     });
    (let shallow, deep =
       measure ~policy:(Ppc.Entry_point.Fault_in deep_pages) ~deep_pages
     in
     { policy = Printf.sprintf "Fault_in %d" deep_pages;
       shallow_us = shallow;
       deep_us = deep;
     });
  ]

let pp_result ppf rows =
  Fmt.pf ppf "A6 — stack-size policies (us per call; nan = call faults)@.";
  List.iter
    (fun r ->
      Fmt.pf ppf "  %-16s shallow %7.2f us   deep %7.2f us@." r.policy
        r.shallow_us r.deep_us)
    rows
