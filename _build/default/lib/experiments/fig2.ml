(* Figure 2: round-trip PPC cost breakdown.

   Eight conditions: {user->user, user->kernel} x {no CD held, CD held}
   x {cache primed, cache flushed}.  For each, a single client performs
   warm-up calls (priming caches, TLB and pools), then one measured call;
   the per-category cycle accounts are differenced around it.  In the
   flushed conditions the data cache is invalidated immediately before
   the measured call, as in the paper. *)

type target = To_user | To_kernel

type condition = { target : target; hold_cd : bool; flushed : bool }

let all_conditions =
  [
    { target = To_user; hold_cd = false; flushed = false };
    { target = To_user; hold_cd = true; flushed = false };
    { target = To_user; hold_cd = false; flushed = true };
    { target = To_user; hold_cd = true; flushed = true };
    { target = To_kernel; hold_cd = false; flushed = false };
    { target = To_kernel; hold_cd = true; flushed = false };
    { target = To_kernel; hold_cd = false; flushed = true };
    { target = To_kernel; hold_cd = true; flushed = true };
  ]

let condition_name c =
  Printf.sprintf "%s/%s/%s"
    (match c.target with To_user -> "user->user" | To_kernel -> "user->kernel")
    (if c.hold_cd then "hold-CD" else "no-CD")
    (if c.flushed then "flushed" else "primed")

(* The paper's reported totals, in microseconds (Figure 2 and text). *)
let paper_total_us c =
  match (c.target, c.hold_cd, c.flushed) with
  | To_user, false, false -> Some 32.4
  | To_user, true, false -> Some 30.0
  | To_user, false, true -> Some 52.2
  | To_user, true, true -> Some 48.9
  | To_kernel, false, false -> Some 22.2
  | To_kernel, true, false -> Some 19.2
  | To_kernel, false, true -> Some 42.0
  | To_kernel, true, true -> Some 39.6

type result = {
  condition : condition;
  breakdown : (Machine.Account.category * float) list;  (** us per category *)
  total_us : float;
  paper_us : float option;
}

let run ?(warmup = 12) condition =
  let kern = Kernel.create ~cpus:1 () in
  let ppc = Ppc.create kern in
  let server =
    match condition.target with
    | To_user ->
        Ppc.make_user_server ppc ~name:"null-server"
          ~hold_cd:condition.hold_cd ()
    | To_kernel ->
        Ppc.make_kernel_server ppc ~name:"null-server"
          ~hold_cd:condition.hold_cd ()
  in
  (* The Figure-2 server: saves and restores a few registers. *)
  let ep =
    Ppc.register_direct ppc ~server
      ~handler:(Ppc.Null_server.handler ~instr:12 ~stack_words:4 ())
  in
  Ppc.prime ppc ~ep ~cpus:[ 0 ];
  let prog = Kernel.new_program kern ~name:"client" in
  let space = Kernel.new_user_space kern ~name:"client" ~node:0 in
  let cpu = Machine.cpu (Kernel.machine kern) 0 in
  let params = Machine.params (Kernel.machine kern) in
  let breakdown = ref [] in
  let _client =
    Kernel.spawn kern ~cpu:0 ~name:"client" ~kind:Kernel.Process.Client
      ~program:prog ~space (fun self ->
        for _ = 1 to warmup do
          let args = Ppc.Reg_args.make () in
          ignore (Ppc.call ppc ~client:self ~ep_id:(Ppc.Entry_point.id ep) args)
        done;
        if condition.flushed then
          Machine.Cache.flush (Machine.Cpu.dcache cpu);
        let before = Machine.Account.snapshot (Machine.Cpu.account cpu) in
        let args = Ppc.Reg_args.make () in
        ignore (Ppc.call ppc ~client:self ~ep_id:(Ppc.Entry_point.id ep) args);
        let after = Machine.Account.snapshot (Machine.Cpu.account cpu) in
        let diff = Machine.Account.diff ~before ~after in
        breakdown :=
          List.map
            (fun (cat, cyc) ->
              (cat, Machine.Cost_params.cycles_to_us params cyc))
            (Machine.Account.to_list diff))
  in
  Kernel.run kern;
  let total_us = List.fold_left (fun acc (_, us) -> acc +. us) 0.0 !breakdown in
  {
    condition;
    breakdown = !breakdown;
    total_us;
    paper_us = paper_total_us condition;
  }

let run_all ?warmup () =
  List.map (fun c -> match warmup with
      | None -> run c
      | Some w -> run ~warmup:w c)
    all_conditions

let pp_result ppf r =
  Fmt.pf ppf "%-28s total %6.2f us (paper: %a)@." (condition_name r.condition)
    r.total_us
    Fmt.(option ~none:(any "-") (fmt "%.1f"))
    r.paper_us;
  List.iter
    (fun (cat, us) ->
      if us > 0.005 then
        Fmt.pf ppf "    %-20s %6.2f us@." (Machine.Account.name cat) us)
    r.breakdown
