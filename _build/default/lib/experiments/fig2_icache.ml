(* T-text-3: "Dirtying the cache and flushing the instruction cache can
   increase the times by another 20-30 us" (Section 3).

   On top of the Figure-2 flushed-data-cache condition, the worst case
   also (a) leaves the data cache full of *dirty* unrelated lines — every
   fill during the call must first write back a victim — and (b) starts
   with a cold instruction cache.  We measure the user->user / no-CD path
   under that combined condition and report the delta against the plain
   flushed case. *)

type result = {
  primed_us : float;
  dflushed_us : float;
  worst_us : float;  (** dirty D-cache + flushed I-cache *)
  extra_us : float;  (** worst - dflushed; the paper's "another 20-30" *)
}

let dirty_dcache cache ~base =
  (* Fill every set of the (16 KB) cache with dirty junk lines.  This is
     environment preparation, not part of the measured call: we mutate
     the cache model directly without charging any CPU. *)
  for i = 0 to (16 * 1024 / 16) - 1 do
    ignore (Machine.Cache.access cache Machine.Cache.Store (base + (i * 16)))
  done

let run () =
  let cond flushed =
    { Fig2.target = Fig2.To_user; hold_cd = false; flushed }
  in
  let primed = Fig2.run (cond false) in
  let dflushed = Fig2.run (cond true) in
  (* The worst case, measured with the same machinery as Fig2 but with a
     custom cache state installed before the timed call. *)
  let kern = Kernel.create ~cpus:1 () in
  let ppc = Ppc.create kern in
  let server = Ppc.make_user_server ppc ~name:"null-server" () in
  let ep =
    Ppc.register_direct ppc ~server
      ~handler:(Ppc.Null_server.handler ~instr:12 ~stack_words:4 ())
  in
  Ppc.prime ppc ~ep ~cpus:[ 0 ];
  let prog = Kernel.new_program kern ~name:"client" in
  let space = Kernel.new_user_space kern ~name:"client" ~node:0 in
  let cpu = Machine.cpu (Kernel.machine kern) 0 in
  let params = Machine.params (Kernel.machine kern) in
  let junk_base = Kernel.alloc kern ~bytes:(16 * 1024) ~node:0 in
  let worst = ref Float.nan in
  ignore
    (Kernel.spawn kern ~cpu:0 ~name:"client" ~kind:Kernel.Process.Client
       ~program:prog ~space (fun self ->
         for _ = 1 to 12 do
           ignore
             (Ppc.call ppc ~client:self ~ep_id:(Ppc.Entry_point.id ep)
                (Ppc.Reg_args.make ()))
         done;
         dirty_dcache (Machine.Cpu.dcache cpu) ~base:junk_base;
         Machine.Cache.flush (Machine.Cpu.icache cpu);
         let before = Machine.Account.snapshot (Machine.Cpu.account cpu) in
         ignore
           (Ppc.call ppc ~client:self ~ep_id:(Ppc.Entry_point.id ep)
              (Ppc.Reg_args.make ()));
         let after = Machine.Account.snapshot (Machine.Cpu.account cpu) in
         worst :=
           Machine.Cost_params.cycles_to_us params
             (Machine.Account.total (Machine.Account.diff ~before ~after))));
  Kernel.run kern;
  {
    primed_us = primed.Fig2.total_us;
    dflushed_us = dflushed.Fig2.total_us;
    worst_us = !worst;
    extra_us = !worst -. dflushed.Fig2.total_us;
  }

let pp_result ppf r =
  Fmt.pf ppf "T-text-3 — worst-case caches (user->user, no CD)@.";
  Fmt.pf ppf "  cache primed:                 %6.2f us@." r.primed_us;
  Fmt.pf ppf "  D-cache flushed:              %6.2f us (paper: 52.2)@."
    r.dflushed_us;
  Fmt.pf ppf "  dirty D-cache + cold I-cache: %6.2f us@." r.worst_us;
  Fmt.pf ppf "  extra over flushed:           %6.2f us (paper: 20-30)@."
    r.extra_us
