(* F3c: request origin does not matter.

   Section 1: the facility "should efficiently enable independent
   requests to be serviced in parallel, whether they originate from a
   large number of different programs or a smaller number of large-scale
   parallel programs".

   Same offered load three ways on N CPUs:
   - [Many_programs]: one single-threaded client program per CPU;
   - [One_parallel_program]: N threads of a single program (one shared
     address space) — note each thread's calls still switch user context
     on its own CPU only;
   - [Mixed]: half and half.

   Expected: throughput within a few percent across all three. *)

type origin = Many_programs | One_parallel_program | Mixed

let origin_name = function
  | Many_programs -> "N separate programs"
  | One_parallel_program -> "1 parallel program"
  | Mixed -> "mixed"

type point = { origin : origin; throughput : float }

let run_origin ~cpus ~horizon origin =
  let kern = Kernel.create ~cpus () in
  let ppc = Ppc.create kern in
  let bob, ep = Servers.File_server.install ppc in
  Ppc.prime ppc ~ep ~cpus:(List.init cpus Fun.id);
  for i = 0 to cpus - 1 do
    ignore (Servers.File_server.create_file bob ~file_id:i ~length:100 ~node:i)
  done;
  let shared =
    lazy
      ( Kernel.new_program kern ~name:"parallel-app",
        Kernel.new_user_space kern ~name:"parallel-app" ~node:0 )
  in
  let specs =
    List.init cpus (fun cpu ->
        let identity =
          match origin with
          | Many_programs -> None
          | One_parallel_program -> Some (Lazy.force shared)
          | Mixed -> if cpu mod 2 = 0 then Some (Lazy.force shared) else None
        in
        Workload.Driver.closed_spec ?identity ~cpu
          ~name:(Printf.sprintf "thread-%d" cpu)
          ())
  in
  let counters =
    Workload.Driver.run kern ~specs ~horizon ~seed:5
      ~prepare:(fun ~program ~index:_ ->
        Naming.Auth.grant (Servers.File_server.auth bob)
          ~program:(Kernel.Program.id program)
          ~perms:[ Naming.Auth.Read ])
      ~body:(fun ~client ~iteration:_ ->
        let file_id = Kernel.Process.cpu_index client in
        match Servers.File_server.get_length bob ~client ~file_id with
        | Ok _ -> ()
        | Error rc -> Fmt.failwith "GetLength failed rc=%d" rc)
  in
  Kernel.run kern;
  Workload.Driver.throughput_per_sec counters

let run ?(cpus = 8) ?(horizon = Sim.Time.ms 50) () =
  List.map
    (fun origin -> { origin; throughput = run_origin ~cpus ~horizon origin })
    [ Many_programs; One_parallel_program; Mixed ]

let spread points =
  let ts = List.map (fun p -> p.throughput) points in
  let mx = List.fold_left Float.max 0.0 ts in
  let mn = List.fold_left Float.min Float.infinity ts in
  if mx <= 0.0 then Float.nan else (mx -. mn) /. mx

let pp_result ppf points =
  Fmt.pf ppf "F3c — request origin (GetLength, different files, 8 CPUs)@.";
  List.iter
    (fun p ->
      Fmt.pf ppf "  %-22s %9.0f calls/s@." (origin_name p.origin) p.throughput)
    points;
  Fmt.pf ppf "  spread: %.1f%% (paper: origin should not matter)@."
    (100.0 *. spread points)
