(* The introduction's uniprocessor IPC context (T-intro).

   The paper situates its multiprocessor result against the best
   uniprocessor null-RPC times of the day.  We reprint those reported
   numbers and compute our simulated PPC's alongside, normalising by
   clock where useful ("multiprocessor IPC can generally be expected to
   be slower ... our IPC overhead is comparable to the best times
   achieved on uniprocessor systems"). *)

type entry = {
  system : string;
  platform : string;
  mhz : float;
  reported_us : float;
  source : string;
}

let reported =
  [
    {
      system = "L3 (Liedtke)";
      platform = "386";
      mhz = 20.0;
      reported_us = 60.0;
      source = "[13]";
    };
    {
      system = "L3 (Liedtke)";
      platform = "486";
      mhz = 50.0;
      reported_us = 10.0;
      source = "[13]";
    };
    {
      system = "Mach";
      platform = "MIPS R3000";
      mhz = 25.0;
      reported_us = 57.0;
      source = "[2,10]";
    };
    {
      system = "Mach";
      platform = "MIPS R2000";
      mhz = 16.0;
      reported_us = 95.0;
      source = "[2,10]";
    };
    {
      system = "QNX";
      platform = "486";
      mhz = 33.0;
      reported_us = 76.0;
      source = "[12]";
    };
  ]

type result = {
  ours_user_us : float;
  ours_kernel_us : float;
  table : entry list;
}

let run () =
  let u2u =
    Fig2.run { Fig2.target = Fig2.To_user; hold_cd = false; flushed = false }
  in
  let u2k =
    Fig2.run { Fig2.target = Fig2.To_kernel; hold_cd = true; flushed = false }
  in
  {
    ours_user_us = u2u.Fig2.total_us;
    ours_kernel_us = u2k.Fig2.total_us;
    table = reported;
  }

let pp_result ppf r =
  Fmt.pf ppf "T-intro — uniprocessor null-RPC context@.";
  List.iter
    (fun e ->
      Fmt.pf ppf "  %-14s %-11s %5.1f MHz  %6.1f us  (%6.0f cycles) %s@."
        e.system e.platform e.mhz e.reported_us
        (e.reported_us *. e.mhz)
        e.source)
    r.table;
  Fmt.pf ppf "  %-14s %-11s %5.1f MHz  %6.1f us  (%6.0f cycles) user->user@."
    "PPC (ours)" "M88100" 16.67 r.ours_user_us (r.ours_user_us *. 16.67);
  Fmt.pf ppf "  %-14s %-11s %5.1f MHz  %6.1f us  (%6.0f cycles) u->kernel, hold-CD@."
    "PPC (ours)" "M88100" 16.67 r.ours_kernel_us (r.ours_kernel_us *. 16.67)
