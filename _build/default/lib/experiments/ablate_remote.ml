(* Extension E1: the cross-processor PPC variant's cost.

   Section 4.3 leaves cross-processor PPC as future work and argues the
   local case is what matters.  This experiment quantifies why: a remote
   call pays marshalling over the fabric, a remote interrupt, and a
   cross-CPU ready — an order of magnitude over the local fast path. *)

type result = {
  local_us : float;
  remote_us : float;
  local_busy_us : float;  (** CPU cycles consumed per call, all CPUs *)
  remote_busy_us : float;
  hops : int;
}

let measure ~target_cpu ~cpus =
  let kern = Kernel.create ~cpus () in
  let ppc = Ppc.create kern in
  let remote = Ppc.Remote_call.install (Ppc.engine ppc) in
  let server = Ppc.make_kernel_server ppc ~name:"null" () in
  let ep =
    Ppc.register_direct ppc ~server
      ~handler:(Ppc.Null_server.handler ~instr:12 ~stack_words:4 ())
  in
  Ppc.prime ppc ~ep ~cpus:(List.init cpus Fun.id);
  let prog = Kernel.new_program kern ~name:"client" in
  let space = Kernel.new_user_space kern ~name:"client" ~node:0 in
  let calls = 32 in
  let t0 = ref Sim.Time.zero and t1 = ref Sim.Time.zero in
  let total_cycles () =
    List.fold_left
      (fun acc cpu -> acc + Machine.Cpu.cycles cpu)
      0
      (Machine.cpus (Kernel.machine kern))
  in
  let c0 = ref 0 and c1 = ref 0 in
  ignore
    (Kernel.spawn kern ~cpu:0 ~name:"client" ~kind:Kernel.Process.Client
       ~program:prog ~space (fun self ->
         for _ = 1 to 4 do
           ignore
             (Ppc.Remote_call.call remote ~client:self ~target_cpu
                ~ep_id:(Ppc.Entry_point.id ep) (Ppc.Reg_args.make ()))
         done;
         t0 := Kernel.now kern;
         c0 := total_cycles ();
         for _ = 1 to calls do
           ignore
             (Ppc.Remote_call.call remote ~client:self ~target_cpu
                ~ep_id:(Ppc.Entry_point.id ep) (Ppc.Reg_args.make ()))
         done;
         t1 := Kernel.now kern;
         c1 := total_cycles ()));
  Kernel.run kern;
  let params = Machine.params (Kernel.machine kern) in
  ( Sim.Time.to_us (Sim.Time.sub !t1 !t0) /. float_of_int calls,
    Machine.Cost_params.cycles_to_us params (!c1 - !c0) /. float_of_int calls )

let run ?(cpus = 8) () =
  let local_us, local_busy_us = measure ~target_cpu:0 ~cpus in
  let remote_us, remote_busy_us = measure ~target_cpu:(cpus / 2) ~cpus in
  { local_us; remote_us; local_busy_us; remote_busy_us; hops = cpus / 2 }

let pp_result ppf r =
  Fmt.pf ppf "E1 — cross-processor PPC variant (Section 4.3 future work)@.";
  Fmt.pf ppf "  local call:  %7.1f us wall  %7.1f us CPU@." r.local_us
    r.local_busy_us;
  Fmt.pf ppf "  remote call: %7.1f us wall  %7.1f us CPU  (%.1fx CPU, %d hops)@."
    r.remote_us r.remote_busy_us
    (r.remote_busy_us /. r.local_busy_us)
    r.hops
