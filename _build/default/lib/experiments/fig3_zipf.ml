(* F3b: between the two Figure-3 extremes.

   Figure 3 shows the endpoints — every client on its own file (linear)
   and every client on one file (saturating).  Realistic workloads sit in
   between: here clients pick among [files] with Zipf-distributed
   popularity, sweeping the skew parameter theta.  theta = 0 approaches
   the different-files curve; large theta approaches single-file. *)

type point = { theta : float; throughput : float }

let run_theta ~cpus ~files ~horizon ~theta =
  let kern = Kernel.create ~cpus () in
  let ppc = Ppc.create kern in
  let bob, ep = Servers.File_server.install ppc in
  Ppc.prime ppc ~ep ~cpus:(List.init cpus Fun.id);
  for i = 0 to files - 1 do
    ignore
      (Servers.File_server.create_file bob ~file_id:i ~length:100
         ~node:(i mod cpus))
  done;
  (* One sampler per client, deterministic per seed. *)
  let samplers =
    Array.init cpus (fun i ->
        Workload.Zipf.create ~n:files ~theta
          ~rng:(Sim.Rng.create ~seed:(100 + i)))
  in
  let counters =
    Workload.Driver.run kern
      ~specs:(Workload.Driver.one_per_cpu ~n:cpus ~name_prefix:"client" ())
      ~horizon ~seed:13
      ~prepare:(fun ~program ~index:_ ->
        Naming.Auth.grant (Servers.File_server.auth bob)
          ~program:(Kernel.Program.id program)
          ~perms:[ Naming.Auth.Read ])
      ~body:(fun ~client ~iteration:_ ->
        let file_id =
          Workload.Zipf.sample samplers.(Kernel.Process.cpu_index client)
        in
        match Servers.File_server.get_length bob ~client ~file_id with
        | Ok _ -> ()
        | Error rc -> Fmt.failwith "GetLength failed rc=%d" rc)
  in
  Kernel.run kern;
  Workload.Driver.throughput_per_sec counters

let run ?(cpus = 8) ?(files = 8) ?(horizon = Sim.Time.ms 50)
    ?(thetas = [ 0.0; 0.5; 0.9; 1.2; 2.0; 4.0 ]) () =
  List.map
    (fun theta ->
      { theta; throughput = run_theta ~cpus ~files ~horizon ~theta })
    thetas

let pp_result ppf points =
  Fmt.pf ppf
    "F3b — Zipf file popularity between the Figure-3 extremes (8 CPUs, 8 \
     files)@.";
  List.iter
    (fun p ->
      Fmt.pf ppf "  theta %4.1f   %9.0f calls/s@." p.theta p.throughput)
    points;
  Fmt.pf ppf
    "  (theta 0 ~ different-files linear; large theta ~ single-file \
     saturation)@."
