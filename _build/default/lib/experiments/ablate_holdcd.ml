(* Ablation A1: hold-CD vs recycled CDs under multi-server call mixes.

   Section 2: letting workers permanently hold a CD and stack makes
   individual calls faster "in the best case", but "removes the
   advantages of sharing stacks, and may ultimately result in overall
   lower performance" because successively called servers no longer share
   a warm physical stack and the cache footprint grows.

   One client interleaves calls round-robin across K servers under
   cache pressure (a working set touched between calls, standing for the
   client's real computation).  Reported: mean round-trip microseconds
   per call for both modes at each K. *)

type point = {
  servers : int;
  hold_us : float;
  recycle_us : float;
}

let run_mode ~servers ~hold_cd ~calls ~pressure_bytes =
  let kern = Kernel.create ~cpus:1 () in
  let ppc = Ppc.create kern in
  let eps =
    List.init servers (fun i ->
        let server =
          Ppc.make_user_server ppc
            ~name:(Printf.sprintf "srv%d" i)
            ~hold_cd ()
        in
        let ep =
          Ppc.register_direct ppc ~server
            ~handler:(Ppc.Null_server.handler ~instr:20 ~stack_words:24 ())
        in
        Ppc.prime ppc ~ep ~cpus:[ 0 ];
        Ppc.Entry_point.id ep)
  in
  let ep_array = Array.of_list eps in
  let prog = Kernel.new_program kern ~name:"client" in
  let space = Kernel.new_user_space kern ~name:"client" ~node:0 in
  (* Cache pressure: a client working set touched between calls. *)
  let pressure_addr = Kernel.alloc kern ~bytes:pressure_bytes ~node:0 in
  let cpu = Machine.cpu (Kernel.machine kern) 0 in
  let t0 = ref 0.0 and t1 = ref 0.0 in
  ignore
    (Kernel.spawn kern ~cpu:0 ~name:"client" ~kind:Kernel.Process.Client
       ~program:prog ~space (fun self ->
         (* Warm everything once. *)
         Array.iter
           (fun ep_id ->
             ignore (Ppc.call ppc ~client:self ~ep_id (Ppc.Reg_args.make ())))
           ep_array;
         t0 := Machine.Cpu.elapsed_us cpu;
         for i = 0 to calls - 1 do
           let ep_id = ep_array.(i mod servers) in
           ignore (Ppc.call ppc ~client:self ~ep_id (Ppc.Reg_args.make ()));
           (* Touch the working set: evicts cold stacks, not hot ones. *)
           let lines = pressure_bytes / 16 in
           for l = 0 to (lines / 4) - 1 do
             Machine.Cpu.load cpu (pressure_addr + (l * 64))
           done;
           Kernel.Kcpu.sync (Kernel.kcpu kern 0)
         done;
         t1 := Machine.Cpu.elapsed_us cpu));
  Kernel.run kern;
  (!t1 -. !t0) /. float_of_int calls

let run ?(calls = 200) ?(pressure_bytes = 8192) ?(server_counts = [ 1; 2; 4; 8; 12 ]) () =
  List.map
    (fun servers ->
      {
        servers;
        hold_us = run_mode ~servers ~hold_cd:true ~calls ~pressure_bytes;
        recycle_us = run_mode ~servers ~hold_cd:false ~calls ~pressure_bytes;
      })
    server_counts

let pp_result ppf points =
  Fmt.pf ppf
    "A1 — hold-CD vs recycled stacks (mean us/call incl. client work)@.";
  List.iter
    (fun p ->
      Fmt.pf ppf "  %2d server%s  hold-CD %7.2f us   recycled %7.2f us   %s@."
        p.servers
        (if p.servers = 1 then " " else "s")
        p.hold_us p.recycle_us
        (if p.hold_us <= p.recycle_us then "hold wins" else "recycle wins"))
    points
