(* Ablation A8: three ways to run an old message-passing service.

   - the legacy facility itself (shared locked port, full switches);
   - the Section-5 compatibility layer (same port API, PPC transport);
   - a native PPC port of the server (the handler runs in a worker).

   The compat layer keeps unported servers working; the measurement shows
   why the paper then ported "most of the servers" to native PPC — each
   compat round trip is three PPCs (send, receive, reply), so it is
   convenience, not speed. *)

type result = {
  native_msg_us : float;
  compat_us : float;
  native_ppc_us : float;
}

let measured_calls = 48

(* Client+server on one CPU, measuring steady-state round trips on the
   client CPU's clock. *)
let measure_loop kern ~warmup ~body =
  let cpu = Machine.cpu (Kernel.machine kern) 0 in
  let out = ref Float.nan in
  let prog = Kernel.new_program kern ~name:"client" in
  let space = Kernel.new_user_space kern ~name:"client" ~node:0 in
  ignore
    (Kernel.spawn kern ~cpu:0 ~name:"client" ~kind:Kernel.Process.Client
       ~program:prog ~space (fun self ->
         for _ = 1 to warmup do
           body self
         done;
         let t0 = Machine.Cpu.elapsed_us cpu in
         for _ = 1 to measured_calls do
           body self
         done;
         out := (Machine.Cpu.elapsed_us cpu -. t0) /. float_of_int measured_calls));
  Kernel.run kern;
  !out

let run_native_msg () =
  let kern = Kernel.create ~cpus:1 () in
  let msg =
    Kernel.Msg_ipc.create ~engine:(Kernel.engine kern)
      ~kcpu_of:(Kernel.kcpu kern)
      ~alloc:(fun ~bytes ~node -> Kernel.alloc kern ~bytes ~node)
      ()
  in
  let port =
    Kernel.Msg_ipc.make_port ~name:"legacy" ~node:0 ~alloc:(fun ~bytes ~node ->
        Kernel.alloc kern ~bytes ~node)
  in
  let sprog = Kernel.new_program kern ~name:"server" in
  let sspace = Kernel.new_user_space kern ~name:"server" ~node:0 in
  ignore
    (Kernel.spawn kern ~cpu:0 ~name:"server" ~kind:Kernel.Process.Client
       ~program:sprog ~space:sspace (fun self ->
         Kernel.Msg_ipc.serve msg port ~server:self (fun args -> args)));
  measure_loop kern ~warmup:8 ~body:(fun self ->
      ignore (Kernel.Msg_ipc.send msg port ~client:self [| 1; 2; 3 |]))

let run_compat () =
  let kern = Kernel.create ~cpus:1 () in
  let ppc = Ppc.create kern in
  let port = Ppc.Msg_compat.make_port (Ppc.engine ppc) ~name:"compat" in
  let sprog = Kernel.new_program kern ~name:"server" in
  let sspace = Kernel.new_user_space kern ~name:"server" ~node:0 in
  ignore
    (Kernel.spawn kern ~cpu:0 ~name:"server" ~kind:Kernel.Process.Client
       ~program:sprog ~space:sspace (fun self ->
         Ppc.Msg_compat.serve (Ppc.engine ppc) port ~server:self (fun p -> p)));
  measure_loop kern ~warmup:8 ~body:(fun self ->
      match
        Ppc.Msg_compat.send (Ppc.engine ppc) port ~client:self [| 1; 2; 3 |]
      with
      | Ok _ -> ()
      | Error rc -> Fmt.failwith "compat send failed rc=%d" rc)

let run_native_ppc () =
  let kern = Kernel.create ~cpus:1 () in
  let ppc = Ppc.create kern in
  let server = Ppc.make_user_server ppc ~name:"ported" () in
  let ep =
    Ppc.register_direct ppc ~server
      ~handler:(Ppc.Null_server.handler ~instr:12 ~stack_words:4 ())
  in
  Ppc.prime ppc ~ep ~cpus:[ 0 ];
  measure_loop kern ~warmup:8 ~body:(fun self ->
      ignore
        (Ppc.call ppc ~client:self ~ep_id:(Ppc.Entry_point.id ep)
           (Ppc.Reg_args.make ())))

let run () =
  {
    native_msg_us = run_native_msg ();
    compat_us = run_compat ();
    native_ppc_us = run_native_ppc ();
  }

let pp_result ppf r =
  Fmt.pf ppf "A8 — legacy message service, three transports (us/round trip)@.";
  Fmt.pf ppf "  legacy message facility:    %6.1f us@." r.native_msg_us;
  Fmt.pf ppf "  compat layer on PPC:        %6.1f us (3 PPCs per trip)@."
    r.compat_us;
  Fmt.pf ppf "  server ported to native PPC:%6.1f us (%.1fx vs legacy)@."
    r.native_ppc_us
    (r.native_msg_us /. r.native_ppc_us)
