(* A complete client/server scenario around Bob, the file server: naming,
   authentication, per-CPU clients, and the two Figure-3 sharing regimes.

     dune exec examples/file_service.exe *)

let cpus = 4
let horizon = Sim.Time.ms 20

let run_regime ~label ~pick_file ~create_files =
  let kern = Kernel.create ~cpus () in
  let ppc = Ppc.create kern in
  let ns = Naming.Name_server.install ppc in
  let bob, ep = Servers.File_server.install ppc in
  Ppc.prime ppc ~ep ~cpus:(List.init cpus Fun.id);
  create_files bob;

  (* Bob publishes himself in the Name Server (a PPC to EP 0), from a
     management process. *)
  let mgmt_prog = Kernel.new_program kern ~name:"bob-mgmt" in
  let mgmt_space = Kernel.new_user_space kern ~name:"bob-mgmt" ~node:0 in
  ignore
    (Kernel.spawn kern ~cpu:0 ~name:"bob-registrar" ~kind:Kernel.Process.Client
       ~program:mgmt_prog ~space:mgmt_space (fun self ->
         let rc =
           Naming.Name_server.register ns ~client:self ~name:"bob"
             ~ep_id:(Servers.File_server.ep_id bob)
         in
         assert (rc = Ppc.Reg_args.ok)));

  (* Closed-loop clients, one per CPU.  Each looks Bob up by name once,
     then hammers GetLength. *)
  let counters =
    Workload.Driver.run kern
      ~specs:(Workload.Driver.one_per_cpu ~n:cpus ~name_prefix:"client" ())
      ~horizon ~seed:11
      ~prepare:(fun ~program ~index:_ ->
        Naming.Auth.grant (Servers.File_server.auth bob)
          ~program:(Kernel.Program.id program)
          ~perms:[ Naming.Auth.Read ])
      ~body:(fun ~client ~iteration ->
        if iteration = 0 then begin
          match Naming.Name_server.lookup ns ~client ~name:"bob" with
          | Ok ep_id -> assert (ep_id = Servers.File_server.ep_id bob)
          | Error rc -> Fmt.failwith "name lookup failed rc=%d" rc
        end;
        let file_id = pick_file (Kernel.Process.cpu_index client) in
        match Servers.File_server.get_length bob ~client ~file_id with
        | Ok _len -> ()
        | Error rc -> Fmt.failwith "GetLength failed rc=%d" rc)
  in
  Kernel.run kern;
  let tput = Workload.Driver.throughput_per_sec counters in
  Fmt.pr "%-16s %8.0f calls/s over %d CPUs (%d calls, %d worker inits)@." label
    tput cpus
    (Workload.Driver.total counters)
    (Servers.File_server.worker_inits bob);
  (bob, tput)

let () =
  Fmt.pr "GetLength throughput, %d closed-loop clients:@.@." cpus;
  let _, diff =
    run_regime ~label:"different files"
      ~pick_file:(fun cpu -> cpu)
      ~create_files:(fun bob ->
        for i = 0 to cpus - 1 do
          ignore
            (Servers.File_server.create_file bob ~file_id:i ~length:(100 + i)
               ~node:i)
        done)
  in
  let bob, single =
    run_regime ~label:"single file"
      ~pick_file:(fun _ -> 0)
      ~create_files:(fun bob ->
        ignore (Servers.File_server.create_file bob ~file_id:0 ~length:4096 ~node:0))
  in
  (match Servers.File_server.find_file bob ~file_id:0 with
  | Some f ->
      Fmt.pr "@.single-file lock: %d acquisitions, %d contended, mean wait %.1f us@."
        (Kernel.Spinlock.acquisitions f.Servers.File_server.lock)
        (Kernel.Spinlock.contended_acquisitions f.Servers.File_server.lock)
        (Kernel.Spinlock.mean_wait_us f.Servers.File_server.lock)
  | None -> ());
  Fmt.pr
    "@.sharing one file costs %.1fx throughput — the paper's Figure 3 story.@."
    (diff /. single)
