(* A miniature boot: init brings up the system services, registers
   executables with the program manager, and spawns demand-paged worker
   programs across the machine; the workers find the counter server by
   name and hammer it.

     dune exec examples/boot.exe *)

let cpus = 4

let () =
  let kern = Kernel.create ~cpus () in
  let ppc = Ppc.create kern in
  let ns = Naming.Name_server.install ppc in
  let counter =
    Servers.Counter_server.install ppc ~mode:Servers.Counter_server.Sharded
  in
  let pm = Sysmgr.Program_manager.install ppc in

  (* The worker image: looks the counter up by name, then works. *)
  Sysmgr.Program_manager.register_exe pm
    {
      Sysmgr.Program_manager.exe_name = "worker";
      text_pages = 2;
      stack_pages = 1;
      body =
        (fun self vm ->
          let cpu =
            Machine.cpu (Kernel.machine kern) (Kernel.Process.cpu_index self)
          in
          (* Fault the text in (the pager fills it). *)
          Vm.read vm ~cpu ~proc:self ~vaddr:0x10_0000;
          match Naming.Name_server.lookup ns ~client:self ~name:"counter" with
          | Error rc -> Fmt.failwith "worker: lookup failed rc=%d" rc
          | Ok _ep ->
              for _ = 1 to 50 do
                ignore (Servers.Counter_server.increment counter ~client:self)
              done;
              Fmt.pr "[%a] worker on cpu%d done@." Sim.Time.pp (Kernel.now kern)
                (Kernel.Process.cpu_index self));
    };

  (* Init: publish services, then spawn one worker per remaining CPU. *)
  let init_prog = Kernel.new_program kern ~name:"init" in
  let init_space = Kernel.new_user_space kern ~name:"init" ~node:0 in
  Naming.Auth.grant
    (Sysmgr.Program_manager.auth pm)
    ~program:(Kernel.Program.id init_prog)
    ~perms:[ Naming.Auth.Admin ];
  ignore
    (Kernel.spawn kern ~cpu:0 ~name:"init" ~kind:Kernel.Process.Client
       ~program:init_prog ~space:init_space (fun self ->
         let rc =
           Naming.Name_server.register ns ~client:self ~name:"counter"
             ~ep_id:(Servers.Counter_server.ep_id counter)
         in
         assert (rc = Ppc.Reg_args.ok);
         Fmt.pr "[%a] init: services registered@." Sim.Time.pp (Kernel.now kern);
         for cpu = 1 to cpus - 1 do
           match
             Sysmgr.Program_manager.spawn pm ~client:self ~name:"worker"
               ~cpu_index:cpu
           with
           | Ok pid ->
               Fmt.pr "[%a] init: spawned worker pid=%d on cpu%d@." Sim.Time.pp
                 (Kernel.now kern) pid cpu
           | Error rc -> Fmt.failwith "init: spawn failed rc=%d" rc
         done));
  Kernel.run kern;
  Fmt.pr "@.counter total: %d (3 workers x 50); %d programs spawned@."
    (Servers.Counter_server.value counter)
    (Sysmgr.Program_manager.spawned pm)
