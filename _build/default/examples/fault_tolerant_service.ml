(* Service lifecycle management: worker initialization, on-line handler
   replacement (Exchange), soft-kill, hard-kill, and exception upcalls.

     dune exec examples/fault_tolerant_service.exe *)

let () =
  let kern = Kernel.create ~cpus:1 () in
  let ppc = Ppc.create kern in
  let es = Servers.Exception_server.install ppc in

  (* Version 1 of a service, with a worker-init routine (Section 4.5.3). *)
  let inits = ref 0 in
  let rec v1_init ctx args =
    incr inits;
    Machine.Cpu.instr ctx.Ppc.Call_ctx.cpu 200;
    ctx.Ppc.Call_ctx.swap_handler v1;
    v1 ctx args
  and v1 ctx args =
    Machine.Cpu.instr ctx.Ppc.Call_ctx.cpu 10;
    Ppc.Reg_args.set args 0 1;
    Ppc.Reg_args.set_rc args Ppc.Reg_args.ok
  in
  let v2 : Ppc.Call_ctx.handler =
   fun ctx args ->
    Machine.Cpu.instr ctx.Ppc.Call_ctx.cpu 10;
    Ppc.Reg_args.set args 0 2;
    Ppc.Reg_args.set_rc args Ppc.Reg_args.ok
  in

  let server = Ppc.make_user_server ppc ~name:"service" () in
  let ep = Ppc.register_direct ppc ~server ~handler:v1_init in
  Ppc.prime ppc ~ep ~cpus:[ 0 ];
  let ep_id = Ppc.Entry_point.id ep in

  let program = Kernel.new_program kern ~name:"admin" in
  let space = Kernel.new_user_space kern ~name:"admin" ~node:0 in
  ignore
    (Kernel.spawn kern ~cpu:0 ~name:"admin" ~kind:Kernel.Process.Client ~program
       ~space (fun self ->
         let call () =
           let args = Ppc.Reg_args.make () in
           let rc = Ppc.call ppc ~client:self ~ep_id args in
           (rc, Ppc.Reg_args.get args 0)
         in
         let rc, v = call () in
         Fmt.pr "call 1: rc=%d version=%d (worker inits so far: %d)@." rc v !inits;
         let rc, v = call () in
         Fmt.pr "call 2: rc=%d version=%d (init ran once: %b)@." rc v (!inits = 1);

         (* On-line replacement: same entry point ID, new handler. *)
         let rc = Ppc.Frank.exchange (Ppc.frank ppc) ~client:self ~ep_id ~handler:v2 in
         Fmt.pr "exchange: rc=%d@." rc;
         let rc, v = call () in
         Fmt.pr "call 3: rc=%d version=%d (upgraded in place)@." rc v;

         (* Something went wrong in the server: notify the exception
            server by upcall, then soft-kill the entry point. *)
         Servers.Exception_server.notify es ~cpu_index:0
           ~program:(Kernel.Program.id program) ~code:42 ~detail:7;
         let rc = Ppc.Frank.soft_kill (Ppc.frank ppc) ~client:self ~ep_id in
         Fmt.pr "soft-kill: rc=%d@." rc;
         let rc, _ = call () in
         (* With no calls in flight the soft-kill freed everything
            immediately, so the ID is simply gone. *)
         Fmt.pr "call 4 after kill: rc=%d (err_no_entry=%d)@." rc
           Ppc.Reg_args.err_no_entry));
  Kernel.run kern;
  List.iter
    (fun e ->
      Fmt.pr "exception event: program=%d code=%d detail=%d at %a@."
        e.Servers.Exception_server.program e.Servers.Exception_server.code
        e.Servers.Exception_server.detail Sim.Time.pp
        e.Servers.Exception_server.at)
    (Servers.Exception_server.events es);
  Fmt.pr "entry point gone: %b@." (Ppc.find_ep ppc ep_id = None)
