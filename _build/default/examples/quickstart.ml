(* Quickstart: boot a simulated 2-CPU machine, register a PPC server, and
   make calls from a client process.

     dune exec examples/quickstart.exe *)

let () =
  (* A kernel over a 2-CPU simulated Hector, with the PPC facility (and
     Frank, its resource manager) installed. *)
  let kern = Kernel.create ~cpus:2 () in
  let ppc = Ppc.create kern in

  (* A user-level server: its own program, address space, text/data. The
     handler receives the 8-word register block and mutates it in place —
     here, out[0] = in[0] + in[1]. *)
  let server = Ppc.make_user_server ppc ~name:"adder" () in
  let ep = Ppc.register_direct ppc ~server ~handler:Ppc.Null_server.adder in
  let ep_id = Ppc.Entry_point.id ep in

  (* Pre-populate the per-CPU worker pools (otherwise the first call on
     each CPU takes Frank's slow path — also fine, just slower). *)
  Ppc.prime ppc ~ep ~cpus:[ 0; 1 ];

  (* A client process on each CPU. *)
  for cpu = 0 to 1 do
    let program = Kernel.new_program kern ~name:(Printf.sprintf "client%d" cpu) in
    let space =
      Kernel.new_user_space kern ~name:(Printf.sprintf "client%d" cpu) ~node:cpu
    in
    ignore
      (Kernel.spawn kern ~cpu ~name:"client" ~kind:Kernel.Process.Client
         ~program ~space (fun self ->
           for i = 1 to 3 do
             let args = Ppc.Reg_args.of_list [ 10 * i; i ] in
             let rc = Ppc.call ppc ~client:self ~ep_id args in
             Fmt.pr "cpu%d call %d: %d + %d = %d (rc=%d) at %a@." cpu i (10 * i)
               i (Ppc.Reg_args.get args 0) rc Sim.Time.pp (Kernel.now kern)
           done))
  done;

  (* Drive the simulation to completion. *)
  Kernel.run kern;

  let stats = Ppc.stats ppc in
  Fmt.pr "@.%d synchronous calls, %d worker creations, final time %a@."
    stats.Ppc.Engine.sync_calls stats.Ppc.Engine.frank_worker_creations
    Sim.Time.pp (Kernel.now kern)
