(* Demand paging across the whole stack: a touch of an unmapped page
   becomes a page fault, the fault becomes a PPC to the user-level pager,
   the pager reads the backing store through the disk server (blocking
   its worker), the disk's completion interrupt is dispatched as another
   PPC, and the faulting program resumes.

     dune exec examples/demand_paging.exe *)

let base = 0x40_0000

let () =
  let kern = Kernel.create ~cpus:2 () in
  let ppc = Ppc.create kern in
  let disk =
    Servers.Disk.create kern ~owner_cpu:1 ~vector:9 ~latency:(Sim.Time.us 400)
  in
  let dev = Servers.Device_server.install ppc ~disk in
  let pager = Vm.Pager.install ~disk:dev ppc in
  let space = Kernel.new_user_space kern ~name:"app" ~node:0 in
  let vm = Vm.create ~ppc kern ~space ~node:0 in
  ignore
    (Vm.add_region vm ~base ~len:(4 * 4096)
       ~backing:(Vm.Paged { pager_ep = Vm.Pager.ep_id pager; tag = 1 })
       ~prot:Vm.Rw);
  ignore
    (Vm.add_region vm ~base:0x80_0000 ~len:4096 ~backing:Vm.Demand_zero
       ~prot:Vm.Rw);

  let program = Kernel.new_program kern ~name:"app" in
  ignore
    (Kernel.spawn kern ~cpu:0 ~name:"app" ~kind:Kernel.Process.Client ~program
       ~space (fun self ->
         let cpu = Machine.cpu (Kernel.machine kern) 0 in
         Fmt.pr "touching 4 disk-backed pages:@.";
         for p = 0 to 3 do
           let t0 = Kernel.now kern in
           Vm.read vm ~cpu ~proc:self ~vaddr:(base + (p * 4096));
           Fmt.pr "  page %d faulted in: %.0f us (disk-backed)@." p
             (Sim.Time.to_us (Sim.Time.sub (Kernel.now kern) t0))
         done;
         let t0 = Kernel.now kern in
         Vm.read vm ~cpu ~proc:self ~vaddr:(base + 128);
         Fmt.pr "warm re-touch:      %.2f us@."
           (Sim.Time.to_us (Sim.Time.sub (Kernel.now kern) t0));
         let t0 = Kernel.now kern in
         Vm.write vm ~cpu ~proc:self ~vaddr:0x80_0000;
         Fmt.pr "demand-zero fault:  %.0f us (no disk)@."
           (Sim.Time.to_us (Sim.Time.sub (Kernel.now kern) t0))));
  Kernel.run kern;
  Fmt.pr
    "@.vm: %d faults (%d via pager, %d disk fills, %d zero fills); disk \
     serviced %d@."
    (Vm.faults vm) (Vm.pager_calls vm)
    (Vm.Pager.disk_fills pager)
    (Vm.zero_fills vm)
    (Servers.Disk.serviced disk)
