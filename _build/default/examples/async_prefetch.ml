(* Asynchronous PPC in action: prefetching disk blocks while computing
   (the paper's Section 4.4 example).

     dune exec examples/async_prefetch.exe *)

let blocks = 8
let disk_latency = Sim.Time.us 500
let compute_per_block = Sim.Time.us 300

let setup () =
  let kern = Kernel.create ~cpus:2 () in
  let ppc = Ppc.create kern in
  let disk =
    Servers.Disk.create kern ~owner_cpu:1 ~vector:9 ~latency:disk_latency
  in
  let dev = Servers.Device_server.install ppc ~disk in
  (kern, dev)

let spawn_reader kern body =
  let program = Kernel.new_program kern ~name:"reader" in
  let space = Kernel.new_user_space kern ~name:"reader" ~node:0 in
  ignore
    (Kernel.spawn kern ~cpu:0 ~name:"reader" ~kind:Kernel.Process.Client
       ~program ~space body)

let () =
  Fmt.pr "%d blocks, %a disk latency, %a compute per block@.@." blocks
    Sim.Time.pp disk_latency Sim.Time.pp compute_per_block;

  (* Synchronous: read, compute, read, compute, ... *)
  let kern, dev = setup () in
  spawn_reader kern (fun self ->
      for b = 1 to blocks do
        (match Servers.Device_server.read_block dev ~client:self ~block:b with
        | Ok _ -> ()
        | Error rc -> Fmt.failwith "read failed rc=%d" rc);
        Sim.Engine.delay (Kernel.engine kern) compute_per_block
      done;
      Fmt.pr "synchronous:    finished at %a@." Sim.Time.pp (Kernel.now kern));
  Kernel.run kern;

  (* Asynchronous: prefetch everything, then compute while the disk
     streams; completions arrive as interrupt-dispatched PPCs. *)
  let kern, dev = setup () in
  spawn_reader kern (fun self ->
      let completed = ref 0 in
      for b = 1 to blocks do
        Servers.Device_server.prefetch_block dev ~client:self ~block:b
          ~on_complete:(fun _ ->
            incr completed;
            if !completed = blocks then
              Fmt.pr "async prefetch: last block at %a@." Sim.Time.pp
                (Kernel.now kern))
          ()
      done;
      Fmt.pr "async prefetch: all %d issued by %a@." blocks Sim.Time.pp
        (Kernel.now kern);
      for _ = 1 to blocks do
        Sim.Engine.delay (Kernel.engine kern) compute_per_block
      done;
      Fmt.pr "async prefetch: compute done at %a@." Sim.Time.pp (Kernel.now kern));
  Kernel.run kern
