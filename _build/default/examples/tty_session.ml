(* An interactive-looking session: a shell process reads lines from the
   console server (keystrokes arrive by interrupt), consults Bob the file
   server, and ships results through the CopyServer.

     dune exec examples/tty_session.exe *)

let () =
  let kern = Kernel.create ~cpus:2 () in
  let ppc = Ppc.create kern in
  let console = Servers.Console.install ppc ~owner_cpu:0 in
  let bob, bob_ep = Servers.File_server.install ppc in
  Ppc.prime ppc ~ep:bob_ep ~cpus:[ 0; 1 ];
  let cs = Transfer.Copy_server.install ppc in
  ignore (Servers.File_server.create_file bob ~file_id:1 ~length:1337 ~node:0);

  (* A user "typing" on the UART: two commands, 20 us per keystroke. *)
  Servers.Console.script_input console ~start:(Sim.Time.us 100) ~gap:20_000
    "stat 1\nquit\n";

  let program = Kernel.new_program kern ~name:"shell" in
  let space = Kernel.new_user_space kern ~name:"shell" ~node:1 in
  Naming.Auth.grant (Servers.File_server.auth bob)
    ~program:(Kernel.Program.id program)
    ~perms:[ Naming.Auth.Read ];
  (* The shell grants a peer (a pager, say) read access to its output
     region; the CopyServer enforces it. *)
  let out_region = Kernel.alloc kern ~bytes:4096 ~node:1 in
  let pager = Kernel.new_program kern ~name:"pager" in
  ignore
    (Transfer.Region.grant
       (Transfer.Copy_server.regions cs)
       ~owner:(Kernel.Program.id program)
       ~grantee:(Kernel.Program.id pager) ~base:out_region ~len:4096
       ~access:Transfer.Region.Read_only);

  ignore
    (Kernel.spawn kern ~cpu:1 ~name:"shell" ~kind:Kernel.Process.Client ~program
       ~space (fun self ->
         let running = ref true in
         while !running do
           match Servers.Console.read_line console ~client:self with
           | Error rc -> Fmt.failwith "console read failed rc=%d" rc
           | Ok "quit" ->
               Fmt.pr "[%a] shell: quit@." Sim.Time.pp (Kernel.now kern);
               running := false
           | Ok line ->
               Fmt.pr "[%a] shell: got %S@." Sim.Time.pp (Kernel.now kern) line;
               (match String.split_on_char ' ' line with
               | [ "stat"; n ] -> (
                   let file_id = int_of_string n in
                   match
                     Servers.File_server.get_length bob ~client:self ~file_id
                   with
                   | Ok len ->
                       Fmt.pr "[%a] shell: file %d length = %d@." Sim.Time.pp
                         (Kernel.now kern) file_id len;
                       ignore
                         (Servers.Console.write console ~client:self ~tag:file_id
                            ~len:16)
                   | Error rc ->
                       Fmt.pr "[%a] shell: stat failed rc=%d@." Sim.Time.pp
                         (Kernel.now kern) rc)
               | _ ->
                   Fmt.pr "[%a] shell: unknown command@." Sim.Time.pp
                     (Kernel.now kern))
         done));
  Kernel.run kern;
  Fmt.pr
    "@.console: %d chars in (echoed %d), %d chars out; finished at %a@."
    (Servers.Console.chars_received console)
    (Servers.Console.echoes console)
    (Servers.Console.chars_written console)
    Sim.Time.pp (Kernel.now kern)
