(* Watch the PPC fast path happen, event by event.

     dune exec examples/trace_a_call.exe *)

let () =
  let kern = Kernel.create ~cpus:1 () in
  let tr = Sim.Trace.create () in
  Sim.Engine.set_trace (Kernel.engine kern) (Some tr);
  let ppc = Ppc.create kern in
  let server = Ppc.make_user_server ppc ~name:"greeter" () in
  let ep = Ppc.register_direct ppc ~server ~handler:Ppc.Null_server.echo in
  Ppc.prime ppc ~ep ~cpus:[ 0 ];
  let program = Kernel.new_program kern ~name:"client" in
  let space = Kernel.new_user_space kern ~name:"client" ~node:0 in
  ignore
    (Kernel.spawn kern ~cpu:0 ~name:"client" ~kind:Kernel.Process.Client
       ~program ~space (fun self ->
         (* Warm up once so the traced call is the steady-state path. *)
         ignore
           (Ppc.call ppc ~client:self ~ep_id:(Ppc.Entry_point.id ep)
              (Ppc.Reg_args.make ()));
         Sim.Trace.clear tr;
         ignore
           (Ppc.call ppc ~client:self ~ep_id:(Ppc.Entry_point.id ep)
              (Ppc.Reg_args.make ()))));
  Kernel.run kern;
  Fmt.pr "One warm PPC round trip, as the scheduler and engine saw it:@.@.";
  Fmt.pr "%a" Sim.Trace.pp tr;
  Fmt.pr
    "@.Notice: exactly two hand-offs (client->worker, worker->client), no@.\
     ready-queue transit, no locks — the paper's fast path.@."
