(* Tests for the Hurricane kernel substrate: address spaces, processes,
   the per-CPU scheduler, spinlocks, interrupts, message IPC. *)

let spawn_client kern ~cpu ~name body =
  let program = Kernel.new_program kern ~name in
  let space = Kernel.new_user_space kern ~name ~node:cpu in
  Kernel.spawn kern ~cpu ~name ~kind:Kernel.Process.Client ~program ~space body

(* --- programs ---------------------------------------------------------- *)

let test_program_registry () =
  let reg = Kernel.Program.make_registry () in
  let a = Kernel.Program.register reg ~name:"a" in
  let b = Kernel.Program.register reg ~name:"b" in
  Alcotest.(check bool) "distinct ids" true
    (Kernel.Program.id a <> Kernel.Program.id b);
  Alcotest.(check (option string)) "find" (Some "a")
    (Option.map Kernel.Program.name (Kernel.Program.find reg (Kernel.Program.id a)));
  Alcotest.(check (option string)) "missing" None
    (Option.map Kernel.Program.name (Kernel.Program.find reg 999))

(* --- address spaces ---------------------------------------------------- *)

let test_address_space_mapping () =
  let kern = Kernel.create ~cpus:1 () in
  let space = Kernel.new_user_space kern ~name:"s" ~node:0 in
  let cpu = Machine.cpu (Kernel.machine kern) 0 in
  let frame = Kernel.alloc_page kern ~node:0 in
  Alcotest.(check bool) "unmapped" false
    (Kernel.Address_space.is_mapped space 0x40_0000);
  Kernel.Address_space.map cpu space ~vaddr:0x40_0000 ~frame;
  Alcotest.(check bool) "mapped" true
    (Kernel.Address_space.is_mapped space 0x40_0000);
  Alcotest.(check (option int)) "translate offset" (Some (frame + 0x123))
    (Kernel.Address_space.translate space 0x40_0123);
  Kernel.Address_space.unmap cpu space ~vaddr:0x40_0000;
  Alcotest.(check (option int)) "translate after unmap" None
    (Kernel.Address_space.translate space 0x40_0000)

let test_address_space_unmap_invalidates_tlb () =
  let kern = Kernel.create ~cpus:1 () in
  let space = Kernel.new_user_space kern ~name:"s" ~node:0 in
  let cpu = Machine.cpu (Kernel.machine kern) 0 in
  let frame = Kernel.alloc_page kern ~node:0 in
  Kernel.Address_space.map cpu space ~vaddr:0x40_0000 ~frame;
  ignore (Machine.Tlb.lookup (Machine.Cpu.tlb cpu) Machine.Tlb.User 0x40_0000);
  Alcotest.(check bool) "tlb has entry" true
    (Machine.Tlb.contains (Machine.Cpu.tlb cpu) Machine.Tlb.User 0x40_0000);
  Kernel.Address_space.unmap cpu space ~vaddr:0x40_0000;
  Alcotest.(check bool) "tlb entry invalidated" false
    (Machine.Tlb.contains (Machine.Cpu.tlb cpu) Machine.Tlb.User 0x40_0000)

let test_kernel_space_is_supervisor () =
  let kern = Kernel.create ~cpus:1 () in
  Alcotest.(check bool) "kernel space supervisor" true
    (Kernel.Address_space.space_of (Kernel.kernel_space kern)
    = Machine.Tlb.Supervisor)

(* --- process sleep/wake ------------------------------------------------ *)

let test_process_prewake_absorbed () =
  let e = Sim.Engine.create () in
  let reg = Kernel.Program.make_registry () in
  let prog = Kernel.Program.register reg ~name:"p" in
  let space =
    Kernel.Address_space.create ~kind:Kernel.Address_space.User ~name:"s"
      ~pte_base:0 ~page_bytes:4096
  in
  let p =
    Kernel.Process.create ~name:"p" ~kind:Kernel.Process.Client ~program:prog
      ~space ~cpu_index:0
  in
  let passed = ref false in
  (* Wake before the sleep point: the pre-wake flag must absorb it. *)
  Kernel.Process.wake p;
  Sim.Engine.spawn e (fun () ->
      Kernel.Process.sleep e p;
      passed := true);
  Sim.Engine.run e;
  Alcotest.(check bool) "prewake absorbed" true !passed

(* --- scheduler --------------------------------------------------------- *)

let test_scheduler_runs_in_ready_order () =
  let kern = Kernel.create ~cpus:1 () in
  let order = ref [] in
  for i = 1 to 3 do
    ignore
      (spawn_client kern ~cpu:0 ~name:(Printf.sprintf "c%d" i) (fun _ ->
           order := i :: !order))
  done;
  Kernel.run kern;
  Alcotest.(check (list int)) "fifo start order" [ 1; 2; 3 ] (List.rev !order)

let test_scheduler_block_ready () =
  let kern = Kernel.create ~cpus:1 () in
  let kc = Kernel.kcpu kern 0 in
  let trace = ref [] in
  let blocked = ref None in
  ignore
    (spawn_client kern ~cpu:0 ~name:"sleeper" (fun self ->
         trace := "sleeper-start" :: !trace;
         blocked := Some self;
         Kernel.Kcpu.block kc self;
         trace := "sleeper-woken" :: !trace));
  ignore
    (spawn_client kern ~cpu:0 ~name:"waker" (fun _ ->
         trace := "waker" :: !trace;
         Kernel.Kcpu.ready kc (Option.get !blocked)));
  Kernel.run kern;
  Alcotest.(check (list string)) "block then wake"
    [ "sleeper-start"; "waker"; "sleeper-woken" ]
    (List.rev !trace)

let test_scheduler_front_band_priority () =
  let kern = Kernel.create ~cpus:1 () in
  let kc = Kernel.kcpu kern 0 in
  let order = ref [] in
  (* Occupy the CPU, then enqueue one normal and one front process while
     it still runs; front must be dispatched first. *)
  let prog = Kernel.new_program kern ~name:"x" in
  let space = Kernel.new_user_space kern ~name:"x" ~node:0 in
  ignore
    (Kernel.spawn kern ~cpu:0 ~name:"hog" ~kind:Kernel.Process.Client
       ~program:prog ~space (fun self ->
         ignore
           (Kernel.spawn kern ~cpu:0 ~name:"normal" ~kind:Kernel.Process.Client
              ~program:prog ~space (fun _ -> order := "normal" :: !order));
         ignore
           (Kernel.spawn ~band:`Front kern ~cpu:0 ~name:"front"
              ~kind:Kernel.Process.Kernel_daemon ~program:prog ~space (fun _ ->
                order := "front" :: !order));
         Kernel.Kcpu.yield kc self;
         order := "hog" :: !order));
  Kernel.run kern;
  Alcotest.(check (list string)) "front band first"
    [ "front"; "normal"; "hog" ]
    (List.rev !order)

let test_scheduler_handoff_bypasses_queue () =
  let kern = Kernel.create ~cpus:1 () in
  let kc = Kernel.kcpu kern 0 in
  let order = ref [] in
  let prog = Kernel.new_program kern ~name:"x" in
  let space = Kernel.new_user_space kern ~name:"x" ~node:0 in
  (* A parked target... *)
  let target =
    Kernel.Process.create ~name:"target" ~kind:Kernel.Process.Worker
      ~program:prog ~space ~cpu_index:0
  in
  let caller_ref = ref None in
  Kernel.Kcpu.start_parked kc target (fun () ->
      order := "target" :: !order;
      Kernel.Kcpu.handoff_back kc ~from:target ~target:(Option.get !caller_ref));
  (* ...a competing ready process... *)
  ignore (spawn_client kern ~cpu:0 ~name:"compete" (fun _ ->
      order := "compete" :: !order));
  (* ...and a caller that hands off: the target must run before the
     queued competitor. *)
  ignore
    (spawn_client kern ~cpu:0 ~name:"caller" (fun self ->
         caller_ref := Some self;
         order := "caller" :: !order;
         Kernel.Kcpu.handoff_sleep kc ~from:self ~target;
         order := "caller-back" :: !order));
  Kernel.run kern;
  Alcotest.(check (list string)) "handoff order"
    [ "compete"; "caller"; "target"; "caller-back" ]
    (List.rev !order)

let test_scheduler_handoff_ready_requeues_caller () =
  let kern = Kernel.create ~cpus:1 () in
  let kc = Kernel.kcpu kern 0 in
  let order = ref [] in
  let prog = Kernel.new_program kern ~name:"x" in
  let space = Kernel.new_user_space kern ~name:"x" ~node:0 in
  let target =
    Kernel.Process.create ~name:"target" ~kind:Kernel.Process.Worker
      ~program:prog ~space ~cpu_index:0
  in
  Kernel.Kcpu.start_parked kc target (fun () ->
      order := "target-runs" :: !order;
      (* Async completion: park; the dispatcher picks the caller back up. *)
      Kernel.Kcpu.park kc target);
  ignore
    (spawn_client kern ~cpu:0 ~name:"caller" (fun self ->
         order := "caller-pre" :: !order;
         Kernel.Kcpu.handoff_ready kc ~from:self ~target;
         order := "caller-resumed" :: !order));
  Kernel.run kern;
  Alcotest.(check (list string)) "async handoff order"
    [ "caller-pre"; "target-runs"; "caller-resumed" ]
    (List.rev !order)

let test_scheduler_idle_accounting () =
  let kern = Kernel.create ~cpus:1 () in
  let kc = Kernel.kcpu kern 0 in
  ignore
    (spawn_client kern ~cpu:0 ~name:"c" (fun _ ->
         Machine.Cpu.instr (Kernel.Kcpu.cpu kc) 1000;
         Kernel.Kcpu.sync kc));
  (* Busy for 1000 cycles (60 us), then idle. *)
  Kernel.run ~until:(Sim.Time.us 120) kern;
  let util = Kernel.Kcpu.utilisation kc ~horizon:(Sim.Time.us 120) in
  Alcotest.(check bool)
    (Printf.sprintf "utilisation ~50%% (got %.2f)" util)
    true
    (util > 0.4 && util < 0.6)

(* --- spinlock ---------------------------------------------------------- *)

let test_spinlock_mutual_exclusion () =
  let kern = Kernel.create ~cpus:4 () in
  let lock =
    Kernel.Spinlock.create ~addr:(Kernel.alloc kern ~bytes:16 ~node:0) ()
  in
  let inside = ref 0 and max_inside = ref 0 and total = ref 0 in
  for cpu = 0 to 3 do
    ignore
      (spawn_client kern ~cpu ~name:(Printf.sprintf "c%d" cpu) (fun self ->
           let kc = Kernel.kcpu kern cpu in
           let mcpu = Kernel.Kcpu.cpu kc in
           let engine = Kernel.engine kern in
           for _ = 1 to 20 do
             Kernel.Spinlock.acquire engine mcpu self lock;
             incr inside;
             if !inside > !max_inside then max_inside := !inside;
             Machine.Cpu.instr mcpu 50;
             Kernel.Clock.sync engine mcpu;
             decr inside;
             incr total;
             Kernel.Spinlock.release engine mcpu self lock
           done))
  done;
  Kernel.run kern;
  Alcotest.(check int) "all critical sections ran" 80 !total;
  Alcotest.(check int) "never two holders" 1 !max_inside;
  Alcotest.(check int) "acquisitions" 80 (Kernel.Spinlock.acquisitions lock);
  Alcotest.(check bool) "some contention happened" true
    (Kernel.Spinlock.contended_acquisitions lock > 0)

let test_spinlock_release_by_nonholder_rejected () =
  let kern = Kernel.create ~cpus:1 () in
  let lock =
    Kernel.Spinlock.create ~addr:(Kernel.alloc kern ~bytes:16 ~node:0) ()
  in
  let failed = ref false in
  ignore
    (spawn_client kern ~cpu:0 ~name:"c" (fun self ->
         let kc = Kernel.kcpu kern 0 in
         let mcpu = Kernel.Kcpu.cpu kc in
         (try
            Kernel.Spinlock.release (Kernel.engine kern) mcpu self lock
          with Invalid_argument _ -> failed := true)));
  Kernel.run kern;
  Alcotest.(check bool) "release without acquire rejected" true !failed

(* --- interrupts -------------------------------------------------------- *)

let test_interrupt_delivery () =
  let kern = Kernel.create ~cpus:2 () in
  let fired = ref [] in
  Kernel.Interrupt.register (Kernel.interrupts kern) ~vector:5 ~name:"test"
    ~kcpu:(Kernel.kcpu kern 1)
    ~program:(Kernel.kernel_program kern)
    ~space:(Kernel.kernel_space kern)
    (fun _p -> fired := Kernel.now kern :: !fired);
  Kernel.Interrupt.raise_vector (Kernel.interrupts kern) ~vector:5;
  Kernel.Interrupt.raise_vector (Kernel.interrupts kern) ~vector:5;
  Kernel.run kern;
  Alcotest.(check int) "both delivered" 2 (List.length !fired);
  Alcotest.(check int) "raised counter" 2
    (Kernel.Interrupt.raised (Kernel.interrupts kern));
  (* Delivery latency: nothing fires at time zero. *)
  List.iter
    (fun t -> Alcotest.(check bool) "latency applied" true (t >= Sim.Time.us 2))
    !fired

let test_interrupt_unregistered_vector_rejected () =
  let kern = Kernel.create ~cpus:1 () in
  Alcotest.check_raises "unknown vector"
    (Invalid_argument "Interrupt.raise_vector: unregistered vector") (fun () ->
      Kernel.Interrupt.raise_vector (Kernel.interrupts kern) ~vector:77)

(* --- message IPC ------------------------------------------------------- *)

let make_msg kern =
  Kernel.Msg_ipc.create ~engine:(Kernel.engine kern)
    ~kcpu_of:(Kernel.kcpu kern)
    ~alloc:(fun ~bytes ~node -> Kernel.alloc kern ~bytes ~node)
    ()

let test_msg_round_trip () =
  let kern = Kernel.create ~cpus:1 () in
  let msg = make_msg kern in
  let port =
    Kernel.Msg_ipc.make_port ~name:"p" ~node:0 ~alloc:(fun ~bytes ~node ->
        Kernel.alloc kern ~bytes ~node)
  in
  ignore
    (spawn_client kern ~cpu:0 ~name:"server" (fun self ->
         Kernel.Msg_ipc.serve msg port ~server:self (fun args ->
             Array.map (fun x -> x * 2) args)));
  let result = ref [||] in
  ignore
    (spawn_client kern ~cpu:0 ~name:"client" (fun self ->
         result :=
           Kernel.Msg_ipc.send msg port ~client:self [| 1; 2; 3; 4; 5; 6; 7; 8 |]));
  Kernel.run kern;
  Alcotest.(check (array int)) "doubled" [| 2; 4; 6; 8; 10; 12; 14; 16 |] !result

let test_msg_multiple_clients () =
  let kern = Kernel.create ~cpus:2 () in
  let msg = make_msg kern in
  let port =
    Kernel.Msg_ipc.make_port ~name:"p" ~node:0 ~alloc:(fun ~bytes ~node ->
        Kernel.alloc kern ~bytes ~node)
  in
  ignore
    (spawn_client kern ~cpu:0 ~name:"server" (fun self ->
         Kernel.Msg_ipc.serve msg port ~server:self (fun args -> args)));
  let completed = ref 0 in
  for i = 0 to 1 do
    ignore
      (spawn_client kern ~cpu:1 ~name:(Printf.sprintf "client%d" i) (fun self ->
           for _ = 1 to 10 do
             ignore (Kernel.Msg_ipc.send msg port ~client:self [| i |])
           done;
           incr completed))
  done;
  Kernel.run kern;
  Alcotest.(check int) "both clients done" 2 !completed;
  Alcotest.(check int) "20 sends" 20 (Kernel.Msg_ipc.sends port)

let test_msg_oversized_rejected () =
  let kern = Kernel.create ~cpus:1 () in
  let msg = make_msg kern in
  let port =
    Kernel.Msg_ipc.make_port ~name:"p" ~node:0 ~alloc:(fun ~bytes ~node ->
        Kernel.alloc kern ~bytes ~node)
  in
  let raised = ref false in
  ignore
    (spawn_client kern ~cpu:0 ~name:"client" (fun self ->
         try ignore (Kernel.Msg_ipc.send msg port ~client:self (Array.make 9 0))
         with Invalid_argument _ -> raised := true));
  Kernel.run kern;
  Alcotest.(check bool) "9 words rejected" true !raised

let suites =
  [
    ( "kernel.program",
      [ Alcotest.test_case "registry" `Quick test_program_registry ] );
    ( "kernel.address_space",
      [
        Alcotest.test_case "map/translate/unmap" `Quick
          test_address_space_mapping;
        Alcotest.test_case "unmap invalidates TLB" `Quick
          test_address_space_unmap_invalidates_tlb;
        Alcotest.test_case "kernel space supervisor" `Quick
          test_kernel_space_is_supervisor;
      ] );
    ( "kernel.process",
      [ Alcotest.test_case "prewake absorbed" `Quick test_process_prewake_absorbed ]
    );
    ( "kernel.scheduler",
      [
        Alcotest.test_case "ready order" `Quick test_scheduler_runs_in_ready_order;
        Alcotest.test_case "block and ready" `Quick test_scheduler_block_ready;
        Alcotest.test_case "front band priority" `Quick
          test_scheduler_front_band_priority;
        Alcotest.test_case "handoff bypasses queue" `Quick
          test_scheduler_handoff_bypasses_queue;
        Alcotest.test_case "async handoff requeues caller" `Quick
          test_scheduler_handoff_ready_requeues_caller;
        Alcotest.test_case "idle accounting" `Quick test_scheduler_idle_accounting;
      ] );
    ( "kernel.spinlock",
      [
        Alcotest.test_case "mutual exclusion" `Quick test_spinlock_mutual_exclusion;
        Alcotest.test_case "non-holder release rejected" `Quick
          test_spinlock_release_by_nonholder_rejected;
      ] );
    ( "kernel.interrupt",
      [
        Alcotest.test_case "delivery with latency" `Quick test_interrupt_delivery;
        Alcotest.test_case "unknown vector rejected" `Quick
          test_interrupt_unregistered_vector_rejected;
      ] );
    ( "kernel.msg_ipc",
      [
        Alcotest.test_case "round trip" `Quick test_msg_round_trip;
        Alcotest.test_case "multiple clients" `Quick test_msg_multiple_clients;
        Alcotest.test_case "oversized rejected" `Quick test_msg_oversized_rejected;
      ] );
  ]

(* --- readers-writer spinlock -------------------------------------------- *)

let test_rwlock_readers_share () =
  let kern = Kernel.create ~cpus:4 () in
  let rw =
    Kernel.Rw_spinlock.create ~addr:(Kernel.alloc kern ~bytes:16 ~node:0) ()
  in
  let inside = ref 0 and max_inside = ref 0 in
  for cpu = 0 to 3 do
    ignore
      (spawn_client kern ~cpu ~name:(Printf.sprintf "r%d" cpu) (fun self ->
           let kc = Kernel.kcpu kern cpu in
           let mcpu = Kernel.Kcpu.cpu kc in
           let engine = Kernel.engine kern in
           for _ = 1 to 10 do
             Kernel.Rw_spinlock.acquire_read engine mcpu self rw;
             incr inside;
             if !inside > !max_inside then max_inside := !inside;
             Machine.Cpu.instr mcpu 200;
             Kernel.Clock.sync engine mcpu;
             decr inside;
             Kernel.Rw_spinlock.release_read engine mcpu self rw
           done))
  done;
  Kernel.run kern;
  Alcotest.(check int) "40 read acquisitions" 40
    (Kernel.Rw_spinlock.read_acquisitions rw);
  Alcotest.(check bool)
    (Printf.sprintf "readers overlapped (max %d inside)" !max_inside)
    true (!max_inside >= 2)

let test_rwlock_writer_excludes () =
  let kern = Kernel.create ~cpus:4 () in
  let rw =
    Kernel.Rw_spinlock.create ~addr:(Kernel.alloc kern ~bytes:16 ~node:0) ()
  in
  let readers_inside = ref 0 and writers_inside = ref 0 in
  let violations = ref 0 in
  for cpu = 0 to 2 do
    ignore
      (spawn_client kern ~cpu ~name:(Printf.sprintf "r%d" cpu) (fun self ->
           let kc = Kernel.kcpu kern cpu in
           let mcpu = Kernel.Kcpu.cpu kc in
           let engine = Kernel.engine kern in
           for _ = 1 to 15 do
             Kernel.Rw_spinlock.acquire_read engine mcpu self rw;
             incr readers_inside;
             if !writers_inside > 0 then incr violations;
             Machine.Cpu.instr mcpu 100;
             Kernel.Clock.sync engine mcpu;
             decr readers_inside;
             Kernel.Rw_spinlock.release_read engine mcpu self rw
           done))
  done;
  ignore
    (spawn_client kern ~cpu:3 ~name:"writer" (fun self ->
         let kc = Kernel.kcpu kern 3 in
         let mcpu = Kernel.Kcpu.cpu kc in
         let engine = Kernel.engine kern in
         for _ = 1 to 10 do
           Kernel.Rw_spinlock.acquire_write engine mcpu self rw;
           incr writers_inside;
           if !readers_inside > 0 || !writers_inside > 1 then incr violations;
           Machine.Cpu.instr mcpu 300;
           Kernel.Clock.sync engine mcpu;
           decr writers_inside;
           Kernel.Rw_spinlock.release_write engine mcpu self rw
         done));
  Kernel.run kern;
  Alcotest.(check int) "no exclusion violations" 0 !violations;
  Alcotest.(check int) "all writes happened" 10
    (Kernel.Rw_spinlock.write_acquisitions rw)

let test_rwlock_bogus_release_rejected () =
  let kern = Kernel.create ~cpus:1 () in
  let rw =
    Kernel.Rw_spinlock.create ~addr:(Kernel.alloc kern ~bytes:16 ~node:0) ()
  in
  let read_raised = ref false and write_raised = ref false in
  ignore
    (spawn_client kern ~cpu:0 ~name:"c" (fun self ->
         let kc = Kernel.kcpu kern 0 in
         let mcpu = Kernel.Kcpu.cpu kc in
         let engine = Kernel.engine kern in
         (try Kernel.Rw_spinlock.release_read engine mcpu self rw
          with Invalid_argument _ -> read_raised := true);
         (try Kernel.Rw_spinlock.release_write engine mcpu self rw
          with Invalid_argument _ -> write_raised := true)));
  Kernel.run kern;
  Alcotest.(check bool) "release_read without readers" true !read_raised;
  Alcotest.(check bool) "release_write by non-writer" true !write_raised

let rwlock_suite =
  ( "kernel.rw_spinlock",
    [
      Alcotest.test_case "readers share" `Quick test_rwlock_readers_share;
      Alcotest.test_case "writer excludes" `Quick test_rwlock_writer_excludes;
      Alcotest.test_case "bogus releases rejected" `Quick
        test_rwlock_bogus_release_rejected;
    ] )

let suites = suites @ [ rwlock_suite ]
