(* Tests for the servers: Bob the file server, the disk + device server,
   the exception server, and the counter server. *)

let spawn_client kern ~cpu ~name body =
  let program = Kernel.new_program kern ~name in
  let space = Kernel.new_user_space kern ~name ~node:cpu in
  Kernel.spawn kern ~cpu ~name ~kind:Kernel.Process.Client ~program ~space body

let grant_read bob program =
  Naming.Auth.grant (Servers.File_server.auth bob)
    ~program:(Kernel.Program.id program)
    ~perms:[ Naming.Auth.Read ]

(* --- file server -------------------------------------------------------- *)

let file_setup ?(cpus = 1) () =
  let kern = Kernel.create ~cpus () in
  let ppc = Ppc.create kern in
  let bob, ep = Servers.File_server.install ppc in
  Ppc.prime ppc ~ep ~cpus:(List.init cpus Fun.id);
  (kern, ppc, bob)

let test_get_set_length () =
  let kern, _ppc, bob = file_setup () in
  ignore (Servers.File_server.create_file bob ~file_id:7 ~length:123 ~node:0);
  let first = ref (Error 0) and second = ref (Error 0) in
  ignore
    (spawn_client kern ~cpu:0 ~name:"c" (fun self ->
         grant_read bob (Kernel.Process.program self);
         Naming.Auth.grant (Servers.File_server.auth bob)
           ~program:(Kernel.Program.id (Kernel.Process.program self))
           ~perms:[ Naming.Auth.Read; Naming.Auth.Write ];
         first := Servers.File_server.get_length bob ~client:self ~file_id:7;
         ignore (Servers.File_server.set_length bob ~client:self ~file_id:7 ~length:999);
         second := Servers.File_server.get_length bob ~client:self ~file_id:7));
  Kernel.run kern;
  Alcotest.(check bool) "initial length" true (!first = Ok 123);
  Alcotest.(check bool) "after set_length" true (!second = Ok 999)

let test_auth_denied_without_grant () =
  let kern, _ppc, bob = file_setup () in
  ignore (Servers.File_server.create_file bob ~file_id:1 ~length:10 ~node:0);
  let result = ref (Ok 0) in
  ignore
    (spawn_client kern ~cpu:0 ~name:"stranger" (fun self ->
         result := Servers.File_server.get_length bob ~client:self ~file_id:1));
  Kernel.run kern;
  Alcotest.(check bool) "denied" true (!result = Error Ppc.Reg_args.err_denied)

let test_missing_file () =
  let kern, _ppc, bob = file_setup () in
  let result = ref (Ok 0) in
  ignore
    (spawn_client kern ~cpu:0 ~name:"c" (fun self ->
         grant_read bob (Kernel.Process.program self);
         result := Servers.File_server.get_length bob ~client:self ~file_id:404));
  Kernel.run kern;
  Alcotest.(check bool) "bad request" true
    (!result = Error Ppc.Reg_args.err_bad_request)

let test_create_via_call_homes_locally () =
  let kern, _ppc, bob = file_setup ~cpus:2 () in
  ignore
    (spawn_client kern ~cpu:1 ~name:"creator" (fun self ->
         grant_read bob (Kernel.Process.program self);
         let rc =
           Servers.File_server.create_via_call bob ~client:self ~file_id:55
             ~length:10
         in
         Alcotest.(check int) "create ok" Ppc.Reg_args.ok rc));
  Kernel.run kern;
  match Servers.File_server.find_file bob ~file_id:55 with
  | None -> Alcotest.fail "file not created"
  | Some f ->
      Alcotest.(check int) "metadata homed on creator's CPU" 1
        f.Servers.File_server.home

let test_worker_init_once_per_worker () =
  let kern, _ppc, bob = file_setup () in
  ignore (Servers.File_server.create_file bob ~file_id:1 ~length:10 ~node:0);
  ignore
    (spawn_client kern ~cpu:0 ~name:"c" (fun self ->
         grant_read bob (Kernel.Process.program self);
         for _ = 1 to 20 do
           ignore (Servers.File_server.get_length bob ~client:self ~file_id:1)
         done));
  Kernel.run kern;
  Alcotest.(check int) "one worker init for 20 calls" 1
    (Servers.File_server.worker_inits bob);
  Alcotest.(check int) "20 GetLengths" 20 (Servers.File_server.get_length_calls bob)

let test_single_file_lock_contends () =
  let kern, _ppc, bob = file_setup ~cpus:4 () in
  ignore (Servers.File_server.create_file bob ~file_id:0 ~length:10 ~node:0);
  for cpu = 0 to 3 do
    ignore
      (spawn_client kern ~cpu ~name:(Printf.sprintf "c%d" cpu) (fun self ->
           grant_read bob (Kernel.Process.program self);
           for _ = 1 to 25 do
             ignore (Servers.File_server.get_length bob ~client:self ~file_id:0)
           done))
  done;
  Kernel.run kern;
  let file = Option.get (Servers.File_server.find_file bob ~file_id:0) in
  Alcotest.(check int) "100 acquisitions" 100
    (Kernel.Spinlock.acquisitions file.Servers.File_server.lock);
  Alcotest.(check bool) "lock was contended" true
    (Kernel.Spinlock.contended_acquisitions file.Servers.File_server.lock > 0)

let test_different_files_do_not_contend () =
  let kern, _ppc, bob = file_setup ~cpus:4 () in
  for i = 0 to 3 do
    ignore (Servers.File_server.create_file bob ~file_id:i ~length:10 ~node:i)
  done;
  for cpu = 0 to 3 do
    ignore
      (spawn_client kern ~cpu ~name:(Printf.sprintf "c%d" cpu) (fun self ->
           grant_read bob (Kernel.Process.program self);
           for _ = 1 to 25 do
             ignore (Servers.File_server.get_length bob ~client:self ~file_id:cpu)
           done))
  done;
  Kernel.run kern;
  for i = 0 to 3 do
    let file = Option.get (Servers.File_server.find_file bob ~file_id:i) in
    Alcotest.(check int)
      (Printf.sprintf "file %d uncontended" i)
      0
      (Kernel.Spinlock.contended_acquisitions file.Servers.File_server.lock)
  done

(* --- disk + device server ----------------------------------------------- *)

let dev_setup () =
  let kern = Kernel.create ~cpus:2 () in
  let ppc = Ppc.create kern in
  let disk =
    Servers.Disk.create kern ~owner_cpu:1 ~vector:9 ~latency:(Sim.Time.us 200)
  in
  let dev = Servers.Device_server.install ppc ~disk in
  (kern, disk, dev)

let test_read_block_completes () =
  let kern, disk, dev = dev_setup () in
  let result = ref (Error 0) in
  ignore
    (spawn_client kern ~cpu:0 ~name:"reader" (fun self ->
         result := Servers.Device_server.read_block dev ~client:self ~block:5));
  Kernel.run kern;
  (match !result with
  | Ok req_id -> Alcotest.(check bool) "request id positive" true (req_id > 0)
  | Error rc -> Alcotest.failf "read failed rc=%d" rc);
  Alcotest.(check int) "disk serviced one" 1 (Servers.Disk.serviced disk);
  Alcotest.(check int) "no outstanding" 0 (Servers.Device_server.outstanding dev);
  Alcotest.(check bool) "took at least the disk latency" true
    Sim.Time.(Sim.Time.us 200 <= Kernel.now kern)

let test_reads_queue_when_busy () =
  let kern, disk, dev = dev_setup () in
  let done_ = ref 0 in
  for i = 0 to 2 do
    ignore
      (spawn_client kern ~cpu:0 ~name:(Printf.sprintf "r%d" i) (fun self ->
           match Servers.Device_server.read_block dev ~client:self ~block:i with
           | Ok _ -> incr done_
           | Error rc -> Alcotest.failf "read failed rc=%d" rc))
  done;
  Kernel.run kern;
  Alcotest.(check int) "all reads completed" 3 !done_;
  Alcotest.(check int) "disk serviced all" 3 (Servers.Disk.serviced disk);
  (* Requests were serialised by the single disk: at least 3 latencies. *)
  Alcotest.(check bool) "serialised service" true
    Sim.Time.(Sim.Time.us 600 <= Kernel.now kern)

let test_prefetch_on_complete () =
  let kern, _disk, dev = dev_setup () in
  let fired = ref 0 in
  ignore
    (spawn_client kern ~cpu:0 ~name:"prefetcher" (fun self ->
         for b = 1 to 4 do
           Servers.Device_server.prefetch_block dev ~client:self ~block:b
             ~on_complete:(fun _ -> incr fired)
             ()
         done));
  Kernel.run kern;
  Alcotest.(check int) "all completions fired" 4 !fired

(* --- exception server ---------------------------------------------------- *)

let test_exception_upcall () =
  let kern = Kernel.create ~cpus:2 () in
  let ppc = Ppc.create kern in
  let es = Servers.Exception_server.install ppc in
  Servers.Exception_server.notify es ~cpu_index:1 ~program:42 ~code:11 ~detail:7;
  Servers.Exception_server.notify es ~cpu_index:0 ~program:42 ~code:12 ~detail:8;
  Kernel.run kern;
  Alcotest.(check int) "two events" 2 (Servers.Exception_server.delivered es);
  (* Upcalls land on different CPUs; completion order is timing-dependent,
     so compare the code set. *)
  let codes =
    List.sort Int.compare
      (List.map
         (fun e -> e.Servers.Exception_server.code)
         (Servers.Exception_server.events es))
  in
  Alcotest.(check (list int)) "both codes recorded" [ 11; 12 ] codes

(* --- counter server ------------------------------------------------------ *)

let test_counter_sharded () =
  let kern = Kernel.create ~cpus:3 () in
  let ppc = Ppc.create kern in
  let counter = Servers.Counter_server.install ppc ~mode:Servers.Counter_server.Sharded in
  let read_back = ref (Error 0) in
  for cpu = 0 to 2 do
    ignore
      (spawn_client kern ~cpu ~name:(Printf.sprintf "inc%d" cpu) (fun self ->
           for _ = 1 to 10 do
             ignore (Servers.Counter_server.increment counter ~client:self)
           done))
  done;
  ignore
    (spawn_client kern ~cpu:0 ~name:"reader" (fun self ->
         (* Runs after inc0 on cpu 0; other CPUs race ahead in sim time,
            so read at the end instead. *)
         ignore self));
  Kernel.run kern;
  Alcotest.(check int) "shards sum to total" 30
    (Servers.Counter_server.value counter);
  let kern2 = Kernel.create ~cpus:1 () in
  let ppc2 = Ppc.create kern2 in
  let c2 = Servers.Counter_server.install ppc2 ~mode:Servers.Counter_server.Sharded in
  ignore
    (spawn_client kern2 ~cpu:0 ~name:"rw" (fun self ->
         ignore (Servers.Counter_server.increment c2 ~client:self);
         ignore (Servers.Counter_server.increment c2 ~client:self);
         read_back := Servers.Counter_server.read c2 ~client:self));
  Kernel.run kern2;
  Alcotest.(check bool) "read gathers shards" true (!read_back = Ok 2)

let test_counter_global_lock () =
  let kern = Kernel.create ~cpus:2 () in
  let ppc = Ppc.create kern in
  let counter =
    Servers.Counter_server.install ppc ~mode:Servers.Counter_server.Global_lock
  in
  for cpu = 0 to 1 do
    ignore
      (spawn_client kern ~cpu ~name:(Printf.sprintf "inc%d" cpu) (fun self ->
           for _ = 1 to 15 do
             ignore (Servers.Counter_server.increment counter ~client:self)
           done))
  done;
  Kernel.run kern;
  Alcotest.(check int) "global count exact under contention" 30
    (Servers.Counter_server.value counter)

let suites =
  [
    ( "servers.file",
      [
        Alcotest.test_case "get/set length" `Quick test_get_set_length;
        Alcotest.test_case "auth enforced" `Quick test_auth_denied_without_grant;
        Alcotest.test_case "missing file" `Quick test_missing_file;
        Alcotest.test_case "create homes locally" `Quick
          test_create_via_call_homes_locally;
        Alcotest.test_case "worker init once" `Quick test_worker_init_once_per_worker;
        Alcotest.test_case "single file contends" `Quick
          test_single_file_lock_contends;
        Alcotest.test_case "different files don't" `Quick
          test_different_files_do_not_contend;
      ] );
    ( "servers.device",
      [
        Alcotest.test_case "read completes via interrupt PPC" `Quick
          test_read_block_completes;
        Alcotest.test_case "busy disk queues" `Quick test_reads_queue_when_busy;
        Alcotest.test_case "prefetch completions" `Quick test_prefetch_on_complete;
      ] );
    ( "servers.exception",
      [ Alcotest.test_case "upcall notifications" `Quick test_exception_upcall ] );
    ( "servers.counter",
      [
        Alcotest.test_case "sharded" `Quick test_counter_sharded;
        Alcotest.test_case "global lock exact" `Quick test_counter_global_lock;
      ] );
  ]

(* --- console server -------------------------------------------------------- *)

let test_console_read_line () =
  let kern = Kernel.create ~cpus:2 () in
  let ppc = Ppc.create kern in
  let console = Servers.Console.install ppc in
  Servers.Console.script_input console ~start:(Sim.Time.us 50) ~gap:10_000
    "hello\nworld\n";
  let got = ref [] in
  ignore
    (spawn_client kern ~cpu:1 ~name:"shell" (fun self ->
         for _ = 1 to 2 do
           match Servers.Console.read_line console ~client:self with
           | Ok line -> got := line :: !got
           | Error rc -> Alcotest.failf "read_line failed rc=%d" rc
         done));
  Kernel.run kern;
  Alcotest.(check (list string)) "lines in arrival order" [ "hello"; "world" ]
    (List.rev !got);
  Alcotest.(check int) "all chars received" 12
    (Servers.Console.chars_received console);
  Alcotest.(check int) "each char echoed" 12 (Servers.Console.echoes console);
  Alcotest.(check int) "no reader left behind" 0
    (Servers.Console.waiting_readers console)

let test_console_reader_blocks_until_newline () =
  let kern = Kernel.create ~cpus:1 () in
  let ppc = Ppc.create kern in
  let console = Servers.Console.install ppc in
  (* Characters but no newline: the reader must still be blocked when the
     simulation goes quiet. *)
  Servers.Console.script_input console ~start:(Sim.Time.us 10) ~gap:1_000 "abc";
  let completed = ref false in
  ignore
    (spawn_client kern ~cpu:0 ~name:"shell" (fun self ->
         ignore (Servers.Console.read_line console ~client:self);
         completed := true));
  Kernel.run kern;
  Alcotest.(check bool) "read has not completed" false !completed;
  Alcotest.(check int) "one blocked reader" 1
    (Servers.Console.waiting_readers console);
  (* Now the newline arrives. *)
  Servers.Console.inject_char console '\n';
  Kernel.run kern;
  Alcotest.(check bool) "read completed after newline" true !completed

let test_console_write_costs_per_char () =
  let kern = Kernel.create ~cpus:1 () in
  let ppc = Ppc.create kern in
  let console = Servers.Console.install ppc in
  let cpu = Machine.cpu (Kernel.machine kern) 0 in
  let short = ref 0 and long = ref 0 in
  ignore
    (spawn_client kern ~cpu:0 ~name:"writer" (fun self ->
         ignore (Servers.Console.write console ~client:self ~tag:0 ~len:4);
         let c0 = Machine.Cpu.cycles cpu in
         ignore (Servers.Console.write console ~client:self ~tag:1 ~len:4);
         short := Machine.Cpu.cycles cpu - c0;
         let c1 = Machine.Cpu.cycles cpu in
         ignore (Servers.Console.write console ~client:self ~tag:2 ~len:64);
         long := Machine.Cpu.cycles cpu - c1));
  Kernel.run kern;
  Alcotest.(check int) "chars written" 72 (Servers.Console.chars_written console);
  Alcotest.(check bool)
    (Printf.sprintf "64 chars cost more than 4 (%d vs %d)" !long !short)
    true
    (!long > !short + 500)

let console_suite =
  ( "servers.console",
    [
      Alcotest.test_case "scripted input read" `Quick test_console_read_line;
      Alcotest.test_case "reader blocks until newline" `Quick
        test_console_reader_blocks_until_newline;
      Alcotest.test_case "write costs per char" `Quick
        test_console_write_costs_per_char;
    ] )

let suites = suites @ [ console_suite ]

let test_handler_fault_reaches_exception_server () =
  let kern = Kernel.create ~cpus:1 () in
  let ppc = Ppc.create kern in
  let es = Servers.Exception_server.install ppc in
  Servers.Exception_server.attach_to_faults es;
  (* A buggy server: wild stack access under the Single_page policy. *)
  let server = Ppc.make_user_server ppc ~name:"buggy" () in
  let ep =
    Ppc.register_direct ppc ~server
      ~handler:(Ppc.Null_server.deep_handler ~pages:3 ())
  in
  Ppc.prime ppc ~ep ~cpus:[ 0 ];
  let rc = ref 0 in
  ignore
    (spawn_client kern ~cpu:0 ~name:"victim" (fun self ->
         rc :=
           Ppc.call ppc ~client:self ~ep_id:(Ppc.Entry_point.id ep)
             (Ppc.Reg_args.make ())));
  Kernel.run kern;
  Alcotest.(check int) "caller aborted" Ppc.Reg_args.err_killed !rc;
  Alcotest.(check int) "fault reported" 1 (Servers.Exception_server.delivered es);
  match Servers.Exception_server.events es with
  | [ e ] ->
      Alcotest.(check int) "code 1 = handler fault" 1
        e.Servers.Exception_server.code;
      Alcotest.(check int) "faulting ep recorded" (Ppc.Entry_point.id ep)
        e.Servers.Exception_server.detail
  | _ -> Alcotest.fail "expected exactly one event"

let fault_report_suite =
  ( "servers.exception_faults",
    [
      Alcotest.test_case "handler faults reach the exception server" `Quick
        test_handler_fault_reaches_exception_server;
    ] )

let suites = suites @ [ fault_report_suite ]

(* --- block cache -------------------------------------------------------- *)

let cache_setup ?(capacity = 4) () =
  let kern = Kernel.create ~cpus:2 () in
  let ppc = Ppc.create kern in
  let disk =
    Servers.Disk.create kern ~owner_cpu:1 ~vector:9 ~latency:(Sim.Time.us 250)
  in
  let dev = Servers.Device_server.install ppc ~disk in
  let cache = Servers.Block_cache.install ~capacity ppc ~dev in
  (kern, cache)

let test_block_cache_hit_after_miss () =
  let kern, cache = cache_setup () in
  let first = ref None and second = ref None in
  let t_miss = ref Sim.Time.zero and t_hit = ref Sim.Time.zero in
  ignore
    (spawn_client kern ~cpu:0 ~name:"reader" (fun self ->
         let t0 = Kernel.now kern in
         first := Some (Servers.Block_cache.get_block cache ~client:self ~block:7);
         t_miss := Sim.Time.sub (Kernel.now kern) t0;
         let t1 = Kernel.now kern in
         second := Some (Servers.Block_cache.get_block cache ~client:self ~block:7);
         t_hit := Sim.Time.sub (Kernel.now kern) t1));
  Kernel.run kern;
  (match (!first, !second) with
  | Some (Ok (buf1, hit1)), Some (Ok (buf2, hit2)) ->
      Alcotest.(check bool) "first was a miss" false hit1;
      Alcotest.(check bool) "second was a hit" true hit2;
      Alcotest.(check int) "same buffer" buf1 buf2
  | _ -> Alcotest.fail "calls failed");
  Alcotest.(check int) "one miss one hit" 1 (Servers.Block_cache.hits cache);
  Alcotest.(check bool)
    (Printf.sprintf "miss (%.0f us) dominated by disk; hit (%.0f us) fast"
       (Sim.Time.to_us !t_miss) (Sim.Time.to_us !t_hit))
    true
    (Sim.Time.to_us !t_miss > 250.0 && Sim.Time.to_us !t_hit < 60.0)

let test_block_cache_lru_eviction () =
  let kern, cache = cache_setup ~capacity:2 () in
  ignore
    (spawn_client kern ~cpu:0 ~name:"reader" (fun self ->
         let read b =
           ignore (Servers.Block_cache.get_block cache ~client:self ~block:b)
         in
         read 1;
         read 2;
         (* Touch 1 so 2 becomes LRU, then force an eviction. *)
         read 1;
         read 3;
         (* 1 must still be cached; 2 must have been evicted. *)
         read 1;
         read 2));
  Kernel.run kern;
  Alcotest.(check int) "one eviction at capacity, one refetch of 2" 2
    (Servers.Block_cache.evictions cache);
  Alcotest.(check int) "cache holds capacity" 2
    (Servers.Block_cache.cached_blocks cache);
  Alcotest.(check int) "misses: 1,2,3 and re-2" 4
    (Servers.Block_cache.misses cache)

let test_block_cache_concurrent_hits_share () =
  let kern, cache = cache_setup () in
  (* Warm block 5, then hammer it from two CPUs: hits take the read lock
     and never write-contend. *)
  ignore
    (spawn_client kern ~cpu:0 ~name:"warm" (fun self ->
         ignore (Servers.Block_cache.get_block cache ~client:self ~block:5)));
  Kernel.run kern;
  let done_ = ref 0 in
  for cpu = 0 to 1 do
    ignore
      (spawn_client kern ~cpu ~name:(Printf.sprintf "r%d" cpu) (fun self ->
           for _ = 1 to 20 do
             match Servers.Block_cache.get_block cache ~client:self ~block:5 with
             | Ok (_, true) -> ()
             | Ok (_, false) -> Alcotest.fail "unexpected miss"
             | Error rc -> Alcotest.failf "get_block failed rc=%d" rc
           done;
           incr done_))
  done;
  Kernel.run kern;
  Alcotest.(check int) "both clients done" 2 !done_;
  Alcotest.(check int) "40 hits" 41 (Servers.Block_cache.hits cache + 1)

let block_cache_suite =
  ( "servers.block_cache",
    [
      Alcotest.test_case "hit after miss" `Quick test_block_cache_hit_after_miss;
      Alcotest.test_case "LRU eviction" `Quick test_block_cache_lru_eviction;
      Alcotest.test_case "concurrent hits share" `Quick
        test_block_cache_concurrent_hits_share;
    ] )

let suites = suites @ [ block_cache_suite ]

(* Two CPUs miss the same block concurrently: the write-lock re-check
   prevents a double insert. *)
let test_block_cache_concurrent_miss_single_insert () =
  let kern, cache = cache_setup () in
  let results = ref [] in
  for cpu = 0 to 1 do
    ignore
      (spawn_client kern ~cpu ~name:(Printf.sprintf "m%d" cpu) (fun self ->
           match Servers.Block_cache.get_block cache ~client:self ~block:9 with
           | Ok (buf, _) -> results := buf :: !results
           | Error rc -> Alcotest.failf "get_block failed rc=%d" rc))
  done;
  Kernel.run kern;
  (match !results with
  | [ a; b ] -> Alcotest.(check int) "both got the same buffer" a b
  | _ -> Alcotest.fail "expected two results");
  Alcotest.(check int) "one cached entry" 1
    (Servers.Block_cache.cached_blocks cache);
  Alcotest.(check int) "no eviction" 0 (Servers.Block_cache.evictions cache)

let block_cache_race_suite =
  ( "servers.block_cache_race",
    [
      Alcotest.test_case "concurrent miss inserts once" `Quick
        test_block_cache_concurrent_miss_single_insert;
    ] )

let suites = suites @ [ block_cache_race_suite ]
