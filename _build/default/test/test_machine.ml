(* Tests for the Hector machine model: cache, TLB, NUMA, CPU micro-ops,
   memory layout, accounting. *)

let qcheck = QCheck_alcotest.to_alcotest
let params = Machine.Cost_params.hector

(* --- cost params ------------------------------------------------------- *)

let test_cycle_conversion () =
  Alcotest.(check (float 0.01)) "60 ns cycles" 59.99
    (Machine.Cost_params.cycle_ns params);
  (* 28 cycles = trap + rti ~ 1.68 us, the paper's ~1.7 us. *)
  Alcotest.(check (float 0.02)) "trap+rti in us" 1.68
    (Machine.Cost_params.cycles_to_us params
       (params.Machine.Cost_params.trap_cycles
      + params.Machine.Cost_params.rti_cycles))

let test_lines_of_bytes () =
  Alcotest.(check int) "one byte = one line" 1
    (Machine.Cost_params.lines_of_bytes params 1);
  Alcotest.(check int) "16 bytes = one line" 1
    (Machine.Cost_params.lines_of_bytes params 16);
  Alcotest.(check int) "17 bytes = two lines" 2
    (Machine.Cost_params.lines_of_bytes params 17)

(* --- cache ------------------------------------------------------------- *)

let test_cache_hit_miss () =
  let c = Machine.Cache.create params in
  Alcotest.(check int) "sets" 256 (Machine.Cache.n_sets c);
  let miss = Machine.Cache.access c Machine.Cache.Load 0x1000 in
  Alcotest.(check int) "load miss = fill" 20 miss;
  let hit = Machine.Cache.access c Machine.Cache.Load 0x1000 in
  Alcotest.(check int) "load hit" 1 hit;
  let hit2 = Machine.Cache.access c Machine.Cache.Load 0x100c in
  Alcotest.(check int) "same line hit" 1 hit2;
  Alcotest.(check int) "hits" 2 (Machine.Cache.hits c);
  Alcotest.(check int) "misses" 1 (Machine.Cache.misses c)

let test_cache_store_clean_penalty () =
  let c = Machine.Cache.create params in
  let first = Machine.Cache.access c Machine.Cache.Store 0x2000 in
  Alcotest.(check int) "store miss = fill + ownership" 30 first;
  let again = Machine.Cache.access c Machine.Cache.Store 0x2000 in
  Alcotest.(check int) "store to dirty line" 1 again;
  ignore (Machine.Cache.access c Machine.Cache.Load 0x3000);
  let clean_store = Machine.Cache.access c Machine.Cache.Store 0x3000 in
  Alcotest.(check int) "first store to clean resident line" 11 clean_store

let test_cache_associativity_no_thrash () =
  let c = Machine.Cache.create params in
  (* Four addresses mapping to the same set co-reside in a 4-way cache. *)
  let set_stride = 256 * 16 in
  let addrs = List.init 4 (fun i -> 0x8000 + (i * set_stride)) in
  List.iter (fun a -> ignore (Machine.Cache.access c Machine.Cache.Load a)) addrs;
  Machine.Cache.reset_counters c;
  List.iter (fun a -> ignore (Machine.Cache.access c Machine.Cache.Load a)) addrs;
  Alcotest.(check int) "4 ways: all hits" 4 (Machine.Cache.hits c);
  Alcotest.(check int) "no misses" 0 (Machine.Cache.misses c)

let test_cache_lru_eviction_and_writeback () =
  let c = Machine.Cache.create params in
  let set_stride = 256 * 16 in
  let addr i = 0x8000 + (i * set_stride) in
  (* Dirty the line that will become LRU. *)
  ignore (Machine.Cache.access c Machine.Cache.Store (addr 0));
  for i = 1 to 3 do
    ignore (Machine.Cache.access c Machine.Cache.Load (addr i))
  done;
  (* Fifth distinct line in the set evicts the dirty LRU: writeback. *)
  let cost = Machine.Cache.access c Machine.Cache.Load (addr 4) in
  Alcotest.(check int) "writeback + fill" 40 cost;
  Alcotest.(check int) "one writeback" 1 (Machine.Cache.writebacks c);
  Alcotest.(check bool) "victim gone" false (Machine.Cache.contains c (addr 0));
  Alcotest.(check bool) "recent survive" true (Machine.Cache.contains c (addr 3))

let test_cache_flush () =
  let c = Machine.Cache.create params in
  ignore (Machine.Cache.access c Machine.Cache.Store 0x4000);
  Alcotest.(check bool) "resident" true (Machine.Cache.contains c 0x4000);
  Machine.Cache.flush c;
  Alcotest.(check bool) "flushed" false (Machine.Cache.contains c 0x4000)

let test_cache_prime () =
  let c = Machine.Cache.create params in
  Machine.Cache.prime c ~addr:0x5000 ~bytes:256;
  Alcotest.(check int) "prime resets counters" 0 (Machine.Cache.misses c);
  Machine.Cache.reset_counters c;
  for i = 0 to 15 do
    ignore (Machine.Cache.access c Machine.Cache.Load (0x5000 + (16 * i)))
  done;
  Alcotest.(check int) "primed region all hits" 0 (Machine.Cache.misses c)

let prop_cache_contains_after_access =
  QCheck.Test.make ~name:"line resident after access" ~count:300
    QCheck.(pair (0 -- 0xFFFFF) bool)
    (fun (addr, store) ->
      let c = Machine.Cache.create params in
      let kind = if store then Machine.Cache.Store else Machine.Cache.Load in
      ignore (Machine.Cache.access c kind addr);
      Machine.Cache.contains c addr)

let prop_cache_counters_consistent =
  QCheck.Test.make ~name:"hits + misses = accesses" ~count:100
    QCheck.(list_of_size Gen.(1 -- 200) (0 -- 0xFFFF))
    (fun addrs ->
      let c = Machine.Cache.create params in
      List.iter
        (fun a -> ignore (Machine.Cache.access c Machine.Cache.Load a))
        addrs;
      Machine.Cache.hits c + Machine.Cache.misses c = List.length addrs)

(* --- tlb --------------------------------------------------------------- *)

let test_tlb_miss_then_hit () =
  let t = Machine.Tlb.create params in
  Alcotest.(check int) "miss cost" 27
    (Machine.Tlb.lookup t Machine.Tlb.User 0x10000);
  Alcotest.(check int) "hit cost" 0
    (Machine.Tlb.lookup t Machine.Tlb.User 0x10000);
  Alcotest.(check int) "same page other offset" 0
    (Machine.Tlb.lookup t Machine.Tlb.User 0x10FFC)

let test_tlb_contexts_independent () =
  let t = Machine.Tlb.create params in
  ignore (Machine.Tlb.lookup t Machine.Tlb.User 0x10000);
  ignore (Machine.Tlb.lookup t Machine.Tlb.Supervisor 0x10000);
  Machine.Tlb.flush_user t;
  Alcotest.(check bool) "user flushed" false
    (Machine.Tlb.contains t Machine.Tlb.User 0x10000);
  Alcotest.(check bool) "supervisor survives" true
    (Machine.Tlb.contains t Machine.Tlb.Supervisor 0x10000)

let test_tlb_capacity_fifo () =
  let t = Machine.Tlb.create params in
  let cap = params.Machine.Cost_params.tlb_entries in
  for i = 0 to cap do
    ignore (Machine.Tlb.lookup t Machine.Tlb.User (i * 4096))
  done;
  Alcotest.(check bool) "oldest evicted" false
    (Machine.Tlb.contains t Machine.Tlb.User 0);
  Alcotest.(check bool) "newest present" true
    (Machine.Tlb.contains t Machine.Tlb.User (cap * 4096))

let test_tlb_invalidate () =
  let t = Machine.Tlb.create params in
  ignore (Machine.Tlb.lookup t Machine.Tlb.Supervisor 0x20000);
  Machine.Tlb.invalidate t Machine.Tlb.Supervisor 0x20000;
  Alcotest.(check bool) "invalidated" false
    (Machine.Tlb.contains t Machine.Tlb.Supervisor 0x20000);
  (* Re-inserting after invalidate must still respect capacity. *)
  Alcotest.(check int) "miss again" 27
    (Machine.Tlb.lookup t Machine.Tlb.Supervisor 0x20000)

let test_tlb_preload_free () =
  let t = Machine.Tlb.create params in
  Machine.Tlb.preload t Machine.Tlb.User 0x30000;
  Alcotest.(check int) "preloaded page hits" 0
    (Machine.Tlb.lookup t Machine.Tlb.User 0x30000);
  Alcotest.(check int) "no misses counted" 0 (Machine.Tlb.misses t)

(* --- numa -------------------------------------------------------------- *)

let test_numa_distance_ring () =
  let n = Machine.Numa.create params ~stations:16 in
  Alcotest.(check int) "self" 0 (Machine.Numa.distance n 3 3);
  Alcotest.(check int) "adjacent" 1 (Machine.Numa.distance n 3 4);
  Alcotest.(check int) "wraparound" 1 (Machine.Numa.distance n 0 15);
  Alcotest.(check int) "farthest" 8 (Machine.Numa.distance n 0 8)

let prop_numa_distance_symmetric =
  QCheck.Test.make ~name:"ring distance symmetric" ~count:200
    QCheck.(pair (0 -- 15) (0 -- 15))
    (fun (a, b) ->
      let n = Machine.Numa.create params ~stations:16 in
      Machine.Numa.distance n a b = Machine.Numa.distance n b a)

let test_numa_homing () =
  let n = Machine.Numa.create params ~stations:4 in
  Machine.Numa.register n ~base:0x1000 ~bytes:256 ~node:2;
  Alcotest.(check int) "inside region" 2 (Machine.Numa.home_of n 0x1080);
  Alcotest.(check int) "outside defaults" 0 (Machine.Numa.home_of n 0x9000);
  Alcotest.(check int) "local access no extra" 0
    (Machine.Numa.extra_cycles n ~from:2 ~addr:0x1080);
  let remote = Machine.Numa.extra_cycles n ~from:0 ~addr:0x1080 in
  Alcotest.(check int) "remote pays base + hops" (4 + (2 * 3)) remote

(* --- mem layout -------------------------------------------------------- *)

let prop_layout_no_overlap =
  QCheck.Test.make ~name:"allocations never overlap" ~count:50
    QCheck.(list_of_size Gen.(2 -- 30) (1 -- 4096))
    (fun sizes ->
      let numa = Machine.Numa.create params ~stations:2 in
      let l = Machine.Mem_layout.create params numa in
      let regions =
        List.map
          (fun bytes -> (Machine.Mem_layout.alloc l ~bytes ~node:0, bytes))
          sizes
      in
      let rec disjoint = function
        | [] -> true
        | (base, bytes) :: rest ->
            List.for_all
              (fun (b2, s2) -> base + bytes <= b2 || b2 + s2 <= base)
              rest
            && disjoint rest
      in
      disjoint regions)

let test_layout_alignment () =
  let numa = Machine.Numa.create params ~stations:1 in
  let l = Machine.Mem_layout.create params numa in
  let a = Machine.Mem_layout.alloc l ~bytes:10 ~node:0 in
  Alcotest.(check int) "line aligned" 0 (a mod 16);
  let p = Machine.Mem_layout.alloc ~align:`Page l ~bytes:10 ~node:0 in
  Alcotest.(check int) "page aligned" 0 (p mod 4096)

(* --- account ----------------------------------------------------------- *)

let test_account_charge_and_diff () =
  let a = Machine.Account.create () in
  Machine.Account.charge a Machine.Account.Tlb_setup 10;
  Machine.Account.charge a Machine.Account.Server_time 5;
  Alcotest.(check int) "total" 15 (Machine.Account.total a);
  let before = Machine.Account.snapshot a in
  Machine.Account.charge a Machine.Account.Server_time 7;
  let d = Machine.Account.diff ~before ~after:(Machine.Account.snapshot a) in
  Alcotest.(check int) "diff isolates new charges" 7
    (Machine.Account.get d Machine.Account.Server_time);
  Alcotest.(check int) "untouched category zero" 0
    (Machine.Account.get d Machine.Account.Tlb_setup)

let test_account_negative_rejected () =
  let a = Machine.Account.create () in
  Alcotest.check_raises "negative charge"
    (Invalid_argument "Account.charge: negative cycles") (fun () ->
      Machine.Account.charge a Machine.Account.Unaccounted (-1))

(* --- cpu --------------------------------------------------------------- *)

let make_cpu () =
  let numa = Machine.Numa.create params ~stations:2 in
  Machine.Cpu.create ~node:0 params numa

let test_cpu_category_attribution () =
  let cpu = make_cpu () in
  Machine.Cpu.with_category cpu Machine.Account.Cd_manipulation (fun () ->
      Machine.Cpu.instr cpu 10);
  Alcotest.(check int) "charged to category" 10
    (Machine.Account.get (Machine.Cpu.account cpu) Machine.Account.Cd_manipulation)

let test_cpu_trap_semantics () =
  let cpu = make_cpu () in
  Alcotest.(check bool) "starts in user" true
    (Machine.Cpu.space cpu = Machine.Tlb.User);
  Machine.Cpu.trap cpu;
  Alcotest.(check bool) "supervisor after trap" true
    (Machine.Cpu.space cpu = Machine.Tlb.Supervisor);
  Alcotest.(check int) "trap cycles to trap overhead" 14
    (Machine.Account.get (Machine.Cpu.account cpu) Machine.Account.Trap_overhead);
  Alcotest.(check int) "pipeline refill to unaccounted" 4
    (Machine.Account.get (Machine.Cpu.account cpu) Machine.Account.Unaccounted);
  Machine.Cpu.rti cpu ~to_space:Machine.Tlb.User;
  Alcotest.(check bool) "back to user" true
    (Machine.Cpu.space cpu = Machine.Tlb.User)

let test_cpu_tlb_miss_category () =
  let cpu = make_cpu () in
  Machine.Cpu.with_category cpu Machine.Account.Server_time (fun () ->
      Machine.Cpu.load cpu 0x4_0000);
  Alcotest.(check int) "walk charged to TLB miss" 27
    (Machine.Account.get (Machine.Cpu.account cpu) Machine.Account.Tlb_miss);
  (* The fill itself goes to the current category. *)
  Alcotest.(check int) "fill charged to category" 20
    (Machine.Account.get (Machine.Cpu.account cpu) Machine.Account.Server_time)

let test_cpu_mapped_access_split () =
  let cpu = make_cpu () in
  (* Warm the physical line via direct access at the physical address. *)
  Machine.Cpu.load cpu 0x5_0000;
  let tlb_misses_before = Machine.Tlb.misses (Machine.Cpu.tlb cpu) in
  let dmisses_before = Machine.Cache.misses (Machine.Cpu.dcache cpu) in
  (* Access through a *different* virtual page mapping the same frame:
     TLB must miss (new page), cache must hit (same line). *)
  Machine.Cpu.load_mapped cpu ~vaddr:0x9_0000 ~paddr:0x5_0000;
  Alcotest.(check int) "tlb missed on new vaddr" (tlb_misses_before + 1)
    (Machine.Tlb.misses (Machine.Cpu.tlb cpu));
  Alcotest.(check int) "cache hit on warm paddr" dmisses_before
    (Machine.Cache.misses (Machine.Cpu.dcache cpu))

let test_cpu_uncached_numa () =
  let numa = Machine.Numa.create params ~stations:4 in
  Machine.Numa.register numa ~base:0x7000 ~bytes:64 ~node:3;
  let cpu = Machine.Cpu.create ~node:0 params numa in
  let before = Machine.Cpu.cycles cpu in
  Machine.Cpu.uncached_load cpu 0x7000;
  (* 10 uncached + 4 base + 1 hop (ring of 4: distance(0,3)=1) * 3 *)
  Alcotest.(check int) "uncached remote cost" (10 + 4 + 3)
    (Machine.Cpu.cycles cpu - before)

let test_cpu_unsynced_cycles () =
  let cpu = make_cpu () in
  Machine.Cpu.instr cpu 100;
  Alcotest.(check bool) "pending cycles" true (Machine.Cpu.unsynced_cycles cpu > 0);
  let taken = Machine.Cpu.take_unsynced cpu in
  Alcotest.(check bool) "taken positive" true (taken > 0);
  Alcotest.(check int) "drained" 0 (Machine.Cpu.unsynced_cycles cpu)

let test_machine_assembly () =
  let m = Machine.create ~cpus:4 () in
  Alcotest.(check int) "cpu count" 4 (Machine.n_cpus m);
  Alcotest.(check int) "cpu nodes" 2 (Machine.Cpu.node (Machine.cpu m 2));
  Alcotest.check_raises "bad index"
    (Invalid_argument "Machine.cpu: index out of range") (fun () ->
      ignore (Machine.cpu m 4))

let suites =
  [
    ( "machine.params",
      [
        Alcotest.test_case "cycle conversion" `Quick test_cycle_conversion;
        Alcotest.test_case "lines of bytes" `Quick test_lines_of_bytes;
      ] );
    ( "machine.cache",
      [
        Alcotest.test_case "hit/miss costs" `Quick test_cache_hit_miss;
        Alcotest.test_case "store-clean penalty" `Quick
          test_cache_store_clean_penalty;
        Alcotest.test_case "4-way associativity" `Quick
          test_cache_associativity_no_thrash;
        Alcotest.test_case "LRU eviction + writeback" `Quick
          test_cache_lru_eviction_and_writeback;
        Alcotest.test_case "flush" `Quick test_cache_flush;
        Alcotest.test_case "prime" `Quick test_cache_prime;
        qcheck prop_cache_contains_after_access;
        qcheck prop_cache_counters_consistent;
      ] );
    ( "machine.tlb",
      [
        Alcotest.test_case "miss then hit" `Quick test_tlb_miss_then_hit;
        Alcotest.test_case "dual contexts" `Quick test_tlb_contexts_independent;
        Alcotest.test_case "FIFO capacity" `Quick test_tlb_capacity_fifo;
        Alcotest.test_case "invalidate" `Quick test_tlb_invalidate;
        Alcotest.test_case "preload is free" `Quick test_tlb_preload_free;
      ] );
    ( "machine.numa",
      [
        Alcotest.test_case "ring distance" `Quick test_numa_distance_ring;
        Alcotest.test_case "region homing" `Quick test_numa_homing;
        qcheck prop_numa_distance_symmetric;
      ] );
    ( "machine.layout",
      [
        Alcotest.test_case "alignment" `Quick test_layout_alignment;
        qcheck prop_layout_no_overlap;
      ] );
    ( "machine.account",
      [
        Alcotest.test_case "charge and diff" `Quick test_account_charge_and_diff;
        Alcotest.test_case "negative rejected" `Quick
          test_account_negative_rejected;
      ] );
    ( "machine.cpu",
      [
        Alcotest.test_case "category attribution" `Quick
          test_cpu_category_attribution;
        Alcotest.test_case "trap semantics" `Quick test_cpu_trap_semantics;
        Alcotest.test_case "TLB miss category" `Quick test_cpu_tlb_miss_category;
        Alcotest.test_case "mapped access split" `Quick
          test_cpu_mapped_access_split;
        Alcotest.test_case "uncached NUMA surcharge" `Quick test_cpu_uncached_numa;
        Alcotest.test_case "unsynced cycle tracking" `Quick
          test_cpu_unsynced_cycles;
        Alcotest.test_case "machine assembly" `Quick test_machine_assembly;
      ] );
  ]
