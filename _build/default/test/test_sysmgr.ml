(* Tests for the program manager. *)

let spawn_client kern ~cpu ~name body =
  let program = Kernel.new_program kern ~name in
  let space = Kernel.new_user_space kern ~name ~node:cpu in
  Kernel.spawn kern ~cpu ~name ~kind:Kernel.Process.Client ~program ~space body

let test_spawn_requires_admin () =
  let kern = Kernel.create ~cpus:2 () in
  let ppc = Ppc.create kern in
  let pm = Sysmgr.Program_manager.install ppc in
  let ran = ref 0 in
  Sysmgr.Program_manager.register_exe pm
    {
      Sysmgr.Program_manager.exe_name = "app";
      text_pages = 1;
      stack_pages = 1;
      body = (fun _ _ -> incr ran);
    };
  let denied = ref (Ok 0) and granted = ref (Error 0) in
  ignore
    (spawn_client kern ~cpu:0 ~name:"shady" (fun self ->
         denied := Sysmgr.Program_manager.spawn pm ~client:self ~name:"app" ~cpu_index:1));
  ignore
    (spawn_client kern ~cpu:0 ~name:"init" (fun self ->
         Naming.Auth.grant
           (Sysmgr.Program_manager.auth pm)
           ~program:(Kernel.Program.id (Kernel.Process.program self))
           ~perms:[ Naming.Auth.Admin ];
         granted := Sysmgr.Program_manager.spawn pm ~client:self ~name:"app" ~cpu_index:1));
  Kernel.run kern;
  Alcotest.(check bool) "unauthorised spawn denied" true
    (!denied = Error Ppc.Reg_args.err_denied);
  (match !granted with
  | Ok pid -> Alcotest.(check bool) "pid returned" true (pid > 0)
  | Error rc -> Alcotest.failf "authorised spawn failed rc=%d" rc);
  Alcotest.(check int) "program body ran" 1 !ran;
  Alcotest.(check int) "one spawn recorded" 1 (Sysmgr.Program_manager.spawned pm)

let test_spawn_unknown_exe () =
  let kern = Kernel.create ~cpus:1 () in
  let ppc = Ppc.create kern in
  let pm = Sysmgr.Program_manager.install ppc in
  let result = ref (Ok 0) in
  ignore
    (spawn_client kern ~cpu:0 ~name:"init" (fun self ->
         Naming.Auth.grant
           (Sysmgr.Program_manager.auth pm)
           ~program:(Kernel.Program.id (Kernel.Process.program self))
           ~perms:[ Naming.Auth.Admin ];
         result := Sysmgr.Program_manager.spawn pm ~client:self ~name:"ghost" ~cpu_index:0));
  Kernel.run kern;
  Alcotest.(check bool) "unknown image" true
    (!result = Error Ppc.Reg_args.err_no_entry)

let test_spawned_program_pages_in () =
  let kern = Kernel.create ~cpus:2 () in
  let ppc = Ppc.create kern in
  let pager = Vm.Pager.install ppc in
  let pm = Sysmgr.Program_manager.install ~pager ppc in
  let faults_seen = ref (-1) in
  Sysmgr.Program_manager.register_exe pm
    {
      Sysmgr.Program_manager.exe_name = "pagey";
      text_pages = 3;
      stack_pages = 2;
      body =
        (fun self vm ->
          let cpu =
            Machine.cpu
              (Kernel.machine kern)
              (Kernel.Process.cpu_index self)
          in
          (* Touch all three text pages and the stack. *)
          for p = 0 to 2 do
            Vm.read vm ~cpu ~proc:self ~vaddr:(0x10_0000 + (p * 4096))
          done;
          Vm.write vm ~cpu ~proc:self ~vaddr:0x7F_0000;
          faults_seen := Vm.faults vm);
    };
  ignore
    (spawn_client kern ~cpu:0 ~name:"init" (fun self ->
         Naming.Auth.grant
           (Sysmgr.Program_manager.auth pm)
           ~program:(Kernel.Program.id (Kernel.Process.program self))
           ~perms:[ Naming.Auth.Admin ];
         match Sysmgr.Program_manager.spawn pm ~client:self ~name:"pagey" ~cpu_index:1 with
         | Ok _ -> ()
         | Error rc -> Alcotest.failf "spawn failed rc=%d" rc));
  Kernel.run kern;
  Alcotest.(check int) "3 text + 1 stack faults" 4 !faults_seen;
  Alcotest.(check int) "pager filled the text" 3 (Vm.Pager.served pager)

let test_spawn_lands_on_requested_cpu () =
  let kern = Kernel.create ~cpus:3 () in
  let ppc = Ppc.create kern in
  let pm = Sysmgr.Program_manager.install ppc in
  let where = ref (-1) in
  Sysmgr.Program_manager.register_exe pm
    {
      Sysmgr.Program_manager.exe_name = "whereami";
      text_pages = 1;
      stack_pages = 1;
      body = (fun self _ -> where := Kernel.Process.cpu_index self);
    };
  ignore
    (spawn_client kern ~cpu:0 ~name:"init" (fun self ->
         Naming.Auth.grant
           (Sysmgr.Program_manager.auth pm)
           ~program:(Kernel.Program.id (Kernel.Process.program self))
           ~perms:[ Naming.Auth.Admin ];
         ignore (Sysmgr.Program_manager.spawn pm ~client:self ~name:"whereami" ~cpu_index:2)));
  Kernel.run kern;
  Alcotest.(check int) "ran on cpu 2" 2 !where

let suites =
  [
    ( "sysmgr.program_manager",
      [
        Alcotest.test_case "spawn requires admin" `Quick test_spawn_requires_admin;
        Alcotest.test_case "unknown image" `Quick test_spawn_unknown_exe;
        Alcotest.test_case "spawned program pages in" `Quick
          test_spawned_program_pages_in;
        Alcotest.test_case "cpu placement" `Quick test_spawn_lands_on_requested_cpu;
      ] );
  ]
