(* Tests for the tracing subsystem and its hooks. *)

let test_ring_buffer_basics () =
  let tr = Sim.Trace.create ~capacity:4 () in
  for i = 1 to 6 do
    Sim.Trace.record tr ~at:(Sim.Time.us i) ~kind:"k" (string_of_int i)
  done;
  Alcotest.(check int) "recorded counts all" 6 (Sim.Trace.recorded tr);
  Alcotest.(check int) "dropped oldest" 2 (Sim.Trace.dropped tr);
  let details = List.map (fun e -> e.Sim.Trace.detail) (Sim.Trace.events tr) in
  Alcotest.(check (list string)) "last capacity survive, oldest first"
    [ "3"; "4"; "5"; "6" ] details;
  Sim.Trace.clear tr;
  Alcotest.(check int) "cleared" 0 (Sim.Trace.recorded tr)

let test_disabled_tracing_is_free () =
  let e = Sim.Engine.create () in
  let thunk_ran = ref false in
  Sim.Engine.trace_f e ~kind:"x" (fun () ->
      thunk_ran := true;
      "never");
  Alcotest.(check bool) "thunk not evaluated when disabled" false !thunk_ran;
  Alcotest.(check bool) "not tracing" false (Sim.Engine.tracing e)

let test_ppc_call_timeline () =
  let kern = Kernel.create ~cpus:1 () in
  let tr = Sim.Trace.create () in
  Sim.Engine.set_trace (Kernel.engine kern) (Some tr);
  let ppc = Ppc.create kern in
  let server = Ppc.make_user_server ppc ~name:"traced" () in
  let ep = Ppc.register_direct ppc ~server ~handler:Ppc.Null_server.echo in
  Ppc.prime ppc ~ep ~cpus:[ 0 ];
  let prog = Kernel.new_program kern ~name:"client" in
  let space = Kernel.new_user_space kern ~name:"client" ~node:0 in
  ignore
    (Kernel.spawn kern ~cpu:0 ~name:"client" ~kind:Kernel.Process.Client
       ~program:prog ~space (fun self ->
         ignore
           (Ppc.call ppc ~client:self ~ep_id:(Ppc.Entry_point.id ep)
              (Ppc.Reg_args.make ()))));
  Kernel.run kern;
  let kinds ev = List.map (fun e -> e.Sim.Trace.kind) ev in
  let call_events =
    List.filter
      (fun e ->
        List.mem e.Sim.Trace.kind
          [ "ppc-call"; "handoff"; "upcall"; "ppc-return" ])
      (Sim.Trace.events tr)
  in
  (* The canonical fast-path timeline: call, hand-off to the worker,
     upcall into the server, hand-off back, return. *)
  Alcotest.(check (list string))
    "fast-path event order"
    [ "ppc-call"; "handoff"; "upcall"; "handoff"; "ppc-return" ]
    (kinds call_events);
  (* Timestamps are monotonic. *)
  let rec monotonic = function
    | a :: (b :: _ as rest) ->
        Sim.Time.(a.Sim.Trace.at <= b.Sim.Trace.at) && monotonic rest
    | _ -> true
  in
  Alcotest.(check bool) "monotonic timestamps" true
    (monotonic (Sim.Trace.events tr))

let test_lock_wait_traced () =
  let kern = Kernel.create ~cpus:2 () in
  let tr = Sim.Trace.create () in
  Sim.Engine.set_trace (Kernel.engine kern) (Some tr);
  let lock =
    Kernel.Spinlock.create ~addr:(Kernel.alloc kern ~bytes:16 ~node:0) ()
  in
  for cpu = 0 to 1 do
    let prog = Kernel.new_program kern ~name:(Printf.sprintf "c%d" cpu) in
    let space =
      Kernel.new_user_space kern ~name:(Printf.sprintf "c%d" cpu) ~node:cpu
    in
    ignore
      (Kernel.spawn kern ~cpu ~name:(Printf.sprintf "c%d" cpu)
         ~kind:Kernel.Process.Client ~program:prog ~space (fun self ->
           let kc = Kernel.kcpu kern cpu in
           let mcpu = Kernel.Kcpu.cpu kc in
           for _ = 1 to 5 do
             Kernel.Spinlock.acquire (Kernel.engine kern) mcpu self lock;
             Machine.Cpu.instr mcpu 200;
             Kernel.Clock.sync (Kernel.engine kern) mcpu;
             Kernel.Spinlock.release (Kernel.engine kern) mcpu self lock
           done))
  done;
  Kernel.run kern;
  Alcotest.(check bool) "contended waits traced" true
    (List.length (Sim.Trace.filter tr ~kind:"lock-wait") > 0)

let suites =
  [
    ( "sim.trace",
      [
        Alcotest.test_case "ring buffer" `Quick test_ring_buffer_basics;
        Alcotest.test_case "disabled is free" `Quick test_disabled_tracing_is_free;
        Alcotest.test_case "ppc call timeline" `Quick test_ppc_call_timeline;
        Alcotest.test_case "lock waits traced" `Quick test_lock_wait_traced;
      ] );
  ]
