(* Regression tests over the experiment harnesses: the paper's
   qualitative claims, plus calibration bands against its reported
   numbers.  Sizes are reduced for test speed; the bench binary runs the
   full versions. *)

let fig2 target hold_cd flushed =
  (Experiments.Fig2.run { Experiments.Fig2.target; hold_cd; flushed })
    .Experiments.Fig2.total_us

(* Every Figure 2 condition must land within 15% of the paper's value —
   this is the calibration regression net. *)
let test_fig2_calibration_bands () =
  List.iter
    (fun c ->
      let r = Experiments.Fig2.run c in
      match r.Experiments.Fig2.paper_us with
      | None -> ()
      | Some paper ->
          let err =
            Float.abs (r.Experiments.Fig2.total_us -. paper) /. paper
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s: %.1f us vs paper %.1f (%.0f%% off)"
               (Experiments.Fig2.condition_name c)
               r.Experiments.Fig2.total_us paper (100.0 *. err))
            true (err < 0.15))
    Experiments.Fig2.all_conditions

let test_fig2_breakdown_sums () =
  let r =
    Experiments.Fig2.run
      { Experiments.Fig2.target = Experiments.Fig2.To_user;
        hold_cd = false;
        flushed = false;
      }
  in
  let sum =
    List.fold_left (fun acc (_, us) -> acc +. us) 0.0 r.Experiments.Fig2.breakdown
  in
  Alcotest.(check (float 1e-6)) "categories sum to total"
    r.Experiments.Fig2.total_us sum

let test_fig2_orderings () =
  let u2u = fig2 Experiments.Fig2.To_user false false in
  let u2u_hold = fig2 Experiments.Fig2.To_user true false in
  let u2k = fig2 Experiments.Fig2.To_kernel false false in
  let u2k_hold = fig2 Experiments.Fig2.To_kernel true false in
  let u2u_flush = fig2 Experiments.Fig2.To_user false true in
  Alcotest.(check bool) "hold < plain (u2u)" true (u2u_hold < u2u);
  Alcotest.(check bool) "kernel < user target" true (u2k < u2u);
  Alcotest.(check bool) "kernel hold is cheapest" true
    (u2k_hold < u2k && u2k_hold < u2u_hold);
  Alcotest.(check bool) "flushed is dearest" true (u2u_flush > u2u)

let test_fig3_different_files_linear () =
  let r =
    Experiments.Fig3.run ~max_cpus:4 ~horizon:(Sim.Time.ms 30)
      ~mode:Experiments.Fig3.Different_files ()
  in
  let lin = Experiments.Fig3.linearity r in
  Alcotest.(check bool)
    (Printf.sprintf "linearity >= 0.97 (got %.3f)" lin)
    true (lin >= 0.97);
  Alcotest.(check bool) "base latency in band (paper 66 us)" true
    (r.Experiments.Fig3.base_call_us > 50.0
    && r.Experiments.Fig3.base_call_us < 80.0)

let test_fig3_single_file_saturates () =
  let r =
    Experiments.Fig3.run ~max_cpus:8 ~horizon:(Sim.Time.ms 30)
      ~mode:Experiments.Fig3.Single_file ()
  in
  let sat = Experiments.Fig3.saturation_cpus r in
  Alcotest.(check bool)
    (Printf.sprintf "saturates between 3 and 5 CPUs (got %d)" sat)
    true
    (sat >= 3 && sat <= 5);
  (* And well below perfect speedup at 8. *)
  let p8 = List.nth r.Experiments.Fig3.points 7 in
  Alcotest.(check bool) "8-CPU throughput far from perfect" true
    (p8.Experiments.Fig3.throughput < 0.6 *. r.Experiments.Fig3.perfect 8)

let test_ablation_msg_slower () =
  let r = Experiments.Ablate_msg.run () in
  Alcotest.(check bool)
    (Printf.sprintf "msg (%.1f) > ppc (%.1f)" r.Experiments.Ablate_msg.msg_us
       r.Experiments.Ablate_msg.ppc_us)
    true
    (r.Experiments.Ablate_msg.msg_us > 1.15 *. r.Experiments.Ablate_msg.ppc_us)

let test_ablation_async_overlaps () =
  let r = Experiments.Ablate_async.run ~blocks:8 () in
  Alcotest.(check bool)
    (Printf.sprintf "async (%.0f us) at least 1.5x faster than sync (%.0f us)"
       r.Experiments.Ablate_async.async_elapsed_us
       r.Experiments.Ablate_async.sync_elapsed_us)
    true
    (r.Experiments.Ablate_async.async_elapsed_us *. 1.5
    < r.Experiments.Ablate_async.sync_elapsed_us)

let test_ablation_lrpc_saturates () =
  let points = Experiments.Ablate_lrpc.run ~max_cpus:6 ~horizon:(Sim.Time.ms 20) () in
  let p1 = List.hd points and p6 = List.nth points 5 in
  (* PPC scales ~6x; LRPC must be far behind by 6 CPUs. *)
  Alcotest.(check bool) "ppc scales" true
    (p6.Experiments.Ablate_lrpc.ppc_tput
    > 5.0 *. p1.Experiments.Ablate_lrpc.ppc_tput);
  Alcotest.(check bool) "lrpc saturates" true
    (p6.Experiments.Ablate_lrpc.lrpc_tput
    < 3.5 *. p1.Experiments.Ablate_lrpc.lrpc_tput)

let test_ablation_remote_costs_cpu () =
  let r = Experiments.Ablate_remote.run ~cpus:4 () in
  Alcotest.(check bool) "remote burns more CPU than local" true
    (r.Experiments.Ablate_remote.remote_busy_us
    > 1.5 *. r.Experiments.Ablate_remote.local_busy_us)

let test_holdcd_crossover () =
  let points =
    Experiments.Ablate_holdcd.run ~calls:100 ~server_counts:[ 1; 12 ] ()
  in
  match points with
  | [ one; many ] ->
      Alcotest.(check bool) "hold-CD wins with one server" true
        (one.Experiments.Ablate_holdcd.hold_us
        <= one.Experiments.Ablate_holdcd.recycle_us);
      Alcotest.(check bool) "recycling wins with many servers" true
        (many.Experiments.Ablate_holdcd.recycle_us
        < many.Experiments.Ablate_holdcd.hold_us)
  | _ -> Alcotest.fail "expected two points"

let test_uniproc_context_competitive () =
  let r = Experiments.Uniproc_context.run () in
  (* "Our IPC overhead is comparable to the best times achieved on
     uniprocessor systems": cheaper in cycles than Mach and QNX. *)
  let our_cycles = r.Experiments.Uniproc_context.ours_user_us *. 16.67 in
  List.iter
    (fun e ->
      if e.Experiments.Uniproc_context.system <> "L3 (Liedtke)" then
        Alcotest.(check bool)
          (Printf.sprintf "fewer cycles than %s" e.Experiments.Uniproc_context.system)
          true
          (our_cycles
          < e.Experiments.Uniproc_context.reported_us
            *. e.Experiments.Uniproc_context.mhz))
    r.Experiments.Uniproc_context.table

let suites =
  [
    ( "experiments.fig2",
      [
        Alcotest.test_case "calibration within 15% of paper" `Quick
          test_fig2_calibration_bands;
        Alcotest.test_case "breakdown sums to total" `Quick
          test_fig2_breakdown_sums;
        Alcotest.test_case "orderings preserved" `Quick test_fig2_orderings;
      ] );
    ( "experiments.fig3",
      [
        Alcotest.test_case "different files linear" `Slow
          test_fig3_different_files_linear;
        Alcotest.test_case "single file saturates ~4" `Slow
          test_fig3_single_file_saturates;
      ] );
    ( "experiments.ablations",
      [
        Alcotest.test_case "msg slower than ppc" `Quick test_ablation_msg_slower;
        Alcotest.test_case "async overlaps io" `Quick test_ablation_async_overlaps;
        Alcotest.test_case "lrpc saturates" `Slow test_ablation_lrpc_saturates;
        Alcotest.test_case "remote costs cpu" `Quick test_ablation_remote_costs_cpu;
        Alcotest.test_case "hold-CD crossover" `Slow test_holdcd_crossover;
        Alcotest.test_case "uniprocessor context" `Quick
          test_uniproc_context_competitive;
      ] );
  ]

(* --- extended experiments (F3b, F3c, L1, T-text-3) ----------------------- *)

let test_t3_worst_case_band () =
  let r = Experiments.Fig2_icache.run () in
  Alcotest.(check bool)
    (Printf.sprintf "extra %.1f us within paper's 20-30 band (+/- 5)"
       r.Experiments.Fig2_icache.extra_us)
    true
    (r.Experiments.Fig2_icache.extra_us > 15.0
    && r.Experiments.Fig2_icache.extra_us < 35.0);
  Alcotest.(check bool) "worst > flushed > primed" true
    (r.Experiments.Fig2_icache.worst_us > r.Experiments.Fig2_icache.dflushed_us
    && r.Experiments.Fig2_icache.dflushed_us
       > r.Experiments.Fig2_icache.primed_us)

let test_f3b_zipf_monotone () =
  let points =
    Experiments.Fig3_zipf.run ~cpus:4 ~files:4 ~horizon:(Sim.Time.ms 20)
      ~thetas:[ 0.0; 1.2; 4.0 ] ()
  in
  match points with
  | [ uniform; skewed; extreme ] ->
      Alcotest.(check bool) "skew hurts" true
        (uniform.Experiments.Fig3_zipf.throughput
        > skewed.Experiments.Fig3_zipf.throughput);
      Alcotest.(check bool) "heavy skew hurts more" true
        (skewed.Experiments.Fig3_zipf.throughput
        > extreme.Experiments.Fig3_zipf.throughput)
  | _ -> Alcotest.fail "expected three points"

let test_f3c_origin_irrelevant () =
  let points = Experiments.Program_mix.run ~cpus:4 ~horizon:(Sim.Time.ms 20) () in
  let spread = Experiments.Program_mix.spread points in
  Alcotest.(check bool)
    (Printf.sprintf "throughput spread %.2f%% < 3%%" (100.0 *. spread))
    true (spread < 0.03)

let test_l1_single_file_tail_inflates () =
  let run mode =
    Experiments.Latency_load.run ~cpus:8 ~horizon:(Sim.Time.ms 30)
      ~thinks:[ 400.0; 25.0 ] ~mode ()
  in
  match
    (run Experiments.Latency_load.Different_files,
     run Experiments.Latency_load.Single_file)
  with
  | [ d_light; d_heavy ], [ s_light; s_heavy ] ->
      (* Different files: p50 flat as load rises. *)
      Alcotest.(check bool) "different-files p50 stays flat" true
        (d_heavy.Experiments.Latency_load.p50_us
        < d_light.Experiments.Latency_load.p50_us +. 5.0);
      (* Single file: median inflates under load. *)
      Alcotest.(check bool)
        (Printf.sprintf "single-file p50 inflates (%.1f -> %.1f)"
           s_light.Experiments.Latency_load.p50_us
           s_heavy.Experiments.Latency_load.p50_us)
        true
        (s_heavy.Experiments.Latency_load.p50_us
        > s_light.Experiments.Latency_load.p50_us +. 15.0)
  | _ -> Alcotest.fail "expected two points each"

let ext_suites =
  [
    ( "experiments.extended",
      [
        Alcotest.test_case "t3 worst-case band" `Quick test_t3_worst_case_band;
        Alcotest.test_case "f3b zipf monotone" `Slow test_f3b_zipf_monotone;
        Alcotest.test_case "f3c origin irrelevant" `Slow
          test_f3c_origin_irrelevant;
        Alcotest.test_case "l1 single-file tail" `Slow
          test_l1_single_file_tail_inflates;
      ] );
  ]

let suites = suites @ ext_suites

let test_a7_rw_lifts_ceiling () =
  let points =
    Experiments.Ablate_rwlock.run ~max_cpus:8 ~horizon:(Sim.Time.ms 20) ()
  in
  let p8 = List.find (fun p -> p.Experiments.Ablate_rwlock.cpus = 8) points in
  Alcotest.(check bool)
    (Printf.sprintf "rw (%.0f) at least 2x mutex (%.0f) at 8 CPUs"
       p8.Experiments.Ablate_rwlock.rw_tput p8.Experiments.Ablate_rwlock.mutex_tput)
    true
    (p8.Experiments.Ablate_rwlock.rw_tput
    > 2.0 *. p8.Experiments.Ablate_rwlock.mutex_tput)

let a7_suite =
  ( "experiments.a7",
    [ Alcotest.test_case "rw lifts single-file ceiling" `Slow test_a7_rw_lifts_ceiling ] )

let suites = suites @ [ a7_suite ]

let test_a8_transport_ordering () =
  let r = Experiments.Ablate_compat.run () in
  Alcotest.(check bool)
    (Printf.sprintf "native PPC (%.1f) < legacy msg (%.1f) < compat (%.1f)"
       r.Experiments.Ablate_compat.native_ppc_us
       r.Experiments.Ablate_compat.native_msg_us
       r.Experiments.Ablate_compat.compat_us)
    true
    (r.Experiments.Ablate_compat.native_ppc_us
     < r.Experiments.Ablate_compat.native_msg_us
    && r.Experiments.Ablate_compat.native_msg_us
       < r.Experiments.Ablate_compat.compat_us)

let a8_suite =
  ( "experiments.a8",
    [ Alcotest.test_case "transport ordering" `Quick test_a8_transport_ordering ] )

let suites = suites @ [ a8_suite ]

let test_a9_clustering_trade () =
  let r = Experiments.Ablate_cluster.run ~horizon:(Sim.Time.ms 10) () in
  Alcotest.(check bool)
    (Printf.sprintf "clustered lookups faster (%.0f vs %.0f)"
       r.Experiments.Ablate_cluster.clustered_tput
       r.Experiments.Ablate_cluster.central_tput)
    true
    (r.Experiments.Ablate_cluster.clustered_tput
    > 2.0 *. r.Experiments.Ablate_cluster.central_tput);
  Alcotest.(check bool) "clustered writes dearer" true
    (r.Experiments.Ablate_cluster.clustered_register_us
    > 2.0 *. r.Experiments.Ablate_cluster.central_register_us)

let a9_suite =
  ( "experiments.a9",
    [ Alcotest.test_case "clustering trade" `Slow test_a9_clustering_trade ] )

let suites = suites @ [ a9_suite ]

let test_e2_technology_flip () =
  let points = Experiments.Ablate_migration.run () in
  match points with
  | [ firefly; hector ] ->
      Alcotest.(check bool)
        (Printf.sprintf "migration wins on Firefly (%.1f vs %.1f)"
           firefly.Experiments.Ablate_migration.migrated_us
           firefly.Experiments.Ablate_migration.local_us)
        true
        (firefly.Experiments.Ablate_migration.migrated_us
        < firefly.Experiments.Ablate_migration.local_us);
      Alcotest.(check bool)
        (Printf.sprintf "prohibitive on Hector (%.1f vs %.1f)"
           hector.Experiments.Ablate_migration.migrated_us
           hector.Experiments.Ablate_migration.local_us)
        true
        (hector.Experiments.Ablate_migration.migrated_us
        > 3.0 *. hector.Experiments.Ablate_migration.local_us)
  | _ -> Alcotest.fail "expected two regimes"

let e2_suite =
  ( "experiments.e2",
    [ Alcotest.test_case "technology flips the verdict" `Quick test_e2_technology_flip ] )

let suites = suites @ [ e2_suite ]

(* Finer-grained calibration: category-level claims from the paper's
   text, not just the totals. *)
let test_fig2_category_claims () =
  let breakdown cond =
    (Experiments.Fig2.run cond).Experiments.Fig2.breakdown
  in
  let get cat b = try List.assoc cat b with Not_found -> 0.0 in
  let u2u =
    breakdown
      { Experiments.Fig2.target = Experiments.Fig2.To_user;
        hold_cd = false; flushed = false }
  in
  let u2k =
    breakdown
      { Experiments.Fig2.target = Experiments.Fig2.To_kernel;
        hold_cd = false; flushed = false }
  in
  (* "A trap to (and return from) supervisor mode requires approximately
     1.7 us" — two pairs per call. *)
  let trap = get Machine.Account.Trap_overhead u2u in
  Alcotest.(check bool)
    (Printf.sprintf "trap overhead ~3.4 us (got %.2f)" trap)
    true
    (trap > 3.0 && trap < 3.8);
  (* The u2u/u2k gap lives in TLB setup + TLB misses. *)
  let tlb_gap =
    get Machine.Account.Tlb_setup u2u
    +. get Machine.Account.Tlb_miss u2u
    -. get Machine.Account.Tlb_setup u2k
    -. get Machine.Account.Tlb_miss u2k
  in
  Alcotest.(check bool)
    (Printf.sprintf "TLB work explains most of the u2u-u2k gap (%.1f us)"
       tlb_gap)
    true
    (tlb_gap > 8.0 && tlb_gap < 13.0);
  (* "A call to a service in the supervisor address space does not
     require a TLB flush and thus incurs fewer TLB misses." *)
  Alcotest.(check bool) "u2k has at most 2 TLB misses" true
    (get Machine.Account.Tlb_miss u2k < 2.0 *. 27.0 *. 0.06);
  (* Flushed adds ~half to user save/restore, ~half to kernel data. *)
  let u2u_flushed =
    breakdown
      { Experiments.Fig2.target = Experiments.Fig2.To_user;
        hold_cd = false; flushed = true }
  in
  let user_delta =
    get Machine.Account.User_save_restore u2u_flushed
    -. get Machine.Account.User_save_restore u2u
  in
  let total_delta =
    List.fold_left (fun a (_, v) -> a +. v) 0.0 u2u_flushed
    -. List.fold_left (fun a (_, v) -> a +. v) 0.0 u2u
  in
  Alcotest.(check bool)
    (Printf.sprintf
       "user save/restore is roughly half the flushed delta (%.1f of %.1f)"
       user_delta total_delta)
    true
    (user_delta > 0.3 *. total_delta && user_delta < 0.6 *. total_delta)

let category_suite =
  ( "experiments.fig2_categories",
    [ Alcotest.test_case "category-level claims" `Quick test_fig2_category_claims ] )

let suites = suites @ [ category_suite ]
