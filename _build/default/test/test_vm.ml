(* Tests for the demand-paged VM and the external pager server. *)

let spawn_client kern ~cpu ~name body =
  let program = Kernel.new_program kern ~name in
  let space = Kernel.new_user_space kern ~name ~node:cpu in
  Kernel.spawn kern ~cpu ~name ~kind:Kernel.Process.Client ~program ~space body

let base = 0x40_0000

let setup () =
  let kern = Kernel.create ~cpus:1 () in
  let space = Kernel.new_user_space kern ~name:"app" ~node:0 in
  let vm = Vm.create kern ~space ~node:0 in
  (kern, space, vm)

let run_in_process kern f =
  let result = ref None in
  ignore
    (spawn_client kern ~cpu:0 ~name:"app" (fun self ->
         let cpu = Machine.cpu (Kernel.machine kern) 0 in
         result := Some (f self cpu)));
  Kernel.run kern;
  Option.get !result

let test_demand_zero () =
  let kern, _space, vm = setup () in
  ignore
    (Vm.add_region vm ~base ~len:(3 * 4096) ~backing:Vm.Demand_zero
       ~prot:Vm.Rw);
  run_in_process kern (fun self cpu ->
      Vm.read vm ~cpu ~proc:self ~vaddr:(base + 100);
      Vm.write vm ~cpu ~proc:self ~vaddr:(base + 200);
      (* Same page: no second fault. *)
      Alcotest.(check int) "one fault for the first page" 1 (Vm.faults vm);
      Vm.read vm ~cpu ~proc:self ~vaddr:(base + 4096);
      Alcotest.(check int) "second page faults separately" 2 (Vm.faults vm);
      Alcotest.(check int) "two zero fills" 2 (Vm.zero_fills vm))

let test_fault_costs_time () =
  let kern, _space, vm = setup () in
  ignore
    (Vm.add_region vm ~base ~len:4096 ~backing:Vm.Demand_zero ~prot:Vm.Rw);
  run_in_process kern (fun self cpu ->
      let c0 = Machine.Cpu.cycles cpu in
      Vm.read vm ~cpu ~proc:self ~vaddr:base;
      let faulting = Machine.Cpu.cycles cpu - c0 in
      let c1 = Machine.Cpu.cycles cpu in
      Vm.read vm ~cpu ~proc:self ~vaddr:(base + 4) ;
      let warm = Machine.Cpu.cycles cpu - c1 in
      Alcotest.(check bool)
        (Printf.sprintf "fault (%d cyc) far dearer than hit (%d cyc)" faulting
           warm)
        true
        (faulting > 100 * warm))

let test_segfault_and_protection () =
  let kern, _space, vm = setup () in
  ignore (Vm.add_region vm ~base ~len:4096 ~backing:Vm.Demand_zero ~prot:Vm.Ro);
  let seg = ref false and prot = ref false in
  ignore
    (spawn_client kern ~cpu:0 ~name:"app" (fun self ->
         let cpu = Machine.cpu (Kernel.machine kern) 0 in
         (try Vm.read vm ~cpu ~proc:self ~vaddr:0x900_0000
          with Vm.Segfault _ -> seg := true);
         (try Vm.write vm ~cpu ~proc:self ~vaddr:base
          with Vm.Protection_fault _ -> prot := true)));
  Kernel.run kern;
  Alcotest.(check bool) "segfault outside regions" true !seg;
  Alcotest.(check bool) "protection fault on RO write" true !prot

let test_cow_copies_on_write () =
  let kern, _space, vm = setup () in
  let src = Kernel.alloc_page kern ~node:0 in
  ignore (Vm.add_region vm ~base ~len:4096 ~backing:(Vm.Cow src) ~prot:Vm.Rw);
  run_in_process kern (fun self cpu ->
      Vm.read vm ~cpu ~proc:self ~vaddr:base;
      Alcotest.(check (option int)) "read shares the source frame" (Some src)
        (Vm.frame_of vm ~vaddr:base);
      Alcotest.(check int) "no copy yet" 0 (Vm.cow_copies vm);
      Vm.write vm ~cpu ~proc:self ~vaddr:(base + 8);
      Alcotest.(check int) "write copies" 1 (Vm.cow_copies vm);
      Alcotest.(check bool) "private frame now" true
        (Vm.frame_of vm ~vaddr:base <> Some src);
      Vm.write vm ~cpu ~proc:self ~vaddr:(base + 16);
      Alcotest.(check int) "no second copy" 1 (Vm.cow_copies vm))

let test_wired_region () =
  let kern, _space, vm = setup () in
  let frame = Kernel.alloc_page kern ~node:0 in
  ignore (Vm.add_region vm ~base ~len:4096 ~backing:(Vm.Wired frame) ~prot:Vm.Rw);
  run_in_process kern (fun self cpu ->
      Vm.write vm ~cpu ~proc:self ~vaddr:(base + 4);
      Alcotest.(check (option int)) "uses the wired frame" (Some frame)
        (Vm.frame_of vm ~vaddr:base);
      Alcotest.(check int) "no zero fill" 0 (Vm.zero_fills vm))

let test_external_pager () =
  let kern = Kernel.create ~cpus:1 () in
  let ppc = Ppc.create kern in
  let pager = Vm.Pager.install ppc in
  let space = Kernel.new_user_space kern ~name:"app" ~node:0 in
  let vm = Vm.create ~ppc kern ~space ~node:0 in
  ignore
    (Vm.add_region vm ~base ~len:(2 * 4096)
       ~backing:(Vm.Paged { pager_ep = Vm.Pager.ep_id pager; tag = 7 })
       ~prot:Vm.Rw);
  run_in_process kern (fun self cpu ->
      Vm.read vm ~cpu ~proc:self ~vaddr:base;
      Vm.read vm ~cpu ~proc:self ~vaddr:(base + 64);
      Vm.read vm ~cpu ~proc:self ~vaddr:(base + 4096);
      Alcotest.(check int) "one pager call per page" 2 (Vm.pager_calls vm);
      Alcotest.(check int) "pager served both" 2 (Vm.Pager.served pager))

let test_pager_backed_by_disk () =
  let kern = Kernel.create ~cpus:2 () in
  let ppc = Ppc.create kern in
  let disk =
    Servers.Disk.create kern ~owner_cpu:1 ~vector:9 ~latency:(Sim.Time.us 300)
  in
  let dev = Servers.Device_server.install ppc ~disk in
  let pager = Vm.Pager.install ~disk:dev ppc in
  let space = Kernel.new_user_space kern ~name:"app" ~node:0 in
  let vm = Vm.create ~ppc kern ~space ~node:0 in
  ignore
    (Vm.add_region vm ~base ~len:4096
       ~backing:(Vm.Paged { pager_ep = Vm.Pager.ep_id pager; tag = 1 })
       ~prot:Vm.Rw);
  let t_done = ref Sim.Time.zero in
  ignore
    (spawn_client kern ~cpu:0 ~name:"app" (fun self ->
         let cpu = Machine.cpu (Kernel.machine kern) 0 in
         Vm.read vm ~cpu ~proc:self ~vaddr:base;
         t_done := Kernel.now kern));
  Kernel.run kern;
  Alcotest.(check int) "one disk fill" 1 (Vm.Pager.disk_fills pager);
  Alcotest.(check bool) "took at least the disk latency" true
    Sim.Time.(Sim.Time.us 300 <= !t_done)

let suites =
  [
    ( "vm",
      [
        Alcotest.test_case "demand zero" `Quick test_demand_zero;
        Alcotest.test_case "fault costs real time" `Quick test_fault_costs_time;
        Alcotest.test_case "segfault and protection" `Quick
          test_segfault_and_protection;
        Alcotest.test_case "copy on write" `Quick test_cow_copies_on_write;
        Alcotest.test_case "wired region" `Quick test_wired_region;
        Alcotest.test_case "external pager" `Quick test_external_pager;
        Alcotest.test_case "pager backed by disk" `Quick test_pager_backed_by_disk;
      ] );
  ]
