(* Tests for the workload drivers and samplers. *)

let qcheck = QCheck_alcotest.to_alcotest

let test_closed_loop_counts () =
  let kern = Kernel.create ~cpus:2 () in
  let counters =
    Workload.Driver.run kern
      ~specs:(Workload.Driver.one_per_cpu ~n:2 ~name_prefix:"c" ())
      ~horizon:(Sim.Time.ms 1) ~seed:1
      ~body:(fun ~client ~iteration:_ ->
        let kc = Kernel.kcpu kern (Kernel.Process.cpu_index client) in
        Machine.Cpu.instr (Kernel.Kcpu.cpu kc) 1667;
        Kernel.Kcpu.sync kc)
  in
  Kernel.run kern;
  (* Each iteration costs ~100 us; 1 ms horizon; 2 clients -> ~20 total. *)
  let total = Workload.Driver.total counters in
  Alcotest.(check bool)
    (Printf.sprintf "approx 20 iterations (got %d)" total)
    true
    (total >= 18 && total <= 22);
  let tput = Workload.Driver.throughput_per_sec counters in
  Alcotest.(check bool)
    (Printf.sprintf "throughput ~20k/s (got %.0f)" tput)
    true
    (tput > 17_000.0 && tput < 23_000.0)

let run_one_client kern ~think_mean_us =
  let body ~client ~iteration:_ =
    let kc = Kernel.kcpu kern (Kernel.Process.cpu_index client) in
    (* ~10 us of work per iteration *)
    Machine.Cpu.instr (Kernel.Kcpu.cpu kc) 167;
    Kernel.Kcpu.sync kc
  in
  let counters =
    Workload.Driver.run kern
      ~specs:[ { Workload.Driver.cpu = 0; name = "c"; think_mean_us; identity = None } ]
      ~horizon:(Sim.Time.ms 1) ~seed:1 ~body
  in
  Kernel.run kern;
  Workload.Driver.total counters

let test_open_loop_thinks () =
  let closed = run_one_client (Kernel.create ~cpus:1 ()) ~think_mean_us:None in
  let open_ =
    run_one_client (Kernel.create ~cpus:1 ()) ~think_mean_us:(Some 50.0)
  in
  Alcotest.(check bool)
    (Printf.sprintf "think time throttles (%d open vs %d closed)" open_ closed)
    true
    (open_ * 2 < closed && closed >= 90)

let test_prepare_hook_runs_per_client () =
  let kern = Kernel.create ~cpus:3 () in
  let prepared = ref [] in
  let counters =
    Workload.Driver.run kern
      ~specs:(Workload.Driver.one_per_cpu ~n:3 ~name_prefix:"c" ())
      ~horizon:(Sim.Time.us 10) ~seed:1
      ~prepare:(fun ~program ~index ->
        prepared := (index, Kernel.Program.name program) :: !prepared)
      ~body:(fun ~client:_ ~iteration:_ -> ())
  in
  ignore counters;
  Alcotest.(check int) "one prepare per client" 3 (List.length !prepared);
  Alcotest.(check bool) "names distinct" true
    (List.mem (0, "c-0") !prepared && List.mem (2, "c-2") !prepared)

(* --- zipf ----------------------------------------------------------------- *)

let test_zipf_uniform_theta0 () =
  let rng = Sim.Rng.create ~seed:3 in
  let z = Workload.Zipf.create ~n:4 ~theta:0.0 ~rng in
  let counts = Array.make 4 0 in
  for _ = 1 to 8000 do
    let i = Workload.Zipf.sample z in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d near uniform (%d)" i c)
        true
        (c > 1700 && c < 2300))
    counts

let test_zipf_skew () =
  let rng = Sim.Rng.create ~seed:3 in
  let z = Workload.Zipf.create ~n:16 ~theta:1.2 ~rng in
  let counts = Array.make 16 0 in
  for _ = 1 to 8000 do
    let i = Workload.Zipf.sample z in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check bool) "head dominates tail" true (counts.(0) > 5 * counts.(15));
  Alcotest.(check bool) "rank order head >= 2nd" true (counts.(0) >= counts.(1))

let prop_zipf_in_range =
  QCheck.Test.make ~name:"zipf samples within [0,n)" ~count:100
    QCheck.(pair (1 -- 64) (0 -- 3))
    (fun (n, theta10) ->
      let rng = Sim.Rng.create ~seed:(n + theta10) in
      let z = Workload.Zipf.create ~n ~theta:(float_of_int theta10 /. 2.0) ~rng in
      let ok = ref true in
      for _ = 1 to 50 do
        let s = Workload.Zipf.sample z in
        if s < 0 || s >= n then ok := false
      done;
      !ok)

let suites =
  [
    ( "workload.driver",
      [
        Alcotest.test_case "closed loop counts" `Quick test_closed_loop_counts;
        Alcotest.test_case "open loop thinks" `Quick test_open_loop_thinks;
        Alcotest.test_case "prepare hook" `Quick test_prepare_hook_runs_per_client;
      ] );
    ( "workload.zipf",
      [
        Alcotest.test_case "theta 0 uniform" `Quick test_zipf_uniform_theta0;
        Alcotest.test_case "skew" `Quick test_zipf_skew;
        qcheck prop_zipf_in_range;
      ] );
  ]
