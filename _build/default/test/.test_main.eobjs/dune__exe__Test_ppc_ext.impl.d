test/test_ppc_ext.ml: Alcotest Array Kernel List Machine Option Ppc Printf Sim
