test/test_runtime.ml: Alcotest Array Atomic Domain Gen Hashtbl List Printf QCheck QCheck_alcotest Runtime
