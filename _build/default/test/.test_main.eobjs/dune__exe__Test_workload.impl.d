test/test_workload.ml: Alcotest Array Kernel List Machine Printf QCheck QCheck_alcotest Sim Workload
