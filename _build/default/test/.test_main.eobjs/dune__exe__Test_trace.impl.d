test/test_trace.ml: Alcotest Kernel List Machine Ppc Printf Sim
