test/test_smoke.ml: Alcotest Kernel Ppc Printf Sim
