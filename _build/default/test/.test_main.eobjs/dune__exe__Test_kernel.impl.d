test/test_kernel.ml: Alcotest Array Kernel List Machine Option Printf Sim
