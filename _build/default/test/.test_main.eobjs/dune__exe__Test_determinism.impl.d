test/test_determinism.ml: Alcotest Array Experiments Hashtbl Kernel List Machine Ppc Printf QCheck_alcotest Sim
