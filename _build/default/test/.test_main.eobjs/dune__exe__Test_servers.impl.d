test/test_servers.ml: Alcotest Fun Int Kernel List Machine Naming Option Ppc Printf Servers Sim
