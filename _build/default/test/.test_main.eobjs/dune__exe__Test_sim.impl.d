test/test_sim.ml: Alcotest Float Gen Int List Option QCheck QCheck_alcotest Sim
