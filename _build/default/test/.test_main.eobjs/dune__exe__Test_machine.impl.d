test/test_machine.ml: Alcotest Gen List Machine QCheck QCheck_alcotest
