test/test_naming.ml: Alcotest Gen Kernel Naming Option Ppc Printf QCheck QCheck_alcotest
