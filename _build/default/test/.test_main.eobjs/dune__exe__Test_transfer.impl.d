test/test_transfer.ml: Alcotest Kernel Machine Ppc Printf QCheck QCheck_alcotest Transfer
