test/test_misc.ml: Alcotest Fmt Hashtbl Kernel List Machine Naming Ppc Printf Sim
