test/test_vm.ml: Alcotest Kernel Machine Option Ppc Printf Servers Sim Vm
