test/test_sysmgr.ml: Alcotest Kernel Machine Naming Ppc Sysmgr Vm
