test/test_ppc.ml: Alcotest Experiments Fun Kernel List Machine Option Ppc Printf QCheck QCheck_alcotest
