test/test_properties.ml: Array Fun Int Kernel List Machine Ppc Printf QCheck QCheck_alcotest Vm
