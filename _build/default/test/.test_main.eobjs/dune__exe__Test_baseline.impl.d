test/test_baseline.ml: Alcotest Baseline Kernel Machine Ppc Printf
