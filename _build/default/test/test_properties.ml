(* Cross-cutting property tests: random workloads against reference
   models and invariants. *)

let qcheck = QCheck_alcotest.to_alcotest

let spawn_client kern ~cpu ~name body =
  let program = Kernel.new_program kern ~name in
  let space = Kernel.new_user_space kern ~name ~node:cpu in
  Kernel.spawn kern ~cpu ~name ~kind:Kernel.Process.Client ~program ~space body

(* --- cluster topology ------------------------------------------------------ *)

let prop_cluster_members_partition =
  QCheck.Test.make ~name:"clusters partition the CPUs" ~count:200
    QCheck.(pair (1 -- 64) (1 -- 16))
    (fun (cpus, cluster_size) ->
      let c = Kernel.Cluster.create ~cpus ~cluster_size in
      let all =
        List.concat_map
          (fun cl -> Kernel.Cluster.members c ~cluster:cl)
          (List.init (Kernel.Cluster.n_clusters c) Fun.id)
      in
      List.sort Int.compare all = List.init cpus Fun.id)

let prop_cluster_of_roundtrip =
  QCheck.Test.make ~name:"cpu belongs to its own cluster" ~count:200
    QCheck.(triple (1 -- 64) (1 -- 16) (0 -- 63))
    (fun (cpus, cluster_size, cpu) ->
      QCheck.assume (cpu < cpus);
      let c = Kernel.Cluster.create ~cpus ~cluster_size in
      let cl = Kernel.Cluster.cluster_of c ~cpu in
      List.mem cpu (Kernel.Cluster.members c ~cluster:cl))

(* --- PPC echo: random payloads survive the register convention ------------- *)

let prop_ppc_echo_roundtrip =
  QCheck.Test.make ~name:"random 7-word payloads echo exactly" ~count:40
    QCheck.(array_of_size (QCheck.Gen.return 7) (0 -- 0xFFFF))
    (fun payload ->
      let kern = Kernel.create ~cpus:1 () in
      let ppc = Ppc.create kern in
      let server = Ppc.make_user_server ppc ~name:"echo" () in
      let ep = Ppc.register_direct ppc ~server ~handler:Ppc.Null_server.echo in
      Ppc.prime ppc ~ep ~cpus:[ 0 ];
      let ok = ref false in
      ignore
        (spawn_client kern ~cpu:0 ~name:"c" (fun self ->
             let args = Ppc.Reg_args.make () in
             Array.iteri (fun i v -> Ppc.Reg_args.set args i v) payload;
             let rc =
               Ppc.call ppc ~client:self ~ep_id:(Ppc.Entry_point.id ep) args
             in
             ok :=
               rc = Ppc.Reg_args.ok
               && Array.for_all2 ( = ) payload
                    (Array.init 7 (fun i -> Ppc.Reg_args.get args i))));
      Kernel.run kern;
      !ok)

(* --- msg_compat: random payloads through three PPCs ------------------------- *)

let prop_compat_payload_roundtrip =
  QCheck.Test.make ~name:"compat layer preserves random payloads" ~count:25
    QCheck.(list_of_size (QCheck.Gen.int_range 1 7) (0 -- 0xFFFFF))
    (fun payload_list ->
      let payload = Array.of_list payload_list in
      let kern = Kernel.create ~cpus:1 () in
      let ppc = Ppc.create kern in
      let engine = Ppc.engine ppc in
      let port = Ppc.Msg_compat.make_port engine ~name:"p" in
      ignore
        (spawn_client kern ~cpu:0 ~name:"server" (fun self ->
             Ppc.Msg_compat.serve engine port ~server:self (fun p -> p)));
      let ok = ref false in
      ignore
        (spawn_client kern ~cpu:0 ~name:"client" (fun self ->
             match Ppc.Msg_compat.send engine port ~client:self payload with
             | Ok reply ->
                 ok :=
                   Array.for_all2 ( = )
                     (Array.init 7 (fun i ->
                          if i < Array.length payload then payload.(i) else 0))
                     reply
             | Error _ -> ()));
      Kernel.run kern;
      !ok)

(* --- VM: random touch pattern vs a reference fault model -------------------- *)

let prop_vm_faults_once_per_page =
  QCheck.Test.make ~name:"vm faults exactly once per distinct page" ~count:30
    QCheck.(list_of_size (QCheck.Gen.int_range 1 40) (0 -- (8 * 4096 - 1)))
    (fun offsets ->
      let base = 0x40_0000 in
      let kern = Kernel.create ~cpus:1 () in
      let space = Kernel.new_user_space kern ~name:"app" ~node:0 in
      let vm = Vm.create kern ~space ~node:0 in
      ignore
        (Vm.add_region vm ~base ~len:(8 * 4096) ~backing:Vm.Demand_zero
           ~prot:Vm.Rw);
      let distinct_pages =
        List.sort_uniq Int.compare (List.map (fun o -> o / 4096) offsets)
      in
      let ok = ref false in
      ignore
        (spawn_client kern ~cpu:0 ~name:"app" (fun self ->
             let cpu = Machine.cpu (Kernel.machine kern) 0 in
             List.iter
               (fun o -> Vm.read vm ~cpu ~proc:self ~vaddr:(base + o))
               offsets;
             (* Touch everything again: no new faults. *)
             let faults_before = Vm.faults vm in
             List.iter
               (fun o -> Vm.write vm ~cpu ~proc:self ~vaddr:(base + o))
               offsets;
             ok :=
               faults_before = List.length distinct_pages
               && Vm.faults vm = faults_before));
      Kernel.run kern;
      !ok)

(* --- account: charges are conserved across categories ----------------------- *)

let prop_account_total_conserved =
  QCheck.Test.make ~name:"account total = sum of category charges" ~count:200
    QCheck.(list (pair (0 -- 8) (0 -- 1000)))
    (fun charges ->
      let a = Machine.Account.create () in
      List.iter
        (fun (i, n) ->
          Machine.Account.charge a (List.nth Machine.Account.all i) n)
        charges;
      Machine.Account.total a = List.fold_left (fun acc (_, n) -> acc + n) 0 charges)

(* --- engine: random interleavings still conserve calls ----------------------- *)

let prop_calls_conserved_across_cpus =
  QCheck.Test.make ~name:"every started call completes exactly once" ~count:15
    QCheck.(pair (1 -- 4) (1 -- 20))
    (fun (cpus, calls_per_client) ->
      let kern = Kernel.create ~cpus () in
      let ppc = Ppc.create kern in
      let server = Ppc.make_user_server ppc ~name:"s" () in
      let ep = Ppc.register_direct ppc ~server ~handler:Ppc.Null_server.echo in
      Ppc.prime ppc ~ep ~cpus:(List.init cpus Fun.id);
      let completed = Array.make cpus 0 in
      for cpu = 0 to cpus - 1 do
        ignore
          (spawn_client kern ~cpu ~name:(Printf.sprintf "c%d" cpu) (fun self ->
               for _ = 1 to calls_per_client do
                 if
                   Ppc.call ppc ~client:self ~ep_id:(Ppc.Entry_point.id ep)
                     (Ppc.Reg_args.make ())
                   = Ppc.Reg_args.ok
                 then completed.(cpu) <- completed.(cpu) + 1
               done))
      done;
      Kernel.run kern;
      Array.for_all (fun c -> c = calls_per_client) completed
      && Ppc.Entry_point.total_calls ep = cpus * calls_per_client
      && Ppc.Entry_point.in_progress_total ep = 0)

let suites =
  [
    ( "properties",
      [
        qcheck prop_cluster_members_partition;
        qcheck prop_cluster_of_roundtrip;
        qcheck prop_ppc_echo_roundtrip;
        qcheck prop_compat_payload_roundtrip;
        qcheck prop_vm_faults_once_per_page;
        qcheck prop_account_total_conserved;
        qcheck prop_calls_conserved_across_cpus;
      ] );
  ]
