(* Tests for the PPC facility: register args, pools, the call engine and
   its variants, Frank, kills, exchange. *)

let qcheck = QCheck_alcotest.to_alcotest

let spawn_client kern ~cpu ~name body =
  let program = Kernel.new_program kern ~name in
  let space = Kernel.new_user_space kern ~name ~node:cpu in
  Kernel.spawn kern ~cpu ~name ~kind:Kernel.Process.Client ~program ~space body

let null_setup ?(cpus = 1) ?(hold_cd = false) ?(kind = `User) () =
  let kern = Kernel.create ~cpus () in
  let ppc = Ppc.create kern in
  let server =
    match kind with
    | `User -> Ppc.make_user_server ppc ~name:"srv" ~hold_cd ()
    | `Kernel -> Ppc.make_kernel_server ppc ~name:"srv" ~hold_cd ()
  in
  let ep = Ppc.register_direct ppc ~server ~handler:Ppc.Null_server.adder in
  Ppc.prime ppc ~ep ~cpus:(List.init cpus Fun.id);
  (kern, ppc, ep)

(* --- register args ----------------------------------------------------- *)

let test_reg_args_basics () =
  let a = Ppc.Reg_args.of_list [ 1; 2; 3 ] in
  Alcotest.(check int) "slot 0" 1 (Ppc.Reg_args.get a 0);
  Alcotest.(check int) "slot 3 default" 0 (Ppc.Reg_args.get a 3);
  Ppc.Reg_args.set a 7 99;
  Alcotest.(check int) "rc slot" 99 (Ppc.Reg_args.rc a);
  Alcotest.check_raises "nine words rejected"
    (Invalid_argument "Reg_args.of_list: more than 8 words") (fun () ->
      ignore (Ppc.Reg_args.of_list [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ]))

let prop_opflags_roundtrip =
  QCheck.Test.make ~name:"op/flags pack-unpack roundtrip" ~count:300
    QCheck.(pair (0 -- 0xFFFF) (0 -- 0xFFFF))
    (fun (op, flags) ->
      let packed = Ppc.Reg_args.op_flags ~op ~flags in
      Ppc.Reg_args.op_of packed = op && Ppc.Reg_args.flags_of packed = flags)

let test_reg_args_bounds () =
  let a = Ppc.Reg_args.make () in
  Alcotest.check_raises "get out of range"
    (Invalid_argument "Reg_args.get: slot out of range") (fun () ->
      ignore (Ppc.Reg_args.get a 8));
  Alcotest.check_raises "set out of range"
    (Invalid_argument "Reg_args.set: slot out of range") (fun () ->
      Ppc.Reg_args.set a (-1) 0)

(* --- CD pool ----------------------------------------------------------- *)

let test_cd_pool_lifo () =
  let kern = Kernel.create ~cpus:1 () in
  let ppc = Ppc.create kern in
  let engine = Ppc.engine ppc in
  let pool = Ppc.Engine.cd_pool engine 0 in
  let cpu = Machine.cpu (Kernel.machine kern) 0 in
  let a = Option.get (Ppc.Cd_pool.alloc cpu pool) in
  let b = Option.get (Ppc.Cd_pool.alloc cpu pool) in
  Alcotest.(check bool) "distinct CDs" true
    (Ppc.Call_descriptor.index a <> Ppc.Call_descriptor.index b);
  Ppc.Cd_pool.release cpu pool b;
  let c = Option.get (Ppc.Cd_pool.alloc cpu pool) in
  Alcotest.(check int) "LIFO: most recent reused"
    (Ppc.Call_descriptor.index b) (Ppc.Call_descriptor.index c)

let test_cd_pool_empty_and_foreign () =
  let kern = Kernel.create ~cpus:2 () in
  let ppc = Ppc.create kern in
  let engine = Ppc.engine ppc in
  let pool0 = Ppc.Engine.cd_pool engine 0 in
  let cpu = Machine.cpu (Kernel.machine kern) 0 in
  let taken = ref [] in
  let rec drain () =
    match Ppc.Cd_pool.alloc cpu pool0 with
    | Some cd ->
        taken := cd :: !taken;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check bool) "eventually empty" true
    (Ppc.Cd_pool.alloc cpu pool0 = None);
  Alcotest.(check bool) "empty hits counted" true
    (Ppc.Cd_pool.empty_hits pool0 > 0);
  (* Returning a CPU-0 CD to CPU 1's pool is a bug the pool catches. *)
  let pool1 = Ppc.Engine.cd_pool engine 1 in
  Alcotest.check_raises "foreign release rejected"
    (Invalid_argument "Cd_pool.release: CD returned to a foreign processor")
    (fun () -> Ppc.Cd_pool.release cpu pool1 (List.hd !taken))

(* --- basic calls -------------------------------------------------------- *)

let test_call_returns_results () =
  let kern, ppc, ep = null_setup () in
  let got = ref 0 in
  ignore
    (spawn_client kern ~cpu:0 ~name:"c" (fun self ->
         let args = Ppc.Reg_args.of_list [ 19; 23 ] in
         let rc = Ppc.call ppc ~client:self ~ep_id:(Ppc.Entry_point.id ep) args in
         Alcotest.(check int) "rc" Ppc.Reg_args.ok rc;
         got := Ppc.Reg_args.get args 0));
  Kernel.run kern;
  Alcotest.(check int) "sum returned in registers" 42 !got

let test_call_unknown_ep () =
  let kern, ppc, _ep = null_setup () in
  let rc = ref 0 in
  ignore
    (spawn_client kern ~cpu:0 ~name:"c" (fun self ->
         rc := Ppc.call ppc ~client:self ~ep_id:777 (Ppc.Reg_args.make ())));
  Kernel.run kern;
  Alcotest.(check int) "err_no_entry" Ppc.Reg_args.err_no_entry !rc

let test_single_worker_reused () =
  let kern, ppc, ep = null_setup () in
  ignore
    (spawn_client kern ~cpu:0 ~name:"c" (fun self ->
         for _ = 1 to 50 do
           ignore
             (Ppc.call ppc ~client:self ~ep_id:(Ppc.Entry_point.id ep)
                (Ppc.Reg_args.make ()))
         done));
  Kernel.run kern;
  (* The pool most commonly contains a single worker (Section 2). *)
  Alcotest.(check int) "one worker serves sequential load" 1
    (Ppc.Entry_point.workers_total ep);
  Alcotest.(check int) "all calls counted" 50 (Ppc.Entry_point.total_calls ep)

let test_frank_creates_worker_on_demand () =
  let kern = Kernel.create ~cpus:1 () in
  let ppc = Ppc.create kern in
  let server = Ppc.make_user_server ppc ~name:"srv" () in
  let ep = Ppc.register_direct ppc ~server ~handler:Ppc.Null_server.echo in
  (* No prime: the first call must hit Frank's slow path. *)
  let rc = ref (-1) in
  ignore
    (spawn_client kern ~cpu:0 ~name:"c" (fun self ->
         rc :=
           Ppc.call ppc ~client:self ~ep_id:(Ppc.Entry_point.id ep)
             (Ppc.Reg_args.make ())));
  Kernel.run kern;
  Alcotest.(check int) "call still succeeds" Ppc.Reg_args.ok !rc;
  Alcotest.(check int) "slow path taken" 1
    (Ppc.stats ppc).Ppc.Engine.frank_worker_creations

(* Concurrency on one CPU: a blocking server forces the pool to grow
   ("pools can grow and shrink dynamically as needed"). *)
let test_worker_pool_grows_under_blocking () =
  let kern = Kernel.create ~cpus:1 () in
  let ppc = Ppc.create kern in
  let kc = Kernel.kcpu kern 0 in
  let blocked = ref [] in
  let release_all () =
    List.iter (fun p -> Kernel.Kcpu.ready kc p) (List.rev !blocked);
    blocked := []
  in
  let handler : Ppc.Call_ctx.handler =
   fun ctx args ->
    Machine.Cpu.instr ctx.Ppc.Call_ctx.cpu 10;
    blocked := ctx.Ppc.Call_ctx.self :: !blocked;
    Kernel.Kcpu.block ctx.Ppc.Call_ctx.kcpu ctx.Ppc.Call_ctx.self;
    Ppc.Reg_args.set_rc args Ppc.Reg_args.ok
  in
  let server = Ppc.make_user_server ppc ~name:"blocking" () in
  let ep = Ppc.register_direct ppc ~server ~handler in
  Ppc.prime ppc ~ep ~cpus:[ 0 ];
  let completions = ref 0 in
  for i = 1 to 3 do
    ignore
      (spawn_client kern ~cpu:0 ~name:(Printf.sprintf "c%d" i) (fun self ->
           let rc =
             Ppc.call ppc ~client:self ~ep_id:(Ppc.Entry_point.id ep)
               (Ppc.Reg_args.make ())
           in
           if rc = Ppc.Reg_args.ok then incr completions))
  done;
  ignore
    (spawn_client kern ~cpu:0 ~name:"releaser" (fun _ ->
         (* By now all three clients are inside the server, blocked. *)
         Alcotest.(check int) "three blocked workers" 3 (List.length !blocked);
         release_all ()));
  Kernel.run kern;
  Alcotest.(check int) "all calls completed" 3 !completions;
  Alcotest.(check int) "pool grew to three workers" 3
    (Ppc.Entry_point.workers_total ep)

let test_per_cpu_pools_are_independent () =
  let kern, ppc, ep = null_setup ~cpus:3 () in
  ignore ppc;
  let done_ = ref 0 in
  for cpu = 0 to 2 do
    ignore
      (spawn_client kern ~cpu ~name:(Printf.sprintf "c%d" cpu) (fun self ->
           for _ = 1 to 10 do
             ignore
               (Ppc.call ppc ~client:self ~ep_id:(Ppc.Entry_point.id ep)
                  (Ppc.Reg_args.make ()))
           done;
           incr done_))
  done;
  Kernel.run kern;
  Alcotest.(check int) "all clients done" 3 !done_;
  for cpu = 0 to 2 do
    let pcs = Ppc.Entry_point.per_cpu ep cpu in
    Alcotest.(check int)
      (Printf.sprintf "cpu %d has exactly its own worker" cpu)
      1 pcs.Ppc.Entry_point.workers_created
  done

(* --- async, inject, upcall --------------------------------------------- *)

let test_async_call_completion () =
  let kern, ppc, ep = null_setup () in
  let order = ref [] in
  ignore
    (spawn_client kern ~cpu:0 ~name:"c" (fun self ->
         let args = Ppc.Reg_args.of_list [ 40; 2 ] in
         Ppc.async_call ppc ~client:self
           ~on_complete:(fun a -> order := ("done", Ppc.Reg_args.get a 0) :: !order)
           ~ep_id:(Ppc.Entry_point.id ep) args;
         order := ("caller-continues", 0) :: !order));
  Kernel.run kern;
  (* The worker runs first (hand-off), completes, then the caller resumes
     from the ready queue. *)
  Alcotest.(check (list (pair string int)))
    "worker first, caller resumed after"
    [ ("done", 42); ("caller-continues", 0) ]
    (List.rev !order)

let test_upcall_delivery () =
  let kern = Kernel.create ~cpus:2 () in
  let ppc = Ppc.create kern in
  let seen = ref [] in
  let handler : Ppc.Call_ctx.handler =
   fun ctx args ->
    Machine.Cpu.instr ctx.Ppc.Call_ctx.cpu 5;
    seen := Ppc.Reg_args.get args 0 :: !seen;
    Ppc.Reg_args.set_rc args Ppc.Reg_args.ok
  in
  let server = Ppc.make_kernel_server ppc ~name:"upcallee" () in
  let ep = Ppc.register_direct ppc ~server ~handler in
  Ppc.prime ppc ~ep ~cpus:[ 0; 1 ];
  Ppc.Upcall.trigger (Ppc.engine ppc) ~cpu_index:1
    ~ep_id:(Ppc.Entry_point.id ep)
    (Ppc.Reg_args.of_list [ 123 ]);
  Kernel.run kern;
  Alcotest.(check (list int)) "upcall delivered" [ 123 ] !seen

(* --- Frank, naming the protocol ---------------------------------------- *)

let test_frank_alloc_and_grow () =
  let kern = Kernel.create ~cpus:2 () in
  let ppc = Ppc.create kern in
  let server = Ppc.make_user_server ppc ~name:"dyn" () in
  let ep_out = ref (-1) in
  ignore
    (spawn_client kern ~cpu:0 ~name:"registrar" (fun self ->
         (match
            Ppc.register ppc ~client:self ~server ~handler:Ppc.Null_server.echo
          with
         | Ok ep_id -> ep_out := ep_id
         | Error rc -> Alcotest.failf "alloc failed rc=%d" rc);
         let rc =
           Ppc.Frank.grow_pool (Ppc.frank ppc) ~client:self ~ep_id:!ep_out
             ~cpu_index:1
         in
         Alcotest.(check int) "grow_pool ok" Ppc.Reg_args.ok rc));
  Kernel.run kern;
  Alcotest.(check bool) "entry point exists" true
    (Option.is_some (Ppc.find_ep ppc !ep_out));
  let ep = Option.get (Ppc.find_ep ppc !ep_out) in
  Alcotest.(check int) "cpu1 pool grown" 1
    (Ppc.Entry_point.per_cpu ep 1).Ppc.Entry_point.workers_created

let test_frank_bad_ops () =
  let kern = Kernel.create ~cpus:1 () in
  let ppc = Ppc.create kern in
  let rc_bad_op = ref 0 and rc_bad_ep = ref 0 in
  ignore
    (spawn_client kern ~cpu:0 ~name:"c" (fun self ->
         let args = Ppc.Reg_args.make () in
         Ppc.Reg_args.set_op args ~op:999 ~flags:0;
         rc_bad_op :=
           Ppc.call ppc ~client:self
             ~opflags:(Ppc.Reg_args.op_flags ~op:999 ~flags:0)
             ~ep_id:Ppc.Frank.well_known_id args;
         rc_bad_ep := Ppc.Frank.soft_kill (Ppc.frank ppc) ~client:self ~ep_id:555));
  Kernel.run kern;
  Alcotest.(check int) "unknown op" Ppc.Reg_args.err_bad_request !rc_bad_op;
  Alcotest.(check int) "unknown ep" Ppc.Reg_args.err_no_entry !rc_bad_ep

(* --- kills and exchange ------------------------------------------------- *)

let test_soft_kill_lets_calls_finish () =
  let kern = Kernel.create ~cpus:1 () in
  let ppc = Ppc.create kern in
  let kc = Kernel.kcpu kern 0 in
  let blocked = ref None in
  let handler : Ppc.Call_ctx.handler =
   fun ctx args ->
    blocked := Some ctx.Ppc.Call_ctx.self;
    Kernel.Kcpu.block ctx.Ppc.Call_ctx.kcpu ctx.Ppc.Call_ctx.self;
    Ppc.Reg_args.set_rc args Ppc.Reg_args.ok
  in
  let server = Ppc.make_user_server ppc ~name:"victim" () in
  let ep = Ppc.register_direct ppc ~server ~handler in
  Ppc.prime ppc ~ep ~cpus:[ 0 ];
  let ep_id = Ppc.Entry_point.id ep in
  let first_rc = ref (-99) and second_rc = ref (-99) in
  ignore
    (spawn_client kern ~cpu:0 ~name:"c1" (fun self ->
         first_rc := Ppc.call ppc ~client:self ~ep_id (Ppc.Reg_args.make ())));
  ignore
    (spawn_client kern ~cpu:0 ~name:"killer" (fun self ->
         Ppc.soft_kill ppc ~ep_id;
         (* New calls are rejected while the old one drains. *)
         second_rc := Ppc.call ppc ~client:self ~ep_id (Ppc.Reg_args.make ());
         Kernel.Kcpu.ready kc (Option.get !blocked)));
  Kernel.run kern;
  Alcotest.(check int) "in-progress call completed" Ppc.Reg_args.ok !first_rc;
  Alcotest.(check int) "new call rejected" Ppc.Reg_args.err_killed !second_rc;
  Alcotest.(check bool) "entry point finalized" true
    (Ppc.find_ep ppc ep_id = None)

let test_hard_kill_aborts_blocked_calls () =
  let kern = Kernel.create ~cpus:1 () in
  let ppc = Ppc.create kern in
  let handler : Ppc.Call_ctx.handler =
   fun ctx args ->
    (* A faulty server: blocks forever. *)
    Kernel.Kcpu.block ctx.Ppc.Call_ctx.kcpu ctx.Ppc.Call_ctx.self;
    Ppc.Reg_args.set_rc args Ppc.Reg_args.ok
  in
  let server = Ppc.make_user_server ppc ~name:"stuck" () in
  let ep = Ppc.register_direct ppc ~server ~handler in
  Ppc.prime ppc ~ep ~cpus:[ 0 ];
  let ep_id = Ppc.Entry_point.id ep in
  let rc = ref (-99) in
  ignore
    (spawn_client kern ~cpu:0 ~name:"victim-client" (fun self ->
         rc := Ppc.call ppc ~client:self ~ep_id (Ppc.Reg_args.make ())));
  ignore
    (spawn_client kern ~cpu:0 ~name:"killer" (fun _ -> Ppc.hard_kill ppc ~ep_id));
  Kernel.run kern;
  Alcotest.(check int) "caller released with error" Ppc.Reg_args.err_killed !rc;
  Alcotest.(check bool) "entry point gone" true (Ppc.find_ep ppc ep_id = None);
  Alcotest.(check int) "abort counted" 1 (Ppc.stats ppc).Ppc.Engine.aborted_calls

let test_exchange_swaps_handler () =
  let kern = Kernel.create ~cpus:1 () in
  let ppc = Ppc.create kern in
  let server = Ppc.make_user_server ppc ~name:"svc" () in
  let v1 : Ppc.Call_ctx.handler =
   fun ctx args ->
    Machine.Cpu.instr ctx.Ppc.Call_ctx.cpu 5;
    Ppc.Reg_args.set args 0 1;
    Ppc.Reg_args.set_rc args Ppc.Reg_args.ok
  in
  let v2 : Ppc.Call_ctx.handler =
   fun ctx args ->
    Machine.Cpu.instr ctx.Ppc.Call_ctx.cpu 5;
    Ppc.Reg_args.set args 0 2;
    Ppc.Reg_args.set_rc args Ppc.Reg_args.ok
  in
  let ep = Ppc.register_direct ppc ~server ~handler:v1 in
  Ppc.prime ppc ~ep ~cpus:[ 0 ];
  let ep_id = Ppc.Entry_point.id ep in
  let before = ref 0 and after = ref 0 in
  ignore
    (spawn_client kern ~cpu:0 ~name:"c" (fun self ->
         let args = Ppc.Reg_args.make () in
         ignore (Ppc.call ppc ~client:self ~ep_id args);
         before := Ppc.Reg_args.get args 0;
         let rc = Ppc.Frank.exchange (Ppc.frank ppc) ~client:self ~ep_id ~handler:v2 in
         Alcotest.(check int) "exchange ok" Ppc.Reg_args.ok rc;
         let args = Ppc.Reg_args.make () in
         ignore (Ppc.call ppc ~client:self ~ep_id args);
         after := Ppc.Reg_args.get args 0));
  Kernel.run kern;
  Alcotest.(check int) "old handler before" 1 !before;
  Alcotest.(check int) "new handler after (same ID)" 2 !after

(* --- worker initialization (4.5.3) -------------------------------------- *)

let test_worker_init_swap () =
  let kern = Kernel.create ~cpus:1 () in
  let ppc = Ppc.create kern in
  let inits = ref 0 and serves = ref 0 in
  let rec init_handler ctx args =
    incr inits;
    ctx.Ppc.Call_ctx.swap_handler real_handler;
    real_handler ctx args
  and real_handler ctx args =
    Machine.Cpu.instr ctx.Ppc.Call_ctx.cpu 5;
    incr serves;
    Ppc.Reg_args.set_rc args Ppc.Reg_args.ok
  in
  let server = Ppc.make_user_server ppc ~name:"initful" () in
  let ep = Ppc.register_direct ppc ~server ~handler:init_handler in
  Ppc.prime ppc ~ep ~cpus:[ 0 ];
  ignore
    (spawn_client kern ~cpu:0 ~name:"c" (fun self ->
         for _ = 1 to 10 do
           ignore
             (Ppc.call ppc ~client:self ~ep_id:(Ppc.Entry_point.id ep)
                (Ppc.Reg_args.make ()))
         done));
  Kernel.run kern;
  Alcotest.(check int) "init ran exactly once" 1 !inits;
  Alcotest.(check int) "all calls served" 10 !serves

(* --- performance invariants -------------------------------------------- *)

let total_us cond = (Experiments.Fig2.run cond).Experiments.Fig2.total_us

let test_user_kernel_cheaper_than_user_user () =
  let u2u =
    total_us { Experiments.Fig2.target = Experiments.Fig2.To_user; hold_cd = false; flushed = false }
  in
  let u2k =
    total_us { Experiments.Fig2.target = Experiments.Fig2.To_kernel; hold_cd = false; flushed = false }
  in
  Alcotest.(check bool)
    (Printf.sprintf "u->k (%.1f) < u->u (%.1f)" u2k u2u)
    true (u2k < u2u)

let test_hold_cd_cheaper_per_call () =
  let hold =
    total_us { Experiments.Fig2.target = Experiments.Fig2.To_user; hold_cd = true; flushed = false }
  in
  let no_hold =
    total_us { Experiments.Fig2.target = Experiments.Fig2.To_user; hold_cd = false; flushed = false }
  in
  Alcotest.(check bool)
    (Printf.sprintf "hold (%.1f) < no-hold (%.1f)" hold no_hold)
    true (hold < no_hold)

let test_flushed_dearer_than_primed () =
  let primed =
    total_us { Experiments.Fig2.target = Experiments.Fig2.To_user; hold_cd = false; flushed = false }
  in
  let flushed =
    total_us { Experiments.Fig2.target = Experiments.Fig2.To_user; hold_cd = false; flushed = true }
  in
  Alcotest.(check bool)
    (Printf.sprintf "flushed (%.1f) > primed + 10 (%.1f)" flushed primed)
    true
    (flushed > primed +. 10.0)

let test_no_locks_no_shared_data_on_fast_path () =
  (* Two CPUs calling the same server concurrently must show zero lock
     acquisitions anywhere in the PPC layer: the engine has no locks at
     all, so we assert structurally — per-CPU pools were used and no
     Frank redirects happened after priming. *)
  let kern, ppc, ep = null_setup ~cpus:2 () in
  let done_ = ref 0 in
  for cpu = 0 to 1 do
    ignore
      (spawn_client kern ~cpu ~name:(Printf.sprintf "c%d" cpu) (fun self ->
           for _ = 1 to 25 do
             ignore
               (Ppc.call ppc ~client:self ~ep_id:(Ppc.Entry_point.id ep)
                  (Ppc.Reg_args.make ()))
           done;
           incr done_))
  done;
  Kernel.run kern;
  Alcotest.(check int) "both done" 2 !done_;
  Alcotest.(check int) "no slow-path redirects"
    0
    (Ppc.stats ppc).Ppc.Engine.frank_worker_creations;
  Alcotest.(check int) "no CD slow path" 0
    (Ppc.stats ppc).Ppc.Engine.frank_cd_creations

(* --- remote calls ------------------------------------------------------- *)

let test_remote_call_roundtrip () =
  let kern = Kernel.create ~cpus:4 () in
  let ppc = Ppc.create kern in
  let remote = Ppc.Remote_call.install (Ppc.engine ppc) in
  let server = Ppc.make_kernel_server ppc ~name:"srv" () in
  let ep = Ppc.register_direct ppc ~server ~handler:Ppc.Null_server.adder in
  Ppc.prime ppc ~ep ~cpus:[ 0; 1; 2; 3 ];
  let sum = ref 0 and local_sum = ref 0 in
  ignore
    (spawn_client kern ~cpu:0 ~name:"c" (fun self ->
         let args = Ppc.Reg_args.of_list [ 30; 12 ] in
         let rc =
           Ppc.Remote_call.call remote ~client:self ~target_cpu:2
             ~ep_id:(Ppc.Entry_point.id ep) args
         in
         Alcotest.(check int) "remote rc" Ppc.Reg_args.ok rc;
         sum := Ppc.Reg_args.get args 0;
         (* target = own CPU falls back to the local fast path *)
         let args = Ppc.Reg_args.of_list [ 5; 6 ] in
         ignore
           (Ppc.Remote_call.call remote ~client:self ~target_cpu:0
              ~ep_id:(Ppc.Entry_point.id ep) args);
         local_sum := Ppc.Reg_args.get args 0));
  Kernel.run kern;
  Alcotest.(check int) "remote result" 42 !sum;
  Alcotest.(check int) "local fallback result" 11 !local_sum;
  Alcotest.(check int) "one remote call" 1 (Ppc.Remote_call.remote_calls remote)

let suites =
  [
    ( "ppc.reg_args",
      [
        Alcotest.test_case "basics" `Quick test_reg_args_basics;
        Alcotest.test_case "bounds" `Quick test_reg_args_bounds;
        qcheck prop_opflags_roundtrip;
      ] );
    ( "ppc.cd_pool",
      [
        Alcotest.test_case "LIFO reuse" `Quick test_cd_pool_lifo;
        Alcotest.test_case "empty + foreign release" `Quick
          test_cd_pool_empty_and_foreign;
      ] );
    ( "ppc.call",
      [
        Alcotest.test_case "results in registers" `Quick test_call_returns_results;
        Alcotest.test_case "unknown entry point" `Quick test_call_unknown_ep;
        Alcotest.test_case "single worker reused" `Quick test_single_worker_reused;
        Alcotest.test_case "Frank slow path" `Quick
          test_frank_creates_worker_on_demand;
        Alcotest.test_case "pool grows under blocking" `Quick
          test_worker_pool_grows_under_blocking;
        Alcotest.test_case "per-CPU pools independent" `Quick
          test_per_cpu_pools_are_independent;
        Alcotest.test_case "fast path never shares or locks" `Quick
          test_no_locks_no_shared_data_on_fast_path;
      ] );
    ( "ppc.variants",
      [
        Alcotest.test_case "async completes independently" `Quick
          test_async_call_completion;
        Alcotest.test_case "upcall delivery" `Quick test_upcall_delivery;
        Alcotest.test_case "remote call roundtrip" `Quick test_remote_call_roundtrip;
      ] );
    ( "ppc.frank",
      [
        Alcotest.test_case "alloc + grow via PPC" `Quick test_frank_alloc_and_grow;
        Alcotest.test_case "bad requests rejected" `Quick test_frank_bad_ops;
      ] );
    ( "ppc.lifecycle",
      [
        Alcotest.test_case "soft kill drains" `Quick test_soft_kill_lets_calls_finish;
        Alcotest.test_case "hard kill aborts" `Quick
          test_hard_kill_aborts_blocked_calls;
        Alcotest.test_case "exchange swaps handler" `Quick
          test_exchange_swaps_handler;
        Alcotest.test_case "worker init swap (4.5.3)" `Quick test_worker_init_swap;
      ] );
    ( "ppc.costs",
      [
        Alcotest.test_case "u->kernel cheaper" `Quick
          test_user_kernel_cheaper_than_user_user;
        Alcotest.test_case "hold-CD cheaper per call" `Quick
          test_hold_cd_cheaper_per_call;
        Alcotest.test_case "flushed dearer" `Quick test_flushed_dearer_than_primed;
      ] );
  ]

(* "A round trip user-to-user null call (with up to 8 arguments)": the
   register convention makes argument count free. *)
let test_register_args_are_free () =
  let measure n_args =
    let kern = Kernel.create ~cpus:1 () in
    let ppc = Ppc.create kern in
    let server = Ppc.make_user_server ppc ~name:"s" () in
    let ep = Ppc.register_direct ppc ~server ~handler:Ppc.Null_server.echo in
    Ppc.prime ppc ~ep ~cpus:[ 0 ];
    let cpu = Machine.cpu (Kernel.machine kern) 0 in
    let out = ref 0.0 in
    ignore
      (spawn_client kern ~cpu:0 ~name:"c" (fun self ->
           let args = Ppc.Reg_args.make () in
           for i = 0 to n_args - 1 do
             Ppc.Reg_args.set args i (i + 1)
           done;
           for _ = 1 to 8 do
             ignore (Ppc.call ppc ~client:self ~ep_id:(Ppc.Entry_point.id ep) args)
           done;
           let t0 = Machine.Cpu.elapsed_us cpu in
           for _ = 1 to 16 do
             ignore (Ppc.call ppc ~client:self ~ep_id:(Ppc.Entry_point.id ep) args)
           done;
           out := (Machine.Cpu.elapsed_us cpu -. t0) /. 16.0));
    Kernel.run kern;
    !out
  in
  let zero = measure 0 and full = measure 7 in
  Alcotest.(check (float 0.001))
    "0 and 7 argument words cost the same" zero full

let register_suite =
  ( "ppc.register_convention",
    [ Alcotest.test_case "arguments ride free" `Quick test_register_args_are_free ] )

let suites = suites @ [ register_suite ]
