(* Tests for the PPC extensions: multi-page stack policies (Section
   4.5.4) and trust-group stack sharing (Section 2). *)

let spawn_client kern ~cpu ~name body =
  let program = Kernel.new_program kern ~name in
  let space = Kernel.new_user_space kern ~name ~node:cpu in
  Kernel.spawn kern ~cpu ~name ~kind:Kernel.Process.Client ~program ~space body

let deep_setup ~policy ~pages =
  let kern = Kernel.create ~cpus:1 () in
  let ppc = Ppc.create kern in
  let server =
    Ppc.make_user_server ppc ~name:"deep" ~stack_policy:policy ()
  in
  let ep =
    Ppc.register_direct ppc ~server ~handler:(Ppc.Null_server.deep_handler ~pages ())
  in
  Ppc.prime ppc ~ep ~cpus:[ 0 ];
  (kern, ppc, ep)

let run_deep_calls (kern, ppc, ep) ~calls =
  let completed = ref 0 in
  let failed = ref None in
  ignore
    (spawn_client kern ~cpu:0 ~name:"c" (fun self ->
         for _ = 1 to calls do
           match
             Ppc.call ppc ~client:self ~ep_id:(Ppc.Entry_point.id ep)
               (Ppc.Reg_args.make ())
           with
           | rc when rc = Ppc.Reg_args.ok -> incr completed
           | rc -> failed := Some rc
         done));
  Kernel.run kern;
  (!completed, !failed)

let test_single_page_overflow_faults () =
  let world = deep_setup ~policy:Ppc.Entry_point.Single_page ~pages:3 in
  let completed, failed = run_deep_calls world ~calls:1 in
  Alcotest.(check int) "no completions" 0 completed;
  Alcotest.(check bool) "caller released with err_killed" true
    (failed = Some Ppc.Reg_args.err_killed)

let test_fixed_pages_policy () =
  let ((kern, ppc, _) as world) =
    deep_setup ~policy:(Ppc.Entry_point.Fixed_pages 3) ~pages:3
  in
  ignore kern;
  let completed, failed = run_deep_calls world ~calls:10 in
  Alcotest.(check (option int)) "no failures" None failed;
  Alcotest.(check int) "all deep calls completed" 10 completed;
  (* No page faults: pages were premapped. *)
  Alcotest.(check int) "no CD slow paths beyond priming" 0
    (Ppc.stats ppc).Ppc.Engine.frank_cd_creations

let test_fault_in_policy () =
  let world = deep_setup ~policy:(Ppc.Entry_point.Fault_in 4) ~pages:3 in
  let completed, failed = run_deep_calls world ~calls:10 in
  Alcotest.(check (option int)) "no failures" None failed;
  Alcotest.(check int) "all deep calls completed" 10 completed

let test_fault_in_beyond_limit_faults () =
  let world = deep_setup ~policy:(Ppc.Entry_point.Fault_in 2) ~pages:3 in
  let completed, failed = run_deep_calls world ~calls:1 in
  Alcotest.(check int) "no completions" 0 completed;
  Alcotest.(check bool) "caller released with err_killed" true
    (failed = Some Ppc.Reg_args.err_killed)

let test_fault_in_cheaper_when_shallow () =
  (* A shallow call under Fault_in pays nothing extra; under Fixed_pages
     it pays the extra mappings every call. *)
  let measure policy =
    let kern = Kernel.create ~cpus:1 () in
    let ppc = Ppc.create kern in
    let server = Ppc.make_user_server ppc ~name:"s" ~stack_policy:policy () in
    let ep =
      Ppc.register_direct ppc ~server
        ~handler:(Ppc.Null_server.handler ~instr:10 ~stack_words:4 ())
    in
    Ppc.prime ppc ~ep ~cpus:[ 0 ];
    let cpu = Machine.cpu (Kernel.machine kern) 0 in
    let out = ref 0.0 in
    ignore
      (spawn_client kern ~cpu:0 ~name:"c" (fun self ->
           for _ = 1 to 8 do
             ignore
               (Ppc.call ppc ~client:self ~ep_id:(Ppc.Entry_point.id ep)
                  (Ppc.Reg_args.make ()))
           done;
           let t0 = Machine.Cpu.elapsed_us cpu in
           for _ = 1 to 16 do
             ignore
               (Ppc.call ppc ~client:self ~ep_id:(Ppc.Entry_point.id ep)
                  (Ppc.Reg_args.make ()))
           done;
           out := (Machine.Cpu.elapsed_us cpu -. t0) /. 16.0));
    Kernel.run kern;
    !out
  in
  let fault_in = measure (Ppc.Entry_point.Fault_in 4) in
  let fixed = measure (Ppc.Entry_point.Fixed_pages 4) in
  Alcotest.(check bool)
    (Printf.sprintf "fault-in (%.1f us) < fixed (%.1f us) for shallow calls"
       fault_in fixed)
    true (fault_in < fixed)

let test_trust_groups_isolate_stacks () =
  let kern = Kernel.create ~cpus:1 () in
  let ppc = Ppc.create kern in
  let make ~name ~trust_group =
    let server = Ppc.make_user_server ppc ~name ~trust_group () in
    let ep =
      Ppc.register_direct ppc ~server
        ~handler:(Ppc.Null_server.handler ~instr:10 ~stack_words:4 ())
    in
    Ppc.prime ppc ~ep ~cpus:[ 0 ];
    Ppc.Entry_point.id ep
  in
  let ep_a = make ~name:"group1-a" ~trust_group:1 in
  let ep_b = make ~name:"group1-b" ~trust_group:1 in
  let ep_c = make ~name:"group2-c" ~trust_group:2 in
  ignore
    (spawn_client kern ~cpu:0 ~name:"c" (fun self ->
         for _ = 1 to 5 do
           List.iter
             (fun ep_id ->
               ignore (Ppc.call ppc ~client:self ~ep_id (Ppc.Reg_args.make ())))
             [ ep_a; ep_b; ep_c ]
         done));
  Kernel.run kern;
  (* Each non-default group created its own CD lazily (one per group on
     this CPU): groups 1 and 2 never share a stack page. *)
  Alcotest.(check int) "two group CDs created" 2
    (Ppc.stats ppc).Ppc.Engine.frank_cd_creations;
  (* The default pool was never touched. *)
  Alcotest.(check int) "default pool untouched" 0
    (Ppc.Cd_pool.allocs (Ppc.Engine.cd_pool (Ppc.engine ppc) 0))

let test_trust_group_shares_within_group () =
  let kern = Kernel.create ~cpus:1 () in
  let ppc = Ppc.create kern in
  let make ~name =
    let server = Ppc.make_user_server ppc ~name ~trust_group:7 () in
    let ep =
      Ppc.register_direct ppc ~server
        ~handler:(Ppc.Null_server.handler ~instr:10 ~stack_words:4 ())
    in
    Ppc.prime ppc ~ep ~cpus:[ 0 ];
    Ppc.Entry_point.id ep
  in
  let ep_a = make ~name:"g7-a" and ep_b = make ~name:"g7-b" in
  ignore
    (spawn_client kern ~cpu:0 ~name:"c" (fun self ->
         for _ = 1 to 6 do
           ignore (Ppc.call ppc ~client:self ~ep_id:ep_a (Ppc.Reg_args.make ()));
           ignore (Ppc.call ppc ~client:self ~ep_id:ep_b (Ppc.Reg_args.make ()))
         done));
  Kernel.run kern;
  (* Sequential calls within one group serially share a single CD. *)
  Alcotest.(check int) "one CD serves the whole group" 1
    (Ppc.stats ppc).Ppc.Engine.frank_cd_creations

let suites =
  [
    ( "ppc.stack_policy",
      [
        Alcotest.test_case "single page overflows fault" `Quick
          test_single_page_overflow_faults;
        Alcotest.test_case "fixed pages premap" `Quick test_fixed_pages_policy;
        Alcotest.test_case "fault-in grows on demand" `Quick test_fault_in_policy;
        Alcotest.test_case "fault-in bound enforced" `Quick
          test_fault_in_beyond_limit_faults;
        Alcotest.test_case "fault-in cheaper when shallow" `Quick
          test_fault_in_cheaper_when_shallow;
      ] );
    ( "ppc.trust_groups",
      [
        Alcotest.test_case "groups isolate stacks" `Quick
          test_trust_groups_isolate_stacks;
        Alcotest.test_case "sharing within a group" `Quick
          test_trust_group_shares_within_group;
      ] );
  ]

(* --- message compatibility layer (Section 5) ------------------------------ *)

let test_compat_round_trip () =
  let kern = Kernel.create ~cpus:1 () in
  let ppc = Ppc.create kern in
  let engine = Ppc.engine ppc in
  let port = Ppc.Msg_compat.make_port engine ~name:"echo" in
  ignore
    (spawn_client kern ~cpu:0 ~name:"server" (fun self ->
         Ppc.Msg_compat.serve engine port ~server:self (fun payload ->
             Array.map (fun x -> x * 3) payload)));
  let result = ref (Error 0) in
  ignore
    (spawn_client kern ~cpu:0 ~name:"client" (fun self ->
         result := Ppc.Msg_compat.send engine port ~client:self [| 1; 2; 3 |]));
  Kernel.run kern;
  (match !result with
  | Ok reply ->
      Alcotest.(check (array int)) "tripled payload"
        [| 3; 6; 9; 0; 0; 0; 0 |] reply
  | Error rc -> Alcotest.failf "send failed rc=%d" rc);
  Alcotest.(check int) "one send" 1 (Ppc.Msg_compat.sends port);
  Alcotest.(check int) "nothing pending" 0 (Ppc.Msg_compat.pending port)

let test_compat_receiver_blocks_first () =
  (* Server receives before any client sends: its worker must block, then
     serve the message when it arrives. *)
  let kern = Kernel.create ~cpus:1 () in
  let ppc = Ppc.create kern in
  let engine = Ppc.engine ppc in
  let port = Ppc.Msg_compat.make_port engine ~name:"p" in
  let served = ref 0 in
  ignore
    (spawn_client kern ~cpu:0 ~name:"server" (fun self ->
         match Ppc.Msg_compat.receive engine port ~server:self with
         | Ok msg_id ->
             incr served;
             ignore (Ppc.Msg_compat.reply engine port ~server:self ~msg_id [| 9 |])
         | Error rc -> Alcotest.failf "receive failed rc=%d" rc));
  ignore
    (spawn_client kern ~cpu:0 ~name:"client" (fun self ->
         match Ppc.Msg_compat.send engine port ~client:self [| 5 |] with
         | Ok reply -> Alcotest.(check int) "reply word" 9 reply.(0)
         | Error rc -> Alcotest.failf "send failed rc=%d" rc));
  Kernel.run kern;
  Alcotest.(check int) "served one" 1 !served

let test_compat_many_clients_fifo () =
  let kern = Kernel.create ~cpus:2 () in
  let ppc = Ppc.create kern in
  let engine = Ppc.engine ppc in
  let port = Ppc.Msg_compat.make_port engine ~name:"p" in
  let served_order = ref [] in
  ignore
    (spawn_client kern ~cpu:1 ~name:"server" (fun self ->
         Ppc.Msg_compat.serve engine port ~server:self (fun payload ->
             served_order := payload.(0) :: !served_order;
             payload)));
  let replies = ref 0 in
  for i = 1 to 3 do
    ignore
      (spawn_client kern ~cpu:0 ~name:(Printf.sprintf "c%d" i) (fun self ->
           match Ppc.Msg_compat.send engine port ~client:self [| i |] with
           | Ok _ -> incr replies
           | Error rc -> Alcotest.failf "send %d failed rc=%d" i rc))
  done;
  Kernel.run kern;
  Alcotest.(check int) "all replied" 3 !replies;
  Alcotest.(check (list int)) "served in send order" [ 1; 2; 3 ]
    (List.rev !served_order)

let test_compat_payload_limit () =
  let kern = Kernel.create ~cpus:1 () in
  let ppc = Ppc.create kern in
  let engine = Ppc.engine ppc in
  let port = Ppc.Msg_compat.make_port engine ~name:"p" in
  let raised = ref false in
  ignore
    (spawn_client kern ~cpu:0 ~name:"c" (fun self ->
         try ignore (Ppc.Msg_compat.send engine port ~client:self (Array.make 8 0))
         with Invalid_argument _ -> raised := true));
  Kernel.run kern;
  Alcotest.(check bool) "8-word payload rejected" true !raised

let compat_suite =
  ( "ppc.msg_compat",
    [
      Alcotest.test_case "round trip" `Quick test_compat_round_trip;
      Alcotest.test_case "receiver blocks first" `Quick
        test_compat_receiver_blocks_first;
      Alcotest.test_case "many clients FIFO" `Quick test_compat_many_clients_fifo;
      Alcotest.test_case "payload limit" `Quick test_compat_payload_limit;
    ] )

let suites = suites @ [ compat_suite ]

(* --- entry points beyond the fast array (Section 4.5.5) ------------------- *)

let test_overflow_entry_points () =
  let kern = Kernel.create ~cpus:1 () in
  let ppc = Ppc.create kern in
  let engine = Ppc.engine ppc in
  (* Fill the fast array (IDs 2..1023 are free; 0/1 are well-known). *)
  let handler = Ppc.Null_server.adder in
  let server = Ppc.make_user_server ppc ~name:"bulk" () in
  let last_fast = ref None and first_overflow = ref None in
  (try
     for _ = 1 to 1100 do
       let ep = Ppc.Engine.alloc_ep engine ~name:"svc" ~server ~handler in
       if Ppc.Entry_point.id ep < Ppc.Layout.max_entry_points then
         last_fast := Some ep
       else if !first_overflow = None then first_overflow := Some ep
     done
   with Invalid_argument msg -> Alcotest.failf "allocation failed: %s" msg);
  let fast = Option.get !last_fast and over = Option.get !first_overflow in
  Alcotest.(check bool) "overflow id beyond the array" true
    (Ppc.Entry_point.id over >= Ppc.Layout.max_entry_points);
  Ppc.prime ppc ~ep:fast ~cpus:[ 0 ];
  Ppc.prime ppc ~ep:over ~cpus:[ 0 ];
  let cpu = Machine.cpu (Kernel.machine kern) 0 in
  let fast_us = ref 0.0 and over_us = ref 0.0 in
  ignore
    (spawn_client kern ~cpu:0 ~name:"c" (fun self ->
         let time_calls ep_id =
           for _ = 1 to 8 do
             ignore (Ppc.call ppc ~client:self ~ep_id (Ppc.Reg_args.of_list [ 1; 2 ]))
           done;
           let t0 = Machine.Cpu.elapsed_us cpu in
           for _ = 1 to 16 do
             let args = Ppc.Reg_args.of_list [ 20; 22 ] in
             let rc = Ppc.call ppc ~client:self ~ep_id args in
             Alcotest.(check int) "rc ok" Ppc.Reg_args.ok rc;
             Alcotest.(check int) "result" 42 (Ppc.Reg_args.get args 0)
           done;
           (Machine.Cpu.elapsed_us cpu -. t0) /. 16.0
         in
         fast_us := time_calls (Ppc.Entry_point.id fast);
         over_us := time_calls (Ppc.Entry_point.id over)));
  Kernel.run kern;
  Alcotest.(check bool)
    (Printf.sprintf "overflow lookup dearer (%.2f vs %.2f us)" !over_us !fast_us)
    true
    (!over_us > !fast_us +. 0.3)

let test_overflow_kill_and_reuse () =
  let kern = Kernel.create ~cpus:1 () in
  let ppc = Ppc.create kern in
  let engine = Ppc.engine ppc in
  let server = Ppc.make_user_server ppc ~name:"bulk" () in
  for _ = 1 to 1100 do
    ignore (Ppc.Engine.alloc_ep engine ~name:"svc" ~server ~handler:Ppc.Null_server.echo)
  done;
  let over =
    Ppc.Engine.alloc_ep engine ~name:"victim" ~server ~handler:Ppc.Null_server.echo
  in
  let over_id = Ppc.Entry_point.id over in
  Alcotest.(check bool) "in overflow range" true
    (over_id >= Ppc.Layout.max_entry_points);
  Alcotest.(check bool) "findable" true (Ppc.find_ep ppc over_id <> None);
  Ppc.soft_kill ppc ~ep_id:over_id;
  Alcotest.(check bool) "gone after kill" true (Ppc.find_ep ppc over_id = None)

let overflow_suite =
  ( "ppc.ep_overflow",
    [
      Alcotest.test_case "overflow EPs callable and dearer" `Quick
        test_overflow_entry_points;
      Alcotest.test_case "kill and removal" `Quick test_overflow_kill_and_reuse;
    ] )

let suites = suites @ [ overflow_suite ]

(* --- pool reclaim (Section 2: pools shrink too) ---------------------------- *)

let test_reclaim_shrinks_pools () =
  let kern = Kernel.create ~cpus:1 () in
  let ppc = Ppc.create kern in
  let kc = Kernel.kcpu kern 0 in
  (* A blocking server so concurrent calls grow the pool. *)
  let blocked = ref [] in
  let handler : Ppc.Call_ctx.handler =
   fun ctx args ->
    blocked := ctx.Ppc.Call_ctx.self :: !blocked;
    Kernel.Kcpu.block ctx.Ppc.Call_ctx.kcpu ctx.Ppc.Call_ctx.self;
    Ppc.Reg_args.set_rc args Ppc.Reg_args.ok
  in
  let server = Ppc.make_user_server ppc ~name:"spiky" () in
  let ep = Ppc.register_direct ppc ~server ~handler in
  Ppc.prime ppc ~ep ~cpus:[ 0 ];
  let completions = ref 0 in
  for i = 1 to 4 do
    ignore
      (spawn_client kern ~cpu:0 ~name:(Printf.sprintf "c%d" i) (fun self ->
           if
             Ppc.call ppc ~client:self ~ep_id:(Ppc.Entry_point.id ep)
               (Ppc.Reg_args.make ())
             = Ppc.Reg_args.ok
           then incr completions))
  done;
  ignore
    (spawn_client kern ~cpu:0 ~name:"releaser" (fun _ ->
         List.iter (fun p -> Kernel.Kcpu.ready kc p) (List.rev !blocked);
         blocked := []));
  Kernel.run kern;
  Alcotest.(check int) "peak load served" 4 !completions;
  Alcotest.(check int) "pool grew to 4 workers" 4
    (Ppc.Entry_point.workers_total ep);
  (* Now reclaim back to steady state through Frank. *)
  let reclaimed = ref (Error 0) in
  ignore
    (spawn_client kern ~cpu:0 ~name:"janitor" (fun self ->
         reclaimed :=
           Ppc.Frank.reclaim (Ppc.frank ppc) ~client:self ~max_workers:1
             ~max_cds:2));
  Kernel.run kern;
  (match !reclaimed with
  | Ok (workers, cds) ->
      Alcotest.(check bool)
        (Printf.sprintf "some workers retired (%d) and CDs freed (%d)" workers cds)
        true
        (workers >= 3 && cds >= 1)
  | Error rc -> Alcotest.failf "reclaim failed rc=%d" rc);
  Alcotest.(check int) "pool back to one worker" 1
    (Ppc.Entry_point.workers_total ep);
  (* The entry point still works afterwards (workers regrow on demand). *)
  let rc = ref (-1) in
  ignore
    (spawn_client kern ~cpu:0 ~name:"after" (fun self ->
         ignore
           (Kernel.spawn kern ~cpu:0 ~name:"releaser2"
              ~kind:Kernel.Process.Client
              ~program:(Kernel.new_program kern ~name:"r2")
              ~space:(Kernel.new_user_space kern ~name:"r2" ~node:0)
              (fun _ ->
                List.iter (fun p -> Kernel.Kcpu.ready kc p) (List.rev !blocked);
                blocked := []));
         rc :=
           Ppc.call ppc ~client:self ~ep_id:(Ppc.Entry_point.id ep)
             (Ppc.Reg_args.make ())));
  Kernel.run kern;
  Alcotest.(check int) "still serves after reclaim" Ppc.Reg_args.ok !rc

let test_reclaim_keeps_minimum () =
  let kern = Kernel.create ~cpus:1 () in
  let ppc = Ppc.create kern in
  let server = Ppc.make_user_server ppc ~name:"svc" () in
  let ep = Ppc.register_direct ppc ~server ~handler:Ppc.Null_server.echo in
  Ppc.prime ppc ~ep ~cpus:[ 0 ];
  let result = ref (Error 0) in
  ignore
    (spawn_client kern ~cpu:0 ~name:"janitor" (fun self ->
         result :=
           Ppc.Frank.reclaim (Ppc.frank ppc) ~client:self ~max_workers:1
             ~max_cds:2));
  Kernel.run kern;
  (match !result with
  | Ok (workers, _) ->
      Alcotest.(check int) "nothing above the floor to retire" 0 workers
  | Error rc -> Alcotest.failf "reclaim failed rc=%d" rc);
  Alcotest.(check int) "steady worker kept" 1 (Ppc.Entry_point.workers_total ep)

let reclaim_suite =
  ( "ppc.reclaim",
    [
      Alcotest.test_case "shrinks grown pools" `Quick test_reclaim_shrinks_pools;
      Alcotest.test_case "respects the floor" `Quick test_reclaim_keeps_minimum;
    ] )

let suites = suites @ [ reclaim_suite ]

let test_reclaim_daemon_sweeps () =
  let kern = Kernel.create ~cpus:1 () in
  let ppc = Ppc.create kern in
  let kc = Kernel.kcpu kern 0 in
  let daemon =
    Ppc.Reclaim_daemon.start ~period:(Sim.Time.ms 2) (Ppc.engine ppc)
  in
  (* Grow a pool with a burst of concurrent blocking calls... *)
  let blocked = ref [] in
  let handler : Ppc.Call_ctx.handler =
   fun ctx args ->
    blocked := ctx.Ppc.Call_ctx.self :: !blocked;
    Kernel.Kcpu.block ctx.Ppc.Call_ctx.kcpu ctx.Ppc.Call_ctx.self;
    Ppc.Reg_args.set_rc args Ppc.Reg_args.ok
  in
  let server = Ppc.make_user_server ppc ~name:"bursty" () in
  let ep = Ppc.register_direct ppc ~server ~handler in
  Ppc.prime ppc ~ep ~cpus:[ 0 ];
  for i = 1 to 4 do
    ignore
      (spawn_client kern ~cpu:0 ~name:(Printf.sprintf "c%d" i) (fun self ->
           ignore
             (Ppc.call ppc ~client:self ~ep_id:(Ppc.Entry_point.id ep)
                (Ppc.Reg_args.make ()))))
  done;
  ignore
    (spawn_client kern ~cpu:0 ~name:"rel" (fun _ ->
         List.iter (Kernel.Kcpu.ready kc) (List.rev !blocked)));
  (* ...then let a few sweep periods pass. *)
  Kernel.run ~until:(Sim.Time.ms 9) kern;
  Alcotest.(check bool) "several sweeps ran" true
    (Ppc.Reclaim_daemon.sweeps daemon >= 3);
  Alcotest.(check bool)
    (Printf.sprintf "daemon retired workers (%d)"
       (Ppc.Reclaim_daemon.workers_retired daemon))
    true
    (Ppc.Reclaim_daemon.workers_retired daemon >= 3);
  Alcotest.(check int) "pool back at steady state" 1
    (Ppc.Entry_point.workers_total ep);
  Ppc.Reclaim_daemon.stop daemon;
  let swept = Ppc.Reclaim_daemon.sweeps daemon in
  Kernel.run ~until:(Sim.Time.ms 20) kern;
  Alcotest.(check int) "no sweeps after stop" swept
    (Ppc.Reclaim_daemon.sweeps daemon)

let daemon_suite =
  ( "ppc.reclaim_daemon",
    [ Alcotest.test_case "periodic sweeps" `Quick test_reclaim_daemon_sweeps ] )

let suites = suites @ [ daemon_suite ]

let test_hard_kill_releases_remote_caller () =
  let kern = Kernel.create ~cpus:2 () in
  let ppc = Ppc.create kern in
  let remote = Ppc.Remote_call.install (Ppc.engine ppc) in
  (* A server that blocks forever on its target CPU. *)
  let handler : Ppc.Call_ctx.handler =
   fun ctx args ->
    Kernel.Kcpu.block ctx.Ppc.Call_ctx.kcpu ctx.Ppc.Call_ctx.self;
    Ppc.Reg_args.set_rc args Ppc.Reg_args.ok
  in
  let server = Ppc.make_kernel_server ppc ~name:"stuck" () in
  let ep = Ppc.register_direct ppc ~server ~handler in
  Ppc.prime ppc ~ep ~cpus:[ 0; 1 ];
  let ep_id = Ppc.Entry_point.id ep in
  let rc = ref (-99) in
  ignore
    (spawn_client kern ~cpu:0 ~name:"caller" (fun self ->
         rc :=
           Ppc.Remote_call.call remote ~client:self ~target_cpu:1 ~ep_id
             (Ppc.Reg_args.make ())));
  (* Let the remote call get stuck, then hard-kill the service. *)
  Kernel.run ~until:(Sim.Time.us 200) kern;
  Ppc.hard_kill ppc ~ep_id;
  Kernel.run kern;
  Alcotest.(check int) "remote caller released with err_killed"
    Ppc.Reg_args.err_killed !rc

let remote_abort_suite =
  ( "ppc.remote_abort",
    [
      Alcotest.test_case "hard kill releases remote caller" `Quick
        test_hard_kill_releases_remote_caller;
    ] )

let suites = suites @ [ remote_abort_suite ]

(* Reclaim also trims non-default trust-group pools. *)
let test_reclaim_covers_trust_groups () =
  let kern = Kernel.create ~cpus:1 () in
  let ppc = Ppc.create kern in
  let kc = Kernel.kcpu kern 0 in
  let blocked = ref [] in
  let handler : Ppc.Call_ctx.handler =
   fun ctx args ->
    blocked := ctx.Ppc.Call_ctx.self :: !blocked;
    Kernel.Kcpu.block ctx.Ppc.Call_ctx.kcpu ctx.Ppc.Call_ctx.self;
    Ppc.Reg_args.set_rc args Ppc.Reg_args.ok
  in
  let server = Ppc.make_user_server ppc ~name:"grp" ~trust_group:3 () in
  let ep = Ppc.register_direct ppc ~server ~handler in
  Ppc.prime ppc ~ep ~cpus:[ 0 ];
  for i = 1 to 4 do
    ignore
      (spawn_client kern ~cpu:0 ~name:(Printf.sprintf "c%d" i) (fun self ->
           ignore
             (Ppc.call ppc ~client:self ~ep_id:(Ppc.Entry_point.id ep)
                (Ppc.Reg_args.make ()))))
  done;
  ignore
    (spawn_client kern ~cpu:0 ~name:"rel" (fun _ ->
         List.iter (Kernel.Kcpu.ready kc) (List.rev !blocked)));
  Kernel.run kern;
  (* Four group CDs were created (the group pool starts empty). *)
  Alcotest.(check int) "group CDs created" 4
    (Ppc.stats ppc).Ppc.Engine.frank_cd_creations;
  let _, freed = Ppc.Engine.reclaim (Ppc.engine ppc) ~cpu_index:0 ~max_cds:1 () in
  Alcotest.(check bool)
    (Printf.sprintf "group pool trimmed (%d freed)" freed)
    true (freed >= 3)

(* Exchange installs a fresh entry point record: its counters restart. *)
let test_exchange_resets_counters () =
  let kern = Kernel.create ~cpus:1 () in
  let ppc = Ppc.create kern in
  let server = Ppc.make_user_server ppc ~name:"svc" () in
  let ep = Ppc.register_direct ppc ~server ~handler:Ppc.Null_server.echo in
  Ppc.prime ppc ~ep ~cpus:[ 0 ];
  let ep_id = Ppc.Entry_point.id ep in
  ignore
    (spawn_client kern ~cpu:0 ~name:"c" (fun self ->
         for _ = 1 to 5 do
           ignore (Ppc.call ppc ~client:self ~ep_id (Ppc.Reg_args.make ()))
         done;
         ignore
           (Ppc.Frank.exchange (Ppc.frank ppc) ~client:self ~ep_id
              ~handler:Ppc.Null_server.echo);
         ignore (Ppc.call ppc ~client:self ~ep_id (Ppc.Reg_args.make ()))));
  Kernel.run kern;
  let ep' = Option.get (Ppc.find_ep ppc ep_id) in
  Alcotest.(check int) "replacement counts only its own calls" 1
    (Ppc.Entry_point.total_calls ep')

let final_suite =
  ( "ppc.final_edges",
    [
      Alcotest.test_case "reclaim covers trust groups" `Quick
        test_reclaim_covers_trust_groups;
      Alcotest.test_case "exchange resets counters" `Quick
        test_exchange_resets_counters;
    ] )

let suites = suites @ [ final_suite ]
