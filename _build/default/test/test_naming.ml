(* Tests for the Name Server and program-ID authentication. *)

let spawn_client kern ~cpu ~name body =
  let program = Kernel.new_program kern ~name in
  let space = Kernel.new_user_space kern ~name ~node:cpu in
  Kernel.spawn kern ~cpu ~name ~kind:Kernel.Process.Client ~program ~space body

let setup () =
  let kern = Kernel.create ~cpus:2 () in
  let ppc = Ppc.create kern in
  let ns = Naming.Name_server.install ppc in
  (kern, ppc, ns)

let test_register_lookup () =
  let kern, _ppc, ns = setup () in
  let looked_up = ref (Error 0) in
  ignore
    (spawn_client kern ~cpu:0 ~name:"server-prog" (fun self ->
         let rc = Naming.Name_server.register ns ~client:self ~name:"bob" ~ep_id:42 in
         Alcotest.(check int) "register ok" Ppc.Reg_args.ok rc));
  ignore
    (spawn_client kern ~cpu:1 ~name:"client-prog" (fun self ->
         looked_up := Naming.Name_server.lookup ns ~client:self ~name:"bob"));
  Kernel.run kern;
  Alcotest.(check bool) "lookup finds the binding" true (!looked_up = Ok 42);
  Alcotest.(check int) "one binding" 1 (Naming.Name_server.bindings ns)

let test_lookup_missing () =
  let kern, _ppc, ns = setup () in
  let result = ref (Ok 0) in
  ignore
    (spawn_client kern ~cpu:0 ~name:"c" (fun self ->
         result := Naming.Name_server.lookup ns ~client:self ~name:"ghost"));
  Kernel.run kern;
  Alcotest.(check bool) "missing name errors" true
    (!result = Error Ppc.Reg_args.err_no_entry)

let test_register_collision () =
  let kern, _ppc, ns = setup () in
  let second = ref 0 in
  ignore
    (spawn_client kern ~cpu:0 ~name:"a" (fun self ->
         ignore (Naming.Name_server.register ns ~client:self ~name:"svc" ~ep_id:5);
         second := Naming.Name_server.register ns ~client:self ~name:"svc" ~ep_id:6));
  Kernel.run kern;
  Alcotest.(check int) "rebinding rejected" Ppc.Reg_args.err_bad_request !second

let test_unregister_owner_only () =
  let kern, _ppc, ns = setup () in
  let foreign = ref 0 and owner = ref 0 in
  ignore
    (spawn_client kern ~cpu:0 ~name:"owner" (fun self ->
         ignore (Naming.Name_server.register ns ~client:self ~name:"svc" ~ep_id:5)));
  ignore
    (spawn_client kern ~cpu:1 ~name:"intruder" (fun self ->
         foreign := Naming.Name_server.unregister ns ~client:self ~name:"svc"));
  Kernel.run kern;
  Alcotest.(check int) "foreign unregister denied" Ppc.Reg_args.err_denied !foreign;
  let kern2, _ppc2, ns2 = setup () in
  ignore
    (spawn_client kern2 ~cpu:0 ~name:"owner" (fun self ->
         ignore (Naming.Name_server.register ns2 ~client:self ~name:"svc" ~ep_id:5);
         owner := Naming.Name_server.unregister ns2 ~client:self ~name:"svc"));
  Kernel.run kern2;
  Alcotest.(check int) "owner unregister ok" Ppc.Reg_args.ok !owner;
  Alcotest.(check int) "binding gone" 0 (Naming.Name_server.bindings ns2)

let test_hash_deterministic () =
  Alcotest.(check bool) "same name same hash" true
    (Naming.Name_server.hash_name "frank" = Naming.Name_server.hash_name "frank");
  Alcotest.(check bool) "different names differ" true
    (Naming.Name_server.hash_name "frank" <> Naming.Name_server.hash_name "bob")

let prop_hash_words_bounded =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"hash words fit in 30 bits" ~count:200
       QCheck.(string_gen_of_size Gen.(0 -- 64) Gen.printable)
       (fun s ->
         let h1, h2 = Naming.Name_server.hash_name s in
         h1 >= 0 && h1 < 1 lsl 30 && h2 >= 0 && h2 < 1 lsl 30))

(* --- auth --------------------------------------------------------------- *)

let with_ctx kern f =
  (* Build a minimal handler context for auth checks. *)
  let ppc = Ppc.create kern in
  let server = Ppc.make_user_server ppc ~name:"authsrv" () in
  let recorded = ref None in
  let handler : Ppc.Call_ctx.handler =
   fun ctx args ->
    recorded := Some (f ctx);
    Ppc.Reg_args.set_rc args Ppc.Reg_args.ok
  in
  let ep = Ppc.register_direct ppc ~server ~handler in
  Ppc.prime ppc ~ep ~cpus:[ 0 ];
  ignore
    (spawn_client kern ~cpu:0 ~name:"caller" (fun self ->
         ignore
           (Ppc.call ppc ~client:self ~ep_id:(Ppc.Entry_point.id ep)
              (Ppc.Reg_args.make ()))));
  Kernel.run kern;
  Option.get !recorded

let test_auth_grant_check () =
  let kern = Kernel.create ~cpus:1 () in
  let auth = Naming.Auth.create ~data_addr:0x9000 () in
  let allowed =
    with_ctx kern (fun ctx ->
        Naming.Auth.grant auth ~program:ctx.Ppc.Call_ctx.caller_program
          ~perms:[ Naming.Auth.Read ];
        ( Naming.Auth.check auth ctx ~perm:Naming.Auth.Read,
          Naming.Auth.check auth ctx ~perm:Naming.Auth.Write ))
  in
  Alcotest.(check (pair bool bool)) "read yes, write no" (true, false) allowed;
  Alcotest.(check int) "checks counted" 2 (Naming.Auth.checks auth);
  Alcotest.(check int) "denial counted" 1 (Naming.Auth.denials auth)

let test_auth_revoke () =
  let kern = Kernel.create ~cpus:1 () in
  let auth = Naming.Auth.create ~data_addr:0x9000 () in
  let results =
    with_ctx kern (fun ctx ->
        Naming.Auth.grant auth ~program:ctx.Ppc.Call_ctx.caller_program
          ~perms:[ Naming.Auth.Admin ];
        let before = Naming.Auth.check auth ctx ~perm:Naming.Auth.Admin in
        Naming.Auth.revoke auth ~program:ctx.Ppc.Call_ctx.caller_program;
        (before, Naming.Auth.check auth ctx ~perm:Naming.Auth.Admin))
  in
  Alcotest.(check (pair bool bool)) "granted then revoked" (true, false) results

let test_auth_require_sets_rc () =
  let kern = Kernel.create ~cpus:1 () in
  let auth = Naming.Auth.create ~data_addr:0x9000 () in
  let rc =
    with_ctx kern (fun ctx ->
        let args = Ppc.Reg_args.make () in
        let ok = Naming.Auth.require auth ctx ~perm:Naming.Auth.Read args in
        (ok, Ppc.Reg_args.rc args))
  in
  Alcotest.(check (pair bool int)) "require denies and sets rc"
    (false, Ppc.Reg_args.err_denied)
    rc

let suites =
  [
    ( "naming.name_server",
      [
        Alcotest.test_case "register + lookup" `Quick test_register_lookup;
        Alcotest.test_case "missing name" `Quick test_lookup_missing;
        Alcotest.test_case "collision rejected" `Quick test_register_collision;
        Alcotest.test_case "owner-only unregister" `Quick test_unregister_owner_only;
        Alcotest.test_case "hash deterministic" `Quick test_hash_deterministic;
        prop_hash_words_bounded;
      ] );
    ( "naming.auth",
      [
        Alcotest.test_case "grant + check" `Quick test_auth_grant_check;
        Alcotest.test_case "revoke" `Quick test_auth_revoke;
        Alcotest.test_case "require sets rc" `Quick test_auth_require_sets_rc;
      ] );
  ]

(* --- clustering (ref [16]) ------------------------------------------------ *)

let test_cluster_topology () =
  let c = Kernel.Cluster.create ~cpus:16 ~cluster_size:4 in
  Alcotest.(check int) "clusters" 4 (Kernel.Cluster.n_clusters c);
  Alcotest.(check int) "cpu 5's cluster" 1 (Kernel.Cluster.cluster_of c ~cpu:5);
  Alcotest.(check (list int)) "members" [ 8; 9; 10; 11 ]
    (Kernel.Cluster.members c ~cluster:2);
  Alcotest.(check bool) "same cluster" true
    (Kernel.Cluster.same_cluster c ~a:8 ~b:11);
  Alcotest.(check bool) "different clusters" false
    (Kernel.Cluster.same_cluster c ~a:7 ~b:8);
  Alcotest.(check int) "home cpu" 12 (Kernel.Cluster.home_cpu c ~cluster:3)

let test_cluster_uneven () =
  let c = Kernel.Cluster.create ~cpus:10 ~cluster_size:4 in
  Alcotest.(check int) "three clusters" 3 (Kernel.Cluster.n_clusters c);
  Alcotest.(check (list int)) "ragged tail" [ 8; 9 ]
    (Kernel.Cluster.members c ~cluster:2)

let test_clustered_ns_lookup_and_broadcast () =
  let kern = Kernel.create ~cpus:8 () in
  let ppc = Ppc.create kern in
  let cns = Naming.Clustered_name_server.install ppc ~cluster_size:4 in
  Alcotest.(check int) "two replicas" 2
    (Naming.Clustered_name_server.n_replicas cns);
  let ok_far = ref (Error 0) and ok_near = ref (Error 0) in
  ignore
    (spawn_client kern ~cpu:0 ~name:"registrar" (fun self ->
         let rc =
           Naming.Clustered_name_server.register cns ~client:self ~name:"bob"
             ~ep_id:42
         in
         Alcotest.(check int) "broadcast register ok" Ppc.Reg_args.ok rc));
  (* Let the broadcast finish before looking up. *)
  Kernel.run kern;
  ignore
    (spawn_client kern ~cpu:1 ~name:"near" (fun self ->
         ok_near := Naming.Clustered_name_server.lookup cns ~client:self ~name:"bob"));
  ignore
    (spawn_client kern ~cpu:7 ~name:"far" (fun self ->
         ok_far := Naming.Clustered_name_server.lookup cns ~client:self ~name:"bob"));
  Kernel.run kern;
  Alcotest.(check bool) "visible in caller's cluster" true (!ok_near = Ok 42);
  Alcotest.(check bool) "visible in the other cluster" true (!ok_far = Ok 42);
  (* Each replica holds the binding. *)
  for c = 0 to 1 do
    Alcotest.(check int)
      (Printf.sprintf "replica %d has it" c)
      1
      (Naming.Name_server.bindings
         (Naming.Clustered_name_server.replica cns ~cluster:c))
  done

let test_clustered_ns_local_routing () =
  let kern = Kernel.create ~cpus:8 () in
  let ppc = Ppc.create kern in
  let cns = Naming.Clustered_name_server.install ppc ~cluster_size:4 in
  (* Register only in cluster 1's replica directly: a cluster-0 client
     must NOT see it (lookups are strictly local). *)
  ignore
    (spawn_client kern ~cpu:4 ~name:"rogue" (fun self ->
         ignore
           (Naming.Name_server.register
              (Naming.Clustered_name_server.replica cns ~cluster:1)
              ~client:self ~name:"ghost" ~ep_id:7)));
  Kernel.run kern;
  let miss = ref (Ok 0) and hit = ref (Error 0) in
  ignore
    (spawn_client kern ~cpu:0 ~name:"c0" (fun self ->
         miss := Naming.Clustered_name_server.lookup cns ~client:self ~name:"ghost"));
  ignore
    (spawn_client kern ~cpu:5 ~name:"c5" (fun self ->
         hit := Naming.Clustered_name_server.lookup cns ~client:self ~name:"ghost"));
  Kernel.run kern;
  Alcotest.(check bool) "other cluster misses" true
    (!miss = Error Ppc.Reg_args.err_no_entry);
  Alcotest.(check bool) "own cluster hits" true (!hit = Ok 7)

let cluster_suite =
  ( "naming.clustered",
    [
      Alcotest.test_case "topology arithmetic" `Quick test_cluster_topology;
      Alcotest.test_case "uneven clusters" `Quick test_cluster_uneven;
      Alcotest.test_case "broadcast register, local lookup" `Quick
        test_clustered_ns_lookup_and_broadcast;
      Alcotest.test_case "lookups are strictly local" `Quick
        test_clustered_ns_local_routing;
    ] )

let suites = suites @ [ cluster_suite ]
