(* Edge cases and regressions across the smaller surfaces. *)

let spawn_client kern ~cpu ~name body =
  let program = Kernel.new_program kern ~name in
  let space = Kernel.new_user_space kern ~name ~node:cpu in
  Kernel.spawn kern ~cpu ~name ~kind:Kernel.Process.Client ~program ~space body

(* --- time --------------------------------------------------------------- *)

let test_time_conversions () =
  Alcotest.(check int) "us" 3_000 (Sim.Time.us 3);
  Alcotest.(check int) "ms" 3_000_000 (Sim.Time.ms 3);
  Alcotest.(check int) "s" 3_000_000_000 (Sim.Time.s 3);
  Alcotest.(check int) "round fractional us" 1_500 (Sim.Time.of_us_float 1.5);
  Alcotest.(check (float 1e-9)) "back to us" 1.5 (Sim.Time.to_us 1_500)

let test_time_pp_units () =
  let render t = Fmt.str "%a" Sim.Time.pp t in
  Alcotest.(check string) "ns" "999ns" (render 999);
  Alcotest.(check string) "us" "1.500us" (render 1_500);
  Alcotest.(check string) "ms" "2.000ms" (render (Sim.Time.ms 2));
  Alcotest.(check string) "s" "1.000s" (render (Sim.Time.s 1))

(* --- stats / rng edge cases ---------------------------------------------- *)

let test_stats_without_samples () =
  let s = Sim.Stats.create ~keep_samples:false () in
  Sim.Stats.add s 1.0;
  Alcotest.(check (float 0.0)) "mean still works" 1.0 (Sim.Stats.mean s);
  Alcotest.check_raises "percentile refuses"
    (Invalid_argument "Stats.percentile: samples not kept") (fun () ->
      ignore (Sim.Stats.percentile s 50.0))

let test_rng_bad_bound () =
  let rng = Sim.Rng.create ~seed:1 in
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Sim.Rng.int rng 0))

(* --- trace drops ---------------------------------------------------------- *)

let test_trace_filter () =
  let tr = Sim.Trace.create ~capacity:16 () in
  for i = 1 to 5 do
    Sim.Trace.record tr ~at:(Sim.Time.us i) ~kind:"a" "x";
    Sim.Trace.record tr ~at:(Sim.Time.us i) ~kind:"b" "y"
  done;
  Alcotest.(check int) "filtered" 5 (List.length (Sim.Trace.filter tr ~kind:"a"))

(* --- layout invariant ------------------------------------------------------ *)

let test_wpool_head_is_service_slot () =
  (* Section 4.5.5: "as little as a single pointer per service entry
     point per processor" — the pool head IS the table slot. *)
  let kern = Kernel.create ~cpus:1 () in
  let ppc = Ppc.create kern in
  let layout = Ppc.Engine.layout (Ppc.engine ppc) in
  let pc = Ppc.Layout.per_cpu layout 0 in
  for ep = 0 to 10 do
    Alcotest.(check int)
      (Printf.sprintf "ep %d" ep)
      (Ppc.Layout.service_slot_addr pc ep)
      (Ppc.Layout.wpool_head_addr pc ep)
  done

(* --- engine edge cases ------------------------------------------------------ *)

let test_async_on_dead_ep_is_rejected () =
  let kern = Kernel.create ~cpus:1 () in
  let ppc = Ppc.create kern in
  let server = Ppc.make_user_server ppc ~name:"s" () in
  let ep = Ppc.register_direct ppc ~server ~handler:Ppc.Null_server.echo in
  Ppc.prime ppc ~ep ~cpus:[ 0 ];
  let ep_id = Ppc.Entry_point.id ep in
  let completed = ref false in
  ignore
    (spawn_client kern ~cpu:0 ~name:"c" (fun self ->
         Ppc.soft_kill ppc ~ep_id;
         Ppc.async_call ppc ~client:self
           ~on_complete:(fun _ -> completed := true)
           ~ep_id (Ppc.Reg_args.make ())));
  Kernel.run kern;
  Alcotest.(check bool) "completion never fires" false !completed;
  Alcotest.(check bool) "rejection counted" true
    ((Ppc.stats ppc).Ppc.Engine.rejected_calls > 0)

let test_double_pending_rejected () =
  let kern = Kernel.create ~cpus:1 () in
  let prog = Kernel.new_program kern ~name:"p" in
  let space = Kernel.new_user_space kern ~name:"p" ~node:0 in
  let pcb =
    Kernel.Process.create ~name:"w" ~kind:Kernel.Process.Worker ~program:prog
      ~space ~cpu_index:0
  in
  let w =
    Ppc.Worker.create ~pcb ~ep_id:5 ~cpu_index:0 ~addr:0x1000
      ~handler:(fun _ _ -> ())
  in
  let pending () =
    {
      Ppc.Worker.args = Ppc.Reg_args.make ();
      caller = None;
      caller_program = 1;
      cd = Ppc.Call_descriptor.create ~index:0 ~addr:0 ~stack_frame:0 ~home_cpu:0;
      on_complete = None;
      call_rec =
        { Ppc.Worker.aborted = false; rec_worker_id = 0; extra_frames = [] };
    }
  in
  Ppc.Worker.set_pending w (pending ());
  Alcotest.check_raises "second pending rejected"
    (Invalid_argument "Worker.set_pending: call already pending") (fun () ->
      Ppc.Worker.set_pending w (pending ()))

(* --- msg_compat edges -------------------------------------------------------- *)

let test_compat_unknown_msg_reply () =
  let kern = Kernel.create ~cpus:1 () in
  let ppc = Ppc.create kern in
  let engine = Ppc.engine ppc in
  let port = Ppc.Msg_compat.make_port engine ~name:"p" in
  Alcotest.(check (option (array int))) "payload of unknown id" None
    (Ppc.Msg_compat.message_payload port ~msg_id:99);
  let rc = ref 0 in
  ignore
    (spawn_client kern ~cpu:0 ~name:"s" (fun self ->
         rc := Ppc.Msg_compat.reply engine port ~server:self ~msg_id:99 [| 1 |]));
  Kernel.run kern;
  Alcotest.(check int) "reply to unknown id" Ppc.Reg_args.err_bad_request !rc

(* --- clustered naming: broadcast unregister ---------------------------------- *)

let test_clustered_unregister_broadcast () =
  let kern = Kernel.create ~cpus:8 () in
  let ppc = Ppc.create kern in
  let cns = Naming.Clustered_name_server.install ppc ~cluster_size:4 in
  ignore
    (spawn_client kern ~cpu:0 ~name:"owner" (fun self ->
         ignore
           (Naming.Clustered_name_server.register cns ~client:self ~name:"x"
              ~ep_id:5)));
  Kernel.run kern;
  ignore
    (spawn_client kern ~cpu:0 ~name:"owner2" (fun self ->
         (* Unregister must come from the registering program; reuse a
            fresh client of the same name fails, so check the denial
            propagates from the replicas. *)
         let rc = Naming.Clustered_name_server.unregister cns ~client:self ~name:"x" in
         Alcotest.(check int) "foreign unregister denied"
           Ppc.Reg_args.err_denied rc));
  Kernel.run kern;
  Alcotest.(check int) "binding survives" 1
    (Naming.Clustered_name_server.bindings cns)

(* --- interrupt detach --------------------------------------------------------- *)

let test_interrupt_detach () =
  let kern = Kernel.create ~cpus:1 () in
  let ppc = Ppc.create kern in
  let server = Ppc.make_kernel_server ppc ~name:"dev" () in
  let ep = Ppc.register_direct ppc ~server ~handler:Ppc.Null_server.echo in
  Ppc.prime ppc ~ep ~cpus:[ 0 ];
  Ppc.Intr_dispatch.attach (Ppc.engine ppc) ~vector:33 ~kcpu:(Kernel.kcpu kern 0)
    ~ep_id:(Ppc.Entry_point.id ep)
    ~make_args:(fun () -> Ppc.Reg_args.make ())
    ();
  Ppc.Intr_dispatch.detach (Ppc.engine ppc) ~vector:33;
  Alcotest.check_raises "raising after detach fails"
    (Invalid_argument "Interrupt.raise_vector: unregistered vector") (fun () ->
      Kernel.Interrupt.raise_vector (Kernel.interrupts kern) ~vector:33)

(* --- CD never duplicated under concurrency (regression) ----------------------- *)

let test_cd_slow_path_no_duplicates () =
  (* Regression: the Frank CD slow path once returned a CD while leaving
     it on the free list.  Run overlapping calls that exhaust the pool,
     then verify every free CD index is unique. *)
  let kern = Kernel.create ~cpus:1 () in
  let ppc = Ppc.create ~initial_cds_per_cpu:1 kern in
  let kc = Kernel.kcpu kern 0 in
  let blocked = ref [] in
  let handler : Ppc.Call_ctx.handler =
   fun ctx args ->
    blocked := ctx.Ppc.Call_ctx.self :: !blocked;
    Kernel.Kcpu.block ctx.Ppc.Call_ctx.kcpu ctx.Ppc.Call_ctx.self;
    Ppc.Reg_args.set_rc args Ppc.Reg_args.ok
  in
  let server = Ppc.make_user_server ppc ~name:"s" () in
  let ep = Ppc.register_direct ppc ~server ~handler in
  Ppc.prime ppc ~ep ~cpus:[ 0 ];
  for i = 1 to 5 do
    ignore
      (spawn_client kern ~cpu:0 ~name:(Printf.sprintf "c%d" i) (fun self ->
           ignore
             (Ppc.call ppc ~client:self ~ep_id:(Ppc.Entry_point.id ep)
                (Ppc.Reg_args.make ()))))
  done;
  ignore
    (spawn_client kern ~cpu:0 ~name:"rel" (fun _ ->
         List.iter (Kernel.Kcpu.ready kc) (List.rev !blocked)));
  Kernel.run kern;
  Alcotest.(check bool) "slow path exercised" true
    ((Ppc.stats ppc).Ppc.Engine.frank_cd_creations >= 4);
  (* Drain the pool and check uniqueness. *)
  let pool = Ppc.Engine.cd_pool (Ppc.engine ppc) 0 in
  let cpu = Machine.cpu (Kernel.machine kern) 0 in
  let seen = Hashtbl.create 8 in
  let rec drain () =
    match Ppc.Cd_pool.alloc cpu pool with
    | Some cd ->
        let idx = Ppc.Call_descriptor.index cd in
        Alcotest.(check bool)
          (Printf.sprintf "cd %d appears once" idx)
          false (Hashtbl.mem seen idx);
        Hashtbl.replace seen idx ();
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check int) "all five CDs distinct" 5 (Hashtbl.length seen)

let suites =
  [
    ( "misc",
      [
        Alcotest.test_case "time conversions" `Quick test_time_conversions;
        Alcotest.test_case "time pretty printing" `Quick test_time_pp_units;
        Alcotest.test_case "stats without samples" `Quick
          test_stats_without_samples;
        Alcotest.test_case "rng bad bound" `Quick test_rng_bad_bound;
        Alcotest.test_case "trace filter" `Quick test_trace_filter;
        Alcotest.test_case "wpool head = service slot" `Quick
          test_wpool_head_is_service_slot;
        Alcotest.test_case "async rejected on dead EP" `Quick
          test_async_on_dead_ep_is_rejected;
        Alcotest.test_case "double pending rejected" `Quick
          test_double_pending_rejected;
        Alcotest.test_case "compat unknown msg" `Quick
          test_compat_unknown_msg_reply;
        Alcotest.test_case "clustered unregister denial" `Quick
          test_clustered_unregister_broadcast;
        Alcotest.test_case "interrupt detach" `Quick test_interrupt_detach;
        Alcotest.test_case "CD slow path uniqueness" `Quick
          test_cd_slow_path_no_duplicates;
      ] );
  ]
