(* Tests for the LRPC-style baseline. *)

let spawn_client kern ~cpu ~name body =
  let program = Kernel.new_program kern ~name in
  let space = Kernel.new_user_space kern ~name ~node:cpu in
  Kernel.spawn kern ~cpu ~name ~kind:Kernel.Process.Client ~program ~space body

let test_lrpc_roundtrip () =
  let kern = Kernel.create ~cpus:1 () in
  let lrpc =
    Baseline.Lrpc.install kern ~handler:Ppc.Null_server.adder ~frame_count:2
  in
  let got = ref 0 in
  ignore
    (spawn_client kern ~cpu:0 ~name:"c" (fun self ->
         let args = Ppc.Reg_args.of_list [ 21; 21 ] in
         let rc = Baseline.Lrpc.call lrpc ~client:self args in
         Alcotest.(check int) "rc" Ppc.Reg_args.ok rc;
         got := Ppc.Reg_args.get args 0));
  Kernel.run kern;
  Alcotest.(check int) "sum" 42 !got;
  Alcotest.(check int) "calls counted" 1 (Baseline.Lrpc.calls lrpc)

let test_lrpc_frames_recycled () =
  let kern = Kernel.create ~cpus:1 () in
  let lrpc =
    Baseline.Lrpc.install kern ~handler:Ppc.Null_server.echo ~frame_count:3
  in
  ignore
    (spawn_client kern ~cpu:0 ~name:"c" (fun self ->
         for _ = 1 to 30 do
           ignore (Baseline.Lrpc.call lrpc ~client:self (Ppc.Reg_args.make ()))
         done));
  Kernel.run kern;
  Alcotest.(check int) "pool restored" 3 (Baseline.Lrpc.frames_free lrpc);
  Alcotest.(check int) "no waits uncontended" 0 (Baseline.Lrpc.frame_waits lrpc)

let test_lrpc_global_lock_contended () =
  let kern = Kernel.create ~cpus:4 () in
  let lrpc =
    Baseline.Lrpc.install kern ~handler:Ppc.Null_server.echo ~frame_count:8
  in
  let done_ = ref 0 in
  for cpu = 0 to 3 do
    ignore
      (spawn_client kern ~cpu ~name:(Printf.sprintf "c%d" cpu) (fun self ->
           for _ = 1 to 25 do
             ignore (Baseline.Lrpc.call lrpc ~client:self (Ppc.Reg_args.make ()))
           done;
           incr done_))
  done;
  Kernel.run kern;
  Alcotest.(check int) "all clients done" 4 !done_;
  (* Two pool-lock acquisitions per call, and under 4-way load the global
     lock must have seen contention — the baseline's defining flaw. *)
  Alcotest.(check int) "lock acquisitions" 200
    (Kernel.Spinlock.acquisitions (Baseline.Lrpc.pool_lock lrpc));
  Alcotest.(check bool) "global lock contended" true
    (Kernel.Spinlock.contended_acquisitions (Baseline.Lrpc.pool_lock lrpc) > 0)

let test_lrpc_dry_pool_waits () =
  let kern = Kernel.create ~cpus:2 () in
  (* One frame and a handler that stalls long enough to dry the pool. *)
  let handler : Ppc.Call_ctx.handler =
   fun ctx args ->
    Machine.Cpu.instr ctx.Ppc.Call_ctx.cpu 2000;
    Kernel.Clock.sync ctx.Ppc.Call_ctx.engine ctx.Ppc.Call_ctx.cpu;
    Ppc.Reg_args.set_rc args Ppc.Reg_args.ok
  in
  let lrpc = Baseline.Lrpc.install kern ~handler ~frame_count:1 in
  let done_ = ref 0 in
  for cpu = 0 to 1 do
    ignore
      (spawn_client kern ~cpu ~name:(Printf.sprintf "c%d" cpu) (fun self ->
           for _ = 1 to 5 do
             ignore (Baseline.Lrpc.call lrpc ~client:self (Ppc.Reg_args.make ()))
           done;
           incr done_))
  done;
  Kernel.run kern;
  Alcotest.(check int) "both finish despite dry pool" 2 !done_;
  Alcotest.(check bool) "dry-pool waits happened" true
    (Baseline.Lrpc.frame_waits lrpc > 0)

let suites =
  [
    ( "baseline.lrpc",
      [
        Alcotest.test_case "roundtrip" `Quick test_lrpc_roundtrip;
        Alcotest.test_case "frames recycled" `Quick test_lrpc_frames_recycled;
        Alcotest.test_case "global lock contended" `Quick
          test_lrpc_global_lock_contended;
        Alcotest.test_case "dry pool waits" `Quick test_lrpc_dry_pool_waits;
      ] );
  ]
