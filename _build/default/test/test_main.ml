let () =
  Alcotest.run "ppc_ipc"
    (List.concat
       [
         Test_sim.suites;
         Test_trace.suites;
         Test_determinism.suites;
         Test_machine.suites;
         Test_kernel.suites;
         Test_ppc.suites;
         Test_ppc_ext.suites;
         Test_vm.suites;
         Test_misc.suites;
         Test_sysmgr.suites;
         Test_properties.suites;
         Test_naming.suites;
         Test_transfer.suites;
         Test_servers.suites;
         Test_baseline.suites;
         Test_workload.suites;
         Test_experiments.suites;
         Test_runtime.suites;
         Test_smoke.suites;
       ])
