(* End-to-end smoke tests: the whole stack boots and a PPC round-trips. *)

let test_sync_call () =
  let kern = Kernel.create ~cpus:2 () in
  let ppc = Ppc.create kern in
  let server = Ppc.make_user_server ppc ~name:"echo" () in
  let ep = Ppc.register_direct ppc ~server ~handler:Ppc.Null_server.adder in
  Ppc.prime ppc ~ep ~cpus:[ 0; 1 ];
  let prog = Kernel.new_program kern ~name:"client" in
  let space = Kernel.new_user_space kern ~name:"client" ~node:0 in
  let result = ref (-1) in
  let _client =
    Kernel.spawn kern ~cpu:0 ~name:"client" ~kind:Kernel.Process.Client
      ~program:prog ~space (fun self ->
        let args = Ppc.Reg_args.of_list [ 20; 22 ] in
        let rc = Ppc.call ppc ~client:self ~ep_id:(Ppc.Entry_point.id ep) args in
        Alcotest.(check int) "rc ok" Ppc.Reg_args.ok rc;
        result := Ppc.Reg_args.get args 0)
  in
  Kernel.run kern;
  Alcotest.(check int) "20+22" 42 !result

let test_many_calls_advance_time () =
  let kern = Kernel.create ~cpus:1 () in
  let ppc = Ppc.create kern in
  let server = Ppc.make_kernel_server ppc ~name:"null" () in
  let ep =
    Ppc.register_direct ppc ~server ~handler:(Ppc.Null_server.handler ())
  in
  Ppc.prime ppc ~ep ~cpus:[ 0 ];
  let prog = Kernel.new_program kern ~name:"client" in
  let space = Kernel.new_user_space kern ~name:"client" ~node:0 in
  let calls = 100 in
  let done_calls = ref 0 in
  let _client =
    Kernel.spawn kern ~cpu:0 ~name:"client" ~kind:Kernel.Process.Client
      ~program:prog ~space (fun self ->
        for _ = 1 to calls do
          let args = Ppc.Reg_args.make () in
          let rc =
            Ppc.call ppc ~client:self ~ep_id:(Ppc.Entry_point.id ep) args
          in
          if rc = Ppc.Reg_args.ok then incr done_calls
        done)
  in
  Kernel.run kern;
  Alcotest.(check int) "all calls completed" calls !done_calls;
  let elapsed_us = Sim.Time.to_us (Kernel.now kern) in
  Alcotest.(check bool)
    (Printf.sprintf "simulated time advanced (%.1f us)" elapsed_us)
    true
    (elapsed_us > 100.0)

let suites =
  [
    ( "smoke",
      [
        Alcotest.test_case "sync call round-trips" `Quick test_sync_call;
        Alcotest.test_case "repeated calls advance time" `Quick
          test_many_calls_advance_time;
      ] );
  ]
