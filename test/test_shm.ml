(* The shared-segment substrate: Wire_abi layout invariants, Segment
   backends (in-heap and mmap'd file), and the Shm_channel call path —
   round trips, deadline abandonment, peer-death containment and the
   zero-allocation pin — all inside one process, where domains stand in
   for the two OS processes.  The genuinely cross-process side (fork,
   kill -9) lives in `ppc_sim shm` and runs from CI. *)

module W = Ipc_intf.Wire_abi
module Errc = Ipc_intf.Errc
module Seg = Runtime.Segment
module Ch = Runtime.Shm_channel

(* --- Wire_abi: the layout is the contract ---------------------------------- *)

(* The whole point of the ABI module is that these numbers never move
   silently: pin the header offsets, the region arithmetic and the
   encodings verbatim, so any relayout forces an [abi_version] bump to
   show up in the same diff. *)
let test_abi_layout () =
  Alcotest.(check int) "abi version" 2 W.abi_version;
  Alcotest.(check bool) "magic is a positive immediate" true (W.magic > 0);
  Alcotest.(check string) "magic spells PPC_ABI" "PPC_ABI"
    (String.init 7 (fun i -> Char.chr ((W.magic lsr (8 * (6 - i))) land 0xff)));
  Alcotest.(check int) "header words" 16 W.header_words;
  List.iteri
    (fun want (name, got) ->
      Alcotest.(check int) ("header offset " ^ name) want got)
    [
      ("magic", W.off_magic);
      ("version", W.off_version);
      ("generation", W.off_generation);
      ("total_words", W.off_total_words);
      ("capacity", W.off_capacity);
      ("arg_words", W.off_arg_words);
      ("server_pid", W.off_server_pid);
      ("client_pid", W.off_client_pid);
      ("server_heartbeat", W.off_server_heartbeat);
      ("client_heartbeat", W.off_client_heartbeat);
      ("server_state", W.off_server_state);
      ("client_state", W.off_client_state);
      ("doorbell", W.off_doorbell);
      ("reclaimed", W.off_reclaimed);
      ("peer_faults", W.off_peer_faults);
      ("sessions", W.off_sessions);
    ];
  (* Regions tile the segment exactly: header | submit ring | reclaim
     ring | cells, no gaps, no overlap, for several geometries. *)
  List.iter
    (fun (capacity, arg_words) ->
      let ring = W.ring_words ~capacity in
      Alcotest.(check int) "submit ring after header" W.header_words
        W.submit_base;
      Alcotest.(check int) "reclaim ring after submit ring"
        (W.submit_base + ring)
        (W.reclaim_base ~capacity);
      Alcotest.(check int) "cells after reclaim ring"
        (W.reclaim_base ~capacity + ring)
        (W.cells_base ~capacity);
      Alcotest.(check int) "total covers the last cell word"
        (W.cell_arg ~capacity ~arg_words (capacity - 1) (arg_words - 1) + 1)
        (W.total_words ~capacity ~arg_words);
      (* Slot indices wrap by masking: a full lap lands back on slot 0. *)
      Alcotest.(check int) "submit slot wraps"
        (W.submit_slot ~capacity 0)
        (W.submit_slot ~capacity capacity);
      Alcotest.(check int) "reclaim slot wraps"
        (W.reclaim_slot ~capacity 3)
        (W.reclaim_slot ~capacity (capacity + 3)))
    [ (1, 1); (16, 8); (64, 8); (256, 4) ];
  (* Cell states are Request_slab's encodings, now frozen as wire
     values. *)
  Alcotest.(check (list int)) "cell states"
    [
      Runtime.Request_slab.state_free;
      Runtime.Request_slab.state_pending;
      Runtime.Request_slab.state_parked;
      Runtime.Request_slab.state_done;
      Runtime.Request_slab.state_abandoned;
    ]
    [ W.state_free; W.state_pending; W.state_parked; W.state_done;
      W.state_abandoned ]

let test_abi_ep_word () =
  (* Versioned handles round-trip and match Fastcall's own packing. *)
  List.iter
    (fun (slot, gen) ->
      let w = W.pack_handle ~slot ~gen in
      Alcotest.(check bool) "handles are non-negative" true (w >= 0);
      Alcotest.(check int) "slot round-trips" slot (W.handle_slot w);
      Alcotest.(check int) "gen round-trips" gen (W.handle_gen w))
    [ (0, 0); (1, 1); (1023, 0); (0, 999_999); (512, 12345) ];
  Alcotest.check_raises "slot beyond handle_bits rejected"
    (Invalid_argument "Wire_abi.pack_handle: slot out of range") (fun () ->
      ignore (W.pack_handle ~slot:1024 ~gen:0));
  (* The three variants of the entry-point word are disjoint. *)
  Alcotest.(check bool) "ctl_ep is not a raw call" false (W.is_raw_call W.ctl_ep);
  Alcotest.(check bool) "ctl_ep is negative" true (W.ctl_ep < 0);
  List.iter
    (fun id ->
      let w = W.pack_raw_call id in
      Alcotest.(check bool) "raw calls are recognizable" true (W.is_raw_call w);
      Alcotest.(check int) "raw id round-trips" id (W.raw_call_id w))
    [ 0; 1; 7; 1023 ];
  (* Specs serialize to two words and back; every constructor survives. *)
  List.iter
    (fun spec ->
      let code, param = W.spec_to_wire spec in
      Alcotest.(check bool) "spec round-trips" true
        (W.spec_of_wire ~code ~param = Some spec))
    Ipc_intf.Sigs.
      [ Stamp 42; Add2; Kill_self_soft 9; Kill_self_hard 3; Nap_ms 25 ];
  Alcotest.(check bool) "unknown spec code refused" true
    (W.spec_of_wire ~code:77 ~param:0 = None);
  (* Names pack into two 7-byte words. *)
  List.iter
    (fun s ->
      match W.pack_name s with
      | None -> Alcotest.failf "pack_name %S refused a legal name" s
      | Some pair ->
          Alcotest.(check string) "name round-trips" s (W.unpack_name pair))
    [ "a"; "console"; "sys/batch"; "abcdefghijklmn" ];
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "pack_name %S refused" s)
        true
        (W.pack_name s = None))
    [ ""; "abcdefghijklmno" (* 15 bytes *); "nul\000byte" ]

(* --- Segment: both backends ------------------------------------------------ *)

let exercise_words seg =
  let n = Seg.length seg in
  Seg.set seg 0 42;
  Alcotest.(check int) "set/get" 42 (Seg.get seg 0);
  Seg.set seg (n - 1) (-7);
  Alcotest.(check int) "negative words survive" (-7) (Seg.get seg (n - 1));
  Alcotest.(check bool) "cas hit" true
    (Seg.cas seg 0 ~expected:42 ~desired:43);
  Alcotest.(check bool) "cas miss" false
    (Seg.cas seg 0 ~expected:42 ~desired:99);
  Alcotest.(check int) "cas stored the desired value" 43 (Seg.get seg 0);
  Alcotest.(check int) "fetch_add returns prior" 43 (Seg.fetch_add seg 0 5);
  Alcotest.(check int) "fetch_add added" 48 (Seg.get seg 0);
  (* A large word exercising the full 63-bit immediate range. *)
  let big = (1 lsl 62) - 1 in
  Seg.set seg 1 big;
  Alcotest.(check int) "62-bit word round-trips" big (Seg.get seg 1);
  Alcotest.check_raises "checked get catches out of range"
    (Invalid_argument (Printf.sprintf "Segment: word %d out of bounds" n))
    (fun () -> ignore (Seg.get_checked seg n))

let test_segment_heap () =
  let seg = Seg.create_heap ~words:32 in
  Alcotest.(check int) "length" 32 (Seg.length seg);
  Alcotest.(check bool) "no backing path" true (Seg.path seg = None);
  Alcotest.(check int) "msync is a no-op" 0 (Seg.msync seg);
  Alcotest.(check int) "madvise is a no-op" 0 (Seg.madvise seg Seg.Madv_normal);
  exercise_words seg

let with_temp_path f =
  let path = Filename.temp_file "ppc_seg" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_segment_shm () =
  with_temp_path (fun path ->
      let seg = Seg.map_file ~path ~words:32 ~create:true () in
      Alcotest.(check int) "length" 32 (Seg.length seg);
      Alcotest.(check bool) "backing path recorded" true
        (Seg.path seg = Some path);
      exercise_words seg;
      Alcotest.(check int) "msync flushes" 0 (Seg.msync seg);
      Alcotest.(check int) "madvise willneed" 0
        (Seg.madvise seg Seg.Madv_willneed);
      (* A second independent mapping of the same file sees the same
         words — the property the cross-process path depends on. *)
      let seg2 = Seg.map_file ~path ~words:32 ~create:false () in
      Alcotest.(check int) "second mapping reads first's write" 48
        (Seg.get seg2 0);
      Seg.set seg2 5 1234;
      Alcotest.(check int) "first mapping reads second's write" 1234
        (Seg.get seg 5));
  (* Our own pid is alive; pid 0 is never probed by the channel, but
     the raw probe on a free pid must answer false.  Hunt down from a
     big number to find one that is genuinely unused. *)
  Alcotest.(check bool) "self is alive" true (Seg.pid_alive (Unix.getpid ()))

(* --- Shm_channel: layout + attach validation ------------------------------- *)

let test_channel_validation () =
  Alcotest.check_raises "capacity 6 rejected"
    (Invalid_argument
       "Shm_channel.layout: capacity must be a positive power of two (got 6)")
    (fun () -> Ch.layout ~capacity:6 (Seg.create_heap ~words:4096));
  Alcotest.check_raises "undersized segment rejected"
    (Invalid_argument "Shm_channel.layout: segment holds 8 words, need 68")
    (fun () ->
      Ch.layout ~capacity:4 ~arg_words:8 (Seg.create_heap ~words:8));
  let seg = Ch.create_heap ~capacity:4 ~arg_words:8 () in
  (* Corrupt each identification word in turn; attach must refuse. *)
  let expect_bad msg f =
    match f () with
    | (_ : Ch.t) -> Alcotest.failf "attach accepted a bad segment (%s)" msg
    | exception Ch.Bad_segment _ -> ()
  in
  let magic = Seg.get seg W.off_magic in
  Seg.set seg W.off_magic 0xBAD;
  expect_bad "magic" (fun () -> Ch.attach ~role:Ch.Client seg);
  Seg.set seg W.off_magic magic;
  Seg.set seg W.off_version (W.abi_version + 1);
  expect_bad "version" (fun () -> Ch.attach ~role:Ch.Client seg);
  Seg.set seg W.off_version W.abi_version;
  Seg.set seg W.off_generation 3 (* odd: mid-construction *);
  expect_bad "odd generation" (fun () -> Ch.attach ~role:Ch.Client seg);
  Seg.set seg W.off_generation 2;
  let t = Ch.attach ~role:Ch.Client seg in
  Alcotest.(check int) "geometry read back" 4 (Ch.capacity t);
  Alcotest.(check int) "arg words read back" 8 (Ch.arg_words t)

(* --- Shm_channel: round trips over both backends --------------------------- *)

(* args.(2) <- args.(0) + args.(1), and echo the ep word into slot 3 so
   routing is observable. *)
let adder_dispatch ~ep_word args =
  args.(2) <- args.(0) + args.(1);
  args.(3) <- ep_word;
  Errc.ok

let round_trip seg =
  let server = Ch.attach ~role:Ch.Server seg in
  let client = Ch.attach ~role:Ch.Client seg in
  Alcotest.(check bool) "client sees server ready" true
    (Ch.wait_peer_ready client);
  Alcotest.(check int) "peer pid is this process" (Unix.getpid ())
    (Ch.peer_pid client);
  let srv = Domain.spawn (fun () -> Ch.serve server ~dispatch:adder_dispatch) in
  let args = Array.make 8 0 in
  let calls = 2000 in
  for i = 1 to calls do
    args.(0) <- i;
    args.(1) <- 3 * i;
    let rc = Ch.call client ~ep:(W.pack_raw_call 5) args in
    if rc <> Errc.ok || args.(2) <> 4 * i then
      Alcotest.failf "call %d: rc=%s sum=%d" i (Errc.to_string rc) args.(2)
  done;
  Alcotest.(check int) "ep word reached the dispatcher" (W.pack_raw_call 5)
    args.(3);
  Ch.announce_shutdown client;
  let served = Domain.join srv in
  Alcotest.(check int) "server saw every call" calls served;
  Alcotest.(check int) "client counted every submit" calls
    (Ch.submitted client);
  Alcotest.(check int) "every cell is home" (Ch.capacity client)
    (Ch.free_cells client);
  Alcotest.(check int) "doorbell rung once per call" calls
    (Ch.doorbell_rings client)

let test_round_trip_heap () =
  round_trip (Ch.create_heap ~capacity:8 ~arg_words:8 ())

let test_round_trip_file () =
  with_temp_path (fun path ->
      (* Two independent mappings of one file: as close to two processes
         as a single test process gets. *)
      let seg_server = Ch.create_file ~path ~capacity:8 ~arg_words:8 () in
      let server = Ch.attach ~role:Ch.Server seg_server in
      let srv =
        Domain.spawn (fun () -> Ch.serve server ~dispatch:adder_dispatch)
      in
      let client = Ch.attach_file ~role:Ch.Client path in
      Alcotest.(check int) "geometry travels through the header" 8
        (Ch.capacity client);
      let args = Array.make 8 0 in
      for i = 1 to 500 do
        args.(0) <- i;
        args.(1) <- i;
        let rc = Ch.call client ~ep:(W.pack_raw_call 1) args in
        if rc <> Errc.ok || args.(2) <> 2 * i then
          Alcotest.failf "file call %d: rc=%s sum=%d" i (Errc.to_string rc)
            args.(2)
      done;
      Ch.announce_shutdown client;
      Alcotest.(check int) "server saw every call" 500 (Domain.join srv))

(* Saturate the submission window: with every cell in flight and no
   server draining, the next submit answers [retry], not a block. *)
let test_backpressure () =
  let seg = Ch.create_heap ~capacity:2 ~arg_words:8 () in
  let client = Ch.attach ~role:Ch.Client seg in
  let args = Array.make 8 0 in
  let i1 = Ch.submit_raw client ~ep:(W.pack_raw_call 0) args in
  let i2 = Ch.submit_raw client ~ep:(W.pack_raw_call 0) args in
  Alcotest.(check bool) "two cells granted" true (i1 >= 0 && i2 >= 0 && i1 <> i2);
  Alcotest.(check int) "third submit answers retry" Errc.retry
    (Ch.submit_raw client ~ep:(W.pack_raw_call 0) args);
  Alcotest.(check int) "in flight" 2 (Ch.in_flight client)

(* --- deadline abandonment + §4.5.6 reclaim --------------------------------- *)

let test_deadline_abandon_reclaim () =
  let seg = Ch.create_heap ~capacity:4 ~arg_words:8 () in
  let client = Ch.attach ~role:Ch.Client seg in
  let server = Ch.attach ~role:Ch.Server seg in
  let args = Array.make 8 0 in
  (* No server loop running: the deadline always wins the CAS. *)
  let rc =
    Ch.call_deadline client ~ep:(W.pack_raw_call 0)
      ~deadline:(Runtime.Doorbell.now_ns () + 200_000)
      args
  in
  Alcotest.(check int) "deadline answers timed_out" Errc.timed_out rc;
  Alcotest.(check int) "rc slot carries the verdict" Errc.timed_out args.(7);
  Alcotest.(check int) "one timeout counted" 1 (Ch.timeouts client);
  Alcotest.(check int) "cell is stranded" 3 (Ch.free_cells client);
  (* The server drains the ring, finds the abandoned cell, and recycles
     it through the reclaim ring — exactly once. *)
  Alcotest.(check int) "ring drained the abandoned entry" 1
    (Ch.serve_once server ~dispatch:adder_dispatch);
  Alcotest.(check int) "reclaim counted once" 1 (Ch.reclaimed client);
  Alcotest.(check int) "cell came home" 4 (Ch.free_cells client);
  (* The recycled cell works again end to end. *)
  let srv = Domain.spawn (fun () -> Ch.serve server ~dispatch:adder_dispatch) in
  args.(0) <- 20;
  args.(1) <- 22;
  Alcotest.(check int) "recycled cell calls fine" Errc.ok
    (Ch.call client ~ep:(W.pack_raw_call 0) args);
  Alcotest.(check int) "sum" 42 args.(2);
  Ch.announce_shutdown client;
  ignore (Domain.join srv : int)

(* --- peer-death containment ------------------------------------------------ *)

(* A pid no live process owns: probe downward from a large pid.  (The
   true fork/kill -9 version of this scenario lives in `ppc_sim shm
   --scenario kill9`.) *)
let dead_pid () =
  let rec hunt p = if p < 2 then 2 else if Seg.pid_alive p then hunt (p - 1) else p in
  hunt 99_999

let test_peer_death_containment () =
  let seg = Ch.create_heap ~capacity:4 ~arg_words:8 () in
  (* Tight probe window so the test converges in microseconds.  While
     the server pid word is still 0 the probe is inert, so the first
     (deadline) call below cannot be short-circuited by a death
     verdict. *)
  let client = Ch.attach ~probe_window_ns:1_000 ~role:Ch.Client seg in
  let args = Array.make 8 0 in
  (* One stranded abandoned cell (deadline fired, server never
     reclaimed it)... *)
  let rc =
    Ch.call_deadline client ~ep:(W.pack_raw_call 0)
      ~deadline:(Runtime.Doorbell.now_ns () + 100_000)
      args
  in
  Alcotest.(check int) "abandoned first" Errc.timed_out rc;
  (* Now forge a server that "attached" and died: pid recorded, ready
     state set, heartbeat forever frozen. *)
  Seg.set seg W.off_server_pid (dead_pid ());
  Seg.set seg W.off_server_state W.peer_ready;
  (* ...and two calls in flight when the death verdict lands. *)
  let i1 = Ch.submit_raw client ~ep:(W.pack_raw_call 0) args in
  let i2 = Ch.submit_raw client ~ep:(W.pack_raw_call 0) args in
  Alcotest.(check bool) "both submitted" true (i1 >= 0 && i2 >= 0);
  (* await discovers the frozen heartbeat, probes the pid, sweeps, and
     fails the in-flight call with handler_fault. *)
  let rc1 = Ch.await client i1 args in
  Alcotest.(check int) "in-flight call 1 fails with handler_fault"
    Errc.handler_fault rc1;
  let rc2 = Ch.await client i2 args in
  Alcotest.(check int) "in-flight call 2 fails with handler_fault"
    Errc.handler_fault rc2;
  Alcotest.(check bool) "verdict is sticky" true (Ch.peer_dead client);
  Alcotest.(check int) "both faults counted" 2 (Ch.peer_faults client);
  (* Every cell recycled exactly once: the stranded abandoned cell came
     back in the sweep, the two faulted cells through their awaits. *)
  Alcotest.(check int) "every cell is home" 4 (Ch.free_cells client);
  Alcotest.(check int) "a second sweep finds nothing" 0
    (Ch.sweep_dead_peer client);
  Alcotest.(check int) "submits after the verdict answer peer_dead"
    Errc.peer_dead
    (Ch.submit_raw client ~ep:(W.pack_raw_call 0) args)

(* --- session recovery: regeneration, release, reconnect -------------------- *)

module Sess = Runtime.Shm_session

(* Bounded poll for a cross-domain condition. *)
let wait_for ?(timeout_ns = 5_000_000_000) cond =
  let deadline = Runtime.Doorbell.now_ns () + timeout_ns in
  let rec go () =
    if cond () then true
    else if Runtime.Doorbell.now_ns () > deadline then false
    else begin
      Runtime.Doorbell.nap_ns 200_000;
      go ()
    end
  in
  go ()

(* A second independent mapping of the segment file, sized from its own
   header — the supervisor's view of the world. *)
let remap_file path =
  let hdr = Seg.map_file ~path ~words:W.header_words ~create:false () in
  let words = Seg.get hdr W.off_total_words in
  Seg.map_file ~path ~words ~create:false ()

(* An occupied endpoint slot (a pid that is not ours) refuses a second
   attachment: two writers on single-writer words would tear the
   session.  The slot opens again once the holder is released. *)
let test_attach_occupied_slot () =
  let seg = Ch.create_heap ~capacity:4 ~arg_words:8 () in
  let expect_held name off =
    Seg.set seg off 1 (* pid 1: alive and certainly not us *);
    (match Ch.attach ~role:(if off = W.off_server_pid then Ch.Server else Ch.Client) seg with
    | (_ : Ch.t) -> Alcotest.failf "%s attach accepted an occupied slot" name
    | exception Ch.Bad_segment _ -> ());
    Seg.set seg off 0
  in
  expect_held "server" W.off_server_pid;
  expect_held "client" W.off_client_pid;
  (* both slots open again: attach succeeds *)
  ignore (Ch.attach ~role:Ch.Server seg : Ch.t);
  ignore (Ch.attach ~role:Ch.Client seg : Ch.t)

(* Regeneration under a live mapping: the stale endpoint fails closed on
   every path — in-flight awaits, new submits, whole calls — with
   [stale_generation], never reading the rebuilt session's state; a
   reattach that refuses the fled generation lands on the new one, and a
   reattach demanding a generation that has not happened yet times out
   instead of latching onto the old mapping. *)
let test_regeneration_fails_closed () =
  with_temp_path (fun path ->
      ignore (Ch.create_file ~path ~capacity:4 ~arg_words:8 () : Seg.t);
      let client = Ch.attach_file ~role:Ch.Client path in
      let g0 = Ch.generation client in
      Alcotest.(check int) "construction generation" 2 g0;
      let args = Array.make 8 0 in
      let i1 = Ch.submit_raw client ~ep:(W.pack_raw_call 0) args in
      Alcotest.(check bool) "call in flight" true (i1 >= 0);
      (* The supervisor's mapping rebuilds the segment in place. *)
      let seg2 = remap_file path in
      Ch.regenerate seg2;
      Alcotest.(check int) "generation is monotonic across rebuilds" (g0 + 2)
        (Seg.get seg2 W.off_generation);
      Alcotest.(check bool) "old endpoint is stale" true (Ch.stale client);
      Alcotest.(check int) "in-flight await fails closed" Errc.stale_generation
        (Ch.await client i1 args);
      Alcotest.(check int) "rc slot carries the verdict" Errc.stale_generation
        args.(7);
      Alcotest.(check int) "submit fails closed" Errc.stale_generation
        (Ch.submit_raw client ~ep:(W.pack_raw_call 0) args);
      Alcotest.(check int) "whole call fails closed" Errc.stale_generation
        (Ch.call client ~ep:(W.pack_raw_call 0) args);
      (* The rebuilt session is virgin — the stale client's in-flight
         cell did not leak into it. *)
      Alcotest.(check int) "fresh submit ring is empty" 0
        (Seg.get seg2 W.submit_tail);
      Alcotest.(check int) "fresh cell 0 is free" W.state_free
        (Seg.get seg2 (W.cell_state ~capacity:4 ~arg_words:8 0));
      (* Reattach refusing the fled generation gets the new one... *)
      let c2 = Ch.attach_file ~after_generation:g0 ~role:Ch.Client path in
      Alcotest.(check int) "reattach lands on the new generation" (g0 + 2)
        (Ch.generation c2);
      Alcotest.(check int) "new endpoint has every cell" 4 (Ch.free_cells c2);
      (* ...and demanding a generation that has not happened yet refuses
         in bounded time rather than accepting the current build. *)
      Ch.announce_shutdown c2 (* open the slot for hygiene *);
      match
        Ch.attach_file ~timeout_ns:50_000_000 ~after_generation:(g0 + 2)
          ~role:Ch.Client path
      with
      | (_ : Ch.t) ->
          Alcotest.fail "attach accepted a generation it was told to refuse"
      | exception Ch.Bad_segment _ -> ())

(* Server-side client-death containment: a multi-session server probes
   the frozen heartbeat, confirms the pid is gone, sweeps and releases
   the session — once — and the segment is immediately reusable by a
   successor client, with the cumulative counters intact. *)
let test_release_session_reuse () =
  let seg = Ch.create_heap ~capacity:4 ~arg_words:8 () in
  let server = Ch.attach ~probe_window_ns:1_000 ~role:Ch.Server seg in
  let released = Atomic.make 0 in
  let srv =
    Domain.spawn (fun () ->
        Ch.serve_sessions server
          ~on_release:(fun () -> Atomic.incr released)
          ~dispatch:adder_dispatch)
  in
  let client = Ch.attach ~role:Ch.Client seg in
  let args = Array.make 8 0 in
  for i = 1 to 50 do
    args.(0) <- i;
    args.(1) <- i;
    if Ch.call client ~ep:(W.pack_raw_call 0) args <> Errc.ok then
      Alcotest.failf "warm call %d failed" i
  done;
  (* Forge this client's death: its recorded pid becomes one nobody
     owns, and its heartbeat freezes because it stops calling. *)
  Seg.set seg W.off_client_pid (dead_pid ());
  Alcotest.(check bool) "server released the dead session" true
    (wait_for (fun () -> Ch.sessions_released client >= 1));
  Alcotest.(check int) "released exactly once" 1 (Ch.sessions_released client);
  Alcotest.(check int) "on_release fired exactly once" 1 (Atomic.get released);
  Alcotest.(check bool) "the dead client's endpoint is stale" true
    (Ch.stale client);
  (* The slot is open again: a successor attaches the same segment and
     round-trips against the same server loop. *)
  let c2 = Ch.attach ~role:Ch.Client seg in
  args.(0) <- 19;
  args.(1) <- 23;
  Alcotest.(check int) "successor call rc" Errc.ok
    (Ch.call c2 ~ep:(W.pack_raw_call 0) args);
  Alcotest.(check int) "successor sum" 42 args.(2);
  Alcotest.(check int) "every cell is home for the new session" 4
    (Ch.free_cells c2);
  Ch.announce_shutdown c2;
  let served = Domain.join srv in
  Alcotest.(check bool) "server served across both sessions" true (served >= 51)

(* The reconnecting client end to end (single process, so only the
   generation-based path is exercised — pid probes see ourselves
   alive): a session survives a server restart over a regenerated
   segment, re-resolving its named binding against the fresh registry
   and retrying the interrupted call, with exactly one reattach
   counted. *)
let test_session_reconnect () =
  with_temp_path (fun path ->
      ignore (Ch.create_file ~path ~capacity:8 ~arg_words:8 () : Seg.t);
      let spawn_server () =
        Domain.spawn (fun () ->
            let server = Ch.attach_file ~role:Ch.Server path in
            let fast = Runtime.Fastcall.create () in
            let ctl = Runtime.Control.install fast in
            Ch.serve_sessions server ~dispatch:(Ch.fastcall_dispatch fast ctl))
      in
      let srv1 = spawn_server () in
      let reattached = ref 0 in
      let sess =
        Sess.connect ~on_reattach:(fun () -> incr reattached) ~path ()
      in
      let b = Sess.bind sess ~name:"t/adder" ~spec:Ipc_intf.Sigs.Add2 in
      let args = Array.make 8 0 in
      args.(0) <- 19;
      args.(1) <- 23;
      Alcotest.(check int) "first-incarnation call" Errc.ok
        (Sess.call sess b args);
      Alcotest.(check int) "sum" 42 args.(0);
      let g1 = Sess.generation sess in
      (* The supervisor regenerates under everyone; server 1 notices the
         stale generation and exits its loop. *)
      Ch.regenerate (remap_file path);
      ignore (Domain.join srv1 : int);
      let srv2 = spawn_server () in
      args.(0) <- 1;
      args.(1) <- 2;
      Alcotest.(check int) "healed call after the restart" Errc.ok
        (Sess.call sess b args);
      Alcotest.(check int) "healed sum" 3 args.(0);
      Alcotest.(check int) "exactly one reattach" 1 (Sess.reattaches sess);
      Alcotest.(check int) "the hook mirrored it" 1 !reattached;
      Alcotest.(check int) "exactly one death-triggered retry" 1
        (Sess.retried sess);
      Alcotest.(check bool) "generation advanced" true
        (Sess.generation sess > g1);
      (* Steady state again: no further recovery on later calls. *)
      args.(0) <- 4;
      args.(1) <- 5;
      Alcotest.(check int) "steady call" Errc.ok (Sess.call sess b args);
      Alcotest.(check int) "steady sum" 9 args.(0);
      Alcotest.(check int) "still one reattach" 1 (Sess.reattaches sess);
      Sess.close sess;
      ignore (Domain.join srv2 : int))

(* --- the full dispatcher over a file-backed segment ------------------------ *)

let test_fastcall_dispatch_file () =
  with_temp_path (fun path ->
      let seg = Ch.create_file ~path ~capacity:16 ~arg_words:8 () in
      let server = Ch.attach ~role:Ch.Server seg in
      let fast = Runtime.Fastcall.create () in
      let ctl = Runtime.Control.install fast in
      let dispatch = Ch.fastcall_dispatch fast ctl in
      let srv = Domain.spawn (fun () -> Ch.serve server ~dispatch) in
      let client = Ch.attach_file ~role:Ch.Client path in
      let args = Array.make 8 0 in
      let ctl_call () = Ch.call client ~ep:W.ctl_ep args in
      (* register Add2 by spec; the handle comes back in word 0 *)
      let code, param = W.spec_to_wire Ipc_intf.Sigs.Add2 in
      args.(0) <- W.ctl_register;
      args.(1) <- code;
      args.(2) <- param;
      Alcotest.(check int) "register rc" Errc.ok (ctl_call ());
      let handle = args.(0) in
      (* call through the versioned wire handle *)
      args.(0) <- 19;
      args.(1) <- 23;
      Alcotest.(check int) "handle call rc" Errc.ok
        (Ch.call client ~ep:handle args);
      Alcotest.(check int) "Add2 ran server-side" 42 args.(0);
      (* publish under a name, look it up, call by raw ID *)
      let w0, w1 =
        match W.pack_name "adder" with Some p -> p | None -> assert false
      in
      args.(0) <- W.ctl_publish;
      args.(1) <- handle;
      args.(2) <- w0;
      args.(3) <- w1;
      Alcotest.(check int) "publish rc" Errc.ok (ctl_call ());
      args.(0) <- W.ctl_lookup;
      args.(1) <- w0;
      args.(2) <- w1;
      Alcotest.(check int) "lookup rc" Errc.ok (ctl_call ());
      let raw_id = args.(0) in
      Alcotest.(check int) "lookup returns the slot" (W.handle_slot handle)
        raw_id;
      args.(0) <- 1;
      args.(1) <- 2;
      Alcotest.(check int) "raw-ID call rc" Errc.ok
        (Ch.call client ~ep:(W.pack_raw_call raw_id) args);
      Alcotest.(check int) "raw-ID call ran" 3 args.(0);
      (* exchange to Stamp 7: same handle, new behavior *)
      let scode, sparam = W.spec_to_wire (Ipc_intf.Sigs.Stamp 7) in
      args.(0) <- W.ctl_exchange;
      args.(1) <- handle;
      args.(2) <- scode;
      args.(3) <- sparam;
      Alcotest.(check int) "exchange rc" Errc.ok (ctl_call ());
      args.(0) <- 0;
      Alcotest.(check int) "exchanged behavior rc" Errc.ok
        (Ch.call client ~ep:handle args);
      Alcotest.(check int) "stamp visible" 7 args.(0);
      (* idle entry point: nothing in flight *)
      args.(0) <- W.ctl_in_flight;
      args.(1) <- handle;
      Alcotest.(check int) "in_flight rc" Errc.ok (ctl_call ());
      Alcotest.(check int) "in_flight count" 0 args.(0);
      (* soft-kill; the dead handle then refuses calls *)
      args.(0) <- W.ctl_soft_kill;
      args.(1) <- handle;
      Alcotest.(check int) "soft kill rc" Errc.ok (ctl_call ());
      Alcotest.(check int) "dead handle refuses" Errc.no_entry
        (Ch.call client ~ep:handle args);
      (* unknown ctl op and malformed spec are bad_request, contained *)
      args.(0) <- 999;
      Alcotest.(check int) "unknown op" Errc.bad_request (ctl_call ());
      args.(0) <- W.ctl_register;
      args.(1) <- 777 (* no such spec code *);
      Alcotest.(check int) "bad spec refused" Errc.bad_request (ctl_call ());
      Ch.announce_shutdown client;
      ignore (Domain.join srv : int);
      Seg.unlink seg)

(* --- zero-allocation pin --------------------------------------------------- *)

(* [Gc.minor_words] is per-domain, so the busy server domain cannot
   pollute the client's delta.  Same discipline as the Fastcall pins in
   test_runtime.ml: warm up outside the window, then demand exactly
   zero. *)
let minor_words_delta f =
  let before = Gc.minor_words () in
  f ();
  Gc.minor_words () -. before

let zero_alloc_on seg name =
  let server = Ch.attach ~role:Ch.Server seg in
  let client = Ch.attach ~role:Ch.Client seg in
  let srv = Domain.spawn (fun () -> Ch.serve server ~dispatch:adder_dispatch) in
  let args = Array.make 8 0 in
  let ep = W.pack_raw_call 0 in
  let loop () =
    for i = 1 to 500 do
      args.(0) <- i;
      args.(1) <- 1;
      ignore (Ch.call client ~ep args : int)
    done
  in
  loop ();
  (* warm-up *)
  let delta = minor_words_delta loop in
  Ch.announce_shutdown client;
  ignore (Domain.join srv : int);
  Alcotest.(check (float 0.0)) name 0.0 delta

let test_zero_alloc_heap () =
  zero_alloc_on
    (Ch.create_heap ~capacity:8 ~arg_words:8 ())
    "warm heap-segment calls allocate zero minor words"

let test_zero_alloc_file () =
  with_temp_path (fun path ->
      zero_alloc_on
        (Ch.create_file ~path ~capacity:8 ~arg_words:8 ())
        "warm file-segment calls allocate zero minor words")

let suites =
  [
    ( "shm.wire_abi",
      [
        Alcotest.test_case "layout is pinned" `Quick test_abi_layout;
        Alcotest.test_case "entry-point word encodings" `Quick
          test_abi_ep_word;
      ] );
    ( "shm.segment",
      [
        Alcotest.test_case "heap backend words" `Quick test_segment_heap;
        Alcotest.test_case "mmap backend words + sharing" `Quick
          test_segment_shm;
      ] );
    ( "shm.channel",
      [
        Alcotest.test_case "layout/attach validation" `Quick
          test_channel_validation;
        Alcotest.test_case "round trip (heap)" `Quick test_round_trip_heap;
        Alcotest.test_case "round trip (file, two mappings)" `Quick
          test_round_trip_file;
        Alcotest.test_case "backpressure is explicit" `Quick test_backpressure;
        Alcotest.test_case "deadline abandon + reclaim" `Quick
          test_deadline_abandon_reclaim;
        Alcotest.test_case "peer death containment" `Quick
          test_peer_death_containment;
        Alcotest.test_case "fastcall dispatcher over a file" `Quick
          test_fastcall_dispatch_file;
        Alcotest.test_case "zero-alloc warm path (heap)" `Quick
          test_zero_alloc_heap;
        Alcotest.test_case "zero-alloc warm path (file)" `Quick
          test_zero_alloc_file;
      ] );
    ( "shm.recovery",
      [
        Alcotest.test_case "occupied slots refuse attach" `Quick
          test_attach_occupied_slot;
        Alcotest.test_case "regeneration fails stale endpoints closed" `Quick
          test_regeneration_fails_closed;
        Alcotest.test_case "dead-client release + segment reuse" `Quick
          test_release_session_reuse;
        Alcotest.test_case "session reconnect across a server restart" `Quick
          test_session_reconnect;
      ] );
  ]
