(* The control-plane conformance suite, instantiated against both
   embodiments of the paper's IPC facility: the cycle-accurate simulator
   and the real-domain runtime.  The scenarios themselves live in
   [Ipc_intf.Conformance]; this file only supplies the two SUBJECT
   adapters, so any semantic drift between the stacks fails here. *)

module Errc = Ipc_intf.Errc

(* --- the simulator embodiment ------------------------------------------- *)

module Sim_subject :
  Ipc_intf.Sigs.SUBJECT with type ep = int = struct
  type t = {
    kern : Kernel.t;
    ppc : Ppc.t;
    ns : Naming.Name_server.t;
    server : Ppc.Entry_point.server;
  }

  (* Simulator entry-point IDs are allocated monotonically and never
     reused, so the raw ID is itself a stale-safe handle. *)
  type ep = int

  let name = "sim"

  let setup () =
    let kern = Kernel.create ~cpus:1 () in
    let ppc = Ppc.create kern in
    let ns = Naming.Name_server.install ppc in
    let server = Ppc.make_user_server ppc ~name:"conformance-server" () in
    { kern; ppc; ns; server }

  let teardown _ = ()

  (* Run [body] as a client process to completion: one simulated
     episode per conformance operation. *)
  let episode t body =
    let program = Kernel.new_program t.kern ~name:"conf-client" in
    let space = Kernel.new_user_space t.kern ~name:"conf-client" ~node:0 in
    ignore
      (Kernel.spawn t.kern ~cpu:0 ~name:"conf-client"
         ~kind:Kernel.Process.Client ~program ~space body);
    Kernel.run t.kern

  let wrap (b : Ipc_intf.Sigs.behavior) : Ppc.Call_ctx.handler =
   fun _ctx args -> b args

  let id _ ep = ep

  let publish t ~name ep =
    let rc = ref Errc.no_entry in
    episode t (fun self ->
        rc := Naming.Name_server.register t.ns ~client:self ~name ~ep_id:ep);
    !rc

  let lookup t ~name =
    let r = ref (Error Errc.no_entry) in
    episode t (fun self ->
        r := Naming.Name_server.lookup t.ns ~client:self ~name);
    !r

  let call_id t ~id args =
    let rc = ref Errc.no_entry in
    episode t (fun self -> rc := Ppc.call t.ppc ~client:self ~ep_id:id args);
    !rc

  (* IDs are never recycled, so the handle path and the raw-ID path
     coincide. *)
  let call t ep args = call_id t ~id:ep args

  let kill_with op t ep =
    match Ppc.find_ep t.ppc ep with
    | None -> Errc.no_entry
    | Some e when Ppc.Entry_point.status e <> Ppc.Entry_point.Active ->
        Errc.killed
    | Some _ ->
        op t.ppc ~ep_id:ep;
        Errc.ok

  let soft_kill t ep = kill_with Ppc.soft_kill t ep
  let hard_kill t ep = kill_with Ppc.hard_kill t ep

  let in_flight t ep =
    match Ppc.find_ep t.ppc ep with
    | None -> 0
    | Some e -> Ppc.Entry_point.in_progress_total e

  (* Compile a behavior spec against this embodiment: self-kills target
     the ref cell filled in right after registration, naps are free
     (simulated time needs no wall clock). *)
  let compile t self spec =
    let kill k () = match !self with Some ep -> k t ep | None -> Errc.no_entry in
    Ipc_intf.Sigs.compile ~kill_soft:(kill soft_kill) ~kill_hard:(kill hard_kill)
      ~nap_ms:(fun _ -> ())
      spec

  let register t spec =
    let self = ref None in
    let b = compile t self spec in
    let ep =
      Ppc.Entry_point.id
        (Ppc.register_direct t.ppc ~server:t.server ~handler:(wrap b))
    in
    self := Some ep;
    ep

  let exchange t ep spec =
    let b = compile t (ref (Some ep)) spec in
    match Ppc.find_ep t.ppc ep with
    | None -> Errc.no_entry
    | Some e when Ppc.Entry_point.status e <> Ppc.Entry_point.Active ->
        Errc.killed
    | Some _ ->
        ignore
          (Ppc.Engine.exchange (Ppc.engine t.ppc) ~ep_id:ep ~handler:(wrap b));
        Errc.ok
end

(* --- the real-domain runtime embodiment ---------------------------------- *)

module Runtime_subject :
  Ipc_intf.Sigs.SUBJECT with type ep = Runtime.Fastcall.ep = struct
  module F = Runtime.Fastcall

  type t = { table : F.t; ctl : Runtime.Control.t }

  (* Runtime IDs are recycled; staleness detection lives in the
     generation carried by the versioned handle. *)
  type ep = F.ep

  let name = "runtime"
  let principal = 7

  let setup () =
    let table = F.create () in
    { table; ctl = Runtime.Control.install table }

  let teardown _ = ()

  let wrap (b : Ipc_intf.Sigs.behavior) : F.handler = fun _ctx args -> b args

  let compile t self spec =
    let kill k () =
      match !self with Some ep -> k t ep | None -> Errc.no_entry
    in
    Ipc_intf.Sigs.compile
      ~kill_soft:(kill (fun t ep -> F.soft_kill_h t.table ep))
      ~kill_hard:(kill (fun t ep -> F.hard_kill_h t.table ep))
      ~nap_ms:(fun ms -> Runtime.Doorbell.nap_ns (ms * 1_000_000))
      spec

  let register t spec =
    let self = ref None in
    let b = compile t self spec in
    let ep = F.register_ep t.table (wrap b) in
    self := Some ep;
    ep

  let id _ ep = F.ep_id ep

  let publish t ~name ep =
    Runtime.Control.publish t.ctl ~principal ~name ~ep:(F.ep_id ep)

  let lookup t ~name = Runtime.Control.lookup t.ctl ~name
  let call t ep args = F.call_h t.table ep args

  let call_id t ~id args =
    match F.call t.table ~ep:id args with
    | rc -> rc
    | exception F.No_entry _ ->
        args.(F.arg_words - 1) <- Errc.no_entry;
        Errc.no_entry

  let exchange t ep spec =
    F.exchange_h t.table ep (wrap (compile t (ref (Some ep)) spec))

  let soft_kill t ep = F.soft_kill_h t.table ep
  let hard_kill t ep = F.hard_kill_h t.table ep
  let in_flight t ep = F.in_flight_h t.table ep
end

module Sim_conf = Ipc_intf.Conformance.Make (Sim_subject)
module Runtime_conf = Ipc_intf.Conformance.Make (Runtime_subject)

let sim_case (name, f) =
  Alcotest.test_case name `Quick (fun () ->
      try f () with Sim_conf.Violation m -> Alcotest.fail m)

let runtime_case (name, f) =
  Alcotest.test_case name `Quick (fun () ->
      try f () with Runtime_conf.Violation m -> Alcotest.fail m)

(* --- error-code wire convention ------------------------------------------- *)

(* [Errc] values ride the last argument word across every boundary, so
   they are append-only wire values: pin each one exactly, and make
   sure [to_string] names all of them (no code falls through to the
   numeric catch-all, and no two codes share a name). *)
let test_errc_round_trip () =
  let pinned =
    [
      (Errc.ok, 0, "ok");
      (Errc.no_entry, -1, "err_no_entry");
      (Errc.killed, -2, "err_killed");
      (Errc.denied, -3, "err_denied");
      (Errc.bad_request, -4, "err_bad_request");
      (Errc.no_resources, -5, "err_no_resources");
      (Errc.handler_fault, -6, "err_handler_fault");
      (Errc.timed_out, -7, "err_timed_out");
      (Errc.retry, -8, "err_retry");
      (Errc.too_big, -9, "err_too_big");
      (Errc.copy_fault, -10, "err_copy_fault");
      (Errc.peer_dead, -11, "err_peer_dead");
      (Errc.stale_generation, -12, "err_stale_generation");
    ]
  in
  Alcotest.(check int)
    "Errc.all is exhaustive" (List.length pinned) (List.length Errc.all);
  List.iter
    (fun (code, wire, name) ->
      Alcotest.(check int) ("wire value of " ^ name) wire code;
      Alcotest.(check bool) (name ^ " listed in Errc.all") true
        (List.mem code Errc.all);
      Alcotest.(check string) ("to_string " ^ name) name (Errc.to_string code))
    pinned;
  let names = List.map Errc.to_string Errc.all in
  Alcotest.(check int) "names are distinct"
    (List.length names)
    (List.length (List.sort_uniq compare names));
  (* A code outside the taxonomy must not alias a real name. *)
  Alcotest.(check string) "unknown code" "rc(-99)" (Errc.to_string (-99))

let suites =
  [
    ("conformance.sim", List.map sim_case Sim_conf.scenarios);
    ("conformance.runtime", List.map runtime_case Runtime_conf.scenarios);
    ( "conformance.errc",
      [
        Alcotest.test_case "error codes round-trip exhaustively" `Quick
          test_errc_round_trip;
      ] );
  ]
