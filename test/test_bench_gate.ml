(* The wall-clock regression gate must be self-calibrating: checking a
   trajectory point against the very host that emitted it, moments
   later, must never trip (zero false positives) — and a corrupted
   recorded number beyond its tolerance must always trip, with a diff a
   human can act on.

   The measured tests use smaller knobs than the committed trajectory
   point, but not arbitrarily small ones: the bechamel quota must be
   large enough for a stable OLS estimate, or calibration underestimates
   the spread and the self-check flakes.  The gate records its knobs in
   the JSON and [check] re-measures under them, so the calibration
   conditions and the check conditions match by construction — which is
   exactly the property the first test pins down. *)

let repeats = 4
let calls = 3_000
let quota = 0.4

(* One emitted gate section shared by the tests below (measuring is the
   expensive part; emit once, check many). *)
let gate = lazy (Bench_gate.emit ~repeats ~calls ~quota)

(* Round-trip through the writer and parser, as CI does with the
   committed file. *)
let roundtrip v = Bench_json.of_string (Bench_json.to_string v)

let test_self_check_no_false_positives () =
  let gate = roundtrip (Lazy.force gate) in
  (* Twice in a row: a gate that only sometimes passes against its own
     host is a flaky CI job, which is worse than no gate. *)
  for round = 1 to 2 do
    let verdicts = Bench_gate.check gate in
    List.iter
      (fun v ->
        Alcotest.(check bool)
          (Printf.sprintf "round %d: %s within its recorded tolerance" round
             v.Bench_gate.v_name)
          true v.Bench_gate.v_ok)
      verdicts;
    Alcotest.(check int) "every gated subject judged"
      (List.length Bench_gate.specs)
      (List.length verdicts)
  done

(* Corrupt one subject's recorded value in the parsed JSON tree. *)
let corrupt_value name f gate =
  let map_subject = function
    | Bench_json.Obj kvs ->
        Bench_json.Obj
          (List.map
             (fun (k, v) ->
               match (k, v) with
               | "value", Bench_json.Num x
                 when List.assoc_opt "name" kvs
                      = Some (Bench_json.Str name) ->
                   (k, Bench_json.Num (f x))
               | _ -> (k, v))
             kvs)
    | v -> v
  in
  match gate with
  | Bench_json.Obj kvs ->
      Bench_json.Obj
        (List.map
           (fun (k, v) ->
             match (k, v) with
             | "subjects", Bench_json.Arr subjects ->
                 (k, Bench_json.Arr (List.map map_subject subjects))
             | _ -> (k, v))
           kvs)
  | v -> v

let test_corruption_trips () =
  let gate = roundtrip (Lazy.force gate) in
  (* A recorded throughput 1000x what this host can do makes any fresh
     measurement read as a >99% regression — beyond every tolerance the
     calibration could have recorded (the cap bounds them below 1.0 for
     higher_better subjects). *)
  let corrupted = corrupt_value "channel-1shard" (fun x -> x *. 1000.0) gate in
  let verdicts = Bench_gate.check corrupted in
  Alcotest.(check bool) "gate trips" false (Bench_gate.all_ok verdicts);
  let failing =
    List.filter (fun v -> not v.Bench_gate.v_ok) verdicts
    |> List.map (fun v -> v.Bench_gate.v_name)
  in
  Alcotest.(check (list string)) "exactly the corrupted subject fails"
    [ "channel-1shard" ] failing;
  let v =
    List.find (fun v -> not v.Bench_gate.v_ok) verdicts
  in
  let diff = Fmt.str "%a" Bench_gate.pp_verdict v in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "diff mentions %S" needle)
        true (contains needle diff))
    [ "FAIL"; "channel-1shard"; "calls/s"; "tolerance" ]

(* The judgment math itself, deterministically: drift is one-directional
   and NaN never passes.  No measurement involved — [check_values] takes
   the fresh medians directly. *)
let test_judgment_is_one_directional () =
  let gate_json =
    Bench_json.of_string
      {|{
  "repeats": 3,
  "calls_per_producer": 3000,
  "quota_s": 0.5,
  "subjects": [
    { "name": "thr", "unit": "calls/s", "direction": "higher_better",
      "value": 1000000, "spread": 0.05, "tolerance": 0.30 },
    { "name": "lat", "unit": "ns", "direction": "lower_better",
      "value": 1000, "spread": 0.05, "tolerance": 0.50 }
  ]
}|}
  in
  let _, _, _, recorded = Bench_gate.of_json gate_json in
  let judge fresh =
    List.map
      (fun v -> (v.Bench_gate.v_name, v.Bench_gate.v_ok))
      (Bench_gate.check_values recorded fresh)
  in
  (* Much faster / much slower in the *good* direction: never fails. *)
  Alcotest.(check (list (pair string bool)))
    "improvement passes"
    [ ("thr", true); ("lat", true) ]
    (judge [ ("thr", 5_000_000.0); ("lat", 10.0) ]);
  (* Within tolerance on the bad side: passes. *)
  Alcotest.(check (list (pair string bool)))
    "tolerated drift passes"
    [ ("thr", true); ("lat", true) ]
    (judge [ ("thr", 750_000.0); ("lat", 1_400.0) ]);
  (* Beyond tolerance on the bad side: fails. *)
  Alcotest.(check (list (pair string bool)))
    "regression beyond tolerance fails"
    [ ("thr", false); ("lat", false) ]
    (judge [ ("thr", 600_000.0); ("lat", 1_600.0) ]);
  (* A NaN measurement (subject produced nothing) must fail, not pass
     by vacuous comparison. *)
  Alcotest.(check (list (pair string bool)))
    "nan fails"
    [ ("thr", false); ("lat", true) ]
    (judge [ ("thr", Float.nan); ("lat", 900.0) ]);
  (* A subject recorded but not measured is a hard error, not a skip. *)
  Alcotest.check_raises "missing subject is an error"
    (Bench_gate.Bad_gate "no fresh measurement for \"lat\"") (fun () ->
      ignore (Bench_gate.check_values recorded [ ("thr", 1_000_000.0) ]))

let suites =
  [
    ( "bench.gate",
      [
        Alcotest.test_case "judgment is one-directional" `Quick
          test_judgment_is_one_directional;
        Alcotest.test_case "self-check has zero false positives" `Quick
          test_self_check_no_false_positives;
        Alcotest.test_case "corrupted number trips with readable diff" `Quick
          test_corruption_trips;
      ] );
  ]
