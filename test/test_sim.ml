(* Tests for the simulation substrate: heap, rng, engine, primitives. *)

let qcheck = QCheck_alcotest.to_alcotest

(* --- heap -------------------------------------------------------------- *)

let test_heap_basic () =
  let h = Sim.Heap.create Int.compare in
  Alcotest.(check bool) "empty" true (Sim.Heap.is_empty h);
  List.iter (Sim.Heap.push h) [ 5; 3; 8; 1; 9; 2 ];
  Alcotest.(check int) "length" 6 (Sim.Heap.length h);
  Alcotest.(check (option int)) "peek" (Some 1) (Sim.Heap.peek h);
  Alcotest.(check (option int)) "pop" (Some 1) (Sim.Heap.pop h);
  Alcotest.(check (option int)) "pop" (Some 2) (Sim.Heap.pop h);
  Sim.Heap.clear h;
  Alcotest.(check (option int)) "cleared" None (Sim.Heap.pop h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Sim.Heap.create Int.compare in
      List.iter (Sim.Heap.push h) xs;
      let rec drain acc =
        match Sim.Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort Int.compare xs)

let prop_heap_peek_is_min =
  QCheck.Test.make ~name:"peek equals minimum" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) int)
    (fun xs ->
      let h = Sim.Heap.create Int.compare in
      List.iter (Sim.Heap.push h) xs;
      Sim.Heap.peek h = Some (List.fold_left Int.min (List.hd xs) xs))

(* --- rng --------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Sim.Rng.create ~seed:17 and b = Sim.Rng.create ~seed:17 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Sim.Rng.next_int64 a)
      (Sim.Rng.next_int64 b)
  done

let test_rng_different_seeds () =
  let a = Sim.Rng.create ~seed:1 and b = Sim.Rng.create ~seed:2 in
  Alcotest.(check bool) "different streams" false
    (Sim.Rng.next_int64 a = Sim.Rng.next_int64 b)

let prop_rng_int_in_bounds =
  QCheck.Test.make ~name:"Rng.int stays in bounds" ~count:500
    QCheck.(pair small_int (1 -- 1000))
    (fun (seed, bound) ->
      let rng = Sim.Rng.create ~seed in
      let v = Sim.Rng.int rng bound in
      v >= 0 && v < bound)

let prop_rng_exponential_bounded =
  QCheck.Test.make ~name:"exponential truncated at 20x mean" ~count:200
    QCheck.small_int
    (fun seed ->
      let rng = Sim.Rng.create ~seed in
      let ok = ref true in
      for _ = 1 to 100 do
        let x = Sim.Rng.exponential rng ~mean:10.0 in
        if x < 0.0 || x > 200.0 then ok := false
      done;
      !ok)

let test_rng_split_independent () =
  let a = Sim.Rng.create ~seed:5 in
  let b = Sim.Rng.split a in
  Alcotest.(check bool) "split differs from parent" false
    (Sim.Rng.next_int64 a = Sim.Rng.next_int64 b)

(* --- engine ------------------------------------------------------------ *)

let test_engine_time_ordering () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  Sim.Engine.schedule_at e (Sim.Time.us 30) (fun () -> log := 3 :: !log);
  Sim.Engine.schedule_at e (Sim.Time.us 10) (fun () -> log := 1 :: !log);
  Sim.Engine.schedule_at e (Sim.Time.us 20) (fun () -> log := 2 :: !log);
  Sim.Engine.run e;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check int) "clock at last event" 30_000 (Sim.Engine.now e)

let test_engine_fifo_at_same_time () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Sim.Engine.schedule_at e (Sim.Time.us 10) (fun () -> log := i :: !log)
  done;
  Sim.Engine.run e;
  Alcotest.(check (list int)) "fifo ties" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_delay_accumulates () =
  let e = Sim.Engine.create () in
  let seen = ref [] in
  Sim.Engine.spawn e (fun () ->
      Sim.Engine.delay e (Sim.Time.us 5);
      seen := Sim.Engine.now e :: !seen;
      Sim.Engine.delay e (Sim.Time.us 7);
      seen := Sim.Engine.now e :: !seen);
  Sim.Engine.run e;
  Alcotest.(check (list int)) "delays add up" [ 12_000; 5_000 ] !seen

let test_engine_run_until () =
  let e = Sim.Engine.create () in
  let fired = ref 0 in
  Sim.Engine.schedule_at e (Sim.Time.us 10) (fun () -> incr fired);
  Sim.Engine.schedule_at e (Sim.Time.us 100) (fun () -> incr fired);
  Sim.Engine.run ~until:(Sim.Time.us 50) e;
  Alcotest.(check int) "only first fired" 1 !fired;
  Alcotest.(check int) "clock advanced to horizon" 50_000 (Sim.Engine.now e);
  Sim.Engine.run e;
  Alcotest.(check int) "rest fired later" 2 !fired

let test_engine_suspend_resume () =
  let e = Sim.Engine.create () in
  let resume_slot = ref None in
  let state = ref "init" in
  Sim.Engine.spawn e (fun () ->
      state := "blocked";
      Sim.Engine.suspend e (fun resume -> resume_slot := Some resume);
      state := "resumed");
  Sim.Engine.run e;
  Alcotest.(check string) "blocked" "blocked" !state;
  (match !resume_slot with Some r -> r (Ok ()) | None -> Alcotest.fail "no resume");
  Sim.Engine.run e;
  Alcotest.(check string) "resumed" "resumed" !state

let test_engine_resume_twice_rejected () =
  let e = Sim.Engine.create () in
  let resume_slot = ref None in
  Sim.Engine.spawn e (fun () ->
      Sim.Engine.suspend e (fun resume -> resume_slot := Some resume));
  Sim.Engine.run e;
  let r = Option.get !resume_slot in
  r (Ok ());
  Alcotest.check_raises "second resume rejected"
    (Invalid_argument "Sim.Engine: process resumed twice") (fun () -> r (Ok ()))

let test_engine_error_resume () =
  let e = Sim.Engine.create () in
  let caught = ref false in
  let resume_slot = ref None in
  Sim.Engine.spawn e (fun () ->
      try Sim.Engine.suspend e (fun resume -> resume_slot := Some resume)
      with Sim.Engine.Cancelled _ -> caught := true);
  Sim.Engine.run e;
  (Option.get !resume_slot) (Error (Sim.Engine.Cancelled "test"));
  Sim.Engine.run e;
  Alcotest.(check bool) "cancellation raised in process" true !caught

(* --- condition --------------------------------------------------------- *)

let test_condition_fifo () =
  let e = Sim.Engine.create () in
  let c = Sim.Condition.create () in
  let order = ref [] in
  for i = 1 to 3 do
    Sim.Engine.spawn e (fun () ->
        Sim.Condition.wait e c;
        order := i :: !order)
  done;
  Sim.Engine.spawn ~at:(Sim.Time.us 1) e (fun () ->
      ignore (Sim.Condition.signal c);
      ignore (Sim.Condition.signal c);
      ignore (Sim.Condition.signal c));
  Sim.Engine.run e;
  Alcotest.(check (list int)) "fifo wakeups" [ 1; 2; 3 ] (List.rev !order)

let test_condition_broadcast_and_cancel () =
  let e = Sim.Engine.create () in
  let c = Sim.Condition.create () in
  let woken = ref 0 and cancelled = ref 0 in
  for _ = 1 to 4 do
    Sim.Engine.spawn e (fun () ->
        try
          Sim.Condition.wait e c;
          incr woken
        with Sim.Engine.Cancelled _ -> incr cancelled)
  done;
  Sim.Engine.schedule_at e (Sim.Time.us 1) (fun () ->
      Alcotest.(check int) "waiting" 4 (Sim.Condition.waiting c);
      Alcotest.(check int) "broadcast count" 4 (Sim.Condition.broadcast c));
  Sim.Engine.run e;
  Alcotest.(check int) "all woken" 4 !woken;
  (* Now cancel a fresh set. *)
  for _ = 1 to 2 do
    Sim.Engine.spawn e (fun () ->
        try Sim.Condition.wait e c with Sim.Engine.Cancelled _ -> incr cancelled)
  done;
  Sim.Engine.schedule_at e (Sim.Engine.now e) (fun () ->
      ignore (Sim.Condition.cancel_all c));
  Sim.Engine.run e;
  Alcotest.(check int) "cancelled" 2 !cancelled

(* --- semaphore --------------------------------------------------------- *)

let test_semaphore_counting () =
  let e = Sim.Engine.create () in
  let s = Sim.Semaphore.create 2 in
  let active = ref 0 and max_active = ref 0 and done_ = ref 0 in
  for _ = 1 to 5 do
    Sim.Engine.spawn e (fun () ->
        Sim.Semaphore.acquire e s;
        incr active;
        if !active > !max_active then max_active := !active;
        Sim.Engine.delay e (Sim.Time.us 10);
        decr active;
        incr done_;
        Sim.Semaphore.release s)
  done;
  Sim.Engine.run e;
  Alcotest.(check int) "all finished" 5 !done_;
  Alcotest.(check int) "never more than 2 inside" 2 !max_active;
  Alcotest.(check int) "units restored" 2 (Sim.Semaphore.value s)

let test_semaphore_try_acquire () =
  let s = Sim.Semaphore.create 1 in
  Alcotest.(check bool) "first try ok" true (Sim.Semaphore.try_acquire s);
  Alcotest.(check bool) "second try fails" false (Sim.Semaphore.try_acquire s);
  Sim.Semaphore.release s;
  Alcotest.(check bool) "after release ok" true (Sim.Semaphore.try_acquire s)

let test_semaphore_negative_rejected () =
  Alcotest.check_raises "negative initial"
    (Invalid_argument "Sim.Semaphore.create: negative count") (fun () ->
      ignore (Sim.Semaphore.create (-1)))

(* --- mailbox ----------------------------------------------------------- *)

let test_mailbox_order () =
  let e = Sim.Engine.create () in
  let mb = Sim.Mailbox.create () in
  let got = ref [] in
  Sim.Engine.spawn e (fun () ->
      for _ = 1 to 3 do
        got := Sim.Mailbox.receive e mb :: !got
      done);
  Sim.Engine.spawn ~at:(Sim.Time.us 1) e (fun () ->
      Sim.Mailbox.send mb "a";
      Sim.Mailbox.send mb "b";
      Sim.Mailbox.send mb "c");
  Sim.Engine.run e;
  Alcotest.(check (list string)) "fifo messages" [ "a"; "b"; "c" ] (List.rev !got)

let test_mailbox_try_receive () =
  let mb = Sim.Mailbox.create () in
  Alcotest.(check (option int)) "empty" None (Sim.Mailbox.try_receive mb);
  Sim.Mailbox.send mb 42;
  Alcotest.(check (option int)) "one" (Some 42) (Sim.Mailbox.try_receive mb)

(* --- stats ------------------------------------------------------------- *)

let test_stats_moments () =
  let s = Sim.Stats.create () in
  List.iter (Sim.Stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check int) "count" 8 (Sim.Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Sim.Stats.mean s);
  Alcotest.(check (float 1e-9)) "min" 2.0 (Sim.Stats.minimum s);
  Alcotest.(check (float 1e-9)) "max" 9.0 (Sim.Stats.maximum s);
  Alcotest.(check (float 1e-6)) "stddev (sample)" 2.13809 (Sim.Stats.stddev s)

let prop_stats_percentile_matches_sort =
  QCheck.Test.make ~name:"median matches sorted middle" ~count:100
    QCheck.(list_of_size Gen.(1 -- 100) (float_bound_exclusive 1000.0))
    (fun xs ->
      let s = Sim.Stats.create () in
      List.iter (Sim.Stats.add s) xs;
      let sorted = List.sort Float.compare xs in
      let n = List.length sorted in
      let median = Sim.Stats.median s in
      let lo = List.nth sorted ((n - 1) / 2) and hi = List.nth sorted (n / 2) in
      median >= lo -. 1e-9 && median <= hi +. 1e-9)

let suites =
  [
    ( "sim.heap",
      [
        Alcotest.test_case "push/pop basics" `Quick test_heap_basic;
        qcheck prop_heap_sorts;
        qcheck prop_heap_peek_is_min;
      ] );
    ( "sim.rng",
      [
        Alcotest.test_case "deterministic per seed" `Quick test_rng_deterministic;
        Alcotest.test_case "seeds differ" `Quick test_rng_different_seeds;
        Alcotest.test_case "split independence" `Quick test_rng_split_independent;
        qcheck prop_rng_int_in_bounds;
        qcheck prop_rng_exponential_bounded;
      ] );
    ( "sim.engine",
      [
        Alcotest.test_case "time ordering" `Quick test_engine_time_ordering;
        Alcotest.test_case "fifo at equal times" `Quick test_engine_fifo_at_same_time;
        Alcotest.test_case "delay accumulates" `Quick test_engine_delay_accumulates;
        Alcotest.test_case "run until horizon" `Quick test_engine_run_until;
        Alcotest.test_case "suspend/resume" `Quick test_engine_suspend_resume;
        Alcotest.test_case "double resume rejected" `Quick
          test_engine_resume_twice_rejected;
        Alcotest.test_case "error resume raises in process" `Quick
          test_engine_error_resume;
      ] );
    ( "sim.condition",
      [
        Alcotest.test_case "fifo wakeups" `Quick test_condition_fifo;
        Alcotest.test_case "broadcast and cancel" `Quick
          test_condition_broadcast_and_cancel;
      ] );
    ( "sim.semaphore",
      [
        Alcotest.test_case "counting discipline" `Quick test_semaphore_counting;
        Alcotest.test_case "try_acquire" `Quick test_semaphore_try_acquire;
        Alcotest.test_case "negative rejected" `Quick
          test_semaphore_negative_rejected;
      ] );
    ( "sim.mailbox",
      [
        Alcotest.test_case "fifo order" `Quick test_mailbox_order;
        Alcotest.test_case "try_receive" `Quick test_mailbox_try_receive;
      ] );
    ( "sim.stats",
      [
        Alcotest.test_case "moments" `Quick test_stats_moments;
        qcheck prop_stats_percentile_matches_sort;
      ] );
  ]

(* Stress: thousands of interleaved processes stay deterministic and
   drain completely. *)
let test_engine_stress () =
  let e = Sim.Engine.create () in
  let n = 2000 in
  let completed = ref 0 in
  let cond = Sim.Condition.create () in
  for i = 0 to n - 1 do
    Sim.Engine.spawn e (fun () ->
        Sim.Engine.delay e (Sim.Time.us (i mod 17));
        if i mod 3 = 0 then Sim.Condition.wait e cond
        else begin
          Sim.Engine.delay e (Sim.Time.us 1);
          ignore (Sim.Condition.signal cond)
        end;
        incr completed)
  done;
  Sim.Engine.run e;
  (* Wake any stragglers (more waiters than signallers). *)
  ignore (Sim.Condition.broadcast cond);
  Sim.Engine.run e;
  Alcotest.(check int) "every process completed" n !completed

let stress_suite =
  ("sim.stress", [ Alcotest.test_case "2000 processes" `Quick test_engine_stress ])

(* Step hooks: registration order preserved (the growable-array rewrite
   must behave exactly like the old append-to-list), clear resets, and
   registering many hooks is cheap. *)
let test_step_hook_order () =
  let e = Sim.Engine.create () in
  let seen = ref [] in
  for i = 0 to 4 do
    Sim.Engine.add_step_hook e (fun () -> seen := i :: !seen)
  done;
  Sim.Engine.spawn e (fun () -> ());
  Sim.Engine.run e;
  (* One executed event -> each hook ran once, oldest registration
     first. *)
  Alcotest.(check (list int)) "registration order" [ 0; 1; 2; 3; 4 ]
    (List.rev !seen);
  Sim.Engine.clear_step_hooks e;
  seen := [];
  Sim.Engine.spawn e (fun () -> ());
  Sim.Engine.run e;
  Alcotest.(check (list int)) "cleared" [] !seen

let test_step_hook_many () =
  let e = Sim.Engine.create () in
  let count = ref 0 in
  (* The old [hooks @ [f]] registration was quadratic; 10k registrations
     would take minutes.  The growable array makes this instant. *)
  for _ = 1 to 10_000 do
    Sim.Engine.add_step_hook e (fun () -> incr count)
  done;
  Sim.Engine.spawn e (fun () -> ());
  Sim.Engine.run e;
  Alcotest.(check int) "all hooks ran" 10_000 !count

let hook_suite =
  ( "sim.step_hooks",
    [
      Alcotest.test_case "registration order" `Quick test_step_hook_order;
      Alcotest.test_case "10k hooks register fast" `Quick test_step_hook_many;
    ] )

let suites = suites @ [ stress_suite; hook_suite ]
