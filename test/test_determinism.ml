(* Determinism and model-based property tests.

   The whole simulator must be bit-for-bit reproducible: identical runs
   give identical clocks, counts and breakdowns.  And the costed pool /
   cache structures must agree with trivial reference models under
   arbitrary operation sequences. *)

let qcheck = QCheck_alcotest.to_alcotest

(* --- determinism --------------------------------------------------------- *)

let test_fig2_deterministic () =
  let cond =
    { Experiments.Fig2.target = Experiments.Fig2.To_user;
      hold_cd = false;
      flushed = false;
    }
  in
  let a = Experiments.Fig2.run cond and b = Experiments.Fig2.run cond in
  Alcotest.(check (float 0.0)) "identical totals" a.Experiments.Fig2.total_us
    b.Experiments.Fig2.total_us;
  List.iter2
    (fun (ca, ua) (cb, ub) ->
      Alcotest.(check bool) "same category" true (ca = cb);
      Alcotest.(check (float 0.0)) "identical category cost" ua ub)
    a.Experiments.Fig2.breakdown b.Experiments.Fig2.breakdown

let test_fig3_point_deterministic () =
  let run () =
    Experiments.Fig3.run_point ~horizon:(Sim.Time.ms 10)
      ~mode:Experiments.Fig3.Single_file ~cpus:3 ()
  in
  let a = run () and b = run () in
  Alcotest.(check int) "identical call counts" a.Experiments.Fig3.calls
    b.Experiments.Fig3.calls;
  Alcotest.(check (float 0.0)) "identical throughput"
    a.Experiments.Fig3.throughput b.Experiments.Fig3.throughput

let test_engine_event_count_deterministic () =
  let run () =
    let kern = Kernel.create ~cpus:2 () in
    let ppc = Ppc.create kern in
    let server = Ppc.make_user_server ppc ~name:"s" () in
    let ep = Ppc.register_direct ppc ~server ~handler:Ppc.Null_server.echo in
    Ppc.prime ppc ~ep ~cpus:[ 0; 1 ];
    for cpu = 0 to 1 do
      let program = Kernel.new_program kern ~name:(Printf.sprintf "c%d" cpu) in
      let space =
        Kernel.new_user_space kern ~name:(Printf.sprintf "c%d" cpu) ~node:cpu
      in
      ignore
        (Kernel.spawn kern ~cpu ~name:"c" ~kind:Kernel.Process.Client ~program
           ~space (fun self ->
             for _ = 1 to 20 do
               ignore
                 (Ppc.call ppc ~client:self ~ep_id:(Ppc.Entry_point.id ep)
                    (Ppc.Reg_args.make ()))
             done))
    done;
    Kernel.run kern;
    (Sim.Engine.executed_events (Kernel.engine kern), Kernel.now kern)
  in
  let a = run () and b = run () in
  Alcotest.(check (pair int int)) "identical event streams" a b

(* --- model-based: CD pool vs reference LIFO ------------------------------- *)

let test_cd_pool_model () =
  let kern = Kernel.create ~cpus:1 () in
  let ppc = Ppc.create ~initial_cds_per_cpu:4 kern in
  let pool = Ppc.Engine.cd_pool (Ppc.engine ppc) 0 in
  let cpu = Machine.cpu (Kernel.machine kern) 0 in
  let rng = Sim.Rng.create ~seed:99 in
  (* Model: [free] is a LIFO of indices; [held] the indices we hold. *)
  let free = ref [] and held = ref [] in
  (* Drain the pool, keeping the CD handles, then push everything back to
     establish a known LIFO shared by pool and model. *)
  let handles = Hashtbl.create 8 in
  let rec drain () =
    match Ppc.Cd_pool.alloc cpu pool with
    | Some cd ->
        Hashtbl.replace handles (Ppc.Call_descriptor.index cd) cd;
        drain ()
    | None -> ()
  in
  drain ();
  Hashtbl.iter
    (fun idx cd ->
      Ppc.Cd_pool.release cpu pool cd;
      free := idx :: !free)
    handles;
  (* Random alloc/release walk checked against the model. *)
  for _ = 1 to 500 do
    if (Sim.Rng.bool rng && !free <> []) || !held = [] then begin
      match (Ppc.Cd_pool.alloc cpu pool, !free) with
      | Some cd, m :: rest ->
          Alcotest.(check int) "alloc pops model head" m
            (Ppc.Call_descriptor.index cd);
          free := rest;
          held := Ppc.Call_descriptor.index cd :: !held
      | None, [] -> ()
      | Some _, [] -> Alcotest.fail "pool gave a CD the model didn't have"
      | None, _ :: _ -> Alcotest.fail "pool empty but model wasn't"
    end
    else
      match !held with
      | idx :: rest ->
          Ppc.Cd_pool.release cpu pool (Hashtbl.find handles idx);
          held := rest;
          free := idx :: !free
      | [] -> ()
  done

(* --- model-based: cache vs reference set-associative model ---------------- *)

let test_cache_model () =
  let params = Machine.Cost_params.hector in
  let cache = Machine.Cache.create params in
  let rng = Sim.Rng.create ~seed:7 in
  (* Reference: per set, a list of (tag, lru_stamp), max 4 entries. *)
  let n_sets = Machine.Cache.n_sets cache in
  let sets = Array.make n_sets [] in
  let clock = ref 0 in
  for _ = 1 to 5000 do
    (* Cluster addresses so sets see real pressure. *)
    let addr = Sim.Rng.int rng 4096 * 16 in
    let set = addr / 16 mod n_sets in
    let tag = addr / 16 / n_sets in
    incr clock;
    let model_hit = List.mem_assoc tag sets.(set) in
    let actual_hit = Machine.Cache.contains cache addr in
    Alcotest.(check bool) "residency agrees with reference" model_hit actual_hit;
    ignore (Machine.Cache.access cache Machine.Cache.Load addr);
    let entries = List.remove_assoc tag sets.(set) in
    let entries = (tag, !clock) :: entries in
    let entries =
      if List.length entries > 4 then
        (* Drop the least recently used. *)
        let lru, _ =
          List.fold_left
            (fun (bt, bc) (t, c) -> if c < bc then (t, c) else (bt, bc))
            (List.hd entries) (List.tl entries)
        in
        List.remove_assoc lru entries
      else entries
    in
    sets.(set) <- entries
  done

(* Every experiment, run twice with the same (implicit) seed, rendered
   through its own pretty-printer: the reports must be byte-identical.
   Parameters are scaled down where the API allows, to keep this cheap. *)
let test_all_experiments_bit_identical () =
  let twice name render =
    Alcotest.(check string) (name ^ " bit-identical") (render ()) (render ())
  in
  let ms = Sim.Time.ms in
  twice "fig2" (fun () ->
      Fmt.str "%a" Experiments.Fig2.pp_result
        (Experiments.Fig2.run
           { Experiments.Fig2.target = Experiments.Fig2.To_kernel;
             hold_cd = true;
             flushed = false;
           }));
  twice "fig2_icache" (fun () ->
      Fmt.str "%a" Experiments.Fig2_icache.pp_result
        (Experiments.Fig2_icache.run ()));
  twice "fig3" (fun () ->
      Fmt.str "%a" Experiments.Fig3.pp_result
        (Experiments.Fig3.run ~max_cpus:3 ~horizon:(ms 8)
           ~mode:Experiments.Fig3.Single_file ()));
  twice "fig3_zipf" (fun () ->
      Fmt.str "%a" Experiments.Fig3_zipf.pp_result
        (Experiments.Fig3_zipf.run ~cpus:3 ~files:4 ~horizon:(ms 8)
           ~thetas:[ 0.0; 1.2 ] ()));
  twice "program_mix" (fun () ->
      Fmt.str "%a" Experiments.Program_mix.pp_result
        (Experiments.Program_mix.run ~cpus:3 ~horizon:(ms 8) ()));
  twice "latency_load" (fun () ->
      Fmt.str "%a" Experiments.Latency_load.pp_result
        ( Experiments.Latency_load.Different_files,
          Experiments.Latency_load.run ~cpus:3 ~horizon:(ms 8)
            ~thinks:[ 400.0; 60.0 ]
            ~mode:Experiments.Latency_load.Different_files () ));
  twice "ablate_holdcd" (fun () ->
      Fmt.str "%a" Experiments.Ablate_holdcd.pp_result
        (Experiments.Ablate_holdcd.run ~calls:50 ~server_counts:[ 1; 2 ] ()));
  twice "ablate_lrpc" (fun () ->
      Fmt.str "%a" Experiments.Ablate_lrpc.pp_result
        (Experiments.Ablate_lrpc.run ~max_cpus:3 ~horizon:(ms 8) ()));
  twice "ablate_async" (fun () ->
      Fmt.str "%a" Experiments.Ablate_async.pp_result
        (Experiments.Ablate_async.run ~blocks:4 ()));
  twice "ablate_msg" (fun () ->
      Fmt.str "%a" Experiments.Ablate_msg.pp_result
        (Experiments.Ablate_msg.run ()));
  twice "ablate_rwlock" (fun () ->
      Fmt.str "%a" Experiments.Ablate_rwlock.pp_result
        (Experiments.Ablate_rwlock.run ~max_cpus:3 ~horizon:(ms 8) ()));
  twice "ablate_compat" (fun () ->
      Fmt.str "%a" Experiments.Ablate_compat.pp_result
        (Experiments.Ablate_compat.run ()));
  twice "ablate_cluster" (fun () ->
      Fmt.str "%a" Experiments.Ablate_cluster.pp_result
        (Experiments.Ablate_cluster.run ~horizon:(ms 8) ()));
  twice "ablate_remote" (fun () ->
      Fmt.str "%a" Experiments.Ablate_remote.pp_result
        (Experiments.Ablate_remote.run ~cpus:3 ()));
  twice "ablate_migration" (fun () ->
      Fmt.str "%a" Experiments.Ablate_migration.pp_result
        (Experiments.Ablate_migration.run ()));
  twice "ablate_stack" (fun () ->
      Fmt.str "%a" Experiments.Ablate_stack.pp_result
        (Experiments.Ablate_stack.run ()));
  twice "uniproc_context" (fun () ->
      Fmt.str "%a" Experiments.Uniproc_context.pp_result
        (Experiments.Uniproc_context.run ()));
  twice "copy_sweep" (fun () ->
      Fmt.str "%a" Experiments.Copy_sweep.pp_result
        (Experiments.Copy_sweep.run ~sizes:[ 64; 4096; 65536 ] ()));
  (* The traffic report is a CI-diffed artifact: the *JSON bytes* must be
     identical across runs, not just the numbers. *)
  twice "traffic_study report json" (fun () ->
      Workload.Report.Json.to_string
        (Workload.Report.to_json
           (Experiments.Traffic_study.report
              (Experiments.Traffic_study.run ~cfg:Experiments.Traffic_study.slice
                 ()))))

let suites =
  [
    ( "determinism",
      [
        Alcotest.test_case "fig2 bit-identical" `Quick test_fig2_deterministic;
        Alcotest.test_case "fig3 point bit-identical" `Quick
          test_fig3_point_deterministic;
        Alcotest.test_case "event stream identical" `Quick
          test_engine_event_count_deterministic;
        Alcotest.test_case "all experiments bit-identical" `Quick
          test_all_experiments_bit_identical;
      ] );
    ( "model_based",
      [
        Alcotest.test_case "CD pool vs LIFO model" `Quick test_cd_pool_model;
        Alcotest.test_case "cache vs 4-way LRU model" `Quick test_cache_model;
      ] );
  ]
