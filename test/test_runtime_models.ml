(* Model-based tests for the lock-free runtime structures.

   Each structure is driven by a generated operation sequence and
   compared, observation by observation, against a trivial sequential
   reference model (an OCaml list / queue / integer).  Sequentially the
   lock-free structures must be indistinguishable from their models;
   the cross-domain suites in test_runtime.ml cover the concurrent side.

   Operations are encoded as integer pairs [(tag, value)] so QCheck's
   stock list/int shrinkers minimize failing sequences. *)

let qcheck = QCheck_alcotest.to_alcotest

let ops_arb = QCheck.(small_list (pair (int_bound 3) (int_bound 1000)))

(* --- Treiber stack vs list ------------------------------------------------ *)

let prop_treiber_vs_list =
  QCheck.Test.make ~name:"treiber stack = list model" ~count:300 ops_arb
    (fun ops ->
      let s = Runtime.Treiber_stack.create () in
      let model = ref [] in
      List.for_all
        (fun (tag, v) ->
          if tag < 2 then begin
            Runtime.Treiber_stack.push s v;
            model := v :: !model;
            true
          end
          else
            let got = Runtime.Treiber_stack.pop s in
            let want =
              match !model with
              | [] -> None
              | x :: rest ->
                  model := rest;
                  Some x
            in
            got = want
            && Runtime.Treiber_stack.length s = List.length !model
            && Runtime.Treiber_stack.is_empty s = (!model = []))
        ops)

(* --- MPSC queue vs FIFO list ---------------------------------------------- *)

let prop_mpsc_vs_queue =
  QCheck.Test.make ~name:"mpsc queue = queue model" ~count:300 ops_arb
    (fun ops ->
      let q = Runtime.Mpsc_queue.create () in
      let model = Queue.create () in
      List.for_all
        (fun (tag, v) ->
          if tag < 2 then begin
            Runtime.Mpsc_queue.push q v;
            Queue.push v model;
            true
          end
          else
            let got = Runtime.Mpsc_queue.pop q in
            let want = Queue.take_opt model in
            got = want && Runtime.Mpsc_queue.is_empty q = Queue.is_empty model)
        ops)

(* --- SPSC ring vs bounded queue model ------------------------------------- *)

let prop_spsc_vs_bounded_queue =
  QCheck.Test.make ~name:"spsc ring = bounded queue model" ~count:300 ops_arb
    (fun ops ->
      let cap = 4 in
      let r = Runtime.Spsc_ring.create ~capacity:cap in
      let model = Queue.create () in
      List.for_all
        (fun (tag, v) ->
          if tag < 2 then begin
            let got = Runtime.Spsc_ring.try_push r v in
            let want = Queue.length model < cap in
            if want then Queue.push v model;
            got = want
          end
          else
            let got = Runtime.Spsc_ring.try_pop r in
            let want = Queue.take_opt model in
            got = want)
        ops)

(* --- striped counter vs integer ------------------------------------------- *)

let prop_striped_vs_int =
  QCheck.Test.make ~name:"striped counter = integer model" ~count:300
    QCheck.(small_list (pair (int_bound 2) (int_range (-500) 500)))
    (fun ops ->
      let c = Runtime.Striped_counter.create ~stripes:4 () in
      let model = ref 0 in
      List.for_all
        (fun (tag, v) ->
          match tag with
          | 0 ->
              Runtime.Striped_counter.incr c;
              incr model;
              true
          | 1 ->
              Runtime.Striped_counter.add c v;
              model := !model + v;
              true
          | _ -> Runtime.Striped_counter.value c = !model)
        ops
      && Runtime.Striped_counter.value c = !model)

(* --- request slab vs free-stack model ------------------------------------- *)

(* The slab's serial-reuse contract: release pushes the cell on a free
   stack, acquire pops the most recently released cell (warm calls keep
   touching the same hot cell) and only mints a fresh index when the
   stack is empty.  The model is a free-id stack plus the set of
   outstanding ids. *)
let prop_slab_serial_reuse =
  QCheck.Test.make ~name:"request slab = free-stack model" ~count:300 ops_arb
    (fun ops ->
      let s = Runtime.Request_slab.create ~capacity:1 ~arg_words:8 () in
      let first = Runtime.Request_slab.acquire s in
      Runtime.Request_slab.release s first;
      let free = ref [ first.Runtime.Request_slab.index ] in
      let minted = ref 1 in
      let out = Hashtbl.create 8 in
      List.for_all
        (fun (tag, _) ->
          if tag < 2 then begin
            let cell = Runtime.Request_slab.acquire s in
            let idx = cell.Runtime.Request_slab.index in
            let want =
              match !free with
              | top :: rest ->
                  free := rest;
                  top
              | [] ->
                  let id = !minted in
                  incr minted;
                  id
            in
            Hashtbl.replace out idx cell;
            idx = want
            && Atomic.get cell.Runtime.Request_slab.state
               = Runtime.Request_slab.state_free
          end
          else
            match Hashtbl.length out with
            | 0 -> true
            | _ ->
                (* Release an arbitrary outstanding cell (first in the
                   table's iteration order keeps it deterministic enough
                   for the model, which tracks ids, not order). *)
                let idx, cell =
                  Hashtbl.fold
                    (fun k v acc ->
                      match acc with
                      | Some (k0, _) when k0 <= k -> acc
                      | _ -> Some (k, v))
                    out None
                  |> Option.get
                in
                Hashtbl.remove out idx;
                Runtime.Request_slab.release s cell;
                free := idx :: !free;
                Runtime.Request_slab.available s = List.length !free
                && Runtime.Request_slab.in_flight s = Hashtbl.length out)
        ops
      && Runtime.Request_slab.created s = !minted)

let suites =
  [
    ( "runtime.models",
      [
        qcheck prop_treiber_vs_list;
        qcheck prop_mpsc_vs_queue;
        qcheck prop_spsc_vs_bounded_queue;
        qcheck prop_striped_vs_int;
        qcheck prop_slab_serial_reuse;
      ] );
  ]
