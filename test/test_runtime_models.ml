(* Model-based tests for the lock-free runtime structures.

   Each structure is driven by a generated operation sequence and
   compared, observation by observation, against a trivial sequential
   reference model (an OCaml list / queue / integer).  Sequentially the
   lock-free structures must be indistinguishable from their models;
   the cross-domain suites in test_runtime.ml cover the concurrent side.

   Operations are encoded as integer pairs [(tag, value)] so QCheck's
   stock list/int shrinkers minimize failing sequences. *)

let qcheck = QCheck_alcotest.to_alcotest

let ops_arb = QCheck.(small_list (pair (int_bound 3) (int_bound 1000)))

(* --- Treiber stack vs list ------------------------------------------------ *)

let prop_treiber_vs_list =
  QCheck.Test.make ~name:"treiber stack = list model" ~count:300 ops_arb
    (fun ops ->
      let s = Runtime.Treiber_stack.create () in
      let model = ref [] in
      List.for_all
        (fun (tag, v) ->
          if tag < 2 then begin
            Runtime.Treiber_stack.push s v;
            model := v :: !model;
            true
          end
          else
            let got = Runtime.Treiber_stack.pop s in
            let want =
              match !model with
              | [] -> None
              | x :: rest ->
                  model := rest;
                  Some x
            in
            got = want
            && Runtime.Treiber_stack.length s = List.length !model
            && Runtime.Treiber_stack.is_empty s = (!model = []))
        ops)

(* --- MPSC queue vs FIFO list ---------------------------------------------- *)

let prop_mpsc_vs_queue =
  QCheck.Test.make ~name:"mpsc queue = queue model" ~count:300 ops_arb
    (fun ops ->
      let q = Runtime.Mpsc_queue.create () in
      let model = Queue.create () in
      List.for_all
        (fun (tag, v) ->
          if tag < 2 then begin
            Runtime.Mpsc_queue.push q v;
            Queue.push v model;
            true
          end
          else
            let got = Runtime.Mpsc_queue.pop q in
            let want = Queue.take_opt model in
            got = want && Runtime.Mpsc_queue.is_empty q = Queue.is_empty model)
        ops)

(* --- SPSC ring vs bounded queue model ------------------------------------- *)

let prop_spsc_vs_bounded_queue =
  QCheck.Test.make ~name:"spsc ring = bounded queue model" ~count:300 ops_arb
    (fun ops ->
      let cap = 4 in
      let r = Runtime.Spsc_ring.create ~capacity:cap in
      let model = Queue.create () in
      List.for_all
        (fun (tag, v) ->
          if tag < 2 then begin
            let got = Runtime.Spsc_ring.try_push r v in
            let want = Queue.length model < cap in
            if want then Queue.push v model;
            got = want
          end
          else
            let got = Runtime.Spsc_ring.try_pop r in
            let want = Queue.take_opt model in
            got = want)
        ops)

(* --- striped counter vs integer ------------------------------------------- *)

let prop_striped_vs_int =
  QCheck.Test.make ~name:"striped counter = integer model" ~count:300
    QCheck.(small_list (pair (int_bound 2) (int_range (-500) 500)))
    (fun ops ->
      let c = Runtime.Striped_counter.create ~stripes:4 () in
      let model = ref 0 in
      List.for_all
        (fun (tag, v) ->
          match tag with
          | 0 ->
              Runtime.Striped_counter.incr c;
              incr model;
              true
          | 1 ->
              Runtime.Striped_counter.add c v;
              model := !model + v;
              true
          | _ -> Runtime.Striped_counter.value c = !model)
        ops
      && Runtime.Striped_counter.value c = !model)

(* --- request slab vs free-stack model ------------------------------------- *)

(* The slab's serial-reuse contract: release pushes the cell on a free
   stack, acquire pops the most recently released cell (warm calls keep
   touching the same hot cell) and only mints a fresh index when the
   stack is empty.  The model is a free-id stack plus the set of
   outstanding ids. *)
let prop_slab_serial_reuse =
  QCheck.Test.make ~name:"request slab = free-stack model" ~count:300 ops_arb
    (fun ops ->
      let s = Runtime.Request_slab.create ~capacity:1 ~arg_words:8 () in
      let first = Runtime.Request_slab.acquire s in
      Runtime.Request_slab.release s first;
      let free = ref [ first.Runtime.Request_slab.index ] in
      let minted = ref 1 in
      let out = Hashtbl.create 8 in
      List.for_all
        (fun (tag, _) ->
          if tag < 2 then begin
            let cell = Runtime.Request_slab.acquire s in
            let idx = cell.Runtime.Request_slab.index in
            let want =
              match !free with
              | top :: rest ->
                  free := rest;
                  top
              | [] ->
                  let id = !minted in
                  incr minted;
                  id
            in
            Hashtbl.replace out idx cell;
            idx = want
            && Atomic.get cell.Runtime.Request_slab.state
               = Runtime.Request_slab.state_free
          end
          else
            match Hashtbl.length out with
            | 0 -> true
            | _ ->
                (* Release an arbitrary outstanding cell (first in the
                   table's iteration order keeps it deterministic enough
                   for the model, which tracks ids, not order). *)
                let idx, cell =
                  Hashtbl.fold
                    (fun k v acc ->
                      match acc with
                      | Some (k0, _) when k0 <= k -> acc
                      | _ -> Some (k, v))
                    out None
                  |> Option.get
                in
                Hashtbl.remove out idx;
                Runtime.Request_slab.release s cell;
                free := idx :: !free;
                Runtime.Request_slab.available s = List.length !free
                && Runtime.Request_slab.in_flight s = Hashtbl.length out)
        ops
      && Runtime.Request_slab.created s = !minted)

(* --- slab abandonment vs set model ----------------------------------------- *)

(* The deadline protocol's core invariant: a cell abandoned via the
   pending → abandoned CAS and then handed back through [reclaim] is
   recycled exactly once — it reappears in the pool once, and the slab
   never ends up with duplicate or lost cells.  The model walks a
   generated plan of complete/abandon outcomes, then drains the slab
   and checks every created cell comes back exactly once. *)
let prop_slab_abandon_reclaim =
  QCheck.Test.make ~name:"slab: abandoned cells recycled exactly once"
    ~count:300
    QCheck.(small_list bool)
    (fun plan ->
      let module S = Runtime.Request_slab in
      let s = S.create ~capacity:2 ~max_cells:64 ~arg_words:8 () in
      let abandons = ref 0 in
      List.iter
        (fun abandon ->
          match S.try_acquire s with
          | None -> ()
          | Some cell ->
              Atomic.set cell.S.state S.state_pending;
              if abandon then begin
                (* Client side: deadline expired, win the handoff CAS… *)
                assert (
                  Atomic.compare_and_set cell.S.state S.state_pending
                    S.state_abandoned);
                incr abandons;
                (* …server side: sees the abandoned cell, reclaims it. *)
                S.reclaim s cell
              end
              else begin
                ignore (Atomic.exchange cell.S.state S.state_done);
                S.release s cell
              end)
        plan;
      let n = S.created s in
      S.reclaimed s = !abandons
      && S.available s = n
      && S.in_flight s = 0
      &&
      (* Drain the whole slab: every cell must surface exactly once. *)
      let seen = Hashtbl.create 16 in
      let unique = ref true in
      for _ = 1 to n do
        match S.try_acquire s with
        | None -> unique := false
        | Some c ->
            if Hashtbl.mem seen c.S.index then unique := false;
            Hashtbl.replace seen c.S.index ()
      done;
      !unique && Hashtbl.length seen = n && S.in_flight s = n)

(* --- entry-point slot table vs lifecycle model ---------------------------- *)

(* Sequential model of the versioned slot table: a map of live IDs (each
   carrying the registration token that owns it and the stamp its current
   handler writes), a LIFO free list mirroring the table's Treiber stack,
   and a monotonic mint counter.  Sequentially every kill drains
   immediately (nothing is in flight), so a killed ID goes straight back
   on the free list and any handle minted before the kill must be
   rejected forever after — including across ID reuse, which is exactly
   the ABA case the generation counter exists for. *)
let prop_slot_lifecycle =
  QCheck.Test.make ~name:"entry-point slot table = lifecycle model" ~count:200
    QCheck.(small_list (pair (int_bound 6) (int_bound 1000)))
    (fun ops ->
      let module F = Runtime.Fastcall in
      let t = F.create () in
      let owner = Hashtbl.create 16 in
      let stamp = Hashtbl.create 16 in
      let free = ref [] in
      let minted = ref 0 in
      let next_token = ref 0 in
      let handles = ref [] in
      let pick v =
        match !handles with
        | [] -> None
        | hs -> Some (List.nth hs (v mod List.length hs))
      in
      let behavior v : F.handler = fun _ctx args -> args.(0) <- v in
      let fresh_args () = Array.make F.arg_words 0 in
      let live id token = Hashtbl.find_opt owner id = Some token in
      let kill_model id =
        Hashtbl.remove owner id;
        Hashtbl.remove stamp id;
        free := id :: !free
      in
      List.for_all
        (fun (tag, v) ->
          match tag with
          | 0 ->
              let ep = F.register_ep t (behavior v) in
              let id = F.ep_id ep in
              let want =
                match !free with
                | top :: rest ->
                    free := rest;
                    top
                | [] ->
                    let i = !minted in
                    incr minted;
                    i
              in
              let token = !next_token in
              incr next_token;
              Hashtbl.replace owner id token;
              Hashtbl.replace stamp id v;
              handles := (ep, id, token) :: !handles;
              id = want
          | 1 -> (
              (* handle path: live handles reach their current handler,
                 stale ones are rejected without running anything *)
              match pick v with
              | None -> true
              | Some (ep, id, token) ->
                  let a = fresh_args () in
                  let rc = F.call_h t ep a in
                  if live id token then
                    rc = Ipc_intf.Errc.ok && a.(0) = Hashtbl.find stamp id
                  else rc = Ipc_intf.Errc.no_entry && a.(0) = 0)
          | 2 ->
              (* raw-ID path over the whole minted range *)
              if !minted = 0 then true
              else begin
                let id = v mod !minted in
                let a = fresh_args () in
                match F.call t ~ep:id a with
                | rc ->
                    Hashtbl.mem owner id
                    && rc = Ipc_intf.Errc.ok
                    && a.(0) = Hashtbl.find stamp id
                | exception F.No_entry _ -> not (Hashtbl.mem owner id)
              end
          | 3 | 4 -> (
              match pick v with
              | None -> true
              | Some (ep, id, token) ->
                  let rc =
                    if tag = 3 then F.soft_kill_h t ep else F.hard_kill_h t ep
                  in
                  if live id token then begin
                    kill_model id;
                    (* an idle kill drains immediately: slot freed, old
                       generation retired *)
                    rc = Ipc_intf.Errc.ok
                    && F.lifecycle t ~ep:id = None
                    && F.in_flight_h t ep = 0
                  end
                  else rc = Ipc_intf.Errc.no_entry)
          | 5 -> (
              match pick v with
              | None -> true
              | Some (ep, id, token) ->
                  let rc = F.exchange_h t ep (behavior v) in
                  if live id token then begin
                    Hashtbl.replace stamp id v;
                    rc = Ipc_intf.Errc.ok
                  end
                  else rc = Ipc_intf.Errc.no_entry)
          | _ ->
              (* invariants probe: every model-live ID is Active and every
                 model-free ID reads as unbound *)
              Hashtbl.fold
                (fun id _ acc ->
                  acc
                  && F.lifecycle t ~ep:id = Some Ipc_intf.Lifecycle.Active
                  && F.in_flight t ~ep:id = 0)
                owner true
              && List.for_all (fun id -> F.lifecycle t ~ep:id = None) !free
              && F.registered t = Hashtbl.length owner)
        ops)

(* --- batch hold vs lifecycle model ---------------------------------------- *)

(* The amortized acceptance check (Fastcall.Batch): one striped-counter
   reservation stands for a whole batch, and per-call admission is a
   generation-stamp compare.  The property that makes the amortization
   sound: once a kill is observed (the kill call returned), no later
   batch call may reach the old handler — the stamp compare must fail
   and acceptance re-run, landing in the per-call error taxonomy.

   The model mirrors prop_slot_lifecycle's table (owner/stamp/free/mint)
   plus the hold itself: which slot it pins, and — when the pinned
   tenant was killed under the hold — the dead tenant's token.  A killed
   held slot must *not* drain to the free list until the hold retires
   (that is the staleness window, one batch at most), and must drain
   exactly then. *)
let prop_batch_hold_lifecycle =
  QCheck.Test.make ~name:"batch hold: never accepts after kill observed"
    ~count:200
    QCheck.(small_list (pair (int_bound 5) (int_bound 1000)))
    (fun ops ->
      let module F = Runtime.Fastcall in
      let t = F.create () in
      let hold = F.Batch.hold () in
      let owner = Hashtbl.create 16 in
      let stamp = Hashtbl.create 16 in
      let free = ref [] in
      let minted = ref 0 in
      let next_token = ref 0 in
      let handles = ref [] in
      (* hold model: pinned slot id (-1 none); [dead] is the pinned
         tenant's token once a kill landed under the hold *)
      let held = ref (-1) in
      let dead = ref None in
      let retire_model () =
        if !held >= 0 && !dead <> None then free := !held :: !free;
        held := -1;
        dead := None
      in
      let pick v =
        match !handles with
        | [] -> None
        | hs -> Some (List.nth hs (v mod List.length hs))
      in
      let live id token = Hashtbl.find_opt owner id = Some token in
      let behavior v : F.handler = fun _ctx args -> args.(0) <- v in
      List.for_all
        (fun (tag, v) ->
          match tag with
          | 0 ->
              (* register: a slot pinned by a stale hold must not be
                 reusable yet — it is not on the model free list *)
              let ep = F.register_ep t (behavior v) in
              let id = F.ep_id ep in
              let want =
                match !free with
                | top :: rest ->
                    free := rest;
                    top
                | [] ->
                    let i = !minted in
                    incr minted;
                    i
              in
              let token = !next_token in
              incr next_token;
              Hashtbl.replace owner id token;
              Hashtbl.replace stamp id v;
              handles := (ep, id, token) :: !handles;
              id = want
          | 1 ->
              (* the amortized call itself, raw slot id *)
              if !minted = 0 then true
              else begin
                let id = v mod !minted in
                let a = Array.make F.arg_words 0 in
                match F.Batch.call t hold ~ep:id a with
                | rc ->
                    let ok =
                      Hashtbl.mem owner id
                      && rc = Ipc_intf.Errc.ok
                      && a.(0) = Hashtbl.find stamp id
                    in
                    if !held <> id then retire_model ();
                    held := id;
                    ok && F.Batch.held hold = id
                | exception F.No_entry _ ->
                    (* cold path retires the hold before re-running
                       acceptance, so a dead pinned slot drains here —
                       including when it is [id] itself *)
                    retire_model ();
                    (not (Hashtbl.mem owner id))
                    && a.(0) = 0
                    && F.Batch.held hold = -1
              end
          | 2 | 3 -> (
              match pick v with
              | None -> true
              | Some (ep, id, token) ->
                  let rc =
                    if tag = 2 then F.soft_kill_h t ep else F.hard_kill_h t ep
                  in
                  if live id token then begin
                    Hashtbl.remove owner id;
                    Hashtbl.remove stamp id;
                    if !held = id then begin
                      (* killed under the hold: the reservation keeps
                         the slot draining (not freed) — the staleness
                         window in the flesh *)
                      dead := Some token;
                      rc = Ipc_intf.Errc.ok
                      && F.lifecycle t ~ep:id
                         = Some
                             (if tag = 2 then Ipc_intf.Lifecycle.Soft_killed
                              else Ipc_intf.Lifecycle.Hard_killed)
                      && F.in_flight t ~ep:id = 1
                    end
                    else begin
                      (* nothing in flight: drains immediately *)
                      free := id :: !free;
                      rc = Ipc_intf.Errc.ok && F.lifecycle t ~ep:id = None
                    end
                  end
                  else if !held = id && !dead = Some token then
                    (* same tenant, still draining under the hold *)
                    rc = Ipc_intf.Errc.killed
                  else rc = Ipc_intf.Errc.no_entry)
          | 4 ->
              (* explicit retire: a dead pinned slot drains now *)
              let was = !held and was_dead = !dead <> None in
              F.Batch.retire t hold;
              retire_model ();
              F.Batch.held hold = -1
              && ((not was_dead) || F.lifecycle t ~ep:was = None)
          | _ -> (
              match pick v with
              | None -> true
              | Some (ep, id, token) ->
                  let rc = F.exchange_h t ep (behavior v) in
                  if live id token then begin
                    (* swap without moving the state word: a warm hold
                       must run the *new* handler on its next call,
                       which tag 1 checks via the stamp table *)
                    Hashtbl.replace stamp id v;
                    rc = Ipc_intf.Errc.ok
                  end
                  else if !held = id && !dead = Some token then
                    rc = Ipc_intf.Errc.killed
                  else rc = Ipc_intf.Errc.no_entry))
        ops)

(* --- Backoff vs closed-form doubling -------------------------------------- *)

(* Drive a [Backoff.t] through a generated schedule of [once]/[reset]
   steps (true = once, false = reset) and check the observable [spun]
   trace against the doubling law, purely from the generated
   parameters:

     - each pause delta is between [min_spin] and [max_spin] (cap never
       exceeded, even when doubling overshoots it);
     - deltas are monotone non-decreasing between resets (exponential
       climb saturates, never dips);
     - the whole trace is a pure function of the inputs — replaying the
       same schedule on a fresh instance reproduces [spun] exactly, so
       a QCheck seed pins the full behavior deterministically. *)
let backoff_arb =
  QCheck.(
    triple (1 -- 64) (0 -- 8) (list_of_size Gen.(0 -- 40) bool))

let prop_backoff_laws =
  QCheck.Test.make ~name:"backoff: capped, monotone, replayable" ~count:300
    backoff_arb (fun (min_spin, extra_doublings, steps) ->
      (* max_spin somewhere on the doubling ladder or just off it, so the
         saturation edge is exercised. *)
      let max_spin = (min_spin lsl extra_doublings) + (min_spin / 2) in
      let run () =
        let b = Runtime.Backoff.create ~min_spin ~max_spin () in
        let trace = ref [] in
        let last = ref 0 in
        let prev_delta = ref 0 in
        let ok = ref true in
        List.iter
          (fun step ->
            if step then begin
              Runtime.Backoff.once b;
              let s = Runtime.Backoff.spun b in
              let delta = s - !last in
              if delta < min_spin || delta > max_spin then ok := false;
              if delta < !prev_delta then ok := false;
              prev_delta := delta;
              last := s
            end
            else begin
              Runtime.Backoff.reset b;
              if Runtime.Backoff.spun b <> 0 then ok := false;
              last := 0;
              prev_delta := 0
            end;
            trace := Runtime.Backoff.spun b :: !trace)
          steps;
        (!ok, !trace)
      in
      let ok1, trace1 = run () in
      let ok2, trace2 = run () in
      ok1 && ok2 && trace1 = trace2)

let prop_backoff_with_retry =
  QCheck.Test.make ~name:"with_retry: budget honoured, verdict passed through"
    ~count:200
    QCheck.(pair (1 -- 8) (0 -- 12))
    (fun (attempts, succeed_after) ->
      let calls = ref 0 in
      let rc =
        Runtime.Backoff.with_retry ~attempts ~min_spin:1 ~max_spin:4 (fun () ->
            incr calls;
            if !calls > succeed_after then Ipc_intf.Errc.ok
            else Ipc_intf.Errc.retry)
      in
      if succeed_after < attempts then
        rc = Ipc_intf.Errc.ok && !calls = succeed_after + 1
      else rc = Ipc_intf.Errc.retry && !calls = attempts)

let suites =
  [
    ( "runtime.models",
      [
        qcheck prop_treiber_vs_list;
        qcheck prop_mpsc_vs_queue;
        qcheck prop_spsc_vs_bounded_queue;
        qcheck prop_striped_vs_int;
        qcheck prop_slab_serial_reuse;
        qcheck prop_slab_abandon_reclaim;
        qcheck prop_slot_lifecycle;
        qcheck prop_batch_hold_lifecycle;
        qcheck prop_backoff_laws;
        qcheck prop_backoff_with_retry;
      ] );
  ]
