(* The fault-injection harness and the kernel invariant checker.

   Three layers of assurance:

   1. every named survivable fault plan runs with zero invariant
      violations — resources are conserved through kills, exhaustion,
      storms and perturbation, and the fast path stays lock-free;
   2. the checker is itself checked: the planted [Foreign_cd_leak] bug
      must be detected, and a random failing scenario must shrink to the
      minimal reproducing plan (just the leak), whose trace is printed;
   3. fault runs are deterministic: same plan, byte-identical digest. *)

let qcheck = QCheck_alcotest.to_alcotest

let run_plan ?(cpus = 2) plan = Faultsim.Harness.run ~cpus plan

let check_clean name report =
  if not (Faultsim.Harness.ok report) then begin
    Fmt.epr "%a" Faultsim.Harness.pp_report report;
    Alcotest.failf "%s: %d invariant violation(s)" name
      (List.length report.Faultsim.Harness.violations)
  end

(* --- survivable plans hold all invariants ------------------------------- *)

let survivable_case name =
  Alcotest.test_case name `Quick (fun () ->
      let plan =
        match Faultsim.Fault.of_name name ~cpus:2 with
        | Some p -> p
        | None -> Alcotest.failf "unknown plan %s" name
      in
      let r = run_plan plan in
      check_clean name r;
      Alcotest.(check bool) "checker actually ran" true
        (r.Faultsim.Harness.checks > 0);
      Alcotest.(check bool) "workload completed" true
        (r.Faultsim.Harness.calls_ok > 0))

let survivable_names =
  List.filter (fun n -> n <> "leak") Faultsim.Fault.names

(* --- specific fault behaviours ------------------------------------------ *)

let test_worker_kill_aborts_conserve () =
  let r = run_plan (Faultsim.Fault.worker_kill ~cpus:2) in
  check_clean "worker-kill" r;
  Alcotest.(check bool) "kills actually aborted calls" true
    (r.Faultsim.Harness.aborted_calls > 0);
  Alcotest.(check int) "clients saw every abort as ERR_KILLED"
    r.Faultsim.Harness.aborted_calls r.Faultsim.Harness.calls_killed

let test_frank_fail_rejects_then_recovers () =
  let r = run_plan (Faultsim.Fault.frank_stress ~cpus:2) in
  check_clean "frank-stress" r;
  Alcotest.(check bool) "slow path was made to fail" true
    (r.Faultsim.Harness.resource_failures > 0);
  Alcotest.(check bool) "clients saw ERR_NO_RESOURCES" true
    (r.Faultsim.Harness.calls_rejected > 0);
  (* Recovery: rejections are transient — the rest of the workload
     completes normally. *)
  Alcotest.(check int) "every other call completed"
    r.Faultsim.Harness.calls_attempted
    (r.Faultsim.Harness.calls_ok + r.Faultsim.Harness.calls_rejected)

let test_exhaustion_forces_frank () =
  let baseline = run_plan (Faultsim.Fault.no_faults) in
  let r = run_plan (Faultsim.Fault.pool_exhaust ~cpus:2) in
  check_clean "pool-exhaust" r;
  Alcotest.(check bool) "exhaustion forced extra slow-path creations" true
    (r.Faultsim.Harness.frank_worker_creations
    > baseline.Faultsim.Harness.frank_worker_creations)

(* --- the checker catches the planted bug -------------------------------- *)

let test_leak_detected () =
  let r = run_plan (Faultsim.Fault.leak ~cpus:2) in
  Alcotest.(check bool) "violations reported" true
    (r.Faultsim.Harness.violations <> []);
  let all =
    String.concat "\n"
      (List.map
         (fun v -> v.Faultsim.Invariant.what)
         r.Faultsim.Harness.violations)
  in
  (* Both the ownership scan and the conservation equation must fire. *)
  let contains s sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "ownership violation detected" true
    (contains all "ownership violated");
  Alcotest.(check bool) "conservation violation detected" true
    (contains all "CD conservation violated");
  Alcotest.(check bool) "trace preserved for diagnosis" true
    (r.Faultsim.Harness.trace_tail <> [])

(* --- determinism --------------------------------------------------------- *)

let test_fault_run_deterministic () =
  List.iter
    (fun name ->
      match Faultsim.Fault.of_name name ~cpus:2 with
      | None -> ()
      | Some plan ->
          let a = Faultsim.Harness.digest (run_plan plan) in
          let b = Faultsim.Harness.digest (run_plan plan) in
          Alcotest.(check string)
            (Printf.sprintf "%s digest bit-identical" name)
            a b)
    [ "baseline"; "worker-kill"; "frank-stress"; "chaos"; "leak" ]

(* --- generated scenarios -------------------------------------------------- *)

let prop_random_scenarios_hold_invariants =
  QCheck.Test.make ~name:"random fault plans hold all invariants" ~count:25
    (Faultsim.Scenario.arbitrary ~max_us:600 ~cpus:2 ())
    (fun plan ->
      let r = run_plan plan in
      if not (Faultsim.Harness.ok r) then
        QCheck.Test.fail_reportf "%a" Faultsim.Harness.pp_report r
      else true)

(* A generator whose every plan embeds the planted leak: the property
   must fail, QCheck must shrink it, and the greedy minimizer must
   reduce it to the single leak event — the minimal reproducing trace. *)
let leak_event =
  { Faultsim.Fault.at_us = 60;
    kind = Faultsim.Fault.Foreign_cd_leak { src = 0; dst = 1 };
  }

let is_leak e =
  match e.Faultsim.Fault.kind with
  | Faultsim.Fault.Foreign_cd_leak _ -> true
  | _ -> false

let seeded_leak_arb =
  QCheck.map
    ~rev:(fun p ->
      { p with
        Faultsim.Fault.events =
          List.filter (fun e -> not (is_leak e)) p.Faultsim.Fault.events;
      })
    (fun p ->
      { p with
        Faultsim.Fault.events = p.Faultsim.Fault.events @ [ leak_event ];
      })
    (Faultsim.Scenario.arbitrary ~max_us:300 ~cpus:2 ())

let test_shrinking_finds_minimal_leak () =
  let prop plan = Faultsim.Harness.ok (run_plan plan) in
  let cell =
    QCheck.Test.make_cell ~count:5 ~name:"seeded leak must be caught"
      seeded_leak_arb prop
  in
  let result =
    QCheck.Test.check_cell ~rand:(Random.State.make [| 42 |]) cell
  in
  match QCheck.TestResult.get_state result with
  | QCheck.TestResult.Failed { instances = c :: _ } ->
      let shrunk = c.QCheck.TestResult.instance in
      (* QCheck already shrank via the integer encoding; the greedy
         minimizer guarantees a true local minimum. *)
      let minimal =
        Faultsim.Scenario.shrink_to_minimal (fun p -> not (prop p)) shrunk
      in
      Alcotest.(check int) "minimal plan is the leak alone" 1
        (List.length minimal.Faultsim.Fault.events);
      Alcotest.(check bool) "and it is the leak" true
        (List.for_all is_leak minimal.Faultsim.Fault.events);
      let r = run_plan minimal in
      Alcotest.(check bool) "minimal plan still reproduces" true
        (not (Faultsim.Harness.ok r));
      Fmt.pr "minimal reproducing scenario:@.%a@." Faultsim.Harness.pp_report r
  | _ -> Alcotest.fail "the seeded leak was not caught by the checker"

let suites =
  [
    ( "faultsim.plans",
      List.map survivable_case survivable_names
      @ [
          Alcotest.test_case "worker kills conserve resources" `Quick
            test_worker_kill_aborts_conserve;
          Alcotest.test_case "frank failures reject then recover" `Quick
            test_frank_fail_rejects_then_recovers;
          Alcotest.test_case "exhaustion forces the slow path" `Quick
            test_exhaustion_forces_frank;
        ] );
    ( "faultsim.checker",
      [
        Alcotest.test_case "planted leak detected" `Quick test_leak_detected;
        Alcotest.test_case "shrinks to minimal reproducing plan" `Quick
          test_shrinking_finds_minimal_leak;
      ] );
    ( "faultsim.determinism",
      [
        Alcotest.test_case "fault runs bit-identical" `Quick
          test_fault_run_deterministic;
      ] );
    ("faultsim.generated", [ qcheck prop_random_scenarios_hold_invariants ]);
  ]
