(* Tests for the workload drivers and samplers. *)

let qcheck = QCheck_alcotest.to_alcotest

let test_closed_loop_counts () =
  let kern = Kernel.create ~cpus:2 () in
  let counters =
    Workload.Driver.run kern
      ~specs:(Workload.Driver.one_per_cpu ~n:2 ~name_prefix:"c" ())
      ~horizon:(Sim.Time.ms 1) ~seed:1
      ~body:(fun ~client ~iteration:_ ->
        let kc = Kernel.kcpu kern (Kernel.Process.cpu_index client) in
        Machine.Cpu.instr (Kernel.Kcpu.cpu kc) 1667;
        Kernel.Kcpu.sync kc)
  in
  Kernel.run kern;
  (* Each iteration costs ~100 us; 1 ms horizon; 2 clients -> ~20 total. *)
  let total = Workload.Driver.total counters in
  Alcotest.(check bool)
    (Printf.sprintf "approx 20 iterations (got %d)" total)
    true
    (total >= 18 && total <= 22);
  let tput = Workload.Driver.throughput_per_sec counters in
  Alcotest.(check bool)
    (Printf.sprintf "throughput ~20k/s (got %.0f)" tput)
    true
    (tput > 17_000.0 && tput < 23_000.0)

let run_one_client kern ~think_mean_us =
  let body ~client ~iteration:_ =
    let kc = Kernel.kcpu kern (Kernel.Process.cpu_index client) in
    (* ~10 us of work per iteration *)
    Machine.Cpu.instr (Kernel.Kcpu.cpu kc) 167;
    Kernel.Kcpu.sync kc
  in
  let counters =
    Workload.Driver.run kern
      ~specs:[ { Workload.Driver.cpu = 0; name = "c"; think_mean_us; identity = None } ]
      ~horizon:(Sim.Time.ms 1) ~seed:1 ~body
  in
  Kernel.run kern;
  Workload.Driver.total counters

let test_open_loop_thinks () =
  let closed = run_one_client (Kernel.create ~cpus:1 ()) ~think_mean_us:None in
  let open_ =
    run_one_client (Kernel.create ~cpus:1 ()) ~think_mean_us:(Some 50.0)
  in
  Alcotest.(check bool)
    (Printf.sprintf "think time throttles (%d open vs %d closed)" open_ closed)
    true
    (open_ * 2 < closed && closed >= 90)

let test_prepare_hook_runs_per_client () =
  let kern = Kernel.create ~cpus:3 () in
  let prepared = ref [] in
  let counters =
    Workload.Driver.run kern
      ~specs:(Workload.Driver.one_per_cpu ~n:3 ~name_prefix:"c" ())
      ~horizon:(Sim.Time.us 10) ~seed:1
      ~prepare:(fun ~program ~index ->
        prepared := (index, Kernel.Program.name program) :: !prepared)
      ~body:(fun ~client:_ ~iteration:_ -> ())
  in
  ignore counters;
  Alcotest.(check int) "one prepare per client" 3 (List.length !prepared);
  Alcotest.(check bool) "names distinct" true
    (List.mem (0, "c-0") !prepared && List.mem (2, "c-2") !prepared)

(* --- zipf ----------------------------------------------------------------- *)

let test_zipf_uniform_theta0 () =
  let rng = Sim.Rng.create ~seed:3 in
  let z = Workload.Zipf.create ~n:4 ~theta:0.0 ~rng in
  let counts = Array.make 4 0 in
  for _ = 1 to 8000 do
    let i = Workload.Zipf.sample z in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d near uniform (%d)" i c)
        true
        (c > 1700 && c < 2300))
    counts

let test_zipf_skew () =
  let rng = Sim.Rng.create ~seed:3 in
  let z = Workload.Zipf.create ~n:16 ~theta:1.2 ~rng in
  let counts = Array.make 16 0 in
  for _ = 1 to 8000 do
    let i = Workload.Zipf.sample z in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check bool) "head dominates tail" true (counts.(0) > 5 * counts.(15));
  Alcotest.(check bool) "rank order head >= 2nd" true (counts.(0) >= counts.(1))

let prop_zipf_in_range =
  QCheck.Test.make ~name:"zipf samples within [0,n)" ~count:100
    QCheck.(pair (1 -- 64) (0 -- 3))
    (fun (n, theta10) ->
      let rng = Sim.Rng.create ~seed:(n + theta10) in
      let z = Workload.Zipf.create ~n ~theta:(float_of_int theta10 /. 2.0) ~rng in
      let ok = ref true in
      for _ = 1 to 50 do
        let s = Workload.Zipf.sample z in
        if s < 0 || s >= n then ok := false
      done;
      !ok)

let prop_zipf_sample_u_total =
  QCheck.Test.make ~name:"zipf sample_u total (u=1, out-of-range clamp)"
    ~count:100
    QCheck.(pair (1 -- 64) (0 -- 4))
    (fun (n, t2) ->
      let rng = Sim.Rng.create ~seed:(n + t2) in
      let z = Workload.Zipf.create ~n ~theta:(float_of_int t2 /. 2.0) ~rng in
      let ok u =
        let i = Workload.Zipf.sample_u z u in
        i >= 0 && i < n
      in
      ok 1.0 && ok 0.0 && ok (-0.5) && ok 1.5 && ok 0.999999)

let test_zipf_theta0_chi_square () =
  let rng = Sim.Rng.create ~seed:9 in
  let k = 8 in
  let z = Workload.Zipf.create ~n:k ~theta:0.0 ~rng in
  let n = 16_000 in
  let counts = Array.make k 0 in
  for _ = 1 to n do
    let i = Workload.Zipf.sample z in
    counts.(i) <- counts.(i) + 1
  done;
  let expect = float_of_int n /. float_of_int k in
  let chi2 =
    Array.fold_left
      (fun acc c ->
        let d = float_of_int c -. expect in
        acc +. ((d *. d) /. expect))
      0.0 counts
  in
  (* df = 7; critical value at p = 0.001 is 24.32. *)
  Alcotest.(check bool)
    (Printf.sprintf "chi^2 %.2f below 24.32" chi2)
    true (chi2 < 24.32)

(* --- hist ------------------------------------------------------------------ *)

let mk_hist vs =
  let h = Workload.Hist.create () in
  List.iter (Workload.Hist.record h) vs;
  h

let prop_hist_quantile_oracle =
  QCheck.Test.make ~name:"hist quantile within rel-error of sorted oracle"
    ~count:300
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 300) (int_range 0 2_000_000))
        (int_range 0 1000))
    (fun (vs, qi) ->
      let q = float_of_int qi /. 1000.0 in
      let arr = Array.of_list vs in
      Array.sort compare arr;
      let n = Array.length arr in
      let rank =
        max 1 (int_of_float (Float.ceil (q *. float_of_int n)))
      in
      let x = arr.(rank - 1) in
      let r = Workload.Hist.quantile (mk_hist vs) q in
      r >= x
      && float_of_int r
         <= float_of_int x *. (1.0 +. Workload.Hist.rel_error_bound))

let hist_state_equal a b =
  Workload.Hist.bucket_counts a = Workload.Hist.bucket_counts b
  && Workload.Hist.count a = Workload.Hist.count b
  && Workload.Hist.min_value a = Workload.Hist.min_value b
  && Workload.Hist.max_value a = Workload.Hist.max_value b
  && Workload.Hist.mean a = Workload.Hist.mean b

let prop_hist_merge_trees =
  QCheck.Test.make
    ~name:"hist merge assoc/comm/count-conserving over merge trees" ~count:150
    QCheck.(
      list_of_size
        Gen.(0 -- 6)
        (list_of_size Gen.(0 -- 40) (int_range 0 2_000_000)))
    (fun groups ->
      let reference = mk_hist (List.concat groups) in
      let fold_left_merge gs =
        let acc = Workload.Hist.create () in
        List.iter
          (fun vs -> Workload.Hist.merge_into ~dst:acc ~src:(mk_hist vs))
          gs;
        acc
      in
      (* An unbalanced tree: merge head pairs, re-queue the result. *)
      let rec tree = function
        | [] -> Workload.Hist.create ()
        | [ h ] -> h
        | h1 :: h2 :: rest ->
            Workload.Hist.merge_into ~dst:h1 ~src:h2;
            tree (rest @ [ h1 ])
      in
      hist_state_equal reference (fold_left_merge groups)
      && hist_state_equal reference (fold_left_merge (List.rev groups))
      && hist_state_equal reference (tree (List.map mk_hist groups))
      && Workload.Hist.count reference = List.length (List.concat groups))

let prop_hist_minmax_mean_exact =
  QCheck.Test.make ~name:"hist min/max/mean exact" ~count:200
    QCheck.(list_of_size Gen.(1 -- 100) (int_range 0 3_000_000))
    (fun vs ->
      let h = mk_hist vs in
      Workload.Hist.min_value h = List.fold_left min max_int vs
      && Workload.Hist.max_value h = List.fold_left max 0 vs
      && Workload.Hist.mean h
         = float_of_int (List.fold_left ( + ) 0 vs)
           /. float_of_int (List.length vs))

(* --- samplers -------------------------------------------------------------- *)

let sampler_of_index = function
  | 0 -> Workload.Sampler.Constant 7.5
  | 1 -> Workload.Sampler.Exponential { mean = 120.0 }
  | 2 -> Workload.Sampler.Lognormal { mu = 3.0; sigma = 0.8 }
  | _ -> Workload.Sampler.Pareto { xm = 64.0; alpha = 1.3; cap = 4096.0 }

let prop_sampler_replays_from_seed =
  QCheck.Test.make ~name:"sampler stream replays bit-for-bit from seed"
    ~count:60
    QCheck.(pair (int_range 0 100_000) (int_range 0 3))
    (fun (seed, which) ->
      let s = sampler_of_index which in
      let stream () =
        let rng = Sim.Rng.create ~seed in
        List.init 100 (fun _ -> Workload.Sampler.draw s rng)
      in
      stream () = stream ())

let test_sampler_empirical_means () =
  let n = 100_000 in
  let check_one s ~tol =
    let rng = Sim.Rng.create ~seed:11 in
    let sum = ref 0.0 in
    for _ = 1 to n do
      sum := !sum +. Workload.Sampler.draw s rng
    done;
    let emp = !sum /. float_of_int n in
    let ana = Workload.Sampler.mean s in
    Alcotest.(check bool)
      (Printf.sprintf "%s empirical mean %.2f vs analytic %.2f"
         (Workload.Sampler.name s) emp ana)
      true
      (Float.abs (emp -. ana) /. ana < tol)
  in
  check_one (Workload.Sampler.Constant 42.0) ~tol:1e-9;
  check_one (Workload.Sampler.Exponential { mean = 100.0 }) ~tol:0.02;
  check_one (Workload.Sampler.Lognormal { mu = 3.0; sigma = 1.0 }) ~tol:0.05;
  check_one
    (Workload.Sampler.Pareto { xm = 64.0; alpha = 1.3; cap = 4096.0 })
    ~tol:0.03

let test_pareto_tail_mass () =
  (* Bounded-Pareto tail: P(X > x) has a closed form; the empirical
     exceedance fraction at x = 1024 must sit within 20% of it. *)
  let xm = 64.0 and alpha = 1.3 and cap = 4096.0 in
  let s = Workload.Sampler.Pareto { xm; alpha; cap } in
  let x = 1024.0 in
  let analytic =
    ((xm ** alpha) *. ((x ** -.alpha) -. (cap ** -.alpha)))
    /. (1.0 -. ((xm /. cap) ** alpha))
  in
  let n = 100_000 in
  let rng = Sim.Rng.create ~seed:13 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Workload.Sampler.draw s rng > x then incr hits
  done;
  let emp = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "tail mass %.4f vs analytic %.4f" emp analytic)
    true
    (Float.abs (emp -. analytic) /. analytic < 0.2)

(* --- open loop vs closed loop ---------------------------------------------- *)

(* The defining property of an open-loop generator: the arrival schedule
   (and hence the arrival count) is a pure function of seed, sampler and
   horizon — it cannot depend on how slow the served system is.  A
   closed loop, by contrast, throttles: each client only issues the next
   request after the previous one completes. *)

let open_loop_counts ~work_instr =
  let kern = Kernel.create ~cpus:2 () in
  let counters =
    Workload.Open_loop.run kern ~lanes:2 ~clients:100 ~client_theta:0.0
      ~horizon:(Sim.Time.ms 2) ~seed:5
      ~interarrival:(Workload.Sampler.Exponential { mean = 50.0 })
      ~body:(fun ~self _arrival ->
        let kc = Kernel.kcpu kern (Kernel.Process.cpu_index self) in
        Machine.Cpu.instr (Kernel.Kcpu.cpu kc) work_instr;
        Kernel.Kcpu.sync kc;
        0)
  in
  Kernel.run kern;
  ( Workload.Open_loop.total_arrivals counters,
    Workload.Open_loop.total_completions counters )

let closed_loop_iters ~work_instr =
  let kern = Kernel.create ~cpus:1 () in
  let counters =
    Workload.Driver.run kern
      ~specs:
        [
          {
            Workload.Driver.cpu = 0;
            name = "c";
            think_mean_us = Some 50.0;
            identity = None;
          };
        ]
      ~horizon:(Sim.Time.ms 2) ~seed:5
      ~body:(fun ~client ~iteration:_ ->
        let kc = Kernel.kcpu kern (Kernel.Process.cpu_index client) in
        Machine.Cpu.instr (Kernel.Kcpu.cpu kc) work_instr;
        Kernel.Kcpu.sync kc)
  in
  Kernel.run kern;
  Workload.Driver.total counters

let test_open_loop_schedule_independent () =
  (* ~6 us vs ~300 us of service per arrival (the slow case overloads a
     lane whose mean gap is 50 us). *)
  let fast_a, fast_c = open_loop_counts ~work_instr:100 in
  let slow_a, slow_c = open_loop_counts ~work_instr:5000 in
  Alcotest.(check int) "arrival count independent of service time" fast_a
    slow_a;
  Alcotest.(check int) "fast: every arrival completes" fast_a fast_c;
  Alcotest.(check int) "slow: backlog drained, nothing skipped" slow_a slow_c;
  Alcotest.(check bool) "schedule is non-trivial" true (fast_a > 20);
  let closed_fast = closed_loop_iters ~work_instr:100 in
  let closed_slow = closed_loop_iters ~work_instr:5000 in
  Alcotest.(check bool)
    (Printf.sprintf "closed loop throttles with service time (%d vs %d)"
       closed_fast closed_slow)
    true
    (closed_slow < closed_fast)

let suites =
  [
    ( "workload.driver",
      [
        Alcotest.test_case "closed loop counts" `Quick test_closed_loop_counts;
        Alcotest.test_case "open loop thinks" `Quick test_open_loop_thinks;
        Alcotest.test_case "prepare hook" `Quick test_prepare_hook_runs_per_client;
      ] );
    ( "workload.open_loop",
      [
        Alcotest.test_case "schedule independent of service time" `Quick
          test_open_loop_schedule_independent;
      ] );
    ( "workload.zipf",
      [
        Alcotest.test_case "theta 0 uniform" `Quick test_zipf_uniform_theta0;
        Alcotest.test_case "theta 0 chi-square" `Quick
          test_zipf_theta0_chi_square;
        Alcotest.test_case "skew" `Quick test_zipf_skew;
        qcheck prop_zipf_in_range;
        qcheck prop_zipf_sample_u_total;
      ] );
    ( "workload.hist",
      [
        qcheck prop_hist_quantile_oracle;
        qcheck prop_hist_merge_trees;
        qcheck prop_hist_minmax_mean_exact;
      ] );
    ( "workload.sampler",
      [
        qcheck prop_sampler_replays_from_seed;
        Alcotest.test_case "empirical means" `Quick test_sampler_empirical_means;
        Alcotest.test_case "pareto tail mass" `Quick test_pareto_tail_mass;
      ] );
  ]
