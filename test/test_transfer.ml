(* Tests for regions (grants) and the CopyServer. *)

let qcheck = QCheck_alcotest.to_alcotest

let spawn_client kern ~cpu ~name body =
  let program = Kernel.new_program kern ~name in
  let space = Kernel.new_user_space kern ~name ~node:cpu in
  Kernel.spawn kern ~cpu ~name ~kind:Kernel.Process.Client ~program ~space body

(* --- regions ------------------------------------------------------------ *)

let test_region_grant_check () =
  let r = Transfer.Region.create () in
  let _id =
    Transfer.Region.grant r ~owner:1 ~grantee:2 ~base:0x1000 ~len:0x100
      ~access:Transfer.Region.Read_only
  in
  Alcotest.(check bool) "read inside ok" true
    (Transfer.Region.check r ~owner:1 ~grantee:2 ~base:0x1000 ~len:0x100 ~dir:`Read);
  Alcotest.(check bool) "subrange ok" true
    (Transfer.Region.check r ~owner:1 ~grantee:2 ~base:0x1040 ~len:0x20 ~dir:`Read);
  Alcotest.(check bool) "write denied on read-only" false
    (Transfer.Region.check r ~owner:1 ~grantee:2 ~base:0x1000 ~len:0x10 ~dir:`Write);
  Alcotest.(check bool) "beyond end denied" false
    (Transfer.Region.check r ~owner:1 ~grantee:2 ~base:0x10F0 ~len:0x20 ~dir:`Read);
  Alcotest.(check bool) "wrong grantee denied" false
    (Transfer.Region.check r ~owner:1 ~grantee:3 ~base:0x1000 ~len:0x10 ~dir:`Read)

let test_region_revoke () =
  let r = Transfer.Region.create () in
  let id =
    Transfer.Region.grant r ~owner:1 ~grantee:2 ~base:0 ~len:64
      ~access:Transfer.Region.Read_write
  in
  Alcotest.(check bool) "revoke succeeds" true (Transfer.Region.revoke r ~grant_id:id);
  Alcotest.(check bool) "revoke twice fails" false
    (Transfer.Region.revoke r ~grant_id:id);
  Alcotest.(check bool) "check after revoke" false
    (Transfer.Region.check r ~owner:1 ~grantee:2 ~base:0 ~len:8 ~dir:`Read);
  Alcotest.(check int) "revocations" 1 (Transfer.Region.revocations r)

let prop_region_subranges_allowed =
  QCheck.Test.make ~name:"any subrange of a grant checks out" ~count:200
    QCheck.(triple (0 -- 1000) (1 -- 512) (1 -- 512))
    (fun (base, len, sub) ->
      let r = Transfer.Region.create () in
      ignore
        (Transfer.Region.grant r ~owner:1 ~grantee:2 ~base ~len:(len + sub)
           ~access:Transfer.Region.Read_write);
      Transfer.Region.check r ~owner:1 ~grantee:2 ~base:(base + sub) ~len
        ~dir:`Write)

let prop_region_outside_denied =
  QCheck.Test.make ~name:"ranges straddling the end are denied" ~count:200
    QCheck.(pair (0 -- 1000) (1 -- 512))
    (fun (base, len) ->
      let r = Transfer.Region.create () in
      ignore
        (Transfer.Region.grant r ~owner:1 ~grantee:2 ~base ~len
           ~access:Transfer.Region.Read_write);
      not
        (Transfer.Region.check r ~owner:1 ~grantee:2 ~base:(base + 1) ~len
           ~dir:`Read))

(* --- copy server --------------------------------------------------------- *)

let copy_setup () =
  let kern = Kernel.create ~cpus:1 () in
  let ppc = Ppc.create kern in
  let cs = Transfer.Copy_server.install ppc in
  (kern, ppc, cs)

let test_copy_requires_grant () =
  let kern, ppc, cs = copy_setup () in
  let denied_rc = ref 0 and ok_rc = ref 0 in
  let peer_prog = Kernel.new_program kern ~name:"peer" in
  let src = Kernel.alloc kern ~bytes:256 ~node:0 in
  let dst = Kernel.alloc kern ~bytes:256 ~node:0 in
  ignore
    (spawn_client kern ~cpu:0 ~name:"mover" (fun self ->
         denied_rc :=
           Transfer.Copy_server.copy_to cs ppc ~client:self
             ~peer:(Kernel.Program.id peer_prog) ~src ~dst ~len:128;
         Transfer.Region.grant
           (Transfer.Copy_server.regions cs)
           ~owner:(Kernel.Program.id peer_prog)
           ~grantee:(Kernel.Program.id (Kernel.Process.program self))
           ~base:dst ~len:256 ~access:Transfer.Region.Write_only
         |> ignore;
         ok_rc :=
           Transfer.Copy_server.copy_to cs ppc ~client:self
             ~peer:(Kernel.Program.id peer_prog) ~src ~dst ~len:128));
  Kernel.run kern;
  Alcotest.(check int) "without grant denied" Ppc.Reg_args.err_denied !denied_rc;
  Alcotest.(check int) "with grant ok" Ppc.Reg_args.ok !ok_rc;
  Alcotest.(check int) "bytes accounted" 128 (Transfer.Copy_server.bytes_copied cs);
  Alcotest.(check int) "denial accounted" 1 (Transfer.Copy_server.denied cs)

let test_copy_from_direction () =
  let kern, ppc, cs = copy_setup () in
  let rc = ref 0 in
  let peer_prog = Kernel.new_program kern ~name:"peer" in
  let src = Kernel.alloc kern ~bytes:256 ~node:0 in
  let dst = Kernel.alloc kern ~bytes:256 ~node:0 in
  ignore
    (spawn_client kern ~cpu:0 ~name:"mover" (fun self ->
         Transfer.Region.grant
           (Transfer.Copy_server.regions cs)
           ~owner:(Kernel.Program.id peer_prog)
           ~grantee:(Kernel.Program.id (Kernel.Process.program self))
           ~base:src ~len:256 ~access:Transfer.Region.Read_only
         |> ignore;
         rc :=
           Transfer.Copy_server.copy_from cs ppc ~client:self
             ~peer:(Kernel.Program.id peer_prog) ~src ~dst ~len:64));
  Kernel.run kern;
  Alcotest.(check int) "copy_from with read grant" Ppc.Reg_args.ok !rc

let test_copy_size_limits () =
  let kern, ppc, cs = copy_setup () in
  let zero_rc = ref 0 and huge_rc = ref 0 in
  ignore
    (spawn_client kern ~cpu:0 ~name:"mover" (fun self ->
         zero_rc :=
           Transfer.Copy_server.copy_to cs ppc ~client:self ~peer:1 ~src:0 ~dst:0
             ~len:0;
         huge_rc :=
           Transfer.Copy_server.copy_to cs ppc ~client:self ~peer:1 ~src:0 ~dst:0
             ~len:(Transfer.Copy_server.max_bytes_per_call + 1)));
  Kernel.run kern;
  Alcotest.(check int) "zero length rejected" Ppc.Reg_args.err_bad_request !zero_rc;
  Alcotest.(check int) "oversize rejected with distinct code"
    Ppc.Reg_args.err_too_big !huge_rc

let test_copy_charges_memory_traffic () =
  let kern, ppc, cs = copy_setup () in
  let peer_prog = Kernel.new_program kern ~name:"peer" in
  let src = Kernel.alloc kern ~bytes:4096 ~node:0 in
  let dst = Kernel.alloc kern ~bytes:4096 ~node:0 in
  let cpu = Machine.cpu (Kernel.machine kern) 0 in
  let small = ref 0 and large = ref 0 in
  ignore
    (spawn_client kern ~cpu:0 ~name:"mover" (fun self ->
         Transfer.Region.grant
           (Transfer.Copy_server.regions cs)
           ~owner:(Kernel.Program.id peer_prog)
           ~grantee:(Kernel.Program.id (Kernel.Process.program self))
           ~base:dst ~len:4096 ~access:Transfer.Region.Write_only
         |> ignore;
         let c0 = Machine.Cpu.cycles cpu in
         ignore
           (Transfer.Copy_server.copy_to cs ppc ~client:self
              ~peer:(Kernel.Program.id peer_prog) ~src ~dst ~len:64);
         small := Machine.Cpu.cycles cpu - c0;
         let c1 = Machine.Cpu.cycles cpu in
         ignore
           (Transfer.Copy_server.copy_to cs ppc ~client:self
              ~peer:(Kernel.Program.id peer_prog) ~src ~dst ~len:2048);
         large := Machine.Cpu.cycles cpu - c1));
  Kernel.run kern;
  Alcotest.(check bool)
    (Printf.sprintf "larger copies cost more (%d vs %d)" !large !small)
    true
    (!large > !small + 500)

let suites =
  [
    ( "transfer.region",
      [
        Alcotest.test_case "grant + check" `Quick test_region_grant_check;
        Alcotest.test_case "revoke" `Quick test_region_revoke;
        qcheck prop_region_subranges_allowed;
        qcheck prop_region_outside_denied;
      ] );
    ( "transfer.copy_server",
      [
        Alcotest.test_case "grants enforced" `Quick test_copy_requires_grant;
        Alcotest.test_case "copy_from direction" `Quick test_copy_from_direction;
        Alcotest.test_case "size limits" `Quick test_copy_size_limits;
        Alcotest.test_case "memory traffic scales" `Quick
          test_copy_charges_memory_traffic;
      ] );
  ]

let test_copy_from_denied_without_grant () =
  let kern, ppc, cs = copy_setup () in
  let rc = ref 0 in
  ignore
    (spawn_client kern ~cpu:0 ~name:"mover" (fun self ->
         rc :=
           Transfer.Copy_server.copy_from cs ppc ~client:self ~peer:42 ~src:0x1000
             ~dst:0x2000 ~len:64));
  Kernel.run kern;
  Alcotest.(check int) "pull without read grant denied" Ppc.Reg_args.err_denied
    !rc

let denial_suite =
  ( "transfer.copy_denials",
    [
      Alcotest.test_case "copy_from denied" `Quick
        test_copy_from_denied_without_grant;
    ] )

let suites = suites @ [ denial_suite ]
