(* Tests for the real-multicore runtime: lock-free queues, the fastcall
   registry, the locked baseline, and the domain pool.

   These run real OCaml 5 domains.  The container may have a single core;
   everything here is correctness, not speedup. *)

let qcheck = QCheck_alcotest.to_alcotest

(* --- MPSC queue --------------------------------------------------------- *)

let test_mpsc_fifo_single_producer () =
  let q = Runtime.Mpsc_queue.create () in
  for i = 1 to 100 do
    Runtime.Mpsc_queue.push q i
  done;
  let out = ref [] in
  let rec drain () =
    match Runtime.Mpsc_queue.pop q with
    | Some v ->
        out := v :: !out;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "fifo" (List.init 100 (fun i -> i + 1))
    (List.rev !out);
  Alcotest.(check bool) "empty after drain" true (Runtime.Mpsc_queue.is_empty q)

let prop_mpsc_roundtrip =
  QCheck.Test.make ~name:"mpsc preserves sequence" ~count:100
    QCheck.(list int)
    (fun xs ->
      let q = Runtime.Mpsc_queue.create () in
      List.iter (Runtime.Mpsc_queue.push q) xs;
      let rec drain acc =
        match Runtime.Mpsc_queue.pop q with
        | Some v -> drain (v :: acc)
        | None -> List.rev acc
      in
      drain [] = xs)

let test_mpsc_multi_producer_total () =
  let q = Runtime.Mpsc_queue.create () in
  let producers = 4 and per = 500 in
  let domains =
    List.init producers (fun p ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              Runtime.Mpsc_queue.push q ((p * per) + i)
            done))
  in
  List.iter Domain.join domains;
  let seen = Hashtbl.create 64 in
  let rec drain n =
    match Runtime.Mpsc_queue.pop q with
    | Some v ->
        Alcotest.(check bool) "no duplicates" false (Hashtbl.mem seen v);
        Hashtbl.replace seen v ();
        drain (n + 1)
    | None -> n
  in
  let n = drain 0 in
  Alcotest.(check int) "all elements arrived" (producers * per) n

(* --- SPSC ring ----------------------------------------------------------- *)

let test_spsc_capacity () =
  let r = Runtime.Spsc_ring.create ~capacity:4 in
  Alcotest.(check int) "capacity" 4 (Runtime.Spsc_ring.capacity r);
  for i = 1 to 4 do
    Alcotest.(check bool) "push fits" true (Runtime.Spsc_ring.try_push r i)
  done;
  Alcotest.(check bool) "full rejects" false (Runtime.Spsc_ring.try_push r 5);
  Alcotest.(check (option int)) "pop first" (Some 1) (Runtime.Spsc_ring.try_pop r);
  Alcotest.(check bool) "space again" true (Runtime.Spsc_ring.try_push r 5)

(* The uniform capacity contract: every capacity-taking constructor
   speaks the same [Invalid_argument] sentence (via
   [Spsc_ring.validate_capacity]), pinned verbatim so a drive-by
   rewording shows up here. *)
let capacity_message fn n =
  Printf.sprintf "%s: capacity must be a positive power of two (got %d)" fn n

let test_spsc_power_of_two_required () =
  List.iter
    (fun bad ->
      Alcotest.check_raises
        (Printf.sprintf "capacity %d rejected" bad)
        (Invalid_argument (capacity_message "Spsc_ring.create" bad))
        (fun () -> ignore (Runtime.Spsc_ring.create ~capacity:bad)))
    [ 6; 0; -1; 3; 1000 ]

let test_uniform_capacity_contract () =
  (* Raw rings and the request slab reuse the exact same validator —
     same wording, their own constructor name. *)
  Alcotest.check_raises "Raw.create capacity 0"
    (Invalid_argument (capacity_message "Spsc_ring.Raw.create" 0))
    (fun () -> ignore (Runtime.Spsc_ring.Raw.create ~capacity:0 ~dummy:0));
  Alcotest.check_raises "Request_slab.create capacity 6"
    (Invalid_argument (capacity_message "Request_slab.create" 6))
    (fun () ->
      ignore (Runtime.Request_slab.create ~capacity:6 ~arg_words:8 ()));
  Alcotest.check_raises "Request_slab.create capacity -4"
    (Invalid_argument (capacity_message "Request_slab.create" (-4)))
    (fun () ->
      ignore (Runtime.Request_slab.create ~capacity:(-4) ~arg_words:8 ()));
  (* validate_capacity itself: accepts every power of two, including 1. *)
  List.iter
    (fun ok -> Runtime.Spsc_ring.validate_capacity "t" ok)
    [ 1; 2; 4; 64; 1024 ]

let prop_spsc_wraparound =
  QCheck.Test.make ~name:"ring preserves order across wraps" ~count:100
    QCheck.(list_of_size Gen.(1 -- 200) int)
    (fun xs ->
      let r = Runtime.Spsc_ring.create ~capacity:8 in
      let out = ref [] in
      List.iter
        (fun x ->
          if not (Runtime.Spsc_ring.try_push r x) then begin
            (* Drain one to make room, recording it. *)
            (match Runtime.Spsc_ring.try_pop r with
            | Some v -> out := v :: !out
            | None -> ());
            ignore (Runtime.Spsc_ring.try_push r x)
          end)
        xs;
      let rec drain () =
        match Runtime.Spsc_ring.try_pop r with
        | Some v ->
            out := v :: !out;
            drain ()
        | None -> ()
      in
      drain ();
      List.rev !out = xs)

let test_spsc_cross_domain () =
  let r = Runtime.Spsc_ring.create ~capacity:16 in
  let n = 10_000 in
  let consumer =
    Domain.spawn (fun () ->
        let sum = ref 0 in
        for _ = 1 to n do
          sum := !sum + Runtime.Spsc_ring.pop_wait r
        done;
        !sum)
  in
  for i = 1 to n do
    Runtime.Spsc_ring.push_wait r i
  done;
  Alcotest.(check int) "sum across domains" (n * (n + 1) / 2)
    (Domain.join consumer)

(* --- fastcall ------------------------------------------------------------ *)

let adder : Runtime.Fastcall.handler =
 fun _ctx args ->
  args.(0) <- args.(0) + args.(1);
  args.(7) <- 0

let test_fastcall_local () =
  let t = Runtime.Fastcall.create () in
  let ep = Runtime.Fastcall.register t adder in
  let args = Array.make 8 0 in
  args.(0) <- 40;
  args.(1) <- 2;
  let rc = Runtime.Fastcall.call t ~ep args in
  Alcotest.(check int) "rc" 0 rc;
  Alcotest.(check int) "result in place" 42 args.(0);
  Alcotest.(check int) "local calls counted" 1 (Runtime.Fastcall.local_calls t)

let test_fastcall_unknown_ep () =
  let t = Runtime.Fastcall.create () in
  Alcotest.check_raises "unknown entry" (Runtime.Fastcall.No_entry 3) (fun () ->
      ignore (Runtime.Fastcall.call t ~ep:3 (Array.make 8 0)))

let test_fastcall_frame_reuse () =
  let t = Runtime.Fastcall.create () in
  let handler : Runtime.Fastcall.handler =
   fun ctx args ->
    ignore ctx.Runtime.Fastcall.frame.Runtime.Fastcall.scratch;
    args.(7) <- ctx.Runtime.Fastcall.frame.Runtime.Fastcall.frame_calls
  in
  let ep = Runtime.Fastcall.register t handler in
  let args = Array.make 8 0 in
  for _ = 1 to 10 do
    ignore (Runtime.Fastcall.call t ~ep args)
  done;
  (* LIFO pool: the same frame serves every sequential call. *)
  Alcotest.(check int) "frame reused 10 times" 10 args.(7)

let test_fastcall_nested_calls () =
  let t = Runtime.Fastcall.create () in
  let inner = Runtime.Fastcall.register t adder in
  let outer : Runtime.Fastcall.handler =
   fun _ctx args ->
    (* Servers calling servers: takes a second frame from the pool. *)
    let nested = Array.make 8 0 in
    nested.(0) <- args.(0);
    nested.(1) <- 1;
    ignore (Runtime.Fastcall.call t ~ep:inner nested);
    args.(0) <- nested.(0);
    args.(7) <- 0
  in
  let ep = Runtime.Fastcall.register t outer in
  let args = Array.make 8 0 in
  args.(0) <- 41;
  ignore (Runtime.Fastcall.call t ~ep args);
  Alcotest.(check int) "nested result" 42 args.(0)

let test_fastcall_cross_domain () =
  let t = Runtime.Fastcall.create () in
  let ep = Runtime.Fastcall.register t adder in
  let sd = Runtime.Fastcall.spawn_server t in
  let total = ref 0 in
  for i = 1 to 100 do
    let args = Array.make 8 0 in
    args.(0) <- i;
    args.(1) <- i;
    ignore (Runtime.Fastcall.cross_call sd ~ep args);
    total := !total + args.(0)
  done;
  Runtime.Fastcall.shutdown_server sd;
  Alcotest.(check int) "all served" 100 (Runtime.Fastcall.served sd);
  Alcotest.(check int) "sums correct" (2 * (100 * 101 / 2)) !total

(* --- locked registry ------------------------------------------------------ *)

let test_locked_registry_parity () =
  let t = Runtime.Locked_registry.create () in
  let ep =
    Runtime.Locked_registry.register t (fun _frame args ->
        args.(0) <- args.(0) * 2;
        args.(7) <- 0)
  in
  let args = Array.make 8 0 in
  args.(0) <- 21;
  let rc = Runtime.Locked_registry.call t ~ep args in
  Alcotest.(check int) "rc" 0 rc;
  Alcotest.(check int) "doubled" 42 args.(0);
  Alcotest.(check int) "calls" 1 (Runtime.Locked_registry.calls t)

let test_locked_registry_multidomain () =
  let t = Runtime.Locked_registry.create () in
  let ep =
    Runtime.Locked_registry.register t (fun _frame args -> args.(7) <- 0)
  in
  let per = 1000 in
  let domains =
    List.init 3 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per do
              ignore (Runtime.Locked_registry.call t ~ep (Array.make 8 0))
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "exact count under contention" (3 * per)
    (Runtime.Locked_registry.calls t)

(* --- domain pool ----------------------------------------------------------- *)

let test_domain_pool_affinity () =
  let pool = Runtime.Domain_pool.create ~domains:2 in
  let c0 = Atomic.make 0 and c1 = Atomic.make 0 in
  for _ = 1 to 50 do
    Runtime.Domain_pool.submit_to pool ~index:0 (fun () -> Atomic.incr c0);
    Runtime.Domain_pool.submit_to pool ~index:1 (fun () -> Atomic.incr c1)
  done;
  Runtime.Domain_pool.shutdown pool;
  Alcotest.(check int) "member 0 ran its work" 50 (Atomic.get c0);
  Alcotest.(check int) "member 1 ran its work" 50 (Atomic.get c1);
  Alcotest.(check int) "executed counters" 50
    (Runtime.Domain_pool.executed pool ~index:0);
  Alcotest.(check int) "total" 100 (Runtime.Domain_pool.total_executed pool)

let test_domain_pool_round_robin () =
  let pool = Runtime.Domain_pool.create ~domains:3 in
  let total = Atomic.make 0 in
  for _ = 1 to 99 do
    Runtime.Domain_pool.submit pool (fun () -> Atomic.incr total)
  done;
  Runtime.Domain_pool.shutdown pool;
  Alcotest.(check int) "all ran" 99 (Atomic.get total);
  for i = 0 to 2 do
    Alcotest.(check int)
      (Printf.sprintf "member %d got an even share" i)
      33
      (Runtime.Domain_pool.executed pool ~index:i)
  done

let suites =
  [
    ( "runtime.mpsc",
      [
        Alcotest.test_case "fifo single producer" `Quick
          test_mpsc_fifo_single_producer;
        Alcotest.test_case "multi-producer totals" `Quick
          test_mpsc_multi_producer_total;
        qcheck prop_mpsc_roundtrip;
      ] );
    ( "runtime.spsc",
      [
        Alcotest.test_case "bounded capacity" `Quick test_spsc_capacity;
        Alcotest.test_case "power of two required" `Quick
          test_spsc_power_of_two_required;
        Alcotest.test_case "uniform capacity contract" `Quick
          test_uniform_capacity_contract;
        Alcotest.test_case "cross-domain stream" `Quick test_spsc_cross_domain;
        qcheck prop_spsc_wraparound;
      ] );
    ( "runtime.fastcall",
      [
        Alcotest.test_case "local call" `Quick test_fastcall_local;
        Alcotest.test_case "unknown entry" `Quick test_fastcall_unknown_ep;
        Alcotest.test_case "frame reuse" `Quick test_fastcall_frame_reuse;
        Alcotest.test_case "nested calls" `Quick test_fastcall_nested_calls;
        Alcotest.test_case "cross-domain call" `Quick test_fastcall_cross_domain;
      ] );
    ( "runtime.locked_registry",
      [
        Alcotest.test_case "parity" `Quick test_locked_registry_parity;
        Alcotest.test_case "multi-domain exactness" `Quick
          test_locked_registry_multidomain;
      ] );
    ( "runtime.domain_pool",
      [
        Alcotest.test_case "affinity" `Quick test_domain_pool_affinity;
        Alcotest.test_case "round robin" `Quick test_domain_pool_round_robin;
      ] );
  ]

(* --- striped counter -------------------------------------------------------- *)

let test_striped_counter_exact () =
  let c = Runtime.Striped_counter.create () in
  let per = 5000 in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per do
              Runtime.Striped_counter.incr c
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "no lost increments" (4 * per)
    (Runtime.Striped_counter.value c)

let test_striped_counter_add () =
  let c = Runtime.Striped_counter.create ~stripes:4 () in
  Runtime.Striped_counter.add c 40;
  Runtime.Striped_counter.incr c;
  Runtime.Striped_counter.incr c;
  Alcotest.(check int) "adds and incrs sum" 42 (Runtime.Striped_counter.value c)

let test_striped_counter_pow2 () =
  Alcotest.check_raises "non-power-of-two stripes"
    (Invalid_argument "Striped_counter.create: stripes must be a power of two")
    (fun () -> ignore (Runtime.Striped_counter.create ~stripes:3 ()))

(* --- treiber stack ----------------------------------------------------------- *)

let test_treiber_lifo () =
  let s = Runtime.Treiber_stack.create () in
  List.iter (Runtime.Treiber_stack.push s) [ 1; 2; 3 ];
  Alcotest.(check int) "length" 3 (Runtime.Treiber_stack.length s);
  Alcotest.(check (option int)) "pop 3" (Some 3) (Runtime.Treiber_stack.pop s);
  Alcotest.(check (option int)) "pop 2" (Some 2) (Runtime.Treiber_stack.pop s);
  Alcotest.(check (option int)) "pop 1" (Some 1) (Runtime.Treiber_stack.pop s);
  Alcotest.(check (option int)) "empty" None (Runtime.Treiber_stack.pop s);
  Alcotest.(check bool) "is_empty" true (Runtime.Treiber_stack.is_empty s)

let test_treiber_multidomain_conservation () =
  let s = Runtime.Treiber_stack.create () in
  let per = 2000 in
  let producers =
    List.init 2 (fun p ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              Runtime.Treiber_stack.push s ((p * per) + i)
            done))
  in
  let popped = Atomic.make 0 in
  let consumers =
    List.init 2 (fun _ ->
        Domain.spawn (fun () ->
            let n = ref 0 in
            let tries = ref 0 in
            while !tries < 1_000_000 && Atomic.get popped + !n < 2 * per do
              (match Runtime.Treiber_stack.pop s with
              | Some _ -> incr n
              | None -> Domain.cpu_relax ());
              incr tries
            done;
            ignore (Atomic.fetch_and_add popped !n)))
  in
  List.iter Domain.join producers;
  List.iter Domain.join consumers;
  (* Whatever the consumers missed is still on the stack. *)
  let remaining = Runtime.Treiber_stack.length s in
  Alcotest.(check int) "pushes + pops conserve elements" (2 * per)
    (Atomic.get popped + remaining);
  Alcotest.(check int) "counters agree" (2 * per) (Runtime.Treiber_stack.pushes s);
  Alcotest.(check int) "pop counter agrees" (Atomic.get popped)
    (Runtime.Treiber_stack.pops s)

(* --- raw SPSC ring -------------------------------------------------------- *)

let test_raw_ring_capacity () =
  let r = Runtime.Spsc_ring.Raw.create ~capacity:4 ~dummy:(-1) in
  Alcotest.(check int) "capacity" 4 (Runtime.Spsc_ring.Raw.capacity r);
  for i = 1 to 4 do
    Alcotest.(check bool) "push fits" true (Runtime.Spsc_ring.Raw.try_push r i)
  done;
  Alcotest.(check bool) "full rejects" false (Runtime.Spsc_ring.Raw.try_push r 5);
  Alcotest.(check int) "pop first" 1 (Runtime.Spsc_ring.Raw.try_pop r);
  Alcotest.(check bool) "space again" true (Runtime.Spsc_ring.Raw.try_push r 5);
  Alcotest.check_raises "non-power rejected"
    (Invalid_argument (capacity_message "Spsc_ring.Raw.create" 6))
    (fun () -> ignore (Runtime.Spsc_ring.Raw.create ~capacity:6 ~dummy:0))

let prop_raw_ring_wraparound =
  QCheck.Test.make ~name:"raw ring preserves order across wraps" ~count:100
    QCheck.(list_of_size Gen.(1 -- 200) small_nat)
    (fun xs ->
      (* Elements are >= 0; -1 is the empty marker. *)
      let r = Runtime.Spsc_ring.Raw.create ~capacity:8 ~dummy:(-1) in
      let out = ref [] in
      List.iter
        (fun x ->
          if not (Runtime.Spsc_ring.Raw.try_push r x) then begin
            let v = Runtime.Spsc_ring.Raw.try_pop r in
            if v >= 0 then out := v :: !out;
            ignore (Runtime.Spsc_ring.Raw.try_push r x)
          end)
        xs;
      let rec drain () =
        let v = Runtime.Spsc_ring.Raw.try_pop r in
        if v >= 0 then begin
          out := v :: !out;
          drain ()
        end
      in
      drain ();
      List.rev !out = xs)

let test_raw_ring_cross_domain () =
  let r = Runtime.Spsc_ring.Raw.create ~capacity:16 ~dummy:(-1) in
  let n = 10_000 in
  let consumer =
    Domain.spawn (fun () ->
        let sum = ref 0 and got = ref 0 in
        while !got < n do
          let v = Runtime.Spsc_ring.Raw.try_pop r in
          if v >= 0 then begin
            sum := !sum + v;
            incr got
          end
          else Domain.cpu_relax ()
        done;
        !sum)
  in
  for i = 1 to n do
    while not (Runtime.Spsc_ring.Raw.try_push r i) do
      Domain.cpu_relax ()
    done
  done;
  Alcotest.(check int) "sum across domains" (n * (n + 1) / 2)
    (Domain.join consumer)

(* --- request slab --------------------------------------------------------- *)

let test_slab_lifo_reuse () =
  let s = Runtime.Request_slab.create ~capacity:2 ~arg_words:8 () in
  let a = Runtime.Request_slab.acquire s in
  let b = Runtime.Request_slab.acquire s in
  Alcotest.(check bool) "distinct cells" true (a.index <> b.index);
  Alcotest.(check int) "in flight" 2 (Runtime.Request_slab.in_flight s);
  Runtime.Request_slab.release s a;
  let a' = Runtime.Request_slab.acquire s in
  Alcotest.(check int) "serial reuse: last released comes back first" a.index
    a'.index;
  Alcotest.(check int) "no growth yet" 0 (Runtime.Request_slab.grows s);
  (* Exhaust the pool: the slab grows rather than blocking. *)
  let c = Runtime.Request_slab.acquire s in
  Alcotest.(check int) "grew once" 1 (Runtime.Request_slab.grows s);
  Alcotest.(check int) "created tracks growth" 3 (Runtime.Request_slab.created s);
  Runtime.Request_slab.release s a';
  Runtime.Request_slab.release s b;
  Runtime.Request_slab.release s c;
  Alcotest.(check int) "all home" 3 (Runtime.Request_slab.available s)

let test_slab_release_resets_state () =
  let s = Runtime.Request_slab.create ~capacity:1 ~arg_words:8 () in
  let c = Runtime.Request_slab.acquire s in
  Atomic.set c.state Runtime.Request_slab.state_done;
  Runtime.Request_slab.release s c;
  let c' = Runtime.Request_slab.acquire s in
  Alcotest.(check int) "state reset to free" Runtime.Request_slab.state_free
    (Atomic.get c'.state)

(* --- doorbell ------------------------------------------------------------- *)

let test_doorbell_fast_ring () =
  let db = Runtime.Doorbell.create () in
  Runtime.Doorbell.ring db;
  Runtime.Doorbell.ring db;
  Alcotest.(check int) "spinning rings are lock-free" 2
    (Runtime.Doorbell.rings db);
  Alcotest.(check int) "no wakes" 0 (Runtime.Doorbell.wakes db);
  Alcotest.(check bool) "not parked" false (Runtime.Doorbell.is_parked db)

let test_doorbell_park_no_sleep_when_work_pending () =
  let db = Runtime.Doorbell.create () in
  (* Work already visible: park must return without sleeping. *)
  Runtime.Doorbell.park db ~nonempty:(fun () -> true);
  Alcotest.(check int) "no sleep" 0 (Runtime.Doorbell.parks db);
  Alcotest.(check bool) "back to spinning" false (Runtime.Doorbell.is_parked db)

(* The lost-wakeup stress: a producer publishes work items and rings; a
   consumer parks whenever it sees nothing new.  If any wakeup were
   lost, the consumer would sleep forever with work pending — the
   watchdog turns that hang into a failure. *)
let test_doorbell_park_unpark_race () =
  let db = Runtime.Doorbell.create () in
  let published = Atomic.make 0 and aborted = Atomic.make false in
  let n = 400 in
  let producer =
    Domain.spawn (fun () ->
        for i = 1 to n do
          Atomic.set published i;
          Runtime.Doorbell.ring db;
          (* Occasionally let the consumer reach its park so both sides
             of the state machine get exercised. *)
          if i mod 7 = 0 then Unix.sleepf 0.0005
        done)
  in
  let consumed = Atomic.make 0 in
  let consumer =
    Domain.spawn (fun () ->
        while
          Atomic.get consumed < n && not (Atomic.get aborted)
        do
          let avail = Atomic.get published in
          if avail > Atomic.get consumed then Atomic.set consumed avail
          else
            Runtime.Doorbell.park db ~nonempty:(fun () ->
                Atomic.get published > Atomic.get consumed
                || Atomic.get aborted)
        done)
  in
  let watchdog =
    Domain.spawn (fun () ->
        let deadline = Unix.gettimeofday () +. 30.0 in
        while
          Atomic.get consumed < n && Unix.gettimeofday () < deadline
        do
          Unix.sleepf 0.05
        done;
        if Atomic.get consumed < n then begin
          Atomic.set aborted true;
          Runtime.Doorbell.wake db
        end)
  in
  Domain.join producer;
  Domain.join consumer;
  Domain.join watchdog;
  Alcotest.(check bool) "no lost wakeup (watchdog never fired)" false
    (Atomic.get aborted);
  Alcotest.(check int) "all work observed" n (Atomic.get consumed)

(* The peer-vanishes case: the ringer's very last act is [ring] — the
   domain exits immediately after, so nothing about the wakeup may
   depend on the ringer sticking around.  The parker must still wake on
   every round; a lost wakeup would hang the test, which the watchdog
   turns into a failure. *)
let test_doorbell_ringer_dies () =
  let db = Runtime.Doorbell.create () in
  let rounds = 50 in
  let aborted = Atomic.make false in
  let woke = ref 0 in
  let round = Atomic.make 0 in
  let watchdog =
    Domain.spawn (fun () ->
        let deadline = Unix.gettimeofday () +. 30.0 in
        while Atomic.get round < rounds && Unix.gettimeofday () < deadline do
          Unix.sleepf 0.05
        done;
        if Atomic.get round < rounds then begin
          Atomic.set aborted true;
          Runtime.Doorbell.wake db
        end)
  in
  (try
     for _ = 1 to rounds do
       let published = Atomic.make false in
       let ringer =
         Domain.spawn (fun () ->
             (* Wait for the parker to actually sleep, so every round
                exercises the parked path, then ring and die. *)
             while
               (not (Runtime.Doorbell.is_parked db))
               && not (Atomic.get aborted)
             do
               Domain.cpu_relax ()
             done;
             Atomic.set published true;
             Runtime.Doorbell.ring db)
       in
       Runtime.Doorbell.park db ~nonempty:(fun () ->
           Atomic.get published || Atomic.get aborted);
       (* The ringer is gone by now; joining must not be needed for the
          wake (it already happened), only for cleanliness. *)
       Domain.join ringer;
       if Atomic.get published then incr woke;
       Atomic.incr round
     done
   with e ->
     Atomic.set round rounds;
     Domain.join watchdog;
     raise e);
  Domain.join watchdog;
  Alcotest.(check bool) "watchdog never fired" false (Atomic.get aborted);
  Alcotest.(check int) "woke on every round" rounds !woke

(* --- channel-path cross-domain calls -------------------------------------- *)

let test_channel_call_inline () =
  let t = Runtime.Fastcall.create () in
  let ep = Runtime.Fastcall.register t adder in
  let srv = Runtime.Fastcall.spawn_channel_server t in
  let cl = Runtime.Fastcall.connect srv in
  let args = Array.make 8 0 in
  for i = 1 to 100 do
    args.(0) <- i;
    args.(1) <- 1;
    let rc = Runtime.Fastcall.channel_call cl ~ep args in
    Alcotest.(check int) "rc" 0 rc;
    Alcotest.(check int) "in-place result" (i + 1) args.(0)
  done;
  Alcotest.(check int) "all calls accounted"
    100
    (Runtime.Fastcall.client_inlined cl + Runtime.Fastcall.channel_served srv);
  Runtime.Fastcall.shutdown_channel_server srv

let test_channel_call_queued () =
  let t = Runtime.Fastcall.create () in
  let ep = Runtime.Fastcall.register t adder in
  let srv = Runtime.Fastcall.spawn_channel_server t in
  let cl = Runtime.Fastcall.connect ~inline_uncontended:false srv in
  let args = Array.make 8 0 in
  for i = 1 to 200 do
    args.(0) <- i;
    args.(1) <- i;
    ignore (Runtime.Fastcall.channel_call cl ~ep args);
    Alcotest.(check int) "doubled" (2 * i) args.(0)
  done;
  Alcotest.(check int) "nothing inlined" 0 (Runtime.Fastcall.client_inlined cl);
  Alcotest.(check int) "all served by the shard" 200
    (Runtime.Fastcall.channel_served srv);
  Runtime.Fastcall.shutdown_channel_server srv

let run_producers ~producers ~per ~shards ~inline t ep srv =
  ignore t;
  let domains =
    List.init producers (fun p ->
        Domain.spawn (fun () ->
            let cl =
              Runtime.Fastcall.connect ~inline_uncontended:inline srv
            in
            let args = Array.make 8 0 in
            let total = ref 0 in
            for i = 1 to per do
              args.(0) <- i;
              args.(1) <- p;
              ignore (Runtime.Fastcall.channel_call cl ~ep args);
              total := !total + args.(0)
            done;
            !total))
  in
  let expected_per p = (per * (per + 1) / 2) + (per * p) in
  List.iteri
    (fun p d ->
      Alcotest.(check int)
        (Printf.sprintf "producer %d sums (shards=%d)" p shards)
        (expected_per p) (Domain.join d))
    domains

let test_channel_stress_one_shard () =
  let t = Runtime.Fastcall.create () in
  let ep = Runtime.Fastcall.register t adder in
  let srv = Runtime.Fastcall.spawn_channel_server t in
  run_producers ~producers:4 ~per:500 ~shards:1 ~inline:false t ep srv;
  Alcotest.(check int) "exact served count" (4 * 500)
    (Runtime.Fastcall.channel_served srv);
  Runtime.Fastcall.shutdown_channel_server srv

let test_channel_stress_sharded () =
  let t = Runtime.Fastcall.create () in
  let ep = Runtime.Fastcall.register t adder in
  (* Burn entry points so calls land on shard 1 too. *)
  let ep2 = Runtime.Fastcall.register t adder in
  let srv = Runtime.Fastcall.spawn_channel_server ~shards:2 t in
  run_producers ~producers:3 ~per:400 ~shards:2 ~inline:true t ep srv;
  run_producers ~producers:3 ~per:400 ~shards:2 ~inline:true t ep2 srv;
  Runtime.Fastcall.shutdown_channel_server srv

(* --- zero-allocation assertions ------------------------------------------- *)

(* [Gc.minor_words] is unboxed and per-domain, so a strict zero delta is
   measurable.  Warm-up happens outside the measured window: DLS pools,
   slabs and rings are all preallocated-and-reused from then on. *)
let minor_words_delta f =
  let before = Gc.minor_words () in
  f ();
  Gc.minor_words () -. before

let test_local_call_zero_alloc () =
  let t = Runtime.Fastcall.create () in
  let ep = Runtime.Fastcall.register t adder in
  let args = Array.make 8 0 in
  let calls = 1_000 in
  let loop () =
    for i = 1 to calls do
      args.(0) <- i;
      args.(1) <- 1;
      ignore (Runtime.Fastcall.call t ~ep args)
    done
  in
  loop ();
  (* warm-up: DLS pool initialised *)
  let delta = minor_words_delta loop in
  Alcotest.(check (float 0.0)) "warm local calls allocate zero minor words" 0.0
    delta

let test_channel_call_zero_alloc () =
  let t = Runtime.Fastcall.create () in
  let ep = Runtime.Fastcall.register t adder in
  let srv = Runtime.Fastcall.spawn_channel_server t in
  let check_mode name inline =
    let cl = Runtime.Fastcall.connect ~inline_uncontended:inline srv in
    let args = Array.make 8 0 in
    let calls = 500 in
    let loop () =
      for i = 1 to calls do
        args.(0) <- i;
        args.(1) <- 1;
        ignore (Runtime.Fastcall.channel_call cl ~ep args)
      done
    in
    loop ();
    (* warm-up: slab/ring steady state *)
    let delta = minor_words_delta loop in
    Alcotest.(check (float 0.0)) name 0.0 delta;
    Alcotest.(check int)
      (name ^ ": slab never grew after warm-up")
      0
      (Runtime.Fastcall.client_slab_grows cl)
  in
  check_mode "warm inline channel calls allocate zero minor words" true;
  check_mode "warm queued channel calls allocate zero minor words" false;
  Runtime.Fastcall.shutdown_channel_server srv

(* --- deadline timed park --------------------------------------------------- *)

(* The deadline wait is spin, then a timed park (sched_yield rounds,
   then bounded nanosleep naps — see Doorbell.timed_wait).  These tests
   pin its three wake reasons: the reply landing, the deadline
   expiring, and a dead server (where only the clock can save the
   caller).  [client_spin:0] forces every call past the spin phase so
   the park itself is what's exercised. *)

let ns_of_ms ms = ms * 1_000_000

let test_deadline_wakes_on_reply () =
  let module F = Runtime.Fastcall in
  let t = F.create () in
  let ep = F.register t adder in
  let srv = F.spawn_channel_server t in
  let cl = F.connect ~client_spin:0 ~inline_uncontended:false srv in
  let args = Array.make 8 0 in
  let t0 = Unix.gettimeofday () in
  for i = 1 to 200 do
    args.(0) <- i;
    args.(1) <- 1;
    Alcotest.(check int) "parked call completes" Ipc_intf.Errc.ok
      (F.channel_call_deadline cl ~ep ~deadline:(ns_of_ms 10_000) args);
    Alcotest.(check int) "reply intact" (i + 1) args.(0)
  done;
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "replies woke the park, not the deadline" true
    (dt < 5.0);
  Alcotest.(check int) "no timeouts" 0 (F.client_timeouts cl);
  F.shutdown_channel_server srv

let test_deadline_wakes_on_expiry () =
  let module F = Runtime.Fastcall in
  let t = F.create () in
  let stall = Atomic.make true in
  let slow : F.handler =
   fun _ctx args ->
    if Atomic.get stall then Unix.sleepf 0.3;
    args.(0) <- args.(0) + args.(1);
    args.(7) <- 0
  in
  let ep = F.register t slow in
  let srv = F.spawn_channel_server t in
  let cl = F.connect ~client_spin:0 ~inline_uncontended:false srv in
  let args = Array.make 8 0 in
  let t0 = Unix.gettimeofday () in
  let rc = F.channel_call_deadline cl ~ep ~deadline:(ns_of_ms 5) args in
  let dt = Unix.gettimeofday () -. t0 in
  Alcotest.(check int) "stalled reply expires" Ipc_intf.Errc.timed_out rc;
  Alcotest.(check int) "rc slot written too" Ipc_intf.Errc.timed_out args.(7);
  Alcotest.(check bool) "woke near the deadline, not the reply"
    true
    (dt >= 0.005 && dt < 0.25);
  Alcotest.(check int) "counted" 1 (F.client_timeouts cl);
  (* The abandoned cell comes back through the reclaim stack, and the
     channel keeps working afterwards. *)
  Atomic.set stall false;
  let deadline = Unix.gettimeofday () +. 30.0 in
  while F.client_slab_reclaimed cl < 1 && Unix.gettimeofday () < deadline do
    Domain.cpu_relax ()
  done;
  Alcotest.(check int) "abandoned cell reclaimed exactly once" 1
    (F.client_slab_reclaimed cl);
  args.(0) <- 5;
  args.(1) <- 2;
  Alcotest.(check int) "channel alive after a timeout" Ipc_intf.Errc.ok
    (F.channel_call_deadline cl ~ep ~deadline:(ns_of_ms 10_000) args);
  Alcotest.(check int) "later reply intact" 7 args.(0);
  F.shutdown_channel_server srv

(* A dead shard never replies and never rings: the timed park's clock is
   the only thing that can wake the caller.  Watchdogged — before the
   timed park, this scenario relied on the caller's own spin budget and
   could burn a full timeslice per nap on a loaded host. *)
let test_deadline_wakes_on_server_death () =
  let module F = Runtime.Fastcall in
  let t = F.create () in
  let ep = F.register t adder in
  let srv = F.spawn_channel_server t in
  let done_ = Atomic.make false in
  let aborted = Atomic.make false in
  let watchdog =
    Domain.spawn (fun () ->
        let deadline = Unix.gettimeofday () +. 30.0 in
        while (not (Atomic.get done_)) && Unix.gettimeofday () < deadline do
          Unix.sleepf 0.01
        done;
        if not (Atomic.get done_) then Atomic.set aborted true)
  in
  F.kill_shard srv ~shard:0;
  let cl = F.connect ~client_spin:0 ~inline_uncontended:false srv in
  let args = Array.make 8 0 in
  let t0 = Unix.gettimeofday () in
  let rc = F.channel_call_deadline cl ~ep ~deadline:(ns_of_ms 50) args in
  let dt = Unix.gettimeofday () -. t0 in
  Atomic.set done_ true;
  Domain.join watchdog;
  Alcotest.(check bool) "watchdog never fired" false (Atomic.get aborted);
  Alcotest.(check int) "dead shard call times out" Ipc_intf.Errc.timed_out rc;
  Alcotest.(check bool)
    "the clock woke the caller (napping, not spinning to 30s)" true
    (dt >= 0.05 && dt < 10.0);
  F.shutdown_channel_server srv

(* The whole timed wait is integer-only C stubs (clock_gettime,
   sched_yield, nanosleep) — a deadline call that parks and completes
   warm must allocate nothing, exactly like the undeadlined paths. *)
let test_deadline_park_zero_alloc () =
  let module F = Runtime.Fastcall in
  let t = F.create () in
  let ep = F.register t adder in
  let srv = F.spawn_channel_server t in
  let cl = F.connect ~client_spin:0 ~inline_uncontended:false srv in
  let args = Array.make 8 0 in
  let calls = 300 in
  let loop () =
    for i = 1 to calls do
      args.(0) <- i;
      args.(1) <- 1;
      ignore (F.channel_call_deadline cl ~ep ~deadline:(ns_of_ms 10_000) args)
    done
  in
  loop ();
  (* warm-up: slab/ring steady state *)
  let delta = minor_words_delta loop in
  Alcotest.(check (float 0.0))
    "warm parked deadline calls allocate zero minor words" 0.0 delta;
  Alcotest.(check int) "no timeouts during the pin" 0 (F.client_timeouts cl);
  F.shutdown_channel_server srv

(* --- lifecycle under fire -------------------------------------------------- *)

(* Soft-kill an entry point while client domains hammer it.  The
   acceptance protocol (stripe increment, state recheck) must partition
   every attempt cleanly: accepted calls run the handler exactly once and
   answer [ok] with their result intact; rejected calls answer the
   documented [killed]/[no_entry] codes without touching the arguments. *)
let test_soft_kill_under_fire () =
  let module F = Runtime.Fastcall in
  let t = F.create () in
  let executed = Atomic.make 0 in
  let handler : F.handler =
   fun _ctx args ->
    Atomic.incr executed;
    args.(0) <- args.(0) + 1;
    args.(F.arg_words - 1) <- 0
  in
  let ep = F.register_ep t handler in
  let clients = 4 and per = 20_000 in
  let domains =
    List.init clients (fun _ ->
        Domain.spawn (fun () ->
            let args = Array.make F.arg_words 0 in
            let ok = ref 0 and rejected = ref 0 in
            for i = 1 to per do
              args.(0) <- i;
              let rc = F.call_h t ep args in
              if rc = Ipc_intf.Errc.ok then begin
                if args.(0) <> i + 1 then
                  Alcotest.fail "accepted call lost its result";
                incr ok
              end
              else if rc = Ipc_intf.Errc.killed || rc = Ipc_intf.Errc.no_entry
              then incr rejected
              else Alcotest.failf "undocumented return code %d" rc
            done;
            (!ok, !rejected)))
  in
  while Atomic.get executed < 1_000 do
    Domain.cpu_relax ()
  done;
  Alcotest.(check int) "kill accepted" Ipc_intf.Errc.ok (F.soft_kill_h t ep);
  let totals = List.map Domain.join domains in
  let ok_total = List.fold_left (fun a (o, _) -> a + o) 0 totals in
  let rej_total = List.fold_left (fun a (_, r) -> a + r) 0 totals in
  Alcotest.(check int) "accepted + rejected = attempts" (clients * per)
    (ok_total + rej_total);
  Alcotest.(check int) "every accepted call ran exactly once" ok_total
    (Atomic.get executed);
  Alcotest.(check bool) "kill raced real traffic" true (ok_total >= 1_000);
  Alcotest.(check int) "drained" 0 (F.in_flight_h t ep);
  Alcotest.(check bool) "slot freed once drained" true
    (F.lifecycle t ~ep:(F.ep_id ep) = None)

(* Hard kill flips the return code of calls caught in flight — but only
   after the handler has run to completion, so its side effects stand.
   Deterministic single-domain version: the handler hard-kills its own
   entry point. *)
let test_hard_kill_flips_rc () =
  let module F = Runtime.Fastcall in
  let t = F.create () in
  let cell = ref None in
  let handler : F.handler =
   fun _ctx args ->
    args.(0) <- 99;
    args.(F.arg_words - 1) <- 0;
    ignore (F.hard_kill_h t (Option.get !cell))
  in
  let ep = F.register_ep t handler in
  cell := Some ep;
  let args = Array.make F.arg_words 0 in
  Alcotest.(check int) "aborted call answers killed" Ipc_intf.Errc.killed
    (F.call_h t ep args);
  Alcotest.(check int) "completed work is not rolled back" 99 args.(0);
  Alcotest.(check bool) "slot freed after drain" true
    (F.lifecycle t ~ep:(F.ep_id ep) = None);
  Alcotest.(check int) "stale handle rejected" Ipc_intf.Errc.no_entry
    (F.call_h t ep args)

(* Concurrent flavour: with the handler adding 1, every execution is
   observable, so [executed = ok + flipped] must hold exactly — a call
   the handler ran answers either [ok] (retired before the kill landed)
   or [killed] with its mutation intact (the flip). *)
let test_hard_kill_under_fire () =
  let module F = Runtime.Fastcall in
  let t = F.create () in
  let executed = Atomic.make 0 in
  let handler : F.handler =
   fun _ctx args ->
    Atomic.incr executed;
    args.(0) <- args.(0) + 1;
    args.(F.arg_words - 1) <- 0
  in
  let ep = F.register_ep t handler in
  let clients = 4 and per = 20_000 in
  let domains =
    List.init clients (fun _ ->
        Domain.spawn (fun () ->
            let args = Array.make F.arg_words 0 in
            let ok = ref 0 and flipped = ref 0 and rejected = ref 0 in
            for i = 1 to per do
              args.(0) <- i;
              let rc = F.call_h t ep args in
              if rc = Ipc_intf.Errc.ok then begin
                if args.(0) <> i + 1 then
                  Alcotest.fail "accepted call lost its result";
                incr ok
              end
              else if rc = Ipc_intf.Errc.killed then begin
                if args.(0) = i + 1 then incr flipped
                else if args.(0) = i then incr rejected
                else Alcotest.fail "rejected call mangled its arguments"
              end
              else if rc = Ipc_intf.Errc.no_entry then incr rejected
              else Alcotest.failf "undocumented return code %d" rc
            done;
            (!ok, !flipped, !rejected)))
  in
  while Atomic.get executed < 1_000 do
    Domain.cpu_relax ()
  done;
  Alcotest.(check int) "kill accepted" Ipc_intf.Errc.ok (F.hard_kill_h t ep);
  let totals = List.map Domain.join domains in
  let sum f = List.fold_left (fun a x -> a + f x) 0 totals in
  let ok_total = sum (fun (o, _, _) -> o) in
  let flipped_total = sum (fun (_, f, _) -> f) in
  let rej_total = sum (fun (_, _, r) -> r) in
  Alcotest.(check int) "every attempt accounted for" (clients * per)
    (ok_total + flipped_total + rej_total);
  Alcotest.(check int) "every execution answered ok or flipped-killed"
    (Atomic.get executed)
    (ok_total + flipped_total);
  Alcotest.(check bool) "slot freed once drained" true
    (F.lifecycle t ~ep:(F.ep_id ep) = None)

(* Shutdown must quiesce, not abandon: calls that already passed the
   draining gate complete with their results; calls arriving after it
   answer [killed]; and the counters reconcile exactly once the shards
   have been joined. *)
let test_shutdown_quiesces () =
  let module F = Runtime.Fastcall in
  let t = F.create () in
  let ok_adder : F.handler =
   fun _ctx args ->
    args.(0) <- args.(0) + args.(1);
    args.(F.arg_words - 1) <- 0
  in
  let ep = F.register t ok_adder in
  let srv = F.spawn_channel_server t in
  let started = Atomic.make 0 in
  let clients = 3 and per = 5_000 in
  let domains =
    List.init clients (fun p ->
        Domain.spawn (fun () ->
            let cl = F.connect srv in
            let args = Array.make 8 0 in
            let ok = ref 0 and rejected = ref 0 in
            for i = 1 to per do
              args.(0) <- i;
              args.(1) <- p;
              Atomic.incr started;
              let rc = F.channel_call cl ~ep args in
              if rc = Ipc_intf.Errc.ok then begin
                if args.(0) <> i + p then
                  Alcotest.fail "accepted channel call lost its result";
                incr ok
              end
              else if rc = Ipc_intf.Errc.killed then incr rejected
              else Alcotest.failf "undocumented return code %d" rc
            done;
            (F.client_inlined cl, !ok, !rejected)))
  in
  while Atomic.get started < 500 do
    Domain.cpu_relax ()
  done;
  F.shutdown_channel_server srv;
  let totals = List.map Domain.join domains in
  let sum f = List.fold_left (fun a x -> a + f x) 0 totals in
  let inlined = sum (fun (i, _, _) -> i) in
  let ok_total = sum (fun (_, o, _) -> o) in
  let rej_total = sum (fun (_, _, r) -> r) in
  Alcotest.(check int) "accepted + rejected = attempts" (clients * per)
    (ok_total + rej_total);
  Alcotest.(check int) "every accepted call was served exactly once"
    ok_total
    (inlined + F.channel_served srv);
  Alcotest.(check bool) "shutdown raced real traffic" true (ok_total >= 500);
  let late = F.connect srv in
  let args = Array.make 8 0 in
  Alcotest.(check int) "calls after shutdown answer killed"
    Ipc_intf.Errc.killed
    (F.channel_call late ~ep args)

(* --- control plane --------------------------------------------------------- *)

let triple : Runtime.Fastcall.handler =
 fun _ctx args ->
  args.(0) <- args.(0) * 3;
  args.(Runtime.Fastcall.arg_words - 1) <- 0

let quint : Runtime.Fastcall.handler =
 fun _ctx args ->
  args.(0) <- args.(0) * 5;
  args.(Runtime.Fastcall.arg_words - 1) <- 0

(* Full service lifecycle driven through the control-plane stubs with
   [via] left at the default: direct calls into well-known entry points
   0 and 1. *)
let test_control_plane_direct () =
  let module F = Runtime.Fastcall in
  let module C = Runtime.Control in
  let t = F.create () in
  let ctl = C.install t in
  let ep =
    match C.alloc_ep ctl ~principal:42 triple with
    | Ok id -> id
    | Error rc -> Alcotest.failf "alloc_ep failed with %d" rc
  in
  Alcotest.(check int) "publish" Ipc_intf.Errc.ok
    (C.publish ctl ~principal:42 ~name:"triple" ~ep);
  (match C.lookup ctl ~name:"triple" with
  | Ok id -> Alcotest.(check int) "lookup finds the binding" ep id
  | Error rc -> Alcotest.failf "lookup failed with %d" rc);
  Alcotest.(check bool) "lookup miss" true
    (C.lookup ctl ~name:"no-such-service" = Error Ipc_intf.Errc.no_entry);
  let args = Array.make F.arg_words 0 in
  args.(0) <- 7;
  Alcotest.(check int) "call rc" Ipc_intf.Errc.ok (F.call t ~ep args);
  Alcotest.(check int) "tripled" 21 args.(0);
  Alcotest.(check int) "exchange" Ipc_intf.Errc.ok
    (C.exchange ctl ~principal:42 ~ep quint);
  args.(0) <- 7;
  ignore (F.call t ~ep args);
  Alcotest.(check int) "exchanged routine live at the same id" 35 args.(0);
  Alcotest.(check int) "soft kill" Ipc_intf.Errc.ok
    (C.soft_kill ctl ~principal:42 ~ep);
  (match F.call t ~ep args with
  | _ -> Alcotest.fail "call on a killed entry point should not succeed"
  | exception F.No_entry _ -> ());
  Alcotest.(check int) "unpublish" Ipc_intf.Errc.ok
    (C.unpublish ctl ~principal:42 ~name:"triple")

(* Once the first grant lands, the ACL closes: Name-Server writes need
   [Write], manager operations need [Admin], lookups stay open. *)
let test_control_plane_auth () =
  let module F = Runtime.Fastcall in
  let module C = Runtime.Control in
  let t = F.create () in
  let ctl = C.install t in
  let ep =
    match C.alloc_ep ctl ~principal:1 triple with
    | Ok id -> id
    | Error rc -> Alcotest.failf "alloc_ep failed with %d" rc
  in
  Alcotest.(check int) "open ACL admits anyone" Ipc_intf.Errc.ok
    (C.publish ctl ~principal:1 ~name:"svc" ~ep);
  C.grant ctl ~principal:1 ~perms:[ Ipc_intf.Auth.Write; Ipc_intf.Auth.Admin ];
  Alcotest.(check bool) "unknown principal denied manager ops" true
    (C.soft_kill ctl ~principal:2 ~ep = Ipc_intf.Errc.denied);
  Alcotest.(check bool) "unknown principal denied naming writes" true
    (C.publish ctl ~principal:2 ~name:"svc2" ~ep = Ipc_intf.Errc.denied);
  (match C.lookup ctl ~name:"svc" with
  | Ok id -> Alcotest.(check int) "lookups stay open" ep id
  | Error rc -> Alcotest.failf "lookup failed with %d" rc);
  Alcotest.(check bool) "non-owner cannot unbind" true
    (C.unpublish ctl ~principal:2 ~name:"svc" = Ipc_intf.Errc.denied);
  Alcotest.(check int) "granted principal still works" Ipc_intf.Errc.ok
    (C.soft_kill ctl ~principal:1 ~ep)

(* Same stubs, reached cross-domain: [via] is a channel-path call, so
   naming and lifecycle requests travel through the shard like any other
   IPC — the paper's "system servers are ordinary servers". *)
let test_control_plane_channel_path () =
  let module F = Runtime.Fastcall in
  let module C = Runtime.Control in
  let t = F.create () in
  let ctl = C.install t in
  let srv = F.spawn_channel_server t in
  let cl = F.connect srv in
  let via = F.channel_call cl in
  let ep =
    match C.alloc_ep ~via ctl ~principal:9 triple with
    | Ok id -> id
    | Error rc -> Alcotest.failf "alloc_ep over the channel failed with %d" rc
  in
  Alcotest.(check int) "publish over the channel" Ipc_intf.Errc.ok
    (C.publish ~via ctl ~principal:9 ~name:"remote-triple" ~ep);
  (match C.lookup ~via ctl ~name:"remote-triple" with
  | Ok id -> Alcotest.(check int) "lookup over the channel" ep id
  | Error rc -> Alcotest.failf "lookup over the channel failed with %d" rc);
  let args = Array.make F.arg_words 0 in
  args.(0) <- 4;
  Alcotest.(check int) "service call over the channel" Ipc_intf.Errc.ok
    (F.channel_call cl ~ep args);
  Alcotest.(check int) "tripled" 12 args.(0);
  Alcotest.(check int) "exchange over the channel" Ipc_intf.Errc.ok
    (C.exchange ~via ctl ~principal:9 ~ep quint);
  args.(0) <- 4;
  ignore (F.channel_call cl ~ep args);
  Alcotest.(check int) "exchanged routine live" 20 args.(0);
  Alcotest.(check int) "grow pool over the channel" Ipc_intf.Errc.ok
    (C.grow_pool ~via ctl ~principal:9 ~ctxs:4);
  (match C.reclaim ~via ctl ~principal:9 ~max_ctxs:1 with
  | Ok _ -> ()
  | Error rc -> Alcotest.failf "reclaim over the channel failed with %d" rc);
  Alcotest.(check int) "hard kill over the channel" Ipc_intf.Errc.ok
    (C.hard_kill ~via ctl ~principal:9 ~ep);
  Alcotest.(check int) "killed service rejects channel calls"
    Ipc_intf.Errc.no_entry
    (F.channel_call cl ~ep args);
  F.shutdown_channel_server srv

let channel_suites =
  [
    ( "runtime.raw_ring",
      [
        Alcotest.test_case "bounded capacity" `Quick test_raw_ring_capacity;
        Alcotest.test_case "cross-domain stream" `Quick
          test_raw_ring_cross_domain;
        qcheck prop_raw_ring_wraparound;
      ] );
    ( "runtime.request_slab",
      [
        Alcotest.test_case "LIFO reuse and growth" `Quick test_slab_lifo_reuse;
        Alcotest.test_case "release resets state" `Quick
          test_slab_release_resets_state;
      ] );
    ( "runtime.doorbell",
      [
        Alcotest.test_case "lock-free fast ring" `Quick test_doorbell_fast_ring;
        Alcotest.test_case "no sleep with work pending" `Quick
          test_doorbell_park_no_sleep_when_work_pending;
        Alcotest.test_case "park/unpark race (watchdogged)" `Quick
          test_doorbell_park_unpark_race;
        Alcotest.test_case "ringer dies after ring (watchdogged)" `Quick
          test_doorbell_ringer_dies;
      ] );
    ( "runtime.channel",
      [
        Alcotest.test_case "inline path" `Quick test_channel_call_inline;
        Alcotest.test_case "queued path" `Quick test_channel_call_queued;
        Alcotest.test_case "4 producers x 1 shard" `Quick
          test_channel_stress_one_shard;
        Alcotest.test_case "3 producers x 2 shards" `Quick
          test_channel_stress_sharded;
      ] );
    ( "runtime.zero_alloc",
      [
        Alcotest.test_case "local call" `Quick test_local_call_zero_alloc;
        Alcotest.test_case "channel call (both modes)" `Quick
          test_channel_call_zero_alloc;
      ] );
    ( "runtime.deadline",
      [
        Alcotest.test_case "timed park wakes on reply" `Quick
          test_deadline_wakes_on_reply;
        Alcotest.test_case "timed park wakes on expiry" `Quick
          test_deadline_wakes_on_expiry;
        Alcotest.test_case "timed park wakes on server death (watchdogged)"
          `Quick test_deadline_wakes_on_server_death;
        Alcotest.test_case "parked deadline path zero-alloc" `Quick
          test_deadline_park_zero_alloc;
      ] );
    ( "runtime.lifecycle",
      [
        Alcotest.test_case "soft-kill under fire" `Quick
          test_soft_kill_under_fire;
        Alcotest.test_case "hard-kill flips in-flight rc" `Quick
          test_hard_kill_flips_rc;
        Alcotest.test_case "hard-kill under fire" `Quick
          test_hard_kill_under_fire;
        Alcotest.test_case "shutdown quiesces" `Quick test_shutdown_quiesces;
      ] );
    ( "runtime.control",
      [
        Alcotest.test_case "direct path lifecycle" `Quick
          test_control_plane_direct;
        Alcotest.test_case "authentication" `Quick test_control_plane_auth;
        Alcotest.test_case "channel path lifecycle" `Quick
          test_control_plane_channel_path;
      ] );
  ]

let extra_suites =
  [
    ( "runtime.striped_counter",
      [
        Alcotest.test_case "exact under domains" `Quick test_striped_counter_exact;
        Alcotest.test_case "add" `Quick test_striped_counter_add;
        Alcotest.test_case "power of two" `Quick test_striped_counter_pow2;
      ] );
    ( "runtime.treiber",
      [
        Alcotest.test_case "LIFO" `Quick test_treiber_lifo;
        Alcotest.test_case "multi-domain conservation" `Quick
          test_treiber_multidomain_conservation;
      ] );
  ]

let suites = suites @ extra_suites @ channel_suites
