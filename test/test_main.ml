(* Single test executable, organized as named groups.

   Each group is its own [Alcotest.run ~and_exit:false] invocation, so a
   full run prints per-group wall-clock timing, and one area can be run
   (and timed) alone:

     TEST_ONLY=faultsim dune runtest --force
     TEST_ONLY=ppc,runtime dune exec test/test_main.exe
     TEST_ONLY=faultsim dune exec test/test_main.exe -- test faultsim.checker

   TEST_ONLY takes a comma-separated list of group names (see [groups]);
   anything after `--` is standard Alcotest CLI, applied to the selected
   groups. *)

let groups : (string * unit Alcotest.test list) list =
  [
    ("sim", Test_sim.suites @ Test_trace.suites);
    ("machine", Test_machine.suites);
    ("kernel", Test_kernel.suites);
    ("ppc", Test_ppc.suites @ Test_ppc_ext.suites);
    ("vm", Test_vm.suites);
    ( "servers",
      Test_naming.suites @ Test_transfer.suites @ Test_servers.suites
      @ Test_sysmgr.suites );
    ("workload", Test_baseline.suites @ Test_workload.suites);
    ("experiments", Test_experiments.suites @ Test_smoke.suites);
    ("determinism", Test_determinism.suites @ Test_properties.suites);
    ("runtime", Test_runtime.suites @ Test_runtime_models.suites @ Test_copy_engine.suites);
    ("runtime_faults", Test_runtime_faults.suites);
    ("shm", Test_shm.suites);
    ("conformance", Test_conformance.suites);
    ("faultsim", Test_faultsim.suites);
    ("bench", Test_bench_gate.suites);
    ("misc", Test_misc.suites);
  ]

let () =
  let enabled =
    match Sys.getenv_opt "TEST_ONLY" with
    | None | Some "" -> List.map fst groups
    | Some s ->
        let wanted = List.map String.trim (String.split_on_char ',' s) in
        List.iter
          (fun w ->
            if not (List.mem_assoc w groups) then begin
              Printf.eprintf "TEST_ONLY: unknown group %S (have: %s)\n" w
                (String.concat ", " (List.map fst groups));
              exit 2
            end)
          wanted;
        wanted
  in
  let failed = ref false in
  let timings = ref [] in
  List.iter
    (fun (name, suites) ->
      if List.mem name enabled then begin
        let t0 = Unix.gettimeofday () in
        (try Alcotest.run ~and_exit:false ("ppc_ipc." ^ name) suites
         with Alcotest.Test_error -> failed := true);
        timings := (name, Unix.gettimeofday () -. t0) :: !timings
      end)
    groups;
  Printf.printf "\nper-group timing:\n%!";
  List.iter
    (fun (name, dt) -> Printf.printf "  %-12s %6.2fs\n%!" name dt)
    (List.rev !timings);
  if !failed then exit 1
