(* Containment and supervision regressions for the crash-contained
   runtime (handler fault isolation, deadlines, backpressure, shard
   supervision).  Three layers:

   - the named scenarios from [Faultsim.Runtime_fault], each run once
     and required to report zero contract violations — the test-suite
     mirror of `ppc_sim faults --runtime all`;
   - direct error-contract regressions for [Fastcall.call] / [call_h]:
     the raw-ID path raises [No_entry] only for IDs that were never
     bound (or fully drained), and every other failure — killed,
     contained handler exception — comes back in the RC slot;
   - a multi-domain stress: several client domains hammering a mix of
     healthy and raising entry points over the sharded channel path.
     Every reply must be classified correctly and the shards must
     survive to serve a fresh client afterwards. *)

module F = Runtime.Fastcall
module Errc = Ipc_intf.Errc

exception Boom

let mk () = Array.make F.arg_words 0

(* --- named fault scenarios --------------------------------------------- *)

let scenario_case name =
  Alcotest.test_case name `Quick (fun () ->
      match Faultsim.Runtime_fault.run name with
      | None -> Alcotest.failf "unknown runtime fault scenario %S" name
      | Some r ->
          if not (Faultsim.Runtime_fault.ok r) then
            Alcotest.failf "scenario %s violated containment:@.%a@.%a" name
              (Format.pp_print_list ~pp_sep:Format.pp_print_newline
                 (fun ppf v -> Format.fprintf ppf "  - %s" v))
              r.Faultsim.Runtime_fault.violations
              Faultsim.Runtime_fault.pp_report r)

(* --- call / call_h error contract -------------------------------------- *)

let test_local_error_contract () =
  let t = F.create () in
  (* Unbound raw ID: the only raising case. *)
  (match F.call t ~ep:57 (mk ()) with
  | _ -> Alcotest.fail "call on an unbound ID must raise No_entry"
  | exception F.No_entry id -> Alcotest.(check int) "raised id" 57 id);
  (* A healthy endpoint answers ok on both paths. *)
  let h = F.register_ep t (fun _ a -> a.(1) <- a.(0) + 1) in
  let a = mk () in
  a.(0) <- 41;
  Alcotest.(check int) "call_h ok" Errc.ok (F.call_h t h a);
  Alcotest.(check int) "result" 42 a.(1);
  Alcotest.(check int) "call ok" Errc.ok (F.call t ~ep:(F.ep_id h) (mk ()));
  (* A raising handler is contained on both paths: [handler_fault] in
     the RC slot, never an exception. *)
  let bad = F.register_ep t (fun _ _ -> raise Boom) in
  Alcotest.(check int) "call_h handler_fault" Errc.handler_fault
    (F.call_h t bad (mk ()));
  Alcotest.(check int) "call handler_fault" Errc.handler_fault
    (F.call t ~ep:(F.ep_id bad) (mk ()));
  Alcotest.(check int) "faults counted" 2 (F.handler_faults t);
  Alcotest.(check int) "ep faults" 2 (F.ep_faults t ~ep:(F.ep_id bad));
  Alcotest.(check int) "good ep untouched" 0 (F.ep_faults t ~ep:(F.ep_id h));
  (* Kill the healthy endpoint while idle: the slot drains immediately,
     stale handles answer [no_entry], the raw ID raises again. *)
  Alcotest.(check int) "soft_kill ok" Errc.ok (F.soft_kill_h t h);
  Alcotest.(check int) "stale handle" Errc.no_entry (F.call_h t h (mk ()));
  match F.call t ~ep:(F.ep_id h) (mk ()) with
  | _ -> Alcotest.fail "killed-and-drained ID must raise No_entry"
  | exception F.No_entry _ -> ()

(* [killed] is only observable while a slot is draining, which needs an
   in-flight call: have the handler soft-kill its own entry point and
   then call it again — the nested call must be refused with [killed]
   while the outer one (already accepted) completes normally. *)
let test_killed_while_draining () =
  let t = F.create () in
  let id = ref (-1) in
  let handler _ a =
    if a.(0) = 1 then begin
      a.(1) <- F.soft_kill t ~ep:!id;
      (match F.lifecycle t ~ep:!id with
      | Some Ipc_intf.Lifecycle.Soft_killed -> a.(3) <- 1
      | _ -> a.(3) <- 0);
      a.(2) <- F.call t ~ep:!id (mk ())
    end
  in
  id := F.register t handler;
  let a = mk () in
  a.(0) <- 1;
  Alcotest.(check int) "outer call completes" Errc.ok (F.call t ~ep:!id a);
  Alcotest.(check int) "self soft-kill accepted" Errc.ok a.(1);
  Alcotest.(check int) "draining observed as Soft_killed" 1 a.(3);
  Alcotest.(check int) "nested call refused with killed" Errc.killed a.(2);
  (* Retiring the outer call finished the drain: the slot is free. *)
  Alcotest.(check bool) "slot drained" true (F.lifecycle t ~ep:!id = None);
  match F.call t ~ep:!id (mk ()) with
  | _ -> Alcotest.fail "drained ID must raise No_entry"
  | exception F.No_entry _ -> ()

(* --- multi-domain stress ------------------------------------------------ *)

let test_multidomain_fault_stress () =
  let t = F.create ~breaker_threshold:max_int () in
  let good = F.register t (fun _ a -> a.(1) <- a.(0) + 1) in
  let bad = F.register t (fun _ _ -> raise Boom) in
  let server = F.spawn_channel_server ~shards:2 t in
  let producers = 4 and calls = 400 in
  let misclassified = Atomic.make 0 in
  let ds =
    Array.init producers (fun _ ->
        Domain.spawn (fun () ->
            (* Force the queued path so raising handlers run on the
               shard domains, not inline on this client. *)
            let cl = F.connect ~inline_uncontended:false server in
            let a = Array.make F.arg_words 0 in
            for i = 1 to calls do
              Array.fill a 0 F.arg_words 0;
              if i land 1 = 0 then begin
                a.(0) <- i;
                let rc = F.channel_call cl ~ep:good a in
                if rc <> Errc.ok || a.(1) <> i + 1 then
                  Atomic.incr misclassified
              end
              else begin
                let rc = F.channel_call cl ~ep:bad a in
                if rc <> Errc.handler_fault then Atomic.incr misclassified
              end
            done))
  in
  Array.iter Domain.join ds;
  Alcotest.(check int) "every reply classified" 0 (Atomic.get misclassified);
  Alcotest.(check int) "every fault counted"
    (producers * calls / 2)
    (F.handler_faults t);
  Alcotest.(check int) "breaker held open" 0 (F.breaker_trips t);
  (* The shards survived: a fresh client still gets service. *)
  let cl = F.connect server in
  let a = mk () in
  a.(0) <- 7;
  Alcotest.(check int) "post-stress call ok" Errc.ok
    (F.channel_call cl ~ep:good a);
  Alcotest.(check int) "post-stress result" 8 a.(1);
  F.shutdown_channel_server server

let suites =
  [
    ("runtime.faults.scenarios", List.map scenario_case Faultsim.Runtime_fault.names);
    ( "runtime.faults.contract",
      [
        Alcotest.test_case "call / call_h error contract" `Quick
          test_local_error_contract;
        Alcotest.test_case "killed only while draining" `Quick
          test_killed_while_draining;
      ] );
    ( "runtime.faults.stress",
      [
        Alcotest.test_case "multi-domain raising-handler stress" `Quick
          test_multidomain_fault_stress;
      ] );
  ]
