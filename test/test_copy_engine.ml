(* The async bulk-data engine against an executable model.

   The engine core is a per-client descriptor slab plus SPSC
   submission/completion rings drained by a (here manually stepped)
   mover.  The model is two queues and a free count: submit succeeds
   iff a descriptor is free, step moves at most [budget] descriptors
   from submission to completion, reap delivers exactly the completion
   queue.  On top of the model equivalence the tests pin the engine's
   delivery contract — every submitted tag completes exactly once, in
   order, and never twice — the post-kill fail sweep, and the
   zero-allocation warm path the bench gate relies on. *)

module E = Transfer.Copy_engine
module Errc = Ipc_intf.Errc

let qcheck = QCheck_alcotest.to_alcotest
let ok_exec : E.exec = fun _ -> Errc.ok

(* --- submission/completion rings vs two-queue model ----------------------- *)

(* Ops: 0/1 = submit a fresh tag, 2 = step the mover with a small
   budget, 3 = reap.  The value picks the step budget. *)
let ops_arb = QCheck.(small_list (pair (int_bound 3) (int_bound 1000)))

let prop_engine_vs_queue_model =
  QCheck.Test.make ~name:"copy engine = two-queue model" ~count:300 ops_arb
    (fun ops ->
      let cap = 4 in
      let eng = E.create ok_exec in
      let completions = Queue.create () in
      let cl =
        E.connect ~capacity:cap
          ~on_complete:(fun ~tag ~rc -> Queue.push (tag, rc) completions)
          eng
      in
      let mover = Transfer.Mover.manual eng in
      (* Model state: tags in the submission queue, tags executed but
         not yet reaped, and every tag ever completed (exactly-once). *)
      let sq = Queue.create () in
      let cq = Queue.create () in
      let next_tag = ref 0 in
      let seen = Hashtbl.create 16 in
      let drain_completions () =
        (* Engine completions this reap must be the model cq, in order,
           each tag fresh. *)
        let matched = ref true in
        Queue.iter
          (fun (tag, rc) ->
            (match Queue.take_opt cq with
            | Some want_tag when want_tag = tag && rc = Errc.ok -> ()
            | _ -> matched := false);
            if Hashtbl.mem seen tag then matched := false
            else Hashtbl.replace seen tag ())
          completions;
        Queue.clear completions;
        !matched && Queue.is_empty cq
      in
      List.for_all
        (fun (op, v) ->
          if op < 2 then begin
            let tag = !next_tag in
            incr next_tag;
            let rc =
              E.submit cl ~op:Ipc_intf.Wellknown.bulk_copy ~src:0 ~src_off:0
                ~dst:0 ~dst_off:0 ~len:8 ~tag
            in
            let free = cap - Queue.length sq - Queue.length cq in
            if free > 0 then begin
              Queue.push tag sq;
              rc = Errc.ok
            end
            else rc = Errc.retry
          end
          else if op = 2 then begin
            let budget = 1 + (v mod 3) in
            ignore (E.flush cl);
            let executed = Transfer.Mover.step mover ~budget in
            let want = min budget (Queue.length sq) in
            for _ = 1 to want do
              Queue.push (Queue.pop sq) cq
            done;
            executed = want
          end
          else begin
            let n = E.reap cl in
            let want = Queue.length cq in
            n = want && drain_completions ()
          end)
        ops
      &&
      (* Final drain: everything still in flight completes, each tag
         exactly once, and the engine ends empty. *)
      begin
        ignore (E.flush cl);
        while E.pending eng > 0 do
          ignore (Transfer.Mover.step mover ~budget:8)
        done;
        Queue.transfer sq cq;
        let want = Queue.length cq in
        let n = E.reap cl in
        n = want && drain_completions () && E.outstanding cl = 0
      end)

(* --- kill mid-copy: fail sweep exactly once ------------------------------- *)

let test_kill_sweep () =
  let eng = E.create ok_exec in
  let seen = Hashtbl.create 16 in
  let completed = ref 0 and swept = ref 0 in
  let cl =
    E.connect
      ~on_complete:(fun ~tag ~rc ->
        Alcotest.(check bool)
          (Printf.sprintf "tag %d completes once" tag)
          false (Hashtbl.mem seen tag);
        Hashtbl.replace seen tag rc;
        if rc = Errc.ok then incr completed else incr swept;
        if rc <> Errc.ok then
          Alcotest.(check int)
            (Printf.sprintf "tag %d swept with handler_fault" tag)
            Errc.handler_fault rc)
      eng
  in
  let mover = Transfer.Mover.manual eng in
  for tag = 0 to 7 do
    Alcotest.(check int)
      (Printf.sprintf "submit %d" tag)
      Errc.ok
      (E.submit cl ~op:Ipc_intf.Wellknown.bulk_copy ~src:0 ~src_off:0 ~dst:0
         ~dst_off:0 ~len:8 ~tag)
  done;
  ignore (E.flush cl);
  Alcotest.(check int) "three executed" 3 (Transfer.Mover.step mover ~budget:3);
  Transfer.Mover.kill mover;
  ignore (E.reap cl);
  Alcotest.(check int) "posted completions win" 3 !completed;
  Alcotest.(check int) "stranded descriptors swept" 5 !swept;
  Alcotest.(check int) "nothing outstanding" 0 (E.outstanding cl);
  (* A second reap must not sweep anything again. *)
  Alcotest.(check int) "sweep is exactly-once" 0 (E.reap cl);
  Alcotest.(check int) "submit after death refused" Errc.killed
    (E.submit cl ~op:Ipc_intf.Wellknown.bulk_copy ~src:0 ~src_off:0 ~dst:0
       ~dst_off:0 ~len:8 ~tag:99);
  let cs = E.client_stats cl in
  Alcotest.(check int) "sweep counter" 5 cs.E.cs_failed_swept

(* --- zero-allocation warm path -------------------------------------------- *)

let minor_words_delta f =
  let before = Gc.minor_words () in
  f ();
  Gc.minor_words () -. before

let test_warm_path_zero_alloc () =
  let eng, store = E.create_with_buffers () in
  let unwrap = function Ok id -> id | Error _ -> Alcotest.fail "add" in
  let src = unwrap (E.Buffers.add store ~owner:0 (Bytes.create 4096)) in
  let dst = unwrap (E.Buffers.add store ~owner:0 (Bytes.create 4096)) in
  let completed = ref 0 in
  let cl = E.connect ~on_complete:(fun ~tag:_ ~rc:_ -> incr completed) eng in
  let mover = Transfer.Mover.manual eng in
  let rounds = 500 in
  let loop () =
    for i = 1 to rounds do
      ignore
        (E.submit cl ~op:Ipc_intf.Wellknown.bulk_copy ~src ~src_off:0 ~dst
           ~dst_off:0 ~len:256 ~tag:i);
      ignore (E.flush cl);
      ignore (Transfer.Mover.step mover ~budget:4);
      ignore (E.reap cl)
    done
  in
  loop ();
  (* warm-up: rings, slab and doorbell all in steady state *)
  let delta = minor_words_delta loop in
  Alcotest.(check (float 0.0))
    "warm submit->flush->step->reap allocates zero minor words" 0.0 delta;
  Alcotest.(check int) "all completions delivered" (2 * rounds) !completed

(* --- bounded grant table --------------------------------------------------- *)

let test_grant_table_bounded () =
  let r = Transfer.Region.create ~max_grants:2 () in
  let g1 =
    Transfer.Region.try_grant r ~owner:1 ~grantee:2 ~base:0x1000 ~len:64
      ~access:Transfer.Region.Read_write
  in
  let g2 =
    Transfer.Region.try_grant r ~owner:1 ~grantee:2 ~base:0x2000 ~len:64
      ~access:Transfer.Region.Read_only
  in
  Alcotest.(check bool) "two grants fit" true
    (Result.is_ok g1 && Result.is_ok g2);
  (match
     Transfer.Region.try_grant r ~owner:1 ~grantee:2 ~base:0x3000 ~len:64
       ~access:Transfer.Region.Read_write
   with
  | Error rc -> Alcotest.(check int) "exhaustion answers retry" Errc.retry rc
  | Ok _ -> Alcotest.fail "grant table grew past its cap");
  (* Revoke frees a slot: the table recovers, never grows. *)
  let id1 = Result.get_ok g1 in
  Alcotest.(check bool) "revoke" true (Transfer.Region.revoke r ~grant_id:id1);
  (match
     Transfer.Region.try_grant r ~owner:3 ~grantee:4 ~base:0x4000 ~len:64
       ~access:Transfer.Region.Read_write
   with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "slot not reusable after revoke");
  Alcotest.(check int) "active" 2 (Transfer.Region.active_grants r);
  Alcotest.(check int) "cap" 2 (Transfer.Region.max_grants r)

let test_grant_handoff_consumes () =
  let r = Transfer.Region.create () in
  let id =
    Transfer.Region.grant r ~owner:1 ~grantee:2 ~base:0x1000 ~len:8192
      ~access:Transfer.Region.Read_write
  in
  (match Transfer.Region.handoff r ~grant_id:id with
  | Some g ->
      Alcotest.(check int) "handoff returns the grant's range" 8192
        g.Transfer.Region.len
  | None -> Alcotest.fail "live grant refused handoff");
  Alcotest.(check int) "handoff revokes" 0 (Transfer.Region.active_grants r);
  Alcotest.(check bool) "consumed grant cannot hand off twice" true
    (Transfer.Region.handoff r ~grant_id:id = None);
  Alcotest.(check int) "handoffs counted" 1 (Transfer.Region.handoffs r)

let suites =
  [
    ( "transfer.engine",
      [
        qcheck prop_engine_vs_queue_model;
        Alcotest.test_case "kill mid-copy: sweep exactly once" `Quick
          test_kill_sweep;
        Alcotest.test_case "warm submit->reap allocates nothing" `Quick
          test_warm_path_zero_alloc;
        Alcotest.test_case "grant table bounded, exhaustion = retry" `Quick
          test_grant_table_bounded;
        Alcotest.test_case "grant handoff consumes exactly once" `Quick
          test_grant_handoff_consumes;
      ] );
  ]
