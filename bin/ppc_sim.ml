(* ppc_sim: command-line driver for the simulated experiments.

     ppc_sim fig2 [--condition u2u-nocd-primed]
     ppc_sim fig3 [--cpus 16] [--horizon-ms 200] [--mode single|different]
     ppc_sim a1|a2|a3|a4|e1|intro

   The bench binary (bench/main.exe) regenerates everything at once; this
   tool is for poking at one experiment with custom parameters. *)

open Cmdliner

(* -v / --verbosity: route Logs through a stderr reporter. *)
let setup_logs level =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level level

let logs_term = Term.(const setup_logs $ Logs_cli.level ())

let fig2_cmd =
  let condition =
    let parse s =
      let parts = String.split_on_char '-' s in
      match parts with
      | [ t; cd; cache ] -> (
          match
            ( (match t with
              | "u2u" -> Some Experiments.Fig2.To_user
              | "u2k" -> Some Experiments.Fig2.To_kernel
              | _ -> None),
              (match cd with
              | "nocd" -> Some false
              | "hold" -> Some true
              | _ -> None),
              match cache with
              | "primed" -> Some false
              | "flushed" -> Some true
              | _ -> None )
          with
          | Some target, Some hold_cd, Some flushed ->
              Ok { Experiments.Fig2.target; hold_cd; flushed }
          | _ -> Error (`Msg "expected e.g. u2u-nocd-primed"))
      | _ -> Error (`Msg "expected e.g. u2u-nocd-primed")
    in
    let print ppf c = Fmt.string ppf (Experiments.Fig2.condition_name c) in
    Arg.conv (parse, print)
  in
  let cond_arg =
    Arg.(
      value
      & opt (some condition) None
      & info [ "condition" ] ~docv:"COND"
          ~doc:
            "Run a single condition (e.g. u2u-nocd-primed, u2k-hold-flushed) \
             instead of all eight.")
  in
  let run cond =
    match cond with
    | Some c -> Fmt.pr "%a@." Experiments.Fig2.pp_result (Experiments.Fig2.run c)
    | None ->
        List.iter
          (fun r -> Fmt.pr "%a@." Experiments.Fig2.pp_result r)
          (Experiments.Fig2.run_all ())
  in
  Cmd.v
    (Cmd.info "fig2" ~doc:"Figure 2: PPC round-trip cost breakdown")
    Term.(const (fun () c -> run c) $ logs_term $ cond_arg)

let fig3_cmd =
  let cpus =
    Arg.(value & opt int 16 & info [ "cpus" ] ~docv:"N" ~doc:"Maximum CPUs.")
  in
  let horizon =
    Arg.(
      value & opt int 200
      & info [ "horizon-ms" ] ~docv:"MS" ~doc:"Simulated run length per point.")
  in
  let mode =
    Arg.(
      value
      & opt
          (enum [ ("different", `Different); ("single", `Single); ("both", `Both) ])
          `Both
      & info [ "mode" ] ~docv:"MODE" ~doc:"File sharing regime.")
  in
  let run cpus horizon mode =
    let horizon = Sim.Time.ms horizon in
    let go m =
      Fmt.pr "%a@." Experiments.Fig3.pp_result
        (Experiments.Fig3.run ~max_cpus:cpus ~horizon ~mode:m ())
    in
    match mode with
    | `Different -> go Experiments.Fig3.Different_files
    | `Single -> go Experiments.Fig3.Single_file
    | `Both ->
        go Experiments.Fig3.Different_files;
        go Experiments.Fig3.Single_file
  in
  Cmd.v
    (Cmd.info "fig3" ~doc:"Figure 3: GetLength throughput scaling")
    Term.(const (fun () a b c -> run a b c) $ logs_term $ cpus $ horizon $ mode)

let simple name doc f =
  Cmd.v (Cmd.info name ~doc) Term.(const (fun () () -> f ()) $ logs_term $ const ())

let a1_cmd =
  simple "a1" "Ablation: hold-CD vs recycled stacks" (fun () ->
      Fmt.pr "%a@." Experiments.Ablate_holdcd.pp_result
        (Experiments.Ablate_holdcd.run ()))

let a2_cmd =
  simple "a2" "Ablation: PPC vs LRPC-style shared pools" (fun () ->
      Fmt.pr "%a@." Experiments.Ablate_lrpc.pp_result
        (Experiments.Ablate_lrpc.run ()))

let a3_cmd =
  simple "a3" "Ablation: asynchronous prefetch" (fun () ->
      Fmt.pr "%a@." Experiments.Ablate_async.pp_result
        (Experiments.Ablate_async.run ()))

let a4_cmd =
  simple "a4" "Ablation: PPC vs message-passing IPC" (fun () ->
      Fmt.pr "%a@." Experiments.Ablate_msg.pp_result (Experiments.Ablate_msg.run ()))

let a7_cmd =
  simple "a7" "Ablation: mutex vs RW lock in the file server" (fun () ->
      Fmt.pr "%a@." Experiments.Ablate_rwlock.pp_result
        (Experiments.Ablate_rwlock.run ()))

let a8_cmd =
  simple "a8" "Ablation: legacy message service on three transports" (fun () ->
      Fmt.pr "%a@." Experiments.Ablate_compat.pp_result
        (Experiments.Ablate_compat.run ()))

let a9_cmd =
  simple "a9" "Ablation: clustered vs central name service" (fun () ->
      Fmt.pr "%a@." Experiments.Ablate_cluster.pp_result
        (Experiments.Ablate_cluster.run ()))

let e1_cmd =
  simple "e1" "Extension: cross-processor PPC" (fun () ->
      Fmt.pr "%a@." Experiments.Ablate_remote.pp_result
        (Experiments.Ablate_remote.run ()))

let t3_cmd =
  simple "t3" "Worst-case caches (dirty D + cold I)" (fun () ->
      Fmt.pr "%a@." Experiments.Fig2_icache.pp_result
        (Experiments.Fig2_icache.run ()))

let f3b_cmd =
  simple "f3b" "Zipf file popularity sweep" (fun () ->
      Fmt.pr "%a@." Experiments.Fig3_zipf.pp_result (Experiments.Fig3_zipf.run ()))

let f3c_cmd =
  simple "f3c" "Request origin: programs vs parallel program" (fun () ->
      Fmt.pr "%a@." Experiments.Program_mix.pp_result
        (Experiments.Program_mix.run ()))

let l1_cmd =
  simple "l1" "Latency under load" (fun () ->
      Fmt.pr "%a@." Experiments.Latency_load.pp_result
        ( Experiments.Latency_load.Different_files,
          Experiments.Latency_load.run
            ~mode:Experiments.Latency_load.Different_files () );
      Fmt.pr "%a@." Experiments.Latency_load.pp_result
        ( Experiments.Latency_load.Single_file,
          Experiments.Latency_load.run
            ~mode:Experiments.Latency_load.Single_file () ))

let e2_cmd =
  simple "e2" "Extension: migration under two technology regimes" (fun () ->
      Fmt.pr "%a@." Experiments.Ablate_migration.pp_result
        (Experiments.Ablate_migration.run ()))

let intro_cmd =
  simple "intro" "Uniprocessor IPC context table" (fun () ->
      Fmt.pr "%a@." Experiments.Uniproc_context.pp_result
        (Experiments.Uniproc_context.run ()))

let trace_cmd =
  let target =
    Arg.(
      value
      & opt (enum [ ("user", `User); ("kernel", `Kernel) ]) `User
      & info [ "target" ] ~docv:"KIND" ~doc:"Server address space.")
  in
  let run target =
    let kern = Kernel.create ~cpus:1 () in
    let tr = Sim.Trace.create () in
    Sim.Engine.set_trace (Kernel.engine kern) (Some tr);
    let ppc = Ppc.create kern in
    let server =
      match target with
      | `User -> Ppc.make_user_server ppc ~name:"traced" ()
      | `Kernel -> Ppc.make_kernel_server ppc ~name:"traced" ()
    in
    let ep = Ppc.register_direct ppc ~server ~handler:Ppc.Null_server.echo in
    Ppc.prime ppc ~ep ~cpus:[ 0 ];
    let program = Kernel.new_program kern ~name:"client" in
    let space = Kernel.new_user_space kern ~name:"client" ~node:0 in
    ignore
      (Kernel.spawn kern ~cpu:0 ~name:"client" ~kind:Kernel.Process.Client
         ~program ~space (fun self ->
           ignore
             (Ppc.call ppc ~client:self ~ep_id:(Ppc.Entry_point.id ep)
                (Ppc.Reg_args.make ()));
           Sim.Trace.clear tr;
           ignore
             (Ppc.call ppc ~client:self ~ep_id:(Ppc.Entry_point.id ep)
                (Ppc.Reg_args.make ()))));
    Kernel.run kern;
    Fmt.pr "%a" Sim.Trace.pp tr
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Print the event timeline of one warm PPC call")
    Term.(const (fun () t -> run t) $ logs_term $ target)

let faults_cmd =
  let plan_names = String.concat ", " Faultsim.Fault.names in
  let plan_arg =
    Arg.(
      value & pos 0 string "chaos"
      & info [] ~docv:"PLAN" ~doc:(Printf.sprintf "Named fault plan: %s." plan_names))
  in
  let cpus_arg =
    Arg.(value & opt int 2 & info [ "cpus" ] ~docv:"N" ~doc:"Simulated CPUs.")
  in
  let calls_arg =
    Arg.(
      value & opt int 30
      & info [ "calls" ] ~docv:"N" ~doc:"Calls per client process.")
  in
  let minimize_arg =
    Arg.(
      value & flag
      & info [ "minimize" ]
          ~doc:
            "If the plan produces an invariant violation, greedily shrink it \
             to a minimal reproducing plan and print that plan's trace.")
  in
  let runtime_arg =
    Arg.(
      value & flag
      & info [ "runtime" ]
          ~doc:
            (Printf.sprintf
               "Run PLAN against the real-domain runtime instead of the \
                simulator (containment scenarios: %s; or $(b,all))."
               (String.concat ", " Faultsim.Runtime_fault.names)))
  in
  let run_runtime plan_name =
    let reports =
      if plan_name = "all" || plan_name = "chaos" then
        Faultsim.Runtime_fault.run_all ()
      else
        match Faultsim.Runtime_fault.run plan_name with
        | Some r -> [ r ]
        | None ->
            Fmt.epr "unknown runtime scenario %S (try: %s, or all)@." plan_name
              (String.concat ", " Faultsim.Runtime_fault.names);
            exit 2
    in
    List.iter (fun r -> Fmt.pr "%a@." Faultsim.Runtime_fault.pp_report r) reports;
    if not (List.for_all Faultsim.Runtime_fault.ok reports) then exit 1
  in
  let run plan_name cpus calls minimize runtime =
    if runtime then run_runtime plan_name
    else
    match Faultsim.Fault.of_name plan_name ~cpus with
    | None ->
        Fmt.epr "unknown plan %S (try: %s)@." plan_name plan_names;
        exit 2
    | Some plan ->
        let run_plan p = Faultsim.Harness.run ~cpus ~calls_per_client:calls p in
        let report = run_plan plan in
        Fmt.pr "%a" Faultsim.Harness.pp_report report;
        if (not (Faultsim.Harness.ok report)) && minimize then begin
          let minimal =
            Faultsim.Scenario.shrink_to_minimal
              (fun p -> not (Faultsim.Harness.ok (run_plan p)))
              plan
          in
          Fmt.pr "@.minimal reproducing plan:@.%a" Faultsim.Harness.pp_report
            (run_plan minimal)
        end;
        if not (Faultsim.Harness.ok report) then exit 1
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Run the fault-injection harness: a client/server workload under a \
          named fault plan, with the kernel invariant checker attached.  With \
          $(b,--runtime), run the named containment scenario against the \
          real-domain runtime instead")
    Term.(const (fun () a b c d e -> run a b c d e) $ logs_term $ plan_arg
          $ cpus_arg $ calls_arg $ minimize_arg $ runtime_arg)

(* --- channel: the real-domain cross-call path ----------------------------- *)

let channel_cmd =
  let producers_arg =
    Arg.(value & opt int 3 & info [ "producers" ] ~doc:"Producer domains")
  in
  let shards_arg =
    Arg.(value & opt int 1 & info [ "shards" ] ~doc:"Server shard domains")
  in
  let calls_arg =
    Arg.(value & opt int 20_000 & info [ "calls" ] ~doc:"Calls per producer")
  in
  let queued_arg =
    Arg.(
      value & flag
      & info [ "queued" ]
          ~doc:"Disable inline execution; force every call through the rings")
  in
  let run producers shards calls queued =
    let t = Runtime.Fastcall.create () in
    let ep =
      Runtime.Fastcall.register t (fun _ctx args ->
          args.(0) <- args.(0) + args.(1);
          args.(7) <- 0)
    in
    let srv = Runtime.Fastcall.spawn_channel_server ~shards t in
    let t0 = Unix.gettimeofday () in
    let doms =
      List.init producers (fun p ->
          Domain.spawn (fun () ->
              let cl =
                Runtime.Fastcall.connect ~inline_uncontended:(not queued) srv
              in
              let args = Array.make 8 0 in
              let sum = ref 0 in
              for i = 1 to calls do
                args.(0) <- i;
                args.(1) <- p;
                ignore (Runtime.Fastcall.channel_call cl ~ep args);
                sum := !sum + args.(0)
              done;
              (!sum, Runtime.Fastcall.client_inlined cl)))
    in
    let results = List.map Domain.join doms in
    let dt = Unix.gettimeofday () -. t0 in
    List.iteri
      (fun p (sum, _) ->
        let expect = (calls * (calls + 1) / 2) + (calls * p) in
        if sum <> expect then begin
          Fmt.epr "producer %d: sum %d <> expected %d@." p sum expect;
          exit 1
        end)
      results;
    let inlined = List.fold_left (fun a (_, i) -> a + i) 0 results in
    let total = producers * calls in
    Fmt.pr "channel path: %d producers x %d calls x %d shard(s) in %.3fs@."
      producers calls shards dt;
    Fmt.pr "  %.0f calls/s;  %d inline on callers, %d served by shards (%d stolen)@."
      (float_of_int total /. dt)
      inlined
      (Runtime.Fastcall.channel_served srv)
      (Runtime.Fastcall.channel_steals srv);
    let rings, wakes, parks = Runtime.Fastcall.channel_doorbell_stats srv in
    Fmt.pr "  doorbell: %d rings, %d wakes, %d sleeps;  batches: %d@." rings
      wakes parks
      (Runtime.Fastcall.channel_batches srv);
    Runtime.Fastcall.shutdown_channel_server srv;
    if inlined + Runtime.Fastcall.channel_served srv <> total then begin
      Fmt.epr "accounting mismatch: inline %d + served %d <> %d@." inlined
        (Runtime.Fastcall.channel_served srv)
        total;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "channel"
       ~doc:
         "Exercise the zero-allocation cross-domain channel path on real \
          OCaml 5 domains (request slab + SPSC rings + doorbell + sharded \
          batching servers) and verify call accounting")
    Term.(
      const (fun () a b c d -> run a b c d)
      $ logs_term $ producers_arg $ shards_arg $ calls_arg $ queued_arg)

(* --- lifecycle: the control plane under fire ------------------------------- *)

let lifecycle_cmd =
  let producers_arg =
    Arg.(value & opt int 3 & info [ "producers" ] ~doc:"Producer domains")
  in
  let calls_arg =
    Arg.(value & opt int 50_000 & info [ "calls" ] ~doc:"Calls per producer")
  in
  let run producers calls =
    let calls = Stdlib.max calls 3 in
    let t = Runtime.Fastcall.create () in
    let ctl = Runtime.Control.install t in
    let v1 _ctx args =
      args.(0) <- args.(0) + 1;
      args.(7) <- 0
    in
    let v2 _ctx args =
      args.(0) <- args.(0) + 2;
      args.(7) <- 0
    in
    let die fmt = Fmt.kpf (fun _ -> exit 1) Fmt.stderr fmt in
    let ep =
      match Runtime.Control.alloc_ep ctl ~principal:1 v1 with
      | Ok id -> id
      | Error rc -> die "alloc_ep failed: rc %d@." rc
    in
    (match Runtime.Control.publish ctl ~principal:1 ~name:"svc" ~ep with
    | 0 -> ()
    | rc -> die "publish failed: rc %d@." rc);
    let id =
      match Runtime.Control.lookup ctl ~name:"svc" with
      | Ok id -> id
      | Error rc -> die "lookup failed: rc %d@." rc
    in
    (* Three phases, fenced by a barrier: v1 traffic, then a live
       exchange, v2 traffic, then a soft-kill.  The fences make the
       expectations exact — every phase-1 call lands on v2, every
       phase-2 call is refused — while within a phase the producers
       hammer concurrently. *)
    let phase = Atomic.make 0 in
    let arrived = Atomic.make 0 in
    let third = calls / 3 in
    let doms =
      List.init producers (fun _ ->
          Domain.spawn (fun () ->
              let args = Array.make 8 0 in
              let old_ok = ref 0 and new_ok = ref 0 and rejected = ref 0 in
              let fence target =
                Atomic.incr arrived;
                while Atomic.get phase < target do
                  Domain.cpu_relax ()
                done
              in
              for i = 1 to calls do
                if i = third + 1 then fence 1
                else if i = (2 * third) + 1 then fence 2;
                args.(0) <- i;
                match Runtime.Fastcall.call t ~ep:id args with
                | 0 ->
                    if args.(0) = i + 1 && Atomic.get phase = 0 then
                      incr old_ok
                    else if args.(0) = i + 2 then incr new_ok
                    else die "wrong routine: result %d for input %d@."
                           args.(0) i
                | rc when rc = Ipc_intf.Errc.killed -> incr rejected
                | rc -> die "undocumented rc %d@." rc
                | exception Runtime.Fastcall.No_entry _ -> incr rejected
              done;
              (!old_ok, !new_ok, !rejected)))
    in
    let total = producers * calls in
    let await n =
      while Atomic.get arrived < n do
        Domain.cpu_relax ()
      done
    in
    await producers;
    (match Runtime.Control.exchange ctl ~principal:1 ~ep:id v2 with
    | 0 -> ()
    | rc -> die "exchange failed: rc %d@." rc);
    Atomic.set phase 1;
    await (2 * producers);
    (match Runtime.Control.soft_kill ctl ~principal:1 ~ep:id with
    | 0 -> ()
    | rc -> die "soft_kill failed: rc %d@." rc);
    Atomic.set phase 2;
    let results = List.map Domain.join doms in
    let sum f = List.fold_left (fun a x -> a + f x) 0 results in
    let old_ok = sum (fun (a, _, _) -> a) in
    let new_ok = sum (fun (_, b, _) -> b) in
    let rejected = sum (fun (_, _, c) -> c) in
    if old_ok + new_ok + rejected <> total then
      die "accounting mismatch: %d + %d + %d <> %d@." old_ok new_ok rejected
        total;
    if old_ok <> producers * third then
      die "v1 phase: expected %d completions, got %d@." (producers * third)
        old_ok;
    if new_ok <> producers * third then
      die "v2 phase: expected %d completions, got %d@." (producers * third)
        new_ok;
    if Runtime.Fastcall.lifecycle t ~ep:id <> None then
      die "slot not freed after drain@.";
    if Runtime.Fastcall.in_flight t ~ep:id <> 0 then
      die "in-flight counter did not drain@.";
    Fmt.pr "lifecycle: %d calls; %d on v1, %d on v2 after live exchange, %d \
            refused after soft-kill; slot drained and freed@."
      total old_ok new_ok rejected
  in
  Cmd.v
    (Cmd.info "lifecycle"
       ~doc:
         "Drive the runtime control plane under fire: allocate a service \
          through the resource manager, publish it, hammer it from producer \
          domains, exchange the handler live, then soft-kill it and verify \
          that no accepted call was lost")
    Term.(const (fun () a b -> run a b) $ logs_term $ producers_arg $ calls_arg)

(* --- copy: the async bulk-data engine end-to-end --------------------------- *)

let copy_cmd =
  let bytes_arg =
    Arg.(
      value & opt int (256 * 1024)
      & info [ "bytes" ] ~docv:"N" ~doc:"Payload size for the runtime demo.")
  in
  let chunk_arg =
    Arg.(
      value & opt int 4096
      & info [ "chunk" ] ~docv:"N" ~doc:"Bytes per descriptor.")
  in
  let sweep_arg =
    Arg.(
      value & flag
      & info [ "sweep" ]
          ~doc:"Also run the deterministic simulated payload sweep.")
  in
  let die fmt = Fmt.kpf (fun _ -> exit 1) Fmt.stderr fmt in
  let run_engine_demo ~bytes ~chunk =
    let eng, st = Transfer.Copy_engine.create_with_buffers () in
    let src = Bytes.init bytes (fun i -> Char.chr (i land 0xff)) in
    let dst = Bytes.make bytes '\000' in
    let src_id =
      match Transfer.Copy_engine.Buffers.add st ~owner:0 src with
      | Ok id -> id
      | Error rc -> die "region add: rc %d@." rc
    in
    let dst_id =
      match Transfer.Copy_engine.Buffers.add st ~owner:0 dst with
      | Ok id -> id
      | Error rc -> die "region add: rc %d@." rc
    in
    let mover = Transfer.Mover.spawn eng in
    let completions = ref 0 and bad = ref 0 in
    let cl =
      Transfer.Copy_engine.connect
        ~on_complete:(fun ~tag:_ ~rc ->
          incr completions;
          if rc <> Ipc_intf.Errc.ok then incr bad)
        eng
    in
    (* Submit the whole payload as chunked descriptors, one doorbell
       kick per batch of 8, overlapping "handler work" (a checksum
       loop) with the in-flight copies. *)
    let submitted = ref 0 and staged = ref 0 and overlap_sum = ref 0 in
    let off = ref 0 in
    while !off < bytes do
      let len = Stdlib.min chunk (bytes - !off) in
      (match
         Transfer.Copy_engine.submit cl ~op:Ipc_intf.Wellknown.bulk_copy
           ~src:src_id ~src_off:!off ~dst:dst_id ~dst_off:!off ~len
           ~tag:!submitted
       with
      | 0 ->
          incr submitted;
          incr staged;
          off := !off + len
      | rc when rc = Ipc_intf.Errc.retry ->
          (* Slab full: kick, do useful work, reap, try again. *)
          ignore (Transfer.Copy_engine.flush cl);
          for i = 0 to 255 do
            overlap_sum := !overlap_sum + i
          done;
          ignore (Transfer.Copy_engine.reap cl)
      | rc -> die "submit: rc %d@." rc);
      if !staged >= 8 then begin
        ignore (Transfer.Copy_engine.flush cl);
        staged := 0
      end
    done;
    ignore (Transfer.Copy_engine.flush cl);
    while Transfer.Copy_engine.outstanding cl > 0 do
      for i = 0 to 255 do
        overlap_sum := !overlap_sum + i
      done;
      ignore (Transfer.Copy_engine.reap cl)
    done;
    if not (Bytes.equal src dst) then die "payload mismatch after copy@.";
    if !completions <> !submitted || !bad <> 0 then
      die "completion accounting: %d/%d ok, %d bad@." !completions !submitted
        !bad;
    (* Zero-copy: hand the source region to client 7. *)
    (match
       Transfer.Copy_engine.submit cl ~op:Ipc_intf.Wellknown.bulk_grant
         ~src:src_id ~src_off:0 ~dst:7 ~dst_off:0 ~len:bytes ~tag:9999
     with
    | 0 -> ()
    | rc -> die "grant submit: rc %d@." rc);
    ignore (Transfer.Copy_engine.flush cl);
    while Transfer.Copy_engine.outstanding cl > 0 do
      ignore (Transfer.Copy_engine.reap cl)
    done;
    if Transfer.Copy_engine.Buffers.owner st src_id <> 7 then
      die "grant handoff did not transfer ownership@.";
    Transfer.Mover.shutdown mover;
    let s = Transfer.Copy_engine.stats eng in
    Fmt.pr
      "copy engine: %d descriptors (%d bytes in %d-byte chunks), 1 grant \
       handoff@."
      !submitted bytes chunk;
    Fmt.pr
      "  served %d;  %d bytes copied;  %d grants;  doorbell: %d rings, %d \
       wakes, %d sleeps@."
      s.Transfer.Copy_engine.served s.Transfer.Copy_engine.bytes_copied
      s.Transfer.Copy_engine.grants_completed s.Transfer.Copy_engine.doorbell_rings
      s.Transfer.Copy_engine.doorbell_wakes s.Transfer.Copy_engine.mover_parks;
    (* Mover death: in-flight descriptors must fail exactly once with
       handler_fault, and later submits must be refused. *)
    let eng2, st2 = Transfer.Copy_engine.create_with_buffers () in
    let id2 =
      match Transfer.Copy_engine.Buffers.add st2 ~owner:0 (Bytes.create 4096) with
      | Ok id -> id
      | Error rc -> die "region add: rc %d@." rc
    in
    let mover2 = Transfer.Mover.manual eng2 in
    let failed = ref 0 in
    let cl2 =
      Transfer.Copy_engine.connect
        ~on_complete:(fun ~tag:_ ~rc ->
          if rc = Ipc_intf.Errc.handler_fault then incr failed)
        eng2
    in
    for i = 0 to 15 do
      ignore
        (Transfer.Copy_engine.submit cl2 ~op:Ipc_intf.Wellknown.bulk_copy
           ~src:id2 ~src_off:0 ~dst:id2 ~dst_off:0 ~len:64 ~tag:i)
    done;
    ignore (Transfer.Copy_engine.flush cl2);
    Transfer.Mover.kill mover2;
    ignore (Transfer.Copy_engine.reap cl2);
    if !failed <> 16 then die "kill sweep: %d/16 failed@." !failed;
    if
      Transfer.Copy_engine.submit cl2 ~op:Ipc_intf.Wellknown.bulk_copy ~src:id2
        ~src_off:0 ~dst:id2 ~dst_off:0 ~len:64 ~tag:0
      <> Ipc_intf.Errc.killed
    then die "submit after mover death not refused@.";
    Fmt.pr
      "  kill-mover: 16 in-flight descriptors failed with handler_fault, \
       submit-after-death refused@."
  in
  let run bytes chunk sweep =
    run_engine_demo ~bytes ~chunk;
    if sweep then
      Fmt.pr "@.%a@." Experiments.Copy_sweep.pp_result
        (Experiments.Copy_sweep.run ())
  in
  Cmd.v
    (Cmd.info "copy"
       ~doc:
         "Demo the async bulk-data engine end-to-end on real domains: batched \
          descriptor submission with one doorbell kick per flush, handler \
          work overlapping in-flight copies, non-blocking completion reaping, \
          zero-copy grant handoff, and the kill-mover fail sweep.  With \
          $(b,--sweep), also print the deterministic simulated payload sweep")
    Term.(const (fun () a b c -> run a b c) $ logs_term $ bytes_arg $ chunk_arg
          $ sweep_arg)

(* --- shm: true cross-process PPC over an mmap'd segment -------------------- *)

module Shm = struct
  module W = Ipc_intf.Wire_abi
  module Ch = Runtime.Shm_channel
  module Errc = Ipc_intf.Errc

  (* The server process: attach the segment in the Server role, build a
     Fastcall table + control plane, and serve until the client
     announces shutdown or is found dead. *)
  let serve_path path =
    let srv = Ch.attach_file ~role:Ch.Server path in
    let fast = Runtime.Fastcall.create () in
    let ctl = Runtime.Control.install fast in
    Ch.serve srv ~dispatch:(Ch.fastcall_dispatch fast ctl)

  let fork_server path =
    match Unix.fork () with
    | 0 ->
        let code = match serve_path path with _ -> 0 | exception _ -> 1 in
        (* child: never return into cmdliner *)
        Stdlib.exit code
    | pid -> pid

  let temp_path () = Filename.temp_file "ppc_shm" ".seg"
  let cleanup path = try Sys.remove path with Sys_error _ -> ()

  let ctl_call ch fill =
    let a = Array.make 8 0 in
    fill a;
    let rc = Ch.call ch ~ep:W.ctl_ep a in
    (rc, a)

  let register_spec ch spec =
    let code, param = W.spec_to_wire spec in
    let rc, a =
      ctl_call ch (fun a ->
          a.(0) <- W.ctl_register;
          a.(1) <- code;
          a.(2) <- param)
    in
    if rc <> Errc.ok then
      failwith ("shm: server refused registration: " ^ Errc.to_string rc);
    a.(0)

  (* The conformance suite's shared-memory embodiment: every operation
     crosses a real process boundary.  One fresh server process per
     scenario, so a scenario that kills services cannot poison the
     next. *)
  module Shm_subject : Ipc_intf.Sigs.SUBJECT with type ep = int = struct
    type t = { path : string; pid : int; ch : Ch.t }
    type ep = int

    let name = "shm"

    let setup () =
      let path = temp_path () in
      ignore (Ch.create_file ~path ~capacity:16 () : Runtime.Segment.t);
      let pid = fork_server path in
      let ch = Ch.attach_file ~role:Ch.Client path in
      if not (Ch.wait_peer_ready ch) then
        failwith "shm: server process never became ready";
      { path; pid; ch }

    let teardown t =
      Ch.announce_shutdown t.ch;
      ignore (Unix.waitpid [] t.pid);
      cleanup t.path

    let register t spec = register_spec t.ch spec
    let id _ ep = W.handle_slot ep

    let publish t ~name ep =
      match W.pack_name name with
      | None -> Errc.bad_request
      | Some (w0, w1) ->
          fst
            (ctl_call t.ch (fun a ->
                 a.(0) <- W.ctl_publish;
                 a.(1) <- ep;
                 a.(2) <- w0;
                 a.(3) <- w1))

    let lookup t ~name =
      match W.pack_name name with
      | None -> Error Errc.bad_request
      | Some (w0, w1) ->
          let rc, a =
            ctl_call t.ch (fun a ->
                a.(0) <- W.ctl_lookup;
                a.(1) <- w0;
                a.(2) <- w1)
          in
          if rc = Errc.ok then Ok a.(0) else Error rc

    let call t ep a = Ch.call t.ch ~ep a
    let call_id t ~id a = Ch.call t.ch ~ep:(W.pack_raw_call id) a

    let exchange t ep spec =
      let code, param = W.spec_to_wire spec in
      fst
        (ctl_call t.ch (fun a ->
             a.(0) <- W.ctl_exchange;
             a.(1) <- ep;
             a.(2) <- code;
             a.(3) <- param))

    let soft_kill t ep =
      fst
        (ctl_call t.ch (fun a ->
             a.(0) <- W.ctl_soft_kill;
             a.(1) <- ep))

    let hard_kill t ep =
      fst
        (ctl_call t.ch (fun a ->
             a.(0) <- W.ctl_hard_kill;
             a.(1) <- ep))

    let in_flight t ep =
      let rc, a =
        ctl_call t.ch (fun a ->
            a.(0) <- W.ctl_in_flight;
            a.(1) <- ep)
      in
      if rc = Errc.ok then a.(0) else 0
  end

  module Conf = Ipc_intf.Conformance.Make (Shm_subject)

  let run_conformance () =
    Fmt.pr "shm conformance: client pid %d, one server process per scenario@."
      (Unix.getpid ());
    let failures = ref 0 in
    List.iter
      (fun (name, f) ->
        match f () with
        | () -> Fmt.pr "  [OK]   %s@." name
        | exception Conf.Violation m ->
            incr failures;
            Fmt.pr "  [FAIL] %s: %s@." name m
        | exception e ->
            incr failures;
            Fmt.pr "  [FAIL] %s: %s@." name (Printexc.to_string e))
      Conf.scenarios;
    if !failures > 0 then begin
      Fmt.epr "shm conformance: %d scenario(s) failed@." !failures;
      exit 1
    end;
    Fmt.pr "shm conformance: all %d scenarios green@."
      (List.length Conf.scenarios)

  (* Whole-process crash containment, self-checking: park four calls
     behind a napping handler, kill -9 the server, and demand that
     every in-flight call fails with handler_fault and every cell is
     recycled exactly once. *)
  let run_kill9 () =
    let fail fmt =
      Printf.ksprintf
        (fun m ->
          Fmt.epr "kill9: FAIL: %s@." m;
          exit 1)
        fmt
    in
    let path = temp_path () in
    ignore (Ch.create_file ~path ~capacity:8 () : Runtime.Segment.t);
    let pid = fork_server path in
    let ch = Ch.attach_file ~probe_window_ns:20_000_000 ~role:Ch.Client path in
    if not (Ch.wait_peer_ready ch) then fail "server never became ready";
    let napper = register_spec ch (Ipc_intf.Sigs.Nap_ms 50) in
    let a = Array.make 8 0 in
    let cells = Array.init 4 (fun _ -> Ch.submit_raw ch ~ep:napper a) in
    Array.iter
      (fun i -> if i < 0 then fail "submit: %s" (Errc.to_string i))
      cells;
    (* The server is mid-nap on the first call; the whole process dies.
       Reap before probing: a zombie still answers kill(pid, 0). *)
    Unix.kill pid Sys.sigkill;
    ignore (Unix.waitpid [] pid);
    Array.iteri
      (fun k i ->
        let rc = Ch.await ch i a in
        if rc <> Errc.handler_fault then
          fail "in-flight call %d: expected handler_fault, got %s" k
            (Errc.to_string rc))
      cells;
    if not (Ch.peer_dead ch) then fail "death verdict is not sticky";
    if Ch.peer_faults ch <> 4 then
      fail "peer_faults = %d, want 4" (Ch.peer_faults ch);
    if Ch.free_cells ch <> Ch.capacity ch then
      fail "only %d/%d cells recycled" (Ch.free_cells ch) (Ch.capacity ch);
    let again = Ch.sweep_dead_peer ch in
    if again <> 0 then fail "second sweep re-recycled %d cells" again;
    let rc = Ch.submit_raw ch ~ep:napper a in
    if rc <> Errc.peer_dead then
      fail "submit after the verdict: expected peer_dead, got %s"
        (Errc.to_string rc);
    cleanup path;
    Fmt.pr
      "kill9: PASS — server pid %d killed -9 mid-service; 4 in-flight calls \
       failed with handler_fault; %d/%d cells recycled exactly once; later \
       submits answer peer_dead@."
      pid (Ch.capacity ch) (Ch.capacity ch)

  (* Forked ping-pong demo: the smoke test for the cross-process path. *)
  let run_demo ~calls =
    let path = temp_path () in
    ignore (Ch.create_file ~path ~capacity:64 () : Runtime.Segment.t);
    let pid = fork_server path in
    let ch = Ch.attach_file ~role:Ch.Client path in
    if not (Ch.wait_peer_ready ch) then begin
      Fmt.epr "shm demo: server never became ready@.";
      exit 1
    end;
    let adder = register_spec ch Ipc_intf.Sigs.Add2 in
    let a = Array.make 8 0 in
    let bad = ref 0 in
    let run n =
      for i = 1 to n do
        a.(0) <- i;
        a.(1) <- 1;
        if Ch.call ch ~ep:adder a <> Errc.ok || a.(0) <> i + 1 then incr bad
      done
    in
    run (min 1000 calls) (* warm-up *);
    let t0 = Runtime.Doorbell.now_ns () in
    run calls;
    let dt = Runtime.Doorbell.now_ns () - t0 in
    Ch.announce_shutdown ch;
    ignore (Unix.waitpid [] pid);
    cleanup path;
    if !bad > 0 then begin
      Fmt.epr "shm demo: %d bad replies@." !bad;
      exit 1
    end;
    Fmt.pr
      "shm demo: %d cross-process PPCs (pid %d <-> pid %d): %.1f ms total, \
       %.0f ns/call round trip, %d doorbell rings@."
      calls (Unix.getpid ()) pid
      (float_of_int dt /. 1e6)
      (float_of_int dt /. float_of_int calls)
      (Ch.doorbell_rings ch)

  (* Manual pair: one terminal runs --server, another --client. *)
  let run_server ~path ~capacity =
    ignore (Ch.create_file ~path ~capacity () : Runtime.Segment.t);
    Fmt.pr "shm server: pid %d serving %s (capacity %d)@." (Unix.getpid ())
      path capacity;
    let served = serve_path path in
    Fmt.pr "shm server: client gone; served %d calls@." served

  let run_client ~path ~calls =
    let ch = Ch.attach_file ~role:Ch.Client path in
    let adder = register_spec ch Ipc_intf.Sigs.Add2 in
    let a = Array.make 8 0 in
    let bad = ref 0 in
    let t0 = Runtime.Doorbell.now_ns () in
    for i = 1 to calls do
      a.(0) <- i;
      a.(1) <- 1;
      if Ch.call ch ~ep:adder a <> Errc.ok || a.(0) <> i + 1 then incr bad
    done;
    let dt = Runtime.Doorbell.now_ns () - t0 in
    Ch.announce_shutdown ch;
    if !bad > 0 then begin
      Fmt.epr "shm client: %d bad replies@." !bad;
      exit 1
    end;
    Fmt.pr "shm client: %d calls against server pid %d, %.0f ns/call@." calls
      (Ch.peer_pid ch)
      (float_of_int dt /. float_of_int calls)
end

let shm_cmd =
  let scenario_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("demo", `Demo); ("conformance", `Conformance); ("kill9", `Kill9);
             ])
          `Demo
      & info [ "scenario" ] ~docv:"S"
          ~doc:
            "What to run: $(b,demo) (forked ping-pong smoke test), \
             $(b,conformance) (the control-plane conformance suite with the \
             server in a separate OS process, one per scenario), $(b,kill9) \
             (self-checking whole-process crash containment: in-flight calls \
             must fail with handler_fault and every cell recycle exactly \
             once).")
  in
  let server_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "server" ] ~docv:"PATH"
          ~doc:"Create segment PATH and serve it until the client departs.")
  in
  let client_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "client" ] ~docv:"PATH"
          ~doc:"Attach to segment PATH as the client and run a ping-pong.")
  in
  let calls_arg =
    Arg.(
      value & opt int 50_000
      & info [ "calls" ] ~docv:"N" ~doc:"Ping-pong calls (demo/client).")
  in
  let capacity_arg =
    Arg.(
      value & opt int 64
      & info [ "capacity" ] ~docv:"N"
          ~doc:"Segment cell count for --server (positive power of two).")
  in
  let run scenario server client calls capacity =
    match (server, client) with
    | Some _, Some _ ->
        Fmt.epr "--server and --client are mutually exclusive@.";
        exit 2
    | Some path, None -> Shm.run_server ~path ~capacity
    | None, Some path -> Shm.run_client ~path ~calls
    | None, None -> (
        match scenario with
        | `Demo -> Shm.run_demo ~calls
        | `Conformance -> Shm.run_conformance ()
        | `Kill9 -> Shm.run_kill9 ())
  in
  Cmd.v
    (Cmd.info "shm"
       ~doc:
         "Cross-process PPC over an mmap'd shared segment: forked demo, \
          conformance suite against a server in another OS process, kill -9 \
          crash-containment scenario, or a manual $(b,--server)/$(b,--client) \
          pair")
    Term.(
      const (fun () a b c d e -> run a b c d e)
      $ logs_term $ scenario_arg $ server_arg $ client_arg $ calls_arg
      $ capacity_arg)

(* --- chaos: process-level kill -9 chaos under open-loop load --------------- *)

let chaos_cmd =
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Schedule seed: kill thresholds, victims and pacing are a pure \
             function of it.")
  in
  let calls_arg =
    Arg.(
      value & opt int 4_000
      & info [ "calls" ] ~docv:"N" ~doc:"Call budget the client(s) must drain.")
  in
  let events_arg =
    Arg.(
      value & opt int 6
      & info [ "events" ] ~docv:"N"
          ~doc:"SIGKILLs to inject (victim drawn per event).")
  in
  let pace_arg =
    Arg.(
      value & opt float 60.
      & info [ "pace-us" ] ~docv:"US"
          ~doc:"Mean exponential inter-arrival of the open-loop load, in \u{00b5}s.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Write the per-seed verdict-reconciliation table (markdown) to \
             FILE (the CI failure artifact).")
  in
  let run seed calls events pace_us out =
    let r = Faultsim.Proc_chaos.run ~calls ~events ~pace_us ~seed () in
    Fmt.pr "%a@." Faultsim.Proc_chaos.pp_report r;
    (match out with
    | None -> ()
    | Some file ->
        let oc = open_out file in
        output_string oc (Faultsim.Proc_chaos.to_markdown r);
        close_out oc;
        Fmt.pr "wrote %s@." file);
    if not (Faultsim.Proc_chaos.ok r) then exit 1
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Process-level chaos against the shm transport: a supervised server \
          and a reconnecting session client under seeded open-loop load, \
          with SIGKILLs of either side at scheduled points; the run fails \
          unless the double-entry books balance exactly (every claimed call \
          one verdict, respawns = server kills, session releases = client \
          kills, reattaches = server kills, zero leaked cells)")
    Term.(
      const (fun () a b c d e -> run a b c d e)
      $ logs_term $ seed_arg $ calls_arg $ events_arg $ pace_arg $ out_arg)

(* --- traffic: the million-client open-loop study --------------------------- *)

let traffic_cmd =
  let profile_arg =
    Arg.(
      value
      & opt (enum [ ("full", `Full); ("quick", `Quick); ("slice", `Slice) ]) `Full
      & info [ "profile" ] ~docv:"P"
          ~doc:
            "Study size: $(b,full) (the million-arrival flagship), $(b,quick) \
             (seconds, CI smoke), $(b,slice) (the deterministic bench slice).")
  in
  let quick_arg =
    Arg.(value & flag & info [ "quick" ] ~doc:"Shorthand for --profile quick.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"BASE"
          ~doc:
            "Write the report to BASE.md and BASE.json in addition to \
             printing it.")
  in
  let diff_arg =
    Arg.(
      value & flag
      & info [ "diff" ]
          ~doc:
            "Compare two report JSON files instead of running the study: \
             $(b,ppc_sim traffic --diff OLD.json NEW.json).  Prints a \
             per-stage delta table and exits nonzero if any latency \
             percentile or throughput drifted beyond $(b,--tolerance) in the \
             worse direction, or if a run/stage vanished.")
  in
  let tolerance_arg =
    Arg.(
      value & opt float 0.25
      & info [ "tolerance" ] ~docv:"T"
          ~doc:
            "Relative drift tolerance for $(b,--diff) (0.25 = 25%). \
             Improvements never fail the gate.")
  in
  let files_arg =
    Arg.(value & pos_all file [] & info [] ~docv:"OLD.json NEW.json")
  in
  let run_diff tolerance files =
    match files with
    | [ old_path; new_path ] ->
        let o = Workload.Report_diff.diff_files ~tolerance old_path new_path in
        Fmt.pr "%s" (Workload.Report_diff.to_markdown ~tolerance o);
        if o.Workload.Report_diff.drifted then exit 1
    | _ ->
        Fmt.epr "traffic --diff needs exactly two files: OLD.json NEW.json@.";
        exit 2
  in
  let run profile quick out =
    let cfg =
      match (if quick then `Quick else profile) with
      | `Full -> Experiments.Traffic_study.full
      | `Quick -> Experiments.Traffic_study.quick
      | `Slice -> Experiments.Traffic_study.slice
    in
    let r = Experiments.Traffic_study.run ~cfg () in
    let report = Experiments.Traffic_study.report r in
    Fmt.pr "%s" (Workload.Report.to_markdown report);
    (match out with
    | None -> ()
    | Some base ->
        let write path s =
          let oc = open_out path in
          output_string oc s;
          close_out oc
        in
        write (base ^ ".md") (Workload.Report.to_markdown report);
        write (base ^ ".json")
          (Workload.Report.Json.to_string (Workload.Report.to_json report));
        Fmt.pr "wrote %s.md and %s.json@." base base);
    match report.Workload.Report.faults with
    | Some f when not f.Workload.Report.reconciled ->
        Fmt.epr "fault counts did not reconcile@.";
        exit 1
    | _ -> ()
  in
  Cmd.v
    (Cmd.info "traffic"
       ~doc:
         "Run the open-loop traffic study: a large logical client population \
          drives the lookup -> file-read -> copy service graph on the PPC \
          path and the legacy message-passing comparator, with a \
          fault-injected scenario whose error counts must reconcile exactly; \
          prints (and with $(b,--out) writes) the markdown + JSON report.  \
          With $(b,--diff OLD.json NEW.json), structurally compares two such \
          reports instead")
    Term.(
      const (fun () diff tolerance files a b c ->
          if diff then run_diff tolerance files
          else if files <> [] then begin
            Fmt.epr "traffic: stray positional arguments (did you mean --diff?)@.";
            Stdlib.exit 2
          end
          else run a b c)
      $ logs_term $ diff_arg $ tolerance_arg $ files_arg $ profile_arg
      $ quick_arg $ out_arg)

let () =
  let doc = "Simulated PPC IPC experiments (Gamsa, Krieger & Stumm 1994)" in
  let info = Cmd.info "ppc_sim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            fig2_cmd; fig3_cmd; t3_cmd; f3b_cmd; f3c_cmd; l1_cmd; a1_cmd;
            a2_cmd; a3_cmd; a4_cmd; a7_cmd; a8_cmd; a9_cmd; e1_cmd; e2_cmd; intro_cmd; trace_cmd;
            faults_cmd; channel_cmd; lifecycle_cmd; copy_cmd; traffic_cmd;
            shm_cmd; chaos_cmd;
          ]))
