(* The PPC design pattern on real OCaml 5 domains: per-domain frame pools
   (no locks, no allocation) versus a mutex-guarded shared registry.

     dune exec examples/multicore_fastcall.exe *)

let calls = 200_000

let time f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

let () =
  (* Lock-free per-domain path. *)
  let fast = Runtime.Fastcall.create () in
  let ep =
    Runtime.Fastcall.register fast (fun _ctx args ->
        args.(0) <- args.(0) + args.(1);
        args.(7) <- 0)
  in
  let args = Array.make 8 0 in
  let fast_s =
    time (fun () ->
        for i = 1 to calls do
          args.(0) <- i;
          args.(1) <- 1;
          ignore (Runtime.Fastcall.call fast ~ep args)
        done)
  in
  Fmt.pr "fastcall (per-domain pools): %d calls in %.3fs (%.0f ns/call)@." calls
    fast_s
    (1e9 *. fast_s /. float_of_int calls);

  (* Mutex-guarded shared-pool baseline. *)
  let locked = Runtime.Locked_registry.create () in
  let lep =
    Runtime.Locked_registry.register locked (fun _frame args ->
        args.(0) <- args.(0) + args.(1);
        args.(7) <- 0)
  in
  let locked_s =
    time (fun () ->
        for i = 1 to calls do
          args.(0) <- i;
          args.(1) <- 1;
          ignore (Runtime.Locked_registry.call locked ~ep:lep args)
        done)
  in
  Fmt.pr "locked registry (shared pool): %d calls in %.3fs (%.0f ns/call)@."
    calls locked_s
    (1e9 *. locked_s /. float_of_int calls);
  Fmt.pr "single-domain overhead ratio: %.2fx@." (locked_s /. fast_s);

  (* Cross-domain calls through the MPSC channel. *)
  let sd = Runtime.Fastcall.spawn_server fast in
  let n_cross = 2_000 in
  let cross_s =
    time (fun () ->
        for i = 1 to n_cross do
          args.(0) <- i;
          args.(1) <- 1;
          ignore (Runtime.Fastcall.cross_call sd ~ep args)
        done)
  in
  Runtime.Fastcall.shutdown_server sd;
  Fmt.pr "cross-domain MPSC (legacy):   %d calls in %.3fs (%.0f ns/call)@."
    n_cross cross_s
    (1e9 *. cross_s /. float_of_int n_cross);

  (* The zero-allocation channel path: request slab + SPSC ring +
     doorbell + batching server.  An uncontended call runs inline on
     the caller's domain under the shard ticket — the paper's PPC
     discipline — so it costs about as much as a local call. *)
  let srv = Runtime.Fastcall.spawn_channel_server fast in
  let cl = Runtime.Fastcall.connect srv in
  let n_chan = 50_000 in
  let chan_s =
    time (fun () ->
        for i = 1 to n_chan do
          args.(0) <- i;
          args.(1) <- 1;
          ignore (Runtime.Fastcall.channel_call cl ~ep args)
        done)
  in
  Fmt.pr "cross-domain channel:         %d calls in %.3fs (%.0f ns/call)@."
    n_chan chan_s
    (1e9 *. chan_s /. float_of_int n_chan);
  Fmt.pr "  of which inline on the caller's domain: %d;  served by shard: %d@."
    (Runtime.Fastcall.client_inlined cl)
    (Runtime.Fastcall.channel_served srv);
  let rings, wakes, parks = Runtime.Fastcall.channel_doorbell_stats srv in
  Fmt.pr "  doorbell: %d lock-free rings, %d wakes of a parked shard, %d sleeps@."
    rings wakes parks;
  Runtime.Fastcall.shutdown_channel_server srv;
  Fmt.pr
    "@.Local and uncontended cross-domain calls stay on the caller's domain@.\
     with pooled frames and preallocated request cells — the paper's@.\
     per-processor locality discipline, three decades later.@."
