(* Heavy-tailed samplers, all inverse-CDF or Box-Muller over the
   deterministic SplitMix64 stream: identical seed, identical stream.

   Truncation policy: the simulator's horizons are tens of milliseconds,
   so a single astronomically large draw (the lognormal's or Pareto's
   untruncated tail goes arbitrarily far out) would turn one unlucky
   arrival gap into "no arrivals at all".  Exponential inherits the
   20-mean truncation of [Sim.Rng.exponential]; Lognormal cuts at
   e^(mu + 6 sigma) (beyond 6 sigma of log-mass); Pareto is bounded by
   construction. *)

type t =
  | Constant of float
  | Exponential of { mean : float }
  | Lognormal of { mu : float; sigma : float }
  | Pareto of { xm : float; alpha : float; cap : float }

(* Standard normal by Box-Muller.  Consumes exactly two uniforms, so a
   stream of draws stays aligned run-to-run (no cached second value). *)
let normal rng =
  let u1 = Float.max 1e-12 (Sim.Rng.float rng 1.0) in
  let u2 = Sim.Rng.float rng 1.0 in
  Float.sqrt (-2.0 *. Float.log u1) *. Float.cos (2.0 *. Float.pi *. u2)

let draw t rng =
  match t with
  | Constant v -> v
  | Exponential { mean } -> Sim.Rng.exponential rng ~mean
  | Lognormal { mu; sigma } ->
      let z = normal rng in
      Float.min (Float.exp (mu +. (6.0 *. sigma))) (Float.exp (mu +. (sigma *. z)))
  | Pareto { xm; alpha; cap } ->
      (* Inverse CDF of the bounded Pareto on [xm, cap]:
         F(x) = (1 - (xm/x)^a) / (1 - (xm/cap)^a). *)
      let u = Sim.Rng.float rng 1.0 in
      let ratio = Float.pow (xm /. cap) alpha in
      xm *. Float.pow (1.0 -. (u *. (1.0 -. ratio))) (-1.0 /. alpha)

let mean = function
  | Constant v -> v
  | Exponential { mean } -> mean
  | Lognormal { mu; sigma } -> Float.exp (mu +. (sigma *. sigma /. 2.0))
  | Pareto { xm; alpha; cap } ->
      if Float.abs (alpha -. 1.0) < 1e-9 then
        (* alpha = 1: E = ln(cap/xm) / (1/xm - 1/cap) *)
        Float.log (cap /. xm) /. ((1.0 /. xm) -. (1.0 /. cap))
      else
        let la = Float.pow xm alpha in
        let num =
          la /. (1.0 -. Float.pow (xm /. cap) alpha)
          *. (alpha /. (alpha -. 1.0))
        in
        num *. ((1.0 /. Float.pow xm (alpha -. 1.0)) -. (1.0 /. Float.pow cap (alpha -. 1.0)))

let name = function
  | Constant v -> Printf.sprintf "const(%g)" v
  | Exponential { mean } -> Printf.sprintf "exp(%g)" mean
  | Lognormal { mu; sigma } -> Printf.sprintf "lognormal(%g,%g)" mu sigma
  | Pareto { xm; alpha; cap } -> Printf.sprintf "pareto(%g,%g,%g)" xm alpha cap
