(* Log-linear histogram (HdrHistogram-style, reduced to what the traffic
   study needs).

   Bucket layout for sub_bits = 5 (sub_buckets = 32):
   - values 0 .. 63 get exact unit buckets (index = value);
   - for v >= 64, let msb = floor(log2 v) (>= 6) and shift = msb - 5:
     index = 64 + (msb - 6) * 32 + ((v lsr shift) - 32).
     The bucket covering v spans [lower, lower + 2^shift - 1] with
     lower >= 32 * 2^shift, so bucket width <= lower / 32: any value
     reported off the bucket's upper edge is within +(1/32) relative
     error of the exact rank value, and never below it.

   Everything is a flat int array plus five scalar fields: record and
   merge allocate nothing, counts are conserved exactly, min/max/sum are
   tracked exactly. *)

let sub_bits = 5
let sub_buckets = 1 lsl sub_bits (* 32 *)
let unit_limit = 2 * sub_buckets (* 64: exact unit buckets below this *)
let rel_error_bound = 1.0 /. float_of_int sub_buckets

(* OCaml ints are 63-bit; msb of a positive int is at most 61.
   Highest index = unit_limit + (61 - 6) * 32 + 31. *)
let n_buckets = unit_limit + (((61 - sub_bits - 1) + 1) * sub_buckets)

type t = {
  counts : int array;
  mutable n : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
}

let create () =
  { counts = Array.make n_buckets 0; n = 0; sum = 0; min_v = max_int; max_v = 0 }

let msb v =
  (* position of the highest set bit; v >= 1 *)
  let x = ref v and r = ref 0 in
  while !x > 1 do
    x := !x lsr 1;
    incr r
  done;
  !r

let index_of v =
  if v < unit_limit then v
  else
    let m = msb v in
    let shift = m - sub_bits in
    unit_limit + ((m - (sub_bits + 1)) * sub_buckets) + ((v lsr shift) - sub_buckets)

(* Largest value mapping into bucket [i]: the quantile upper edge. *)
let upper_of i =
  if i < unit_limit then i
  else
    let k = (i - unit_limit) / sub_buckets in
    let off = (i - unit_limit) mod sub_buckets in
    let shift = k + 1 in
    (* lower = (32 + off) * 2^shift; width = 2^shift *)
    ((sub_buckets + off) lsl shift) + (1 lsl shift) - 1

let record t v =
  let v = if v < 0 then 0 else v in
  t.counts.(index_of v) <- t.counts.(index_of v) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum + v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let record_us t us = record t (Sim.Time.of_us_float us)

let count t = t.n
let min_value t = if t.n = 0 then 0 else t.min_v
let max_value t = t.max_v
let mean t = if t.n = 0 then 0.0 else float_of_int t.sum /. float_of_int t.n

let quantile t q =
  if t.n = 0 then 0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank =
      let r = int_of_float (Float.ceil (q *. float_of_int t.n)) in
      if r < 1 then 1 else r
    in
    let i = ref 0 and cum = ref 0 in
    while !cum < rank && !i < n_buckets do
      cum := !cum + t.counts.(!i);
      incr i
    done;
    (* !i - 1 is the bucket where the cumulative count reached rank. *)
    let v = upper_of (!i - 1) in
    let v = if v > t.max_v then t.max_v else v in
    if v < min_value t then min_value t else v
  end

let p50 t = quantile t 0.50
let p99 t = quantile t 0.99
let p999 t = quantile t 0.999

let merge_into ~dst ~src =
  for i = 0 to n_buckets - 1 do
    dst.counts.(i) <- dst.counts.(i) + src.counts.(i)
  done;
  dst.n <- dst.n + src.n;
  dst.sum <- dst.sum + src.sum;
  if src.n > 0 then begin
    if src.min_v < dst.min_v then dst.min_v <- src.min_v;
    if src.max_v > dst.max_v then dst.max_v <- src.max_v
  end

let copy t =
  {
    counts = Array.copy t.counts;
    n = t.n;
    sum = t.sum;
    min_v = t.min_v;
    max_v = t.max_v;
  }

let bucket_counts t = Array.copy t.counts
