(** Zipfian popularity sampler over [0, n). *)

type t

val create : n:int -> theta:float -> rng:Sim.Rng.t -> t
(** [theta] = 0 is uniform; larger is more skewed. *)

val n : t -> int
val sample : t -> int

val sample_u : t -> float -> int
(** [sample_u t u] inverts the CDF at [u]; total for any [u] (values
    outside [\[0, 1\]] clamp to the extremes), always in [\[0, n)].
    Lets many generators share one CDF table. *)
