(** FreeBSD-11-IPC-style performance-analysis report: one generated
    artifact per traffic-study run, as markdown (human) and JSON
    (machine, byte-stable for CI diffing).

    The JSON writer follows bench_json.ml's conventions — two-space
    indent, shortest round-trip-exact floats — so a deterministic run
    re-rendered anywhere yields identical bytes. *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Rendered with a trailing newline. *)
end

type stage_row = {
  stage : string;
  arrivals : int;  (** call attempts at this stage *)
  ok : int;
  errors : int;
  mean_us : float;
  p50_us : float;
  p99_us : float;
  p999_us : float;
  min_us : float;
  max_us : float;
}

val stage_row :
  stage:string -> arrivals:int -> ok:int -> errors:int -> hist:Hist.t -> stage_row
(** Fold a latency histogram (nanosecond values) into a table row in
    microseconds. *)

type run_section = {
  label : string;
  transport : string;  (** "ppc" or "legacy-msg" *)
  offered_per_sec : float;
  achieved_per_sec : float;
  arrivals : int;  (** scheduled arrivals (scenario executions) *)
  completions : int;
  run_errors : int;  (** arrivals that ended in an error after retries *)
  max_backlog_us : float;
  stages : stage_row list;
  end_to_end : stage_row;
}

type curve_point = {
  offered_per_sec : float;
  achieved_per_sec : float;
  p50_us : float;
  p99_us : float;
  p999_us : float;
}

type fault_check = {
  check : string;
  injected : int;  (** counted at the injection site (server side) *)
  observed : int;  (** counted at the clients *)
}

type fault_section = {
  checks : fault_check list;
  retried_ok : int;  (** rejected attempts recovered via re-lookup *)
  failed_arrivals : int;
  reconciled : bool;  (** every check has injected = observed *)
}

type t = {
  title : string;
  scenario : string list;  (** prose lines describing the setup *)
  runs : run_section list;
  curve : curve_point list;  (** throughput vs offered load *)
  comparator : (string * float * float) list;
      (** metric name, modern value, legacy value *)
  faults : fault_section option;
}

val reconcile : fault_check list -> bool

val to_markdown : t -> string
val to_json : t -> Json.t
