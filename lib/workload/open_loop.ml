(* Open-loop arrivals: the schedule is drawn independently of
   completions.

   Each lane keeps two independent generators split from the run seed:
   one consumed only for inter-arrival gaps (so the schedule — and hence
   the arrival count — is a pure function of seed, sampler and horizon),
   one for picking which logical client an arrival belongs to.  A lane
   that falls behind its schedule dispatches the backlog back-to-back;
   it never skips or re-draws an arrival.  All lanes share one Zipf CDF
   table over the client population (10^6 clients = one 8 MB table, not
   one per lane), sampled through each lane's own generator. *)

type arrival = {
  lane : int;
  seq : int;
  client : int;
  scheduled : Sim.Time.t;
}

type counters = {
  arrivals : int array;
  completions : int array;
  errors : int array;
  mutable last_completion : Sim.Time.t;
  mutable max_backlog : Sim.Time.t;
}

let sum = Array.fold_left ( + ) 0
let total_arrivals c = sum c.arrivals
let total_completions c = sum c.completions
let total_errors c = sum c.errors

let achieved_per_sec c ~horizon =
  let span = if Sim.Time.(horizon < c.last_completion) then c.last_completion else horizon in
  let secs = Sim.Time.to_s span in
  if secs <= 0.0 then 0.0 else float_of_int (total_completions c) /. secs

let run ?(start = Sim.Time.zero) ?prepare ?latency ?queue_delay kern ~lanes
    ~clients ~client_theta ~horizon ~seed ~interarrival ~body =
  if lanes <= 0 then invalid_arg "Open_loop.run: lanes must be positive";
  if clients <= 0 then invalid_arg "Open_loop.run: clients must be positive";
  let engine = Kernel.engine kern in
  let n_cpus = Kernel.n_cpus kern in
  let counters =
    {
      arrivals = Array.make lanes 0;
      completions = Array.make lanes 0;
      errors = Array.make lanes 0;
      last_completion = Sim.Time.zero;
      max_backlog = Sim.Time.zero;
    }
  in
  (* One shared popularity table; uniform skips the table entirely. *)
  let shared_cdf =
    if client_theta = 0.0 then None
    else
      Some
        (Zipf.create ~n:clients ~theta:client_theta
           ~rng:(Sim.Rng.create ~seed:(seed + 17)))
  in
  for lane = 0 to lanes - 1 do
    let sched_rng = Sim.Rng.create ~seed:(seed + (7919 * (lane + 1))) in
    let pick_rng = Sim.Rng.create ~seed:(seed + (104729 * (lane + 1))) in
    let pick_client () =
      match shared_cdf with
      | None -> Sim.Rng.int pick_rng clients
      | Some z -> Zipf.sample_u z (Sim.Rng.float pick_rng 1.0)
    in
    let name = Printf.sprintf "lane-%d" lane in
    let cpu = lane mod n_cpus in
    let kc = Kernel.kcpu kern cpu in
    let program = Kernel.new_program kern ~name in
    let space = Kernel.new_user_space kern ~name ~node:cpu in
    (match prepare with None -> () | Some f -> f ~lane ~program);
    ignore
      (Kernel.spawn kern ~cpu ~name ~kind:Kernel.Process.Client ~program ~space
         (fun self ->
           let rec go seq at =
             let gap = Sampler.draw interarrival sched_rng in
             let at = Sim.Time.add at (Sim.Time.of_us_float gap) in
             if Sim.Time.(at < horizon) then begin
               counters.arrivals.(lane) <- counters.arrivals.(lane) + 1;
               (* A timed park, not [Sim.Engine.delay]: the lane must
                  release the CPU so co-scheduled lanes and management
                  processes run during the wait. *)
               Kernel.Kcpu.sleep_until kc self ~wake:at;
               let dispatched = Sim.Engine.now engine in
               let backlog = Sim.Time.sub dispatched at in
               if Sim.Time.(counters.max_backlog < backlog) then
                 counters.max_backlog <- backlog;
               (match queue_delay with
               | None -> ()
               | Some h -> Hist.record h backlog);
               let client = pick_client () in
               let rc = body ~self { lane; seq; client; scheduled = at } in
               let finished = Sim.Engine.now engine in
               (match latency with
               | None -> ()
               | Some h -> Hist.record h (Sim.Time.sub finished at));
               if rc = 0 then
                 counters.completions.(lane) <- counters.completions.(lane) + 1
               else counters.errors.(lane) <- counters.errors.(lane) + 1;
               if Sim.Time.(counters.last_completion < finished) then
                 counters.last_completion <- finished;
               go (seq + 1) at
             end
           in
           go 0 start))
  done;
  counters
