(* Structural comparison of two traffic-report JSON files — the
   regression gate for `ppc_sim traffic --diff OLD.json NEW.json`.

   Runs are matched by label, stages by name, and the latency
   percentiles (mean/p50/p99/p999) plus the run-level achieved
   throughput are compared under a relative tolerance.  The gate is
   one-sided: only drift in the *worse* direction (latency up,
   throughput down) beyond the tolerance fails; improvements are
   reported but never block.  A run or stage present in OLD but missing
   from NEW is always a failure — a silently vanished stage is the
   worst kind of drift.

   The parser below reads only the JSON subset [Report.Json.write]
   emits (null/bool/number/string/array/object, standard escapes), so
   the two ends of the pipeline stay one self-contained pair. *)

(* --- a minimal JSON reader ------------------------------------------------- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "at byte %d: %s" !pos msg)) in
  let peek () = if !pos < n then s.[!pos] else '\255' in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\t' | '\n' | '\r' ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () <> c then fail (Printf.sprintf "expected %c" c) else advance ()
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' -> (
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              if !pos + 4 >= n then fail "truncated \\u escape";
              let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
              pos := !pos + 4;
              (* the writer only emits \u for control bytes *)
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else fail "non-ascii \\u escape"
          | _ -> fail "bad escape");
          advance ();
          go ())
      | '\255' -> fail "unterminated string"
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while num_char (peek ()) do
      advance ()
    done;
    if !pos = start then fail "expected a number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | 'n' -> literal "null" Null
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | '"' -> Str (parse_string ())
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then (
          advance ();
          Arr [])
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                items (v :: acc)
            | ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ] in array"
          in
          Arr (items [])
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then (
          advance ();
          Obj [])
        else
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                fields (kv :: acc)
            | '}' ->
                advance ();
                List.rev (kv :: acc)
            | _ -> fail "expected , or } in object"
          in
          Obj (fields [])
    | _ -> parse_number () |> fun f -> Num f
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))

(* --- accessors ------------------------------------------------------------- *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

let str_field key j =
  match member key j with Some (Str s) -> Some s | _ -> None

let num_field key j =
  match member key j with Some (Num f) -> Some f | _ -> None

let arr_field key j = match member key j with Some (Arr l) -> l | _ -> []

(* --- the comparison -------------------------------------------------------- *)

type verdict = Better | Same | Worse

type delta = {
  run : string;
  stage : string;  (** "(run)" for run-level metrics *)
  metric : string;
  old_v : float;
  new_v : float;
  rel : float;  (** signed relative change, worse direction positive *)
  verdict : verdict;
}

type outcome = {
  deltas : delta list;
  missing : string list;  (** runs/stages in OLD absent from NEW *)
  drifted : bool;  (** any Worse delta beyond tolerance, or any missing *)
}

(* Latency metrics are compared per stage and end-to-end; higher is
   worse.  Throughput is run-level; lower is worse. *)
let latency_metrics = [ "mean_us"; "p50_us"; "p99_us"; "p999_us" ]

let classify ~tolerance ~higher_is_worse old_v new_v =
  (* Relative change, oriented so positive = worse.  Sub-microsecond
     noise floors divide-by-almost-zero into meaninglessness; treat a
     vanishing baseline as an absolute comparison against itself. *)
  let base = Float.max (Float.abs old_v) 1e-9 in
  let change = (new_v -. old_v) /. base in
  let rel = if higher_is_worse then change else -.change in
  let verdict =
    if rel > tolerance then Worse
    else if rel < -.tolerance then Better
    else Same
  in
  (rel, verdict)

let diff_stage ~tolerance ~run ~stage old_j new_j acc =
  List.fold_left
    (fun acc metric ->
      match (num_field metric old_j, num_field metric new_j) with
      | Some old_v, Some new_v ->
          let rel, verdict =
            classify ~tolerance ~higher_is_worse:true old_v new_v
          in
          { run; stage; metric; old_v; new_v; rel; verdict } :: acc
      | _ -> acc)
    acc latency_metrics

let diff ?(tolerance = 0.25) old_json new_json =
  (* A report may carry the same label on both transports (modern and
     legacy comparator runs), so the match key is label + transport. *)
  let runs j =
    List.filter_map
      (fun r ->
        Option.map
          (fun l ->
            let key =
              match str_field "transport" r with
              | Some tr -> l ^ " [" ^ tr ^ "]"
              | None -> l
            in
            (key, r))
          (str_field "label" r))
      (arr_field "runs" j)
  in
  let old_runs = runs old_json and new_runs = runs new_json in
  let missing = ref [] in
  let deltas = ref [] in
  List.iter
    (fun (label, old_run) ->
      match List.assoc_opt label new_runs with
      | None -> missing := Printf.sprintf "run %S" label :: !missing
      | Some new_run ->
          (match
             ( num_field "achieved_per_sec" old_run,
               num_field "achieved_per_sec" new_run )
           with
          | Some old_v, Some new_v ->
              let rel, verdict =
                classify ~tolerance ~higher_is_worse:false old_v new_v
              in
              deltas :=
                {
                  run = label;
                  stage = "(run)";
                  metric = "achieved_per_sec";
                  old_v;
                  new_v;
                  rel;
                  verdict;
                }
                :: !deltas
          | _ -> ());
          let stages r =
            List.filter_map
              (fun s -> Option.map (fun n -> (n, s)) (str_field "stage" s))
              (arr_field "stages" r)
          in
          let new_stages = stages new_run in
          List.iter
            (fun (stage, old_stage) ->
              match List.assoc_opt stage new_stages with
              | None ->
                  missing :=
                    Printf.sprintf "run %S stage %S" label stage :: !missing
              | Some new_stage ->
                  deltas :=
                    diff_stage ~tolerance ~run:label ~stage old_stage new_stage
                      !deltas)
            (stages old_run);
          (match (member "end_to_end" old_run, member "end_to_end" new_run) with
          | Some o, Some n ->
              deltas :=
                diff_stage ~tolerance ~run:label ~stage:"end_to_end" o n
                  !deltas
          | _ -> ()))
    old_runs;
  let deltas = List.rev !deltas in
  let missing = List.rev !missing in
  {
    deltas;
    missing;
    drifted =
      missing <> [] || List.exists (fun d -> d.verdict = Worse) deltas;
  }

let diff_files ?tolerance old_path new_path =
  diff ?tolerance (parse_file old_path) (parse_file new_path)

(* --- rendering ------------------------------------------------------------- *)

let to_markdown ?(tolerance = 0.25) o =
  let b = Buffer.create 4096 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  bpf "## Traffic report drift (tolerance %.0f%%, worse-direction only)\n\n"
    (100.0 *. tolerance);
  if o.missing <> [] then begin
    bpf "### Missing from NEW\n\n";
    List.iter (fun m -> bpf "- %s\n" m) o.missing;
    bpf "\n"
  end;
  bpf "| run | stage | metric | old | new | drift | verdict |\n";
  bpf "|---|---|---|---:|---:|---:|---|\n";
  List.iter
    (fun d ->
      bpf "| %s | %s | %s | %.2f | %.2f | %+.1f%% | %s |\n" d.run d.stage
        d.metric d.old_v d.new_v
        (100.0 *. d.rel)
        (match d.verdict with
        | Worse -> "**WORSE**"
        | Better -> "better"
        | Same -> "ok"))
    o.deltas;
  let worse = List.length (List.filter (fun d -> d.verdict = Worse) o.deltas) in
  bpf "\n%d metrics compared, %d beyond tolerance in the worse direction%s.\n"
    (List.length o.deltas) worse
    (if o.missing = [] then ""
     else Printf.sprintf ", %d missing" (List.length o.missing));
  bpf "Verdict: **%s**\n" (if o.drifted then "DRIFT" else "clean");
  Buffer.contents b
