(* Report rendering.  The markdown is for humans (CI uploads it as a
   build artifact); the JSON is for machines and must be byte-stable, so
   the writer mirrors bench_json.ml: two-space indent, shortest
   round-trip-exact float representation, sorted nothing (field order is
   authorial and fixed). *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let escape b s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\t' -> Buffer.add_string b "\\t"
        | '\r' -> Buffer.add_string b "\\r"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s

  let float_repr f =
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
    else
      let s = Printf.sprintf "%.12g" f in
      if float_of_string s = f then s else Printf.sprintf "%.17g" f

  let rec write b indent v =
    let pad n = Buffer.add_string b (String.make n ' ') in
    match v with
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (if x then "true" else "false")
    | Num f ->
        Buffer.add_string b (if Float.is_nan f then "null" else float_repr f)
    | Str s ->
        Buffer.add_char b '"';
        escape b s;
        Buffer.add_char b '"'
    | Arr [] -> Buffer.add_string b "[]"
    | Arr xs ->
        Buffer.add_string b "[\n";
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_string b ",\n";
            pad (indent + 2);
            write b (indent + 2) x)
          xs;
        Buffer.add_char b '\n';
        pad indent;
        Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj kvs ->
        Buffer.add_string b "{\n";
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_string b ",\n";
            pad (indent + 2);
            Buffer.add_char b '"';
            escape b k;
            Buffer.add_string b "\": ";
            write b (indent + 2) x)
          kvs;
        Buffer.add_char b '\n';
        pad indent;
        Buffer.add_char b '}'

  let to_string v =
    let b = Buffer.create 4096 in
    write b 0 v;
    Buffer.add_char b '\n';
    Buffer.contents b
end

type stage_row = {
  stage : string;
  arrivals : int;
  ok : int;
  errors : int;
  mean_us : float;
  p50_us : float;
  p99_us : float;
  p999_us : float;
  min_us : float;
  max_us : float;
}

let us_of_ns ns = float_of_int ns /. 1000.0

let stage_row ~stage ~arrivals ~ok ~errors ~hist =
  {
    stage;
    arrivals;
    ok;
    errors;
    mean_us = Hist.mean hist /. 1000.0;
    p50_us = us_of_ns (Hist.p50 hist);
    p99_us = us_of_ns (Hist.p99 hist);
    p999_us = us_of_ns (Hist.p999 hist);
    min_us = us_of_ns (Hist.min_value hist);
    max_us = us_of_ns (Hist.max_value hist);
  }

type run_section = {
  label : string;
  transport : string;
  offered_per_sec : float;
  achieved_per_sec : float;
  arrivals : int;
  completions : int;
  run_errors : int;
  max_backlog_us : float;
  stages : stage_row list;
  end_to_end : stage_row;
}

type curve_point = {
  offered_per_sec : float;
  achieved_per_sec : float;
  p50_us : float;
  p99_us : float;
  p999_us : float;
}

type fault_check = { check : string; injected : int; observed : int }

type fault_section = {
  checks : fault_check list;
  retried_ok : int;
  failed_arrivals : int;
  reconciled : bool;
}

type t = {
  title : string;
  scenario : string list;
  runs : run_section list;
  curve : curve_point list;
  comparator : (string * float * float) list;
  faults : fault_section option;
}

let reconcile checks =
  List.for_all (fun c -> c.injected = c.observed) checks

(* --- markdown ------------------------------------------------------------- *)

let bpf = Printf.bprintf

let md_stage_table b rows =
  bpf b "| stage | calls | ok | err | mean µs | p50 µs | p99 µs | p999 µs | max µs |\n";
  bpf b "|---|---:|---:|---:|---:|---:|---:|---:|---:|\n";
  List.iter
    (fun r ->
      bpf b "| %s | %d | %d | %d | %.1f | %.1f | %.1f | %.1f | %.1f |\n"
        r.stage r.arrivals r.ok r.errors r.mean_us r.p50_us r.p99_us r.p999_us
        r.max_us)
    rows

let md_run b r =
  bpf b "### %s (%s)\n\n" r.label r.transport;
  bpf b
    "offered %.0f/s, achieved %.0f/s; %d arrivals, %d completed, %d failed; \
     max lane backlog %.1f µs\n\n"
    r.offered_per_sec r.achieved_per_sec r.arrivals r.completions r.run_errors
    r.max_backlog_us;
  md_stage_table b (r.stages @ [ r.end_to_end ]);
  bpf b "\n"

let to_markdown t =
  let b = Buffer.create 4096 in
  bpf b "# %s\n\n" t.title;
  List.iter (fun line -> bpf b "%s\n" line) t.scenario;
  bpf b "\n";
  List.iter (md_run b) t.runs;
  if t.curve <> [] then begin
    bpf b "### Throughput vs offered load\n\n";
    bpf b "| offered/s | achieved/s | p50 µs | p99 µs | p999 µs |\n";
    bpf b "|---:|---:|---:|---:|---:|\n";
    List.iter
      (fun p ->
        bpf b "| %.0f | %.0f | %.1f | %.1f | %.1f |\n" p.offered_per_sec
          p.achieved_per_sec p.p50_us p.p99_us p.p999_us)
      t.curve;
    bpf b "\n"
  end;
  if t.comparator <> [] then begin
    bpf b "### Channel vs legacy message-passing IPC\n\n";
    bpf b "| metric | modern (ppc) | legacy (msg) | legacy/modern |\n";
    bpf b "|---|---:|---:|---:|\n";
    List.iter
      (fun (name, modern, legacy) ->
        let ratio = if modern = 0.0 then Float.nan else legacy /. modern in
        bpf b "| %s | %.1f | %.1f | %.2fx |\n" name modern legacy ratio)
      t.comparator;
    bpf b "\n"
  end;
  (match t.faults with
  | None -> ()
  | Some f ->
      bpf b "### Fault injection reconciliation\n\n";
      bpf b "| check | injected | observed |\n|---|---:|---:|\n";
      List.iter
        (fun c -> bpf b "| %s | %d | %d |\n" c.check c.injected c.observed)
        f.checks;
      bpf b "\n%d rejected attempts recovered by re-lookup; %d arrivals failed.\n"
        f.retried_ok f.failed_arrivals;
      bpf b "Reconciled: **%s** — every client-observed error is accounted to \
             an injected fault, one for one.\n\n"
        (if f.reconciled then "yes" else "NO"));
  Buffer.contents b

(* --- json ----------------------------------------------------------------- *)

let json_stage r =
  Json.Obj
    [
      ("stage", Json.Str r.stage);
      ("calls", Json.Num (float_of_int r.arrivals));
      ("ok", Json.Num (float_of_int r.ok));
      ("errors", Json.Num (float_of_int r.errors));
      ("mean_us", Json.Num r.mean_us);
      ("p50_us", Json.Num r.p50_us);
      ("p99_us", Json.Num r.p99_us);
      ("p999_us", Json.Num r.p999_us);
      ("min_us", Json.Num r.min_us);
      ("max_us", Json.Num r.max_us);
    ]

let json_run r =
  Json.Obj
    [
      ("label", Json.Str r.label);
      ("transport", Json.Str r.transport);
      ("offered_per_sec", Json.Num r.offered_per_sec);
      ("achieved_per_sec", Json.Num r.achieved_per_sec);
      ("arrivals", Json.Num (float_of_int r.arrivals));
      ("completions", Json.Num (float_of_int r.completions));
      ("errors", Json.Num (float_of_int r.run_errors));
      ("max_backlog_us", Json.Num r.max_backlog_us);
      ("stages", Json.Arr (List.map json_stage r.stages));
      ("end_to_end", json_stage r.end_to_end);
    ]

let to_json t =
  Json.Obj
    [
      ("title", Json.Str t.title);
      ("scenario", Json.Arr (List.map (fun s -> Json.Str s) t.scenario));
      ("runs", Json.Arr (List.map json_run t.runs));
      ( "curve",
        Json.Arr
          (List.map
             (fun p ->
               Json.Obj
                 [
                   ("offered_per_sec", Json.Num p.offered_per_sec);
                   ("achieved_per_sec", Json.Num p.achieved_per_sec);
                   ("p50_us", Json.Num p.p50_us);
                   ("p99_us", Json.Num p.p99_us);
                   ("p999_us", Json.Num p.p999_us);
                 ])
             t.curve) );
      ( "comparator",
        Json.Arr
          (List.map
             (fun (name, modern, legacy) ->
               Json.Obj
                 [
                   ("metric", Json.Str name);
                   ("modern", Json.Num modern);
                   ("legacy", Json.Num legacy);
                 ])
             t.comparator) );
      ( "faults",
        match t.faults with
        | None -> Json.Null
        | Some f ->
            Json.Obj
              [
                ( "checks",
                  Json.Arr
                    (List.map
                       (fun c ->
                         Json.Obj
                           [
                             ("check", Json.Str c.check);
                             ("injected", Json.Num (float_of_int c.injected));
                             ("observed", Json.Num (float_of_int c.observed));
                           ])
                       f.checks) );
                ("retried_ok", Json.Num (float_of_int f.retried_ok));
                ("failed_arrivals", Json.Num (float_of_int f.failed_arrivals));
                ("reconciled", Json.Bool f.reconciled);
              ] );
    ]
