(* Zipfian sampler over [0, n), for skewed object-popularity workloads
   (e.g. file popularity between the two Figure 3 extremes). *)

type t = { cdf : float array; rng : Sim.Rng.t }

let create ~n ~theta ~rng =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if theta < 0.0 then invalid_arg "Zipf.create: theta must be >= 0";
  let weights = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) theta) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  cdf.(n - 1) <- 1.0;
  { cdf; rng }

let n t = Array.length t.cdf

(* Binary search for the first index with cdf >= u.  The search range is
   [0, n-1], so any u — including exactly 1.0, which [Sim.Rng.float]
   never produces but external callers may pass — lands in [0, n). *)
let sample_u t u =
  let rec go lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if t.cdf.(mid) >= u then go lo mid else go (mid + 1) hi
    end
  in
  go 0 (Array.length t.cdf - 1)

let sample t = sample_u t (Sim.Rng.float t.rng 1.0)
