(** Heavy-tailed samplers for open-loop traffic generation.

    Every sampler is a pure function of an explicit {!Sim.Rng.t}, so a
    stream replays bit-for-bit from its seed.  Values are positive
    floats (microseconds, bytes, ...); distributions with unbounded
    support are truncated so event horizons stay finite. *)

type t =
  | Constant of float  (** always [v] — deterministic pacing *)
  | Exponential of { mean : float }
      (** Poisson arrivals; truncated at [20 * mean] *)
  | Lognormal of { mu : float; sigma : float }
      (** log-scale mean/stddev; truncated at [e^(mu + 6 sigma)] *)
  | Pareto of { xm : float; alpha : float; cap : float }
      (** bounded Pareto on [\[xm, cap\]]: tail index [alpha], the
          classic heavy-tailed service/payload distribution *)

val draw : t -> Sim.Rng.t -> float
(** One sample; consumes one or two uniforms from the generator. *)

val mean : t -> float
(** Analytic mean of the (truncated, for Pareto) distribution.
    Lognormal and Exponential return the untruncated mean — their
    truncation points are far enough out that the error is below any
    test tolerance. *)

val name : t -> string
(** Short stable name, e.g. ["pareto(64,1.3,4096)"] — used in reports. *)

val normal : Sim.Rng.t -> float
(** Standard normal via Box–Muller (one sample per two uniforms). *)
