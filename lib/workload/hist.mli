(** Log-bucket latency histogram: fixed memory, zero-allocation record,
    mergeable, with a hard relative-error bound on reported quantiles.

    Values are non-negative integers (nanoseconds by convention).  The
    layout is log-linear: exact unit buckets below 64, then 32
    sub-buckets per power of two, so any reported quantile [r] for an
    exact rank value [x] satisfies [x <= r <= x * (1 + 1/32)].  Counts
    are exactly conserved under [record] and [merge_into], and min/max
    are tracked exactly. *)

type t

val create : unit -> t

val sub_buckets : int
(** 32 — sub-buckets per octave; the relative error bound is
    [1 /. float sub_buckets]. *)

val rel_error_bound : float

val n_buckets : int
(** Fixed bucket-array length (the whole 62-bit value range). *)

val record : t -> int -> unit
(** Record one value; negative values clamp to 0.  Allocation-free. *)

val record_us : t -> float -> unit
(** Convenience: record a latency given in (possibly fractional)
    microseconds; rounded to nanoseconds. *)

val count : t -> int
val min_value : t -> int
(** Exact smallest recorded value; 0 when empty. *)

val max_value : t -> int
(** Exact largest recorded value; 0 when empty. *)

val mean : t -> float
(** Exact mean of recorded values (sum tracked separately); 0 when
    empty. *)

val quantile : t -> float -> int
(** [quantile t q] for [q] in [\[0, 1\]]: an upper bound on the value at
    rank [ceil (q * count)], within the relative-error bound and clamped
    to [\[min_value, max_value\]].  0 when empty. *)

val p50 : t -> int
val p99 : t -> int
val p999 : t -> int

val merge_into : dst:t -> src:t -> unit
(** Bucket-wise sum; [src] is unchanged.  Associative and commutative:
    any merge tree over disjoint recordings yields byte-identical state
    to recording everything into one histogram. *)

val copy : t -> t
(** Independent snapshot. *)

val bucket_counts : t -> int array
(** A copy of the raw bucket array (tests: count conservation, merge
    equivalence). *)
