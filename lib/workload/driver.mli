(** Closed-loop client drivers for throughput experiments.

    Both variants here are closed-loop: a client issues its next
    operation only after the previous one completed.  [think_mean_us]
    adds exponential think time between completion and the next issue —
    closed-loop-with-think-time, the standard comparator whose offered
    rate backs off under server slowdown.  Open-loop load (arrival
    schedule independent of completions) lives in {!Open_loop}. *)

type counters

val total : counters -> int
val throughput_per_sec : counters -> float

type spec = {
  cpu : int;
  name : string;
  think_mean_us : float option;
      (** [None] = back-to-back; [Some m] = closed-loop with exponential
          think time of mean [m] us between completion and next issue *)
  identity : (Kernel.Program.t * Kernel.Address_space.t) option;
}

val closed_spec :
  ?identity:Kernel.Program.t * Kernel.Address_space.t ->
  cpu:int ->
  name:string ->
  unit ->
  spec

val one_per_cpu :
  ?identity:Kernel.Program.t * Kernel.Address_space.t ->
  n:int ->
  name_prefix:string ->
  unit ->
  spec list
(** [n] closed-loop clients on CPUs 0..n-1; [identity] makes them
    threads of one parallel program. *)

val run :
  ?prepare:(program:Kernel.Program.t -> index:int -> unit) ->
  Kernel.t ->
  specs:spec list ->
  horizon:Sim.Time.t ->
  seed:int ->
  body:(client:Kernel.Process.t -> iteration:int -> unit) ->
  counters
(** Spawn the clients (each with its own program and address space); they
    loop [body] until the horizon.  Drive the simulation afterwards with
    [Kernel.run]. *)
