(** Structural drift comparison of two traffic-report JSON files (the
    [`ppc_sim traffic --diff`] gate).  Runs are matched by label and
    stages by name; latency percentiles and run-level throughput are
    compared under a relative tolerance, failing only in the worse
    direction (latency up, throughput down).  Anything present in OLD
    but missing from NEW is always drift. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

val parse : string -> json
(** Parse the JSON subset {!Report.Json.write} emits.
    @raise Parse_error on malformed input. *)

val parse_file : string -> json

type verdict = Better | Same | Worse

type delta = {
  run : string;
  stage : string;  (** ["(run)"] for run-level metrics *)
  metric : string;
  old_v : float;
  new_v : float;
  rel : float;  (** signed relative change, worse direction positive *)
  verdict : verdict;
}

type outcome = {
  deltas : delta list;
  missing : string list;  (** runs/stages in OLD absent from NEW *)
  drifted : bool;  (** any [Worse] delta, or anything missing *)
}

val diff : ?tolerance:float -> json -> json -> outcome
(** [tolerance] is relative (default 0.25 = 25%). *)

val diff_files : ?tolerance:float -> string -> string -> outcome

val to_markdown : ?tolerance:float -> outcome -> string
(** The per-stage delta table.  [tolerance] only labels the header —
    pass the same value given to {!diff}. *)
