(* Closed-loop workload drivers.

   Each spec spawns one client process; the client loops its operation
   back-to-back until the horizon and counts completed iterations — the
   load pattern of the paper's Figure 3 ("independent clients repeatedly
   requesting...").

   [think_mean_us = Some m] inserts exponentially distributed think time
   between operations.  That is still CLOSED-LOOP: the next gap is drawn
   only after the previous reply arrives, so the issue rate backs off
   whenever the server slows down and the iteration count depends on
   per-op service time.  (An earlier header here advertised this as
   "open loop"; it is not — it is the classic closed-loop-with-think-time
   comparator.)  For genuinely open-loop arrivals — a schedule drawn
   independently of completions — use {!Open_loop}. *)

type counters = {
  per_client : int array;
  mutable horizon : Sim.Time.t;
}

let total c = Array.fold_left ( + ) 0 c.per_client

let throughput_per_sec c =
  let secs = Sim.Time.to_s c.horizon in
  if secs <= 0.0 then 0.0 else float_of_int (total c) /. secs

type spec = {
  cpu : int;
  name : string;
  think_mean_us : float option;  (** [None] = closed loop *)
  identity : (Kernel.Program.t * Kernel.Address_space.t) option;
      (** share one program/address space across clients (threads of a
          single parallel program); [None] = a fresh program each *)
}

let closed_spec ?identity ~cpu ~name () =
  { cpu; name; think_mean_us = None; identity }

(* Spawn the clients; each runs [body] repeatedly until [horizon]. [body]
   receives the client process and the iteration number. *)
let run ?prepare kern ~specs ~horizon ~seed ~body =
  let engine = Kernel.engine kern in
  let counters =
    { per_client = Array.make (List.length specs) 0; horizon }
  in
  List.iteri
    (fun i spec ->
      let rng = Sim.Rng.create ~seed:(seed + (1000 * i)) in
      let program, space =
        match spec.identity with
        | Some (program, space) -> (program, space)
        | None ->
            ( Kernel.new_program kern ~name:spec.name,
              Kernel.new_user_space kern ~name:spec.name ~node:spec.cpu )
      in
      (match prepare with None -> () | Some f -> f ~program ~index:i);
      ignore
        (Kernel.spawn kern ~cpu:spec.cpu ~name:spec.name
           ~kind:Kernel.Process.Client ~program ~space (fun self ->
             let rec loop n =
               if Sim.Time.(Sim.Engine.now engine < horizon) then begin
                 body ~client:self ~iteration:n;
                 counters.per_client.(i) <- counters.per_client.(i) + 1;
                 (match spec.think_mean_us with
                 | None -> ()
                 | Some mean ->
                     Sim.Engine.delay engine
                       (Sim.Time.of_us_float (Sim.Rng.exponential rng ~mean)));
                 loop (n + 1)
               end
             in
             loop 0)))
    specs;
  counters

(* Convenience: [n] closed-loop clients on CPUs 0..n-1. *)
let one_per_cpu ?identity ~n ~name_prefix () =
  List.init n (fun cpu ->
      closed_spec ?identity ~cpu ~name:(Printf.sprintf "%s-%d" name_prefix cpu) ())
