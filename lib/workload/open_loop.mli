(** Open-loop virtual-client multiplexer.

    Simulates a very large logical client population (10^6 and up) on a
    handful of simulated lane processes.  Each lane owns an arrival
    {e schedule}: absolute arrival times drawn from an inter-arrival
    sampler, fixed by the seed and the horizon alone.  The lane works
    through its schedule in order — sleeping until the next arrival when
    it is ahead, processing a backlog without sleeping when it has
    fallen behind — so the number of arrivals is {b independent of
    per-operation service time} (the defining property of open-loop
    load; contrast {!Driver}, whose think-time loop waits for each reply
    before drawing the next gap).  Every scheduled arrival before the
    horizon is processed, even if its processing completes after the
    horizon; latency is measured from the {e scheduled} arrival time, so
    queueing delay in a backlogged lane is part of the reported
    latency, exactly as an open-loop load generator observes it. *)

type arrival = {
  lane : int;
  seq : int;  (** per-lane arrival number, 0-based *)
  client : int;  (** logical client id in [\[0, clients)] *)
  scheduled : Sim.Time.t;  (** schedule time; backlog makes [now] later *)
}

type counters = {
  arrivals : int array;  (** per lane: schedule points before the horizon *)
  completions : int array;  (** body returned 0 *)
  errors : int array;  (** body returned a nonzero rc *)
  mutable last_completion : Sim.Time.t;
  mutable max_backlog : Sim.Time.t;
      (** worst (now - scheduled) observed at dispatch: how far a lane
          fell behind its schedule *)
}

val total_arrivals : counters -> int
val total_completions : counters -> int
val total_errors : counters -> int

val achieved_per_sec : counters -> horizon:Sim.Time.t -> float
(** Completions per second of simulated time, over
    [max horizon last_completion] — the backlog drain tail counts. *)

val run :
  ?start:Sim.Time.t ->
  ?prepare:(lane:int -> program:Kernel.Program.t -> unit) ->
  ?latency:Hist.t ->
  ?queue_delay:Hist.t ->
  Kernel.t ->
  lanes:int ->
  clients:int ->
  client_theta:float ->
  horizon:Sim.Time.t ->
  seed:int ->
  interarrival:Sampler.t ->
  body:(self:Kernel.Process.t -> arrival -> int) ->
  counters
(** Spawn [lanes] lane processes on CPUs [0 .. lanes-1] (mod the
    machine's CPU count).  Each lane draws inter-arrival gaps (in
    microseconds) from [interarrival] with a per-lane generator seeded
    from [seed] — so the aggregate offered rate is
    [lanes / mean gap] — and picks the arrival's logical client with an
    independent Zipf([client_theta]) generator over [clients] (0 =
    uniform).  [body] performs the operation and returns its rc (0 =
    success).  [start] (default 0) offsets the whole schedule — a warmup
    window for management setup (name registration, grants) to finish
    before the first arrival.  [latency] records completion - scheduled per arrival, in
    nanoseconds; [queue_delay] records dispatch - scheduled.  Drive the
    simulation afterwards with [Kernel.run]. *)
