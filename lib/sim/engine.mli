(** Deterministic discrete-event simulation engine.

    Simulated processes are plain OCaml functions executed under an effect
    handler; they block by performing a single [Suspend] effect, from
    which all higher-level primitives ({!Condition}, {!Semaphore},
    {!Mailbox}, the kernel's locks and scheduler) are built. *)

type t

exception Cancelled of string
(** Raised inside a blocked process when the primitive it waits on is torn
    down (hard-kill of calls in progress, etc.). *)

exception Stalled of string

val create : unit -> t

val now : t -> Time.t
(** Current simulated time. *)

val set_trace : t -> Trace.t option -> unit
(** Attach (or detach) an event tracer. *)

val trace : t -> Trace.t option
val tracing : t -> bool

val trace_f : t -> ?cpu:int -> kind:string -> (unit -> string) -> unit
(** Record an event; the detail thunk runs only when tracing is on. *)

val pending : t -> int
(** Number of scheduled events not yet executed. *)

val add_step_hook : t -> (unit -> unit) -> unit
(** Register an observer that runs after every executed event, when all
    event-driven state is between transitions (invariant checkers).
    Hooks run in registration order and must not schedule or suspend. *)

val clear_step_hooks : t -> unit

val executed_events : t -> int
(** Total events executed so far (diagnostic). *)

val schedule_at : t -> Time.t -> (unit -> unit) -> unit
(** Schedule a raw callback at an absolute time (clamped to [now]). *)

val schedule : t -> after:Time.t -> (unit -> unit) -> unit
(** Schedule a raw callback after a relative delay. *)

val spawn : ?at:Time.t -> t -> (unit -> unit) -> unit
(** [spawn t f] starts [f] as a simulated process (at time [at], default
    now).  Exceptions escaping [f] propagate out of {!run}. *)

val suspend : t -> (((unit, exn) result -> unit) -> unit) -> unit
(** [suspend t register] blocks the calling process.  [register] receives
    a one-shot [resume] closure; calling [resume (Ok ())] reschedules the
    process, [resume (Error e)] resumes it by raising [e].  Must be called
    from within a process. *)

val delay : t -> Time.t -> unit
(** Block the calling process for a relative duration. *)

val yield : t -> unit
(** Reschedule the calling process behind already-pending same-time
    events. *)

val step : t -> bool
(** Execute one event; [false] if the queue was empty. *)

val run : ?until:Time.t -> t -> unit
(** Drain the event queue (up to an optional time horizon).  If a horizon
    is given the clock is advanced to it even when the queue drains
    early. *)

val run_until : t -> Time.t -> unit
