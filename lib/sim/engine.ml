(* Discrete-event simulation engine with effect-based processes.

   A simulated process is an ordinary OCaml function run under an effect
   handler.  When it performs [Suspend register], the handler captures the
   continuation, wraps it in a one-shot [resume] closure that re-schedules
   the process as a future event, and passes that closure to [register].
   Every higher-level blocking primitive (delays, condition variables,
   semaphores, mailboxes, simulated locks) is built from this single
   effect.

   Events at equal timestamps execute in creation order (a monotonically
   increasing sequence number breaks ties), which makes whole-system runs
   bit-for-bit deterministic. *)

type event = { at : Time.t; seq : int; run : unit -> unit }

type t = {
  mutable now : Time.t;
  mutable seq : int;
  events : event Heap.t;
  mutable executed : int;
  mutable trace : Trace.t option;
  mutable step_hooks : (unit -> unit) array;
      (** run after every executed event (oldest registration first);
          invariant checkers hang off this.  Growable array: slots
          [0 .. n_step_hooks-1] are live, the rest hold [no_hook]. *)
  mutable n_step_hooks : int;
}

exception Cancelled of string
(* Raised inside a process when a primitive it is blocked on is torn down
   (e.g. a hard-kill aborting calls in progress). *)

exception Stalled of string
(* Raised by [run ~expect_quiescent:false] wrappers when the caller knows
   the event queue should not drain; exposed for library users building
   watchdogs. *)

let compare_event a b =
  let c = Time.compare a.at b.at in
  if c <> 0 then c else Int.compare a.seq b.seq

let no_hook : unit -> unit = fun () -> ()

let create () =
  {
    now = Time.zero;
    seq = 0;
    events = Heap.create compare_event;
    executed = 0;
    trace = None;
    step_hooks = [||];
    n_step_hooks = 0;
  }

let now t = t.now

(* Tracing: opt-in; [trace_f] builds the detail string only when a tracer
   is attached, so disabled tracing costs one branch. *)
let set_trace t trace = t.trace <- trace
let trace t = t.trace
let tracing t = Option.is_some t.trace

let trace_f t ?cpu ~kind detail =
  match t.trace with
  | None -> ()
  | Some tr -> Trace.record tr ~at:t.now ?cpu ~kind (detail ())
let pending t = Heap.length t.events
let executed_events t = t.executed

(* Step hooks: observers that run after every executed event (one
   "micro-op batch"), in registration order.  All event-driven state is
   between transitions at that point, so hooks are where invariant
   checkers belong.  Disabled hooks cost one empty-list branch. *)
let add_step_hook t f =
  let n = t.n_step_hooks in
  if n = Array.length t.step_hooks then begin
    let grown = Array.make (max 4 (2 * n)) no_hook in
    Array.blit t.step_hooks 0 grown 0 n;
    t.step_hooks <- grown
  end;
  t.step_hooks.(n) <- f;
  t.n_step_hooks <- n + 1

let clear_step_hooks t =
  Array.fill t.step_hooks 0 t.n_step_hooks no_hook;
  t.n_step_hooks <- 0

let schedule_at t at run =
  let at = if Time.(at < t.now) then t.now else at in
  t.seq <- t.seq + 1;
  Heap.push t.events { at; seq = t.seq; run }

let schedule t ~after run = schedule_at t (Time.add t.now after) run

type _ Effect.t +=
  | Suspend : (((unit, exn) result -> unit) -> unit) -> unit Effect.t

let handler t =
  let open Effect.Deep in
  {
    retc = (fun () -> ());
    exnc = (fun e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Suspend register ->
            Some
              (fun (k : (a, unit) continuation) ->
                let used = ref false in
                let resume result =
                  if !used then invalid_arg "Sim.Engine: process resumed twice";
                  used := true;
                  schedule_at t t.now (fun () ->
                      match result with
                      | Ok () -> continue k ()
                      | Error e -> discontinue k e)
                in
                register resume)
        | _ -> None);
  }

let spawn ?at t f =
  let start () = Effect.Deep.match_with f () (handler t) in
  match at with
  | None -> schedule_at t t.now start
  | Some at -> schedule_at t at start

(* Operations available inside a process. ------------------------------ *)

let suspend (_t : t) register = Effect.perform (Suspend register)

let delay t d =
  if d < 0 then invalid_arg "Sim.Engine.delay: negative delay";
  suspend t (fun resume -> schedule t ~after:d (fun () -> resume (Ok ())))

let yield t = delay t Time.zero

(* Driving the simulation. --------------------------------------------- *)

let step t =
  match Heap.pop t.events with
  | None -> false
  | Some ev ->
      t.now <- ev.at;
      t.executed <- t.executed + 1;
      ev.run ();
      for i = 0 to t.n_step_hooks - 1 do
        t.step_hooks.(i) ()
      done;
      true

let run ?until t =
  let continue_ () =
    match until with
    | None -> true
    | Some limit -> (
        match Heap.peek t.events with
        | None -> false
        | Some ev -> Time.(ev.at <= limit))
  in
  while (not (Heap.is_empty t.events)) && continue_ () do
    ignore (step t)
  done;
  (* Advance the clock to the horizon even if the world went quiet. *)
  match until with
  | Some limit when Time.(t.now < limit) -> t.now <- limit
  | Some _ | None -> ()

let run_until t limit = run ~until:limit t
