(* The PPC register argument block.

   The paper's PPC_CALL macro (Section 4.5.1, Figure 4) passes the values
   of eight variables in registers and returns eight values in the same
   registers; by convention the last word carries the opcode and flags on
   the way in and the return code on the way out.  Because the transfer is
   register-to-register, moving the words costs instructions but no
   memory traffic — technique (i) of the uniprocessor IPC canon.

   We model the block as an 8-slot int array that the server handler
   mutates in place. *)

type t = int array

let words = 8
let opflags_slot = words - 1

let make () = Array.make words 0

let of_list l =
  if List.length l > words then invalid_arg "Reg_args.of_list: more than 8 words";
  let a = make () in
  List.iteri (fun i v -> a.(i) <- v) l;
  a

let get a i =
  if i < 0 || i >= words then invalid_arg "Reg_args.get: slot out of range";
  a.(i)

let set a i v =
  if i < 0 || i >= words then invalid_arg "Reg_args.set: slot out of range";
  a.(i) <- v

(* Opcode/flag packing, mirroring PPC_OP_FLAGS(op, flags).  The packing
   itself lives in the provider-agnostic core so the runtime's control
   plane parses calls identically. *)

let op_flags = Ipc_intf.Opfield.pack
let op_of = Ipc_intf.Opfield.op_of
let flags_of = Ipc_intf.Opfield.flags_of

let set_op a ~op ~flags = a.(opflags_slot) <- op_flags ~op ~flags
let op a = op_of a.(opflags_slot)
let flags a = flags_of a.(opflags_slot)

(* Return code, mirroring PPC_RC(opflags): the convention that the last
   parameter carries the result status back to the caller. *)

let set_rc a rc = a.(opflags_slot) <- rc
let rc a = a.(opflags_slot)

(* The error taxonomy is the shared one ({!Ipc_intf.Errc}): both the
   simulator and the real-domain runtime answer with these codes. *)
let ok = Ipc_intf.Errc.ok
let err_no_entry = Ipc_intf.Errc.no_entry
let err_killed = Ipc_intf.Errc.killed
let err_denied = Ipc_intf.Errc.denied
let err_bad_request = Ipc_intf.Errc.bad_request
let err_no_resources = Ipc_intf.Errc.no_resources
let err_too_big = Ipc_intf.Errc.too_big
let err_copy_fault = Ipc_intf.Errc.copy_fault

let copy = Array.copy

let pp ppf a =
  Fmt.pf ppf "[%a]" Fmt.(list ~sep:(Fmt.any "; ") int) (Array.to_list a)
