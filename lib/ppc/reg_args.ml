(* The PPC register argument block.

   The paper's PPC_CALL macro (Section 4.5.1, Figure 4) passes the values
   of eight variables in registers and returns eight values in the same
   registers; by convention the last word carries the opcode and flags on
   the way in and the return code on the way out.  Because the transfer is
   register-to-register, moving the words costs instructions but no
   memory traffic — technique (i) of the uniprocessor IPC canon.

   We model the block as an 8-slot int array that the server handler
   mutates in place. *)

type t = int array

let words = 8
let opflags_slot = words - 1

let make () = Array.make words 0

let of_list l =
  if List.length l > words then invalid_arg "Reg_args.of_list: more than 8 words";
  let a = make () in
  List.iteri (fun i v -> a.(i) <- v) l;
  a

let get a i =
  if i < 0 || i >= words then invalid_arg "Reg_args.get: slot out of range";
  a.(i)

let set a i v =
  if i < 0 || i >= words then invalid_arg "Reg_args.set: slot out of range";
  a.(i) <- v

(* Opcode/flag packing, mirroring PPC_OP_FLAGS(op, flags). *)

let op_flags ~op ~flags =
  if op < 0 || op > 0xFFFF then invalid_arg "Reg_args.op_flags: bad opcode";
  if flags < 0 || flags > 0xFFFF then invalid_arg "Reg_args.op_flags: bad flags";
  (op lsl 16) lor flags

let op_of packed = (packed lsr 16) land 0xFFFF
let flags_of packed = packed land 0xFFFF

let set_op a ~op ~flags = a.(opflags_slot) <- op_flags ~op ~flags
let op a = op_of a.(opflags_slot)
let flags a = flags_of a.(opflags_slot)

(* Return code, mirroring PPC_RC(opflags): the convention that the last
   parameter carries the result status back to the caller. *)

let set_rc a rc = a.(opflags_slot) <- rc
let rc a = a.(opflags_slot)

let ok = 0
let err_no_entry = -1
let err_killed = -2
let err_denied = -3
let err_bad_request = -4
let err_no_resources = -5

let copy = Array.copy

let pp ppf a =
  Fmt.pf ppf "[%a]" Fmt.(list ~sep:(Fmt.any "; ") int) (Array.to_list a)
