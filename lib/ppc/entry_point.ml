(* Service entry points.

   An entry point binds a small-integer ID (Section 4.5.5: IDs are safe
   to be small integers because authentication is the server's job, not
   the IPC facility's) to a server descriptor and, per processor, a pool
   of workers.

   Deallocation supports the two strategies of Section 4.5.2: soft-kill
   (stop new calls, let calls in progress complete, then free) and
   hard-kill (abort calls in progress too). *)

(* The lifecycle state machine is the shared control-plane vocabulary:
   the runtime's versioned slot table steps through the same states. *)
type status = Ipc_intf.Lifecycle.status = Active | Soft_killed | Hard_killed

(* Stack sizing (Section 4.5.4).  [Single_page] is the common fast case;
   [Fixed_pages n] maps n pages on every call (exceptional, slower);
   [Fault_in n] maps one page and lets accesses beyond it page-fault, so
   only services that really need depth pay for it. *)
type stack_policy = Single_page | Fixed_pages of int | Fault_in of int

let stack_window_pages = 8
(* virtual window reserved per CPU: the bound on any stack policy *)

type server = {
  server_name : string;
  program : Kernel.Program.t;
  space : Kernel.Address_space.t;
  code_addr : int;  (** server text *)
  data_addr : int;  (** server data *)
  stack_va_base : int;  (** stacks are mapped at per-CPU offsets from here *)
  hold_cd : bool;  (** workers permanently hold a CD and stack *)
  stack_policy : stack_policy;
  trust_group : int;
      (** CDs/stacks are serially shared only within a trust group
          (Section 2's compromise for mutually untrusting servers) *)
}

type per_cpu_state = {
  mutable pool : Worker.t list;  (** LIFO: most recently parked first *)
  mutable workers_created : int;
  mutable in_progress : int;
  mutable pool_empty_hits : int;
}

type t = {
  id : int;
  name : string;
  server : server;
  initial_handler : Call_ctx.handler;
  mutable status : status;
  per_cpu : per_cpu_state array;
  mutable total_calls : int;
  mutable rejected_calls : int;
}

let create ~id ~name ~server ~handler ~cpus =
  {
    id;
    name;
    server;
    initial_handler = handler;
    status = Active;
    per_cpu =
      Array.init cpus (fun _ ->
          {
            pool = [];
            workers_created = 0;
            in_progress = 0;
            pool_empty_hits = 0;
          });
    total_calls = 0;
    rejected_calls = 0;
  }

let id t = t.id
let name t = t.name
let server t = t.server
let initial_handler t = t.initial_handler
let status t = t.status
let set_status t s = t.status <- s
let per_cpu t i = t.per_cpu.(i)
let total_calls t = t.total_calls
let note_call t = t.total_calls <- t.total_calls + 1
let rejected_calls t = t.rejected_calls
let note_rejected t = t.rejected_calls <- t.rejected_calls + 1

let in_progress_total t =
  Array.fold_left (fun acc pc -> acc + pc.in_progress) 0 t.per_cpu

let workers_total t =
  Array.fold_left (fun acc pc -> acc + pc.workers_created) 0 t.per_cpu

(* Worker pool manipulation, charged as processor-local memory traffic on
   the pool head word and the worker structure. *)

let pop_worker cpu layout_pc t ~cpu_index =
  let pcs = t.per_cpu.(cpu_index) in
  Machine.Cpu.instr cpu 6;
  Machine.Cpu.load cpu (Layout.wpool_head_addr layout_pc t.id);
  match pcs.pool with
  | [] ->
      pcs.pool_empty_hits <- pcs.pool_empty_hits + 1;
      None
  | w :: rest ->
      Machine.Cpu.load cpu (Worker.addr w);
      Machine.Cpu.store cpu (Layout.wpool_head_addr layout_pc t.id);
      pcs.pool <- rest;
      Some w

let push_worker cpu layout_pc t ~cpu_index w =
  let pcs = t.per_cpu.(cpu_index) in
  Machine.Cpu.instr cpu 4;
  Machine.Cpu.store cpu (Worker.addr w);
  Machine.Cpu.store cpu (Layout.wpool_head_addr layout_pc t.id);
  pcs.pool <- w :: pcs.pool

(* Pool insert without memory charges (management paths).  Creation is
   counted by the creator, not here. *)
let add_worker t ~cpu_index w =
  let pcs = t.per_cpu.(cpu_index) in
  pcs.pool <- w :: pcs.pool

(* Shrink an over-grown pool, keeping [keep] parked workers ("pools can
   grow and shrink dynamically as needed"). *)
let trim_workers t ~cpu_index ~keep =
  let pcs = t.per_cpu.(cpu_index) in
  let rec split kept n = function
    | [] -> (List.rev kept, [])
    | w :: rest when n < keep -> split (w :: kept) (n + 1) rest
    | extra -> (List.rev kept, extra)
  in
  let kept, extra = split [] 0 pcs.pool in
  pcs.pool <- kept;
  pcs.workers_created <- pcs.workers_created - List.length extra;
  extra

let drain_workers t ~cpu_index =
  let pcs = t.per_cpu.(cpu_index) in
  let ws = pcs.pool in
  pcs.pool <- [];
  ws
