(** Per-processor, lock-free (because strictly local) CD pool with LIFO
    reuse for cache warmth. *)

type t

val create : Layout.per_cpu -> t

val size : t -> int
val created : t -> int
val allocs : t -> int
val empty_hits : t -> int

val add : t -> Call_descriptor.t -> unit
(** Install a newly created CD (Frank's slow path). *)

val alloc : Machine.Cpu.t -> t -> Call_descriptor.t option
(** Pop the most recently used CD; [None] when empty (redirect to
    Frank).  Charges the free-list memory traffic. *)

val release : Machine.Cpu.t -> t -> Call_descriptor.t -> unit
(** Push back; raises [Invalid_argument] if the CD belongs to another
    processor. *)

val restore : t -> Call_descriptor.t -> unit
(** State-only {!release} with no memory charges: for abort/teardown
    paths running from event context.  Same foreign-CPU check. *)

val free_list : t -> Call_descriptor.t list
(** The current free list, most recently released first (inspection). *)

val unsafe_pop : t -> Call_descriptor.t option
val unsafe_push : t -> Call_descriptor.t -> unit
(** Unchecked, uncharged pool manipulation — fault injection only.
    [unsafe_push] skips the ownership check, so it can plant a foreign
    CD; the invariant checker is expected to catch the damage. *)

val trim : t -> keep:int -> Call_descriptor.t list
(** Drop free CDs beyond [keep], returning them (stack reclaim). *)
