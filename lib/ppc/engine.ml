(* The PPC call engine: the paper's Section 2 implemented over the
   simulated kernel.

   The synchronous fast path, per call, on the caller's processor only:

     client:  user save / arg marshal / trap
     kernel:  entry-point lookup (per-CPU service table)
              worker-pool pop (per-CPU, lock-free)
              CD-pool pop + return info into CD (per-CPU, lock-free)
              stack map into server space [+ user-space switch if u->u]
              minimal state switch; HAND-OFF to worker
     worker:  rti into server; handler; trap back
              unmap [+ switch back]; CD + worker recycled
              minimal state restore; HAND-OFF back to client
     client:  epilogue; rti; user restore

   Every data structure touched is owned by the local processor: no
   shared data, no locks.  Costs are charged per micro-op against the
   cache/TLB models with the Figure-2 accounting categories. *)

exception Call_aborted

exception Resource_exhausted
(* Raised by an injected resource fault when Frank's slow path is made to
   fail; the call paths turn it into an ERR_NO_RESOURCES rejection. *)

(* Tunable instruction/word counts for each path phase.  Defaults are
   calibrated so the Hector parameters reproduce the paper's Figure 2
   within tolerance; see bench/ and EXPERIMENTS.md. *)
type path_costs = {
  user_save_instr : int;
  user_save_words : int;  (** caller-save registers spilled to user stack *)
  arg_marshal_instr : int;  (** loading 8 argument registers *)
  entry_instr : int;
  entry_extra_loads : int;  (** EP record fields beyond the table slot *)
  retinfo_instr : int;
  switch_instr : int;
  switch_words : int;  (** minimal processor state for a hand-off switch *)
  space_switch_instr : int;  (** CMMU user-root update (u->u only) *)
  upcall_instr : int;
  return_instr : int;
  epilogue_instr : int;
  user_restore_instr : int;
  frank_worker_instr : int;  (** slow path: create + init a worker *)
  frank_cd_instr : int;  (** slow path: create a CD + stack page *)
}

let default_costs =
  {
    user_save_instr = 10;
    user_save_words = 20;
    arg_marshal_instr = 8;
    entry_instr = 18;
    entry_extra_loads = 3;
    retinfo_instr = 4;
    switch_instr = 8;
    switch_words = 8;
    space_switch_instr = 6;
    upcall_instr = 8;
    return_instr = 10;
    epilogue_instr = 6;
    user_restore_instr = 8;
    frank_worker_instr = 420;
    frank_cd_instr = 260;
  }

type stats = {
  mutable sync_calls : int;
  mutable async_calls : int;
  mutable injected_calls : int;
  mutable frank_worker_creations : int;
  mutable frank_cd_creations : int;
  mutable aborted_calls : int;
  mutable rejected_calls : int;
  mutable handler_faults : int;
  mutable resource_failures : int;
}

(* Observation probes for the fault-injection/invariant layer
   (lib/faultsim): every transition that moves a worker, CD or stack
   frame in or out of circulation is announced, plus the fast-path and
   hand-off window boundaries.  [cpu] is the processor executing the
   transition; [home] is the resource's owning processor.  Costs nothing
   when no probe is installed. *)
type probe_event =
  | Fastpath_enter of { cpu : int; ep_id : int }
  | Fastpath_exit of { cpu : int; ep_id : int }
  | Worker_pop of { cpu : int; ep_id : int }
  | Worker_created of { cpu : int; ep_id : int }
  | Worker_park of { cpu : int; ep_id : int }
  | Worker_retired of { cpu : int; ep_id : int }
  | Cd_created of { home : int }
  | Cd_alloc of { cpu : int; home : int }
  | Cd_release of { cpu : int; home : int }
  | Cd_dropped of { cpu : int; home : int }
      (** dismantled to a spare frame on [cpu] (held-CD retirement etc.) *)
  | Cd_trimmed of { cpu : int; home : int }  (** reclaimed by {!reclaim} *)
  | Frame_taken of { cpu : int; fresh : bool }
      (** spare stack frame popped; [fresh] = Frank allocated a new page *)
  | Frame_returned of { cpu : int }
  | Handoff_to_worker of { cpu : int; ep_id : int }
  | Serve_begin of { cpu : int; ep_id : int }
  | Call_completed of { cpu : int; ep_id : int; aborted : bool }

(* Injected resource faults: what Frank's slow path does when asked for a
   new worker or CD. *)
type resource = Worker_resource | Cd_resource
type resource_verdict = [ `Proceed | `Delay of int | `Fail ]

type t = {
  kernel : Kernel.t;
  layout : Layout.t;
  costs : path_costs;
  eps : Entry_point.t option array;
  overflow_eps : (int, Entry_point.t) Hashtbl.t;
      (** IDs beyond the fast array (Section 4.5.5's "hash table with
          overflow buckets" for the rest) *)
  cd_pools : Cd_pool.t array;  (** trust group 0 (the default) *)
  group_pools : (int * int, Cd_pool.t) Hashtbl.t;  (** (cpu, group) *)
  spare_frames : int list array;  (** per-CPU extra stack pages (4.5.4) *)
  current_user_asid : int array;  (** loaded user context per CPU *)
  active : (int, active_call list ref) Hashtbl.t;  (** ep id -> records *)
  stats : stats;
  mutable next_ep_id : int;
  initial_cds_per_cpu : int;
  mutable fault_notifier :
    (cpu_index:int -> ep_id:int -> caller_program:int -> unit) option;
      (** invoked (from event context) when a handler faults; the
          exception server hooks here and receives an upcall (4.4) *)
  mutable probe : (probe_event -> unit) option;
  mutable resource_fault :
    (cpu_index:int -> resource -> resource_verdict) option;
}

and active_call = { rec_ : Worker.call_rec; ac_worker : Worker.t }

let kernel t = t.kernel
let layout t = t.layout
let costs t = t.costs
let stats t = t.stats

let emit t ev = match t.probe with None -> () | Some f -> f ev
let set_probe t p = t.probe <- p
let set_resource_fault t f = t.resource_fault <- f

(* --- construction ----------------------------------------------------- *)

let make_cd ?pool t ~cpu_index =
  let pc = Layout.per_cpu t.layout cpu_index in
  let pool = match pool with Some p -> p | None -> t.cd_pools.(cpu_index) in
  let idx = Cd_pool.created pool in
  let addr = Layout.cd_addr pc (idx mod Layout.max_cds_per_cpu) in
  let stack_frame = Kernel.alloc_page t.kernel ~node:cpu_index in
  let cd =
    Call_descriptor.create ~index:idx ~addr ~stack_frame ~home_cpu:cpu_index
  in
  Cd_pool.add pool cd;
  emit t (Cd_created { home = cpu_index });
  cd

let create ?(costs = default_costs) ?(initial_cds_per_cpu = 2) kernel =
  let layout = Layout.create kernel in
  let n = Kernel.n_cpus kernel in
  let t =
    {
      kernel;
      layout;
      costs;
      eps = Array.make Layout.max_entry_points None;
      overflow_eps = Hashtbl.create 16;
      cd_pools = Array.init n (fun i -> Cd_pool.create (Layout.per_cpu layout i));
      group_pools = Hashtbl.create 8;
      spare_frames = Array.make n [];
      current_user_asid = Array.make n (-1);
      active = Hashtbl.create 64;
      stats =
        {
          sync_calls = 0;
          async_calls = 0;
          injected_calls = 0;
          frank_worker_creations = 0;
          frank_cd_creations = 0;
          aborted_calls = 0;
          rejected_calls = 0;
          handler_faults = 0;
          resource_failures = 0;
        };
      next_ep_id = 2;
      (* 0 reserved (name server), 1 reserved (Frank) *)
      initial_cds_per_cpu;
      fault_notifier = None;
      probe = None;
      resource_fault = None;
    }
  in
  for cpu_index = 0 to n - 1 do
    for _ = 1 to initial_cds_per_cpu do
      ignore (make_cd t ~cpu_index)
    done
  done;
  t

let find_ep t ep_id =
  if ep_id < 0 then None
  else if ep_id < Layout.max_entry_points then t.eps.(ep_id)
  else Hashtbl.find_opt t.overflow_eps ep_id

let ep_exn t ep_id =
  match find_ep t ep_id with
  | Some ep -> ep
  | None -> invalid_arg "Ppc: unknown entry point"

(* --- worker lifecycle -------------------------------------------------- *)

let active_list t ep_id =
  match Hashtbl.find_opt t.active ep_id with
  | Some l -> l
  | None ->
      let l = ref [] in
      Hashtbl.replace t.active ep_id l;
      l

let kcpu_of t cpu_index = Kernel.kcpu t.kernel cpu_index

(* CDs (and their stacks) are serially shared only within a trust group;
   group 0 is the default shared pool (Section 2). *)
let cd_pool_for t ~cpu_index ~group =
  if group = 0 then t.cd_pools.(cpu_index)
  else
    match Hashtbl.find_opt t.group_pools (cpu_index, group) with
    | Some pool -> pool
    | None ->
        let pool = Cd_pool.create (Layout.per_cpu t.layout cpu_index) in
        Hashtbl.replace t.group_pools (cpu_index, group) pool;
        pool

(* Extra stack pages for multi-page policies (Section 4.5.4): "an
   independent list of stack pages (rather than associating them with
   call descriptors)". *)
let take_spare_frame t ~cpu_index cpu =
  match t.spare_frames.(cpu_index) with
  | frame :: rest ->
      Machine.Cpu.instr cpu 4;
      t.spare_frames.(cpu_index) <- rest;
      emit t (Frame_taken { cpu = cpu_index; fresh = false });
      frame
  | [] ->
      (* Frank-style slow path: allocate a fresh page. *)
      Machine.Cpu.instr cpu 120;
      emit t (Frame_taken { cpu = cpu_index; fresh = true });
      Kernel.alloc_page t.kernel ~node:cpu_index

let put_spare_frame t ~cpu_index cpu frame =
  Machine.Cpu.instr cpu 3;
  t.spare_frames.(cpu_index) <- frame :: t.spare_frames.(cpu_index);
  emit t (Frame_returned { cpu = cpu_index })

(* Consult the injected resource fault, if any, before a Frank slow-path
   creation.  A delayed Frank charges extra kernel-text cycles (resource
   manager congestion); a failing one makes the call fail with
   ERR_NO_RESOURCES, as a real allocation failure would. *)
let frank_gate t ~cpu_index cpu res =
  match t.resource_fault with
  | None -> ()
  | Some f -> (
      match f ~cpu_index res with
      | `Proceed -> ()
      | `Delay extra ->
          Machine.Cpu.instr ~code:(Layout.ktext t.layout).Layout.frank cpu extra
      | `Fail -> raise Resource_exhausted)

(* Switch the loaded user address space: update the data- and code-CMMU
   user root pointers and flush their user contexts.  CMMU control
   registers are uncached local device registers. *)
let switch_user_context t cpu ~cpu_index ~asid =
  let pc = Layout.per_cpu t.layout cpu_index in
  Machine.Cpu.instr cpu t.costs.space_switch_instr;
  Machine.Cpu.uncached_store cpu pc.Layout.cmmu_regs;
  Machine.Cpu.uncached_store cpu (pc.Layout.cmmu_regs + 4);
  Machine.Cpu.uncached_store cpu (pc.Layout.cmmu_regs + 8);
  Machine.Cpu.uncached_store cpu (pc.Layout.cmmu_regs + 12);
  Machine.Cpu.flush_user_tlb cpu;
  Machine.Cpu.charge_current cpu
    (Machine.Cpu.params cpu).Machine.Cost_params.space_switch_extra_cycles;
  (* Virtually-addressed caches lose their contents across a switch. *)
  if (Machine.Cpu.params cpu).Machine.Cost_params.switch_flushes_cache then begin
    Machine.Cache.flush (Machine.Cpu.dcache cpu);
    Machine.Cache.flush (Machine.Cpu.icache cpu)
  end;
  t.current_user_asid.(cpu_index) <- asid

let stack_va server ~cpu_index =
  server.Entry_point.stack_va_base
  + (cpu_index * 4096 * Entry_point.stack_window_pages)

(* Dismantle a held CD when its worker leaves circulation: the stack
   mapping is forgotten (if it still points at this CD's frame) and the
   frame joins the spare list of the worker's CPU.  State-only — retire
   paths run from event context or on behalf of a dying worker. *)
let drop_held_cd t ep w =
  match Worker.held_cd w with
  | None -> ()
  | Some cd ->
      let cpu_index = Worker.cpu_index w in
      let server = Entry_point.server ep in
      let va = stack_va server ~cpu_index in
      (match Kernel.Address_space.translate server.Entry_point.space va with
      | Some pa when pa = Call_descriptor.stack_frame cd ->
          Kernel.Address_space.forget server.Entry_point.space ~vaddr:va
      | _ -> ());
      Worker.drop_held w;
      t.spare_frames.(cpu_index) <-
        Call_descriptor.stack_frame cd :: t.spare_frames.(cpu_index);
      emit t
        (Cd_dropped { cpu = cpu_index; home = Call_descriptor.home_cpu cd })

(* Retire a worker out of circulation.  [quiesced] says it is not
   mid-call (parked, drained or aborted), so a held CD can be dismantled
   now; a worker retired while running keeps its CD until its current
   call completes (see the retired branch of [serve_one]). *)
let retire_worker t ep w ~quiesced =
  if not (Worker.retired w) then begin
    Worker.retire w;
    emit t
      (Worker_retired { cpu = Worker.cpu_index w; ep_id = Entry_point.id ep })
  end;
  if quiesced then drop_held_cd t ep w

(* Worker-side body: serve calls forever, parking between them. *)
let rec serve_loop t ep w =
  if Worker.retired w then begin
    (* Retired before ever running this call: a pending installed in the
       hand-off window must still be aborted, or its caller sleeps
       forever.  And the worker dies here, so a held CD (if somehow not
       yet dismantled) goes with it. *)
    (match Worker.take_pending w with
    | Some pending -> abort_return t ep w pending
    | None -> ());
    drop_held_cd t ep w
  end
  else
    match Worker.take_pending w with
    | None ->
        (* Spurious wake (e.g. retirement in flight): park again unless
           retired.  A cancellation landing here (rather than inside the
           handler) is a plain wake: the retired check at the top of the
           loop decides what happens next. *)
        if Worker.retired w then ()
        else begin
          (try Kernel.Process.sleep (Kernel.engine t.kernel) (Worker.pcb w)
           with Sim.Engine.Cancelled _ -> ());
          serve_loop t ep w
        end
    | Some pending -> (
        match serve_one t ep w pending with
        | () -> serve_loop t ep w
        | exception Sim.Engine.Cancelled _ ->
            (* Hard-kill aborted this worker while it was blocked inside
               the handler: release the caller through the scheduler and
               die.  (We are not the current process: no CPU charges.) *)
            abort_return t ep w pending
        | exception _ ->
            (* The handler faulted (wild stack access, server bug): the
               PPC failure model is that of a message exchange — the
               caller is released with an error, this worker dies, and
               the entry point keeps serving through fresh workers. *)
            t.stats.handler_faults <- t.stats.handler_faults + 1;
            Kernel.Klog.Ppc_log.err (fun m ->
                m "handler fault in %s: call aborted, worker retired"
                  (Entry_point.name ep));
            (match t.fault_notifier with
            | Some notify ->
                notify ~cpu_index:(Worker.cpu_index w)
                  ~ep_id:(Entry_point.id ep)
                  ~caller_program:pending.Worker.caller_program
            | None -> ());
            abort_return t ep w pending)

and abort_return t ep w pending =
  let cpu_index = Worker.cpu_index w in
  let server = Entry_point.server ep in
  pending.Worker.call_rec.Worker.aborted <- true;
  let pcs = Entry_point.per_cpu ep cpu_index in
  pcs.Entry_point.in_progress <- pcs.Entry_point.in_progress - 1;
  unregister_active t ep pending.Worker.call_rec;
  t.stats.aborted_calls <- t.stats.aborted_calls + 1;
  (* Resource cleanup, state-only (the dying worker is not the current
     process, so nothing can be charged): extra stack frames and the CD
     go back to their pools and the stack mapping is forgotten.  Without
     this an aborted call leaks its CD and stack page. *)
  let cd = pending.Worker.cd in
  let va = stack_va server ~cpu_index in
  let held = Option.is_some (Worker.held_cd w) in
  List.iter
    (fun (page, frame) ->
      Kernel.Address_space.forget server.Entry_point.space
        ~vaddr:(va + (page * 4096));
      t.spare_frames.(cpu_index) <- frame :: t.spare_frames.(cpu_index);
      emit t (Frame_returned { cpu = cpu_index }))
    pending.Worker.call_rec.Worker.extra_frames;
  pending.Worker.call_rec.Worker.extra_frames <- [];
  if not held then begin
    (match Kernel.Address_space.translate server.Entry_point.space va with
    | Some pa when pa = Call_descriptor.stack_frame cd ->
        Kernel.Address_space.forget server.Entry_point.space ~vaddr:va
    | _ -> ());
    if Call_descriptor.home_cpu cd = cpu_index then begin
      Cd_pool.restore
        (cd_pool_for t ~cpu_index ~group:server.Entry_point.trust_group)
        cd;
      emit t (Cd_release { cpu = cpu_index; home = cpu_index })
    end
    else begin
      (* Not our CD (cannot happen unless something corrupted the
         pools): dismantle it rather than pollute a foreign pool. *)
      t.spare_frames.(cpu_index) <-
        Call_descriptor.stack_frame cd :: t.spare_frames.(cpu_index);
      emit t
        (Cd_dropped { cpu = cpu_index; home = Call_descriptor.home_cpu cd })
    end
  end;
  (match pending.Worker.caller with
  | Some caller -> Kernel.Kcpu.ready (kcpu_of t cpu_index) caller
  | None -> (
      (* Asynchronous caller: deliver the abort through the completion
         hook so remote/async waiters are not leaked. *)
      match pending.Worker.on_complete with
      | Some f ->
          Reg_args.set_rc pending.Worker.args Reg_args.err_killed;
          f pending.Worker.args
      | None -> ()));
  retire_worker t ep w ~quiesced:true;
  emit t
    (Call_completed
       { cpu = cpu_index; ep_id = Entry_point.id ep; aborted = true });
  if
    Entry_point.status ep = Entry_point.Hard_killed
    && Entry_point.in_progress_total ep = 0
  then begin
    (if Entry_point.id ep < Layout.max_entry_points then
       t.eps.(Entry_point.id ep) <- None
     else Hashtbl.remove t.overflow_eps (Entry_point.id ep));
    Hashtbl.remove t.active (Entry_point.id ep)
  end

and unregister_active t ep rec_ =
  let l = active_list t (Entry_point.id ep) in
  l := List.filter (fun ac -> not (ac.rec_ == rec_)) !l

(* Execute one call in the worker's process.  Entered right after the
   hand-off: the worker is current, in supervisor mode. *)
and serve_one t ep w pending =
  let cpu_index = Worker.cpu_index w in
  let kc = kcpu_of t cpu_index in
  let cpu = Kernel.Kcpu.cpu kc in
  let pc = Layout.per_cpu t.layout cpu_index in
  let kt = Layout.ktext t.layout in
  let server = Entry_point.server ep in
  let server_space = server.Entry_point.space in
  let engine = Kernel.engine t.kernel in
  emit t (Serve_begin { cpu = cpu_index; ep_id = Entry_point.id ep });
  Worker.note_call w;
  Sim.Engine.trace_f engine ~cpu:cpu_index ~kind:"upcall" (fun () ->
      Printf.sprintf "%s enters %s" (Kernel.Process.name (Worker.pcb w))
        (Entry_point.name ep));
  (* Upcall: return from the kernel directly into the server's call
     handling code. *)
  Machine.Cpu.with_category cpu Machine.Account.Ppc_kernel (fun () ->
      Machine.Cpu.instr ~code:kt.Layout.upcall cpu t.costs.upcall_instr);
  Machine.Cpu.rti cpu
    ~to_space:(Kernel.Address_space.space_of server_space);
  (* The handler runs as server code. *)
  let va = stack_va server ~cpu_index in
  let ctx =
    {
      Call_ctx.engine;
      kcpu = kc;
      cpu;
      self = Worker.pcb w;
      caller_program = pending.Worker.caller_program;
      ep_id = Entry_point.id ep;
      server_code = server.Entry_point.code_addr;
      server_data = server.Entry_point.data_addr;
      stack_va = va;
      stack_pa = Call_descriptor.stack_frame pending.Worker.cd;
      swap_handler = (fun h -> Worker.set_handler w h);
      grow_stack = (fun _ -> invalid_arg "grow_stack: not initialised");
    }
  in
  let rec_ = pending.Worker.call_rec in
  (ctx.Call_ctx.grow_stack <-
     (fun page ->
       if page = 0 then Call_descriptor.stack_frame pending.Worker.cd
       else
         match List.assoc_opt page rec_.Worker.extra_frames with
         | Some frame -> frame
         | None -> (
             match server.Entry_point.stack_policy with
             | Entry_point.Single_page ->
                 (* Touching beyond the single page without a policy is a
                    wild access: the activation faults fatally. *)
                 invalid_arg "Ppc: stack overflow (Single_page policy)"
             | Entry_point.Fixed_pages n ->
                 Fmt.invalid_arg "Ppc: page %d beyond Fixed_pages %d" page n
             | Entry_point.Fault_in n ->
                 if page < 0 || page >= n then
                   Fmt.invalid_arg "Ppc: page %d beyond Fault_in %d" page n
                 else begin
                   (* Normal page-fault handling (Section 4.5.4): trap,
                      fault handler, map, resume — only services needing
                      the depth pay. *)
                   Machine.Cpu.trap cpu;
                   let frame =
                     Machine.Cpu.with_category cpu Machine.Account.Tlb_setup
                       (fun () ->
                         Machine.Cpu.instr ~code:kt.Layout.frank cpu 90;
                         let frame = take_spare_frame t ~cpu_index cpu in
                         Kernel.Address_space.map cpu server_space
                           ~vaddr:(va + (page * 4096))
                           ~frame;
                         frame)
                   in
                   Machine.Cpu.rti cpu
                     ~to_space:(Kernel.Address_space.space_of server_space);
                   rec_.Worker.extra_frames <-
                     (page, frame) :: rec_.Worker.extra_frames;
                   frame
                 end)));
  Machine.Cpu.with_category cpu Machine.Account.Server_time (fun () ->
      (Worker.handler w) ctx pending.Worker.args);
  (* Back into the kernel. *)
  Machine.Cpu.trap cpu;
  (* Return path: tear down the mapping, recycle CD and worker, restore
     the caller. *)
  let cd = pending.Worker.cd in
  let held = Option.is_some (Worker.held_cd w) in
  Machine.Cpu.with_category cpu Machine.Account.Tlb_setup (fun () ->
      if not held then begin
        Kernel.Address_space.unmap cpu server_space ~vaddr:va;
        Machine.Cpu.instr ~code:kt.Layout.tlbops cpu 4
      end;
      (* Multi-page stacks: return the extra pages to the system
         ("cleanup on return ... implemented so as not to slow the common
         case" — nothing happens when the list is empty). *)
      List.iter
        (fun (page, frame) ->
          Machine.Cpu.instr ~code:kt.Layout.tlbops cpu 2;
          Kernel.Address_space.unmap cpu server_space
            ~vaddr:(va + (page * 4096));
          put_spare_frame t ~cpu_index cpu frame)
        pending.Worker.call_rec.Worker.extra_frames;
      pending.Worker.call_rec.Worker.extra_frames <- [];
      restore_user_space t cpu ~cpu_index ~target:pending.Worker.caller);
  Machine.Cpu.with_category cpu Machine.Account.Cd_manipulation (fun () ->
      Machine.Cpu.instr ~code:kt.Layout.cdops cpu 2;
      ignore (Call_descriptor.take_return_info cpu cd);
      if not held then begin
        Cd_pool.release cpu
          (cd_pool_for t ~cpu_index
             ~group:(Entry_point.server ep).Entry_point.trust_group)
          cd;
        emit t
          (Cd_release { cpu = cpu_index; home = Call_descriptor.home_cpu cd })
      end);
  Machine.Cpu.with_category cpu Machine.Account.Ppc_kernel (fun () ->
      Machine.Cpu.instr ~code:kt.Layout.epilogue cpu t.costs.return_instr;
      if not (Worker.retired w) then begin
        Entry_point.push_worker cpu pc ep ~cpu_index w;
        emit t (Worker_park { cpu = cpu_index; ep_id = Entry_point.id ep })
      end);
  (* A worker retired mid-call (hard-kill while it was running) leaves
     circulation here, and a held CD must be dismantled with it. *)
  if Worker.retired w then drop_held_cd t ep w;
  Machine.Cpu.with_category cpu Machine.Account.Kernel_save_restore (fun () ->
      Machine.Cpu.instr ~code:kt.Layout.switch cpu t.costs.switch_instr;
      Machine.Cpu.load_words cpu pc.Layout.save_area t.costs.switch_words);
  (* Bookkeeping. *)
  let pcs = Entry_point.per_cpu ep cpu_index in
  pcs.Entry_point.in_progress <- pcs.Entry_point.in_progress - 1;
  unregister_active t ep pending.Worker.call_rec;
  maybe_finalize_soft_kill t ep;
  emit t
    (Call_completed
       { cpu = cpu_index; ep_id = Entry_point.id ep; aborted = false });
  (* Transfer control. *)
  match pending.Worker.caller with
  | Some caller ->
      Kernel.Kcpu.handoff_back kc ~from:(Worker.pcb w) ~target:caller
  | None ->
      (* Asynchronous call: "the fact that there is no caller waiting is
         discovered, and another process is selected for execution." *)
      (match pending.Worker.on_complete with
      | Some f -> f pending.Worker.args
      | None -> ());
      Kernel.Kcpu.park kc (Worker.pcb w)

(* Switch the user context back to the caller's space if needed. *)
and restore_user_space t cpu ~cpu_index ~target =
  match target with
  | None -> ()
  | Some caller ->
      let caller_space = Kernel.Process.space caller in
      if
        Kernel.Address_space.kind caller_space = Kernel.Address_space.User
        && t.current_user_asid.(cpu_index)
           <> Kernel.Address_space.asid caller_space
      then
        switch_user_context t cpu ~cpu_index
          ~asid:(Kernel.Address_space.asid caller_space)

and maybe_finalize_soft_kill t ep =
  (* Also the hard-kill case: a worker that was *running* (not blocked)
     when its entry point was hard-killed completes through the normal
     path, and the drained entry point must still leave the table. *)
  if
    (Entry_point.status ep = Entry_point.Soft_killed
    || Entry_point.status ep = Entry_point.Hard_killed)
    && Entry_point.in_progress_total ep = 0
  then finalize_ep t ep

and finalize_ep t ep =
  for cpu_index = 0 to Kernel.n_cpus t.kernel - 1 do
    let ws = Entry_point.drain_workers ep ~cpu_index in
    List.iter
      (fun w ->
        retire_worker t ep w ~quiesced:true;
        Kernel.Process.wake (Worker.pcb w))
      ws
  done;
  (if Entry_point.id ep < Layout.max_entry_points then
     t.eps.(Entry_point.id ep) <- None
   else Hashtbl.remove t.overflow_eps (Entry_point.id ep));
  Hashtbl.remove t.active (Entry_point.id ep)

(* Frank's worker-creation slow path: executed by the calling process
   under kernel-text charges, as if the call had been redirected to the
   resource manager. *)
and create_worker t ep ~cpu_index ~charged =
  let kt = Layout.ktext t.layout in
  let kc = kcpu_of t cpu_index in
  let cpu = Kernel.Kcpu.cpu kc in
  if charged then begin
    t.stats.frank_worker_creations <- t.stats.frank_worker_creations + 1;
    Kernel.Klog.Ppc_log.debug (fun m ->
        m "frank: creating worker for %s on cpu%d" (Entry_point.name ep)
          cpu_index);
    Machine.Cpu.instr ~code:kt.Layout.frank cpu t.costs.frank_worker_instr
  end;
  let server = Entry_point.server ep in
  let pcb =
    Kernel.Process.create
      ~name:(Printf.sprintf "%s-worker" (Entry_point.name ep))
      ~kind:Kernel.Process.Worker ~program:server.Entry_point.program
      ~space:server.Entry_point.space ~cpu_index
  in
  let addr = Kernel.alloc t.kernel ~bytes:64 ~node:cpu_index in
  let w =
    Worker.create ~pcb ~ep_id:(Entry_point.id ep) ~cpu_index ~addr
      ~handler:(Entry_point.initial_handler ep)
  in
  Kernel.Kcpu.start_parked kc pcb (fun () -> serve_loop t ep w);
  let pcs = Entry_point.per_cpu ep cpu_index in
  pcs.Entry_point.workers_created <- pcs.Entry_point.workers_created + 1;
  emit t (Worker_created { cpu = cpu_index; ep_id = Entry_point.id ep });
  w

and create_cd_slow t ~cpu_index ~pool =
  let kt = Layout.ktext t.layout in
  let cpu = Kernel.Kcpu.cpu (kcpu_of t cpu_index) in
  t.stats.frank_cd_creations <- t.stats.frank_cd_creations + 1;
  Machine.Cpu.instr ~code:kt.Layout.frank cpu t.costs.frank_cd_instr;
  ignore (make_cd ~pool t ~cpu_index : Call_descriptor.t);
  match Cd_pool.alloc cpu pool with
  | Some cd -> cd
  | None -> assert false

(* --- entry point management ------------------------------------------- *)

let install_ep t ~id ~name ~server ~handler =
  if id < 0 then invalid_arg "Ppc: entry point id out of range";
  (match find_ep t id with
  | Some _ -> invalid_arg "Ppc: entry point id already bound"
  | None -> ());
  let ep =
    Entry_point.create ~id ~name ~server ~handler ~cpus:(Kernel.n_cpus t.kernel)
  in
  if id < Layout.max_entry_points then t.eps.(id) <- Some ep
  else Hashtbl.replace t.overflow_eps id ep;
  ep

let alloc_ep t ~name ~server ~handler =
  (* Next unused ID.  Small integers index the per-CPU fast array; when
     the array is exhausted, IDs spill into the overflow hash table
     (Section 4.5.5: "using a fixed sized array ... to directly locate
     service entry points that require high performance, and ... a more
     complex data structure to locate service entry points for the
     rest"). *)
  let rec next_free id =
    match find_ep t id with None -> id | Some _ -> next_free (id + 1)
  in
  let id = next_free t.next_ep_id in
  t.next_ep_id <- id + 1;
  install_ep t ~id ~name ~server ~handler

let soft_kill t ~ep_id =
  let ep = ep_exn t ep_id in
  Kernel.Klog.Ppc_log.info (fun m ->
      m "soft-kill ep%d (%s), %d calls in progress" ep_id (Entry_point.name ep)
        (Entry_point.in_progress_total ep));
  Entry_point.set_status ep Entry_point.Soft_killed;
  if Entry_point.in_progress_total ep = 0 then finalize_ep t ep

let hard_kill t ~ep_id =
  let ep = ep_exn t ep_id in
  Kernel.Klog.Ppc_log.warn (fun m ->
      m "hard-kill ep%d (%s), aborting %d calls" ep_id (Entry_point.name ep)
        (Entry_point.in_progress_total ep));
  Entry_point.set_status ep Entry_point.Hard_killed;
  (* Abort calls whose workers are blocked inside the handler; running
     workers complete their current call and then retire. *)
  let actives = !(active_list t ep_id) in
  List.iter
    (fun ac ->
      retire_worker t ep ac.ac_worker ~quiesced:false;
      let pcb = Worker.pcb ac.ac_worker in
      if Kernel.Process.state pcb = Kernel.Process.Blocked then
        Kernel.Process.wake ~error:(Sim.Engine.Cancelled "hard-kill") pcb)
    actives;
  (* Parked workers die immediately. *)
  for cpu_index = 0 to Kernel.n_cpus t.kernel - 1 do
    let ws = Entry_point.drain_workers ep ~cpu_index in
    List.iter
      (fun w ->
        retire_worker t ep w ~quiesced:true;
        Kernel.Process.wake (Worker.pcb w))
      ws
  done;
  if Entry_point.in_progress_total ep = 0 then begin
    (if ep_id < Layout.max_entry_points then t.eps.(ep_id) <- None
     else Hashtbl.remove t.overflow_eps ep_id);
    Hashtbl.remove t.active ep_id
  end

(* Kill a single worker (fault injection / management).  A worker blocked
   inside the handler is cancelled and aborts through the normal abort
   path; one still in the hand-off window (pending installed, not yet
   running) is retired and aborts itself on wake-up; one currently
   running completes its call and then retires. *)
let abort_worker t ~ep_id w =
  match find_ep t ep_id with
  | None -> false
  | Some ep ->
      if Worker.retired w then false
      else begin
        retire_worker t ep w ~quiesced:false;
        let pcb = Worker.pcb w in
        if
          Kernel.Process.state pcb = Kernel.Process.Blocked
          && not (Worker.has_pending w)
        then
          Kernel.Process.wake ~error:(Sim.Engine.Cancelled "worker-kill") pcb;
        true
      end

(* On-line replacement (Section 4.5.2's Exchange): new calls run [handler];
   pooled workers are retired so fresh ones pick up the new routine; calls
   in progress complete with the old one. *)
let exchange t ~ep_id ~handler =
  let ep = ep_exn t ep_id in
  let server = Entry_point.server ep in
  let replacement =
    Entry_point.create ~id:ep_id ~name:(Entry_point.name ep) ~server ~handler
      ~cpus:(Kernel.n_cpus t.kernel)
  in
  for cpu_index = 0 to Kernel.n_cpus t.kernel - 1 do
    let ws = Entry_point.drain_workers ep ~cpu_index in
    List.iter
      (fun w ->
        retire_worker t ep w ~quiesced:true;
        Kernel.Process.wake (Worker.pcb w))
      ws
  done;
  (if ep_id < Layout.max_entry_points then t.eps.(ep_id) <- Some replacement
   else Hashtbl.replace t.overflow_eps ep_id replacement);
  replacement

(* --- the client-side call paths ---------------------------------------- *)

(* Shared prologue: from trap entry to the hand-off (exclusive).  Returns
   the worker primed with [pending].  Runs in the caller's process. *)
let setup_call t ~ep ~cpu_index ~caller ~caller_program ~on_complete ~args
    ~opflags =
  let kc = kcpu_of t cpu_index in
  let cpu = Kernel.Kcpu.cpu kc in
  let pc = Layout.per_cpu t.layout cpu_index in
  let kt = Layout.ktext t.layout in
  let server = Entry_point.server ep in
  emit t (Fastpath_enter { cpu = cpu_index; ep_id = Entry_point.id ep });
  (* Entry: validate and locate the entry point — direct index for fast
     (small) IDs, a hash probe for overflow IDs (Section 4.5.5). *)
  Machine.Cpu.with_category cpu Machine.Account.Ppc_kernel (fun () ->
      Machine.Cpu.instr ~code:kt.Layout.entry cpu t.costs.entry_instr;
      let ep_id = Entry_point.id ep in
      if ep_id < Layout.max_entry_points then begin
        Machine.Cpu.load cpu (Layout.service_slot_addr pc ep_id);
        for i = 1 to t.costs.entry_extra_loads do
          Machine.Cpu.load cpu (Layout.wpool_head_addr pc ep_id + (4 * i))
        done
      end
      else begin
        (* Hash, probe the bucket chain, load the record. *)
        Machine.Cpu.instr cpu 14;
        let bucket = ep_id * 37 mod 128 in
        Machine.Cpu.load cpu (pc.Layout.ep_hash + (bucket * 16));
        Machine.Cpu.load cpu (pc.Layout.ep_hash + (bucket * 16) + 4);
        Machine.Cpu.load cpu (pc.Layout.ep_hash + (bucket * 16) + 8)
      end);
  (* Worker pool. *)
  let w =
    Machine.Cpu.with_category cpu Machine.Account.Ppc_kernel (fun () ->
        Machine.Cpu.instr ~code:kt.Layout.wpool cpu 4;
        match Entry_point.pop_worker cpu pc ep ~cpu_index with
        | Some w ->
            emit t (Worker_pop { cpu = cpu_index; ep_id = Entry_point.id ep });
            w
        | None ->
            (* Redirect to Frank: create a worker and forward the call. *)
            frank_gate t ~cpu_index cpu Worker_resource;
            Sim.Engine.trace_f (Kernel.engine t.kernel) ~cpu:cpu_index
              ~kind:"frank" (fun () ->
                Printf.sprintf "create worker for %s" (Entry_point.name ep));
            create_worker t ep ~cpu_index ~charged:true)
  in
  (* Call descriptor. *)
  let cd =
    Machine.Cpu.with_category cpu Machine.Account.Cd_manipulation (fun () ->
        Machine.Cpu.instr ~code:kt.Layout.cdops cpu 3;
        match Worker.held_cd w with
        | Some cd ->
            Machine.Cpu.load cpu (Worker.addr w);
            cd
        | None -> (
            let pool =
              cd_pool_for t ~cpu_index ~group:server.Entry_point.trust_group
            in
            let cd =
              match Cd_pool.alloc cpu pool with
              | Some cd -> cd
              | None -> (
                  match frank_gate t ~cpu_index cpu Cd_resource with
                  | () -> create_cd_slow t ~cpu_index ~pool
                  | exception Resource_exhausted ->
                      (* Undo the worker pop before failing the call. *)
                      Entry_point.push_worker cpu pc ep ~cpu_index w;
                      emit t
                        (Worker_park
                           { cpu = cpu_index; ep_id = Entry_point.id ep });
                      raise Resource_exhausted)
            in
            emit t
              (Cd_alloc
                 { cpu = cpu_index; home = Call_descriptor.home_cpu cd });
            if server.Entry_point.hold_cd then Worker.hold_cd w cd;
            cd))
  in
  Machine.Cpu.with_category cpu Machine.Account.Cd_manipulation (fun () ->
      match caller with
      | Some caller_pcb ->
          Call_descriptor.set_return_info cpu cd ~caller:caller_pcb ~opflags
      | None ->
          Machine.Cpu.instr cpu t.costs.retinfo_instr);
  (* Map the CD's stack into the server and switch user context. *)
  let held_before =
    Option.is_some (Worker.held_cd w) && Worker.calls_handled w > 0
  in
  let rec_hook = ref [] in
  Machine.Cpu.with_category cpu Machine.Account.Tlb_setup (fun () ->
      let va = stack_va server ~cpu_index in
      if not held_before then begin
        Machine.Cpu.instr ~code:kt.Layout.tlbops cpu 4;
        Kernel.Address_space.map cpu server.Entry_point.space ~vaddr:va
          ~frame:(Call_descriptor.stack_frame cd)
      end;
      (match server.Entry_point.stack_policy with
      | Entry_point.Single_page | Entry_point.Fault_in _ -> ()
      | Entry_point.Fixed_pages n ->
          (* The exceptional multi-page case (Section 4.5.4): map the
             remaining pages from the independent stack-page list. *)
          if n > Entry_point.stack_window_pages then
            invalid_arg "Ppc: stack policy exceeds the per-CPU window";
          for page = 1 to n - 1 do
            let frame = take_spare_frame t ~cpu_index cpu in
            Machine.Cpu.instr ~code:kt.Layout.tlbops cpu 2;
            Kernel.Address_space.map cpu server.Entry_point.space
              ~vaddr:(va + (page * 4096))
              ~frame;
            rec_hook := (page, frame) :: !rec_hook
          done);
      if
        Kernel.Address_space.kind server.Entry_point.space
        = Kernel.Address_space.User
        && t.current_user_asid.(cpu_index)
           <> Kernel.Address_space.asid server.Entry_point.space
      then begin
        switch_user_context t cpu ~cpu_index
          ~asid:(Kernel.Address_space.asid server.Entry_point.space)
      end);
  (* Minimal state switch: save caller state, load worker state. *)
  Machine.Cpu.with_category cpu Machine.Account.Kernel_save_restore (fun () ->
      Machine.Cpu.instr ~code:kt.Layout.switch cpu t.costs.switch_instr;
      Machine.Cpu.store_words cpu pc.Layout.save_area t.costs.switch_words;
      Machine.Cpu.load_words cpu (Worker.addr w) 4);
  (* Bookkeeping and pending-call installation. *)
  let rec_ =
    {
      Worker.aborted = false;
      rec_worker_id = Kernel.Process.id (Worker.pcb w);
      extra_frames = !rec_hook;
    }
  in
  Worker.set_pending w
    {
      Worker.args;
      caller;
      caller_program;
      cd;
      on_complete;
      call_rec = rec_;
    };
  let pcs = Entry_point.per_cpu ep cpu_index in
  pcs.Entry_point.in_progress <- pcs.Entry_point.in_progress + 1;
  Entry_point.note_call ep;
  let l = active_list t (Entry_point.id ep) in
  l := { rec_; ac_worker = w } :: !l;
  emit t (Fastpath_exit { cpu = cpu_index; ep_id = Entry_point.id ep });
  (w, rec_)

(* Reject path: the entry point is missing or dying. *)
let reject t cpu ~client rc args =
  t.stats.rejected_calls <- t.stats.rejected_calls + 1;
  Machine.Cpu.instr cpu 6;
  Machine.Cpu.rti cpu
    ~to_space:(Kernel.Address_space.space_of (Kernel.Process.space client));
  Reg_args.set_rc args rc;
  rc

(* Synchronous PPC round trip.  Must run in [client]'s simulated process.
   Returns the RC; results come back in [args] (register convention). *)
let call t ~client ?(opflags = 0) ~ep_id args =
  let cpu_index = Kernel.Process.cpu_index client in
  let kc = kcpu_of t cpu_index in
  let cpu = Kernel.Kcpu.cpu kc in
  let pc = Layout.per_cpu t.layout cpu_index in
  t.stats.sync_calls <- t.stats.sync_calls + 1;
  Sim.Engine.trace_f (Kernel.engine t.kernel) ~cpu:cpu_index ~kind:"ppc-call"
    (fun () ->
      Printf.sprintf "%s -> ep%d" (Kernel.Process.name client) ep_id);
  (* Client side, user mode: spill caller-saves, marshal registers. *)
  Machine.Cpu.with_category cpu Machine.Account.User_save_restore (fun () ->
      Machine.Cpu.instr ~code:pc.Layout.user_stub cpu t.costs.user_save_instr;
      Machine.Cpu.store_words cpu pc.Layout.user_stack t.costs.user_save_words;
      Machine.Cpu.instr ~code:pc.Layout.user_stub cpu t.costs.arg_marshal_instr);
  Machine.Cpu.trap cpu;
  match find_ep t ep_id with
  | None -> reject t cpu ~client Reg_args.err_no_entry args
  | Some ep when Entry_point.status ep <> Entry_point.Active ->
      Entry_point.note_rejected ep;
      reject t cpu ~client Reg_args.err_killed args
  | Some ep -> (
      match
        setup_call t ~ep ~cpu_index ~caller:(Some client)
          ~caller_program:(Kernel.Program.id (Kernel.Process.program client))
          ~on_complete:None ~args ~opflags
      with
      | exception Resource_exhausted ->
          t.stats.resource_failures <- t.stats.resource_failures + 1;
          reject t cpu ~client Reg_args.err_no_resources args
      | w, rec_ ->
      emit t (Handoff_to_worker { cpu = cpu_index; ep_id });
      (* Hand the processor to the worker; wake up when it returns. *)
      Kernel.Kcpu.handoff_sleep kc ~from:client ~target:(Worker.pcb w);
      if rec_.Worker.aborted then begin
        (* Hard-kill unwound the server: minimal cleanup. *)
        Machine.Cpu.instr cpu 8;
        Machine.Cpu.rti cpu
          ~to_space:
            (Kernel.Address_space.space_of (Kernel.Process.space client));
        Kernel.Kcpu.sync kc;
        Reg_args.set_rc args Reg_args.err_killed;
        Reg_args.err_killed
      end
      else begin
        (* Return: epilogue, back to user mode, restore registers. *)
        Sim.Engine.trace_f (Kernel.engine t.kernel) ~cpu:cpu_index
          ~kind:"ppc-return" (fun () ->
            Printf.sprintf "ep%d -> %s rc=%d" ep_id
              (Kernel.Process.name client) (Reg_args.rc args));
        let kt = Layout.ktext t.layout in
        Machine.Cpu.with_category cpu Machine.Account.Ppc_kernel (fun () ->
            Machine.Cpu.instr ~code:kt.Layout.epilogue cpu
              t.costs.epilogue_instr);
        Machine.Cpu.rti cpu
          ~to_space:
            (Kernel.Address_space.space_of (Kernel.Process.space client));
        Machine.Cpu.with_category cpu Machine.Account.User_save_restore
          (fun () ->
            Machine.Cpu.instr ~code:pc.Layout.user_stub cpu
              t.costs.user_restore_instr;
            Machine.Cpu.load_words cpu pc.Layout.user_stack
              t.costs.user_save_words);
        Kernel.Kcpu.sync kc;
        Reg_args.rc args
      end)

(* Asynchronous PPC (Section 4.4): the caller goes back on the ready
   queue instead of being linked into the CD; the worker proceeds
   independently. *)
let async_call t ~client ?(opflags = 0) ?on_complete ~ep_id args =
  let cpu_index = Kernel.Process.cpu_index client in
  let kc = kcpu_of t cpu_index in
  let cpu = Kernel.Kcpu.cpu kc in
  let pc = Layout.per_cpu t.layout cpu_index in
  t.stats.async_calls <- t.stats.async_calls + 1;
  Machine.Cpu.with_category cpu Machine.Account.User_save_restore (fun () ->
      Machine.Cpu.instr ~code:pc.Layout.user_stub cpu t.costs.user_save_instr;
      Machine.Cpu.store_words cpu pc.Layout.user_stack t.costs.user_save_words;
      Machine.Cpu.instr ~code:pc.Layout.user_stub cpu t.costs.arg_marshal_instr);
  Machine.Cpu.trap cpu;
  match find_ep t ep_id with
  | None -> ignore (reject t cpu ~client Reg_args.err_no_entry args)
  | Some ep when Entry_point.status ep <> Entry_point.Active ->
      Entry_point.note_rejected ep;
      ignore (reject t cpu ~client Reg_args.err_killed args)
  | Some ep -> (
      match
        setup_call t ~ep ~cpu_index ~caller:None
          ~caller_program:(Kernel.Program.id (Kernel.Process.program client))
          ~on_complete ~args ~opflags
      with
      | exception Resource_exhausted ->
          t.stats.resource_failures <- t.stats.resource_failures + 1;
          ignore (reject t cpu ~client Reg_args.err_no_resources args)
      | w, _rec ->
          emit t (Handoff_to_worker { cpu = cpu_index; ep_id });
          (* The caller continues independently: it re-enters the ready
             queue and the worker takes the processor now. *)
          Kernel.Kcpu.handoff_ready kc ~from:client ~target:(Worker.pcb w);
          (* Resumed by the general dispatcher: return to user mode. *)
          Machine.Cpu.instr cpu 4;
          Machine.Cpu.rti cpu
            ~to_space:
              (Kernel.Address_space.space_of (Kernel.Process.space client));
          Kernel.Kcpu.sync kc)

(* Manufactured calls (interrupt dispatch, upcalls): an existing kernel
   process [self] on the target CPU plays the caller's role and continues
   after the worker is launched. *)
let inject t ~self ?(opflags = 0) ?on_complete ~caller_program ~ep_id args =
  let cpu_index = Kernel.Process.cpu_index self in
  let kc = kcpu_of t cpu_index in
  let cpu = Kernel.Kcpu.cpu kc in
  t.stats.injected_calls <- t.stats.injected_calls + 1;
  (* Manufacture the request block. *)
  Machine.Cpu.instr cpu 10;
  match find_ep t ep_id with
  | None -> invalid_arg "Ppc.inject: unknown entry point"
  | Some ep when Entry_point.status ep <> Entry_point.Active ->
      Entry_point.note_rejected ep
  | Some ep -> (
      match
        setup_call t ~ep ~cpu_index ~caller:None ~caller_program ~on_complete
          ~args ~opflags
      with
      | exception Resource_exhausted ->
          t.stats.resource_failures <- t.stats.resource_failures + 1;
          t.stats.rejected_calls <- t.stats.rejected_calls + 1;
          Reg_args.set_rc args Reg_args.err_no_resources;
          (match on_complete with Some f -> f args | None -> ())
      | w, _rec ->
          emit t (Handoff_to_worker { cpu = cpu_index; ep_id });
          Kernel.Kcpu.handoff_ready kc ~from:self ~target:(Worker.pcb w);
          Kernel.Kcpu.sync kc)

(* Resource reclaim (Section 2: pools "grow and shrink dynamically as
   needed"; "extra stacks created during peak call activity can easily be
   reclaimed").  Retires parked workers beyond [max_workers] per
   entry point and frees CDs beyond [max_cds]; reclaimed stack frames go
   to the spare-frame list.  A management path — Frank runs it. *)
let reclaim t ~cpu_index ?(max_workers = 1) ?(max_cds = 2) () =
  Kernel.Klog.Ppc_log.info (fun m -> m "reclaim on cpu%d" cpu_index);
  let retired = ref 0 and freed = ref 0 in
  let retire_trimmed ep w =
    (* Parked, so held CDs are dismantled on the spot. *)
    retire_worker t ep w ~quiesced:true;
    Kernel.Process.wake (Worker.pcb w);
    incr retired
  in
  Array.iter
    (function
      | None -> ()
      | Some ep ->
          List.iter (retire_trimmed ep)
            (Entry_point.trim_workers ep ~cpu_index ~keep:max_workers))
    t.eps;
  Hashtbl.iter
    (fun _ ep ->
      List.iter (retire_trimmed ep)
        (Entry_point.trim_workers ep ~cpu_index ~keep:max_workers))
    t.overflow_eps;
  let trim_pool pool =
    List.iter
      (fun cd ->
        t.spare_frames.(cpu_index) <-
          Call_descriptor.stack_frame cd :: t.spare_frames.(cpu_index);
        emit t
          (Cd_trimmed { cpu = cpu_index; home = Call_descriptor.home_cpu cd });
        incr freed)
      (Cd_pool.trim pool ~keep:max_cds)
  in
  trim_pool t.cd_pools.(cpu_index);
  Hashtbl.iter
    (fun (cpu, _) pool -> if cpu = cpu_index then trim_pool pool)
    t.group_pools;
  (!retired, !freed)

let set_fault_notifier t notifier = t.fault_notifier <- notifier

(* --- inspection -------------------------------------------------------- *)

let cd_pool t cpu_index = t.cd_pools.(cpu_index)

let cd_pools_on t cpu_index =
  t.cd_pools.(cpu_index)
  :: Hashtbl.fold
       (fun (cpu, _) pool acc -> if cpu = cpu_index then pool :: acc else acc)
       t.group_pools []

let spare_frame_count t cpu_index = List.length t.spare_frames.(cpu_index)

let active_workers t ~ep_id =
  match Hashtbl.find_opt t.active ep_id with
  | None -> []
  | Some l -> List.map (fun ac -> ac.ac_worker) !l

let active_all t =
  Hashtbl.fold
    (fun ep_id l acc ->
      List.fold_left (fun acc ac -> (ep_id, ac.ac_worker) :: acc) acc !l)
    t.active []

let entry_points t =
  (Array.to_seq t.eps |> Seq.filter_map Fun.id |> List.of_seq)
  @ (Hashtbl.to_seq_values t.overflow_eps |> List.of_seq)
