(** The 8-word register argument block of a PPC call (Figure 4's
    PPC_CALL macro): eight words in, eight words out, with the last slot
    carrying opcode/flags in and the return code out. *)

type t = int array

val words : int
(** Always 8. *)

val opflags_slot : int

val make : unit -> t
val of_list : int list -> t

val get : t -> int -> int
val set : t -> int -> int -> unit

val op_flags : op:int -> flags:int -> int
(** Pack opcode and flags (both 16-bit). *)

val op_of : int -> int
val flags_of : int -> int

val set_op : t -> op:int -> flags:int -> unit
val op : t -> int
val flags : t -> int

val set_rc : t -> int -> unit
val rc : t -> int

val ok : int
val err_no_entry : int
val err_killed : int
val err_denied : int
val err_bad_request : int

val err_no_resources : int
(** Frank could not create the worker or CD the call needed (allocation
    failure / injected resource fault). *)

val err_too_big : int
(** Bulk payload exceeds the per-call copy limit — chunk and retry. *)

val err_copy_fault : int
(** Copy engine rejected the descriptor: bad range or ownership. *)

val copy : t -> t
val pp : Format.formatter -> t -> unit
