(** Worker processes: dynamically created, per-processor, per-service
    servants that execute PPC calls in the server's address space. *)

type pending = {
  args : Reg_args.t;
  caller : Kernel.Process.t option;  (** [None] for asynchronous calls *)
  caller_program : Kernel.Program.id;
  cd : Call_descriptor.t;
  on_complete : (Reg_args.t -> unit) option;
  call_rec : call_rec;
}

and call_rec = {
  mutable aborted : bool;
  mutable rec_worker_id : int;
  mutable extra_frames : (int * int) list;
      (** (page index, physical frame) for multi-page stacks *)
}

type t

val create :
  pcb:Kernel.Process.t ->
  ep_id:int ->
  cpu_index:int ->
  addr:int ->
  handler:Call_ctx.handler ->
  t

val pcb : t -> Kernel.Process.t
val ep_id : t -> int
val cpu_index : t -> int
val addr : t -> int

val handler : t -> Call_ctx.handler
val set_handler : t -> Call_ctx.handler -> unit
(** The worker-initialization swap (Section 4.5.3). *)

val held_cd : t -> Call_descriptor.t option
val hold_cd : t -> Call_descriptor.t -> unit
(** Pin a CD+stack to this worker (trades cache footprint for per-call
    speed — Figure 2's "hold CD" bars). *)

val drop_held : t -> unit
(** Unpin the held CD (the worker is leaving circulation and its CD is
    being dismantled). *)

val calls_handled : t -> int
val note_call : t -> unit
val retired : t -> bool
val retire : t -> unit

val set_pending : t -> pending -> unit
val take_pending : t -> pending option

val has_pending : t -> bool
(** A call is installed but not yet taken (the hand-off window). *)
