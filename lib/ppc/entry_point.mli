(** Service entry points: small-integer IDs bound to server descriptors
    with per-processor worker pools. *)

type status = Ipc_intf.Lifecycle.status = Active | Soft_killed | Hard_killed
(** Shared with the real-domain runtime via {!Ipc_intf.Lifecycle}. *)

type stack_policy = Single_page | Fixed_pages of int | Fault_in of int

val stack_window_pages : int

type server = {
  server_name : string;
  program : Kernel.Program.t;
  space : Kernel.Address_space.t;
  code_addr : int;
  data_addr : int;
  stack_va_base : int;
  hold_cd : bool;
  stack_policy : stack_policy;
  trust_group : int;
}

type per_cpu_state = {
  mutable pool : Worker.t list;
  mutable workers_created : int;
  mutable in_progress : int;
  mutable pool_empty_hits : int;
}

type t

val create :
  id:int ->
  name:string ->
  server:server ->
  handler:Call_ctx.handler ->
  cpus:int ->
  t

val id : t -> int
val name : t -> string
val server : t -> server
val initial_handler : t -> Call_ctx.handler
val status : t -> status
val set_status : t -> status -> unit
val per_cpu : t -> int -> per_cpu_state
val total_calls : t -> int
val note_call : t -> unit
val rejected_calls : t -> int
val note_rejected : t -> unit
val in_progress_total : t -> int
val workers_total : t -> int

val pop_worker :
  Machine.Cpu.t -> Layout.per_cpu -> t -> cpu_index:int -> Worker.t option
(** Take a worker from the processor-local pool, charging the free-list
    traffic; [None] when empty (redirect to Frank). *)

val push_worker :
  Machine.Cpu.t -> Layout.per_cpu -> t -> cpu_index:int -> Worker.t -> unit

val add_worker : t -> cpu_index:int -> Worker.t -> unit
(** Management-path insert (no memory charges). *)

val trim_workers : t -> cpu_index:int -> keep:int -> Worker.t list
(** Shrink the parked pool to [keep] workers; returns the retired ones. *)

val drain_workers : t -> cpu_index:int -> Worker.t list
