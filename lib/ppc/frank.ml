(* Frank, the PPC resource manager (paper Section 4.5.6).

   "A kernel-level server ... used to manage the PPC resources.  Service
   entry points are allocated and deallocated with PPC calls to Frank,
   which has a well-known service ID.  Frank is ... special only in that
   all its resources are preallocated, it may not block, and it may not
   be preempted."

   Because a server's call-handling routine cannot travel through eight
   registers, callers first *stage* the descriptor-and-handler pair and
   pass the staging token in the call — standing in for "the routine's
   address inside the caller's space".

   (The name Frank was chosen so that Bob, the file server, would not be
   the only server with an eccentric name.) *)

(* Frank's well-known ID and opcode map come from the shared control-
   plane vocabulary; the runtime's resource manager answers the same
   opcodes at the same ID. *)
let well_known_id = Ipc_intf.Wellknown.resource_manager_ep

let op_alloc_ep = Ipc_intf.Wellknown.op_alloc_ep
let op_soft_kill = Ipc_intf.Wellknown.op_soft_kill
let op_hard_kill = Ipc_intf.Wellknown.op_hard_kill
let op_exchange = Ipc_intf.Wellknown.op_exchange
let op_grow_pool = Ipc_intf.Wellknown.op_grow_pool
let op_reclaim = Ipc_intf.Wellknown.op_reclaim

type staged = { server : Entry_point.server; handler : Call_ctx.handler }

type t = {
  engine : Engine.t;
  mutable staging : (int * staged) list;
  mutable next_token : int;
}

(* Stage a server definition; the returned token goes in the call. *)
let stage t ~server ~handler =
  let token = t.next_token in
  t.next_token <- token + 1;
  t.staging <- (token, { server; handler }) :: t.staging;
  token

let take_staged t token =
  match List.assoc_opt token t.staging with
  | None -> None
  | Some s ->
      t.staging <- List.remove_assoc token t.staging;
      Some s

let handler t : Call_ctx.handler =
 fun ctx args ->
  (* Frank's own work: table manipulation in the kernel. *)
  Machine.Cpu.instr ~code:ctx.Call_ctx.server_code ctx.Call_ctx.cpu 40;
  Null_server.touch_stack ctx ~words:4;
  let op = Reg_args.op args in
  if op = op_alloc_ep then begin
    match take_staged t (Reg_args.get args 0) with
    | None -> Reg_args.set_rc args Reg_args.err_bad_request
    | Some s ->
        let ep = Engine.alloc_ep t.engine ~name:s.server.Entry_point.server_name
            ~server:s.server ~handler:s.handler
        in
        Reg_args.set args 0 (Entry_point.id ep);
        Reg_args.set_rc args Reg_args.ok
  end
  else if op = op_soft_kill then begin
    match Engine.find_ep t.engine (Reg_args.get args 0) with
    | None -> Reg_args.set_rc args Reg_args.err_no_entry
    | Some _ ->
        Engine.soft_kill t.engine ~ep_id:(Reg_args.get args 0);
        Reg_args.set_rc args Reg_args.ok
  end
  else if op = op_hard_kill then begin
    match Engine.find_ep t.engine (Reg_args.get args 0) with
    | None -> Reg_args.set_rc args Reg_args.err_no_entry
    | Some _ ->
        Engine.hard_kill t.engine ~ep_id:(Reg_args.get args 0);
        Reg_args.set_rc args Reg_args.ok
  end
  else if op = op_exchange then begin
    match
      ( Engine.find_ep t.engine (Reg_args.get args 0),
        take_staged t (Reg_args.get args 1) )
    with
    | Some _, Some s ->
        ignore
          (Engine.exchange t.engine ~ep_id:(Reg_args.get args 0)
             ~handler:s.handler);
        Reg_args.set_rc args Reg_args.ok
    | _ -> Reg_args.set_rc args Reg_args.err_bad_request
  end
  else if op = op_grow_pool then begin
    (* Pre-populate this CPU's worker pool for an entry point. *)
    match Engine.find_ep t.engine (Reg_args.get args 0) with
    | None -> Reg_args.set_rc args Reg_args.err_no_entry
    | Some ep ->
        let cpu_index = Reg_args.get args 1 in
        let w = Engine.create_worker t.engine ep ~cpu_index ~charged:false in
        Entry_point.add_worker ep ~cpu_index w;
        Reg_args.set_rc args Reg_args.ok
  end
  else if op = op_reclaim then begin
    (* Shrink this processor's pools back to steady state (Section 2's
       reclaim of peak-time stacks and workers). *)
    let cpu_index = Machine.Cpu.node ctx.Call_ctx.cpu in
    Machine.Cpu.instr ~code:ctx.Call_ctx.server_code ctx.Call_ctx.cpu 80;
    let retired, freed =
      Engine.reclaim t.engine ~cpu_index
        ~max_workers:(Stdlib.max 1 (Reg_args.get args 0))
        ~max_cds:(Stdlib.max 1 (Reg_args.get args 1))
        ()
    in
    Reg_args.set args 0 retired;
    Reg_args.set args 1 freed;
    Reg_args.set_rc args Reg_args.ok
  end
  else Reg_args.set_rc args Reg_args.err_bad_request

(* Install Frank at his well-known entry point, with one preallocated
   worker per processor and a kernel-space descriptor. *)
let install engine =
  let kern = Engine.kernel engine in
  let t = { engine; staging = []; next_token = 1 } in
  let server =
    {
      Entry_point.server_name = "frank";
      program = Kernel.kernel_program kern;
      space = Kernel.kernel_space kern;
      code_addr = Kernel.alloc kern ~align:`Page ~bytes:1024 ~node:0;
      data_addr = Kernel.alloc kern ~align:`Page ~bytes:1024 ~node:0;
      stack_va_base =
        Kernel.alloc kern ~align:`Page ~bytes:(4096 * Kernel.n_cpus kern) ~node:0;
      hold_cd = true;
      stack_policy = Entry_point.Single_page;
      trust_group = 0;
    }
  in
  let ep =
    Engine.install_ep engine ~id:well_known_id ~name:"frank" ~server
      ~handler:(handler t)
  in
  for cpu_index = 0 to Kernel.n_cpus kern - 1 do
    let w = Engine.create_worker engine ep ~cpu_index ~charged:false in
    Entry_point.add_worker ep ~cpu_index w
  done;
  t

(* Client-side convenience wrappers (each is a normal PPC). *)

let alloc_entry_point t ~client ~server ~handler:h =
  let token = stage t ~server ~handler:h in
  let args = Reg_args.make () in
  Reg_args.set args 0 token;
  Reg_args.set_op args ~op:op_alloc_ep ~flags:0;
  let rc =
    Engine.call t.engine ~client
      ~opflags:(Reg_args.op_flags ~op:op_alloc_ep ~flags:0)
      ~ep_id:well_known_id args
  in
  if rc = Reg_args.ok then Ok (Reg_args.get args 0) else Error rc

let simple_op t ~client ~op ~ep_id =
  let args = Reg_args.make () in
  Reg_args.set args 0 ep_id;
  Reg_args.set_op args ~op ~flags:0;
  Engine.call t.engine ~client
    ~opflags:(Reg_args.op_flags ~op ~flags:0)
    ~ep_id:well_known_id args

let soft_kill t ~client ~ep_id = simple_op t ~client ~op:op_soft_kill ~ep_id
let hard_kill t ~client ~ep_id = simple_op t ~client ~op:op_hard_kill ~ep_id

let exchange t ~client ~ep_id ~handler:h =
  let token =
    stage t
      ~server:
        (match Engine.find_ep t.engine ep_id with
        | Some ep -> Entry_point.server ep
        | None -> invalid_arg "Frank.exchange: unknown entry point")
      ~handler:h
  in
  let args = Reg_args.make () in
  Reg_args.set args 0 ep_id;
  Reg_args.set args 1 token;
  Reg_args.set_op args ~op:op_exchange ~flags:0;
  Engine.call t.engine ~client
    ~opflags:(Reg_args.op_flags ~op:op_exchange ~flags:0)
    ~ep_id:well_known_id args

let grow_pool t ~client ~ep_id ~cpu_index =
  let args = Reg_args.make () in
  Reg_args.set args 0 ep_id;
  Reg_args.set args 1 cpu_index;
  Reg_args.set_op args ~op:op_grow_pool ~flags:0;
  Engine.call t.engine ~client
    ~opflags:(Reg_args.op_flags ~op:op_grow_pool ~flags:0)
    ~ep_id:well_known_id args

(* Reclaim this CPU's pools via a PPC to Frank. *)
let reclaim t ~client ~max_workers ~max_cds =
  let args = Reg_args.make () in
  Reg_args.set args 0 max_workers;
  Reg_args.set args 1 max_cds;
  Reg_args.set_op args ~op:op_reclaim ~flags:0;
  let rc =
    Engine.call t.engine ~client
      ~opflags:(Reg_args.op_flags ~op:op_reclaim ~flags:0)
      ~ep_id:well_known_id args
  in
  if rc = Reg_args.ok then Ok (Reg_args.get args 0, Reg_args.get args 1)
  else Error rc
