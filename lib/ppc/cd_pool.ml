(* Per-processor call-descriptor pool.

   A LIFO free list: the most recently released CD (and its stack page,
   still warm in the cache) is reused first — the serial stack sharing
   that the paper credits for the small cache footprint.  Accessed
   exclusively by the owning processor, so no lock exists at all.

   The free-list manipulation is charged as real memory traffic on the
   pool head word and the CD's link field. *)

type t = {
  pc : Layout.per_cpu;
  mutable free : Call_descriptor.t list;
  mutable created : int;
  mutable allocs : int;
  mutable empty_hits : int;  (** allocations that found the pool empty *)
}

let create pc = { pc; free = []; created = 0; allocs = 0; empty_hits = 0 }

let size t = List.length t.free
let created t = t.created
let allocs t = t.allocs
let empty_hits t = t.empty_hits

(* Register a brand-new CD (built by Frank's slow path). *)
let add t cd =
  t.created <- t.created + 1;
  t.free <- cd :: t.free

let charge_pop cpu t cd =
  Machine.Cpu.instr cpu 6;
  Machine.Cpu.load cpu t.pc.Layout.cd_pool_head;
  Machine.Cpu.load cpu (Call_descriptor.addr cd);
  Machine.Cpu.store cpu t.pc.Layout.cd_pool_head

let alloc cpu t =
  t.allocs <- t.allocs + 1;
  match t.free with
  | [] ->
      (* Empty pool: one load discovers it; the caller redirects to
         Frank. *)
      Machine.Cpu.instr cpu 3;
      Machine.Cpu.load cpu t.pc.Layout.cd_pool_head;
      t.empty_hits <- t.empty_hits + 1;
      None
  | cd :: rest ->
      charge_pop cpu t cd;
      t.free <- rest;
      Some cd

let release cpu t cd =
  if Call_descriptor.home_cpu cd <> t.pc.Layout.node then
    invalid_arg "Cd_pool.release: CD returned to a foreign processor";
  Machine.Cpu.instr cpu 5;
  Machine.Cpu.store cpu (Call_descriptor.addr cd);
  Machine.Cpu.store cpu t.pc.Layout.cd_pool_head;
  Call_descriptor.clear cd;
  t.free <- cd :: t.free

(* State-only return, no memory charges: abort paths run from event
   context where no processor is current, so nothing can be charged. *)
let restore t cd =
  if Call_descriptor.home_cpu cd <> t.pc.Layout.node then
    invalid_arg "Cd_pool.restore: CD returned to a foreign processor";
  Call_descriptor.clear cd;
  t.free <- cd :: t.free

let free_list t = t.free

(* Unchecked state manipulation, for fault injection only: deliberately
   breaking the ownership discipline (leaking a CD into a foreign pool)
   lets the invariant checker be validated against a known-bad state. *)
let unsafe_pop t =
  match t.free with
  | [] -> None
  | cd :: rest ->
      t.free <- rest;
      Some cd

let unsafe_push t cd = t.free <- cd :: t.free

(* Reclaim beyond [keep]: the CDs' stack pages return to the system
   ("extra stacks created during peak call activity can easily be
   reclaimed").  Returns the reclaimed CDs (their frames are free for
   reuse by the caller). *)
let trim t ~keep =
  if keep < 0 then invalid_arg "Cd_pool.trim: negative keep";
  let rec split kept n = function
    | [] -> (List.rev kept, [])
    | cd :: rest when n < keep -> split (cd :: kept) (n + 1) rest
    | extra -> (List.rev kept, extra)
  in
  let kept, extra = split [] 0 t.free in
  t.free <- kept;
  extra
