(* Worker processes.

   Workers service PPC calls in the server's address space.  They are
   created dynamically as needed (by Frank), live in per-processor
   per-service pools, and are (re)initialized to the server's
   call-handling code on each call.

   [handler] is mutable: the worker-initialization scheme of Section
   4.5.3 lets a worker's first call run an init routine that swaps in the
   real handler; [held_cd] implements the "permanently hold a CD and
   stack" mode whose trade-off Figure 2 quantifies. *)

type pending = {
  args : Reg_args.t;
  caller : Kernel.Process.t option;  (** [None] for asynchronous calls *)
  caller_program : Kernel.Program.id;
  cd : Call_descriptor.t;
  on_complete : (Reg_args.t -> unit) option;
      (** asynchronous-completion hook (prefetch notifications etc.) *)
  call_rec : call_rec;
}

and call_rec = {
  mutable aborted : bool;
  mutable rec_worker_id : int;
  mutable extra_frames : (int * int) list;
      (** (page index, physical frame) for multi-page stacks *)
}
(** Shared between caller and worker so a hard-kill can mark an
    in-progress call as aborted without violating the scheduler's
    one-current-process-per-CPU invariant. *)

type t = {
  pcb : Kernel.Process.t;
  ep_id : int;
  cpu_index : int;
  addr : int;  (** worker structure in processor-local memory *)
  mutable handler : Call_ctx.handler;
  mutable held_cd : Call_descriptor.t option;
  mutable pending : pending option;
  mutable calls_handled : int;
  mutable retired : bool;
}

let create ~pcb ~ep_id ~cpu_index ~addr ~handler =
  {
    pcb;
    ep_id;
    cpu_index;
    addr;
    handler;
    held_cd = None;
    pending = None;
    calls_handled = 0;
    retired = false;
  }

let pcb t = t.pcb
let ep_id t = t.ep_id
let cpu_index t = t.cpu_index
let addr t = t.addr
let handler t = t.handler
let set_handler t h = t.handler <- h
let held_cd t = t.held_cd
let hold_cd t cd = t.held_cd <- Some cd
let drop_held t = t.held_cd <- None
let calls_handled t = t.calls_handled
let note_call t = t.calls_handled <- t.calls_handled + 1
let retired t = t.retired
let retire t = t.retired <- true

let set_pending t p =
  (match t.pending with
  | None -> ()
  | Some _ -> invalid_arg "Worker.set_pending: call already pending");
  t.pending <- Some p

let take_pending t =
  let p = t.pending in
  t.pending <- None;
  p

let has_pending t = Option.is_some t.pending
