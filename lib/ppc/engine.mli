(** The PPC call engine (paper Section 2): lock-free, shared-data-free
    protected procedure calls over the simulated kernel. *)

exception Call_aborted

exception Resource_exhausted
(** Raised by an injected resource fault ({!set_resource_fault}) when
    Frank's slow path is made to fail; the call paths turn it into an
    [Reg_args.err_no_resources] rejection. *)

type path_costs = {
  user_save_instr : int;
  user_save_words : int;
  arg_marshal_instr : int;
  entry_instr : int;
  entry_extra_loads : int;
  retinfo_instr : int;
  switch_instr : int;
  switch_words : int;
  space_switch_instr : int;
  upcall_instr : int;
  return_instr : int;
  epilogue_instr : int;
  user_restore_instr : int;
  frank_worker_instr : int;
  frank_cd_instr : int;
}

val default_costs : path_costs

type stats = {
  mutable sync_calls : int;
  mutable async_calls : int;
  mutable injected_calls : int;
  mutable frank_worker_creations : int;
  mutable frank_cd_creations : int;
  mutable aborted_calls : int;
  mutable rejected_calls : int;
  mutable handler_faults : int;
  mutable resource_failures : int;
}

(** Observation probes (see {!set_probe}): every transition that moves a
    worker, CD or stack frame in or out of circulation, plus the
    fast-path and hand-off window boundaries.  [cpu] is the processor
    executing the transition; [home] the resource's owning processor. *)
type probe_event =
  | Fastpath_enter of { cpu : int; ep_id : int }
  | Fastpath_exit of { cpu : int; ep_id : int }
  | Worker_pop of { cpu : int; ep_id : int }
  | Worker_created of { cpu : int; ep_id : int }
  | Worker_park of { cpu : int; ep_id : int }
  | Worker_retired of { cpu : int; ep_id : int }
  | Cd_created of { home : int }
  | Cd_alloc of { cpu : int; home : int }
  | Cd_release of { cpu : int; home : int }
  | Cd_dropped of { cpu : int; home : int }
  | Cd_trimmed of { cpu : int; home : int }
  | Frame_taken of { cpu : int; fresh : bool }
  | Frame_returned of { cpu : int }
  | Handoff_to_worker of { cpu : int; ep_id : int }
  | Serve_begin of { cpu : int; ep_id : int }
  | Call_completed of { cpu : int; ep_id : int; aborted : bool }

type resource = Worker_resource | Cd_resource
type resource_verdict = [ `Proceed | `Delay of int | `Fail ]

type t

val create : ?costs:path_costs -> ?initial_cds_per_cpu:int -> Kernel.t -> t

val kernel : t -> Kernel.t
val layout : t -> Layout.t
val costs : t -> path_costs
val stats : t -> stats

val find_ep : t -> int -> Entry_point.t option
val entry_points : t -> Entry_point.t list
val cd_pool : t -> int -> Cd_pool.t

val cd_pools_on : t -> int -> Cd_pool.t list
(** Every CD pool homed on a CPU: the default (group-0) pool plus any
    trust-group pools. *)

val spare_frame_count : t -> int -> int
(** Length of a CPU's spare stack-page list. *)

val active_workers : t -> ep_id:int -> Worker.t list
(** Workers with a call in progress on an entry point. *)

val active_all : t -> (int * Worker.t) list
(** All in-progress calls as [(ep_id, worker)] pairs. *)

val set_probe : t -> (probe_event -> unit) option -> unit
(** Install an observation probe (fault-injection/invariant layer).
    Probes must not schedule, suspend, or mutate engine state. *)

val set_resource_fault :
  t -> (cpu_index:int -> resource -> resource_verdict) option -> unit
(** Install a resource fault: consulted whenever Frank's slow path is
    about to create a worker or CD.  [`Delay n] charges [n] extra
    kernel-text instructions; [`Fail] rejects the call with
    [Reg_args.err_no_resources] (counted in [stats.resource_failures]). *)

val install_ep :
  t ->
  id:int ->
  name:string ->
  server:Entry_point.server ->
  handler:Call_ctx.handler ->
  Entry_point.t
(** Bind a specific entry-point ID (well-known services: Frank, the Name
    Server). *)

val alloc_ep :
  t ->
  name:string ->
  server:Entry_point.server ->
  handler:Call_ctx.handler ->
  Entry_point.t
(** Bind the next free small-integer ID. *)

val create_worker :
  t -> Entry_point.t -> cpu_index:int -> charged:bool -> Worker.t
(** Create and park a worker ([charged] adds Frank's slow-path cycles on
    the target CPU — pre-population passes [false]). *)

val soft_kill : t -> ep_id:int -> unit
(** Stop new calls; free everything once calls in progress complete. *)

val hard_kill : t -> ep_id:int -> unit
(** Also abort calls blocked inside the server; running calls finish and
    then their workers retire. *)

val abort_worker : t -> ep_id:int -> Worker.t -> bool
(** Kill one worker (fault injection / management).  Blocked inside the
    handler: its call is aborted through the abort/reclaim path.  In the
    hand-off window: the call aborts when the worker wakes.  Running: it
    completes its current call, then retires.  [false] if the worker was
    already retired. *)

val exchange : t -> ep_id:int -> handler:Call_ctx.handler -> Entry_point.t
(** On-line replacement: same ID, new handler; in-progress calls finish
    with the old routine. *)

val set_fault_notifier :
  t -> (cpu_index:int -> ep_id:int -> caller_program:int -> unit) option -> unit
(** Hook invoked when a server handler faults (before the call is
    aborted); the exception server registers itself here. *)

val reclaim :
  t -> cpu_index:int -> ?max_workers:int -> ?max_cds:int -> unit -> int * int
(** Shrink this CPU's pools back to steady-state sizes; returns
    (workers retired, CDs freed).  Management path. *)

val call :
  t -> client:Kernel.Process.t -> ?opflags:int -> ep_id:int -> Reg_args.t -> int
(** Synchronous round trip from [client]'s simulated process.  Returns
    the RC (also left in the opflags slot); results come back in the
    argument block. *)

val async_call :
  t ->
  client:Kernel.Process.t ->
  ?opflags:int ->
  ?on_complete:(Reg_args.t -> unit) ->
  ep_id:int ->
  Reg_args.t ->
  unit
(** Asynchronous variant: the caller re-enters the ready queue and the
    worker proceeds independently. *)

val inject :
  t ->
  self:Kernel.Process.t ->
  ?opflags:int ->
  ?on_complete:(Reg_args.t -> unit) ->
  caller_program:Kernel.Program.id ->
  ep_id:int ->
  Reg_args.t ->
  unit
(** Manufacture an asynchronous call from an existing kernel process on
    the target CPU (interrupt dispatch, upcalls). *)

val stack_va : Entry_point.server -> cpu_index:int -> int
(** Where this server's worker stacks are mapped on a given CPU. *)
