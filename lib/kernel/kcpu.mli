(** Per-CPU kernel context: ready queue, current process, hand-off
    scheduling, and cycle-to-simulated-time synchronisation. *)

type t

val create : Sim.Engine.t -> Machine.Cpu.t -> index:int -> t

val index : t -> int
val engine : t -> Sim.Engine.t
val cpu : t -> Machine.Cpu.t
val current : t -> Process.t option
val ready_count : t -> int
val dispatches : t -> int
val handoffs : t -> int

val sync : t -> unit
(** Advance simulated time by the CPU's unsynced cycles. Call from the
    running process. *)

val ready : ?band:[ `Front | `Normal ] -> t -> Process.t -> unit
(** Make a process runnable ([`Front] = interrupt/kernel band).  Safe
    from event context; dispatches immediately if the CPU is idle. *)

val perturb_ready : t -> (Process.t list -> Process.t list) -> unit
(** Reorder the normal-band ready queue with [f] (fault injection).
    Raises [Invalid_argument] unless [f] returns a permutation. *)

val start : ?band:[ `Front | `Normal ] -> t -> Process.t -> (unit -> unit) -> unit
(** Spawn a process body; it runs when first dispatched and the process
    dies when the body returns. *)

val start_parked : t -> Process.t -> (unit -> unit) -> unit
(** Spawn a process that begins blocked (a pool worker); its first wake
    is a hand-off or {!ready}. *)

val block : t -> Process.t -> unit
(** The running process gives up the CPU until an external {!ready}. *)

val yield : t -> Process.t -> unit

val sleep_until : t -> Process.t -> wake:Sim.Time.t -> unit
(** Timed park: the running process gives up the CPU and re-enters the
    ready queue at absolute time [wake] (no-op if [wake] has passed).
    Unlike a bare [Sim.Engine.delay] — which leaves the process current
    and starves the CPU's ready queue — other processes run during the
    wait. *)

val handoff_sleep : t -> from:Process.t -> target:Process.t -> unit
(** Direct CPU transfer to [target], bypassing the ready queue; the
    caller sleeps until woken (synchronous PPC). *)

val handoff_ready : t -> from:Process.t -> target:Process.t -> unit
(** Direct transfer where the caller re-enters the ready queue
    (asynchronous PPC). *)

val handoff_back : t -> from:Process.t -> target:Process.t -> unit
(** PPC return path: identical mechanics to {!handoff_sleep} (the worker
    parks until its next call). *)

val park : t -> Process.t -> unit
(** Alias of {!block}: a worker returning to its pool. *)

val idle_total : t -> Sim.Time.t
val utilisation : t -> horizon:Sim.Time.t -> float
