(** Address spaces with costed page mapping. *)

type kind = User | Kernel

type t

val create : kind:kind -> name:string -> pte_base:int -> page_bytes:int -> t

val kind : t -> kind
val name : t -> string
val asid : t -> int
val page_bytes : t -> int

val translate : t -> int -> int option
(** Virtual-to-physical translation, if mapped. *)

val is_mapped : t -> int -> bool

val space_of : t -> Machine.Tlb.space
(** TLB context this space's accesses use. *)

val map : Machine.Cpu.t -> t -> vaddr:int -> frame:int -> unit
(** Install a mapping, charging the CPU for the PTE write (caller sets
    the accounting category). *)

val unmap : Machine.Cpu.t -> t -> vaddr:int -> unit
(** Remove a mapping; invalidates the local TLB entry only (PPC stacks
    are processor-local, so no shootdown is needed). *)

val forget : t -> vaddr:int -> unit
(** State-only unmap, charging nothing: for abort/teardown paths that run
    from event context with no current processor. *)
