(** Readers-writer spinlock with FIFO grant and read batching (writers
    are not starved).  Cost model matches {!Spinlock}. *)

type t

val total_acquisitions : unit -> int
(** Process-wide count of read+write acquires across every lock instance
    (see {!Spinlock.total_acquisitions}). *)

val create : ?transfer_cycles:int -> addr:int -> unit -> t

val acquire_read : Sim.Engine.t -> Machine.Cpu.t -> Process.t -> t -> unit
val acquire_write : Sim.Engine.t -> Machine.Cpu.t -> Process.t -> t -> unit

val release_read : Sim.Engine.t -> Machine.Cpu.t -> Process.t -> t -> unit
(** Raises [Invalid_argument] when no reader is active. *)

val release_write : Sim.Engine.t -> Machine.Cpu.t -> Process.t -> t -> unit
(** Raises [Invalid_argument] when the caller is not the writer. *)

val active_readers : t -> int
val active_writer : t -> Process.t option
val read_acquisitions : t -> int
val write_acquisitions : t -> int
val contended_acquisitions : t -> int
val mean_wait_us : t -> float
