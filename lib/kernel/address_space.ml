(* Address spaces and page mapping.

   A space is a page table from virtual page number to physical frame
   base.  The page-table entries themselves live in simulated memory (at
   [pte_base]) so that manipulating a mapping costs realistic cached
   stores — the "TLB setup" category of Figure 2.

   The kernel space is a singleton per machine: calls into kernel-level
   servers need no user-context switch, which is what makes the paper's
   user-to-kernel PPC cheaper. *)

type kind = User | Kernel

type t = {
  kind : kind;
  name : string;
  asid : int;
  table : (int, int) Hashtbl.t;  (** virtual page -> frame base *)
  pte_base : int;  (** where this space's PTEs live *)
  page_bytes : int;
}

let counter = ref 0

let create ~kind ~name ~pte_base ~page_bytes =
  incr counter;
  {
    kind;
    name;
    asid = !counter;
    table = Hashtbl.create 64;
    pte_base;
    page_bytes;
  }

let kind t = t.kind
let name t = t.name
let asid t = t.asid
let page_bytes t = t.page_bytes

let vpage t vaddr = vaddr / t.page_bytes

let pte_addr t vaddr =
  (* PTEs are 4 bytes; index by the low bits of the vpage over a bounded
     table region (one page of PTEs covers 4 MB of mappings, plenty for
     the experiments). *)
  t.pte_base + (vpage t vaddr mod 1024 * 4)

let translate t vaddr =
  match Hashtbl.find_opt t.table (vpage t vaddr) with
  | None -> None
  | Some frame -> Some (frame + (vaddr mod t.page_bytes))

let is_mapped t vaddr = Hashtbl.mem t.table (vpage t vaddr)

let space_of t : Machine.Tlb.space =
  match t.kind with User -> Machine.Tlb.User | Kernel -> Machine.Tlb.Supervisor

(* Map one page.  Charges the calling CPU for the PTE write and a little
   bookkeeping; the caller decides the accounting category. *)
let map cpu t ~vaddr ~frame =
  let vp = vpage t vaddr in
  Machine.Cpu.instr cpu 6;
  Machine.Cpu.store cpu (pte_addr t vaddr);
  Hashtbl.replace t.table vp frame

(* Unmap one page and invalidate the local TLB entry.  Cross-CPU
   shootdown is a remote interrupt in the real system; PPC stacks are
   strictly processor-local so the local invalidate suffices (this is one
   of the paper's locality wins). *)
let unmap cpu t ~vaddr =
  let vp = vpage t vaddr in
  Machine.Cpu.instr cpu 6;
  Machine.Cpu.store cpu (pte_addr t vaddr);
  Machine.Tlb.invalidate (Machine.Cpu.tlb cpu) (space_of t) vaddr;
  Hashtbl.remove t.table vp

(* State-only unmap: drop the mapping without charging any CPU.  Abort
   paths run from event context where no processor is "current", so the
   cleanup must not attribute cycles to whoever happens to be running. *)
let forget t ~vaddr = Hashtbl.remove t.table (vpage t vaddr)
