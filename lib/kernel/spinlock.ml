(* Simulated spinlock over an uncached shared word.

   On the coherence-free Hector, a lock word must live in uncached shared
   memory: every test-and-set is a (possibly remote) memory transaction.
   The model:

   - an uncontended acquire is one uncached read-modify-write plus a few
     instructions;
   - a contended acquire parks the waiter FIFO (the simulated processor
     keeps spinning — it is *not* released to other processes, exactly
     like a real spinlock);
   - a release hands the lock to the oldest waiter and charges the new
     owner the handover traffic: its winning test-and-set plus the
     ping-pong retries modelled by [transfer_cycles].

   This reproduces the saturation behaviour of the paper's Figure 3
   single-file curve: throughput is bounded by
   1 / (hold time + handover cost). *)

(* Process-wide acquisition odometer: monotone, never fed back into the
   simulation (so it cannot perturb determinism).  The fault-injection
   invariant checker snapshots it around the PPC fast path to prove the
   path acquired no lock. *)
let global_acquisitions = ref 0
let total_acquisitions () = !global_acquisitions

type waiter = { proc : Process.t; enqueued_at : Sim.Time.t }

type t = {
  addr : int;
  transfer_cycles : int;
  mutable owner : Process.t option;
  waiters : waiter Queue.t;
  mutable acquisitions : int;
  mutable contended : int;
  mutable max_waiters : int;
  mutable acquired_at : Sim.Time.t;
  hold_stats : Sim.Stats.t;
  wait_stats : Sim.Stats.t;
}

let create ?(transfer_cycles = 40) ~addr () =
  {
    addr;
    transfer_cycles;
    owner = None;
    waiters = Queue.create ();
    acquisitions = 0;
    contended = 0;
    max_waiters = 0;
    acquired_at = Sim.Time.zero;
    hold_stats = Sim.Stats.create ~keep_samples:false ();
    wait_stats = Sim.Stats.create ~keep_samples:false ();
  }

let holder t = t.owner
let acquisitions t = t.acquisitions
let contended_acquisitions t = t.contended
let max_waiters t = t.max_waiters
let mean_hold_us t = Sim.Stats.mean t.hold_stats
let mean_wait_us t = Sim.Stats.mean t.wait_stats

let acquire engine cpu proc t =
  incr global_acquisitions;
  (* The test-and-set attempt: uncached RMW + a couple of instructions. *)
  Machine.Cpu.instr cpu 3;
  Machine.Cpu.uncached_store cpu t.addr;
  match t.owner with
  | None ->
      t.owner <- Some proc;
      t.acquisitions <- t.acquisitions + 1;
      Clock.sync engine cpu;
      t.acquired_at <- Sim.Engine.now engine
  | Some _ ->
      t.contended <- t.contended + 1;
      Sim.Engine.trace_f engine ~cpu:(Machine.Cpu.node cpu) ~kind:"lock-wait"
        (fun () -> Printf.sprintf "%s waits on %#x" (Process.name proc) t.addr);
      let w = { proc; enqueued_at = Sim.Engine.now engine } in
      Queue.push w t.waiters;
      if Queue.length t.waiters > t.max_waiters then
        t.max_waiters <- Queue.length t.waiters;
      Clock.sync engine cpu;
      (* The processor spins: the process does not release the CPU. *)
      Process.sleep engine proc;
      (* Woken as the new owner: pay the handover traffic. *)
      Machine.Cpu.instr cpu 3;
      Machine.Cpu.uncached_store cpu t.addr;
      Machine.Cpu.charge_current cpu t.transfer_cycles;
      Clock.sync engine cpu;
      Sim.Stats.add t.wait_stats
        (Sim.Time.to_us (Sim.Time.sub (Sim.Engine.now engine) w.enqueued_at));
      t.acquisitions <- t.acquisitions + 1;
      t.acquired_at <- Sim.Engine.now engine

let release engine cpu proc t =
  (match t.owner with
  | Some p when Process.id p = Process.id proc -> ()
  | _ -> invalid_arg "Spinlock.release: not the holder");
  Machine.Cpu.instr cpu 2;
  Machine.Cpu.uncached_store cpu t.addr;
  Clock.sync engine cpu;
  Sim.Stats.add t.hold_stats
    (Sim.Time.to_us (Sim.Time.sub (Sim.Engine.now engine) t.acquired_at));
  match Queue.take_opt t.waiters with
  | None -> t.owner <- None
  | Some w ->
      t.owner <- Some w.proc;
      Process.wake w.proc

let with_lock engine cpu proc t f =
  acquire engine cpu proc t;
  Fun.protect ~finally:(fun () -> release engine cpu proc t) f
