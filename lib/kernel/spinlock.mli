(** Simulated spinlock over an uncached shared word (coherence-free
    machine): every operation is a memory transaction, and contended
    handovers charge ping-pong traffic to the new owner. *)

type t

val total_acquisitions : unit -> int
(** Process-wide count of {!acquire} calls across every lock instance;
    monotone and side-effect-free (the fault-injection invariant checker
    snapshots it around the PPC fast path). *)

val create : ?transfer_cycles:int -> addr:int -> unit -> t
(** [addr] is the lock word's simulated physical address (its NUMA home
    determines remote-access surcharges); [transfer_cycles] models the
    retry ping-pong paid by a contended acquirer (default 40). *)

val acquire : Sim.Engine.t -> Machine.Cpu.t -> Process.t -> t -> unit
(** Take the lock.  A contended caller spins: simulated time passes but
    the processor is not released to other processes. *)

val release : Sim.Engine.t -> Machine.Cpu.t -> Process.t -> t -> unit
(** Release; hands the lock FIFO to the oldest spinner.  Raises
    [Invalid_argument] if the caller is not the holder. *)

val with_lock :
  Sim.Engine.t -> Machine.Cpu.t -> Process.t -> t -> (unit -> 'a) -> 'a

val holder : t -> Process.t option
val acquisitions : t -> int
val contended_acquisitions : t -> int
val max_waiters : t -> int
val mean_hold_us : t -> float
val mean_wait_us : t -> float
