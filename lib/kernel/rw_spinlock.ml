(* Readers-writer spinlock over uncached shared words.

   The paper notes that adapting a single-threaded server needs at most
   "a single lock on entry" — but exploiting the concurrency the PPC
   facility delivers takes finer locking.  Read-mostly state (like file
   metadata under GetLength) wants a readers-writer lock: readers share,
   writers exclude.

   Cost model mirrors {!Spinlock}: every acquire/release is an uncached
   RMW on the lock word; contended acquirers park FIFO (processor kept,
   like a spinner) and pay handover traffic when granted.  Grant policy:
   FIFO order, with consecutive readers at the head granted as a batch —
   writers cannot be starved by a continuous reader stream arriving
   behind one. *)

type mode = Read | Write

type waiter = { proc : Process.t; mode : mode; enqueued_at : Sim.Time.t }

type t = {
  addr : int;
  transfer_cycles : int;
  mutable readers : int;  (** active readers *)
  mutable writer : Process.t option;  (** active writer *)
  waiters : waiter Queue.t;
  mutable read_acquisitions : int;
  mutable write_acquisitions : int;
  mutable contended : int;
  wait_stats : Sim.Stats.t;
}

let create ?(transfer_cycles = 40) ~addr () =
  {
    addr;
    transfer_cycles;
    readers = 0;
    writer = None;
    waiters = Queue.create ();
    read_acquisitions = 0;
    write_acquisitions = 0;
    contended = 0;
    wait_stats = Sim.Stats.create ~keep_samples:false ();
  }

let active_readers t = t.readers
let active_writer t = t.writer
let read_acquisitions t = t.read_acquisitions
let write_acquisitions t = t.write_acquisitions
let contended_acquisitions t = t.contended
let mean_wait_us t = Sim.Stats.mean t.wait_stats

let charge_attempt cpu t =
  Machine.Cpu.instr cpu 3;
  Machine.Cpu.uncached_store cpu t.addr

let charge_handover cpu t =
  Machine.Cpu.instr cpu 3;
  Machine.Cpu.uncached_store cpu t.addr;
  Machine.Cpu.charge_current cpu t.transfer_cycles

let can_grant t mode =
  match (mode, t.writer, t.readers) with
  | Read, None, _ -> Queue.is_empty t.waiters
  | Write, None, 0 -> Queue.is_empty t.waiters
  | _ -> false

let grant t w =
  match w.mode with
  | Read ->
      t.readers <- t.readers + 1;
      t.read_acquisitions <- t.read_acquisitions + 1
  | Write ->
      t.writer <- Some w.proc;
      t.write_acquisitions <- t.write_acquisitions + 1

(* Grant the FIFO head; if it is a reader, also grant the consecutive
   readers behind it (a read batch). *)
let grant_waiters t =
  let rec go first =
    match Queue.peek_opt t.waiters with
    | None -> ()
    | Some w -> (
        match w.mode with
        | Write ->
            if first && t.readers = 0 && t.writer = None then begin
              ignore (Queue.pop t.waiters);
              grant t w;
              Process.wake w.proc
            end
        | Read ->
            if t.writer = None then begin
              ignore (Queue.pop t.waiters);
              grant t w;
              Process.wake w.proc;
              go false
            end)
  in
  go true

(* See {!Spinlock.total_acquisitions}: one odometer across both lock
   flavours feeds the fast-path lock-freedom invariant. *)
let global_acquisitions = ref 0
let total_acquisitions () = !global_acquisitions

let acquire engine cpu proc t ~mode =
  incr global_acquisitions;
  charge_attempt cpu t;
  if can_grant t mode then begin
    grant t { proc; mode; enqueued_at = Sim.Engine.now engine };
    Clock.sync engine cpu
  end
  else begin
    t.contended <- t.contended + 1;
    let w = { proc; mode; enqueued_at = Sim.Engine.now engine } in
    Queue.push w t.waiters;
    Clock.sync engine cpu;
    Process.sleep engine proc;
    (* Granted: pay handover traffic. *)
    charge_handover cpu t;
    Clock.sync engine cpu;
    Sim.Stats.add t.wait_stats
      (Sim.Time.to_us (Sim.Time.sub (Sim.Engine.now engine) w.enqueued_at))
  end

let acquire_read engine cpu proc t = acquire engine cpu proc t ~mode:Read
let acquire_write engine cpu proc t = acquire engine cpu proc t ~mode:Write

let release_read engine cpu proc t =
  ignore proc;
  if t.readers <= 0 then invalid_arg "Rw_spinlock.release_read: no readers";
  Machine.Cpu.instr cpu 2;
  Machine.Cpu.uncached_store cpu t.addr;
  Clock.sync engine cpu;
  t.readers <- t.readers - 1;
  if t.readers = 0 then grant_waiters t

let release_write engine cpu proc t =
  (match t.writer with
  | Some p when Process.id p = Process.id proc -> ()
  | _ -> invalid_arg "Rw_spinlock.release_write: not the writer");
  Machine.Cpu.instr cpu 2;
  Machine.Cpu.uncached_store cpu t.addr;
  Clock.sync engine cpu;
  t.writer <- None;
  grant_waiters t
