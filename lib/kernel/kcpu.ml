(* Per-CPU kernel context and scheduler.

   One [Kcpu.t] exists per simulated processor.  It owns the processor's
   ready queue (two bands: an interrupt/kernel band served first, and the
   normal band) and the notion of the *current* process.

   Scheduling discipline (matching the paper's platform):

   - no preemption: a process runs until it blocks, yields, terminates or
     hands the processor off;
   - PPC uses *hand-off* transfers that bypass the ready queue entirely
     ([handoff_sleep] / [handoff_ready]) — the paper's Section 1 point
     (ii);
   - interrupt handlers enter the front band and run at the next
     scheduling point (delivery latency on an idle CPU is zero). *)

type t = {
  index : int;
  engine : Sim.Engine.t;
  cpu : Machine.Cpu.t;
  front : Process.t Queue.t;
  normal : Process.t Queue.t;
  mutable current : Process.t option;
  mutable idle_since : Sim.Time.t option;
  mutable idle_total : Sim.Time.t;
  mutable dispatches : int;
  mutable handoffs : int;
}

let create engine cpu ~index =
  {
    index;
    engine;
    cpu;
    front = Queue.create ();
    normal = Queue.create ();
    current = None;
    idle_since = Some Sim.Time.zero;
    idle_total = Sim.Time.zero;
    dispatches = 0;
    handoffs = 0;
  }

let index t = t.index
let engine t = t.engine
let cpu t = t.cpu
let current t = t.current
let ready_count t = Queue.length t.front + Queue.length t.normal
let dispatches t = t.dispatches
let handoffs t = t.handoffs

let sync t = Clock.sync t.engine t.cpu

let trace t ~kind detail =
  Sim.Engine.trace_f t.engine ~cpu:t.index ~kind detail

let is_current t p =
  match t.current with Some q -> q == p | None -> false

let note_busy t =
  match t.idle_since with
  | None -> ()
  | Some since ->
      t.idle_total <-
        Sim.Time.add t.idle_total (Sim.Time.sub (Sim.Engine.now t.engine) since);
      t.idle_since <- None

let note_idle t =
  if t.idle_since = None then t.idle_since <- Some (Sim.Engine.now t.engine)

let idle_total t =
  match t.idle_since with
  | None -> t.idle_total
  | Some since ->
      Sim.Time.add t.idle_total (Sim.Time.sub (Sim.Engine.now t.engine) since)

let take_next t =
  match Queue.take_opt t.front with
  | Some p -> Some p
  | None -> Queue.take_opt t.normal

(* Select and wake the next ready process (or go idle). *)
let rec dispatch t =
  match take_next t with
  | None ->
      t.current <- None;
      note_idle t
  | Some p ->
      if Process.state p = Process.Dead then dispatch t
      else begin
        t.dispatches <- t.dispatches + 1;
        t.current <- Some p;
        Process.set_state p Process.Running;
        note_busy t;
        trace t ~kind:"dispatch" (fun () -> Process.name p);
        Process.wake p
      end

(* Make a process runnable; dispatch immediately if the CPU is idle.
   Safe to call from event context (interrupts, cross-CPU wakeups). *)
let ready ?(band = `Normal) t p =
  if Process.state p <> Process.Dead then begin
    trace t ~kind:"ready" (fun () -> Process.name p);
    Process.set_state p Process.Ready;
    (match band with
    | `Front -> Queue.push p t.front
    | `Normal -> Queue.push p t.normal);
    if t.current = None then dispatch t
  end

(* Reorder the normal-band ready queue (fault injection: the scheduler
   discipline must survive adversarial arrival orders).  [f] must return
   a permutation of its input; anything else is rejected so a perturbed
   run can never lose or invent a process. *)
let perturb_ready t f =
  let before = List.of_seq (Queue.to_seq t.normal) in
  let after = f before in
  let same_population =
    List.length before = List.length after
    && List.for_all (fun p -> List.memq p after) before
  in
  if not (same_population) then
    invalid_arg "Kcpu.perturb_ready: not a permutation of the ready queue";
  Queue.clear t.normal;
  List.iter (fun p -> Queue.push p t.normal) after;
  trace t ~kind:"perturb" (fun () ->
      Printf.sprintf "ready queue reordered (%d entries)" (List.length after))

(* Start a process: spawn its simulated body, which first waits to be
   dispatched. *)
let start ?(band = `Normal) t p body =
  Sim.Engine.spawn t.engine (fun () ->
      Process.sleep t.engine p;
      body ();
      (* Termination.  No implicit sync: the CPU's unsynced cycles may
         belong to another (current) process by now; bodies sync at their
         own boundaries. *)
      Process.set_state p Process.Dead;
      if is_current t p then dispatch t);
  ready ~band t p

(* Start a process that begins parked (not on any ready queue): a PPC
   worker waiting in its pool.  Its first wake comes from a hand-off. *)
let start_parked t p body =
  Process.set_state p Process.Blocked;
  Sim.Engine.spawn t.engine (fun () ->
      Process.sleep t.engine p;
      body ();
      Process.set_state p Process.Dead;
      if is_current t p then dispatch t)

(* The running process gives up the CPU until an external [ready]. *)
let block t p =
  assert (is_current t p);
  sync t;
  trace t ~kind:"block" (fun () -> Process.name p);
  Process.set_state p Process.Blocked;
  dispatch t;
  Process.sleep t.engine p

(* Timed park: give up the CPU until [wake], then re-enter the ready
   queue.  A bare [Sim.Engine.delay] suspends the fiber but leaves the
   process current, so everything else queued on the CPU starves for the
   duration; paced load generators must use this instead. *)
let sleep_until t p ~wake =
  if Sim.Time.(Sim.Engine.now t.engine < wake) then begin
    Sim.Engine.schedule_at t.engine wake (fun () -> ready t p);
    block t p
  end

(* The running process re-queues itself behind its band. *)
let yield t p =
  assert (is_current t p);
  sync t;
  Process.set_state p Process.Ready;
  Queue.push p t.normal;
  dispatch t;
  Process.sleep t.engine p

(* Hand-off transfer: the caller passes the CPU directly to [target],
   bypassing the ready queue, and sleeps until woken (the synchronous PPC
   discipline: logically a single thread of control). *)
let handoff_sleep t ~from ~target =
  assert (is_current t from);
  sync t;
  t.handoffs <- t.handoffs + 1;
  trace t ~kind:"handoff" (fun () ->
      Printf.sprintf "%s -> %s" (Process.name from) (Process.name target));
  Process.set_state from Process.Blocked;
  t.current <- Some target;
  Process.set_state target Process.Running;
  Process.wake target;
  Process.sleep t.engine from

(* Hand-off where the caller stays runnable: the asynchronous PPC variant
   (paper Section 4.4 — the caller goes on the ready queue rather than
   being linked into the call descriptor). *)
let handoff_ready t ~from ~target =
  assert (is_current t from);
  sync t;
  t.handoffs <- t.handoffs + 1;
  trace t ~kind:"handoff-rdy" (fun () ->
      Printf.sprintf "%s -> %s" (Process.name from) (Process.name target));
  Process.set_state from Process.Ready;
  Queue.push from t.normal;
  t.current <- Some target;
  Process.set_state target Process.Running;
  Process.wake target;
  Process.sleep t.engine from

(* Wake a specific blocked process by direct hand-off from the running
   process (the PPC return path). *)
let handoff_back t ~from ~target =
  handoff_sleep t ~from ~target

(* The running process terminates its current activation but stays
   allocated (a worker returning to its pool): give up the CPU without
   becoming ready. *)
let park t p = block t p

let utilisation t ~horizon =
  let idle = Sim.Time.to_s (idle_total t) in
  let total = Sim.Time.to_s horizon in
  if total <= 0.0 then 0.0 else Float.max 0.0 (1.0 -. (idle /. total))
