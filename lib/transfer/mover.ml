(* The mover: the engine's single consumer.

   On the real substrate it is a dedicated domain — the software DMA
   controller — that drains submission rings in batches and parks on
   the engine's doorbell when they run dry (the same SPINNING/PARKED
   protocol channel servers use, so an idle mover burns no cycles).
   On the simulated substrate there is no second scheduler: the DMA
   device is [step]ped explicitly, either from a handler or from an
   engine step hook, and its cycle cost is charged by the [exec]
   callback itself.

   Two ways down:

     [shutdown]  quiesce — drain everything already submitted, then
                 exit.  No descriptor is abandoned.
     [kill]      fault injection — exit *now*, stranding in-flight
                 descriptors.  The victim clients discover this on
                 their next [reap]: the engine's post-death sweep fails
                 every stranded descriptor with [Errc.handler_fault],
                 exactly once each (see the kill-mover fault scenario
                 and the qcheck model test).

   Both set the engine's [stopped] flag only after the mover's last
   touch of any descriptor, so the client-side sweep never races the
   drain loop. *)

type t = {
  eng : Copy_engine.t;
  dom : unit Domain.t option;  (* None for a manually stepped mover *)
}

let nonempty eng () =
  Copy_engine.pending eng > 0
  || Copy_engine.killed eng || Copy_engine.quiescing eng

let rec loop eng ~batch =
  if Copy_engine.killed eng then ()
  else begin
    let n = Copy_engine.drain eng ~budget:batch in
    if n > 0 then loop eng ~batch
    else if Copy_engine.quiescing eng then ()
    else begin
      Runtime.Doorbell.park (Copy_engine.doorbell eng) ~nonempty:(nonempty eng);
      loop eng ~batch
    end
  end

let spawn ?(batch = 32) eng =
  let dom =
    Domain.spawn (fun () ->
        (try loop eng ~batch with _ -> ());
        Copy_engine.mark_stopped eng)
  in
  { eng; dom = Some dom }

(* A mover that never runs on its own: the sim substrate's DMA device,
   and the deterministic driver for the model tests. *)
let manual eng = { eng; dom = None }

(* Pump a manual mover: execute up to [budget] descriptors now.
   Harmless on a spawned mover (the drain is consumer-side only if
   nobody else is draining — do not mix step with a live domain). *)
let step t ~budget = Copy_engine.drain t.eng ~budget

let join t =
  match t.dom with Some d -> Domain.join d | None -> Copy_engine.mark_stopped t.eng

(* Graceful: drain dry, then stop. *)
let shutdown t =
  Copy_engine.request_quiesce t.eng;
  Runtime.Doorbell.wake (Copy_engine.doorbell t.eng);
  join t

(* Fault injection: stop now, strand in-flight work.  Deterministic —
   returns only after the mover has exited and [stopped] is visible,
   so a subsequent [reap] is guaranteed to run the fail sweep. *)
let kill t =
  Copy_engine.request_kill t.eng;
  Runtime.Doorbell.wake (Copy_engine.doorbell t.eng);
  join t
