(** Fixed-width copy descriptor: the bulk-data analogue of the 8-register
    argument block.  Preallocated in per-client slabs and recycled; the
    submit→reap warm path never allocates. *)

val st_free : int
val st_submitted : int
val st_completed : int

type t = {
  index : int;  (** slot in the owning client's slab *)
  mutable op : int;  (** [Wellknown.bulk_copy] or [Wellknown.bulk_grant] *)
  mutable src : int;
  mutable src_off : int;
  mutable dst : int;
  mutable dst_off : int;
  mutable len : int;
  mutable tag : int;  (** caller's completion cookie, echoed on reap *)
  mutable rc : int;  (** completion status, an {!Ipc_intf.Errc} code *)
  mutable client : int;  (** submitting client id (ownership checks) *)
  mutable state : int;
}

val make : index:int -> t

val words : int
(** Width of the wire shape (8), mirroring the register convention. *)

val pp : Format.formatter -> t -> unit
