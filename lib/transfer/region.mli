(** Address-space access grants for bulk transfer (Section 4.2).

    The grant table is bounded: {!try_grant} answers [Errc.retry] at the
    cap instead of growing without limit.  {!handoff} consumes a grant
    whole — ownership transfers to the grantee, revoke-on-complete —
    the zero-copy path for large payloads. *)

type access = Read_only | Write_only | Read_write

type grant = {
  grant_id : int;
  owner : Kernel.Program.id;
  grantee : Kernel.Program.id;
  base : int;
  len : int;
  access : access;
}

type t

val default_max_grants : int

val create : ?max_grants:int -> unit -> t

val try_grant :
  t ->
  owner:Kernel.Program.id ->
  grantee:Kernel.Program.id ->
  base:int ->
  len:int ->
  access:access ->
  (int, int) result
(** The grant ID, or [Error Errc.retry] when the table is at its cap. *)

val grant :
  t ->
  owner:Kernel.Program.id ->
  grantee:Kernel.Program.id ->
  base:int ->
  len:int ->
  access:access ->
  int
(** {!try_grant} for callers that treat exhaustion as fatal
    ([Failure]).  Returns the grant ID. *)

val revoke : t -> grant_id:int -> bool

val check :
  t ->
  owner:Kernel.Program.id ->
  grantee:Kernel.Program.id ->
  base:int ->
  len:int ->
  dir:[ `Read | `Write ] ->
  bool

val find : t -> grant_id:int -> grant option

val covering :
  t ->
  owner:Kernel.Program.id ->
  grantee:Kernel.Program.id ->
  base:int ->
  len:int ->
  grant option
(** The grant (if any) under which [grantee] may touch [owner]'s
    range, ignoring direction. *)

val handoff : t -> grant_id:int -> grant option
(** Consume a grant whole: ownership of the range transfers to the
    grantee, and the grant is revoked on completion.  [None] if the
    grant no longer exists. *)

val active_grants : t -> int
val max_grants : t -> int
val revocations : t -> int
val handoffs : t -> int
