(* The fixed-width copy descriptor: the bulk-data analogue of the
   paper's 8-register argument block.

   Control-plane PPCs carry their whole payload in eight registers;
   bulk data instead rides a descriptor naming where the bytes live.
   A descriptor is eight words, mirroring the register convention:

     word 0  op        bulk_copy | bulk_grant (Ipc_intf.Wellknown)
     word 1  src       source region id (engine-defined namespace)
     word 2  src_off   byte offset into the source
     word 3  dst       destination region id (or, for a grant, the
                       receiving client id)
     word 4  dst_off   byte offset into the destination
     word 5  len       bytes to move (a grant moves ownership, not
                       bytes; len records the region length)
     word 6  tag       caller's completion cookie, echoed on reap
     word 7  rc        completion status (Ipc_intf.Errc), the analogue
                       of the register block's RC slot

   Descriptors are preallocated in a per-client slab and recycled
   serially (same discipline as Request_slab): the submit→reap warm
   path never allocates.  [client] and [state] are engine bookkeeping,
   not part of the eight-word wire shape. *)

(* Lifecycle states.  Single-writer per phase: the owning client moves
   Free->Submitted, the mover moves Submitted->Completed, the client
   moves Completed->Free on reap.  After mover death the fail-sweep
   (client side, fenced by the mover's stopped flag) moves the
   stranded Submitted descriptors to Completed with [rc =
   Errc.handler_fault]. *)
let st_free = 0
let st_submitted = 1
let st_completed = 2

type t = {
  index : int;  (** slot in the owning client's slab *)
  mutable op : int;
  mutable src : int;
  mutable src_off : int;
  mutable dst : int;
  mutable dst_off : int;
  mutable len : int;
  mutable tag : int;
  mutable rc : int;
  mutable client : int;  (** submitting client id (ownership checks) *)
  mutable state : int;
}

let make ~index =
  {
    index;
    op = 0;
    src = 0;
    src_off = 0;
    dst = 0;
    dst_off = 0;
    len = 0;
    tag = 0;
    rc = 0;
    client = -1;
    state = st_free;
  }

let words = 8

let pp ppf d =
  Fmt.pf ppf "desc[%d] op=%d src=%d+%d dst=%d+%d len=%d tag=%d rc=%d" d.index
    d.op d.src d.src_off d.dst d.dst_off d.len d.tag d.rc
